# Empty dependencies file for example_chat.
# This may be replaced when dependencies are built.
