file(REMOVE_RECURSE
  "CMakeFiles/example_chat.dir/chat.cpp.o"
  "CMakeFiles/example_chat.dir/chat.cpp.o.d"
  "example_chat"
  "example_chat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_chat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
