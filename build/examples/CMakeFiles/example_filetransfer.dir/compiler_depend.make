# Empty compiler generated dependencies file for example_filetransfer.
# This may be replaced when dependencies are built.
