file(REMOVE_RECURSE
  "CMakeFiles/example_filetransfer.dir/filetransfer.cpp.o"
  "CMakeFiles/example_filetransfer.dir/filetransfer.cpp.o.d"
  "example_filetransfer"
  "example_filetransfer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_filetransfer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
