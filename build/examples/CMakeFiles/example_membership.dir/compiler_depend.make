# Empty compiler generated dependencies file for example_membership.
# This may be replaced when dependencies are built.
