file(REMOVE_RECURSE
  "CMakeFiles/bench_table1a.dir/bench_table1a.cc.o"
  "CMakeFiles/bench_table1a.dir/bench_table1a.cc.o.d"
  "bench_table1a"
  "bench_table1a.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1a.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
