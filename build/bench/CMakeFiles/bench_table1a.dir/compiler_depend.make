# Empty compiler generated dependencies file for bench_table1a.
# This may be replaced when dependencies are built.
