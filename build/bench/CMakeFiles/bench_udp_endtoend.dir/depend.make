# Empty dependencies file for bench_udp_endtoend.
# This may be replaced when dependencies are built.
