file(REMOVE_RECURSE
  "CMakeFiles/bench_udp_endtoend.dir/bench_udp_endtoend.cc.o"
  "CMakeFiles/bench_udp_endtoend.dir/bench_udp_endtoend.cc.o.d"
  "bench_udp_endtoend"
  "bench_udp_endtoend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_udp_endtoend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
