# Empty compiler generated dependencies file for bench_table1b.
# This may be replaced when dependencies are built.
