file(REMOVE_RECURSE
  "CMakeFiles/bench_table1b.dir/bench_table1b.cc.o"
  "CMakeFiles/bench_table1b.dir/bench_table1b.cc.o.d"
  "bench_table1b"
  "bench_table1b.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1b.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
