# Empty compiler generated dependencies file for bench_ccp.
# This may be replaced when dependencies are built.
