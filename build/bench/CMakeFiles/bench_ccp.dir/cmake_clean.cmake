file(REMOVE_RECURSE
  "CMakeFiles/bench_ccp.dir/bench_ccp.cc.o"
  "CMakeFiles/bench_ccp.dir/bench_ccp.cc.o.d"
  "bench_ccp"
  "bench_ccp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ccp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
