
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/app/endpoint.cc" "src/CMakeFiles/ensemble.dir/app/endpoint.cc.o" "gcc" "src/CMakeFiles/ensemble.dir/app/endpoint.cc.o.d"
  "/root/repo/src/app/harness.cc" "src/CMakeFiles/ensemble.dir/app/harness.cc.o" "gcc" "src/CMakeFiles/ensemble.dir/app/harness.cc.o.d"
  "/root/repo/src/bypass/compiler.cc" "src/CMakeFiles/ensemble.dir/bypass/compiler.cc.o" "gcc" "src/CMakeFiles/ensemble.dir/bypass/compiler.cc.o.d"
  "/root/repo/src/bypass/equivalence.cc" "src/CMakeFiles/ensemble.dir/bypass/equivalence.cc.o" "gcc" "src/CMakeFiles/ensemble.dir/bypass/equivalence.cc.o.d"
  "/root/repo/src/bypass/hand.cc" "src/CMakeFiles/ensemble.dir/bypass/hand.cc.o" "gcc" "src/CMakeFiles/ensemble.dir/bypass/hand.cc.o.d"
  "/root/repo/src/bypass/rule.cc" "src/CMakeFiles/ensemble.dir/bypass/rule.cc.o" "gcc" "src/CMakeFiles/ensemble.dir/bypass/rule.cc.o.d"
  "/root/repo/src/bypass/rules.cc" "src/CMakeFiles/ensemble.dir/bypass/rules.cc.o" "gcc" "src/CMakeFiles/ensemble.dir/bypass/rules.cc.o.d"
  "/root/repo/src/event/event.cc" "src/CMakeFiles/ensemble.dir/event/event.cc.o" "gcc" "src/CMakeFiles/ensemble.dir/event/event.cc.o.d"
  "/root/repo/src/event/types.cc" "src/CMakeFiles/ensemble.dir/event/types.cc.o" "gcc" "src/CMakeFiles/ensemble.dir/event/types.cc.o.d"
  "/root/repo/src/layers/bottom.cc" "src/CMakeFiles/ensemble.dir/layers/bottom.cc.o" "gcc" "src/CMakeFiles/ensemble.dir/layers/bottom.cc.o.d"
  "/root/repo/src/layers/collect.cc" "src/CMakeFiles/ensemble.dir/layers/collect.cc.o" "gcc" "src/CMakeFiles/ensemble.dir/layers/collect.cc.o.d"
  "/root/repo/src/layers/elect.cc" "src/CMakeFiles/ensemble.dir/layers/elect.cc.o" "gcc" "src/CMakeFiles/ensemble.dir/layers/elect.cc.o.d"
  "/root/repo/src/layers/encrypt.cc" "src/CMakeFiles/ensemble.dir/layers/encrypt.cc.o" "gcc" "src/CMakeFiles/ensemble.dir/layers/encrypt.cc.o.d"
  "/root/repo/src/layers/fifo_check.cc" "src/CMakeFiles/ensemble.dir/layers/fifo_check.cc.o" "gcc" "src/CMakeFiles/ensemble.dir/layers/fifo_check.cc.o.d"
  "/root/repo/src/layers/frag.cc" "src/CMakeFiles/ensemble.dir/layers/frag.cc.o" "gcc" "src/CMakeFiles/ensemble.dir/layers/frag.cc.o.d"
  "/root/repo/src/layers/intra.cc" "src/CMakeFiles/ensemble.dir/layers/intra.cc.o" "gcc" "src/CMakeFiles/ensemble.dir/layers/intra.cc.o.d"
  "/root/repo/src/layers/local.cc" "src/CMakeFiles/ensemble.dir/layers/local.cc.o" "gcc" "src/CMakeFiles/ensemble.dir/layers/local.cc.o.d"
  "/root/repo/src/layers/mflow.cc" "src/CMakeFiles/ensemble.dir/layers/mflow.cc.o" "gcc" "src/CMakeFiles/ensemble.dir/layers/mflow.cc.o.d"
  "/root/repo/src/layers/mnak.cc" "src/CMakeFiles/ensemble.dir/layers/mnak.cc.o" "gcc" "src/CMakeFiles/ensemble.dir/layers/mnak.cc.o.d"
  "/root/repo/src/layers/partial_appl.cc" "src/CMakeFiles/ensemble.dir/layers/partial_appl.cc.o" "gcc" "src/CMakeFiles/ensemble.dir/layers/partial_appl.cc.o.d"
  "/root/repo/src/layers/pt2pt.cc" "src/CMakeFiles/ensemble.dir/layers/pt2pt.cc.o" "gcc" "src/CMakeFiles/ensemble.dir/layers/pt2pt.cc.o.d"
  "/root/repo/src/layers/pt2ptw.cc" "src/CMakeFiles/ensemble.dir/layers/pt2ptw.cc.o" "gcc" "src/CMakeFiles/ensemble.dir/layers/pt2ptw.cc.o.d"
  "/root/repo/src/layers/sign.cc" "src/CMakeFiles/ensemble.dir/layers/sign.cc.o" "gcc" "src/CMakeFiles/ensemble.dir/layers/sign.cc.o.d"
  "/root/repo/src/layers/stable.cc" "src/CMakeFiles/ensemble.dir/layers/stable.cc.o" "gcc" "src/CMakeFiles/ensemble.dir/layers/stable.cc.o.d"
  "/root/repo/src/layers/suspect.cc" "src/CMakeFiles/ensemble.dir/layers/suspect.cc.o" "gcc" "src/CMakeFiles/ensemble.dir/layers/suspect.cc.o.d"
  "/root/repo/src/layers/sync.cc" "src/CMakeFiles/ensemble.dir/layers/sync.cc.o" "gcc" "src/CMakeFiles/ensemble.dir/layers/sync.cc.o.d"
  "/root/repo/src/layers/top.cc" "src/CMakeFiles/ensemble.dir/layers/top.cc.o" "gcc" "src/CMakeFiles/ensemble.dir/layers/top.cc.o.d"
  "/root/repo/src/layers/total.cc" "src/CMakeFiles/ensemble.dir/layers/total.cc.o" "gcc" "src/CMakeFiles/ensemble.dir/layers/total.cc.o.d"
  "/root/repo/src/layers/total_buggy.cc" "src/CMakeFiles/ensemble.dir/layers/total_buggy.cc.o" "gcc" "src/CMakeFiles/ensemble.dir/layers/total_buggy.cc.o.d"
  "/root/repo/src/layers/total_check.cc" "src/CMakeFiles/ensemble.dir/layers/total_check.cc.o" "gcc" "src/CMakeFiles/ensemble.dir/layers/total_check.cc.o.d"
  "/root/repo/src/marshal/generic_codec.cc" "src/CMakeFiles/ensemble.dir/marshal/generic_codec.cc.o" "gcc" "src/CMakeFiles/ensemble.dir/marshal/generic_codec.cc.o.d"
  "/root/repo/src/marshal/header_desc.cc" "src/CMakeFiles/ensemble.dir/marshal/header_desc.cc.o" "gcc" "src/CMakeFiles/ensemble.dir/marshal/header_desc.cc.o.d"
  "/root/repo/src/net/network.cc" "src/CMakeFiles/ensemble.dir/net/network.cc.o" "gcc" "src/CMakeFiles/ensemble.dir/net/network.cc.o.d"
  "/root/repo/src/net/trace.cc" "src/CMakeFiles/ensemble.dir/net/trace.cc.o" "gcc" "src/CMakeFiles/ensemble.dir/net/trace.cc.o.d"
  "/root/repo/src/net/udp.cc" "src/CMakeFiles/ensemble.dir/net/udp.cc.o" "gcc" "src/CMakeFiles/ensemble.dir/net/udp.cc.o.d"
  "/root/repo/src/perf/elf_symbols.cc" "src/CMakeFiles/ensemble.dir/perf/elf_symbols.cc.o" "gcc" "src/CMakeFiles/ensemble.dir/perf/elf_symbols.cc.o.d"
  "/root/repo/src/perf/latency_harness.cc" "src/CMakeFiles/ensemble.dir/perf/latency_harness.cc.o" "gcc" "src/CMakeFiles/ensemble.dir/perf/latency_harness.cc.o.d"
  "/root/repo/src/perf/perf_counters.cc" "src/CMakeFiles/ensemble.dir/perf/perf_counters.cc.o" "gcc" "src/CMakeFiles/ensemble.dir/perf/perf_counters.cc.o.d"
  "/root/repo/src/spec/ioa.cc" "src/CMakeFiles/ensemble.dir/spec/ioa.cc.o" "gcc" "src/CMakeFiles/ensemble.dir/spec/ioa.cc.o.d"
  "/root/repo/src/spec/monitors.cc" "src/CMakeFiles/ensemble.dir/spec/monitors.cc.o" "gcc" "src/CMakeFiles/ensemble.dir/spec/monitors.cc.o.d"
  "/root/repo/src/spec/netspecs.cc" "src/CMakeFiles/ensemble.dir/spec/netspecs.cc.o" "gcc" "src/CMakeFiles/ensemble.dir/spec/netspecs.cc.o.d"
  "/root/repo/src/spec/protospecs.cc" "src/CMakeFiles/ensemble.dir/spec/protospecs.cc.o" "gcc" "src/CMakeFiles/ensemble.dir/spec/protospecs.cc.o.d"
  "/root/repo/src/spec/refinement.cc" "src/CMakeFiles/ensemble.dir/spec/refinement.cc.o" "gcc" "src/CMakeFiles/ensemble.dir/spec/refinement.cc.o.d"
  "/root/repo/src/stack/engine.cc" "src/CMakeFiles/ensemble.dir/stack/engine.cc.o" "gcc" "src/CMakeFiles/ensemble.dir/stack/engine.cc.o.d"
  "/root/repo/src/stack/layer.cc" "src/CMakeFiles/ensemble.dir/stack/layer.cc.o" "gcc" "src/CMakeFiles/ensemble.dir/stack/layer.cc.o.d"
  "/root/repo/src/stack/properties.cc" "src/CMakeFiles/ensemble.dir/stack/properties.cc.o" "gcc" "src/CMakeFiles/ensemble.dir/stack/properties.cc.o.d"
  "/root/repo/src/trans/transport.cc" "src/CMakeFiles/ensemble.dir/trans/transport.cc.o" "gcc" "src/CMakeFiles/ensemble.dir/trans/transport.cc.o.d"
  "/root/repo/src/util/bytes.cc" "src/CMakeFiles/ensemble.dir/util/bytes.cc.o" "gcc" "src/CMakeFiles/ensemble.dir/util/bytes.cc.o.d"
  "/root/repo/src/util/logging.cc" "src/CMakeFiles/ensemble.dir/util/logging.cc.o" "gcc" "src/CMakeFiles/ensemble.dir/util/logging.cc.o.d"
  "/root/repo/src/util/pool.cc" "src/CMakeFiles/ensemble.dir/util/pool.cc.o" "gcc" "src/CMakeFiles/ensemble.dir/util/pool.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
