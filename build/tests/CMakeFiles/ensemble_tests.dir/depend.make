# Empty dependencies file for ensemble_tests.
# This may be replaced when dependencies are built.
