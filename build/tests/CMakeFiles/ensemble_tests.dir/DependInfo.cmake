
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_bypass.cc" "tests/CMakeFiles/ensemble_tests.dir/test_bypass.cc.o" "gcc" "tests/CMakeFiles/ensemble_tests.dir/test_bypass.cc.o.d"
  "/root/repo/tests/test_bytes.cc" "tests/CMakeFiles/ensemble_tests.dir/test_bytes.cc.o" "gcc" "tests/CMakeFiles/ensemble_tests.dir/test_bytes.cc.o.d"
  "/root/repo/tests/test_endpoint_api.cc" "tests/CMakeFiles/ensemble_tests.dir/test_endpoint_api.cc.o" "gcc" "tests/CMakeFiles/ensemble_tests.dir/test_endpoint_api.cc.o.d"
  "/root/repo/tests/test_engine.cc" "tests/CMakeFiles/ensemble_tests.dir/test_engine.cc.o" "gcc" "tests/CMakeFiles/ensemble_tests.dir/test_engine.cc.o.d"
  "/root/repo/tests/test_equivalence.cc" "tests/CMakeFiles/ensemble_tests.dir/test_equivalence.cc.o" "gcc" "tests/CMakeFiles/ensemble_tests.dir/test_equivalence.cc.o.d"
  "/root/repo/tests/test_event.cc" "tests/CMakeFiles/ensemble_tests.dir/test_event.cc.o" "gcc" "tests/CMakeFiles/ensemble_tests.dir/test_event.cc.o.d"
  "/root/repo/tests/test_group_smoke.cc" "tests/CMakeFiles/ensemble_tests.dir/test_group_smoke.cc.o" "gcc" "tests/CMakeFiles/ensemble_tests.dir/test_group_smoke.cc.o.d"
  "/root/repo/tests/test_integration.cc" "tests/CMakeFiles/ensemble_tests.dir/test_integration.cc.o" "gcc" "tests/CMakeFiles/ensemble_tests.dir/test_integration.cc.o.d"
  "/root/repo/tests/test_join_and_random_stacks.cc" "tests/CMakeFiles/ensemble_tests.dir/test_join_and_random_stacks.cc.o" "gcc" "tests/CMakeFiles/ensemble_tests.dir/test_join_and_random_stacks.cc.o.d"
  "/root/repo/tests/test_layers_boundary.cc" "tests/CMakeFiles/ensemble_tests.dir/test_layers_boundary.cc.o" "gcc" "tests/CMakeFiles/ensemble_tests.dir/test_layers_boundary.cc.o.d"
  "/root/repo/tests/test_layers_flow.cc" "tests/CMakeFiles/ensemble_tests.dir/test_layers_flow.cc.o" "gcc" "tests/CMakeFiles/ensemble_tests.dir/test_layers_flow.cc.o.d"
  "/root/repo/tests/test_layers_membership.cc" "tests/CMakeFiles/ensemble_tests.dir/test_layers_membership.cc.o" "gcc" "tests/CMakeFiles/ensemble_tests.dir/test_layers_membership.cc.o.d"
  "/root/repo/tests/test_layers_order.cc" "tests/CMakeFiles/ensemble_tests.dir/test_layers_order.cc.o" "gcc" "tests/CMakeFiles/ensemble_tests.dir/test_layers_order.cc.o.d"
  "/root/repo/tests/test_layers_reliability.cc" "tests/CMakeFiles/ensemble_tests.dir/test_layers_reliability.cc.o" "gcc" "tests/CMakeFiles/ensemble_tests.dir/test_layers_reliability.cc.o.d"
  "/root/repo/tests/test_layers_security.cc" "tests/CMakeFiles/ensemble_tests.dir/test_layers_security.cc.o" "gcc" "tests/CMakeFiles/ensemble_tests.dir/test_layers_security.cc.o.d"
  "/root/repo/tests/test_marshal.cc" "tests/CMakeFiles/ensemble_tests.dir/test_marshal.cc.o" "gcc" "tests/CMakeFiles/ensemble_tests.dir/test_marshal.cc.o.d"
  "/root/repo/tests/test_mixed_and_checks.cc" "tests/CMakeFiles/ensemble_tests.dir/test_mixed_and_checks.cc.o" "gcc" "tests/CMakeFiles/ensemble_tests.dir/test_mixed_and_checks.cc.o.d"
  "/root/repo/tests/test_monitors.cc" "tests/CMakeFiles/ensemble_tests.dir/test_monitors.cc.o" "gcc" "tests/CMakeFiles/ensemble_tests.dir/test_monitors.cc.o.d"
  "/root/repo/tests/test_network.cc" "tests/CMakeFiles/ensemble_tests.dir/test_network.cc.o" "gcc" "tests/CMakeFiles/ensemble_tests.dir/test_network.cc.o.d"
  "/root/repo/tests/test_perf.cc" "tests/CMakeFiles/ensemble_tests.dir/test_perf.cc.o" "gcc" "tests/CMakeFiles/ensemble_tests.dir/test_perf.cc.o.d"
  "/root/repo/tests/test_pressure.cc" "tests/CMakeFiles/ensemble_tests.dir/test_pressure.cc.o" "gcc" "tests/CMakeFiles/ensemble_tests.dir/test_pressure.cc.o.d"
  "/root/repo/tests/test_properties.cc" "tests/CMakeFiles/ensemble_tests.dir/test_properties.cc.o" "gcc" "tests/CMakeFiles/ensemble_tests.dir/test_properties.cc.o.d"
  "/root/repo/tests/test_robustness.cc" "tests/CMakeFiles/ensemble_tests.dir/test_robustness.cc.o" "gcc" "tests/CMakeFiles/ensemble_tests.dir/test_robustness.cc.o.d"
  "/root/repo/tests/test_spec.cc" "tests/CMakeFiles/ensemble_tests.dir/test_spec.cc.o" "gcc" "tests/CMakeFiles/ensemble_tests.dir/test_spec.cc.o.d"
  "/root/repo/tests/test_switch.cc" "tests/CMakeFiles/ensemble_tests.dir/test_switch.cc.o" "gcc" "tests/CMakeFiles/ensemble_tests.dir/test_switch.cc.o.d"
  "/root/repo/tests/test_trace_and_leave.cc" "tests/CMakeFiles/ensemble_tests.dir/test_trace_and_leave.cc.o" "gcc" "tests/CMakeFiles/ensemble_tests.dir/test_trace_and_leave.cc.o.d"
  "/root/repo/tests/test_udp.cc" "tests/CMakeFiles/ensemble_tests.dir/test_udp.cc.o" "gcc" "tests/CMakeFiles/ensemble_tests.dir/test_udp.cc.o.d"
  "/root/repo/tests/test_util.cc" "tests/CMakeFiles/ensemble_tests.dir/test_util.cc.o" "gcc" "tests/CMakeFiles/ensemble_tests.dir/test_util.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
