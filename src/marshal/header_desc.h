// Header descriptors: the single source of truth about each layer's header
// layout.
//
// Two consumers:
//   * the generic marshaler walks a header field-by-field with per-field type
//     tags — deliberately general (and deliberately not cheap), mirroring the
//     OCaml value marshaler the paper describes ("all this generality leads
//     to substantial overhead");
//   * the bypass compiler (src/bypass/) classifies each field as constant or
//     variable under a CCP and synthesizes the compressed wire layout from
//     the same field list.

#ifndef ENSEMBLE_SRC_MARSHAL_HEADER_DESC_H_
#define ENSEMBLE_SRC_MARSHAL_HEADER_DESC_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/event/types.h"

namespace ensemble {

enum class FieldType : uint8_t { kU8 = 1, kU16 = 2, kU32 = 3, kU64 = 4 };

size_t FieldTypeSize(FieldType t);

struct FieldSpec {
  const char* name;
  FieldType type;
  uint16_t offset;  // Byte offset within the header struct.
};

struct HeaderDescriptor {
  LayerId layer = LayerId::kNone;
  uint16_t size = 0;  // sizeof the header struct.
  std::vector<FieldSpec> fields;

  bool valid() const { return layer != LayerId::kNone; }
};

// Global registry indexed by LayerId.  Layers register their descriptor once
// at static-init time via RegisterHeaderDescriptor (see the layer .cc files).
const HeaderDescriptor& HeaderDescriptorFor(LayerId layer);
// Non-fatal lookup for wire parsers: remote bytes may name any layer id, so
// a missing descriptor must be a parse error, not a process abort.
const HeaderDescriptor* TryHeaderDescriptorFor(LayerId layer);
void RegisterHeaderDescriptor(HeaderDescriptor desc);

// Zeroes the bytes of `data` (a header struct of `layer`) not covered by any
// field — compiler-inserted padding is indeterminate after aggregate
// initialization, and normalized headers let header stacks be compared and
// hashed bytewise.
void ZeroHeaderPadding(LayerId layer, uint8_t* data, size_t size);

// Convenience macro: registers a descriptor from a brace list of
// (name, type, field) triples at namespace scope.
//   ENSEMBLE_REGISTER_HEADER(MnakHeader, LayerId::kMnak,
//                            ENS_FIELD(MnakHeader, kU32, seqno), ...);
#define ENS_FIELD(Struct, ftype, member) \
  ::ensemble::FieldSpec { #member, ::ensemble::FieldType::ftype, offsetof(Struct, member) }

#define ENSEMBLE_REGISTER_HEADER(Struct, layer_id, ...)                         \
  namespace {                                                                   \
  const bool ens_hdr_reg_##Struct = [] {                                        \
    ::ensemble::RegisterHeaderDescriptor(                                       \
        {layer_id, sizeof(Struct), std::vector<::ensemble::FieldSpec>{__VA_ARGS__}}); \
    return true;                                                                \
  }();                                                                          \
  }

}  // namespace ensemble

#endif  // ENSEMBLE_SRC_MARSHAL_HEADER_DESC_H_
