// First-byte wire tags shared by every datagram codec.
//
// Kept in a dependency-free header so the network backends can classify
// outgoing datagrams (for the batching/packing counters in NetworkStats)
// without pulling in the event model.

#ifndef ENSEMBLE_SRC_MARSHAL_WIRE_TAGS_H_
#define ENSEMBLE_SRC_MARSHAL_WIRE_TAGS_H_

#include <cstddef>
#include <cstdint>

namespace ensemble {

constexpr uint8_t kWireGeneric = 0x47;     // 'G' — self-describing header codec.
constexpr uint8_t kWireCompressed = 0x43;  // 'C' — bypass header compression.
// A packed datagram coalescing several complete sub-datagrams (each itself
// generic or compressed) for one destination — Ensemble's "message packing"
// transport optimization.  Layout:
//   u8 kWirePacked | u8 count | count × (u32 length, body)
constexpr uint8_t kWirePacked = 0x50;  // 'P'

// Shared-ingress demux preheader: prepended to every datagram sent to an
// SO_REUSEPORT listener group, where the receiving socket no longer
// identifies the destination endpoint.  Layout (fixed 9 bytes so GSO
// equal-size run coalescing still fires):
//   u8 kWireIngress | u32le src conn id | u32le dst conn id
// The body that follows is a complete ordinary datagram (generic,
// compressed, or packed).  Each GRO segment carries its own preheader.
constexpr uint8_t kWireIngress = 0x49;  // 'I'
constexpr size_t kWireIngressHeaderLen = 9;

}  // namespace ensemble

#endif  // ENSEMBLE_SRC_MARSHAL_WIRE_TAGS_H_
