// First-byte wire tags shared by every datagram codec.
//
// Kept in a dependency-free header so the network backends can classify
// outgoing datagrams (for the batching/packing counters in NetworkStats)
// without pulling in the event model.

#ifndef ENSEMBLE_SRC_MARSHAL_WIRE_TAGS_H_
#define ENSEMBLE_SRC_MARSHAL_WIRE_TAGS_H_

#include <cstdint>

namespace ensemble {

constexpr uint8_t kWireGeneric = 0x47;     // 'G' — self-describing header codec.
constexpr uint8_t kWireCompressed = 0x43;  // 'C' — bypass header compression.
// A packed datagram coalescing several complete sub-datagrams (each itself
// generic or compressed) for one destination — Ensemble's "message packing"
// transport optimization.  Layout:
//   u8 kWirePacked | u8 count | count × (u32 length, body)
constexpr uint8_t kWirePacked = 0x50;  // 'P'

}  // namespace ensemble

#endif  // ENSEMBLE_SRC_MARSHAL_WIRE_TAGS_H_
