// The generic wire codec: self-describing, field-tagged header marshaling.
//
// This is the analog of Ensemble's use of the OCaml value marshaler ("which
// traverses the data structure, and copies all the data into a byte string
// ... all this generality leads to substantial overhead").  Every header in
// the stack is walked field-by-field through the descriptor registry with a
// per-field type tag on the wire.  The compressed codec in src/bypass/ is the
// optimized counterpart.
//
// Datagram layout:
//   u8   kWireGeneric
//   u8   event type (kCast or kSend)
//   u16  origin rank
//   u16  dest rank (0xFFFF = none)
//   u8   header count
//   per header: u8 layer id | u8 field count | per field: u8 tag, value
//   u32  payload length, payload bytes
//
// The send side produces a scatter-gather Iovec whose first part is the
// header block and whose remaining parts alias the payload (no payload copy,
// mirroring the UNIX scatter-gather usage in the paper).

#ifndef ENSEMBLE_SRC_MARSHAL_GENERIC_CODEC_H_
#define ENSEMBLE_SRC_MARSHAL_GENERIC_CODEC_H_

#include "src/event/event.h"
#include "src/marshal/wire_tags.h"
#include "src/util/bytes.h"

namespace ensemble {

// Marshals a bottom-of-stack down event (kCast / kSend) into wire form.
// `sender_rank` is the local rank in the current view.
Iovec GenericMarshal(const Event& ev, Rank sender_rank);

// Unmarshals a contiguous received datagram.  Produces a kDeliverCast /
// kDeliverSend event whose header stack matches the sender's.  Returns false
// on malformed input.
bool GenericUnmarshal(const Bytes& datagram, Event* out);

}  // namespace ensemble

#endif  // ENSEMBLE_SRC_MARSHAL_GENERIC_CODEC_H_
