#include "src/marshal/generic_codec.h"

#include "src/marshal/header_desc.h"
#include "src/marshal/wire.h"

namespace ensemble {

namespace {
constexpr uint16_t kNoRankWire = 0xFFFF;
constexpr size_t kMaxHeaderStructSize = 64;
}  // namespace

Iovec GenericMarshal(const Event& ev, Rank sender_rank) {
  WireWriter w;
  w.U8(kWireGeneric);
  w.U8(static_cast<uint8_t>(ev.type));
  w.U16(static_cast<uint16_t>(sender_rank));
  w.U16(ev.dest == kNoRank ? kNoRankWire : static_cast<uint16_t>(ev.dest));
  w.U8(static_cast<uint8_t>(ev.hdrs.entry_count()));
  for (size_t i = 0; i < ev.hdrs.entry_count(); i++) {
    const HeaderStack::Entry& e = ev.hdrs.entry(i);
    const uint8_t* raw = ev.hdrs.entry_data(i);
    const HeaderDescriptor& desc = HeaderDescriptorFor(e.layer);
    w.U8(static_cast<uint8_t>(e.layer));
    w.U8(static_cast<uint8_t>(desc.fields.size()));
    for (const FieldSpec& f : desc.fields) {
      w.U8(static_cast<uint8_t>(f.type));
      // Field-by-field copy with type dispatch: the deliberate generality of
      // the slow path.
      switch (f.type) {
        case FieldType::kU8: {
          uint8_t v;
          std::memcpy(&v, raw + f.offset, 1);
          w.U8(v);
          break;
        }
        case FieldType::kU16: {
          uint16_t v;
          std::memcpy(&v, raw + f.offset, 2);
          w.U16(v);
          break;
        }
        case FieldType::kU32: {
          uint32_t v;
          std::memcpy(&v, raw + f.offset, 4);
          w.U32(v);
          break;
        }
        case FieldType::kU64: {
          uint64_t v;
          std::memcpy(&v, raw + f.offset, 8);
          w.U64(v);
          break;
        }
      }
    }
  }
  w.U32(static_cast<uint32_t>(ev.payload.size()));

  Iovec out(w.Take());
  out.Append(ev.payload);
  return out;
}

bool GenericUnmarshal(const Bytes& datagram, Event* out) {
  WireReader r(datagram);
  if (r.U8() != kWireGeneric) {
    return false;
  }
  auto type = static_cast<EventType>(r.U8());
  uint16_t origin = r.U16();
  uint16_t dest = r.U16();
  uint8_t nhdrs = r.U8();

  Event ev;
  switch (type) {
    case EventType::kCast:
      ev.type = EventType::kDeliverCast;
      break;
    case EventType::kSend:
      ev.type = EventType::kDeliverSend;
      break;
    default:
      return false;
  }
  ev.origin = static_cast<Rank>(origin);
  ev.dest = dest == 0xFFFF ? kNoRank : static_cast<Rank>(dest);

  uint8_t scratch[kMaxHeaderStructSize];
  for (uint8_t i = 0; i < nhdrs; i++) {
    auto layer = static_cast<LayerId>(r.U8());
    if (static_cast<size_t>(layer) >= kLayerIdCount || layer == LayerId::kNone) {
      return false;
    }
    const HeaderDescriptor* desc_ptr = TryHeaderDescriptorFor(layer);
    if (desc_ptr == nullptr) {
      return false;  // Remote named a layer with no registered header.
    }
    const HeaderDescriptor& desc = *desc_ptr;
    uint8_t nfields = r.U8();
    if (nfields != desc.fields.size() || desc.size > kMaxHeaderStructSize) {
      return false;
    }
    std::memset(scratch, 0, desc.size);
    for (const FieldSpec& f : desc.fields) {
      auto tag = static_cast<FieldType>(r.U8());
      if (tag != f.type) {
        return false;
      }
      switch (f.type) {
        case FieldType::kU8: {
          uint8_t v = r.U8();
          std::memcpy(scratch + f.offset, &v, 1);
          break;
        }
        case FieldType::kU16: {
          uint16_t v = r.U16();
          std::memcpy(scratch + f.offset, &v, 2);
          break;
        }
        case FieldType::kU32: {
          uint32_t v = r.U32();
          std::memcpy(scratch + f.offset, &v, 4);
          break;
        }
        case FieldType::kU64: {
          uint64_t v = r.U64();
          std::memcpy(scratch + f.offset, &v, 8);
          break;
        }
      }
    }
    if (!r.ok()) {
      return false;
    }
    ev.hdrs.PushRaw(layer, scratch, desc.size);
  }

  uint32_t paylen = r.U32();
  if (!r.ok() || r.remaining() != paylen) {
    return false;
  }
  if (paylen > 0) {
    // Zero-copy: the payload aliases the datagram buffer.
    ev.payload.Append(datagram.Slice(r.pos(), paylen));
  }
  *out = std::move(ev);
  return true;
}

}  // namespace ensemble
