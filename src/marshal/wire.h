// Bounds-checked little-endian byte writer/reader used by all wire codecs.

#ifndef ENSEMBLE_SRC_MARSHAL_WIRE_H_
#define ENSEMBLE_SRC_MARSHAL_WIRE_H_

#include <cstdint>
#include <cstring>
#include <vector>

#include "src/util/bytes.h"
#include "src/util/logging.h"

namespace ensemble {

class WireWriter {
 public:
  WireWriter() { buf_.reserve(64); }

  void U8(uint8_t v) { buf_.push_back(v); }
  void U16(uint16_t v) { Raw(&v, 2); }
  void U32(uint32_t v) { Raw(&v, 4); }
  void U64(uint64_t v) { Raw(&v, 8); }
  void Raw(const void* data, size_t len) {
    const auto* p = static_cast<const uint8_t*>(data);
    buf_.insert(buf_.end(), p, p + len);
  }

  size_t size() const { return buf_.size(); }
  const uint8_t* data() const { return buf_.data(); }

  Bytes Take() const { return Bytes::Copy(buf_.data(), buf_.size()); }

 private:
  std::vector<uint8_t> buf_;
};

class WireReader {
 public:
  WireReader(const uint8_t* data, size_t len) : data_(data), len_(len) {}
  explicit WireReader(const Bytes& b) : data_(b.data()), len_(b.size()) {}

  bool ok() const { return ok_; }
  size_t remaining() const { return len_ - pos_; }
  size_t pos() const { return pos_; }

  uint8_t U8() {
    uint8_t v = 0;
    Read(&v, 1);
    return v;
  }
  uint16_t U16() {
    uint16_t v = 0;
    Read(&v, 2);
    return v;
  }
  uint32_t U32() {
    uint32_t v = 0;
    Read(&v, 4);
    return v;
  }
  uint64_t U64() {
    uint64_t v = 0;
    Read(&v, 8);
    return v;
  }
  void Read(void* out, size_t len) {
    if (pos_ + len > len_) {
      ok_ = false;
      std::memset(out, 0, len);
      return;
    }
    std::memcpy(out, data_ + pos_, len);
    pos_ += len;
  }
  // Skips `len` bytes; returns the pointer to them (zero-copy view).
  const uint8_t* Skip(size_t len) {
    if (pos_ + len > len_) {
      ok_ = false;
      return nullptr;
    }
    const uint8_t* p = data_ + pos_;
    pos_ += len;
    return p;
  }

 private:
  const uint8_t* data_;
  size_t len_;
  size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace ensemble

#endif  // ENSEMBLE_SRC_MARSHAL_WIRE_H_
