#include "src/marshal/header_desc.h"

#include <array>
#include <vector>

#include "src/util/logging.h"

namespace ensemble {

size_t FieldTypeSize(FieldType t) {
  switch (t) {
    case FieldType::kU8:
      return 1;
    case FieldType::kU16:
      return 2;
    case FieldType::kU32:
      return 4;
    case FieldType::kU64:
      return 8;
  }
  return 0;
}

namespace {
std::array<HeaderDescriptor, kLayerIdCount>& Registry() {
  static std::array<HeaderDescriptor, kLayerIdCount> table;
  return table;
}
}  // namespace

const HeaderDescriptor& HeaderDescriptorFor(LayerId layer) {
  const HeaderDescriptor& d = Registry()[static_cast<size_t>(layer)];
  ENS_CHECK_MSG(d.valid(), "no header descriptor registered for " << LayerIdName(layer));
  return d;
}

const HeaderDescriptor* TryHeaderDescriptorFor(LayerId layer) {
  if (static_cast<size_t>(layer) >= kLayerIdCount) {
    return nullptr;
  }
  const HeaderDescriptor& d = Registry()[static_cast<size_t>(layer)];
  return d.valid() ? &d : nullptr;
}

void RegisterHeaderDescriptor(HeaderDescriptor desc) {
  ENS_CHECK(desc.layer != LayerId::kNone);
  Registry()[static_cast<size_t>(desc.layer)] = std::move(desc);
}

void ZeroHeaderPadding(LayerId layer, uint8_t* data, size_t size) {
  // Per-layer padding masks (true = byte belongs to a field), built for every
  // registered descriptor on first use.  All masks are built in one shot
  // under the static-init guard: sharded workers marshal concurrently, so the
  // cache must be read-only after construction (lazy per-layer fill raced).
  static const std::array<std::vector<bool>, kLayerIdCount> masks = [] {
    std::array<std::vector<bool>, kLayerIdCount> all;
    for (size_t l = 0; l < kLayerIdCount; l++) {
      const HeaderDescriptor* desc = TryHeaderDescriptorFor(static_cast<LayerId>(l));
      if (desc == nullptr) {
        continue;
      }
      auto& mask = all[l];
      mask.assign(desc->size, false);
      for (const FieldSpec& f : desc->fields) {
        for (size_t b = 0; b < FieldTypeSize(f.type); b++) {
          mask[f.offset + b] = true;
        }
      }
    }
    return all;
  }();
  const auto& mask = masks[static_cast<size_t>(layer)];
  ENS_CHECK_MSG(!mask.empty(), "no header descriptor registered for "
                                   << LayerIdName(layer));
  for (size_t i = 0; i < size && i < mask.size(); i++) {
    if (!mask[i]) {
      data[i] = 0;
    }
  }
}

}  // namespace ensemble
