#include "src/perf/perf_counters.h"

#include <cstring>

#if defined(__linux__)
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>
#endif

namespace ensemble {

#if defined(__linux__)

namespace {
int OpenCounter(uint32_t type, uint64_t config) {
  perf_event_attr attr;
  std::memset(&attr, 0, sizeof(attr));
  attr.size = sizeof(attr);
  attr.type = type;
  attr.config = config;
  attr.disabled = 1;
  attr.exclude_kernel = 1;
  attr.exclude_hv = 1;
  return static_cast<int>(syscall(SYS_perf_event_open, &attr, 0, -1, -1, 0));
}
}  // namespace

PerfCounterGroup::PerfCounterGroup() {
  struct Spec {
    const char* name;
    uint32_t type;
    uint64_t config;
  };
  const Spec specs[] = {
      {"cpu_cycles", PERF_TYPE_HARDWARE, PERF_COUNT_HW_CPU_CYCLES},
      {"instructions", PERF_TYPE_HARDWARE, PERF_COUNT_HW_INSTRUCTIONS},
      {"cache_references", PERF_TYPE_HARDWARE, PERF_COUNT_HW_CACHE_REFERENCES},
      {"cache_misses", PERF_TYPE_HARDWARE, PERF_COUNT_HW_CACHE_MISSES},
      {"branch_instructions", PERF_TYPE_HARDWARE, PERF_COUNT_HW_BRANCH_INSTRUCTIONS},
      {"dtlb_misses", PERF_TYPE_HW_CACHE,
       PERF_COUNT_HW_CACHE_DTLB | (PERF_COUNT_HW_CACHE_OP_READ << 8) |
           (PERF_COUNT_HW_CACHE_RESULT_MISS << 16)},
  };
  for (const Spec& spec : specs) {
    int fd = OpenCounter(spec.type, spec.config);
    if (fd >= 0) {
      fds_.push_back(fd);
      names_.push_back(spec.name);
    }
  }
}

PerfCounterGroup::~PerfCounterGroup() {
  for (int fd : fds_) {
    close(fd);
  }
}

void PerfCounterGroup::Start() {
  for (int fd : fds_) {
    ioctl(fd, PERF_EVENT_IOC_RESET, 0);
    ioctl(fd, PERF_EVENT_IOC_ENABLE, 0);
  }
}

std::vector<PerfCounterGroup::Reading> PerfCounterGroup::Stop() {
  std::vector<Reading> out;
  for (size_t i = 0; i < fds_.size(); i++) {
    ioctl(fds_[i], PERF_EVENT_IOC_DISABLE, 0);
    uint64_t value = 0;
    if (read(fds_[i], &value, sizeof(value)) == sizeof(value)) {
      out.push_back({names_[i], value});
    }
  }
  return out;
}

#else  // !__linux__

PerfCounterGroup::PerfCounterGroup() = default;
PerfCounterGroup::~PerfCounterGroup() = default;
void PerfCounterGroup::Start() {}
std::vector<PerfCounterGroup::Reading> PerfCounterGroup::Stop() { return {}; }

#endif

}  // namespace ensemble
