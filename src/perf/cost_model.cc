#include "src/perf/cost_model.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <algorithm>
#include <memory>

#include "src/bypass/compiler.h"
#include "src/obs/json.h"
#include "src/perf/latency_harness.h"
#include "src/perf/timer.h"
#include "src/stack/engine.h"
#include "src/trans/transport.h"
#include "src/util/logging.h"

namespace ensemble {
namespace perf {

namespace {

// The latency harness's measurement conditions: every CCP holds, no timers
// or gossip inside the horizon.  Calibration must compile its throwaway
// routes under the SAME params it measures under, or the composed unit count
// would not match the measured trace (local_loopback adds a split arm).
LayerParams QuietParams(LayerParams base) {
  base.local_loopback = false;
  base.mflow_window = 1u << 30;
  base.pt2pt_window = 1u << 30;
  base.stable_interval = 1u << 30;
  return base;
}

// Composed cost units of the cast route for a layer list: compile a
// throwaway stack exactly the way GroupEndpoint does and ask the route.
double RouteUnitsOf(const std::vector<LayerId>& layers, const LayerParams& params) {
  auto stack = BuildStack(EngineKind::kFunctional, layers, params, EndpointId{1});
  auto view = std::make_shared<View>();
  view->vid = ViewId{0, 1};
  view->members = {EndpointId{1}, EndpointId{2}};
  stack->Init(view);
  std::string error;
  auto route = CompileRoutePair(stack.get(), /*cast=*/true, &error);
  if (route == nullptr) {
    return 0;
  }
  return route->CostUnits();
}

// One-way A->B micro-run over real loopback: `msgs` datagrams of `bytes`
// through `cfg` (optionally packed), waves of 256.  Returns ns per message,
// or a negative value when sockets are unavailable.
double UdpProbeNsPerMsg(const NetBackendConfig& cfg, size_t pack_window,
                        size_t msgs, size_t bytes) {
  UdpNetwork net;
  net.set_backend_config(cfg);
  EndpointId a{1}, b{2};
  size_t got = 0;
  Transport unpacker;
  net.Attach(a, [](const Packet&) {});
  net.Attach(b, [&](const Packet& p) {
    if (Transport::IsPacked(p.datagram)) {
      std::vector<Bytes> subs;
      if (unpacker.Unpack(p.datagram, &subs)) {
        got += subs.size();
      }
    } else {
      got++;
    }
  });
  if (!net.ok()) {
    return -1;
  }

  Transport packer;
  bool packing = pack_window > 1;
  if (packing) {
    packer.EnablePacking(
        [&](const Transport::PackDest&, const Iovec& wire) { net.Send(a, b, wire); },
        pack_window, 60000);
  }

  Bytes payload = Bytes::Allocate(bytes);
  std::memset(payload.MutableData(), 0x5A, bytes);

  PhaseTimer t;
  t.Start();
  size_t sent = 0;
  while (sent < msgs) {
    size_t n = std::min<size_t>(256, msgs - sent);
    for (size_t i = 0; i < n; i++) {
      if (packing) {
        packer.PackSend(b, Iovec(payload));
      } else {
        net.Send(a, b, Iovec(payload));
      }
    }
    sent += n;
    if (packing) {
      packer.FlushPacked();
    }
    net.Flush();
    uint64_t deadline = NowNanos() + Seconds(1);
    while (got < sent && NowNanos() < deadline) {
      net.Poll();
    }
  }
  t.Stop();
  if (got == 0) {
    return -1;
  }
  return static_cast<double>(t.total_ns()) / static_cast<double>(got);
}

// Least-squares fit of cost(batch) = per_msg + syscall / batch over the
// measured points (x = 1/batch).  Two points minimum; clamped nonnegative.
BackendCost FitAmortization(const std::vector<BatchPoint>& pts, int backend) {
  BackendCost out;
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  int n = 0;
  for (const BatchPoint& p : pts) {
    if (p.backend != backend || p.ns_per_msg <= 0) {
      continue;
    }
    double x = 1.0 / static_cast<double>(p.batch);
    sx += x;
    sy += p.ns_per_msg;
    sxx += x * x;
    sxy += x * p.ns_per_msg;
    n++;
  }
  if (n < 2) {
    return out;
  }
  double denom = n * sxx - sx * sx;
  if (std::fabs(denom) < 1e-12) {
    return out;
  }
  double b = (n * sxy - sx * sy) / denom;  // syscall_ns.
  double a = (sy - b * sx) / n;            // per_msg_ns.
  out.syscall_ns = std::max(b, 0.0);
  out.per_msg_ns = std::max(a, 1.0);
  out.available = true;
  return out;
}

int BackendIndex(NetBackend b) {
  int i = static_cast<int>(b);
  return (i >= 0 && i < kNumBackendTerms) ? i : static_cast<int>(NetBackend::kMmsg);
}

// ---- minimal JSON reader (COSTMODEL.json only) -----------------------------
//
// Save() emits via JsonWriter and runs the strict validator; Load() only has
// to read back what Save wrote — a flat object of numbers plus the "points"
// array of flat objects.  This cursor-based reader accepts exactly that
// shape (plus whitespace) and rejects everything else.

struct JsonCursor {
  const char* p;
  const char* end;

  void SkipWs() {
    while (p < end && std::isspace(static_cast<unsigned char>(*p)) != 0) {
      p++;
    }
  }
  bool Eat(char c) {
    SkipWs();
    if (p < end && *p == c) {
      p++;
      return true;
    }
    return false;
  }
  bool Peek(char c) {
    SkipWs();
    return p < end && *p == c;
  }
  bool ReadString(std::string* out) {
    SkipWs();
    if (p >= end || *p != '"') {
      return false;
    }
    p++;
    out->clear();
    while (p < end && *p != '"') {
      if (*p == '\\') {
        return false;  // Save() never escapes term names.
      }
      out->push_back(*p++);
    }
    return Eat('"');
  }
  bool ReadNumber(double* out) {
    SkipWs();
    char* after = nullptr;
    *out = std::strtod(p, &after);
    if (after == p || after > end) {
      return false;
    }
    p = after;
    return true;
  }
  bool ReadBool(bool* out) {
    SkipWs();
    if (end - p >= 4 && std::strncmp(p, "true", 4) == 0) {
      *out = true;
      p += 4;
      return true;
    }
    if (end - p >= 5 && std::strncmp(p, "false", 5) == 0) {
      *out = false;
      p += 5;
      return true;
    }
    return false;
  }
};

}  // namespace

CostModel CostModel::Defaults() {
  CostModel m;
  // Order-of-magnitude priors for a modern x86 core; every term is replaced
  // by Calibrate() when the corresponding probe can run.
  m.layer_dispatch_ns = 150;
  m.bypass_unit_ns = 8;
  m.pack_submsg_ns = 120;
  m.ring_hop_ns = 8000;
  m.steal_ns = 60000;
  m.backend[static_cast<int>(NetBackend::kEager)] = {true, 300, 2200};
  m.backend[static_cast<int>(NetBackend::kMmsg)] = {true, 350, 2400};
  // Uring availability is a runtime property; Defaults() claims nothing and
  // lets calibration (or the autotuner's availability filter) decide.
  m.backend[static_cast<int>(NetBackend::kUring)] = {false, 350, 1800};
  return m;
}

std::string CostModel::ToJson() const {
  obs::JsonWriter w;
  w.BeginObject();
  w.KV("layer_dispatch_ns", layer_dispatch_ns);
  w.KV("bypass_unit_ns", bypass_unit_ns);
  w.KV("pack_submsg_ns", pack_submsg_ns);
  w.KV("ring_hop_ns", ring_hop_ns);
  w.KV("steal_ns", steal_ns);
  w.KV("calibrated", calibrated);
  static const char* kNames[kNumBackendTerms] = {"eager", "mmsg", "uring"};
  for (int i = 0; i < kNumBackendTerms; i++) {
    std::string prefix = std::string("backend_") + kNames[i];
    w.KV(prefix + "_available", backend[i].available);
    w.KV(prefix + "_per_msg_ns", backend[i].per_msg_ns);
    w.KV(prefix + "_syscall_ns", backend[i].syscall_ns);
  }
  w.Key("points");
  w.BeginArray();
  for (const BatchPoint& p : points) {
    w.BeginObject();
    w.KV("backend", static_cast<int64_t>(p.backend));
    w.KV("batch", static_cast<uint64_t>(p.batch));
    w.KV("ns_per_msg", p.ns_per_msg);
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  return w.Take();
}

bool CostModel::FromJson(const std::string& text, CostModel* out) {
  *out = CostModel{};
  JsonCursor c{text.data(), text.data() + text.size()};
  if (!c.Eat('{')) {
    return false;
  }
  static const char* kNames[kNumBackendTerms] = {"eager", "mmsg", "uring"};
  bool first = true;
  while (!c.Peek('}')) {
    if (!first && !c.Eat(',')) {
      return false;
    }
    first = false;
    std::string key;
    if (!c.ReadString(&key) || !c.Eat(':')) {
      return false;
    }
    if (key == "points") {
      if (!c.Eat('[')) {
        return false;
      }
      bool first_pt = true;
      while (!c.Peek(']')) {
        if (!first_pt && !c.Eat(',')) {
          return false;
        }
        first_pt = false;
        if (!c.Eat('{')) {
          return false;
        }
        BatchPoint pt;
        bool first_field = true;
        while (!c.Peek('}')) {
          if (!first_field && !c.Eat(',')) {
            return false;
          }
          first_field = false;
          std::string f;
          double v = 0;
          if (!c.ReadString(&f) || !c.Eat(':') || !c.ReadNumber(&v)) {
            return false;
          }
          if (f == "backend") {
            pt.backend = static_cast<int>(v);
          } else if (f == "batch") {
            pt.batch = static_cast<size_t>(v);
          } else if (f == "ns_per_msg") {
            pt.ns_per_msg = v;
          }
        }
        if (!c.Eat('}')) {
          return false;
        }
        out->points.push_back(pt);
      }
      if (!c.Eat(']')) {
        return false;
      }
      continue;
    }
    if (key == "calibrated") {
      if (!c.ReadBool(&out->calibrated)) {
        return false;
      }
      continue;
    }
    bool matched_backend = false;
    for (int i = 0; i < kNumBackendTerms; i++) {
      std::string prefix = std::string("backend_") + kNames[i];
      if (key == prefix + "_available") {
        if (!c.ReadBool(&out->backend[i].available)) {
          return false;
        }
        matched_backend = true;
        break;
      }
      if (key == prefix + "_per_msg_ns") {
        if (!c.ReadNumber(&out->backend[i].per_msg_ns)) {
          return false;
        }
        matched_backend = true;
        break;
      }
      if (key == prefix + "_syscall_ns") {
        if (!c.ReadNumber(&out->backend[i].syscall_ns)) {
          return false;
        }
        matched_backend = true;
        break;
      }
    }
    if (matched_backend) {
      continue;
    }
    double v = 0;
    if (!c.ReadNumber(&v)) {
      return false;
    }
    if (key == "layer_dispatch_ns") {
      out->layer_dispatch_ns = v;
    } else if (key == "bypass_unit_ns") {
      out->bypass_unit_ns = v;
    } else if (key == "pack_submsg_ns") {
      out->pack_submsg_ns = v;
    } else if (key == "ring_hop_ns") {
      out->ring_hop_ns = v;
    } else if (key == "steal_ns") {
      out->steal_ns = v;
    }
    // Unknown numeric terms are skipped: newer writers stay loadable.
  }
  return c.Eat('}');
}

bool CostModel::Save(const std::string& path) const {
  std::string json = ToJson();
  std::string error;
  if (!obs::ValidateJson(json, &error)) {
    ENS_LOG(kError) << "COSTMODEL.json failed validation: " << error;
    return false;
  }
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return false;
  }
  std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  return true;
}

bool CostModel::Load(const std::string& path, CostModel* out) {
  FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) {
    return false;
  }
  std::string text;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) {
    text.append(buf, n);
  }
  std::fclose(f);
  return FromJson(text, out);
}

CostModel Calibrate(const CalibrationConfig& config) {
  CostModel m = CostModel::Defaults();

  // ---- stack terms: code latency, no syscalls ------------------------------
  //
  // The measured total (all four phases) divides by the composed unit count:
  // marshal/wire costs fold into the per-layer / per-unit terms rather than
  // getting terms of their own, so the model prices what a message actually
  // costs end to end through the code.
  std::vector<LayerId> layers = FourLayerStack();
  LatencyConfig lc;
  lc.layers = layers;
  lc.reps = config.stack_reps;

  lc.mode = StackMode::kFunctional;
  PhaseLatency func = MeasureCodeLatency(lc);
  if (func.total_ns() > 0) {
    m.layer_dispatch_ns = func.total_ns() / (2.0 * static_cast<double>(layers.size()));
    m.calibrated = true;
  }

  lc.mode = StackMode::kMachine;
  PhaseLatency mach = MeasureCodeLatency(lc);
  double units = RouteUnitsOf(layers, QuietParams(lc.params));
  if (mach.total_ns() > 0 && units > 0) {
    m.bypass_unit_ns = mach.total_ns() / units;
  }

  // ---- backend terms: per-backend batch amortization curve -----------------
  if (config.probe_udp) {
    struct Probe {
      NetBackend backend;
      size_t batch;
    };
    const Probe probes[] = {
        {NetBackend::kEager, 1},
        {NetBackend::kMmsg, 1},
        {NetBackend::kMmsg, 4},
        {NetBackend::kMmsg, 16},
        {NetBackend::kUring, 1},
        {NetBackend::kUring, 4},
        {NetBackend::kUring, 16},
    };
    for (const Probe& p : probes) {
      NetBackendConfig cfg;
      cfg.backend = p.backend;
      cfg.send_batch = cfg.recv_batch = p.batch;
      cfg.ingress = IngressMode::kPerEndpoint;
      // Probe each backend as requested; a uring probe that falls back to
      // mmsg would poison the uring fit, so verify what actually ran.
      UdpNetwork check;
      check.set_backend_config(cfg);
      if (check.active_backend() != p.backend) {
        continue;  // Unavailable (uring without kernel support, etc.).
      }
      double ns = UdpProbeNsPerMsg(cfg, /*pack_window=*/1, config.msgs_per_probe, 64);
      if (ns > 0) {
        m.points.push_back({static_cast<int>(p.backend), p.batch, ns});
      }
    }
    for (int b = 0; b < kNumBackendTerms; b++) {
      BackendCost fit = FitAmortization(m.points, b);
      if (fit.available) {
        m.backend[b] = fit;
        m.calibrated = true;
      } else if (b == static_cast<int>(NetBackend::kEager)) {
        // Eager has one point (batch is meaningless); its syscall-pair cost
        // is the same kernel work the mmsg fit isolated.
        for (const BatchPoint& p : m.points) {
          if (p.backend == b) {
            double syscall = m.backend[static_cast<int>(NetBackend::kMmsg)].syscall_ns;
            m.backend[b].syscall_ns = syscall;
            m.backend[b].per_msg_ns = std::max(p.ns_per_msg - syscall, 1.0);
            m.backend[b].available = true;
            m.calibrated = true;
          }
        }
      } else {
        m.backend[b].available = false;  // No probe ran: not available here.
      }
    }
    // Packing overhead: a packed run's measured cost minus what the fitted
    // terms already explain.
    if (m.backend[static_cast<int>(NetBackend::kMmsg)].available) {
      NetBackendConfig cfg = NetBackendConfig::Batched(16);
      cfg.ingress = IngressMode::kPerEndpoint;
      const size_t kPack = 16;
      double packed = UdpProbeNsPerMsg(cfg, kPack, config.msgs_per_probe, 64);
      if (packed > 0) {
        const BackendCost& bc = m.backend[static_cast<int>(NetBackend::kMmsg)];
        double explained = (bc.per_msg_ns + bc.syscall_ns / 16.0) / static_cast<double>(kPack);
        m.pack_submsg_ns = std::max(packed - explained, 0.0);
      }
    }
  }
  return m;
}

void RefineFromMetrics(const obs::MetricsSnapshot& snap, CostModel* m) {
  const obs::Sample* hop = snap.Find("sched.delivery_latency_ns");
  if (hop != nullptr && hop->count > 0) {
    m->ring_hop_ns = static_cast<double>(hop->Percentile(0.5));
  }
  const obs::Sample* steal = snap.Find("sched.steal_duration_ns");
  if (steal != nullptr && steal->count > 0) {
    m->steal_ns = static_cast<double>(steal->Percentile(0.5));
  }
}

double StackCostNs(const CostModel& m, const RoutePair* route, size_t layers) {
  if (route != nullptr) {
    return route->CostUnits() * m.bypass_unit_ns;
  }
  return 2.0 * static_cast<double>(layers) * m.layer_dispatch_ns;
}

double StackCostOf(const CostModel& m, const EndpointConfig& ep) {
  if (ep.mode == StackMode::kMachine || ep.mode == StackMode::kHand) {
    double units = RouteUnitsOf(ep.layers, QuietParams(ep.params));
    if (units > 0) {
      return units * m.bypass_unit_ns;
    }
  }
  return 2.0 * static_cast<double>(ep.layers.size()) * m.layer_dispatch_ns;
}

std::string KnobVector::Label() const {
  char buf[128];
  std::snprintf(buf, sizeof buf, "%s b%zu p%zu f%.1fms i%.1f r%zu c%zu",
                NetBackendName(backend), batch, pack_window,
                static_cast<double>(flush_deadline) / 1e6, steal_min_imbalance,
                ring_capacity, credit_floor);
  return buf;
}

uint32_t KnobVector::Encode(bool shared_ingress) const {
  // bits 0-1  backend (NetBackend value, never kAuto)
  // bit  2    shared ingress
  // bits 3-9  batch (clamped to 127)
  // bits 10-16 pack window (clamped to 127)
  // bits 17-24 flush deadline in 100us units (clamped to 255)
  // bits 25-28 steal min_imbalance in halves (clamped to 15)
  // bits 29-30 ring capacity as log4(capacity / 1024): 1k=0, 4k=1, 16k=2
  // bit  31    credit floor: 0 = 32/link, 1 = 128/link
  uint32_t v = static_cast<uint32_t>(BackendIndex(backend)) & 0x3u;
  v |= (shared_ingress ? 1u : 0u) << 2;
  v |= (static_cast<uint32_t>(std::min<size_t>(batch, 127)) & 0x7Fu) << 3;
  v |= (static_cast<uint32_t>(std::min<size_t>(pack_window, 127)) & 0x7Fu) << 10;
  uint32_t flush_100us =
      static_cast<uint32_t>(std::min<VTime>(flush_deadline / Micros(100), 255));
  v |= (flush_100us & 0xFFu) << 17;
  uint32_t halves = static_cast<uint32_t>(
      std::min(std::max(steal_min_imbalance, 0.0) * 2.0, 15.0));
  v |= (halves & 0xFu) << 25;
  uint32_t cap_log4 = 0;
  for (size_t c = ring_capacity; c >= 4096 && cap_log4 < 3; c /= 4) {
    cap_log4++;
  }
  v |= (cap_log4 & 0x3u) << 29;
  v |= (credit_floor > 32 ? 1u : 0u) << 31;
  return v;
}

Prediction PredictThroughput(const CostModel& m, const WorkloadDesc& w,
                             const KnobVector& k) {
  Prediction out;
  const BackendCost& b = m.backend[BackendIndex(k.backend)];

  size_t pack = std::max<size_t>(1, std::min(k.pack_window, std::max<size_t>(w.burst, 1)));
  size_t burst_datagrams = std::max<size_t>(1, w.burst / pack);
  size_t eff_batch = k.backend == NetBackend::kEager
                         ? 1
                         : std::max<size_t>(1, std::min(k.batch, burst_datagrams));

  double wire_ns = (b.per_msg_ns + b.syscall_ns / static_cast<double>(eff_batch)) /
                   static_cast<double>(pack);
  double pack_ns = pack > 1 ? m.pack_submsg_ns : 0;
  double per_msg_ns =
      w.stack_ns + pack_ns + wire_ns + w.cross_shard_fraction * m.ring_hop_ns;

  // Credit-park stall: per-link ring credits are capacity / links after the
  // runtime's grow-until-floor rule.  A burst whose cross-shard share
  // overflows the sender's credit quota parks until the consumer drains —
  // charge the overflowing fraction a second ring hop (park + wake + regrant
  // round trip).  This is what makes ring_capacity / credit_floor live knobs:
  // bursty cross-shard workloads buy bigger rings, local ones keep the cache-
  // friendlier default.
  if (w.cross_shard_fraction > 0 && w.workers > 0) {
    size_t links = static_cast<size_t>(w.workers) + 1;
    size_t cap = 2;
    while (cap < k.ring_capacity) {
      cap <<= 1;
    }
    while (cap / links < std::max<size_t>(1, k.credit_floor)) {
      cap <<= 1;
    }
    double credits = static_cast<double>(cap / links);
    double inflight = static_cast<double>(w.burst) * w.cross_shard_fraction;
    if (inflight > credits) {
      double overflow = (inflight - credits) / inflight;
      per_msg_ns += overflow * w.cross_shard_fraction * m.ring_hop_ns;
    }
  }
  if (per_msg_ns <= 0) {
    return out;
  }
  out.msgs_per_sec = 1e9 / per_msg_ns;

  if (w.steal_eligible && w.skew_horizon_ns > 0) {
    // Work lost to a skewed phase: the idle worker detects the imbalance
    // (load-EWMA crossing takes ~threshold poll cycles of ~1ms) and pays one
    // calibrated migration, amortized over the phase.
    double detect_ns = k.steal_min_imbalance * static_cast<double>(Millis(1));
    double lost = (detect_ns + m.steal_ns) / w.skew_horizon_ns;
    out.msgs_per_sec *= std::max(0.5, 1.0 - lost);
  }

  // Latency: processing plus the staging wait.  A staged message leaves when
  // the window fills (fill-limited) or the flush deadline fires, whichever
  // is sooner; the median message waits half of that, the tail all of it.
  double window = static_cast<double>(eff_batch * pack);
  double fill_ns = (window - 1.0) * per_msg_ns;
  double max_wait = window <= 1.0
                        ? 0.0
                        : std::min(static_cast<double>(k.flush_deadline), fill_ns);
  out.p50_ns = per_msg_ns + max_wait / 2.0;
  out.p99_ns = per_msg_ns + max_wait;
  return out;
}

}  // namespace perf
}  // namespace ensemble
