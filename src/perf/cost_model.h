// Compositional cost model for the stack's performance knobs.
//
// The paper composes per-layer *semantics* through the bypass compiler; this
// module composes per-layer and per-knob *cost* the same way (extra-p's
// compositional performance models, CAMP's cost bounds from protocol
// structure).  A calibration pass derives per-event cost terms from short
// seeded micro-runs plus the existing obs histograms, persists them as
// COSTMODEL.json, and a predictor composes the terms along the very trace
// the bypass compiler walks (RoutePair::CostUnits) to predict msgs/sec and
// p50/p99 delivery latency for any candidate knob vector.  The autotuner
// (src/runtime/autotune.h) enumerates the knob lattice against this
// predictor instead of hand-tuning.
//
// Model terms (all nanoseconds unless noted):
//
//   layer_dispatch_ns   per layer per event on the un-bypassed (FUNC) path
//   bypass_unit_ns      per BypassRule cost unit along a fused trace; a
//                       route's stack cost = CostUnits() * bypass_unit_ns
//   pack_submsg_ns      per sub-message packing/unpacking overhead
//   ring_hop_ns         cross-shard ring post -> ProcessMsg (from the
//                       sched.delivery_latency_ns histogram)
//   steal_ns            one ownership migration (sched.steal_duration_ns)
//   backend[b]          {per_msg_ns, syscall_ns}: user-space per-datagram
//                       cost and per-syscall(-pair) cost, fitted from the
//                       measured batch amortization curve
//                       cost(batch) = per_msg_ns + syscall_ns / batch
//
// Composition rule for one message with knob vector k on workload w:
//
//   cost = stack_ns                               (trace composition)
//        + pack_submsg_ns * [k.pack > 1]          (packing tax)
//        + (per_msg_ns + syscall_ns/batch) / pack (wire tax, amortized)
//        + w.cross_shard_fraction * ring_hop_ns   (sharding tax)
//
//   msgs/sec = 1e9 / cost;  p50 = cost + propagation;  p99 adds the staging
//   wait (min(flush deadline, time to fill a batch)).

#ifndef ENSEMBLE_SRC_PERF_COST_MODEL_H_
#define ENSEMBLE_SRC_PERF_COST_MODEL_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "src/app/endpoint.h"
#include "src/net/udp.h"
#include "src/obs/metrics.h"
#include "src/util/vtime.h"

namespace ensemble {

class RoutePair;

namespace perf {

// Indexed by NetBackend value (kEager=0, kMmsg=1, kUring=2); kAuto has no
// cost of its own — the autotuner replaces it.
constexpr int kNumBackendTerms = 3;

struct BackendCost {
  bool available = false;
  double per_msg_ns = 0;  // User-space per-datagram cost (syscalls excluded).
  double syscall_ns = 0;  // One send+recv syscall(-pair), amortized over batch.
};

// One measured point of the batch amortization curve, kept in the artifact
// so the fit can be audited (and re-fitted offline).
struct BatchPoint {
  int backend = 0;  // NetBackend value.
  size_t batch = 1;
  double ns_per_msg = 0;
};

struct CostModel {
  double layer_dispatch_ns = 0;
  double bypass_unit_ns = 0;
  double pack_submsg_ns = 0;
  double ring_hop_ns = 0;
  double steal_ns = 0;
  BackendCost backend[kNumBackendTerms];
  std::vector<BatchPoint> points;  // Raw calibration evidence.
  bool calibrated = false;         // False = Defaults() placeholder terms.

  // Plausible hardcoded terms so tests and socketless environments get a
  // usable model without a calibration run.
  static CostModel Defaults();

  // COSTMODEL.json round-trip.  The document is one flat object of numeric
  // terms plus a "points" array; Save validates before writing (strict
  // validator) and Load accepts only documents Save produces.
  std::string ToJson() const;
  static bool FromJson(const std::string& text, CostModel* out);
  bool Save(const std::string& path) const;
  static bool Load(const std::string& path, CostModel* out);
};

struct CalibrationConfig {
  int stack_reps = 4000;        // Latency-harness repetitions per mode.
  size_t msgs_per_probe = 3000;  // Datagrams per backend x batch micro-run.
  bool probe_udp = true;     // False: keep Defaults() backend terms.
  bool probe_runtime = true;  // False: keep Defaults() ring/steal terms.
};

// Short seeded micro-runs -> terms.  Stack terms come from the latency
// harness (no syscalls); backend terms from per-backend A->B UDP runs at
// batch depths {1,4,16} fitted to a + b/batch; ring/steal terms from a brief
// two-shard channel runtime read back through the obs histograms.  Probes
// that cannot run in this environment (no sockets) leave the Defaults()
// term in place; `calibrated` is set if any probe succeeded.
CostModel Calibrate(const CalibrationConfig& config = {});

// Overwrites the scheduler terms from a live runtime's metrics snapshot
// (sched.delivery_latency_ns / sched.steal_duration_ns p50).  Terms whose
// histogram is empty are left untouched.
void RefineFromMetrics(const obs::MetricsSnapshot& snap, CostModel* m);

// ---- compositional prediction ---------------------------------------------

// Per-message user-space stack cost, composed along the compiled route's
// trace (bypassed) or the layer walk (normal path).  `route` may be null:
// then the cost is layers * layer_dispatch_ns per direction.
double StackCostNs(const CostModel& m, const RoutePair* route, size_t layers);

// Same, from a stack description without a live stack: compiles a throwaway
// pair for `ep` (mode kMachine composes the bypass trace) and prices it.
double StackCostOf(const CostModel& m, const EndpointConfig& ep);

// A candidate configuration: the discrete knobs the autotuner may set.
struct KnobVector {
  NetBackend backend = NetBackend::kMmsg;
  size_t batch = 16;          // send_batch == recv_batch staging depth.
  size_t pack_window = 1;     // 1 = packing off.
  VTime flush_deadline = Millis(1);  // Endpoint timer driving Flush().
  double steal_min_imbalance = 4.0;
  // Cross-shard ring provisioning (startup-only knobs: rings are sized in
  // the ShardRuntime constructor).  The runtime grows the capacity until
  // every link's credit quota reaches credit_floor, so the pair together
  // determines per-link credits = capacity / (workers + 1).
  size_t ring_capacity = 4096;
  size_t credit_floor = 32;

  std::string Label() const;
  // Gauge encoding for tune.active_config (documented in autotune.h).
  uint32_t Encode(bool shared_ingress) const;
};

struct WorkloadDesc {
  size_t msg_bytes = 64;
  double stack_ns = 0;               // StackCostNs/StackCostOf result.
  double cross_shard_fraction = 0;   // Messages that ride an MPSC ring hop.
  size_t burst = 256;                // Msgs available per flush boundary.
  int workers = 1;                   // Shard count (sets links = workers + 1).
  // Skewed-placement workloads: work stealing will rebalance.  The predictor
  // charges detection time (the load EWMA needs ~steal_min_imbalance poll
  // cycles of ~1ms to cross the threshold) plus the calibrated steal_ns per
  // migration, amortized over the skew horizon — so a lower threshold wins
  // until migration cost dominates.
  bool steal_eligible = false;
  double skew_horizon_ns = 1e8;      // How long a skewed phase persists.
};

struct Prediction {
  double msgs_per_sec = 0;
  double p50_ns = 0;
  double p99_ns = 0;
};

Prediction PredictThroughput(const CostModel& m, const WorkloadDesc& w,
                             const KnobVector& k);

}  // namespace perf
}  // namespace ensemble

#endif  // ENSEMBLE_SRC_PERF_COST_MODEL_H_
