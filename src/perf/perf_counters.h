// Hardware performance counters (Table 2a's methodology).
//
// The paper read Pentium II performance-monitoring counters (data memory
// refs, ifetches, iTLB misses, decoded instructions, stalls, unhalted
// cycles).  We use the portable Linux perf_event interface for the closest
// modern equivalents — cycles, instructions, cache references/misses, dTLB
// misses, branches.  When the kernel forbids PMU access (common in
// containers: perf_event_paranoid, seccomp), `available()` is false and the
// benches report software proxy counters instead (allocations, copies,
// dispatches) — see DESIGN.md's substitution table.

#ifndef ENSEMBLE_SRC_PERF_PERF_COUNTERS_H_
#define ENSEMBLE_SRC_PERF_PERF_COUNTERS_H_

#include <cstdint>
#include <string>
#include <vector>

namespace ensemble {

class PerfCounterGroup {
 public:
  struct Reading {
    std::string name;
    uint64_t value = 0;
  };

  PerfCounterGroup();
  ~PerfCounterGroup();

  PerfCounterGroup(const PerfCounterGroup&) = delete;
  PerfCounterGroup& operator=(const PerfCounterGroup&) = delete;

  // True when at least the cycle counter opened.
  bool available() const { return !fds_.empty(); }

  void Start();
  std::vector<Reading> Stop();

 private:
  std::vector<int> fds_;
  std::vector<std::string> names_;
};

}  // namespace ensemble

#endif  // ENSEMBLE_SRC_PERF_PERF_COUNTERS_H_
