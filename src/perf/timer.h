// Wall-clock timing helpers for the latency harness.

#ifndef ENSEMBLE_SRC_PERF_TIMER_H_
#define ENSEMBLE_SRC_PERF_TIMER_H_

#include <chrono>
#include <cstdint>

namespace ensemble {

inline uint64_t NowNanos() {
  return static_cast<uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                   std::chrono::steady_clock::now().time_since_epoch())
                                   .count());
}

// Accumulates elapsed time across Start/Stop pairs.
class PhaseTimer {
 public:
  void Start() { start_ = NowNanos(); }
  void Stop() { total_ += NowNanos() - start_; }
  uint64_t total_ns() const { return total_; }
  void Reset() { total_ = 0; }

 private:
  uint64_t start_ = 0;
  uint64_t total_ = 0;
};

}  // namespace ensemble

#endif  // ENSEMBLE_SRC_PERF_TIMER_H_
