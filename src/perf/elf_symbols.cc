#include "src/perf/elf_symbols.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#if defined(__linux__)
#include <elf.h>
#include <unistd.h>
#endif

namespace ensemble {

#if defined(__linux__)

namespace {

// Lowest PT_LOAD virtual address of the executable (link-time base).
uint64_t MinLoadVaddr(const std::vector<char>& image) {
  const auto* ehdr = reinterpret_cast<const Elf64_Ehdr*>(image.data());
  uint64_t min_vaddr = UINT64_MAX;
  for (uint16_t i = 0; i < ehdr->e_phnum; i++) {
    const auto* phdr = reinterpret_cast<const Elf64_Phdr*>(
        image.data() + ehdr->e_phoff + static_cast<size_t>(i) * ehdr->e_phentsize);
    if (phdr->p_type == PT_LOAD) {
      min_vaddr = std::min(min_vaddr, static_cast<uint64_t>(phdr->p_vaddr));
    }
  }
  return min_vaddr == UINT64_MAX ? 0 : min_vaddr;
}

// Runtime base address of our own executable mapping.
uint64_t RuntimeBase() {
  std::ifstream maps("/proc/self/maps");
  std::string exe_path;
  {
    char buf[4096];
    ssize_t n = readlink("/proc/self/exe", buf, sizeof(buf) - 1);
    if (n <= 0) {
      return 0;
    }
    buf[n] = '\0';
    exe_path = buf;
  }
  std::string line;
  uint64_t base = UINT64_MAX;
  while (std::getline(maps, line)) {
    if (line.find(exe_path) == std::string::npos) {
      continue;
    }
    uint64_t start = 0;
    if (std::sscanf(line.c_str(), "%lx-", &start) == 1) {
      base = std::min(base, start);
    }
  }
  return base == UINT64_MAX ? 0 : base;
}

}  // namespace

ElfSymbolTable::ElfSymbolTable() {
  std::ifstream exe("/proc/self/exe", std::ios::binary);
  if (!exe) {
    return;
  }
  std::vector<char> image((std::istreambuf_iterator<char>(exe)),
                          std::istreambuf_iterator<char>());
  if (image.size() < sizeof(Elf64_Ehdr) || std::memcmp(image.data(), ELFMAG, SELFMAG) != 0) {
    return;
  }
  const auto* ehdr = reinterpret_cast<const Elf64_Ehdr*>(image.data());
  if (ehdr->e_ident[EI_CLASS] != ELFCLASS64) {
    return;
  }

  uint64_t bias = 0;
  if (ehdr->e_type == ET_DYN) {
    bias = RuntimeBase() - MinLoadVaddr(image);
  }

  // Locate .symtab and its string table.
  const char* shstr =
      image.data() +
      reinterpret_cast<const Elf64_Shdr*>(image.data() + ehdr->e_shoff +
                                          static_cast<size_t>(ehdr->e_shstrndx) *
                                              ehdr->e_shentsize)
          ->sh_offset;
  for (uint16_t i = 0; i < ehdr->e_shnum; i++) {
    const auto* shdr = reinterpret_cast<const Elf64_Shdr*>(
        image.data() + ehdr->e_shoff + static_cast<size_t>(i) * ehdr->e_shentsize);
    if (shdr->sh_type != SHT_SYMTAB || std::strcmp(shstr + shdr->sh_name, ".symtab") != 0) {
      continue;
    }
    const auto* strtab_hdr = reinterpret_cast<const Elf64_Shdr*>(
        image.data() + ehdr->e_shoff + static_cast<size_t>(shdr->sh_link) * ehdr->e_shentsize);
    const char* strtab = image.data() + strtab_hdr->sh_offset;
    size_t count = shdr->sh_size / sizeof(Elf64_Sym);
    for (size_t s = 0; s < count; s++) {
      const auto* sym = reinterpret_cast<const Elf64_Sym*>(
          image.data() + shdr->sh_offset + s * sizeof(Elf64_Sym));
      if (ELF64_ST_TYPE(sym->st_info) != STT_FUNC || sym->st_size == 0) {
        continue;
      }
      SymbolInfo info;
      info.name = strtab + sym->st_name;
      info.addr = sym->st_value + bias;
      info.size = sym->st_size;
      symbols_.push_back(std::move(info));
    }
    break;
  }
  std::sort(symbols_.begin(), symbols_.end(),
            [](const SymbolInfo& a, const SymbolInfo& b) { return a.addr < b.addr; });
  loaded_ = !symbols_.empty();
}

const SymbolInfo* ElfSymbolTable::FindByAddress(const void* code_addr) const {
  uint64_t addr = reinterpret_cast<uint64_t>(code_addr);
  auto it = std::upper_bound(
      symbols_.begin(), symbols_.end(), addr,
      [](uint64_t a, const SymbolInfo& s) { return a < s.addr; });
  if (it == symbols_.begin()) {
    return nullptr;
  }
  --it;
  if (addr >= it->addr && addr < it->addr + it->size) {
    return &*it;
  }
  return nullptr;
}

const SymbolInfo* ElfSymbolTable::FindByNameSubstring(const std::string& substr) const {
  for (const SymbolInfo& s : symbols_) {
    if (s.name.find(substr) != std::string::npos) {
      return &s;
    }
  }
  return nullptr;
}

std::vector<const SymbolInfo*> ElfSymbolTable::FindAllByNameSubstring(
    const std::string& substr) const {
  std::vector<const SymbolInfo*> out;
  for (const SymbolInfo& s : symbols_) {
    if (s.name.find(substr) != std::string::npos) {
      out.push_back(&s);
    }
  }
  return out;
}

#else  // !__linux__

ElfSymbolTable::ElfSymbolTable() = default;
const SymbolInfo* ElfSymbolTable::FindByAddress(const void*) const { return nullptr; }
const SymbolInfo* ElfSymbolTable::FindByNameSubstring(const std::string&) const {
  return nullptr;
}
std::vector<const SymbolInfo*> ElfSymbolTable::FindAllByNameSubstring(
    const std::string&) const {
  return {};
}

#endif

uint64_t CodeSizeOf(const void* code_addr) {
  static const ElfSymbolTable table;
  const SymbolInfo* sym = table.FindByAddress(code_addr);
  return sym != nullptr ? sym->size : 0;
}

}  // namespace ensemble
