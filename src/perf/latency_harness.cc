#include "src/perf/latency_harness.h"

#include <array>
#include <cstring>

#include "src/bypass/hand.h"
#include "src/marshal/generic_codec.h"
#include "src/perf/timer.h"
#include "src/util/logging.h"

namespace ensemble {

namespace {

// Quiet parameters: the paper's measurement conditions ("the outcome of the
// CCP checks is always the choice to run the bypass code"): no loopback, no
// flow-control grants or stability gossip within the measured horizon.
LayerParams QuietParams(LayerParams base) {
  base.local_loopback = false;
  base.mflow_window = 1u << 30;
  base.pt2pt_window = 1u << 30;
  base.stable_interval = 1u << 30;
  return base;
}

// A back-to-back sender/receiver pair with no network in between.
struct StackPair {
  std::unique_ptr<ProtocolStack> tx;
  std::unique_ptr<ProtocolStack> rx;
  std::unique_ptr<RoutePair> tx_route;
  std::unique_ptr<RoutePair> rx_route;
  std::unique_ptr<Hand4Bypass> tx_hand;
  std::unique_ptr<Hand4Bypass> rx_hand;
  // Captured boundary events.
  std::vector<Event> tx_out;
  size_t delivered = 0;

  // Heap-allocated so the boundary-capture lambdas can safely hold `this`.
  static std::unique_ptr<StackPair> Make(StackMode mode, const std::vector<LayerId>& layers,
                                         const LayerParams& params) {
    auto pair = std::make_unique<StackPair>();
    StackPair* p = pair.get();
    EngineKind engine = mode == StackMode::kImperative ? EngineKind::kImperative
                                                       : EngineKind::kFunctional;
    p->tx = BuildStack(engine, layers, params, EndpointId{1});
    p->rx = BuildStack(engine, layers, params, EndpointId{2});
    p->tx->set_dn_out([p](Event ev) { p->tx_out.push_back(std::move(ev)); });
    p->tx->set_up_out([](Event) {});
    p->rx->set_dn_out([](Event) {});  // Receiver-side acks etc.: discarded.
    p->rx->set_up_out([p](Event ev) {
      if (ev.type == EventType::kDeliverCast || ev.type == EventType::kDeliverSend) {
        p->delivered++;
      }
    });

    auto view = std::make_shared<View>();
    view->vid = ViewId{0, 1};
    view->members = {EndpointId{1}, EndpointId{2}};
    p->tx->Init(view);
    p->rx->Init(view);

    std::string error;
    if (mode == StackMode::kMachine) {
      p->tx_route = CompileRoutePair(p->tx.get(), /*cast=*/true, &error);
      ENS_CHECK_MSG(p->tx_route != nullptr, error);
      p->rx_route = CompileRoutePair(p->rx.get(), /*cast=*/true, &error);
      ENS_CHECK_MSG(p->rx_route != nullptr, error);
    } else if (mode == StackMode::kHand) {
      p->tx_hand = Hand4Bypass::Create(p->tx.get(), &error);
      ENS_CHECK_MSG(p->tx_hand != nullptr, error);
      p->rx_hand = Hand4Bypass::Create(p->rx.get(), &error);
      ENS_CHECK_MSG(p->rx_hand != nullptr, error);
    }
    return pair;
  }
};

}  // namespace

PhaseLatency MeasureCodeLatency(const LatencyConfig& config) {
  const size_t reps = static_cast<size_t>(config.reps);
  LayerParams params = QuietParams(config.params);
  auto pair_ptr = StackPair::Make(config.mode, config.layers, params);
  StackPair& pair = *pair_ptr;

  Bytes payload_bytes = Bytes::Allocate(config.msg_size);
  std::memset(payload_bytes.MutableData(), 0xA5, config.msg_size);
  Iovec payload(payload_bytes);

  PhaseTimer t_dn_stack, t_dn_trans, t_up_trans, t_up_stack;

  if (config.mode == StackMode::kImperative || config.mode == StackMode::kFunctional) {
    pair.tx_out.reserve(reps + 16);

    // Phase 1: Down Stack.
    t_dn_stack.Start();
    for (size_t i = 0; i < reps; i++) {
      pair.tx->Down(Event::Cast(payload));
    }
    t_dn_stack.Stop();
    ENS_CHECK(pair.tx_out.size() == reps);

    // Phase 2: Down Transport (generic marshal; the scatter-gather parts go
    // to the wire as-is — the flatten below stands in for the NIC's gather
    // DMA and is outside the measured protocol code, as in the paper).
    std::vector<Iovec> wires(reps);
    t_dn_trans.Start();
    for (size_t i = 0; i < reps; i++) {
      wires[i] = GenericMarshal(pair.tx_out[i], /*sender_rank=*/0);
    }
    t_dn_trans.Stop();
    std::vector<Bytes> datagrams(reps);
    for (size_t i = 0; i < reps; i++) {
      datagrams[i] = wires[i].Flatten();
    }

    // Phase 3: Up Transport (generic unmarshal).
    std::vector<Event> ups(reps);
    t_up_trans.Start();
    for (size_t i = 0; i < reps; i++) {
      ENS_CHECK(GenericUnmarshal(datagrams[i], &ups[i]));
    }
    t_up_trans.Stop();

    // Phase 4: Up Stack.
    t_up_stack.Start();
    for (size_t i = 0; i < reps; i++) {
      pair.rx->Up(std::move(ups[i]));
    }
    t_up_stack.Stop();
    ENS_CHECK(pair.delivered == reps);
  } else if (config.mode == StackMode::kMachine) {
    std::vector<std::array<uint64_t, RoutePair::kMaxWireVars>> vars(reps);

    t_dn_stack.Start();
    for (size_t i = 0; i < reps; i++) {
      Event ev = Event::Cast(payload);
      bool ok = pair.tx_route->DownUpdates(ev, vars[i].data(), nullptr);
      ENS_CHECK(ok);
    }
    t_dn_stack.Stop();

    Event proto = Event::Cast(payload);  // Payload template for BuildWire.
    std::vector<Iovec> wires(reps);
    t_dn_trans.Start();
    for (size_t i = 0; i < reps; i++) {
      pair.tx_route->BuildWire(vars[i].data(), proto, &wires[i]);
    }
    t_dn_trans.Stop();
    std::vector<Bytes> datagrams(reps);
    for (size_t i = 0; i < reps; i++) {
      datagrams[i] = wires[i].Flatten();  // NIC gather: untimed.
    }

    std::vector<std::array<uint64_t, RoutePair::kMaxWireVars>> upvars(reps);
    std::vector<size_t> payload_off(reps);
    t_up_trans.Start();
    for (size_t i = 0; i < reps; i++) {
      // Preamble parse (tag/conn/origin) + var decode.
      uint32_t conn;
      std::memcpy(&conn, datagrams[i].data() + 1, 4);
      ENS_CHECK(conn == pair.rx_route->conn_id());
      bool ok = pair.rx_route->DecodeVars(datagrams[i], 6, upvars[i].data(), &payload_off[i]);
      ENS_CHECK(ok);
    }
    t_up_trans.Stop();

    t_up_stack.Start();
    for (size_t i = 0; i < reps; i++) {
      Event out;
      RoutePair::UpResult r =
          pair.rx_route->UpFromVars(datagrams[i], payload_off[i], upvars[i].data(), 0, &out);
      ENS_CHECK(r == RoutePair::UpResult::kDelivered);
      pair.delivered++;
    }
    t_up_stack.Stop();
  } else {  // HAND
    std::vector<uint32_t> seqnos(reps);

    t_dn_stack.Start();
    for (size_t i = 0; i < reps; i++) {
      Event ev = Event::Cast(payload);
      seqnos[i] = pair.tx_hand->DownCastUpdates(ev);
      ENS_CHECK(seqnos[i] != UINT32_MAX);
    }
    t_dn_stack.Stop();

    std::vector<Iovec> wires(reps);
    t_dn_trans.Start();
    for (size_t i = 0; i < reps; i++) {
      pair.tx_hand->BuildCastWire(seqnos[i], payload, &wires[i]);
    }
    t_dn_trans.Stop();
    std::vector<Bytes> datagrams(reps);
    for (size_t i = 0; i < reps; i++) {
      datagrams[i] = wires[i].Flatten();  // NIC gather: untimed.
    }

    std::vector<uint32_t> rx_seqnos(reps);
    t_up_trans.Start();
    for (size_t i = 0; i < reps; i++) {
      uint32_t conn;
      std::memcpy(&conn, datagrams[i].data() + 1, 4);
      ENS_CHECK(conn == pair.rx_hand->cast_conn_id());
      std::memcpy(&rx_seqnos[i], datagrams[i].data() + 6, 4);
    }
    t_up_trans.Stop();

    t_up_stack.Start();
    for (size_t i = 0; i < reps; i++) {
      Event out;
      RoutePair::UpResult r = pair.rx_hand->UpCastCommit(rx_seqnos[i], datagrams[i], 10, 0, &out);
      ENS_CHECK(r == RoutePair::UpResult::kDelivered);
      pair.delivered++;
    }
    t_up_stack.Stop();
  }

  PhaseLatency lat;
  double n = static_cast<double>(reps);
  lat.down_stack_ns = static_cast<double>(t_dn_stack.total_ns()) / n;
  lat.down_trans_ns = static_cast<double>(t_dn_trans.total_ns()) / n;
  lat.up_trans_ns = static_cast<double>(t_up_trans.total_ns()) / n;
  lat.up_stack_ns = static_cast<double>(t_up_stack.total_ns()) / n;
  return lat;
}

double MeasureCcpCheckNs(const std::vector<LayerId>& layers, int reps) {
  LayerParams params = QuietParams(LayerParams{});
  auto pair_ptr = StackPair::Make(StackMode::kMachine, layers, params);
  StackPair& pair = *pair_ptr;
  Bytes payload_bytes = Bytes::Allocate(4);
  std::memset(payload_bytes.MutableData(), 0, 4);
  Event ev = Event::Cast(Iovec(payload_bytes));

  volatile bool sink = false;
  PhaseTimer t;
  t.Start();
  for (int i = 0; i < reps; i++) {
    sink = pair.tx_route->CheckDownCcp(ev);
  }
  t.Stop();
  (void)sink;
  return static_cast<double>(t.total_ns()) / static_cast<double>(reps);
}

size_t RunSendRecvRounds(StackMode mode, const std::vector<LayerId>& layers, int rounds,
                         size_t msg_size) {
  LayerParams params = QuietParams(LayerParams{});
  auto pair_ptr = StackPair::Make(mode, layers, params);
  StackPair& pair = *pair_ptr;
  Bytes payload_bytes = Bytes::Allocate(msg_size);
  std::memset(payload_bytes.MutableData(), 0x5A, msg_size);
  Iovec payload(payload_bytes);

  for (int i = 0; i < rounds; i++) {
    if (mode == StackMode::kMachine) {
      Event ev = Event::Cast(payload);
      Iovec wire;
      ENS_CHECK(pair.tx_route->TryDown(ev, &wire, nullptr));
      Bytes datagram = wire.Flatten();
      Event out;
      RoutePair::UpResult r = pair.rx_route->TryUp(datagram, 6, 0, &out);
      ENS_CHECK(r == RoutePair::UpResult::kDelivered);
      pair.delivered++;
    } else if (mode == StackMode::kHand) {
      Event ev = Event::Cast(payload);
      Iovec wire;
      ENS_CHECK(pair.tx_hand->TryDownCast(ev, &wire));
      Bytes datagram = wire.Flatten();
      Event out;
      RoutePair::UpResult r = pair.rx_hand->TryUpCast(datagram, 6, 0, &out);
      ENS_CHECK(r == RoutePair::UpResult::kDelivered);
      pair.delivered++;
    } else {
      size_t before = pair.tx_out.size();
      pair.tx->Down(Event::Cast(payload));
      ENS_CHECK(pair.tx_out.size() == before + 1);
      Iovec wire = GenericMarshal(pair.tx_out.back(), 0);
      pair.tx_out.pop_back();
      Bytes datagram = wire.Flatten();
      Event up;
      ENS_CHECK(GenericUnmarshal(datagram, &up));
      pair.rx->Up(std::move(up));
    }
  }
  return pair.delivered;
}

}  // namespace ensemble
