// Code-latency measurement harness — the methodology behind Table 1 and
// Figure 6.
//
// "In our experiments, the CCPs specify that messages are delivered in FIFO
// order, are not fragmented, and no failure or other membership events
// occur. ... We ran each test 10,000 times and calculated the average.
// Since our experiments only measure code latencies, and do not require
// system calls, thread switches, or network communication, the variance in
// the reported numbers is negligible."
//
// Two stacks (sender rank 0, receiver rank 1) are wired back to back with no
// network.  Each repetition is staged through four separately-timed phases:
//
//   Down Stack      application cast -> bottom-of-stack event (or bypass
//                   CCP + fused updates for MACH/HAND)
//   Down Transport  marshal to wire + gather into the datagram
//   Up Transport    datagram parse/unmarshal
//   Up Stack        bottom-of-stack event -> application delivery
//
// matching the four rows of Table 1.

#ifndef ENSEMBLE_SRC_PERF_LATENCY_HARNESS_H_
#define ENSEMBLE_SRC_PERF_LATENCY_HARNESS_H_

#include <cstddef>
#include <string>
#include <vector>

#include "src/app/endpoint.h"

namespace ensemble {

struct PhaseLatency {
  double down_stack_ns = 0;
  double down_trans_ns = 0;
  double up_trans_ns = 0;
  double up_stack_ns = 0;
  double total_ns() const {
    return down_stack_ns + down_trans_ns + up_trans_ns + up_stack_ns;
  }
};

struct LatencyConfig {
  StackMode mode = StackMode::kFunctional;
  std::vector<LayerId> layers = TenLayerStack();
  size_t msg_size = 4;
  int reps = 10000;
  LayerParams params;  // Benches disable loopback and gossip noise below.
};

// Per-message code latency averaged over `reps` send/receive rounds.
PhaseLatency MeasureCodeLatency(const LatencyConfig& config);

// The cost of evaluating the composed CCP alone (the run-time bypass switch;
// paper: "checking the CCPs takes only about 3 us").
double MeasureCcpCheckNs(const std::vector<LayerId>& layers, int reps = 100000);

// Runs `rounds` complete send/receive round-trips through a stack pair (used
// under the perf-counter benches of Table 2a).  Returns deliveries observed.
size_t RunSendRecvRounds(StackMode mode, const std::vector<LayerId>& layers, int rounds,
                         size_t msg_size = 4);

}  // namespace ensemble

#endif  // ENSEMBLE_SRC_PERF_LATENCY_HARNESS_H_
