// UdpNetwork — real localhost sockets behind the Network interface.
//
// The paper's measurements ran over real UDP sockets; this implementation
// lets the same GroupEndpoint code run over the kernel's loopback instead of
// the simulator.  Scatter-gather sends use sendmsg(2) with one iovec entry
// per payload part — the actual "UNIX scatter-gather capability" the paper
// credits for its size-independent latencies — and receives are non-blocking
// and pumped by Poll().
//
// Endpoint identity ↔ address: every attached endpoint gets its own UDP
// socket bound to 127.0.0.1 with an ephemeral port; the registry maps ports
// back to endpoint ids for packet source attribution.  All endpoints of a
// group live in one process (as in the tests/examples); cross-process use
// would only need the port map exchanged out of band.

#ifndef ENSEMBLE_SRC_NET_UDP_H_
#define ENSEMBLE_SRC_NET_UDP_H_

#include <cstdint>
#include <map>
#include <vector>

#include "src/net/network.h"
#include "src/perf/timer.h"

namespace ensemble {

class UdpNetwork : public Network {
 public:
  UdpNetwork() = default;
  ~UdpNetwork() override;

  UdpNetwork(const UdpNetwork&) = delete;
  UdpNetwork& operator=(const UdpNetwork&) = delete;

  void Attach(EndpointId ep, DeliverFn deliver) override;
  void Detach(EndpointId ep) override;
  void Send(EndpointId src, EndpointId dst, const Iovec& gather) override;
  void Broadcast(EndpointId src, const Iovec& gather) override;

  // Timers fire from inside Poll()/PollFor().
  void ScheduleTimer(VTime delay, TimerFn fn) override;
  VTime Now() const override { return NowNanos(); }

  // Drains every socket once and runs due timers; returns events processed.
  size_t Poll();
  // Polls repeatedly for up to `duration` wall-clock nanoseconds, sleeping in
  // poll(2) between batches.  Returns events processed.
  size_t PollFor(VTime duration);

  bool ok() const { return ok_; }
  uint16_t PortOf(EndpointId ep) const;
  const NetworkStats& stats() const { return stats_; }

 private:
  struct Endpoint {
    int fd = -1;
    uint16_t port = 0;
    DeliverFn deliver;
  };
  struct Timer {
    VTime due;
    TimerFn fn;
  };

  size_t DrainSockets();
  size_t RunDueTimers();

  bool ok_ = true;
  std::map<EndpointId, Endpoint> endpoints_;
  std::map<uint16_t, EndpointId> by_port_;
  std::vector<Timer> timers_;  // Unsorted; scanned in RunDueTimers.
  NetworkStats stats_;
};

}  // namespace ensemble

#endif  // ENSEMBLE_SRC_NET_UDP_H_
