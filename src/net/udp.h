// UdpNetwork — real localhost sockets behind the Network interface.
//
// The paper's measurements ran over real UDP sockets; this implementation
// lets the same GroupEndpoint code run over the kernel's loopback instead of
// the simulator.  Scatter-gather sends use sendmsg(2) with one iovec entry
// per payload part — the actual "UNIX scatter-gather capability" the paper
// credits for its size-independent latencies — and receives are non-blocking
// and pumped by Poll().
//
// Datapath backends (NetBackendConfig::backend):
//   kEager — one sendmsg/recvfrom syscall per datagram (the latency benches
//     measure this path; it reproduces the seed behaviour exactly).
//   kMmsg — outgoing datagrams stage in a per-socket ring flushed with one
//     sendmmsg(2) when the ring fills or Flush() is called; sockets drain
//     with recvmmsg(2) straight into refcounted pool-backed buffers, so a
//     received payload is never copied after the kernel wrote it (the slices
//     handed to DeliverFn alias the pool chunk).  Platforms without the mmsg
//     syscalls fall back to a sendmsg/recvmsg loop behind the same interface
//     and the same staging semantics; only the syscall counters differ.
//   kUring — an io_uring submission/completion ring pair (UringEngine,
//     udp_uring.h) replaces the per-burst syscalls entirely: multishot
//     receives into registered pool chunks, batched send submission with UDP
//     GSO coalescing, GRO splitting on receive.  Unavailable kernels (or
//     seccomp, or the ENSEMBLE_URING=OFF build) fall back to kMmsg with one
//     LogUnsupportedOnce line.
//   kAuto — kUring when the probe succeeds, else kMmsg, silently.
//
// Endpoint identity ↔ address (per-endpoint ingress, the default): every
// attached endpoint gets its own UDP socket bound to 127.0.0.1 with an
// ephemeral port; the registry maps ports back to endpoint ids for packet
// source attribution.  Endpoints owned by *another* UdpNetwork instance
// (another shard's, in the sharded runtime) are reachable after AddPeer()
// publishes their port here — the kernel is the cross-shard data plane.
// Cross-process use would only need the same port exchange out of band.
//
// Shared ingress (IngressMode::kShared): the network binds exactly TWO
// sockets regardless of endpoint count — one listener in an SO_REUSEPORT
// group shared with the other shards' networks, and one ephemeral-port send
// socket.  Endpoints attach without sockets; every outgoing datagram gains a
// 9-byte kWireIngress preheader ([tag][u32le src conn][u32le dst conn]) and
// is sent to the group port, and the single listener drains the whole shard
// in one recvmmsg/uring-multishot loop.  A flat-hash demux table (ConnTable
// idiom) routes each received datagram to its endpoint by conn id; ids that
// don't resolve locally go to the shared-miss handler (the sharded runtime
// forwards them to the owning shard over its rings) or count as demux_miss
// drops.  The dedicated send socket matters on loopback: it keeps each
// shard's outbound traffic one stable kernel flow, so SO_REUSEPORT's
// flow-hash lands a given sender's datagrams on one listener deterministically
// and per-sender FIFO survives.  Kernels without SO_REUSEPORT fall back to
// per-endpoint sockets via LogUnsupportedOnce (see EnableSharedIngress).
//
// Threading: a UdpNetwork belongs to one thread (its shard's worker).  The
// only cross-thread entry point is Wakeup(), which pokes an eventfd/pipe so
// an owner blocked in PollWait()/PollFor() returns immediately — that is how
// the sharded runtime's rings get drained promptly while idle workers sleep
// in poll(2) instead of spinning.

#ifndef ENSEMBLE_SRC_NET_UDP_H_
#define ENSEMBLE_SRC_NET_UDP_H_

#include <cstdint>
#include <map>
#include <memory>
#include <queue>
#include <vector>

#include <functional>

#include "src/net/network.h"
#include "src/perf/timer.h"
#include "src/util/pool.h"
#include "src/util/waker.h"

namespace ensemble {

class UringEngine;

// Which kernel datapath carries the datagrams (see the file comment).
enum class NetBackend { kEager, kMmsg, kUring, kAuto };

const char* NetBackendName(NetBackend b);

// Who owns the kernel receive sockets (see the file comment).
//   kPerEndpoint — one socket per attached endpoint (the PR 1–6 model).
//   kShared — one SO_REUSEPORT listener + one send socket per network.
//   kAuto — kShared when the ENSEMBLE_INGRESS environment variable says
//     "shared", else kPerEndpoint.  Lets CI force the whole test suite
//     through the shared path without touching every config literal.
enum class IngressMode { kAuto, kPerEndpoint, kShared };

const char* IngressModeName(IngressMode m);

// Resolves kAuto against ENSEMBLE_INGRESS; never returns kAuto.
IngressMode ResolveIngressMode(IngressMode requested);

// The one knob bundle every backend consumer (GroupHarness, ShardRuntime,
// benches) passes around — batching thresholds for eager/mmsg plus the uring
// ring geometry.  Defaults reproduce the eager seed behaviour exactly (one
// syscall per datagram, heap-copied receives).
struct NetBackendConfig {
  NetBackend backend = NetBackend::kEager;
  size_t send_batch = 16;        // Staging auto-flush threshold (mmsg/uring).
  size_t recv_batch = 16;        // Messages per recvmmsg call (mmsg).
  unsigned uring_sq_entries = 256;   // Submission ring depth (also send slots).
  unsigned uring_recv_buffers = 32;  // Registered buffer-ring slots.
  bool uring_gso = true;         // Coalesce same-size send runs (UDP_SEGMENT).
  bool uring_gro = true;         // Kernel-coalesced receives (UDP_GRO).
  // Socket-ownership model; orthogonal to `backend` (any backend drains a
  // shared listener).  Default kAuto == per-endpoint unless ENSEMBLE_INGRESS
  // forces shared.
  IngressMode ingress = IngressMode::kAuto;

  static NetBackendConfig Eager() { return NetBackendConfig{}; }
  static NetBackendConfig Batched(size_t batch = 16) {
    NetBackendConfig c;
    c.backend = NetBackend::kMmsg;
    c.send_batch = c.recv_batch = batch;
    return c;
  }
  static NetBackendConfig Uring(size_t batch = 16) {
    NetBackendConfig c = Batched(batch);  // Batch knobs double as fallback's.
    c.backend = NetBackend::kUring;
    return c;
  }
  static NetBackendConfig Auto(size_t batch = 16) {
    NetBackendConfig c = Batched(batch);
    c.backend = NetBackend::kAuto;
    return c;
  }
};

class UdpNetwork : public Network {
 public:
  UdpNetwork();  // Out of line: UringEngine is incomplete here.
  ~UdpNetwork() override;

  UdpNetwork(const UdpNetwork&) = delete;
  UdpNetwork& operator=(const UdpNetwork&) = delete;

  void Attach(EndpointId ep, DeliverFn deliver) override;
  void Detach(EndpointId ep) override;
  void Send(EndpointId src, EndpointId dst, const Iovec& gather) override;
  void Broadcast(EndpointId src, const Iovec& gather) override;

  // Publishes a remote endpoint (one attached to a different UdpNetwork,
  // typically another shard's) so local endpoints can Send/Broadcast to it
  // and received packets from its port are source-attributed.  Setup-time
  // only: call before the owning threads start polling.
  void AddPeer(EndpointId ep, uint16_t port);

  // Ownership handoff between shards (owning thread of each side only; the
  // sharded runtime sequences the two halves through its rings, which is the
  // happens-before edge).  Release() detaches `ep` WITHOUT closing its
  // socket: staged sends are flushed, the socket plus the registered deliver
  // callback and drain hook are returned, and the endpoint is re-registered
  // as a peer here (same port, so local endpoints keep reaching it — the
  // kernel keeps being the data plane).  Datagrams queued in the socket's
  // receive buffer travel with the fd: nothing in flight is lost or
  // reordered.  Adopt() installs a released endpoint on the thief's network
  // and drops any peer entry for it.
  //
  // Under shared ingress no kernel state moves at all: Release() just pulls
  // the deliver callback + drain hook out of the demux table (fd stays -1,
  // `shared` is set) and Adopt() installs them into the thief's table — a
  // pure in-memory ownership transfer.  The runtime fences it with the same
  // home-shard marker the channel backend uses so per-sender FIFO holds.
  struct ReleasedEndpoint {
    int fd = -1;
    uint16_t port = 0;
    DeliverFn deliver;
    std::function<void()> drain_hook;
    bool shared = false;  // Released from a shared-ingress demux table.
    bool ok() const { return fd >= 0 || shared; }
  };
  ReleasedEndpoint Release(EndpointId ep);
  void Adopt(EndpointId ep, ReleasedEndpoint state);

  // Switches this network to shared ingress: binds the listener (joining the
  // SO_REUSEPORT group at `group_port`, or founding a new group on an
  // ephemeral port when 0) and the dedicated send socket.  Must run before
  // the first Attach().  Returns false — leaving the network in per-endpoint
  // mode, via LogUnsupportedOnce — when SO_REUSEPORT or the binds are
  // unavailable.  Attach() self-enables (group of one) when the resolved
  // config asks for shared mode and nobody called this first; the sharded
  // runtime always calls it explicitly to share one group port across shards.
  bool EnableSharedIngress(uint16_t group_port = 0);
  // Rolls back to per-endpoint mode (setup-time only, before any Attach) and
  // blocks later self-enabling — the runtime uses it when another shard's
  // listener failed to join the group.
  void DisableSharedIngress();
  bool shared_ingress() const { return shared_; }
  // The SO_REUSEPORT group port (0 when not in shared mode).
  uint16_t shared_port() const { return listener_.port; }

  // Ring-delivery entry for the sharded runtime (shared mode): looks `dst`
  // up in the demux table and delivers on a hit.  Returns false (untouched
  // stats) when the endpoint is not attached here — the caller routes it
  // through the pre-adoption machinery or counts the drop.
  bool DeliverToLocal(const Packet& packet);
  // Called on listener datagrams whose dst conn id is not local.  Return
  // true if the packet was consumed (e.g. forwarded to the owning shard);
  // false falls through to a demux_miss drop.  The handler runs on this
  // network's owning thread, but note the payload aliases this network's
  // receive pool — copy it before handing it to another thread.
  using SharedMissFn = std::function<bool(const Packet&)>;
  void SetSharedMissHandler(SharedMissFn handler) { miss_ = std::move(handler); }
  // Records a datagram that survived routing but found no endpoint (the
  // runtime's terminal pre-adoption miss).
  void CountIngressDrop() {
    stats_.demux_miss++;
    stats_.dropped++;
  }

  // Kernel sockets this network owns: endpoint count in per-endpoint mode,
  // exactly 2 (listener + send) in shared mode.  The O(1)-ingress runtime
  // test asserts on this.
  size_t OwnedSocketCount() const {
    return shared_ ? 2 : endpoints_.size();
  }

  // Test hook: pretend SO_REUSEPORT is unavailable so the per-endpoint
  // fallback path is exercised on kernels that do support it.
  static void ForceSharedIngressUnavailableForTest(bool unavailable);

  // Pushes every staged datagram to the wire (no-op when nothing is staged).
  void Flush() override;

  // Overload backpressure (thread-safe, see Network::SetPressure).  Level ≥ 1
  // tightens the staging auto-flush threshold to one datagram, so every
  // backend (mmsg ring, uring staged sends; eager is already per-datagram)
  // stops holding traffic while the system is shedding.  Level 2 has no
  // extra kernel-side effect here — the kernel socket buffers already drop
  // on overflow, which IS the drop-oldest policy for wire traffic.
  void SetPressure(int level) override {
    pressure_.store(level, std::memory_order_relaxed);
  }
  int pressure() const { return pressure_.load(std::memory_order_relaxed); }

  // Timer-heap depth, maintained as a relaxed atomic so the overload
  // manager's gauge can read it from any thread.
  uint64_t timer_depth() const { return timer_depth_.value(); }

  // See Network::SetDrainHook: hooks run after the last delivery of every
  // receive drain, before Poll() flushes the staging rings and returns.
  void SetDrainHook(EndpointId ep, std::function<void()> hook) override;

  // Timers fire from inside Poll()/PollFor().
  void ScheduleTimer(VTime delay, TimerFn fn) override;
  VTime Now() const override { return NowNanos(); }

  // Drains every socket once, runs drain hooks and due timers, and flushes
  // the staging rings; returns events processed.  Nothing staged during the
  // drain outlives the call — the wire is caught up when Poll() returns.
  size_t Poll();
  // Polls repeatedly for up to `duration` wall-clock nanoseconds, sleeping in
  // poll(2) between batches.  Returns events processed.
  size_t PollFor(VTime duration);
  // One blocking iteration: Poll(), and if that found nothing, sleep in
  // poll(2) — on the sockets, the wakeup fd, and the next timer deadline,
  // capped at `max_wait` — then Poll() again.  The shard worker's loop body.
  size_t PollWait(VTime max_wait);

  // The blocking half of PollWait alone: sleep in poll(2) on the sockets +
  // wakeup fd, bounded by the next timer deadline and `max_wait`, consuming
  // the wakeup.  Callers (the shard worker loop) Poll() themselves around it
  // so they can account busy time separately from idle time.
  void IdleWait(VTime max_wait);

  // The ONLY thread-safe methods: break the owner out of a PollWait/PollFor
  // sleep (e.g. after pushing into the owner's cross-shard ring).  Wakeup
  // coalesces: a burst of cross-shard posts between two owner drains costs
  // one eventfd write.
  void Wakeup() { waker_.NotifyCoalesced(); }
  Waker& waker() { return waker_; }

  // Safe to change at any time; staged sends are flushed (and, when leaving
  // the uring backend, in-flight completions are drained) first.  Resolves
  // kAuto / unavailable-kUring to the backend that will actually run — see
  // active_backend().
  void set_backend_config(NetBackendConfig config);
  const NetBackendConfig& backend_config() const { return cfg_; }
  // The backend datagrams actually flow through after auto-detection and
  // fallback (never kAuto; kUring only when the engine came up).
  NetBackend active_backend() const { return active_; }

  bool ok() const { return ok_; }
  uint16_t PortOf(EndpointId ep) const;
  const NetworkStats& stats() const { return stats_; }
  const PoolStats& recv_pool_stats() const { return recv_pool_.stats(); }
  const BufferPool& recv_pool() const { return recv_pool_; }

  // First-touches `chunks` receive-pool chunks on the calling thread.  The
  // sharded runtime calls this from each pinned worker so receive slices are
  // NUMA-local to the shard that fills them.
  void PrewarmRecvBuffers(size_t chunks);

 private:
  // One staged outgoing datagram: destination port plus the scatter-gather
  // parts (refcounted Bytes — staging copies no payload bytes).
  struct Staged {
    uint16_t port;
    Iovec gather;
  };
  struct Endpoint {
    int fd = -1;
    uint16_t port = 0;
    DeliverFn deliver;
    std::vector<Staged> ring;  // Outgoing staging ring (batch_sends).
  };

  // Shared-ingress demux: u32 conn id → endpoint record (values point into
  // endpoints_, whose std::map nodes are stable).  Same open-addressing
  // flat-hash shape as bypass::ConnTable — Fibonacci multiply picks the
  // bucket, linear probe resolves, backward-shift delete keeps probe chains
  // gap-free — because Find() sits on the one-lookup-per-datagram receive
  // fast path.
  class IngressTable {
   public:
    IngressTable() { Rehash(kInitialCap); }

    void Insert(uint32_t key, Endpoint* value) {
      if ((size_ + 1) * 10 >= slots_.size() * 7) {
        Rehash(slots_.size() * 2);
      }
      size_t i = Home(key);
      while (slots_[i].used && slots_[i].key != key) {
        i = Next(i);
      }
      if (!slots_[i].used) {
        size_++;
      }
      slots_[i] = Slot{key, true, value};
    }

    Endpoint* Find(uint32_t key) const {
      size_t i = Home(key);
      for (;;) {
        const Slot& s = slots_[i];
        if (!s.used) {
          return nullptr;
        }
        if (s.key == key) {
          return s.value;
        }
        i = Next(i);
      }
    }

    void Erase(uint32_t key) {
      size_t i = Home(key);
      for (;;) {
        if (!slots_[i].used) {
          return;
        }
        if (slots_[i].key == key) {
          break;
        }
        i = Next(i);
      }
      size_t hole = i;
      for (size_t j = Next(hole);; j = Next(j)) {
        Slot& s = slots_[j];
        if (!s.used) {
          break;
        }
        size_t home = Home(s.key);
        bool movable =
            hole <= j ? (home <= hole || home > j) : (home <= hole && home > j);
        if (movable) {
          slots_[hole] = s;
          s.used = false;
          hole = j;
        }
      }
      slots_[hole] = Slot{};
      size_--;
    }

    size_t size() const { return size_; }

   private:
    static constexpr size_t kInitialCap = 16;  // Power of two, always.
    struct Slot {
      uint32_t key = 0;
      bool used = false;
      Endpoint* value = nullptr;
    };
    size_t Home(uint32_t key) const {
      return static_cast<size_t>((key * UINT32_C(2654435769)) >> shift_) &
             (slots_.size() - 1);
    }
    size_t Next(size_t i) const { return (i + 1) & (slots_.size() - 1); }
    void Rehash(size_t cap) {
      std::vector<Slot> old = std::move(slots_);
      slots_.assign(cap, Slot{});
      int log2 = 0;
      while ((size_t{1} << log2) < cap) {
        log2++;
      }
      shift_ = static_cast<uint32_t>(32 - log2);
      size_ = 0;
      for (const Slot& s : old) {
        if (s.used) {
          size_t i = Home(s.key);
          while (slots_[i].used) {
            i = Next(i);
          }
          slots_[i] = s;
          size_++;
        }
      }
    }
    std::vector<Slot> slots_;
    size_t size_ = 0;
    uint32_t shift_ = 28;  // 32 - log2(kInitialCap).
  };
  struct Timer {
    VTime due;
    uint64_t seq;  // FIFO tiebreak for equal due times.
    TimerFn fn;
    bool operator>(const Timer& o) const {
      return due != o.due ? due > o.due : seq > o.seq;
    }
  };

  // Staging auto-flush threshold after backpressure: 1 under pressure.
  size_t EffectiveSendBatch() const {
    return pressure_.load(std::memory_order_relaxed) > 0 ? 1 : cfg_.send_batch;
  }

  void Enqueue(Endpoint& from, uint16_t port, const Iovec& gather);
  void FlushEndpoint(Endpoint& ep);
  // One scatter-gather sendmsg(2) on `fd` (the kEager datapath).
  void SendEager(int fd, uint16_t port, const Iovec& gather);
  // Shared mode: prepends the ingress preheader and stages/sends the result
  // on the tx socket toward the group port, via whatever backend is active.
  void SendSharedWire(EndpointId src, EndpointId dst, const Iovec& gather);
  // Carves the next 9-byte preheader slice out of hdr_arena_ (refilling it
  // when exhausted) so the per-send cost is a slice, not an allocation.
  Bytes NextIngressHeader(uint64_t src, uint64_t dst);
  size_t DrainSockets();
  // `ingress` routes each received datagram through DeliverIngress (shared
  // listener) instead of delivering to `state`'s endpoint directly.
  size_t DrainOneEager(Endpoint& state, EndpointId ep, bool ingress = false);
  size_t DrainOneBatched(Endpoint& state, EndpointId ep, bool ingress = false);
  // Parses the kWireIngress preheader, strips it, and demuxes: local hit →
  // deliver; miss → shared-miss handler or counted drop.
  void DeliverIngress(Bytes datagram);
  size_t RunDueTimers();
  // Resolves cfg_.backend (auto-detection, uring setup, fallback) into
  // active_, creating or tearing down the engine as needed.
  void ResolveBackend();
  // Quiesces `fd` on the engine and delivers anything it had already pulled
  // off the wire (Detach/Release path; endpoint must still be attached).
  void UringQuiesce(int fd);
  // Full engine teardown: cancels every armed recv, delivers everything the
  // ring already pulled in, resets the engine, and strips GRO so the
  // mmsg/eager drains see plain datagrams again.  `to` is the backend taking
  // over (assigned to active_ so deliveries during the quiesce route sanely).
  void ShutdownUring(NetBackend to);

  bool ok_ = true;
  NetBackendConfig cfg_;
  NetBackend active_ = NetBackend::kEager;
  std::unique_ptr<UringEngine> engine_;  // Live iff active_ == kUring.
  // Shared-ingress state.  listener_ (receive) and tx_ (send staging ring +
  // outbound flow identity) are the only kernel sockets in shared mode;
  // endpoints_ entries then carry fd = -1 and port = the group port.
  bool shared_ = false;
  bool ingress_unavailable_ = false;  // Enable failed once; don't self-retry.
  Endpoint listener_;
  Endpoint tx_;
  IngressTable demux_;
  SharedMissFn miss_;
  // Preheader arena: headers for many sends share one refcounted chunk; the
  // chunk is released once the last in-flight preheader slice drops its ref.
  Bytes hdr_arena_;
  size_t hdr_arena_used_ = 0;
  std::map<EndpointId, Endpoint> endpoints_;
  std::map<EndpointId, uint16_t> peers_;  // Remote endpoints (other shards).
  std::map<uint16_t, EndpointId> by_port_;
  std::map<EndpointId, std::function<void()>> drain_hooks_;
  // Min-heap on due time (was: unsorted vector scanned per poll).
  std::priority_queue<Timer, std::vector<Timer>, std::greater<>> timers_;
  uint64_t timer_seq_ = 0;
  RelaxedCounter timer_depth_;     // Mirrors timers_.size() for gauges.
  std::atomic<int> pressure_{0};   // Overload backpressure level.
  BufferPool recv_pool_{65536};  // One chunk holds any datagram.
  std::vector<Bytes> recv_bufs_;  // Reusable recvmmsg targets.
  Waker waker_;
  NetworkStats stats_;
};

}  // namespace ensemble

#endif  // ENSEMBLE_SRC_NET_UDP_H_
