// UdpNetwork — real localhost sockets behind the Network interface.
//
// The paper's measurements ran over real UDP sockets; this implementation
// lets the same GroupEndpoint code run over the kernel's loopback instead of
// the simulator.  Scatter-gather sends use sendmsg(2) with one iovec entry
// per payload part — the actual "UNIX scatter-gather capability" the paper
// credits for its size-independent latencies — and receives are non-blocking
// and pumped by Poll().
//
// Datapath backends (NetBackendConfig::backend):
//   kEager — one sendmsg/recvfrom syscall per datagram (the latency benches
//     measure this path; it reproduces the seed behaviour exactly).
//   kMmsg — outgoing datagrams stage in a per-socket ring flushed with one
//     sendmmsg(2) when the ring fills or Flush() is called; sockets drain
//     with recvmmsg(2) straight into refcounted pool-backed buffers, so a
//     received payload is never copied after the kernel wrote it (the slices
//     handed to DeliverFn alias the pool chunk).  Platforms without the mmsg
//     syscalls fall back to a sendmsg/recvmsg loop behind the same interface
//     and the same staging semantics; only the syscall counters differ.
//   kUring — an io_uring submission/completion ring pair (UringEngine,
//     udp_uring.h) replaces the per-burst syscalls entirely: multishot
//     receives into registered pool chunks, batched send submission with UDP
//     GSO coalescing, GRO splitting on receive.  Unavailable kernels (or
//     seccomp, or the ENSEMBLE_URING=OFF build) fall back to kMmsg with one
//     LogUnsupportedOnce line.
//   kAuto — kUring when the probe succeeds, else kMmsg, silently.
//
// Endpoint identity ↔ address: every attached endpoint gets its own UDP
// socket bound to 127.0.0.1 with an ephemeral port; the registry maps ports
// back to endpoint ids for packet source attribution.  Endpoints owned by
// *another* UdpNetwork instance (another shard's, in the sharded runtime) are
// reachable after AddPeer() publishes their port here — the kernel is the
// cross-shard data plane.  Cross-process use would only need the same port
// exchange out of band.
//
// Threading: a UdpNetwork belongs to one thread (its shard's worker).  The
// only cross-thread entry point is Wakeup(), which pokes an eventfd/pipe so
// an owner blocked in PollWait()/PollFor() returns immediately — that is how
// the sharded runtime's rings get drained promptly while idle workers sleep
// in poll(2) instead of spinning.

#ifndef ENSEMBLE_SRC_NET_UDP_H_
#define ENSEMBLE_SRC_NET_UDP_H_

#include <cstdint>
#include <map>
#include <memory>
#include <queue>
#include <vector>

#include <functional>

#include "src/net/network.h"
#include "src/perf/timer.h"
#include "src/util/pool.h"
#include "src/util/waker.h"

namespace ensemble {

class UringEngine;

// Which kernel datapath carries the datagrams (see the file comment).
enum class NetBackend { kEager, kMmsg, kUring, kAuto };

const char* NetBackendName(NetBackend b);

// The one knob bundle every backend consumer (GroupHarness, ShardRuntime,
// benches) passes around — batching thresholds for eager/mmsg plus the uring
// ring geometry.  Defaults reproduce the eager seed behaviour exactly (one
// syscall per datagram, heap-copied receives).
struct NetBackendConfig {
  NetBackend backend = NetBackend::kEager;
  size_t send_batch = 16;        // Staging auto-flush threshold (mmsg/uring).
  size_t recv_batch = 16;        // Messages per recvmmsg call (mmsg).
  unsigned uring_sq_entries = 256;   // Submission ring depth (also send slots).
  unsigned uring_recv_buffers = 32;  // Registered buffer-ring slots.
  bool uring_gso = true;         // Coalesce same-size send runs (UDP_SEGMENT).
  bool uring_gro = true;         // Kernel-coalesced receives (UDP_GRO).

  static NetBackendConfig Eager() { return NetBackendConfig{}; }
  static NetBackendConfig Batched(size_t batch = 16) {
    NetBackendConfig c;
    c.backend = NetBackend::kMmsg;
    c.send_batch = c.recv_batch = batch;
    return c;
  }
  static NetBackendConfig Uring(size_t batch = 16) {
    NetBackendConfig c = Batched(batch);  // Batch knobs double as fallback's.
    c.backend = NetBackend::kUring;
    return c;
  }
  static NetBackendConfig Auto(size_t batch = 16) {
    NetBackendConfig c = Batched(batch);
    c.backend = NetBackend::kAuto;
    return c;
  }
};

class UdpNetwork : public Network {
 public:
  UdpNetwork();  // Out of line: UringEngine is incomplete here.
  ~UdpNetwork() override;

  UdpNetwork(const UdpNetwork&) = delete;
  UdpNetwork& operator=(const UdpNetwork&) = delete;

  void Attach(EndpointId ep, DeliverFn deliver) override;
  void Detach(EndpointId ep) override;
  void Send(EndpointId src, EndpointId dst, const Iovec& gather) override;
  void Broadcast(EndpointId src, const Iovec& gather) override;

  // Publishes a remote endpoint (one attached to a different UdpNetwork,
  // typically another shard's) so local endpoints can Send/Broadcast to it
  // and received packets from its port are source-attributed.  Setup-time
  // only: call before the owning threads start polling.
  void AddPeer(EndpointId ep, uint16_t port);

  // Ownership handoff between shards (owning thread of each side only; the
  // sharded runtime sequences the two halves through its rings, which is the
  // happens-before edge).  Release() detaches `ep` WITHOUT closing its
  // socket: staged sends are flushed, the socket plus the registered deliver
  // callback and drain hook are returned, and the endpoint is re-registered
  // as a peer here (same port, so local endpoints keep reaching it — the
  // kernel keeps being the data plane).  Datagrams queued in the socket's
  // receive buffer travel with the fd: nothing in flight is lost or
  // reordered.  Adopt() installs a released endpoint on the thief's network
  // and drops any peer entry for it.
  struct ReleasedEndpoint {
    int fd = -1;
    uint16_t port = 0;
    DeliverFn deliver;
    std::function<void()> drain_hook;
    bool ok() const { return fd >= 0; }
  };
  ReleasedEndpoint Release(EndpointId ep);
  void Adopt(EndpointId ep, ReleasedEndpoint state);

  // Pushes every staged datagram to the wire (no-op when nothing is staged).
  void Flush() override;

  // See Network::SetDrainHook: hooks run after the last delivery of every
  // receive drain, before Poll() flushes the staging rings and returns.
  void SetDrainHook(EndpointId ep, std::function<void()> hook) override;

  // Timers fire from inside Poll()/PollFor().
  void ScheduleTimer(VTime delay, TimerFn fn) override;
  VTime Now() const override { return NowNanos(); }

  // Drains every socket once, runs drain hooks and due timers, and flushes
  // the staging rings; returns events processed.  Nothing staged during the
  // drain outlives the call — the wire is caught up when Poll() returns.
  size_t Poll();
  // Polls repeatedly for up to `duration` wall-clock nanoseconds, sleeping in
  // poll(2) between batches.  Returns events processed.
  size_t PollFor(VTime duration);
  // One blocking iteration: Poll(), and if that found nothing, sleep in
  // poll(2) — on the sockets, the wakeup fd, and the next timer deadline,
  // capped at `max_wait` — then Poll() again.  The shard worker's loop body.
  size_t PollWait(VTime max_wait);

  // The blocking half of PollWait alone: sleep in poll(2) on the sockets +
  // wakeup fd, bounded by the next timer deadline and `max_wait`, consuming
  // the wakeup.  Callers (the shard worker loop) Poll() themselves around it
  // so they can account busy time separately from idle time.
  void IdleWait(VTime max_wait);

  // The ONLY thread-safe methods: break the owner out of a PollWait/PollFor
  // sleep (e.g. after pushing into the owner's cross-shard ring).  Wakeup
  // coalesces: a burst of cross-shard posts between two owner drains costs
  // one eventfd write.
  void Wakeup() { waker_.NotifyCoalesced(); }
  Waker& waker() { return waker_; }

  // Safe to change at any time; staged sends are flushed (and, when leaving
  // the uring backend, in-flight completions are drained) first.  Resolves
  // kAuto / unavailable-kUring to the backend that will actually run — see
  // active_backend().
  void set_backend_config(NetBackendConfig config);
  const NetBackendConfig& backend_config() const { return cfg_; }
  // The backend datagrams actually flow through after auto-detection and
  // fallback (never kAuto; kUring only when the engine came up).
  NetBackend active_backend() const { return active_; }

  bool ok() const { return ok_; }
  uint16_t PortOf(EndpointId ep) const;
  const NetworkStats& stats() const { return stats_; }
  const PoolStats& recv_pool_stats() const { return recv_pool_.stats(); }
  const BufferPool& recv_pool() const { return recv_pool_; }

  // First-touches `chunks` receive-pool chunks on the calling thread.  The
  // sharded runtime calls this from each pinned worker so receive slices are
  // NUMA-local to the shard that fills them.
  void PrewarmRecvBuffers(size_t chunks);

 private:
  // One staged outgoing datagram: destination port plus the scatter-gather
  // parts (refcounted Bytes — staging copies no payload bytes).
  struct Staged {
    uint16_t port;
    Iovec gather;
  };
  struct Endpoint {
    int fd = -1;
    uint16_t port = 0;
    DeliverFn deliver;
    std::vector<Staged> ring;  // Outgoing staging ring (batch_sends).
  };
  struct Timer {
    VTime due;
    uint64_t seq;  // FIFO tiebreak for equal due times.
    TimerFn fn;
    bool operator>(const Timer& o) const {
      return due != o.due ? due > o.due : seq > o.seq;
    }
  };

  void Enqueue(Endpoint& from, uint16_t port, const Iovec& gather);
  void FlushEndpoint(Endpoint& ep);
  size_t DrainSockets();
  size_t DrainOneEager(Endpoint& state, EndpointId ep);
  size_t DrainOneBatched(Endpoint& state, EndpointId ep);
  size_t RunDueTimers();
  // Resolves cfg_.backend (auto-detection, uring setup, fallback) into
  // active_, creating or tearing down the engine as needed.
  void ResolveBackend();
  // Quiesces `fd` on the engine and delivers anything it had already pulled
  // off the wire (Detach/Release path; endpoint must still be attached).
  void UringQuiesce(int fd);
  // Full engine teardown: cancels every armed recv, delivers everything the
  // ring already pulled in, resets the engine, and strips GRO so the
  // mmsg/eager drains see plain datagrams again.  `to` is the backend taking
  // over (assigned to active_ so deliveries during the quiesce route sanely).
  void ShutdownUring(NetBackend to);

  bool ok_ = true;
  NetBackendConfig cfg_;
  NetBackend active_ = NetBackend::kEager;
  std::unique_ptr<UringEngine> engine_;  // Live iff active_ == kUring.
  std::map<EndpointId, Endpoint> endpoints_;
  std::map<EndpointId, uint16_t> peers_;  // Remote endpoints (other shards).
  std::map<uint16_t, EndpointId> by_port_;
  std::map<EndpointId, std::function<void()>> drain_hooks_;
  // Min-heap on due time (was: unsorted vector scanned per poll).
  std::priority_queue<Timer, std::vector<Timer>, std::greater<>> timers_;
  uint64_t timer_seq_ = 0;
  BufferPool recv_pool_{65536};  // One chunk holds any datagram.
  std::vector<Bytes> recv_bufs_;  // Reusable recvmmsg targets.
  Waker waker_;
  NetworkStats stats_;
};

}  // namespace ensemble

#endif  // ENSEMBLE_SRC_NET_UDP_H_
