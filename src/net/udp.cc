#include "src/net/udp.h"

#include <cstdlib>
#include <cstring>

#include "src/util/logging.h"

// Platform-independent pieces: name tables, the ENSEMBLE_INGRESS knob, the
// shared-ingress test hook.
namespace ensemble {

const char* NetBackendName(NetBackend b) {
  switch (b) {
    case NetBackend::kEager: return "eager";
    case NetBackend::kMmsg: return "mmsg";
    case NetBackend::kUring: return "uring";
    case NetBackend::kAuto: return "auto";
  }
  return "?";
}

const char* IngressModeName(IngressMode m) {
  switch (m) {
    case IngressMode::kAuto: return "auto";
    case IngressMode::kPerEndpoint: return "per_endpoint";
    case IngressMode::kShared: return "shared";
  }
  return "?";
}

IngressMode ResolveIngressMode(IngressMode requested) {
  if (requested != IngressMode::kAuto) {
    return requested;
  }
  const char* env = std::getenv("ENSEMBLE_INGRESS");
  IngressMode resolved = (env != nullptr && std::strcmp(env, "shared") == 0)
                             ? IngressMode::kShared
                             : IngressMode::kPerEndpoint;
  LogOncePerProcess(LogLevel::kInfo, std::string("net: auto ingress resolved to ") +
                                         IngressModeName(resolved));
  return resolved;
}

namespace {
bool g_shared_ingress_forced_unavailable = false;
}  // namespace

void UdpNetwork::ForceSharedIngressUnavailableForTest(bool unavailable) {
  g_shared_ingress_forced_unavailable = unavailable;
}

}  // namespace ensemble

#if defined(__linux__) || defined(__APPLE__)

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>

#include "src/net/udp_uring.h"
#include "src/obs/trace.h"
#include "src/util/logging.h"

#if defined(__linux__)
#define ENSEMBLE_HAVE_MMSG 1
#endif
#ifndef SOL_UDP
#define SOL_UDP 17
#endif
#ifndef UDP_GRO
#define UDP_GRO 104
#endif

namespace ensemble {

namespace {
constexpr size_t kMaxDatagram = 65536;
constexpr int kSocketBufBytes = 1 << 22;  // Headroom for bursty batched sends.

sockaddr_in LoopbackAddr(uint16_t port) {
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  return addr;
}

// A non-blocking UDP socket with the bursty-send buffer sizes; -1 on failure.
int OpenUdpSocket() {
  int fd = socket(AF_INET, SOCK_DGRAM, 0);
  if (fd < 0) {
    return -1;
  }
  int flags = fcntl(fd, F_GETFL, 0);
  fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  int buf = kSocketBufBytes;
  setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &buf, sizeof(buf));
  setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &buf, sizeof(buf));
  return fd;
}

void StoreLe32(uint8_t* p, uint32_t v) {
  p[0] = static_cast<uint8_t>(v);
  p[1] = static_cast<uint8_t>(v >> 8);
  p[2] = static_cast<uint8_t>(v >> 16);
  p[3] = static_cast<uint8_t>(v >> 24);
}

uint32_t LoadLe32(const uint8_t* p) {
  return static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
         (static_cast<uint32_t>(p[2]) << 16) |
         (static_cast<uint32_t>(p[3]) << 24);
}

// Preheaders per arena chunk: big enough that the allocation amortizes away,
// small enough that a mostly-idle shard doesn't pin a large chunk alive.
constexpr size_t kHdrArenaCount = 512;
}  // namespace

// [kWireIngress][u32le src conn][u32le dst conn] — see wire_tags.h.  Carved
// from hdr_arena_ so the per-send cost is a 9-byte slice, not a malloc; the
// regions are disjoint, so writing this one never races a prior in-flight
// slice sharing the chunk.
Bytes UdpNetwork::NextIngressHeader(uint64_t src, uint64_t dst) {
  if (hdr_arena_used_ + kWireIngressHeaderLen > hdr_arena_.size()) {
    hdr_arena_ = Bytes::Allocate(kWireIngressHeaderLen * kHdrArenaCount);
    hdr_arena_used_ = 0;
  }
  Bytes b = hdr_arena_.Slice(hdr_arena_used_, kWireIngressHeaderLen);
  hdr_arena_used_ += kWireIngressHeaderLen;
  uint8_t* p = b.MutableData();
  p[0] = kWireIngress;
  StoreLe32(p + 1, static_cast<uint32_t>(src));
  StoreLe32(p + 5, static_cast<uint32_t>(dst));
  return b;
}

UdpNetwork::UdpNetwork() = default;

UdpNetwork::~UdpNetwork() {
  Flush();
  engine_.reset();  // Ring teardown before the fds it references close.
  for (auto& [ep, state] : endpoints_) {
    if (state.fd >= 0) {
      close(state.fd);
    }
  }
  if (listener_.fd >= 0) {
    close(listener_.fd);
  }
  if (tx_.fd >= 0) {
    close(tx_.fd);
  }
}

void UdpNetwork::set_backend_config(NetBackendConfig config) {
  Flush();
  cfg_ = config;
  ResolveBackend();
}

void UdpNetwork::ResolveBackend() {
  NetBackend want = cfg_.backend;
  if (want == NetBackend::kAuto) {
    want = UringEngine::Available() ? NetBackend::kUring : NetBackend::kMmsg;
    LogOncePerProcess(LogLevel::kInfo, std::string("net: auto backend resolved to ") +
                                           NetBackendName(want));
  } else if (want == NetBackend::kUring && !UringEngine::Available()) {
    LogUnsupportedOnce("io_uring backend (falling back to mmsg)");
    want = NetBackend::kMmsg;
  }
  if (want != NetBackend::kUring && engine_) {
    ShutdownUring(want);
  }
  if (want == NetBackend::kUring && !engine_) {
    UringEngine::Options opts;
    opts.sq_entries = cfg_.uring_sq_entries;
    opts.recv_buffers = cfg_.uring_recv_buffers;
    opts.gso = cfg_.uring_gso;
    opts.gro = cfg_.uring_gro;
    auto engine = std::make_unique<UringEngine>(&recv_pool_, &stats_, opts);
    bool up = engine->Init(
        [this](uint64_t cookie, uint16_t src_port, Bytes payload) {
          if (shared_ && cookie == 0) {
            // The listener's sentinel cookie: endpoint identity comes from
            // the preheader, not the socket.  GRO segments arrive here one
            // at a time, each with its own preheader.
            DeliverIngress(std::move(payload));
            return;
          }
          auto it = endpoints_.find(EndpointId{cookie});
          if (it == endpoints_.end()) {
            stats_.dropped++;  // Raced a detach; nowhere to deliver.
            return;
          }
          Packet packet;
          auto src = by_port_.find(src_port);
          packet.src = src != by_port_.end() ? src->second : EndpointId{0};
          packet.dst = EndpointId{cookie};
          packet.datagram = std::move(payload);
          if (it->second.deliver) {
            it->second.deliver(packet);
          }
        });
    if (up) {
      engine_ = std::move(engine);
      engine_->SetWakerFd(waker_.fd());
      if (shared_) {
        engine_->AddSocket(listener_.fd, 0);
      } else {
        for (auto& [ep, state] : endpoints_) {
          engine_->AddSocket(state.fd, ep.id);
        }
      }
    } else {
      LogUnsupportedOnce("io_uring backend (falling back to mmsg)");
      want = NetBackend::kMmsg;
    }
  }
  active_ = want;
  stats_.backend_active = static_cast<uint64_t>(active_);
}

void UdpNetwork::ShutdownUring(NetBackend to) {
  // New sends from deliver callbacks firing during the quiesce go to the
  // successor backend's staging, not the dying engine.
  active_ = to;
  stats_.backend_active = static_cast<uint64_t>(active_);
  engine_->DrainSends();
  // Cancel each armed multishot recv and wait for it to terminate before the
  // ring closes — otherwise a datagram the ring pulls into a provided buffer
  // between the final reap and close(ring_fd) is silently dropped.
  if (shared_) {
    engine_->RemoveSocket(listener_.fd);
  } else {
    for (auto& [ep, state] : endpoints_) {
      engine_->RemoveSocket(state.fd);
    }
  }
  engine_->ReapAndDeliver();  // Endpoints are still attached: deliver it all.
  engine_.reset();
  if (shared_) {
    int zero = 0;
    setsockopt(listener_.fd, SOL_UDP, UDP_GRO, &zero, sizeof(zero));
  } else {
    for (auto& [ep, state] : endpoints_) {
      int zero = 0;
      setsockopt(state.fd, SOL_UDP, UDP_GRO, &zero, sizeof(zero));
    }
  }
}

void UdpNetwork::UringQuiesce(int fd) {
  engine_->RemoveSocket(fd);
  // Deliver datagrams the ring had already pulled off this (or any) socket —
  // the endpoint is still attached, so its deliver callback still resolves.
  engine_->DeliverPending();
}

bool UdpNetwork::EnableSharedIngress(uint16_t group_port) {
  if (shared_) {
    return true;
  }
  if (!endpoints_.empty() || ingress_unavailable_) {
    return false;  // Too late (per-endpoint sockets exist) or already failed.
  }
  auto unsupported = [this]() {
    if (listener_.fd >= 0) {
      close(listener_.fd);
      listener_.fd = -1;
    }
    if (tx_.fd >= 0) {
      close(tx_.fd);
      tx_.fd = -1;
    }
    listener_.port = 0;
    ingress_unavailable_ = true;
    LogUnsupportedOnce(
        "SO_REUSEPORT shared ingress (falling back to per-endpoint sockets)");
    return false;
  };
  if (g_shared_ingress_forced_unavailable) {
    return unsupported();
  }
#if !defined(SO_REUSEPORT)
  return unsupported();
#else
  listener_.fd = OpenUdpSocket();
  if (listener_.fd < 0) {
    return unsupported();
  }
  int one = 1;
  if (setsockopt(listener_.fd, SOL_SOCKET, SO_REUSEPORT, &one, sizeof(one)) !=
      0) {
    return unsupported();
  }
  sockaddr_in addr = LoopbackAddr(group_port);
  if (bind(listener_.fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    return unsupported();
  }
  socklen_t len = sizeof(addr);
  getsockname(listener_.fd, reinterpret_cast<sockaddr*>(&addr), &len);
  listener_.port = ntohs(addr.sin_port);
  // The dedicated send socket: binding it (rather than sending from the
  // listener) keeps this network's outbound traffic a single kernel flow
  // distinct from the group port, so the reuseport flow-hash spreads shards'
  // flows across listeners instead of collapsing everything onto one.
  tx_.fd = OpenUdpSocket();
  if (tx_.fd < 0) {
    return unsupported();
  }
  sockaddr_in tx_addr = LoopbackAddr(0);
  if (bind(tx_.fd, reinterpret_cast<sockaddr*>(&tx_addr), sizeof(tx_addr)) !=
      0) {
    return unsupported();
  }
  shared_ = true;
  stats_.ingress_mode = 1;
  if (engine_) {
    engine_->AddSocket(listener_.fd, 0);
  }
  return true;
#endif
}

void UdpNetwork::DisableSharedIngress() {
  if (shared_) {
    if (engine_) {
      engine_->RemoveSocket(listener_.fd);
    }
    close(listener_.fd);
    listener_.fd = -1;
    listener_.port = 0;
    close(tx_.fd);
    tx_.fd = -1;
    shared_ = false;
    stats_.ingress_mode = 0;
  }
  ingress_unavailable_ = true;
}

void UdpNetwork::Attach(EndpointId ep, DeliverFn deliver) {
  if (!shared_ && !ingress_unavailable_ && endpoints_.empty() &&
      ResolveIngressMode(cfg_.ingress) == IngressMode::kShared) {
    EnableSharedIngress(0);  // Standalone self-enable: a group of one.
  }
  if (shared_) {
    // No kernel state per endpoint: record the deliver callback and index it
    // in the demux table (endpoint ids are the wire conn ids; the sharded
    // runtime's ids are small, so the u32 truncation is lossless).
    Endpoint state;
    state.port = listener_.port;
    state.deliver = std::move(deliver);
    endpoints_[ep] = std::move(state);
    demux_.Insert(static_cast<uint32_t>(ep.id), &endpoints_[ep]);
    return;
  }
  Endpoint state;
  state.fd = OpenUdpSocket();
  if (state.fd < 0) {
    ok_ = false;
    return;
  }
  sockaddr_in addr = LoopbackAddr(0);
  if (bind(state.fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    close(state.fd);
    ok_ = false;
    return;
  }
  socklen_t len = sizeof(addr);
  getsockname(state.fd, reinterpret_cast<sockaddr*>(&addr), &len);
  state.port = ntohs(addr.sin_port);
  state.deliver = std::move(deliver);
  by_port_[state.port] = ep;
  int fd = state.fd;
  endpoints_[ep] = std::move(state);
  if (engine_) {
    engine_->AddSocket(fd, ep.id);
  }
}

void UdpNetwork::Detach(EndpointId ep) {
  drain_hooks_.erase(ep);
  auto it = endpoints_.find(ep);
  if (it == endpoints_.end()) {
    return;
  }
  if (shared_ && it->second.fd < 0) {
    Flush();  // Staged farewells (Leave) still go out.
    demux_.Erase(static_cast<uint32_t>(ep.id));
    endpoints_.erase(it);
    return;
  }
  FlushEndpoint(it->second);  // Staged farewells (Leave) still go out.
  if (engine_) {
    // Remove WITHOUT delivering pending receives.  Detach runs from endpoint
    // destructors — often mid-teardown of the whole runtime — so pushing
    // packets up the stack here re-enters app callbacks and counters that may
    // already be destroyed.  Anything the ring pulled for this endpoint drops
    // (the kernel would have dropped its socket queue at close anyway);
    // other endpoints' packets stay queued for the next Poll.  The migration
    // path (Release) still quiesces WITH delivery: there the endpoint lives
    // on elsewhere and the runtime is fully alive.
    engine_->RemoveSocket(it->second.fd);
  }
  by_port_.erase(it->second.port);
  if (it->second.fd >= 0) {
    close(it->second.fd);
  }
  endpoints_.erase(it);
}

void UdpNetwork::AddPeer(EndpointId ep, uint16_t port) {
  if (port == 0 || endpoints_.count(ep) > 0) {
    return;  // Local endpoints already resolve; port 0 means "not bound".
  }
  peers_[ep] = port;
  if (!shared_) {
    // Shared mode: every peer publishes the same group port (source
    // attribution comes from the preheader), so the port index is useless.
    by_port_[port] = ep;
  }
}

UdpNetwork::ReleasedEndpoint UdpNetwork::Release(EndpointId ep) {
  ReleasedEndpoint out;
  auto it = endpoints_.find(ep);
  if (it == endpoints_.end()) {
    return out;
  }
  if (shared_ && it->second.fd < 0) {
    // Pure in-memory release: no socket quiesce, no kernel state moves.
    Flush();  // Staged sends go out before ownership moves.
    out.shared = true;
    out.port = it->second.port;
    out.deliver = std::move(it->second.deliver);
    if (auto hook = drain_hooks_.find(ep); hook != drain_hooks_.end()) {
      out.drain_hook = std::move(hook->second);
      drain_hooks_.erase(hook);
    }
    demux_.Erase(static_cast<uint32_t>(ep.id));
    endpoints_.erase(it);
    // Keep the endpoint reachable from local senders and broadcasts: the
    // wire address (group port + conn id) is location-independent.
    peers_[ep] = out.port;
    return out;
  }
  FlushEndpoint(it->second);  // Staged sends go out before ownership moves.
  if (engine_) {
    UringQuiesce(it->second.fd);
    // The next owner may not run GRO-aware receives; hand over a socket that
    // delivers plain datagrams (its Adopt re-enables GRO if it runs uring).
    int zero = 0;
    setsockopt(it->second.fd, SOL_UDP, UDP_GRO, &zero, sizeof(zero));
  }
  out.fd = it->second.fd;
  out.port = it->second.port;
  out.deliver = std::move(it->second.deliver);
  if (auto hook = drain_hooks_.find(ep); hook != drain_hooks_.end()) {
    out.drain_hook = std::move(hook->second);
    drain_hooks_.erase(hook);
  }
  endpoints_.erase(it);
  // The endpoint keeps its port on the thief's shard; by_port_ stays for
  // source attribution and the peer entry keeps local senders reaching it.
  peers_[ep] = out.port;
  return out;
}

void UdpNetwork::Adopt(EndpointId ep, ReleasedEndpoint state) {
  if (state.shared) {
    // In-memory adopt: install the deliver callback into the demux table.
    peers_.erase(ep);
    Endpoint local;
    local.port = shared_ ? listener_.port : 0;
    local.deliver = std::move(state.deliver);
    if (state.drain_hook) {
      drain_hooks_[ep] = std::move(state.drain_hook);
    }
    endpoints_[ep] = std::move(local);
    demux_.Insert(static_cast<uint32_t>(ep.id), &endpoints_[ep]);
    return;
  }
  if (state.fd < 0) {
    return;
  }
  peers_.erase(ep);
  Endpoint local;
  local.fd = state.fd;
  local.port = state.port;
  local.deliver = std::move(state.deliver);
  by_port_[local.port] = ep;
  if (state.drain_hook) {
    drain_hooks_[ep] = std::move(state.drain_hook);
  }
  int fd = local.fd;
  endpoints_[ep] = std::move(local);  // Next PollWait rebuilds the fd set.
  if (engine_) {
    engine_->AddSocket(fd, ep.id);
  }
}

void UdpNetwork::SetDrainHook(EndpointId ep, std::function<void()> hook) {
  if (hook) {
    drain_hooks_[ep] = std::move(hook);
  } else {
    drain_hooks_.erase(ep);
  }
}

uint16_t UdpNetwork::PortOf(EndpointId ep) const {
  auto it = endpoints_.find(ep);
  return it == endpoints_.end() ? 0 : it->second.port;
}

void UdpNetwork::SendEager(int fd, uint16_t port, const Iovec& gather) {
  // The real scatter-gather send — one iovec entry per part, no flatten, one
  // syscall per datagram.
  std::vector<iovec> iov(gather.part_count());
  for (size_t i = 0; i < gather.part_count(); i++) {
    iov[i].iov_base = const_cast<uint8_t*>(gather.part(i).data());
    iov[i].iov_len = gather.part(i).size();
  }
  sockaddr_in addr = LoopbackAddr(port);
  msghdr msg;
  std::memset(&msg, 0, sizeof(msg));
  msg.msg_name = &addr;
  msg.msg_namelen = sizeof(addr);
  msg.msg_iov = iov.data();
  msg.msg_iovlen = iov.size();
  stats_.send_syscalls++;
  if (sendmsg(fd, &msg, 0) >= 0) {
    stats_.sent++;
    stats_.bytes_sent += gather.size();
  } else {
    stats_.dropped++;
  }
}

void UdpNetwork::SendSharedWire(EndpointId src, EndpointId dst,
                                const Iovec& gather) {
  // The preheader is its own arena-backed part, so the staged parts stay
  // uniform in size across a burst and GSO run-coalescing still fires.
  Bytes hdr = NextIngressHeader(src.id, dst.id);
  if (active_ == NetBackend::kMmsg) {
    // Stage straight into the tx ring slot: one sized part-list build, no
    // intermediate Iovec to copy and tear down per message.
    tx_.ring.push_back(Staged{listener_.port, Iovec()});
    Iovec& wire = tx_.ring.back().gather;
    wire.Reserve(1 + gather.part_count());
    wire.Append(std::move(hdr));
    wire.Append(gather);
    stats_.batched_datagrams++;
    if (tx_.ring.size() >= EffectiveSendBatch()) {
      FlushEndpoint(tx_);
    }
    return;
  }
  Iovec wire;
  wire.Reserve(1 + gather.part_count());
  wire.Append(std::move(hdr));
  wire.Append(gather);
  if (active_ == NetBackend::kUring) {
    engine_->StageSend(tx_.fd, listener_.port, wire);
  } else {
    SendEager(tx_.fd, listener_.port, wire);
  }
}

void UdpNetwork::Send(EndpointId src, EndpointId dst, const Iovec& gather) {
  auto from = endpoints_.find(src);
  if (from == endpoints_.end()) {
    stats_.dropped++;
    return;
  }
  if (shared_) {
    // Destination check for drop parity with per-endpoint resolution; the
    // wire address is always (group port, dst conn id) regardless of where
    // the endpoint currently lives.
    if (endpoints_.count(dst) == 0 && peers_.count(dst) == 0) {
      stats_.dropped++;
      return;
    }
    CountIfPacked(&stats_, gather);
    SendSharedWire(src, dst, gather);
    if (active_ == NetBackend::kUring &&
        engine_->staged_sends() >= EffectiveSendBatch()) {
      engine_->SubmitSends();  // Submit, don't wait: Flush() is the barrier.
    }
    return;
  }
  // Destination resolution: a locally attached endpoint, else a published
  // peer (an endpoint on another shard's UdpNetwork).
  uint16_t port = 0;
  if (auto to = endpoints_.find(dst); to != endpoints_.end()) {
    port = to->second.port;
  } else if (auto peer = peers_.find(dst); peer != peers_.end()) {
    port = peer->second;
  } else {
    stats_.dropped++;
    return;
  }
  CountIfPacked(&stats_, gather);
  if (active_ == NetBackend::kUring) {
    engine_->StageSend(from->second.fd, port, gather);
    if (engine_->staged_sends() >= EffectiveSendBatch()) {
      engine_->SubmitSends();  // Submit, don't wait: Flush() is the barrier.
    }
    return;
  }
  if (active_ == NetBackend::kMmsg) {
    Enqueue(from->second, port, gather);
    return;
  }
  SendEager(from->second.fd, port, gather);
}

void UdpNetwork::Broadcast(EndpointId src, const Iovec& gather) {
  if (shared_) {
    auto from = endpoints_.find(src);
    if (from == endpoints_.end()) {
      stats_.dropped++;
      return;
    }
    CountIfPacked(&stats_, gather);
    // One wire datagram per destination; the payload parts are refcounted,
    // so fan-out shares the bytes and only the 9-byte preheaders differ.
    for (const auto& [ep, state] : endpoints_) {
      if (ep != src) {
        SendSharedWire(src, ep, gather);
      }
    }
    for (const auto& [ep, port] : peers_) {
      SendSharedWire(src, ep, gather);
    }
    if (active_ == NetBackend::kUring &&
        engine_->staged_sends() >= EffectiveSendBatch()) {
      engine_->SubmitSends();
    }
    return;
  }
  if (active_ != NetBackend::kEager) {
    auto from = endpoints_.find(src);
    if (from == endpoints_.end()) {
      stats_.dropped++;
      return;
    }
    CountIfPacked(&stats_, gather);
    // One staged entry per destination (local endpoints and remote peers);
    // the Iovec parts are refcounted, so fan-out shares the payload bytes.
    bool uring = active_ == NetBackend::kUring;
    for (const auto& [ep, state] : endpoints_) {
      if (ep != src) {
        uring ? engine_->StageSend(from->second.fd, state.port, gather)
              : Enqueue(from->second, state.port, gather);
      }
    }
    for (const auto& [ep, port] : peers_) {
      uring ? engine_->StageSend(from->second.fd, port, gather)
            : Enqueue(from->second, port, gather);
    }
    if (uring && engine_->staged_sends() >= EffectiveSendBatch()) {
      engine_->SubmitSends();
    }
    return;
  }
  for (const auto& [ep, state] : endpoints_) {
    if (ep == src) {
      continue;
    }
    Send(src, ep, gather);
  }
  for (const auto& [ep, port] : peers_) {
    Send(src, ep, gather);
  }
}

void UdpNetwork::Enqueue(Endpoint& from, uint16_t port, const Iovec& gather) {
  from.ring.push_back(Staged{port, gather});
  stats_.batched_datagrams++;
  if (from.ring.size() >= EffectiveSendBatch()) {
    FlushEndpoint(from);
  }
}

void UdpNetwork::FlushEndpoint(Endpoint& ep) {
  if (ep.ring.empty()) {
    return;
  }
  size_t n = ep.ring.size();
  stats_.max_send_batch = std::max<uint64_t>(stats_.max_send_batch, n);
  if (n > 1) {
    stats_.send_batches++;
  }
  // Per-message iovec arrays live in one flat vector; `starts` indexes it.
  std::vector<iovec> iov;
  std::vector<size_t> starts(n);
  std::vector<sockaddr_in> addrs(n);
  for (size_t i = 0; i < n; i++) {
    starts[i] = iov.size();
    const Iovec& gather = ep.ring[i].gather;
    for (size_t p = 0; p < gather.part_count(); p++) {
      iov.push_back(iovec{const_cast<uint8_t*>(gather.part(p).data()),
                          gather.part(p).size()});
    }
    addrs[i] = LoopbackAddr(ep.ring[i].port);
  }
#if defined(ENSEMBLE_HAVE_MMSG)
  std::vector<mmsghdr> msgs(n);
  for (size_t i = 0; i < n; i++) {
    std::memset(&msgs[i], 0, sizeof(msgs[i]));
    msgs[i].msg_hdr.msg_name = &addrs[i];
    msgs[i].msg_hdr.msg_namelen = sizeof(addrs[i]);
    msgs[i].msg_hdr.msg_iov = iov.data() + starts[i];
    msgs[i].msg_hdr.msg_iovlen =
        (i + 1 < n ? starts[i + 1] : iov.size()) - starts[i];
  }
  // sendmmsg may transmit a prefix; keep going until everything was handed to
  // the kernel or a real error stops us.
  size_t done = 0;
  while (done < n) {
    stats_.send_syscalls++;
    int sent = sendmmsg(ep.fd, msgs.data() + done,
                        static_cast<unsigned>(n - done), 0);
    if (sent <= 0) {
      stats_.dropped += n - done;
      break;
    }
    for (size_t i = done; i < done + static_cast<size_t>(sent); i++) {
      stats_.sent++;
      stats_.bytes_sent += ep.ring[i].gather.size();
    }
    done += static_cast<size_t>(sent);
  }
#else
  for (size_t i = 0; i < n; i++) {
    msghdr msg;
    std::memset(&msg, 0, sizeof(msg));
    msg.msg_name = &addrs[i];
    msg.msg_namelen = sizeof(addrs[i]);
    msg.msg_iov = iov.data() + starts[i];
    msg.msg_iovlen = (i + 1 < n ? starts[i + 1] : iov.size()) - starts[i];
    stats_.send_syscalls++;
    if (sendmsg(ep.fd, &msg, 0) >= 0) {
      stats_.sent++;
      stats_.bytes_sent += ep.ring[i].gather.size();
    } else {
      stats_.dropped++;
    }
  }
#endif
  ep.ring.clear();
}

void UdpNetwork::Flush() {
  for (auto& [ep, state] : endpoints_) {
    FlushEndpoint(state);
  }
  FlushEndpoint(tx_);  // Shared mode stages everything on the tx socket.
  if (engine_) {
    // Wait for the send CQEs: on return the wire (and the sent/bytes
    // counters) are caught up, matching the synchronous backends.
    engine_->DrainSends();
  }
}

void UdpNetwork::PrewarmRecvBuffers(size_t chunks) { recv_pool_.Prewarm(chunks); }

void UdpNetwork::ScheduleTimer(VTime delay, TimerFn fn) {
  timers_.push(Timer{NowNanos() + delay, timer_seq_++, std::move(fn)});
  timer_depth_ = timers_.size();
}

size_t UdpNetwork::RunDueTimers() {
  // Due timers are collected first: firing may schedule new ones.
  VTime now = NowNanos();
  std::vector<TimerFn> due;
  while (!timers_.empty() && timers_.top().due <= now) {
    due.push_back(std::move(const_cast<Timer&>(timers_.top()).fn));
    timers_.pop();
  }
  timer_depth_ = timers_.size();
  for (TimerFn& fn : due) {
    fn();
  }
  if (!due.empty()) {
    ENS_TRACE(kTimerFire, -1, due.size(), 0);
  }
  return due.size();
}

// Per-call budget for the shared-listener drain.  Unlike a per-endpoint
// socket — which only ever receives traffic addressed to its own port — the
// listener funnels EVERY flow on the shard, including our own tx_ when the
// kernel's REUSEPORT hash points it back at us.  An echo workload can then
// feed the drain as fast as it empties (deliver → send → flush → arrive),
// and an unbounded loop would never return to the worker loop to check
// stop_/rings.  The budget keeps batching wins intact while guaranteeing
// Poll() terminates.
constexpr size_t kIngressDrainBudget = 1024;

size_t UdpNetwork::DrainOneEager(Endpoint& state, EndpointId ep, bool ingress) {
  size_t events = 0;
  uint8_t buf[kMaxDatagram];
  while (!ingress || events < kIngressDrainBudget) {
    sockaddr_in from;
    socklen_t from_len = sizeof(from);
    stats_.recv_syscalls++;
    ssize_t n = recvfrom(state.fd, buf, sizeof(buf), 0,
                         reinterpret_cast<sockaddr*>(&from), &from_len);
    if (n < 0) {
      break;  // EWOULDBLOCK: drained.
    }
    if (ingress) {
      DeliverIngress(Bytes::Copy(buf, static_cast<size_t>(n)));
      events++;
      continue;
    }
    Packet packet;
    auto src = by_port_.find(ntohs(from.sin_port));
    packet.src = src != by_port_.end() ? src->second : EndpointId{0};
    packet.dst = ep;
    packet.datagram = Bytes::Copy(buf, static_cast<size_t>(n));
    stats_.delivered++;
    if (state.deliver) {
      state.deliver(packet);
    }
    events++;
  }
  return events;
}

size_t UdpNetwork::DrainOneBatched(Endpoint& state, EndpointId ep,
                                   bool ingress) {
  // Pooled zero-copy receive: the kernel writes each datagram into a pool
  // chunk and the delivered Bytes slice aliases it — no post-recv copy.  A
  // chunk whose slice was handed out is replaced (the consumer's last ref
  // recycles it); untouched chunks are reused for the next syscall.
  size_t events = 0;
  size_t vlen = std::max<size_t>(1, cfg_.recv_batch);
  if (ingress) {
    // The shared listener feeds every endpoint on the shard, so it earns a
    // deeper batch than a single per-endpoint socket: 4x the configured
    // depth, capped so the standing pool buffers stay bounded (64 * 64KiB).
    vlen = std::min<size_t>(64, vlen * 4);
  }
  if (recv_bufs_.size() < vlen) {
    recv_bufs_.resize(vlen);
  }
  std::vector<sockaddr_in> addrs(vlen);
  std::vector<iovec> iov(vlen);
#if defined(ENSEMBLE_HAVE_MMSG)
  std::vector<mmsghdr> msgs(vlen);
#endif
  while (!ingress || events < kIngressDrainBudget) {
    for (size_t i = 0; i < vlen; i++) {
      if (recv_bufs_[i].empty()) {
        recv_bufs_[i] = recv_pool_.Allocate(kMaxDatagram);
      }
      iov[i] = iovec{recv_bufs_[i].MutableData(), kMaxDatagram};
    }
    size_t got = 0;
#if defined(ENSEMBLE_HAVE_MMSG)
    for (size_t i = 0; i < vlen; i++) {
      std::memset(&msgs[i], 0, sizeof(msgs[i]));
      msgs[i].msg_hdr.msg_name = &addrs[i];
      msgs[i].msg_hdr.msg_namelen = sizeof(addrs[i]);
      msgs[i].msg_hdr.msg_iov = &iov[i];
      msgs[i].msg_hdr.msg_iovlen = 1;
    }
    stats_.recv_syscalls++;
    int n = recvmmsg(state.fd, msgs.data(), static_cast<unsigned>(vlen), 0,
                     nullptr);
    if (n <= 0) {
      break;
    }
    got = static_cast<size_t>(n);
    for (size_t i = 0; i < got; i++) {
      if (ingress) {
        DeliverIngress(recv_bufs_[i].Slice(0, msgs[i].msg_len));
        recv_bufs_[i] = Bytes();  // Chunk now owned by the delivered slice.
        events++;
        continue;
      }
      Packet packet;
      auto src = by_port_.find(ntohs(addrs[i].sin_port));
      packet.src = src != by_port_.end() ? src->second : EndpointId{0};
      packet.dst = ep;
      packet.datagram = recv_bufs_[i].Slice(0, msgs[i].msg_len);
      recv_bufs_[i] = Bytes();  // Chunk now owned by the delivered slice.
      stats_.delivered++;
      if (state.deliver) {
        state.deliver(packet);
      }
      events++;
    }
#else
    // No recvmmsg on this platform: recvmsg per datagram, still pooled.
    msghdr msg;
    std::memset(&msg, 0, sizeof(msg));
    msg.msg_name = &addrs[0];
    msg.msg_namelen = sizeof(addrs[0]);
    msg.msg_iov = &iov[0];
    msg.msg_iovlen = 1;
    stats_.recv_syscalls++;
    ssize_t n = recvmsg(state.fd, &msg, 0);
    if (n < 0) {
      break;
    }
    got = 1;
    if (ingress) {
      DeliverIngress(recv_bufs_[0].Slice(0, static_cast<size_t>(n)));
      recv_bufs_[0] = Bytes();
      events++;
      if (got < vlen) {
        break;
      }
      continue;
    }
    Packet packet;
    auto src = by_port_.find(ntohs(addrs[0].sin_port));
    packet.src = src != by_port_.end() ? src->second : EndpointId{0};
    packet.dst = ep;
    packet.datagram = recv_bufs_[0].Slice(0, static_cast<size_t>(n));
    recv_bufs_[0] = Bytes();
    stats_.delivered++;
    if (state.deliver) {
      state.deliver(packet);
    }
    events++;
#endif
    if (got < vlen) {
      break;  // Socket drained.
    }
  }
  return events;
}

size_t UdpNetwork::DrainSockets() {
  if (active_ == NetBackend::kUring) {
    if (!engine_->recv_broken()) {
      return engine_->ReapAndDeliver();
    }
    // A multishot recv died with a terminal error (kernel accepted the ring
    // but not IORING_RECV_MULTISHOT, say): the uring receive path is dead, so
    // fall back to mmsg instead of spinning on re-arms that never deliver.
    LogUnsupportedOnce("io_uring multishot recv (falling back to mmsg)");
    ShutdownUring(NetBackend::kMmsg);
  }
  if (shared_) {
    // The whole shard drains through the one listener, whatever the
    // endpoint count — this is the syscall win the ingress bench measures.
    return active_ == NetBackend::kMmsg
               ? DrainOneBatched(listener_, EndpointId{0}, /*ingress=*/true)
               : DrainOneEager(listener_, EndpointId{0}, /*ingress=*/true);
  }
  size_t events = 0;
  for (auto& [ep, state] : endpoints_) {
    events += active_ == NetBackend::kMmsg ? DrainOneBatched(state, ep)
                                           : DrainOneEager(state, ep);
  }
  return events;
}

void UdpNetwork::DeliverIngress(Bytes datagram) {
  if (datagram.size() < kWireIngressHeaderLen ||
      datagram[0] != kWireIngress) {
    stats_.demux_bad++;
    stats_.dropped++;
    return;
  }
  const uint8_t* p = datagram.data();
  Packet packet;
  packet.src = EndpointId{LoadLe32(p + 1)};
  packet.dst = EndpointId{LoadLe32(p + 5)};
  packet.datagram = datagram.Slice(kWireIngressHeaderLen);
  if (Endpoint* ep = demux_.Find(static_cast<uint32_t>(packet.dst.id))) {
    stats_.delivered++;
    if (ep->deliver) {
      ep->deliver(packet);
    }
    return;
  }
  // Not ours: the reuseport flow-hash routes by sender, not destination, so
  // in the sharded runtime this is how traffic for other shards (and for
  // members mid-migration) arrives.  The handler forwards it; without one
  // (standalone network) an unknown conn id is a counted drop.
  if (miss_ && miss_(packet)) {
    return;
  }
  stats_.demux_miss++;
  stats_.dropped++;
}

bool UdpNetwork::DeliverToLocal(const Packet& packet) {
  Endpoint* ep = demux_.Find(static_cast<uint32_t>(packet.dst.id));
  if (ep == nullptr) {
    return false;
  }
  stats_.delivered++;
  if (ep->deliver) {
    ep->deliver(packet);
  }
  return true;
}

size_t UdpNetwork::Poll() {
  size_t drained = DrainSockets();
  if (drained > 0) {
    // End-of-drain boundary: endpoints flush response traffic their deliver
    // callbacks staged (packed messages with no later timer tick would
    // otherwise never leave).  Hooks may stage into our send rings.
    for (auto& [ep, hook] : drain_hooks_) {
      hook();
    }
  }
  size_t timers = RunDueTimers();
  // The wire is caught up on Poll() exit: everything staged by deliveries,
  // drain hooks, or timer callbacks goes out before we return.
  Flush();
  return drained + timers;
}

void UdpNetwork::IdleWait(VTime max_wait) {
  // Block until traffic arrives, another thread calls Wakeup(), the next
  // timer is due, or `max_wait` passes — whichever is first.
  VTime wait = max_wait;
  if (!timers_.empty()) {
    VTime now = NowNanos();
    VTime until_timer = timers_.top().due > now ? timers_.top().due - now : 0;
    wait = std::min(wait, until_timer);
  }
  if (active_ == NetBackend::kUring) {
    // The multishot recvs and the ring-registered waker poll make every wake
    // source a CQE; the sleep is one io_uring_enter with an EXT_ARG timeout.
    engine_->WaitCompletions(static_cast<uint64_t>(wait));
    waker_.Drain();
    return;
  }
  std::vector<pollfd> fds;
  if (shared_) {
    fds.push_back(pollfd{listener_.fd, POLLIN, 0});  // O(1) poll set, too.
  } else {
    for (const auto& [ep, state] : endpoints_) {
      fds.push_back(pollfd{state.fd, POLLIN, 0});
    }
  }
  if (waker_.fd() >= 0) {
    fds.push_back(pollfd{waker_.fd(), POLLIN, 0});
  }
  int timeout_ms = static_cast<int>((wait + 999'999) / 1'000'000);
  if (!fds.empty()) {
    ::poll(fds.data(), fds.size(), timeout_ms);
  }
  waker_.Drain();
}

size_t UdpNetwork::PollWait(VTime max_wait) {
  size_t events = Poll();
  if (events > 0) {
    return events;
  }
  IdleWait(max_wait);
  return Poll();
}

size_t UdpNetwork::PollFor(VTime duration) {
  size_t events = 0;
  VTime deadline = NowNanos() + duration;
  while (NowNanos() < deadline) {
    // Sleep at most ~1ms per iteration (the historical timer tick cadence).
    events += PollWait(std::min<VTime>(Millis(1), deadline - NowNanos()));
    if (endpoints_.empty()) {
      break;
    }
  }
  events += Poll();
  return events;
}

}  // namespace ensemble

#else  // Unsupported platform: every operation reports failure loudly.

#include "src/net/udp_uring.h"
#include "src/util/logging.h"

namespace ensemble {
UdpNetwork::UdpNetwork() = default;
UdpNetwork::~UdpNetwork() = default;
void UdpNetwork::set_backend_config(NetBackendConfig config) {
  cfg_ = config;
  active_ = NetBackend::kEager;  // No sockets anyway.
}
void UdpNetwork::ResolveBackend() {}
void UdpNetwork::UringQuiesce(int) {}
void UdpNetwork::Attach(EndpointId, DeliverFn) {
  ok_ = false;
  LogUnsupportedOnce("UdpNetwork::Attach");
}
void UdpNetwork::Detach(EndpointId) {}
void UdpNetwork::Send(EndpointId, EndpointId, const Iovec&) {
  ok_ = false;
  stats_.dropped++;
  LogUnsupportedOnce("UdpNetwork::Send");
}
void UdpNetwork::Broadcast(EndpointId, const Iovec&) {
  ok_ = false;
  stats_.dropped++;
  LogUnsupportedOnce("UdpNetwork::Broadcast");
}
void UdpNetwork::Flush() {}
void UdpNetwork::AddPeer(EndpointId, uint16_t) {}
UdpNetwork::ReleasedEndpoint UdpNetwork::Release(EndpointId) { return {}; }
void UdpNetwork::Adopt(EndpointId, ReleasedEndpoint) {}
bool UdpNetwork::EnableSharedIngress(uint16_t) {
  ingress_unavailable_ = true;
  LogUnsupportedOnce(
      "SO_REUSEPORT shared ingress (falling back to per-endpoint sockets)");
  return false;
}
void UdpNetwork::DisableSharedIngress() { ingress_unavailable_ = true; }
bool UdpNetwork::DeliverToLocal(const Packet&) { return false; }
void UdpNetwork::DeliverIngress(Bytes) {}
void UdpNetwork::IdleWait(VTime) {}
void UdpNetwork::SetDrainHook(EndpointId, std::function<void()>) {}
void UdpNetwork::PrewarmRecvBuffers(size_t) {}
void UdpNetwork::ScheduleTimer(VTime, TimerFn) {
  ok_ = false;
  LogUnsupportedOnce("UdpNetwork::ScheduleTimer");
}
size_t UdpNetwork::Poll() { return 0; }
size_t UdpNetwork::PollFor(VTime) { return 0; }
size_t UdpNetwork::PollWait(VTime) { return 0; }
uint16_t UdpNetwork::PortOf(EndpointId) const { return 0; }
size_t UdpNetwork::RunDueTimers() { return 0; }
size_t UdpNetwork::DrainSockets() { return 0; }
size_t UdpNetwork::DrainOneEager(Endpoint&, EndpointId, bool) { return 0; }
size_t UdpNetwork::DrainOneBatched(Endpoint&, EndpointId, bool) { return 0; }
void UdpNetwork::Enqueue(Endpoint&, uint16_t, const Iovec&) {}
void UdpNetwork::FlushEndpoint(Endpoint&) {}
void UdpNetwork::SendEager(int, uint16_t, const Iovec&) {}
void UdpNetwork::SendSharedWire(EndpointId, EndpointId, const Iovec&) {}
}  // namespace ensemble

#endif
