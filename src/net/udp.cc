#include "src/net/udp.h"

#if defined(__linux__) || defined(__APPLE__)

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>

#include "src/util/logging.h"

namespace ensemble {

namespace {
constexpr size_t kMaxDatagram = 65536;

sockaddr_in LoopbackAddr(uint16_t port) {
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  return addr;
}
}  // namespace

UdpNetwork::~UdpNetwork() {
  for (auto& [ep, state] : endpoints_) {
    if (state.fd >= 0) {
      close(state.fd);
    }
  }
}

void UdpNetwork::Attach(EndpointId ep, DeliverFn deliver) {
  Endpoint state;
  state.fd = socket(AF_INET, SOCK_DGRAM, 0);
  if (state.fd < 0) {
    ok_ = false;
    return;
  }
  int flags = fcntl(state.fd, F_GETFL, 0);
  fcntl(state.fd, F_SETFL, flags | O_NONBLOCK);

  sockaddr_in addr = LoopbackAddr(0);
  if (bind(state.fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    close(state.fd);
    ok_ = false;
    return;
  }
  socklen_t len = sizeof(addr);
  getsockname(state.fd, reinterpret_cast<sockaddr*>(&addr), &len);
  state.port = ntohs(addr.sin_port);
  state.deliver = std::move(deliver);
  by_port_[state.port] = ep;
  endpoints_[ep] = std::move(state);
}

void UdpNetwork::Detach(EndpointId ep) {
  auto it = endpoints_.find(ep);
  if (it == endpoints_.end()) {
    return;
  }
  by_port_.erase(it->second.port);
  if (it->second.fd >= 0) {
    close(it->second.fd);
  }
  endpoints_.erase(it);
}

uint16_t UdpNetwork::PortOf(EndpointId ep) const {
  auto it = endpoints_.find(ep);
  return it == endpoints_.end() ? 0 : it->second.port;
}

void UdpNetwork::Send(EndpointId src, EndpointId dst, const Iovec& gather) {
  auto from = endpoints_.find(src);
  auto to = endpoints_.find(dst);
  if (from == endpoints_.end() || to == endpoints_.end()) {
    stats_.dropped++;
    return;
  }
  // The real scatter-gather send: one iovec entry per part, no flatten.
  std::vector<iovec> iov(gather.part_count());
  for (size_t i = 0; i < gather.part_count(); i++) {
    iov[i].iov_base = const_cast<uint8_t*>(gather.part(i).data());
    iov[i].iov_len = gather.part(i).size();
  }
  sockaddr_in addr = LoopbackAddr(to->second.port);
  msghdr msg;
  std::memset(&msg, 0, sizeof(msg));
  msg.msg_name = &addr;
  msg.msg_namelen = sizeof(addr);
  msg.msg_iov = iov.data();
  msg.msg_iovlen = iov.size();
  if (sendmsg(from->second.fd, &msg, 0) >= 0) {
    stats_.sent++;
    stats_.bytes_sent += gather.size();
  } else {
    stats_.dropped++;
  }
}

void UdpNetwork::Broadcast(EndpointId src, const Iovec& gather) {
  for (const auto& [ep, state] : endpoints_) {
    if (ep == src) {
      continue;
    }
    Send(src, ep, gather);
  }
}

void UdpNetwork::ScheduleTimer(VTime delay, TimerFn fn) {
  timers_.push_back({NowNanos() + delay, std::move(fn)});
}

size_t UdpNetwork::RunDueTimers() {
  // Due timers are collected first: firing may schedule new ones.
  VTime now = NowNanos();
  std::vector<TimerFn> due;
  for (size_t i = 0; i < timers_.size();) {
    if (timers_[i].due <= now) {
      due.push_back(std::move(timers_[i].fn));
      timers_[i] = std::move(timers_.back());
      timers_.pop_back();
    } else {
      i++;
    }
  }
  for (TimerFn& fn : due) {
    fn();
  }
  return due.size();
}

size_t UdpNetwork::DrainSockets() {
  size_t events = 0;
  uint8_t buf[kMaxDatagram];
  for (auto& [ep, state] : endpoints_) {
    while (true) {
      sockaddr_in from;
      socklen_t from_len = sizeof(from);
      ssize_t n = recvfrom(state.fd, buf, sizeof(buf), 0,
                           reinterpret_cast<sockaddr*>(&from), &from_len);
      if (n < 0) {
        break;  // EWOULDBLOCK: drained.
      }
      Packet packet;
      auto src = by_port_.find(ntohs(from.sin_port));
      packet.src = src != by_port_.end() ? src->second : EndpointId{0};
      packet.dst = ep;
      packet.datagram = Bytes::Copy(buf, static_cast<size_t>(n));
      stats_.delivered++;
      if (state.deliver) {
        state.deliver(packet);
      }
      events++;
    }
  }
  return events;
}

size_t UdpNetwork::Poll() { return DrainSockets() + RunDueTimers(); }

size_t UdpNetwork::PollFor(VTime duration) {
  size_t events = 0;
  VTime deadline = NowNanos() + duration;
  std::vector<pollfd> fds;
  while (NowNanos() < deadline) {
    events += Poll();
    // Sleep in poll(2) until traffic arrives or ~1ms passes (timer tick).
    fds.clear();
    for (const auto& [ep, state] : endpoints_) {
      fds.push_back(pollfd{state.fd, POLLIN, 0});
    }
    if (fds.empty()) {
      break;
    }
    ::poll(fds.data(), fds.size(), 1);
  }
  events += Poll();
  return events;
}

}  // namespace ensemble

#else  // Unsupported platform: stub that reports !ok().

namespace ensemble {
UdpNetwork::~UdpNetwork() = default;
void UdpNetwork::Attach(EndpointId, DeliverFn) { ok_ = false; }
void UdpNetwork::Detach(EndpointId) {}
void UdpNetwork::Send(EndpointId, EndpointId, const Iovec&) {}
void UdpNetwork::Broadcast(EndpointId, const Iovec&) {}
void UdpNetwork::ScheduleTimer(VTime, TimerFn) {}
size_t UdpNetwork::Poll() { return 0; }
size_t UdpNetwork::PollFor(VTime) { return 0; }
uint16_t UdpNetwork::PortOf(EndpointId) const { return 0; }
}  // namespace ensemble

#endif
