// UringEngine — raw-syscall io_uring submission/completion datapath for
// UdpNetwork (no liburing dependency; the container bakes in only the kernel
// header).  One engine per UdpNetwork instance, i.e. one SQ/CQ ring pair per
// shard's socket group:
//
//   - Receives are MULTISHOT RECVMSG: one armed SQE per socket keeps posting
//     a CQE per datagram with no per-burst syscall.  Payloads land directly
//     in kernel-selected buffers registered from the refcounted receive pool
//     (IORING_OP_PROVIDE_BUFFERS, buffer group 0): each provided slot holds
//     one pool chunk, the delivered Bytes slices alias the chunk, and
//     consuming a CQE re-provides the slot with a fresh chunk — the consumed
//     one recycles through the pool when the last slice reference drops,
//     exactly the ownership rule the recvmmsg path established.  (The newer
//     IORING_REGISTER_PBUF_RING mapping is not used: this host's kernel
//     accepts the registration but never serves buffers from it, and the
//     re-provision SQEs ride existing submissions, so the classic group
//     costs no extra syscalls.)
//
//   - Sends are staged and submitted in batches: one io_uring_enter carries
//     a whole flush.  Runs of same-destination, same-size datagrams collapse
//     further via UDP GSO (UDP_SEGMENT cmsg): one SQE, one kernel traversal,
//     N wire datagrams.  Single datagrams go out as zero-copy scatter-gather
//     SENDMSG SQEs whose iovecs alias the refcounted parts (held in the send
//     slot until the CQE retires them).
//
//   - UDP GRO (socket option, set per added socket) coalesces bursts of
//     equal-size datagrams into one CQE whose payload the engine re-splits at
//     the cmsg-reported segment size — zero-copy slices, one per original
//     datagram.  This composes with kWirePacked packing: a GRO segment is a
//     packed datagram, which the transport unpacker then splits into
//     sub-messages, so one kernel traversal can carry pack_window × gro_segs
//     messages.
//
//   - The owner's idle sleep is a single io_uring_enter(GETEVENTS) with an
//     EXT_ARG timeout; the cross-thread Waker eventfd joins the ring as a
//     (re-armed oneshot) POLL_ADD, so a foreign Wakeup() breaks the sleep
//     exactly as it breaks poll(2) on the mmsg path.
//
// Threading: engine methods are owner-thread only (the Waker eventfd is the
// cross-thread signal, and writing an eventfd is thread-safe by nature).
//
// Unavailability is graceful everywhere: Available() probes io_uring_setup
// once (seccomp or old kernels fail here), Init() failure leaves the engine
// !ok(), and UdpNetwork falls back to the mmsg backend.  The
// ENSEMBLE_URING=OFF build compiles all of this out to the same stubs.

#ifndef ENSEMBLE_SRC_NET_UDP_URING_H_
#define ENSEMBLE_SRC_NET_UDP_URING_H_

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "src/net/network.h"
#include "src/util/bytes.h"
#include "src/util/pool.h"

namespace ensemble {

class UringEngine {
 public:
  struct Options {
    unsigned sq_entries = 256;    // Submission ring depth (also send slots).
    unsigned recv_buffers = 32;   // Registered buffer-ring slots (pool chunks).
    bool gso = true;              // Coalesce same-size send runs via UDP_SEGMENT.
    bool gro = true;              // Ask the kernel to coalesce receives (UDP_GRO).
  };

  // One logical received datagram (post-GRO-split).  `payload` aliases a
  // registered pool chunk; holding it pins the chunk until released.
  using RecvFn =
      std::function<void(uint64_t cookie, uint16_t src_port, Bytes payload)>;

  // `pool` provides the registered receive chunks (chunk_size must hold a max
  // datagram); `stats` receives the uring_* / gso_* / gro_* counters plus
  // sent/delivered/bytes accounting for traffic that flows through the rings.
  UringEngine(BufferPool* pool, NetworkStats* stats, Options opts);
  ~UringEngine();

  UringEngine(const UringEngine&) = delete;
  UringEngine& operator=(const UringEngine&) = delete;

  // Probes io_uring_setup(2) once per process (cached).  False on kernels
  // without io_uring, under seccomp filters that block it, or in the
  // ENSEMBLE_URING=OFF build.
  static bool Available();
  // Test hook: force Available() to return `forced` (0/1); -1 restores the
  // real probe.  Lets the fallback path run on hosts where uring works.
  static void ForceAvailabilityForTest(int forced);

  // Sets up the rings and the registered buffer ring.  False (and !ok) on any
  // failure; the engine is then inert and the caller should fall back.
  bool Init(RecvFn deliver);
  bool ok() const { return ring_fd_ >= 0; }
  // True once a multishot recv terminated with an unexpected error (e.g.
  // -EINVAL from a kernel whose io_uring lacks IORING_RECV_MULTISHOT but
  // passed the setup-time probes).  The engine stops re-arming receives; the
  // owner should quiesce and fall back to the mmsg backend.
  bool recv_broken() const { return recv_broken_; }

  // Arms a multishot receive for `fd`; `cookie` tags its deliveries (the
  // attach-time endpoint id).  Sets UDP_GRO on the socket when enabled.
  bool AddSocket(int fd, uint64_t cookie);
  // Quiesces `fd`: submits staged sends, waits for their completions, cancels
  // the multishot receive and waits for it to terminate.  Datagrams the ring
  // already pulled out of the socket are queued for DeliverPending() — call
  // it before detaching the endpoint so nothing in flight is dropped.
  void RemoveSocket(int fd);
  // Registers the Waker eventfd as a (re-armed oneshot) poll so cross-thread
  // wakeups break WaitCompletions().
  void SetWakerFd(int fd);

  // Stages one outgoing datagram (refcounted parts; no copy unless the entry
  // later joins a GSO run).  Does not submit.
  void StageSend(int fd, uint16_t dst_port, const Iovec& gather);
  size_t staged_sends() const;  // Out of line: Staged is incomplete here.
  // Submits everything staged in one io_uring_enter (GSO-coalescing runs) and
  // opportunistically retires available completions WITHOUT delivering:
  // receives complete into the pending queue.  Safe mid-Send.
  void SubmitSends();
  // SubmitSends + wait until every in-flight send CQE has retired: on return
  // the wire is caught up (receives again only queue).  The Flush() boundary.
  void DrainSends();
  size_t inflight_sends() const { return inflight_sends_; }

  // Delivers queued receives, then reaps the completion ring, delivering new
  // receives as they are consumed.  Returns logical datagrams delivered.
  size_t ReapAndDeliver();
  // Delivers only the already-queued receives (Release/Detach path).
  size_t DeliverPending();

  // Blocks until at least one CQE is available or `timeout_ns` passes
  // (io_uring_enter GETEVENTS + EXT_ARG timeout).  Returns immediately when
  // completions or queued receives are already pending.  Consumes nothing.
  void WaitCompletions(uint64_t timeout_ns);

 private:
  struct SendSlot;
  struct SocketRec;
  struct Staged;
  struct PendingRecv;

  bool SetupRing();
  void TeardownRing();
  // Queues `bid` for (re-)provisioning with a fresh pool chunk.
  void QueueProvide(uint16_t bid);
  // Emits one PROVIDE_BUFFERS SQE per queued bid (does not submit).
  void FlushProvides();

  void* GetSqe();                      // Next free SQE (flushes if full).
  int Enter(unsigned to_submit, unsigned min_complete, unsigned flags,
            const void* arg, size_t argsz);
  int SubmitQueued(unsigned min_complete = 0, bool getevents = false);
  size_t ReapCqes();                   // CQ → pending queue / slot retirement.
  size_t ProcessCompletions();         // ReapCqes + re-arm stopped recvs.
  void HandleRecvCqe(size_t sock_index, int res, uint32_t flags);
  void RearmPending();                 // Re-arm multishot recvs that stopped.
  void ArmRecv(size_t sock_index);
  void ArmWakerPoll();

  void PushSendSqe(uint32_t slot_index);
  uint32_t AcquireSlot();              // Blocks on completions if exhausted.
  void BuildPlainSlot(SendSlot& slot, const Staged& s);
  void BuildGsoSlot(SendSlot& slot, const Staged* run, size_t count);

  BufferPool* pool_;
  NetworkStats* stats_;
  Options opts_;
  RecvFn deliver_;

  int ring_fd_ = -1;
  // Ring geometry + mapped pointers (raw mmap; see udp_uring.cc).
  void* sq_ring_ = nullptr;
  size_t sq_ring_sz_ = 0;
  void* cq_ring_ = nullptr;  // Equal to sq_ring_ with FEAT_SINGLE_MMAP.
  size_t cq_ring_sz_ = 0;
  void* sqes_ = nullptr;
  size_t sqes_sz_ = 0;
  unsigned* sq_head_ = nullptr;
  unsigned* sq_tail_ = nullptr;
  unsigned sq_mask_ = 0;
  unsigned* sq_array_ = nullptr;
  unsigned* sq_flags_ = nullptr;
  unsigned* cq_head_ = nullptr;
  unsigned* cq_tail_ = nullptr;
  unsigned cq_mask_ = 0;
  void* cqes_ = nullptr;
  unsigned sq_entries_ = 0;
  unsigned cq_entries_ = 0;
  unsigned sqes_queued_ = 0;   // Prepared but not yet submitted.

  // Provided-buffer group 0: bid → the pool chunk the kernel may write next.
  std::vector<Bytes> ring_bufs_;
  std::vector<uint16_t> need_provide_;  // Consumed bids awaiting re-provision.

  std::vector<SocketRec> sockets_;     // Index is the recv user_data payload.
  std::vector<size_t> free_sock_slots_;  // Retired indices awaiting reuse.
  std::map<int, size_t> sock_by_fd_;
  int waker_fd_ = -1;
  bool waker_armed_ = false;
  bool recv_broken_ = false;           // See recv_broken().

  std::vector<SendSlot> slots_;
  std::vector<uint32_t> free_slots_;
  size_t inflight_sends_ = 0;

  std::vector<Staged> staged_;
  // FIFO of received-but-undelivered datagrams (vector + head index: vector
  // tolerates the incomplete element type, deque does not).
  std::vector<PendingRecv> pending_;
  size_t pending_head_ = 0;
  bool delivering_ = false;            // Re-entrancy guard for ReapAndDeliver.
  bool deliver_pass_ = false;          // Re-entrancy guard for DeliverPending:
                                       // a nested call (deliver callback →
                                       // quiesce/drain) would corrupt the
                                       // outer pass's cursor and husk prefix.
};

}  // namespace ensemble

#endif  // ENSEMBLE_SRC_NET_UDP_URING_H_
