#include "src/net/network.h"

#include <algorithm>

namespace ensemble {

namespace {
std::pair<uint64_t, uint64_t> LinkKey(EndpointId a, EndpointId b) {
  return {std::min(a.id, b.id), std::max(a.id, b.id)};
}
}  // namespace

bool SimNetwork::LinkUp(EndpointId a, EndpointId b) const {
  if (down_nodes_.count(a.id) > 0 || down_nodes_.count(b.id) > 0) {
    return false;
  }
  return cut_links_.count(LinkKey(a, b)) == 0;
}

void SimNetwork::SetLinkUp(EndpointId a, EndpointId b, bool up) {
  if (up) {
    cut_links_.erase(LinkKey(a, b));
  } else {
    cut_links_.insert(LinkKey(a, b));
  }
}

void SimNetwork::SetNodeUp(EndpointId a, bool up) {
  if (up) {
    down_nodes_.erase(a.id);
  } else {
    down_nodes_.insert(a.id);
  }
}

void SimNetwork::DeliverOne(const Packet& packet) {
  stats_.sent++;
  stats_.bytes_sent += packet.datagram.size();
  if (!LinkUp(packet.src, packet.dst)) {
    stats_.dropped++;
    return;
  }
  if (rng_.Chance(config_.drop_prob)) {
    stats_.dropped++;
    return;
  }
  int copies = rng_.Chance(config_.dup_prob) ? 2 : 1;
  stats_.duplicated += copies - 1;
  for (int i = 0; i < copies; i++) {
    VTime delay = config_.latency;
    if (config_.jitter > 0) {
      delay += rng_.Below(config_.jitter + 1);
    }
    if (rng_.Chance(config_.reorder_prob)) {
      delay += config_.reorder_delay;
      stats_.delayed_extra++;
    }
    Packet copy = packet;
    if (tap_) {
      tap_(queue_->now() + delay, copy);
    }
    queue_->After(delay, [this, copy]() {
      auto it = endpoints_.find(copy.dst);
      if (it == endpoints_.end()) {
        return;
      }
      // Re-check the link at delivery time (a partition can start while a
      // packet is in flight; in-flight packets are lost, like real cables).
      if (!LinkUp(copy.src, copy.dst)) {
        stats_.dropped++;
        return;
      }
      stats_.delivered++;
      it->second(copy);
    });
  }
}

void SimNetwork::Send(EndpointId src, EndpointId dst, const Iovec& gather) {
  CountIfPacked(&stats_, gather);
  Packet p;
  p.src = src;
  p.dst = dst;
  p.datagram = gather.Flatten();
  DeliverOne(p);
}

void SimNetwork::Broadcast(EndpointId src, const Iovec& gather) {
  CountIfPacked(&stats_, gather);
  Bytes datagram = gather.Flatten();
  for (const auto& [ep, fn] : endpoints_) {
    if (ep == src) {
      continue;
    }
    Packet p;
    p.src = src;
    p.dst = ep;
    p.broadcast = true;
    p.datagram = datagram;
    DeliverOne(p);
  }
}

}  // namespace ensemble
