#include "src/net/udp_uring.h"

#if defined(__linux__) && !defined(ENSEMBLE_URING_OFF)

#include <linux/io_uring.h>
#include <netinet/in.h>
#include <netinet/udp.h>
#include <poll.h>
#include <sys/mman.h>
#include <sys/socket.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstring>

#include "src/util/logging.h"

#ifndef UDP_SEGMENT
#define UDP_SEGMENT 103
#endif
#ifndef UDP_GRO
#define UDP_GRO 104
#endif
#ifndef SOL_UDP
#define SOL_UDP 17
#endif
#ifndef CMSG_ALIGN
#define CMSG_ALIGN(len) (((len) + sizeof(size_t) - 1) & ~(sizeof(size_t) - 1))
#endif

namespace ensemble {

namespace {

// Raw syscall wrappers (no liburing in the image; the kernel header is all we
// need).
int SysUringSetup(unsigned entries, io_uring_params* p) {
  return static_cast<int>(syscall(__NR_io_uring_setup, entries, p));
}
int SysUringEnter(int fd, unsigned to_submit, unsigned min_complete,
                  unsigned flags, const void* arg, size_t argsz) {
  return static_cast<int>(
      syscall(__NR_io_uring_enter, fd, to_submit, min_complete, flags, arg, argsz));
}
int SysUringRegister(int fd, unsigned opcode, const void* arg, unsigned nr_args) {
  return static_cast<int>(syscall(__NR_io_uring_register, fd, opcode, arg, nr_args));
}

// user_data encoding: kind tag in the top byte, payload (socket index / send
// slot index) below.
constexpr uint64_t kKindShift = 56;
enum UdKind : uint64_t {
  kUdRecv = 1,     // payload = sockets_ index
  kUdSend = 2,     // payload = slots_ index
  kUdWaker = 3,    // oneshot poll on the waker eventfd
  kUdCancel = 4,   // ASYNC_CANCEL of a recv (payload = sockets_ index)
  kUdProvide = 5,  // PROVIDE_BUFFERS re-provision (payload = bid)
};
constexpr uint64_t MakeUd(UdKind kind, uint64_t payload) {
  return (static_cast<uint64_t>(kind) << kKindShift) | payload;
}
constexpr UdKind UdKindOf(uint64_t ud) {
  return static_cast<UdKind>(ud >> kKindShift);
}
constexpr uint64_t UdPayload(uint64_t ud) {
  return ud & ((uint64_t{1} << kKindShift) - 1);
}

// GSO run limits: the coalesced payload must fit one super-datagram (the IP
// length field bounds it) and the kernel caps segments at UDP_MAX_SEGMENTS
// (64); stay comfortably inside both.
constexpr size_t kMaxGsoSegs = 60;
constexpr size_t kMaxGsoBytes = 60000;

// Per-request control space: one UDP_SEGMENT (send) or UDP_GRO (recv) cmsg.
constexpr size_t kCmsgSpace = 64;

std::atomic<int> g_forced_available{-1};

sockaddr_in UringLoopbackAddr(uint16_t port) {
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  return addr;
}

}  // namespace

// ---- Nested types ----------------------------------------------------------

// One staged outgoing datagram (refcounted parts; flattened only if it joins
// a GSO run).
struct UringEngine::Staged {
  int fd;
  uint16_t port;
  uint32_t bytes;
  Iovec gather;
};

// In-flight send state: everything the kernel may still read (msghdr, iovecs,
// address, cmsg, GSO copy buffer) plus the refs keeping zero-copy parts
// alive.  Retired by the send CQE.
struct UringEngine::SendSlot {
  int fd = -1;
  msghdr hdr;
  sockaddr_in addr;
  alignas(8) char cmsg[kCmsgSpace];
  std::vector<iovec> iov;       // Capacity persists across reuse.
  Iovec refs;                   // Zero-copy path: pins the gathered parts.
  std::vector<uint8_t> gso_buf; // GSO path: flattened coalesced payload.
  uint32_t datagrams = 0;       // Wire datagrams this slot carries.
  uint32_t bytes = 0;           // Payload bytes across them.
  bool in_use = false;
};

struct UringEngine::SocketRec {
  int fd = -1;
  uint64_t cookie = 0;
  // The msghdr the multishot recv was armed with.  The kernel copies it at
  // submission, but the configured name/control lengths define the in-buffer
  // layout of every CQE it produces, so they are kept here for parsing.
  msghdr hdr;
  uint32_t hdr_name_len = 0;
  uint32_t hdr_ctrl_len = 0;
  bool armed = false;      // Multishot recv SQE outstanding.
  bool want_rearm = false; // Terminated (ENOBUFS etc.); re-arm next pass.
  bool removed = false;    // Slot retired; index stays (user_data stability).
};

struct UringEngine::PendingRecv {
  uint64_t cookie;
  uint16_t src_port;
  Bytes payload;
};

// ---- Availability ----------------------------------------------------------

bool UringEngine::Available() {
  int forced = g_forced_available.load(std::memory_order_relaxed);
  if (forced >= 0) {
    return forced != 0;
  }
  static const bool kProbe = [] {
    io_uring_params p;
    std::memset(&p, 0, sizeof(p));
    int fd = SysUringSetup(4, &p);
    if (fd < 0) {
      return false;
    }
    // The datapath needs EXT_ARG timed waits (5.11+) plus multishot RECVMSG
    // (6.0+).  FEAT_EXT_ARG alone passes on 5.11-5.19 kernels where every
    // multishot recv SQE would -EINVAL, so also ask the opcode probe for
    // IORING_OP_SEND_ZC — it landed in the same release as
    // IORING_RECV_MULTISHOT and, unlike a request flag, is probeable.
    bool ok = (p.features & IORING_FEAT_EXT_ARG) != 0;
    if (ok) {
      constexpr unsigned kProbeOps = IORING_OP_SEND_ZC + 1;
      alignas(io_uring_probe) uint8_t
          buf[sizeof(io_uring_probe) + kProbeOps * sizeof(io_uring_probe_op)];
      std::memset(buf, 0, sizeof(buf));
      auto* probe = reinterpret_cast<io_uring_probe*>(buf);
      ok = SysUringRegister(fd, IORING_REGISTER_PROBE, probe, kProbeOps) >= 0 &&
           probe->last_op >= IORING_OP_SEND_ZC &&
           (probe->ops[IORING_OP_SEND_ZC].flags & IO_URING_OP_SUPPORTED) != 0;
    }
    close(fd);
    return ok;
  }();
  return kProbe;
}

void UringEngine::ForceAvailabilityForTest(int forced) {
  g_forced_available.store(forced, std::memory_order_relaxed);
}

// ---- Setup / teardown ------------------------------------------------------

UringEngine::UringEngine(BufferPool* pool, NetworkStats* stats, Options opts)
    : pool_(pool), stats_(stats), opts_(opts) {}

UringEngine::~UringEngine() { TeardownRing(); }

bool UringEngine::Init(RecvFn deliver) {
  deliver_ = std::move(deliver);
  if (!Available() || !SetupRing()) {
    TeardownRing();
    return false;
  }
  slots_.resize(opts_.sq_entries);
  free_slots_.reserve(opts_.sq_entries);
  for (uint32_t i = 0; i < opts_.sq_entries; i++) {
    free_slots_.push_back(opts_.sq_entries - 1 - i);  // Pop from the back → 0 first.
  }
  // Seed provided-buffer group 0 with one pool chunk per slot.
  ring_bufs_.resize(std::max(1u, opts_.recv_buffers));
  need_provide_.reserve(ring_bufs_.size());
  for (uint16_t bid = 0; bid < ring_bufs_.size(); bid++) {
    QueueProvide(bid);
  }
  FlushProvides();
  SubmitQueued();
  return true;
}

bool UringEngine::SetupRing() {
  io_uring_params p;
  std::memset(&p, 0, sizeof(p));
  p.flags = IORING_SETUP_CQSIZE;
  p.cq_entries = std::max(opts_.sq_entries * 4, opts_.recv_buffers * 4);
  ring_fd_ = SysUringSetup(opts_.sq_entries, &p);
  if (ring_fd_ < 0) {
    return false;
  }
  if ((p.features & IORING_FEAT_SINGLE_MMAP) == 0 ||
      (p.features & IORING_FEAT_NODROP) == 0 ||
      (p.features & IORING_FEAT_EXT_ARG) == 0) {
    return false;  // Pre-5.11 kernel: let the mmsg path handle it.
  }
  sq_ring_sz_ = p.sq_off.array + p.sq_entries * sizeof(unsigned);
  cq_ring_sz_ = p.cq_off.cqes + p.cq_entries * sizeof(io_uring_cqe);
  size_t ring_sz = std::max(sq_ring_sz_, cq_ring_sz_);
  sq_ring_ = mmap(nullptr, ring_sz, PROT_READ | PROT_WRITE,
                  MAP_SHARED | MAP_POPULATE, ring_fd_, IORING_OFF_SQ_RING);
  if (sq_ring_ == MAP_FAILED) {
    sq_ring_ = nullptr;
    return false;
  }
  sq_ring_sz_ = ring_sz;
  cq_ring_ = sq_ring_;  // FEAT_SINGLE_MMAP.
  sqes_sz_ = p.sq_entries * sizeof(io_uring_sqe);
  sqes_ = mmap(nullptr, sqes_sz_, PROT_READ | PROT_WRITE,
               MAP_SHARED | MAP_POPULATE, ring_fd_, IORING_OFF_SQES);
  if (sqes_ == MAP_FAILED) {
    sqes_ = nullptr;
    return false;
  }
  auto* sq_base = static_cast<uint8_t*>(sq_ring_);
  sq_head_ = reinterpret_cast<unsigned*>(sq_base + p.sq_off.head);
  sq_tail_ = reinterpret_cast<unsigned*>(sq_base + p.sq_off.tail);
  sq_mask_ = *reinterpret_cast<unsigned*>(sq_base + p.sq_off.ring_mask);
  sq_array_ = reinterpret_cast<unsigned*>(sq_base + p.sq_off.array);
  sq_flags_ = reinterpret_cast<unsigned*>(sq_base + p.sq_off.flags);
  auto* cq_base = static_cast<uint8_t*>(cq_ring_);
  cq_head_ = reinterpret_cast<unsigned*>(cq_base + p.cq_off.head);
  cq_tail_ = reinterpret_cast<unsigned*>(cq_base + p.cq_off.tail);
  cq_mask_ = *reinterpret_cast<unsigned*>(cq_base + p.cq_off.ring_mask);
  cqes_ = cq_base + p.cq_off.cqes;
  sq_entries_ = p.sq_entries;
  cq_entries_ = p.cq_entries;
  // Identity-map the SQ index array once; GetSqe then only writes SQEs.
  for (unsigned i = 0; i < sq_entries_; i++) {
    sq_array_[i] = i;
  }
  return true;
}

void UringEngine::TeardownRing() {
  if (sqes_ != nullptr) {
    munmap(sqes_, sqes_sz_);
    sqes_ = nullptr;
  }
  if (sq_ring_ != nullptr) {
    munmap(sq_ring_, sq_ring_sz_);
    sq_ring_ = nullptr;
  }
  if (ring_fd_ >= 0) {
    close(ring_fd_);  // Tears down in-flight requests with the ring.
    ring_fd_ = -1;
  }
  ring_bufs_.clear();
}

// Marks `bid` as needing a fresh pool chunk.  Deferred to FlushProvides so a
// CQE handler never writes SQEs mid-reap.
void UringEngine::QueueProvide(uint16_t bid) { need_provide_.push_back(bid); }

// Hands each queued slot a fresh pool chunk via a PROVIDE_BUFFERS SQE (which
// rides the next submission — no extra syscall).  The previous chunk (if any)
// recycles through the pool once the last delivered slice drops its ref —
// the same ownership rule as the recvmmsg pooled path.
void UringEngine::FlushProvides() {
  for (uint16_t bid : need_provide_) {
    Bytes chunk = pool_->Allocate(pool_->chunk_size());
    auto* sqe = static_cast<io_uring_sqe*>(GetSqe());
    sqe->opcode = IORING_OP_PROVIDE_BUFFERS;
    sqe->fd = 1;  // One buffer per SQE: each bid carries a distinct chunk.
    sqe->addr = reinterpret_cast<uint64_t>(chunk.MutableData());
    sqe->len = static_cast<uint32_t>(pool_->chunk_size());
    sqe->buf_group = 0;
    sqe->off = bid;
    sqe->user_data = MakeUd(kUdProvide, bid);
    ring_bufs_[bid] = std::move(chunk);
    stats_->bufring_refills++;
  }
  need_provide_.clear();
}

// ---- SQE plumbing ----------------------------------------------------------

int UringEngine::Enter(unsigned to_submit, unsigned min_complete, unsigned flags,
                       const void* arg, size_t argsz) {
  stats_->uring_enters++;
  int ret;
  do {
    ret = SysUringEnter(ring_fd_, to_submit, min_complete, flags, arg, argsz);
  } while (ret < 0 && errno == EINTR);
  return ret;
}

void* UringEngine::GetSqe() {
  unsigned head = __atomic_load_n(sq_head_, __ATOMIC_ACQUIRE);
  unsigned tail = *sq_tail_;
  if (tail - head >= sq_entries_) {
    // SQ full: push what we have and retire completions to make room.
    SubmitQueued();
    head = __atomic_load_n(sq_head_, __ATOMIC_ACQUIRE);
    while (tail - head >= sq_entries_) {
      Enter(0, 1, IORING_ENTER_GETEVENTS, nullptr, 0);
      ProcessCompletions();
      head = __atomic_load_n(sq_head_, __ATOMIC_ACQUIRE);
    }
  }
  auto* sqe = static_cast<io_uring_sqe*>(sqes_) + (tail & sq_mask_);
  std::memset(sqe, 0, sizeof(*sqe));
  __atomic_store_n(sq_tail_, tail + 1, __ATOMIC_RELEASE);
  sqes_queued_++;
  return sqe;
}

int UringEngine::SubmitQueued(unsigned min_complete, bool getevents) {
  unsigned n = sqes_queued_;
  if (n == 0 && !getevents) {
    return 0;
  }
  sqes_queued_ = 0;
  unsigned flags = getevents ? IORING_ENTER_GETEVENTS : 0;
  int ret = Enter(n, min_complete, flags, nullptr, 0);
  // EBUSY: the CQ overflow list is non-empty (FEAT_NODROP) and nothing was
  // consumed; reap to make room and retry.  ReapCqes (not ProcessCompletions)
  // so no re-arm SQEs are written mid-retry.
  for (int attempt = 0; ret < 0 && errno == EBUSY && attempt < 8; attempt++) {
    ReapCqes();
    ret = Enter(n, min_complete, flags, nullptr, 0);
  }
  unsigned consumed = ret >= 0 ? std::min(static_cast<unsigned>(ret), n) : 0;
  stats_->uring_sqes += consumed;
  if (consumed > 1) {
    stats_->uring_sqe_batches++;
  }
  // Anything the kernel did not consume stays in the ring between its sq head
  // and our tail; restore the count so the next submit covers it — otherwise
  // those SQEs are stranded and DrainSends waits on CQEs that never arrive.
  sqes_queued_ += n - consumed;
  if (ret < 0) {
    ENS_LOG(kWarn) << "io_uring_enter failed: " << std::strerror(errno);
  }
  return ret;
}

// ---- Receive arming --------------------------------------------------------

bool UringEngine::AddSocket(int fd, uint64_t cookie) {
  if (!ok()) {
    return false;
  }
  if (opts_.gro) {
    int one = 1;
    setsockopt(fd, SOL_UDP, UDP_GRO, &one, sizeof(one));  // Best-effort.
  }
  size_t index;
  auto it = sock_by_fd_.find(fd);
  if (it != sock_by_fd_.end()) {
    // Double-add of a live fd: refresh the cookie but never arm a second
    // multishot recv on the same user_data.
    index = it->second;
    SocketRec& live = sockets_[index];
    live.cookie = cookie;
    live.removed = false;
    if (live.armed) {
      return true;
    }
  } else if (!free_sock_slots_.empty()) {
    // Reuse a retired slot (RemoveSocket waited for its recv to terminate, so
    // no in-flight CQE still carries this index).
    index = free_sock_slots_.back();
    free_sock_slots_.pop_back();
    sock_by_fd_[fd] = index;
  } else {
    index = sockets_.size();
    sockets_.emplace_back();
    sock_by_fd_[fd] = index;
  }
  SocketRec& rec = sockets_[index];
  rec.fd = fd;
  rec.cookie = cookie;
  rec.removed = false;
  rec.want_rearm = false;
  ArmRecv(index);
  SubmitQueued();
  return true;
}

void UringEngine::ArmRecv(size_t sock_index) {
  SocketRec& rec = sockets_[sock_index];
  auto* sqe = static_cast<io_uring_sqe*>(GetSqe());
  // Multishot RECVMSG with buffer selection: the kernel picks a registered
  // buffer per datagram and lays out io_uring_recvmsg_out + name + control +
  // payload inside it.  One SQE keeps producing CQEs until cancelled or the
  // buffer ring runs dry.
  rec.hdr_name_len = sizeof(sockaddr_in);
  rec.hdr_ctrl_len = opts_.gro ? kCmsgSpace : 0;
  std::memset(&rec.hdr, 0, sizeof(rec.hdr));
  rec.hdr.msg_namelen = rec.hdr_name_len;
  rec.hdr.msg_controllen = rec.hdr_ctrl_len;
  sqe->opcode = IORING_OP_RECVMSG;
  sqe->fd = rec.fd;
  sqe->addr = reinterpret_cast<uint64_t>(&rec.hdr);
  sqe->ioprio = IORING_RECV_MULTISHOT;
  sqe->flags = IOSQE_BUFFER_SELECT;
  sqe->buf_group = 0;
  sqe->user_data = MakeUd(kUdRecv, sock_index);
  rec.armed = true;
  rec.want_rearm = false;
}

void UringEngine::SetWakerFd(int fd) {
  waker_fd_ = fd;
  if (ok() && fd >= 0) {
    ArmWakerPoll();
    SubmitQueued();
  }
}

void UringEngine::ArmWakerPoll() {
  // Oneshot on purpose: the eventfd is level-triggered and only drained at
  // the IdleWait boundary, so a multishot poll would keep the kernel posting
  // CQEs as fast as we reap them.  RearmPending re-arms after each firing.
  auto* sqe = static_cast<io_uring_sqe*>(GetSqe());
  sqe->opcode = IORING_OP_POLL_ADD;
  sqe->fd = waker_fd_;
  sqe->poll32_events = POLLIN;
  sqe->user_data = MakeUd(kUdWaker, 0);
  waker_armed_ = true;
}

void UringEngine::RearmPending() {
  bool any = !need_provide_.empty();
  // Provides go first so a re-armed recv in the same submission can already
  // select the refilled slots (PROVIDE_BUFFERS completes synchronously).
  FlushProvides();
  for (size_t i = 0; i < sockets_.size(); i++) {
    if (sockets_[i].want_rearm && !sockets_[i].removed) {
      ArmRecv(i);
      any = true;
    }
  }
  if (waker_fd_ >= 0 && !waker_armed_) {
    ArmWakerPoll();
    any = true;
  }
  if (any) {
    SubmitQueued();
  }
}

// ---- Send path -------------------------------------------------------------

size_t UringEngine::staged_sends() const { return staged_.size(); }

void UringEngine::StageSend(int fd, uint16_t dst_port, const Iovec& gather) {
  Staged s;
  s.fd = fd;
  s.port = dst_port;
  s.bytes = static_cast<uint32_t>(gather.size());
  s.gather = gather;
  staged_.push_back(std::move(s));
  stats_->batched_datagrams++;
}

uint32_t UringEngine::AcquireSlot() {
  while (free_slots_.empty()) {
    // All send slots in flight: submit and wait for completions (receives
    // arriving meanwhile just join the pending queue).
    SubmitQueued(1, /*getevents=*/true);
    ProcessCompletions();
  }
  uint32_t index = free_slots_.back();
  free_slots_.pop_back();
  return index;
}

void UringEngine::BuildPlainSlot(SendSlot& slot, const Staged& s) {
  // Zero-copy scatter-gather: iovecs alias the refcounted parts, which the
  // slot pins until the CQE retires it.
  slot.fd = s.fd;
  slot.refs = s.gather;
  slot.iov.clear();
  for (size_t p = 0; p < s.gather.part_count(); p++) {
    slot.iov.push_back(iovec{const_cast<uint8_t*>(s.gather.part(p).data()),
                             s.gather.part(p).size()});
  }
  slot.addr = UringLoopbackAddr(s.port);
  std::memset(&slot.hdr, 0, sizeof(slot.hdr));
  slot.hdr.msg_name = &slot.addr;
  slot.hdr.msg_namelen = sizeof(slot.addr);
  slot.hdr.msg_iov = slot.iov.data();
  slot.hdr.msg_iovlen = slot.iov.size();
  slot.datagrams = 1;
  slot.bytes = s.bytes;
}

void UringEngine::BuildGsoSlot(SendSlot& slot, const Staged* run, size_t count) {
  // Coalesce the run into one contiguous buffer the kernel re-segments at
  // seg_size (UDP_SEGMENT cmsg): one SQE, one traversal, `count` datagrams.
  uint16_t seg_size = static_cast<uint16_t>(run[0].bytes);
  slot.fd = run[0].fd;
  slot.gso_buf.clear();
  uint32_t total = 0;
  for (size_t i = 0; i < count; i++) {
    for (size_t p = 0; p < run[i].gather.part_count(); p++) {
      const Bytes& part = run[i].gather.part(p);
      slot.gso_buf.insert(slot.gso_buf.end(), part.data(), part.data() + part.size());
    }
    total += run[i].bytes;
  }
  slot.refs = Iovec();
  slot.iov.clear();
  slot.iov.push_back(iovec{slot.gso_buf.data(), slot.gso_buf.size()});
  slot.addr = UringLoopbackAddr(run[0].port);
  std::memset(&slot.hdr, 0, sizeof(slot.hdr));
  slot.hdr.msg_name = &slot.addr;
  slot.hdr.msg_namelen = sizeof(slot.addr);
  slot.hdr.msg_iov = slot.iov.data();
  slot.hdr.msg_iovlen = 1;
  slot.hdr.msg_control = slot.cmsg;
  slot.hdr.msg_controllen = CMSG_SPACE(sizeof(uint16_t));
  std::memset(slot.cmsg, 0, sizeof(slot.cmsg));
  cmsghdr* cm = CMSG_FIRSTHDR(&slot.hdr);
  cm->cmsg_level = SOL_UDP;
  cm->cmsg_type = UDP_SEGMENT;
  cm->cmsg_len = CMSG_LEN(sizeof(uint16_t));
  std::memcpy(CMSG_DATA(cm), &seg_size, sizeof(seg_size));
  slot.datagrams = static_cast<uint32_t>(count);
  slot.bytes = total;
  stats_->gso_sends++;
  stats_->gso_segments += count;
}

void UringEngine::PushSendSqe(uint32_t slot_index) {
  SendSlot& slot = slots_[slot_index];
  auto* sqe = static_cast<io_uring_sqe*>(GetSqe());
  sqe->opcode = IORING_OP_SENDMSG;
  sqe->fd = slot.fd;
  sqe->addr = reinterpret_cast<uint64_t>(&slot.hdr);
  sqe->user_data = MakeUd(kUdSend, slot_index);
  slot.in_use = true;
  inflight_sends_++;
}

void UringEngine::SubmitSends() {
  if (staged_.empty()) {
    SubmitQueued();  // Still push any re-arm SQEs.
    return;
  }
  size_t n = staged_.size();
  stats_->max_send_batch = std::max<uint64_t>(stats_->max_send_batch, n);
  if (n > 1) {
    stats_->send_batches++;
  }
  size_t i = 0;
  while (i < n) {
    // Find the longest GSO-able run: same fd + port, equal sizes (the run may
    // close with one smaller datagram — the kernel allows a short tail).
    size_t run = 1;
    if (opts_.gso && staged_[i].bytes > 0) {
      uint32_t seg = staged_[i].bytes;
      size_t total = seg;
      while (i + run < n && run < kMaxGsoSegs &&
             staged_[i + run].fd == staged_[i].fd &&
             staged_[i + run].port == staged_[i].port &&
             staged_[i + run].bytes > 0 && staged_[i + run].bytes <= seg &&
             total + staged_[i + run].bytes <= kMaxGsoBytes) {
        bool tail = staged_[i + run].bytes < seg;
        total += staged_[i + run].bytes;
        run++;
        if (tail) {
          break;  // A short datagram must close the super-packet.
        }
      }
    }
    uint32_t slot_index = AcquireSlot();
    if (run > 1) {
      BuildGsoSlot(slots_[slot_index], &staged_[i], run);
    } else {
      BuildPlainSlot(slots_[slot_index], staged_[i]);
    }
    PushSendSqe(slot_index);
    i += run;
  }
  staged_.clear();
  SubmitQueued();
  ProcessCompletions();  // Retire what already finished (loopback: most of it).
}

void UringEngine::DrainSends() {
  SubmitSends();
  while (inflight_sends_ > 0) {
    Enter(0, 1, IORING_ENTER_GETEVENTS, nullptr, 0);
    ProcessCompletions();
  }
}

// ---- Completion processing -------------------------------------------------

void UringEngine::HandleRecvCqe(size_t sock_index, int res, uint32_t flags) {
  SocketRec& rec = sockets_[sock_index];
  if ((flags & IORING_CQE_F_MORE) == 0) {
    rec.armed = false;
    rec.want_rearm = !rec.removed;
  }
  if (res < 0) {
    // -ENOBUFS: buffer ring momentarily empty — re-arm re-reads the socket.
    // -ECANCELED: RemoveSocket's cancel landed.
    if (res == -ECANCELED) {
      rec.want_rearm = false;
    } else if (res != -ENOBUFS) {
      // Any other error is terminal for this arm (e.g. -EINVAL from a kernel
      // without IORING_RECV_MULTISHOT that slipped past the setup probes).
      // Re-arming would spin forever on the same error, so stop and flag the
      // engine; the owner falls back to the mmsg backend.
      rec.want_rearm = false;
      if (!recv_broken_) {
        recv_broken_ = true;
        ENS_LOG(kWarn) << "io_uring multishot recv failed terminally: "
                       << std::strerror(-res);
      }
    }
    return;
  }
  if ((flags & IORING_CQE_F_BUFFER) == 0) {
    return;  // No buffer attached (zero-byte datagram edge): nothing to slice.
  }
  uint16_t bid = static_cast<uint16_t>(flags >> IORING_CQE_BUFFER_SHIFT);
  Bytes chunk = ring_bufs_[bid];
  // Parse the multishot RECVMSG layout: out-header, then the (configured)
  // name and control areas, then the payload.
  const auto* out = reinterpret_cast<const io_uring_recvmsg_out*>(chunk.data());
  size_t header = sizeof(io_uring_recvmsg_out) + rec.hdr_name_len + rec.hdr_ctrl_len;
  uint16_t src_port = 0;
  if (out->namelen >= sizeof(sockaddr_in)) {
    sockaddr_in from;
    std::memcpy(&from, chunk.data() + sizeof(io_uring_recvmsg_out), sizeof(from));
    src_port = ntohs(from.sin_port);
  }
  // UDP_GRO cmsg: the payload is a coalesced train of seg_size datagrams.
  uint32_t seg_size = 0;
  if (out->controllen > 0) {
    const uint8_t* ctrl = chunk.data() + sizeof(io_uring_recvmsg_out) + rec.hdr_name_len;
    size_t remaining = out->controllen;
    while (remaining >= sizeof(cmsghdr)) {
      cmsghdr cm;
      std::memcpy(&cm, ctrl, sizeof(cm));
      if (cm.cmsg_len < sizeof(cmsghdr) || cm.cmsg_len > remaining) {
        break;
      }
      if (cm.cmsg_level == SOL_UDP && cm.cmsg_type == UDP_GRO) {
        int gro = 0;
        std::memcpy(&gro, ctrl + sizeof(cmsghdr), sizeof(gro));
        seg_size = gro > 0 ? static_cast<uint32_t>(gro) : 0;
      }
      size_t step = CMSG_ALIGN(cm.cmsg_len);
      if (step >= remaining) {
        break;
      }
      ctrl += step;
      remaining -= step;
    }
  }
  // The recvmsg_out header + name + control eat into the provided chunk, so a
  // near-max datagram (or a GRO train coalesced close to chunk_size) can be
  // truncated: the kernel sets MSG_TRUNC and payloadlen may exceed the bytes
  // actually written.  Clamp before slicing, and drop the truncated datagram
  // outright — a partial tail would corrupt packed-stream framing downstream.
  size_t payload_len = out->payloadlen;
  size_t avail = chunk.size() > header ? chunk.size() - header : 0;
  if ((out->flags & MSG_TRUNC) != 0 || payload_len > avail) {
    stats_->dropped++;
    QueueProvide(bid);
    return;
  }
  size_t offset = header;
  // Split a GRO train into logical datagrams; a plain receive is the
  // degenerate single-segment case.
  size_t produced = 0;
  while (payload_len > 0) {
    size_t seg = (seg_size > 0) ? std::min<size_t>(seg_size, payload_len) : payload_len;
    PendingRecv pr;
    pr.cookie = rec.cookie;
    pr.src_port = src_port;
    pr.payload = chunk.Slice(offset, seg);
    pending_.push_back(std::move(pr));
    offset += seg;
    payload_len -= seg;
    produced++;
  }
  if (produced > 1) {
    stats_->gro_recvs++;
    stats_->gro_segments += produced;
  }
  // The chunk is now (partly) owned by the delivered slices; hand the slot a
  // fresh chunk and let this one recycle when the last ref drops.
  QueueProvide(bid);
}

size_t UringEngine::ReapCqes() {
  size_t handled = 0;
  for (;;) {
    unsigned head = *cq_head_;
    unsigned tail = __atomic_load_n(cq_tail_, __ATOMIC_ACQUIRE);
    if (head == tail) {
      break;
    }
    size_t burst = tail - head;
    stats_->uring_cqes += burst;
    if (burst > 1) {
      stats_->uring_cqe_batches++;
    }
    while (head != tail) {
      const auto* cqe =
          static_cast<const io_uring_cqe*>(cqes_) + (head & cq_mask_);
      uint64_t ud = cqe->user_data;
      int res = cqe->res;
      uint32_t flags = cqe->flags;
      head++;
      __atomic_store_n(cq_head_, head, __ATOMIC_RELEASE);
      handled++;
      switch (UdKindOf(ud)) {
        case kUdRecv:
          HandleRecvCqe(UdPayload(ud), res, flags);
          break;
        case kUdSend: {
          uint32_t slot_index = static_cast<uint32_t>(UdPayload(ud));
          SendSlot& slot = slots_[slot_index];
          if (res >= 0) {
            stats_->sent += slot.datagrams;
            stats_->bytes_sent += slot.bytes;
          } else {
            stats_->dropped += slot.datagrams;
          }
          slot.refs = Iovec();  // Drop the pinned parts.
          slot.in_use = false;
          free_slots_.push_back(slot_index);
          inflight_sends_--;
          break;
        }
        case kUdWaker:
          waker_armed_ = false;  // Oneshot fired; RearmPending re-arms.
          break;
        case kUdCancel:
          break;  // The recv's own CQE carries the interesting result.
        case kUdProvide:
          if (res < 0) {
            ENS_LOG(kWarn) << "io_uring PROVIDE_BUFFERS bid=" << UdPayload(ud)
                           << " failed: " << strerror(-res);
          }
          break;
      }
    }
  }
  return handled;
}

size_t UringEngine::ProcessCompletions() {
  size_t handled = ReapCqes();
  RearmPending();
  return handled;
}

size_t UringEngine::DeliverPending() {
  if (deliver_pass_) {
    return 0;  // Nested via a deliver callback: the outer pass owns pending_.
  }
  deliver_pass_ = true;
  size_t delivered = 0;
  // Bound the pass to what was queued on entry: a deliver callback can
  // re-enter the engine (send → batch submit → reap) and queue MORE pending
  // receives behind us.  Chasing pending_.size() live never terminates under
  // a self-sustaining workload (every delivery produces a new arrival), which
  // both wedges the owning worker inside one Poll and grows the husk prefix
  // without bound.  Late arrivals wait for the caller's next round.
  size_t limit = pending_.size();
  while (pending_head_ < limit) {
    PendingRecv pr = std::move(pending_[pending_head_]);
    pending_head_++;
    stats_->delivered++;
    delivered++;
    if (deliver_) {
      deliver_(pr.cookie, pr.src_port, std::move(pr.payload));
    }
  }
  // Compact: drop the delivered husks, keep anything queued mid-pass.
  pending_.erase(pending_.begin(),
                 pending_.begin() + static_cast<ptrdiff_t>(pending_head_));
  pending_head_ = 0;
  deliver_pass_ = false;
  return delivered;
}

size_t UringEngine::ReapAndDeliver() {
  if (delivering_) {
    return 0;  // A deliver callback re-entered Poll: queue only.
  }
  delivering_ = true;
  size_t events = 0;
  // Alternate reap/deliver until quiescent: a delivery can trigger sends
  // whose completions land immediately on loopback.  Bounded — with shared
  // ingress every flow on the shard (including our own echoes) lands on the
  // one listener, so "quiescent" may never come; the caller re-polls anyway.
  for (int round = 0; round < 32; round++) {
    ProcessCompletions();
    size_t got = DeliverPending();
    events += got;
    if (got == 0) {
      break;
    }
  }
  delivering_ = false;
  return events;
}

void UringEngine::WaitCompletions(uint64_t timeout_ns) {
  if (pending_head_ < pending_.size()) {
    return;  // Undelivered work already queued.
  }
  unsigned head = *cq_head_;
  unsigned tail = __atomic_load_n(cq_tail_, __ATOMIC_ACQUIRE);
  if (head != tail) {
    return;  // Completions already available.
  }
  __kernel_timespec ts;
  ts.tv_sec = static_cast<int64_t>(timeout_ns / 1'000'000'000ull);
  ts.tv_nsec = static_cast<int64_t>(timeout_ns % 1'000'000'000ull);
  io_uring_getevents_arg arg;
  std::memset(&arg, 0, sizeof(arg));
  arg.ts = reinterpret_cast<uint64_t>(&ts);
  Enter(0, 1, IORING_ENTER_GETEVENTS | IORING_ENTER_EXT_ARG, &arg, sizeof(arg));
}

void UringEngine::RemoveSocket(int fd) {
  auto it = sock_by_fd_.find(fd);
  if (it == sock_by_fd_.end()) {
    return;
  }
  size_t index = it->second;
  SocketRec& rec = sockets_[index];
  rec.removed = true;
  rec.want_rearm = false;
  // Flush this fd's staged sends (we flush everything — simpler, and the
  // caller is at a flush boundary anyway), then cancel the multishot recv and
  // wait for it to terminate.  Data the ring already pulled out of the socket
  // queues in pending_; the caller delivers it before detaching.
  DrainSends();
  if (rec.armed) {
    auto* sqe = static_cast<io_uring_sqe*>(GetSqe());
    sqe->opcode = IORING_OP_ASYNC_CANCEL;
    sqe->fd = -1;
    sqe->addr = MakeUd(kUdRecv, index);
    sqe->user_data = MakeUd(kUdCancel, index);
    SubmitQueued();
    while (rec.armed && !rec.want_rearm) {
      Enter(0, 1, IORING_ENTER_GETEVENTS, nullptr, 0);
      ProcessCompletions();
      if (rec.removed && !rec.armed) {
        break;
      }
    }
  }
  rec.fd = -1;
  sock_by_fd_.erase(it);
  // The recv terminated (or was never armed), so nothing in flight references
  // this index; a later AddSocket may claim it.
  free_sock_slots_.push_back(index);
}

}  // namespace ensemble

#else  // !__linux__ || ENSEMBLE_URING_OFF: inert stubs; callers fall back.

namespace ensemble {

struct UringEngine::Staged {};
struct UringEngine::SendSlot {};
struct UringEngine::SocketRec {};
struct UringEngine::PendingRecv {};

UringEngine::UringEngine(BufferPool* pool, NetworkStats* stats, Options opts)
    : pool_(pool), stats_(stats), opts_(opts) {}
UringEngine::~UringEngine() = default;
bool UringEngine::Available() { return false; }
void UringEngine::ForceAvailabilityForTest(int) {}
bool UringEngine::Init(RecvFn) { return false; }
bool UringEngine::AddSocket(int, uint64_t) { return false; }
void UringEngine::RemoveSocket(int) {}
void UringEngine::SetWakerFd(int) {}
void UringEngine::StageSend(int, uint16_t, const Iovec&) {}
size_t UringEngine::staged_sends() const { return 0; }
void UringEngine::SubmitSends() {}
void UringEngine::DrainSends() {}
size_t UringEngine::ReapAndDeliver() { return 0; }
size_t UringEngine::DeliverPending() { return 0; }
void UringEngine::WaitCompletions(uint64_t) {}

}  // namespace ensemble

#endif
