// Simulated datagram networks.
//
// The paper's specification section (Fig. 2) distinguishes a FIFO network
// from a network "that reorders, duplicates, and loses messages"; the
// protocol stacks are exactly the machinery that turns the latter into the
// former (and more).  SimNetwork implements the lossy model with seeded
// randomness; with all fault probabilities at zero and zero jitter it is the
// FIFO network.  Per-link partitions support the membership tests.

#ifndef ENSEMBLE_SRC_NET_NETWORK_H_
#define ENSEMBLE_SRC_NET_NETWORK_H_

#include <cstdint>
#include <functional>
#include <map>
#include <set>

#include "src/event/types.h"
#include "src/marshal/wire_tags.h"
#include "src/net/sim_queue.h"
#include "src/util/bytes.h"
#include "src/util/counters.h"
#include "src/util/rng.h"
#include "src/util/vtime.h"

namespace ensemble {

// A datagram in flight.  `datagram` is contiguous: the sending NIC gathers
// the scatter-gather parts (see SimNetwork::Send), the receiver sees one
// buffer and slices it zero-copy.
struct Packet {
  EndpointId src;
  EndpointId dst;  // Ignored when broadcast.
  bool broadcast = false;
  Bytes datagram;
};

// Counters are relaxed atomics (RelaxedCounter): each network instance is
// still written single-threaded (its owning shard), but the sharded runtime
// aggregates per-shard stats from other threads, and benches snapshot them
// while workers run.
struct NetworkStats {
  RelaxedCounter sent = 0;
  RelaxedCounter delivered = 0;
  RelaxedCounter dropped = 0;
  RelaxedCounter duplicated = 0;
  RelaxedCounter delayed_extra = 0;  // Packets given reordering delay.
  RelaxedCounter bytes_sent = 0;
  // Batched-I/O observability (the throughput bench's raw material).  A
  // backend without a real syscall boundary (the simulator) leaves the
  // syscall counters at zero but still classifies packed datagrams.
  RelaxedCounter send_syscalls = 0;      // sendmsg/sendmmsg invocations.
  RelaxedCounter recv_syscalls = 0;      // recvfrom/recvmmsg invocations.
  RelaxedCounter send_batches = 0;       // Staged flushes covering >1 datagram.
  RelaxedCounter batched_datagrams = 0;  // Datagrams routed through a staging ring.
  RelaxedCounter max_send_batch = 0;     // Largest single flush (datagrams).
  RelaxedCounter packed_datagrams = 0;   // Datagrams carrying packed sub-messages.
  RelaxedCounter packed_submsgs = 0;     // Sub-messages inside those datagrams.
  // io_uring backend observability (zero on the eager/mmsg paths).  The
  // syscall story for uring is uring_enters: one enter can submit a whole
  // flush of SQEs and reap a burst of CQEs, so syscalls/msg compares
  // send_syscalls + recv_syscalls + uring_enters across backends.
  RelaxedCounter uring_enters = 0;       // io_uring_enter(2) invocations.
  RelaxedCounter uring_sqes = 0;         // Submission entries pushed.
  RelaxedCounter uring_sqe_batches = 0;  // Submissions covering >1 SQE.
  RelaxedCounter uring_cqes = 0;         // Completion entries reaped.
  RelaxedCounter uring_cqe_batches = 0;  // Reaps covering >1 CQE.
  RelaxedCounter gso_sends = 0;          // UDP_SEGMENT super-datagrams sent.
  RelaxedCounter gso_segments = 0;       // Wire datagrams inside them.
  RelaxedCounter gro_recvs = 0;          // Coalesced receives (UDP_GRO trains).
  RelaxedCounter gro_segments = 0;       // Logical datagrams split out of them.
  RelaxedCounter bufring_refills = 0;    // Registered buffer-ring re-provisions.
  // Shared-ingress demux observability (zero in per-endpoint mode).
  RelaxedCounter demux_miss = 0;  // Ingress datagrams with an unknown conn id.
  RelaxedCounter demux_bad = 0;   // Ingress datagrams with a malformed preheader.
  // Gauge-like mode fields (written with `=`, never incremented): what the
  // datapath actually resolved to after probing and fallback.  The obs
  // adapters export them as net.ingress_mode / net.backend_active gauges so
  // BENCH/TRACE artifacts record the configuration that ran, not the one
  // requested.
  RelaxedCounter ingress_mode = 0;    // 0 per-endpoint sockets, 1 shared listener.
  RelaxedCounter backend_active = 0;  // NetBackend: 0 eager, 1 mmsg, 2 uring.

  // Accumulates another instance's counters into this one (max for the max
  // field).  The sharded runtime and the benches sum per-shard stats with it.
  void Add(const NetworkStats& o) {
    sent += o.sent;
    delivered += o.delivered;
    dropped += o.dropped;
    duplicated += o.duplicated;
    delayed_extra += o.delayed_extra;
    bytes_sent += o.bytes_sent;
    send_syscalls += o.send_syscalls;
    recv_syscalls += o.recv_syscalls;
    send_batches += o.send_batches;
    batched_datagrams += o.batched_datagrams;
    if (o.max_send_batch.value() > max_send_batch.value()) {
      max_send_batch = o.max_send_batch.value();
    }
    packed_datagrams += o.packed_datagrams;
    packed_submsgs += o.packed_submsgs;
    uring_enters += o.uring_enters;
    uring_sqes += o.uring_sqes;
    uring_sqe_batches += o.uring_sqe_batches;
    uring_cqes += o.uring_cqes;
    uring_cqe_batches += o.uring_cqe_batches;
    gso_sends += o.gso_sends;
    gso_segments += o.gso_segments;
    gro_recvs += o.gro_recvs;
    gro_segments += o.gro_segments;
    bufring_refills += o.bufring_refills;
    demux_miss += o.demux_miss;
    demux_bad += o.demux_bad;
    // Mode fields take max: "shared" / "uring" dominates an aggregate row
    // when any contributing shard ran it.
    if (o.ingress_mode.value() > ingress_mode.value()) {
      ingress_mode = o.ingress_mode.value();
    }
    if (o.backend_active.value() > backend_active.value()) {
      backend_active = o.backend_active.value();
    }
  }
};

// Classifies an outgoing datagram for the packing counters.  The packed
// header ([tag u8][count u8]) is always emitted as one leading part (or the
// datagram is already flat), so the first two logical bytes sit in part 0.
inline void CountIfPacked(NetworkStats* stats, const Iovec& gather) {
  if (gather.part_count() > 0 && gather.part(0).size() >= 2 &&
      gather.part(0)[0] == kWirePacked) {
    stats->packed_datagrams++;
    stats->packed_submsgs += gather.part(0)[1];
  }
}

// Abstract datagram network + timer facility: what a protocol endpoint needs
// from its environment.  Implemented by SimNetwork (deterministic discrete-
// event simulation) and UdpNetwork (real localhost sockets, src/net/udp.h).
class Network {
 public:
  using DeliverFn = std::function<void(const Packet&)>;
  using TimerFn = std::function<void()>;

  virtual ~Network() = default;

  virtual void Attach(EndpointId ep, DeliverFn deliver) = 0;
  virtual void Detach(EndpointId ep) = 0;
  virtual void Send(EndpointId src, EndpointId dst, const Iovec& gather) = 0;
  virtual void Broadcast(EndpointId src, const Iovec& gather) = 0;
  // One-shot timer `delay` from now; fires in the network's execution context
  // (the sim queue / the UDP poll loop).
  virtual void ScheduleTimer(VTime delay, TimerFn fn) = 0;
  virtual VTime Now() const = 0;
  // Batching boundary: a backend that stages outgoing datagrams (UdpNetwork's
  // sendmmsg ring) pushes everything staged to the wire here.  Backends that
  // transmit eagerly need no action.
  virtual void Flush() {}
  // Registers a per-endpoint hook that a polling backend runs after the last
  // delivery of each receive drain (and removes on Detach or an empty fn).
  // Endpoints use it to flush response traffic staged during the drain —
  // without it, a packed message staged by a deliver callback would sit until
  // the next periodic timer (or forever, with timers off).  Event-scheduled
  // backends (the simulator) have no drain boundary and may ignore it.
  virtual void SetDrainHook(EndpointId ep, std::function<void()> hook) {}
  // Backpressure signal from the overload manager.  Must be callable from any
  // thread (backends store it in an atomic read on their own thread).
  // Level 0 = normal; 1 = tighten batching (flush staged sends per message
  // instead of waiting for a full batch); 2 = additionally shed: drop-oldest
  // on unbounded non-reliable queues past the backend's keep depth.  Backends
  // without staging or queues (the simulator) may ignore it.
  virtual void SetPressure(int level) {}
};

// Fault and latency model.  All probabilities are per delivery attempt.
struct NetworkConfig {
  VTime latency = Micros(40);  // One-way link latency.
  VTime jitter = 0;            // Uniform extra delay in [0, jitter].
  double drop_prob = 0.0;
  double dup_prob = 0.0;
  double reorder_prob = 0.0;    // Chance of an extra reorder_delay.
  VTime reorder_delay = Micros(200);
  uint64_t seed = 1;

  static NetworkConfig Perfect() { return NetworkConfig{}; }
  static NetworkConfig Lossy(double drop, double dup, double reorder, uint64_t seed) {
    NetworkConfig c;
    c.drop_prob = drop;
    c.dup_prob = dup;
    c.reorder_prob = reorder;
    c.jitter = Micros(20);
    c.seed = seed;
    return c;
  }
};

class SimNetwork : public Network {
 public:
  SimNetwork(SimQueue* queue, NetworkConfig config)
      : queue_(queue), config_(config), rng_(config.seed) {}

  // Registers an endpoint; `deliver` runs in simulation context when a packet
  // for it arrives.
  void Attach(EndpointId ep, DeliverFn deliver) override {
    endpoints_[ep] = std::move(deliver);
  }
  void Detach(EndpointId ep) override { endpoints_.erase(ep); }
  bool IsAttached(EndpointId ep) const { return endpoints_.count(ep) > 0; }

  // Sends a gathered datagram.  The flatten here models the NIC gather DMA
  // and is outside the measured protocol code latency.
  void Send(EndpointId src, EndpointId dst, const Iovec& gather) override;
  void Broadcast(EndpointId src, const Iovec& gather) override;

  void ScheduleTimer(VTime delay, TimerFn fn) override {
    queue_->After(delay, std::move(fn));
  }
  VTime Now() const override { return queue_->now(); }

  // Observation tap: called for every packet accepted for delivery (after
  // loss) with the delivery time.  Drives the PacketTrace debugging tool.
  using TapFn = std::function<void(VTime deliver_at, const Packet&)>;
  void SetTap(TapFn tap) { tap_ = std::move(tap); }

  // Cuts / restores the (bidirectional) link between two endpoints.
  void SetLinkUp(EndpointId a, EndpointId b, bool up);
  // Cuts / restores all links of one endpoint (crash emulation).
  void SetNodeUp(EndpointId a, bool up);

  // Swaps the fault knobs mid-run (loss/reorder bursts in scenario
  // schedules).  Latency and seed are left alone — the RNG stream continues,
  // so a run stays reproducible from the construction seed plus the schedule
  // of SetFaults calls.  Packets already in flight keep their old fate.
  void SetFaults(double drop_prob, double dup_prob, double reorder_prob) {
    config_.drop_prob = drop_prob;
    config_.dup_prob = dup_prob;
    config_.reorder_prob = reorder_prob;
  }
  const NetworkConfig& config() const { return config_; }

  const NetworkStats& stats() const { return stats_; }
  SimQueue* queue() { return queue_; }

 private:
  void DeliverOne(const Packet& packet);
  bool LinkUp(EndpointId a, EndpointId b) const;

  SimQueue* queue_;
  NetworkConfig config_;
  Rng rng_;
  std::map<EndpointId, DeliverFn> endpoints_;
  std::set<std::pair<uint64_t, uint64_t>> cut_links_;
  std::set<uint64_t> down_nodes_;
  TapFn tap_;
  NetworkStats stats_;
};

}  // namespace ensemble

#endif  // ENSEMBLE_SRC_NET_NETWORK_H_
