// PacketTrace — a wire-level observation tool for debugging protocol runs.
//
// Hook it to a SimNetwork tap and every accepted packet is recorded with its
// scheduled delivery time, endpoints, wire format (generic vs. compressed),
// and size; Dump() renders a tcpdump-ish timeline.  Used by tests to assert
// wire-level facts (e.g. "everything after warm-up was compressed") and by
// humans to see what a protocol actually put on the network.

#ifndef ENSEMBLE_SRC_NET_TRACE_H_
#define ENSEMBLE_SRC_NET_TRACE_H_

#include <string>
#include <vector>

#include "src/net/network.h"

namespace ensemble {

class PacketTrace {
 public:
  struct Record {
    VTime deliver_at = 0;
    EndpointId src;
    EndpointId dst;
    size_t bytes = 0;
    uint8_t wire_tag = 0;  // kWireGeneric / kWireCompressed / other.
  };

  // Attaches to the network's tap (replacing any previous tap).
  void AttachTo(SimNetwork* net) {
    net->SetTap([this](VTime at, const Packet& p) { Observe(at, p); });
  }

  void Observe(VTime deliver_at, const Packet& packet) {
    Record r;
    r.deliver_at = deliver_at;
    r.src = packet.src;
    r.dst = packet.dst;
    r.bytes = packet.datagram.size();
    r.wire_tag = packet.datagram.empty() ? 0 : packet.datagram[0];
    records_.push_back(r);
  }

  const std::vector<Record>& records() const { return records_; }
  size_t size() const { return records_.size(); }
  void Clear() { records_.clear(); }

  // Packets per wire tag, and total bytes.
  size_t CountWithTag(uint8_t tag) const {
    size_t n = 0;
    for (const Record& r : records_) {
      n += r.wire_tag == tag ? 1 : 0;
    }
    return n;
  }
  size_t TotalBytes() const {
    size_t n = 0;
    for (const Record& r : records_) {
      n += r.bytes;
    }
    return n;
  }

  // Human-readable timeline.
  std::string Dump(size_t max_lines = 100) const;

 private:
  std::vector<Record> records_;
};

}  // namespace ensemble

#endif  // ENSEMBLE_SRC_NET_TRACE_H_
