// Discrete-event simulation core: a virtual clock plus an ordered queue of
// pending actions.  Every asynchronous effect in the simulated system —
// packet delivery, protocol timers, failure injection — is an entry here, so
// whole-group executions are deterministic and instantaneous to run.

#ifndef ENSEMBLE_SRC_NET_SIM_QUEUE_H_
#define ENSEMBLE_SRC_NET_SIM_QUEUE_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "src/util/vtime.h"

namespace ensemble {

class SimQueue {
 public:
  using Action = std::function<void()>;

  VTime now() const { return now_; }
  bool empty() const { return heap_.empty(); }
  size_t pending() const { return heap_.size(); }
  // Due time of the earliest pending action (the heap top), or kVTimeNever
  // when idle.  API parity with UdpNetwork's timer heap: both expose the next
  // deadline so a poll loop can sleep exactly until something is runnable.
  VTime next_due() const { return heap_.empty() ? kVTimeNever : heap_.top().t; }

  // Schedules `fn` to run at absolute virtual time `t` (clamped to now).
  void At(VTime t, Action fn) {
    if (t < now_) {
      t = now_;
    }
    heap_.push(Entry{t, next_seq_++, std::move(fn)});
  }
  void After(VTime delay, Action fn) { At(now_ + delay, std::move(fn)); }

  // Runs the next action; returns false if the queue is empty.
  bool Step() {
    if (heap_.empty()) {
      return false;
    }
    Entry e = heap_.top();
    heap_.pop();
    now_ = e.t;
    e.fn();
    return true;
  }

  // Runs actions until the queue drains or virtual time would pass `limit`.
  // Returns the number of actions executed.
  size_t RunUntil(VTime limit) {
    size_t n = 0;
    while (!heap_.empty() && heap_.top().t <= limit) {
      Step();
      n++;
    }
    if (now_ < limit) {
      now_ = limit;
    }
    return n;
  }

  // Drains the queue completely (with a step bound as a runaway guard).
  size_t RunAll(size_t max_steps = 100'000'000) {
    size_t n = 0;
    while (n < max_steps && Step()) {
      n++;
    }
    return n;
  }

 private:
  struct Entry {
    VTime t;
    uint64_t seq;  // FIFO tiebreak for equal times.
    Action fn;
    bool operator>(const Entry& o) const {
      return t != o.t ? t > o.t : seq > o.seq;
    }
  };

  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap_;
  VTime now_ = 0;
  uint64_t next_seq_ = 0;
};

}  // namespace ensemble

#endif  // ENSEMBLE_SRC_NET_SIM_QUEUE_H_
