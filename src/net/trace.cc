#include "src/net/trace.h"

#include <sstream>

#include "src/marshal/generic_codec.h"

namespace ensemble {

std::string PacketTrace::Dump(size_t max_lines) const {
  std::ostringstream os;
  size_t shown = 0;
  for (const Record& r : records_) {
    if (shown++ >= max_lines) {
      os << "... (" << records_.size() - max_lines << " more)\n";
      break;
    }
    const char* kind = r.wire_tag == kWireGeneric      ? "generic"
                       : r.wire_tag == kWireCompressed ? "compressed"
                                                       : "unknown";
    os << r.deliver_at / 1000 << "us  " << r.src.id << " -> " << r.dst.id << "  " << r.bytes
       << "B  " << kind << "\n";
  }
  return os.str();
}

}  // namespace ensemble
