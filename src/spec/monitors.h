// Trace monitors: the bridge between the IOA specifications and the real
// C++ stacks.  A GroupHarness run produces per-member delivery traces; the
// monitors check them against the properties the abstract specs describe —
// per-sender FIFO, no duplication/loss, total-order agreement, and the
// virtual-synchrony invariant.

#ifndef ENSEMBLE_SRC_SPEC_MONITORS_H_
#define ENSEMBLE_SRC_SPEC_MONITORS_H_

#include <string>
#include <vector>

#include "src/app/harness.h"

namespace ensemble {

struct MonitorResult {
  bool ok = true;
  std::vector<std::string> violations;
  std::string ToString() const;
};

// Per-sender FIFO + completeness: every member delivered exactly the
// sequence `sent_by[origin]` from each origin (reliable FIFO multicast).
MonitorResult CheckReliableFifo(const GroupHarness& g,
                                const std::vector<std::vector<std::string>>& sent_by,
                                bool include_self);

// No duplicates: no member delivered the same (origin, payload) twice.
MonitorResult CheckNoDuplicates(const GroupHarness& g);

// Total order agreement: all members' cast-delivery sequences agree on the
// relative order of every pair of messages they both delivered.
MonitorResult CheckTotalOrderAgreement(const GroupHarness& g);

// Virtual synchrony: members that survive from one view to the next
// delivered the same multiset of casts while that view was installed.
// Requires the harness members to have recorded views.
MonitorResult CheckVirtualSynchrony(const std::vector<std::vector<std::string>>& per_view_sets);

}  // namespace ensemble

#endif  // ENSEMBLE_SRC_SPEC_MONITORS_H_
