// Trace monitors: the bridge between the IOA specifications and the real
// C++ stacks.  A GroupHarness run produces per-member delivery traces; the
// monitors check them against the properties the abstract specs describe —
// per-sender FIFO, no duplication/loss, total-order agreement, and the
// virtual-synchrony invariant.

#ifndef ENSEMBLE_SRC_SPEC_MONITORS_H_
#define ENSEMBLE_SRC_SPEC_MONITORS_H_

#include <string>
#include <vector>

#include "src/app/harness.h"

namespace ensemble {

struct MonitorResult {
  bool ok = true;
  std::vector<std::string> violations;
  std::string ToString() const;
};

// Per-sender FIFO + completeness: every member delivered exactly the
// sequence `sent_by[origin]` from each origin (reliable FIFO multicast).
MonitorResult CheckReliableFifo(const GroupHarness& g,
                                const std::vector<std::vector<std::string>>& sent_by,
                                bool include_self);

// No duplicates: no member delivered the same (origin, payload) twice.
MonitorResult CheckNoDuplicates(const GroupHarness& g);

// Total order agreement: all members' cast-delivery sequences agree on the
// relative order of every pair of messages they both delivered.
MonitorResult CheckTotalOrderAgreement(const GroupHarness& g);

// Virtual synchrony: members that survive from one view to the next
// delivered the same multiset of casts while that view was installed.
// Requires the harness members to have recorded views.
MonitorResult CheckVirtualSynchrony(const std::vector<std::vector<std::string>>& per_view_sets);

// ---- Churn-tolerant variants ----------------------------------------------
//
// Under membership churn a Rank names different members in different views,
// so the rank-keyed monitors above are only sound while the view is stable.
// These variants match deliveries by payload instead (scenario workloads
// make every payload globally unique), which survives rank reshuffling.

// FIFO prefix: every member in `members` delivered, from each origin, an
// in-order gap-free PREFIX of sent_by[origin] — a member cut off by a crash
// or partition may miss a suffix but must never reorder or skip.  Origins
// listed in `complete_origins` are held to the full sequence, not just a
// prefix (use for senders that stayed up and connected).  include_self
// mirrors CheckReliableFifo: when false, member i's deliveries from origin i
// are not checked.
// When require_gap_free is false the check relaxes from "prefix" to
// "in-order subsequence": deliveries must respect send order but may skip
// messages (for schedules where a view cut can drop a sender's cast for
// everyone).  Reorders and duplicates are flagged in both modes.
MonitorResult CheckFifoPrefixAmong(const GroupHarness& g,
                                   const std::vector<int>& members,
                                   const std::vector<std::vector<std::string>>& sent_by,
                                   const std::vector<int>& complete_origins,
                                   bool include_self,
                                   bool require_gap_free = true);

// No duplicates by payload alone: a retransmission adopted in a later view
// carries a different origin rank, which the (origin, payload)-keyed
// CheckNoDuplicates would miss.
MonitorResult CheckNoDuplicatePayloads(const GroupHarness& g,
                                       const std::vector<int>& members);

}  // namespace ensemble

#endif  // ENSEMBLE_SRC_SPEC_MONITORS_H_
