// Refinement (trace inclusion) checking.
//
// Paper §3.1: "We then have to show that any execution of this composed
// specification, which is an abstract specification, is also an execution of
// FifoNetwork."  Executions of the implementation automaton are generated
// randomly (seeded); each external trace is replayed against the abstract
// specification with a subset construction over the specification's internal
// actions — if at some point no specification state can take the next
// external action, the trace is not included and a counterexample is
// reported.

#ifndef ENSEMBLE_SRC_SPEC_REFINEMENT_H_
#define ENSEMBLE_SRC_SPEC_REFINEMENT_H_

#include <functional>
#include <string>
#include <vector>

#include "src/spec/ioa.h"

namespace ensemble {

struct RefinementResult {
  bool holds = true;
  size_t executions = 0;
  size_t total_trace_steps = 0;
  // On failure: the offending trace and the step at which the spec got stuck.
  std::vector<std::string> counterexample;
  size_t failed_at = 0;
  std::string detail;
};

struct RefinementOptions {
  size_t executions = 50;      // Random implementation executions to try.
  size_t max_steps = 200;      // Length bound per execution.
  size_t internal_closure = 64;  // Bound on spec internal-step exploration.
  uint64_t seed = 1;
  // Optional relabeling from implementation external labels to spec labels;
  // labels mapped to "" are hidden (treated as internal).
  std::function<std::string(const std::string&)> relabel;
};

// Checks: every (sampled) trace of `impl` is a trace of `spec`.
RefinementResult CheckTraceInclusion(const Ioa& impl, const Ioa& spec,
                                     const RefinementOptions& options);

// Replays one concrete trace against the spec (exposed for tests).
bool SpecAcceptsTrace(const Ioa& spec, const std::vector<std::string>& trace,
                      size_t internal_closure, size_t* failed_at);

// Exhaustive bounded check: walks EVERY execution of `impl` up to `depth`
// actions (breadth-first over distinct states) and verifies each external
// trace against the spec.  Unlike the sampling checker this is a guarantee
// within the bound — the right tool for small models such as the §3
// total-order bug.  `max_states` caps the exploration (result.detail notes
// when the cap was hit, in which case the check was exhaustive only up to
// the visited frontier).
RefinementResult CheckTraceInclusionExhaustive(const Ioa& impl, const Ioa& spec,
                                               size_t depth, size_t internal_closure,
                                               size_t max_states = 200000);

}  // namespace ensemble

#endif  // ENSEMBLE_SRC_SPEC_REFINEMENT_H_
