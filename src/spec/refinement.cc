#include "src/spec/refinement.h"

#include <map>
#include <memory>
#include <set>
#include <sstream>

namespace ensemble {

namespace {

// Expands a set of spec states with everything reachable through internal
// actions (bounded).
void InternalClosure(std::vector<std::unique_ptr<Ioa>>& states, size_t bound) {
  std::set<std::string> seen;
  for (const auto& s : states) {
    seen.insert(s->StateString());
  }
  for (size_t i = 0; i < states.size() && states.size() < bound; i++) {
    for (const Ioa::Action& a : states[i]->Enabled()) {
      if (a.external) {
        continue;
      }
      std::unique_ptr<Ioa> next = states[i]->Clone();
      next->Apply(a.label);
      if (seen.insert(next->StateString()).second) {
        states.push_back(std::move(next));
        if (states.size() >= bound) {
          return;
        }
      }
    }
  }
}

}  // namespace

bool SpecAcceptsTrace(const Ioa& spec, const std::vector<std::string>& trace,
                      size_t internal_closure, size_t* failed_at) {
  std::vector<std::unique_ptr<Ioa>> states;
  states.push_back(spec.Clone());
  for (size_t step = 0; step < trace.size(); step++) {
    InternalClosure(states, internal_closure);
    std::vector<std::unique_ptr<Ioa>> next;
    std::set<std::string> seen;
    for (const auto& s : states) {
      // Specs are acceptors with open action alphabets (e.g. FifoNetwork's
      // Send takes any message), so acceptance is by Apply — whose contract
      // is to refuse when the precondition fails — not by enumeration.
      std::unique_ptr<Ioa> applied = s->Clone();
      if (applied->Apply(trace[step]) &&
          seen.insert(applied->StateString()).second) {
        next.push_back(std::move(applied));
      }
    }
    if (next.empty()) {
      if (failed_at != nullptr) {
        *failed_at = step;
      }
      return false;
    }
    states = std::move(next);
  }
  return true;
}

RefinementResult CheckTraceInclusionExhaustive(const Ioa& impl, const Ioa& spec,
                                               size_t depth, size_t internal_closure,
                                               size_t max_states) {
  RefinementResult result;
  struct Node {
    std::unique_ptr<Ioa> state;
    std::vector<std::string> trace;
    size_t actions = 0;
  };
  std::vector<Node> frontier;
  frontier.push_back({impl.Clone(), {}, 0});
  // Dedup on (state, trace): two paths reaching the same state with the same
  // external trace are interchangeable for trace inclusion.
  std::set<std::string> seen;
  seen.insert(impl.StateString());
  size_t explored = 0;

  while (!frontier.empty()) {
    Node node = std::move(frontier.back());
    frontier.pop_back();
    explored++;
    if (explored > max_states) {
      result.detail = "state cap reached; exhaustive only up to the visited frontier";
      return result;
    }
    // Check the trace so far (prefix-closed: checking leaves is not enough
    // because a bad prefix may deadlock before reaching the depth bound).
    result.executions++;
    result.total_trace_steps += node.trace.size();
    size_t failed_at = 0;
    if (!SpecAcceptsTrace(spec, node.trace, internal_closure, &failed_at)) {
      result.holds = false;
      result.counterexample = node.trace;
      result.failed_at = failed_at;
      result.detail = "exhaustive search found a violating trace";
      return result;
    }
    if (node.actions >= depth) {
      continue;
    }
    for (const Ioa::Action& a : node.state->Enabled()) {
      std::unique_ptr<Ioa> next = node.state->Clone();
      if (!next->Apply(a.label)) {
        continue;
      }
      std::vector<std::string> trace = node.trace;
      if (a.external) {
        trace.push_back(a.label);
      }
      std::string key = next->StateString();
      for (const std::string& t : trace) {
        key += "|" + t;
      }
      if (!seen.insert(std::move(key)).second) {
        continue;
      }
      frontier.push_back({std::move(next), std::move(trace), node.actions + 1});
    }
  }
  return result;
}

RefinementResult CheckTraceInclusion(const Ioa& impl, const Ioa& spec,
                                     const RefinementOptions& options) {
  RefinementResult result;
  for (size_t e = 0; e < options.executions; e++) {
    Execution exec = RandomExecution(impl, options.seed + e, options.max_steps);
    std::vector<std::string> trace;
    trace.reserve(exec.trace.size());
    for (const std::string& label : exec.trace) {
      if (options.relabel) {
        std::string mapped = options.relabel(label);
        if (!mapped.empty()) {
          trace.push_back(std::move(mapped));
        }
      } else {
        trace.push_back(label);
      }
    }
    result.executions++;
    result.total_trace_steps += trace.size();
    size_t failed_at = 0;
    if (!SpecAcceptsTrace(spec, trace, options.internal_closure, &failed_at)) {
      result.holds = false;
      result.counterexample = trace;
      result.failed_at = failed_at;
      std::ostringstream os;
      os << "execution " << e << " (seed " << options.seed + e << "): spec cannot take '"
         << trace[failed_at] << "' at trace position " << failed_at;
      result.detail = os.str();
      return result;
    }
  }
  return result;
}

}  // namespace ensemble
