#include "src/spec/ioa.h"

#include <algorithm>
#include <set>
#include <sstream>

namespace ensemble {

std::string CompositeIoa::name() const {
  std::ostringstream os;
  os << "(";
  for (size_t i = 0; i < parts_.size(); i++) {
    os << (i > 0 ? " ||| " : "") << parts_[i]->name();
  }
  os << ")";
  return os.str();
}

std::vector<Ioa::Action> CompositeIoa::Enabled() const {
  // Candidate labels: enabled somewhere.  A label runs only if every part
  // whose signature contains it can also take it (CanApply — parts with
  // open alphabets do not enumerate every acceptable label).
  std::vector<Action> out;
  std::set<std::string> seen;
  for (const auto& part : parts_) {
    for (const Action& a : part->Enabled()) {
      if (!seen.insert(a.label).second) {
        continue;
      }
      bool jointly_enabled = true;
      bool external = a.external;
      for (const auto& other : parts_) {
        if (other.get() == part.get() || !other->Handles(a.label)) {
          continue;
        }
        if (!other->CanApply(a.label)) {
          jointly_enabled = false;
          break;
        }
        // An action is external to the composite only if every synchronizing
        // part regards it as external.
        for (const Action& b : other->Enabled()) {
          if (b.label == a.label) {
            external = external && b.external;
            break;
          }
        }
      }
      if (jointly_enabled) {
        out.push_back(Action{a.label, external});
      }
    }
  }
  std::sort(out.begin(), out.end(),
            [](const Action& a, const Action& b) { return a.label < b.label; });
  return out;
}

bool CompositeIoa::Handles(const std::string& label) const {
  for (const auto& part : parts_) {
    if (part->Handles(label)) {
      return true;
    }
  }
  return false;
}

bool CompositeIoa::Apply(const std::string& label) {
  // All-or-nothing: check every synchronizing part's precondition before
  // mutating any of them.
  bool any = false;
  for (const auto& part : parts_) {
    if (!part->Handles(label)) {
      continue;
    }
    any = true;
    if (!part->CanApply(label)) {
      return false;
    }
  }
  if (!any) {
    return false;
  }
  for (const auto& part : parts_) {
    if (part->Handles(label)) {
      part->Apply(label);
    }
  }
  return true;
}

std::unique_ptr<Ioa> CompositeIoa::Clone() const {
  auto copy = std::make_unique<CompositeIoa>();
  for (const auto& part : parts_) {
    copy->Add(part->Clone());
  }
  return copy;
}

std::string CompositeIoa::StateString() const {
  std::ostringstream os;
  for (const auto& part : parts_) {
    os << part->StateString() << ";";
  }
  return os.str();
}

Execution RandomExecution(const Ioa& initial, uint64_t seed, size_t max_steps) {
  Execution exec;
  Rng rng(seed);
  std::unique_ptr<Ioa> state = initial.Clone();
  for (size_t step = 0; step < max_steps; step++) {
    std::vector<Ioa::Action> enabled = state->Enabled();
    if (enabled.empty()) {
      exec.deadlocked = true;
      break;
    }
    const Ioa::Action& pick = enabled[rng.Below(enabled.size())];
    state->Apply(pick.label);
    exec.actions.push_back(pick);
    if (pick.external) {
      exec.trace.push_back(pick.label);
    }
  }
  return exec;
}

}  // namespace ensemble
