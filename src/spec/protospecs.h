// Concrete protocol specifications (paper §3.1, Figure 3) and the total-
// order specifications behind the §3 bug story.
//
//   FifoProtocolSpec — one participant of "a communication protocol that
//     retransmits messages, removes duplicates, and delivers messages in
//     order"; composed with LossyNetworkSpec("Net") instances per Figure 3's
//     prototype, its executions refine the (pairwise) FIFO network spec.
//
//   TotalOrderSpec — abstract totally-ordered multicast: an internal Commit
//     action nondeterministically fixes the global order; members deliver
//     committed prefixes.
//
//   TokenTotalModel — a self-contained model of the token-sequencer total
//     order protocol over a reordering network.  With `buggy=true` it uses
//     the `>=` delivery condition of total_buggy (the paper's "subtle bug"):
//     refinement against TotalOrderSpec then fails with a counterexample.

#ifndef ENSEMBLE_SRC_SPEC_PROTOSPECS_H_
#define ENSEMBLE_SRC_SPEC_PROTOSPECS_H_

#include <deque>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "src/spec/ioa.h"

namespace ensemble {

class FifoProtocolSpec : public Ioa {
 public:
  // `process`: this participant's id.  `script`: the (dst, msg) pairs the
  // application will send, in order.
  FifoProtocolSpec(int process, std::vector<std::pair<int, std::string>> script)
      : process_(process), script_(std::move(script)) {}

  std::string name() const override { return "FifoProtocol(" + std::to_string(process_) + ")"; }
  std::vector<Action> Enabled() const override;
  bool Handles(const std::string& label) const override;
  bool Apply(const std::string& label) override;
  std::unique_ptr<Ioa> Clone() const override;
  std::string StateString() const override;

 private:
  int process_;
  std::vector<std::pair<int, std::string>> script_;
  size_t next_ = 0;
  std::map<int, int> send_seq_;                               // dst -> next seqno.
  std::map<int, std::vector<std::pair<int, std::string>>> sendbuf_;  // dst -> (seq,msg).
  std::map<int, int> expected_;                               // src -> next expected.
  std::deque<std::pair<int, std::string>> ready_;             // (src, msg) to deliver.
};

// Builds the Figure-3 composition: n FifoProtocolSpec participants over a
// "Net"-prefixed LossyNetworkSpec.  scripts[p] is participant p's send list.
std::unique_ptr<Ioa> ComposeFifoSystem(
    const std::vector<std::vector<std::pair<int, std::string>>>& scripts);

class TotalOrderSpec : public Ioa {
 public:
  explicit TotalOrderSpec(int members) : members_(members) {}

  std::string name() const override { return "TotalOrder"; }
  std::vector<Action> Enabled() const override;
  bool Handles(const std::string& label) const override;
  bool Apply(const std::string& label) override;
  std::unique_ptr<Ioa> Clone() const override;
  std::string StateString() const override;

 private:
  int members_;
  std::multiset<std::string> pending_;   // Cast but not yet ordered.
  std::vector<std::string> committed_;   // The agreed global order.
  std::map<int, size_t> delivered_;      // member -> prefix length delivered.
};

class TokenTotalModel : public Ioa {
 public:
  // scripts[p]: messages member p will cast, in order.
  TokenTotalModel(std::vector<std::vector<std::string>> scripts, bool buggy)
      : scripts_(std::move(scripts)), buggy_(buggy) {
    expected_.assign(scripts_.size(), 0);
    next_script_.assign(scripts_.size(), 0);
    ready_.resize(scripts_.size());
    holdback_.resize(scripts_.size());
  }

  std::string name() const override {
    return buggy_ ? "TokenTotal(buggy)" : "TokenTotal(correct)";
  }
  std::vector<Action> Enabled() const override;
  bool Handles(const std::string& label) const override;
  bool Apply(const std::string& label) override;
  std::unique_ptr<Ioa> Clone() const override;
  std::string StateString() const override;

 private:
  void Drain(size_t p);

  std::vector<std::vector<std::string>> scripts_;
  bool buggy_;
  std::vector<size_t> next_script_;
  uint32_t gseq_next_ = 0;
  // In-flight (gseq, msg) per destination member — the reordering network.
  std::vector<std::map<uint32_t, std::string>> holdback_;  // Arrived, undelivered.
  std::multiset<std::pair<uint32_t, std::string>> net_;
  std::vector<uint32_t> expected_;
  std::vector<std::deque<std::string>> ready_;
};

}  // namespace ensemble

#endif  // ENSEMBLE_SRC_SPEC_PROTOSPECS_H_
