#include "src/spec/netspecs.h"

#include <sstream>

namespace ensemble {

namespace {
// Extracts the argument of "Name(arg)" if the label starts with "Name(".
bool MatchCall(const std::string& label, const std::string& fn, std::string* arg) {
  if (label.size() < fn.size() + 2 || label.compare(0, fn.size(), fn) != 0 ||
      label[fn.size()] != '(' || label.back() != ')') {
    return false;
  }
  *arg = label.substr(fn.size() + 1, label.size() - fn.size() - 2);
  return true;
}
}  // namespace

// ---------------------------------------------------------------------------
// FifoNetworkSpec
// ---------------------------------------------------------------------------

std::vector<Ioa::Action> FifoNetworkSpec::Enabled() const {
  std::vector<Action> out;
  for (const std::string& s : alphabet_) {
    out.push_back({"Send(" + s + ")", true});
  }
  if (!in_transit_.empty()) {
    out.push_back({"Deliver(" + in_transit_.front() + ")", true});
  }
  return out;
}

bool FifoNetworkSpec::Handles(const std::string& label) const {
  std::string arg;
  return MatchCall(label, "Send", &arg) || MatchCall(label, "Deliver", &arg);
}

bool FifoNetworkSpec::Apply(const std::string& label) {
  std::string arg;
  if (MatchCall(label, "Send", &arg)) {
    in_transit_.push_back(arg);  // condition: true
    return true;
  }
  if (MatchCall(label, "Deliver", &arg)) {
    if (in_transit_.empty() || in_transit_.front() != arg) {
      return false;  // condition: head == (dst,msg)
    }
    in_transit_.pop_front();
    return true;
  }
  return false;
}

std::unique_ptr<Ioa> FifoNetworkSpec::Clone() const {
  return std::make_unique<FifoNetworkSpec>(*this);
}

std::string FifoNetworkSpec::StateString() const {
  std::ostringstream os;
  os << "fifo[";
  for (const std::string& s : in_transit_) {
    os << s << "|";
  }
  os << "]";
  return os.str();
}

// ---------------------------------------------------------------------------
// PairwiseFifoNetworkSpec
// ---------------------------------------------------------------------------

namespace {
// "src,dst,msg" -> ("src,dst", "msg"); false when malformed.
bool SplitPair(const std::string& arg, std::string* key, std::string* msg) {
  size_t first = arg.find(',');
  if (first == std::string::npos) {
    return false;
  }
  size_t second = arg.find(',', first + 1);
  if (second == std::string::npos) {
    return false;
  }
  *key = arg.substr(0, second);
  *msg = arg.substr(second + 1);
  return true;
}
}  // namespace

std::vector<Ioa::Action> PairwiseFifoNetworkSpec::Enabled() const {
  std::vector<Action> out;
  for (const std::string& s : alphabet_) {
    out.push_back({"Send(" + s + ")", true});
  }
  for (const auto& [key, queue] : in_transit_) {
    if (!queue.empty()) {
      out.push_back({"Deliver(" + key + "," + queue.front() + ")", true});
    }
  }
  return out;
}

bool PairwiseFifoNetworkSpec::Handles(const std::string& label) const {
  std::string arg;
  return MatchCall(label, "Send", &arg) || MatchCall(label, "Deliver", &arg);
}

bool PairwiseFifoNetworkSpec::Apply(const std::string& label) {
  std::string arg, key, msg;
  if (MatchCall(label, "Send", &arg) && SplitPair(arg, &key, &msg)) {
    in_transit_[key].push_back(msg);
    return true;
  }
  if (MatchCall(label, "Deliver", &arg) && SplitPair(arg, &key, &msg)) {
    auto it = in_transit_.find(key);
    if (it == in_transit_.end() || it->second.empty() || it->second.front() != msg) {
      return false;
    }
    it->second.pop_front();
    return true;
  }
  return false;
}

std::unique_ptr<Ioa> PairwiseFifoNetworkSpec::Clone() const {
  return std::make_unique<PairwiseFifoNetworkSpec>(*this);
}

std::string PairwiseFifoNetworkSpec::StateString() const {
  std::ostringstream os;
  os << "pfifo[";
  for (const auto& [key, queue] : in_transit_) {
    os << key << ":";
    for (const std::string& m : queue) {
      os << m << "|";
    }
    os << " ";
  }
  os << "]";
  return os.str();
}

// ---------------------------------------------------------------------------
// LossyNetworkSpec
// ---------------------------------------------------------------------------

std::vector<Ioa::Action> LossyNetworkSpec::Enabled() const {
  std::vector<Action> out;
  for (const std::string& s : alphabet_) {
    out.push_back({prefix_ + "Send(" + s + ")", external_});
  }
  for (const auto& [payload, count] : in_transit_) {
    if (count > 0) {
      // Deliver does not consume (duplication); Drop removes (loss).
      out.push_back({prefix_ + "Deliver(" + payload + ")", external_});
      out.push_back({prefix_ + "Drop(" + payload + ")", false});
    }
  }
  return out;
}

bool LossyNetworkSpec::Handles(const std::string& label) const {
  std::string arg;
  return MatchCall(label, prefix_ + "Send", &arg) ||
         MatchCall(label, prefix_ + "Deliver", &arg) ||
         MatchCall(label, prefix_ + "Drop", &arg);
}

bool LossyNetworkSpec::Apply(const std::string& label) {
  std::string arg;
  if (MatchCall(label, prefix_ + "Send", &arg)) {
    in_transit_[arg]++;
    return true;
  }
  if (MatchCall(label, prefix_ + "Deliver", &arg)) {
    auto it = in_transit_.find(arg);
    return it != in_transit_.end() && it->second > 0;  // No removal.
  }
  if (MatchCall(label, prefix_ + "Drop", &arg)) {
    auto it = in_transit_.find(arg);
    if (it == in_transit_.end() || it->second == 0) {
      return false;
    }
    if (--it->second == 0) {
      in_transit_.erase(it);
    }
    return true;
  }
  return false;
}

bool LossyNetworkSpec::CanApply(const std::string& label) const {
  std::string arg;
  if (MatchCall(label, prefix_ + "Send", &arg)) {
    return true;  // Open alphabet: any payload may be sent.
  }
  if (MatchCall(label, prefix_ + "Deliver", &arg) ||
      MatchCall(label, prefix_ + "Drop", &arg)) {
    auto it = in_transit_.find(arg);
    return it != in_transit_.end() && it->second > 0;
  }
  return false;
}

std::unique_ptr<Ioa> LossyNetworkSpec::Clone() const {
  return std::make_unique<LossyNetworkSpec>(*this);
}

std::string LossyNetworkSpec::StateString() const {
  std::ostringstream os;
  os << prefix_ << "lossy[";
  for (const auto& [payload, count] : in_transit_) {
    os << payload << "*" << count << "|";
  }
  os << "]";
  return os.str();
}

}  // namespace ensemble
