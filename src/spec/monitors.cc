#include "src/spec/monitors.h"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>

namespace ensemble {

std::string MonitorResult::ToString() const {
  if (ok) {
    return "ok";
  }
  std::ostringstream os;
  for (const auto& v : violations) {
    os << v << "\n";
  }
  return os.str();
}

MonitorResult CheckReliableFifo(const GroupHarness& g,
                                const std::vector<std::vector<std::string>>& sent_by,
                                bool include_self) {
  MonitorResult result;
  for (int m = 0; m < g.n(); m++) {
    for (Rank origin = 0; origin < static_cast<Rank>(sent_by.size()); origin++) {
      if (!include_self && origin == m) {
        continue;
      }
      std::vector<std::string> got = g.CastPayloadsFrom(m, origin);
      const std::vector<std::string>& want = sent_by[static_cast<size_t>(origin)];
      if (got != want) {
        std::ostringstream os;
        os << "member " << m << " delivered " << got.size() << " casts from " << origin
           << ", want " << want.size();
        for (size_t i = 0; i < std::min(got.size(), want.size()); i++) {
          if (got[i] != want[i]) {
            os << "; first mismatch at " << i << ": got '" << got[i] << "' want '" << want[i]
               << "'";
            break;
          }
        }
        result.ok = false;
        result.violations.push_back(os.str());
      }
    }
  }
  return result;
}

MonitorResult CheckNoDuplicates(const GroupHarness& g) {
  MonitorResult result;
  for (int m = 0; m < g.n(); m++) {
    std::map<std::pair<Rank, std::string>, int> counts;
    for (const auto& d : g.deliveries(m)) {
      if (d.type != EventType::kDeliverCast) {
        continue;
      }
      if (++counts[{d.origin, d.payload}] == 2) {
        std::ostringstream os;
        os << "member " << m << " delivered duplicate cast (" << d.origin << ", '" << d.payload
           << "')";
        result.ok = false;
        result.violations.push_back(os.str());
      }
    }
  }
  return result;
}

MonitorResult CheckTotalOrderAgreement(const GroupHarness& g) {
  MonitorResult result;
  // Build each member's delivery sequence keyed by (origin, payload).
  using Key = std::pair<Rank, std::string>;
  std::vector<std::vector<Key>> seqs(static_cast<size_t>(g.n()));
  for (int m = 0; m < g.n(); m++) {
    for (const auto& d : g.deliveries(m)) {
      if (d.type == EventType::kDeliverCast) {
        seqs[static_cast<size_t>(m)].push_back({d.origin, d.payload});
      }
    }
  }
  // Pairwise: the order of common messages must agree.
  for (int a = 0; a < g.n(); a++) {
    for (int b = a + 1; b < g.n(); b++) {
      std::map<Key, size_t> pos_b;
      for (size_t i = 0; i < seqs[static_cast<size_t>(b)].size(); i++) {
        pos_b[seqs[static_cast<size_t>(b)][i]] = i;
      }
      size_t last = 0;
      bool have_last = false;
      Key last_key;
      for (const Key& k : seqs[static_cast<size_t>(a)]) {
        auto it = pos_b.find(k);
        if (it == pos_b.end()) {
          continue;
        }
        if (have_last && it->second < last) {
          std::ostringstream os;
          os << "members " << a << " and " << b << " disagree on order: " << a << " delivered ("
             << last_key.first << ",'" << last_key.second << "') before (" << k.first << ",'"
             << k.second << "'), " << b << " delivered them in the opposite order";
          result.ok = false;
          result.violations.push_back(os.str());
          return result;
        }
        last = it->second;
        last_key = k;
        have_last = true;
      }
    }
  }
  return result;
}

MonitorResult CheckFifoPrefixAmong(const GroupHarness& g,
                                   const std::vector<int>& members,
                                   const std::vector<std::vector<std::string>>& sent_by,
                                   const std::vector<int>& complete_origins,
                                   bool include_self,
                                   bool require_gap_free) {
  MonitorResult result;
  std::set<int> complete(complete_origins.begin(), complete_origins.end());
  // Payload → origin reverse index (payloads are globally unique).
  std::map<std::string, size_t> origin_of;
  for (size_t origin = 0; origin < sent_by.size(); origin++) {
    for (const std::string& p : sent_by[origin]) {
      origin_of[p] = origin;
    }
  }
  for (int m : members) {
    // Per-origin delivered subsequence, classified by payload, in delivery
    // order — Delivery.origin (a rank) is deliberately ignored.
    std::vector<std::vector<std::string>> got(sent_by.size());
    for (const auto& d : g.deliveries(m)) {
      if (d.type != EventType::kDeliverCast) {
        continue;
      }
      auto it = origin_of.find(d.payload);
      if (it == origin_of.end()) {
        std::ostringstream os;
        os << "member " << m << " delivered unknown payload '" << d.payload << "'";
        result.ok = false;
        result.violations.push_back(os.str());
        continue;
      }
      got[it->second].push_back(d.payload);
    }
    for (size_t origin = 0; origin < sent_by.size(); origin++) {
      if (!include_self && static_cast<size_t>(m) == origin) {
        continue;
      }
      const std::vector<std::string>& want = sent_by[origin];
      const std::vector<std::string>& have = got[origin];
      bool order_ok;
      if (require_gap_free) {
        order_ok = have.size() <= want.size() &&
                   std::equal(have.begin(), have.end(), want.begin());
      } else {
        // In-order subsequence: advance through `want` matching each
        // delivered payload; duplicates and reorders find no match.
        size_t w = 0;
        order_ok = true;
        for (const std::string& p : have) {
          while (w < want.size() && want[w] != p) {
            w++;
          }
          if (w == want.size()) {
            order_ok = false;
            break;
          }
          w++;
        }
      }
      if (!order_ok) {
        std::ostringstream os;
        os << "member " << m << " deliveries from origin " << origin
           << (require_gap_free ? " are not an in-order prefix"
                                : " are not an in-order subsequence")
           << " of what it sent (" << have.size() << " delivered of " << want.size()
           << ")";
        for (size_t i = 0; i < std::min(have.size(), want.size()); i++) {
          if (have[i] != want[i]) {
            os << "; first divergence at " << i << ": got '" << have[i] << "' want '"
               << want[i] << "'";
            break;
          }
        }
        result.ok = false;
        result.violations.push_back(os.str());
      } else if (complete.count(static_cast<int>(origin)) > 0 &&
                 have.size() != want.size()) {
        std::ostringstream os;
        os << "member " << m << " delivered only " << have.size() << " of "
           << want.size() << " casts from connected origin " << origin;
        result.ok = false;
        result.violations.push_back(os.str());
      }
    }
  }
  return result;
}

MonitorResult CheckNoDuplicatePayloads(const GroupHarness& g,
                                       const std::vector<int>& members) {
  MonitorResult result;
  for (int m : members) {
    std::map<std::string, int> counts;
    for (const auto& d : g.deliveries(m)) {
      if (d.type != EventType::kDeliverCast) {
        continue;
      }
      if (++counts[d.payload] == 2) {
        std::ostringstream os;
        os << "member " << m << " delivered payload '" << d.payload
           << "' more than once";
        result.ok = false;
        result.violations.push_back(os.str());
      }
    }
  }
  return result;
}

MonitorResult CheckVirtualSynchrony(const std::vector<std::vector<std::string>>& per_view_sets) {
  MonitorResult result;
  for (size_t m = 1; m < per_view_sets.size(); m++) {
    std::multiset<std::string> a(per_view_sets[0].begin(), per_view_sets[0].end());
    std::multiset<std::string> b(per_view_sets[m].begin(), per_view_sets[m].end());
    if (a != b) {
      std::ostringstream os;
      os << "survivor " << m << " delivered a different message set in the view than survivor 0"
         << " (" << b.size() << " vs " << a.size() << " messages)";
      result.ok = false;
      result.violations.push_back(os.str());
    }
  }
  return result;
}

}  // namespace ensemble
