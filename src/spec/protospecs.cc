#include "src/spec/protospecs.h"

#include <sstream>

#include "src/spec/netspecs.h"

namespace ensemble {

namespace {
bool MatchCall(const std::string& label, const std::string& fn, std::string* arg) {
  if (label.size() < fn.size() + 2 || label.compare(0, fn.size(), fn) != 0 ||
      label[fn.size()] != '(' || label.back() != ')') {
    return false;
  }
  *arg = label.substr(fn.size() + 1, label.size() - fn.size() - 2);
  return true;
}

std::vector<std::string> SplitArgs(const std::string& arg) {
  std::vector<std::string> out;
  size_t pos = 0;
  while (true) {
    size_t comma = arg.find(',', pos);
    if (comma == std::string::npos) {
      out.push_back(arg.substr(pos));
      break;
    }
    out.push_back(arg.substr(pos, comma - pos));
    pos = comma + 1;
  }
  return out;
}
}  // namespace

// ---------------------------------------------------------------------------
// FifoProtocolSpec
// ---------------------------------------------------------------------------

std::vector<Ioa::Action> FifoProtocolSpec::Enabled() const {
  std::vector<Action> out;
  // Above.Send: the next scripted application send.
  if (next_ < script_.size()) {
    const auto& [dst, msg] = script_[next_];
    out.push_back({"ASend(" + std::to_string(process_) + "," + std::to_string(dst) + "," +
                       msg + ")",
                   true});
  }
  // Below.Send: transmit (or retransmit) anything buffered.
  for (const auto& [dst, buf] : sendbuf_) {
    for (const auto& [seq, msg] : buf) {
      out.push_back({"NetSend(" + std::to_string(process_) + "," + std::to_string(dst) + "," +
                         std::to_string(seq) + "," + msg + ")",
                     false});
    }
  }
  // Above.Deliver: the head of the ready queue.
  if (!ready_.empty()) {
    out.push_back({"ADeliver(" + std::to_string(process_) + "," +
                       std::to_string(ready_.front().first) + "," + ready_.front().second +
                       ")",
                   true});
  }
  // Below.Deliver for any label addressed to us is enabled by Handles/Apply;
  // the network side proposes the labels, so we do not enumerate them here.
  return out;
}

bool FifoProtocolSpec::Handles(const std::string& label) const {
  std::string arg;
  if (MatchCall(label, "ASend", &arg) || MatchCall(label, "ADeliver", &arg)) {
    return SplitArgs(arg)[0] == std::to_string(process_);
  }
  if (MatchCall(label, "NetSend", &arg)) {
    return SplitArgs(arg)[0] == std::to_string(process_);
  }
  if (MatchCall(label, "NetDeliver", &arg)) {
    // Payload is "src,dst,seq,msg"; we consume those addressed to us.
    std::vector<std::string> parts = SplitArgs(arg);
    return parts.size() == 4 && parts[1] == std::to_string(process_);
  }
  return false;
}

bool FifoProtocolSpec::Apply(const std::string& label) {
  std::string arg;
  if (MatchCall(label, "ASend", &arg)) {
    if (next_ >= script_.size()) {
      return false;
    }
    const auto& [dst, msg] = script_[next_];
    std::vector<std::string> parts = SplitArgs(arg);
    if (parts[1] != std::to_string(dst) || parts[2] != msg) {
      return false;
    }
    int seq = send_seq_[dst]++;
    sendbuf_[dst].push_back({seq, msg});
    next_++;
    return true;
  }
  if (MatchCall(label, "NetSend", &arg)) {
    return true;  // Transmission has no local effect; the buffer persists.
  }
  if (MatchCall(label, "NetDeliver", &arg)) {
    std::vector<std::string> parts = SplitArgs(arg);
    if (parts.size() != 4) {
      return false;
    }
    int src = std::stoi(parts[0]);
    int seq = std::stoi(parts[2]);
    const std::string& msg = parts[3];
    int& want = expected_[src];
    if (seq == want) {
      ready_.push_back({src, msg});
      want++;
    }
    // Duplicates and out-of-order arrivals are consumed without effect; the
    // sender's retransmissions (NetSend) eventually fill the gap.
    return true;
  }
  if (MatchCall(label, "ADeliver", &arg)) {
    std::vector<std::string> parts = SplitArgs(arg);
    if (ready_.empty() || parts.size() != 3 ||
        parts[1] != std::to_string(ready_.front().first) || parts[2] != ready_.front().second) {
      return false;
    }
    ready_.pop_front();
    return true;
  }
  return false;
}

std::unique_ptr<Ioa> FifoProtocolSpec::Clone() const {
  return std::make_unique<FifoProtocolSpec>(*this);
}

std::string FifoProtocolSpec::StateString() const {
  std::ostringstream os;
  os << "p" << process_ << "{next=" << next_ << " ready=";
  for (const auto& [src, msg] : ready_) {
    os << src << ":" << msg << "|";
  }
  os << " exp=";
  for (const auto& [src, e] : expected_) {
    os << src << ":" << e << "|";
  }
  os << "}";
  return os.str();
}

std::unique_ptr<Ioa> ComposeFifoSystem(
    const std::vector<std::vector<std::pair<int, std::string>>>& scripts) {
  auto sys = std::make_unique<CompositeIoa>();
  for (size_t p = 0; p < scripts.size(); p++) {
    sys->Add(std::make_unique<FifoProtocolSpec>(static_cast<int>(p), scripts[p]));
  }
  sys->Add(std::make_unique<LossyNetworkSpec>("Net", /*external=*/false));
  return sys;
}

// ---------------------------------------------------------------------------
// TotalOrderSpec
// ---------------------------------------------------------------------------

std::vector<Ioa::Action> TotalOrderSpec::Enabled() const {
  std::vector<Action> out;
  for (const std::string& m : pending_) {
    out.push_back({"Commit(" + m + ")", false});
  }
  for (int p = 0; p < members_; p++) {
    auto it = delivered_.find(p);
    size_t done = it == delivered_.end() ? 0 : it->second;
    if (done < committed_.size()) {
      out.push_back({"TDeliver(" + std::to_string(p) + "," + committed_[done] + ")", true});
    }
  }
  return out;
}

bool TotalOrderSpec::Handles(const std::string& label) const {
  std::string arg;
  return MatchCall(label, "Cast", &arg) || MatchCall(label, "Commit", &arg) ||
         MatchCall(label, "TDeliver", &arg);
}

bool TotalOrderSpec::Apply(const std::string& label) {
  std::string arg;
  if (MatchCall(label, "Cast", &arg)) {
    // Cast(p,m): the caster's identity does not matter to the order.
    std::vector<std::string> parts = SplitArgs(arg);
    pending_.insert(parts.size() == 2 ? parts[1] : arg);
    return true;
  }
  if (MatchCall(label, "Commit", &arg)) {
    auto it = pending_.find(arg);
    if (it == pending_.end()) {
      return false;
    }
    pending_.erase(it);
    committed_.push_back(arg);
    return true;
  }
  if (MatchCall(label, "TDeliver", &arg)) {
    std::vector<std::string> parts = SplitArgs(arg);
    if (parts.size() != 2) {
      return false;
    }
    int p = std::stoi(parts[0]);
    size_t done = delivered_[p];
    if (done >= committed_.size() || committed_[done] != parts[1]) {
      return false;
    }
    delivered_[p] = done + 1;
    return true;
  }
  return false;
}

std::unique_ptr<Ioa> TotalOrderSpec::Clone() const {
  return std::make_unique<TotalOrderSpec>(*this);
}

std::string TotalOrderSpec::StateString() const {
  std::ostringstream os;
  os << "to{";
  for (const std::string& m : committed_) {
    os << m << "|";
  }
  os << " pend=" << pending_.size() << " del=";
  for (const auto& [p, n] : delivered_) {
    os << p << ":" << n << "|";
  }
  os << "}";
  return os.str();
}

// ---------------------------------------------------------------------------
// TokenTotalModel
// ---------------------------------------------------------------------------

std::vector<Ioa::Action> TokenTotalModel::Enabled() const {
  std::vector<Action> out;
  for (size_t p = 0; p < scripts_.size(); p++) {
    if (next_script_[p] < scripts_[p].size()) {
      out.push_back(
          {"Cast(" + std::to_string(p) + "," + scripts_[p][next_script_[p]] + ")", true});
    }
    if (!ready_[p].empty()) {
      out.push_back({"TDeliver(" + std::to_string(p) + "," + ready_[p].front() + ")", true});
    }
    for (const auto& [g, m] : net_) {
      out.push_back({"NetDeliver(" + std::to_string(p) + "," + std::to_string(g) + "," + m +
                         ")",
                     false});
    }
  }
  return out;
}

bool TokenTotalModel::Handles(const std::string& label) const {
  std::string arg;
  return MatchCall(label, "Cast", &arg) || MatchCall(label, "NetDeliver", &arg) ||
         MatchCall(label, "TDeliver", &arg);
}

void TokenTotalModel::Drain(size_t p) {
  auto& hb = holdback_[p];
  while (true) {
    auto it = hb.find(expected_[p]);
    if (it == hb.end()) {
      break;
    }
    ready_[p].push_back(it->second);
    hb.erase(it);
    expected_[p]++;
  }
}

bool TokenTotalModel::Apply(const std::string& label) {
  std::string arg;
  if (MatchCall(label, "Cast", &arg)) {
    std::vector<std::string> parts = SplitArgs(arg);
    size_t p = static_cast<size_t>(std::stoi(parts[0]));
    if (next_script_[p] >= scripts_[p].size() || scripts_[p][next_script_[p]] != parts[1]) {
      return false;
    }
    next_script_[p]++;
    // The (conceptual) token holder stamps the global sequence number at
    // cast time; the broadcast network then reorders freely.
    net_.insert({gseq_next_++, parts[1]});
    return true;
  }
  if (MatchCall(label, "NetDeliver", &arg)) {
    std::vector<std::string> parts = SplitArgs(arg);
    if (parts.size() != 3) {
      return false;
    }
    size_t p = static_cast<size_t>(std::stoi(parts[0]));
    uint32_t g = static_cast<uint32_t>(std::stoul(parts[1]));
    const std::string& m = parts[2];
    if (net_.find({g, m}) == net_.end()) {
      return false;
    }
    if (buggy_) {
      // THE BUG (total_buggy): `>=` where the protocol needs `==`.
      if (g >= expected_[p]) {
        ready_[p].push_back(m);
        expected_[p] = g + 1;
      }
    } else {
      if (g >= expected_[p] && holdback_[p].find(g) == holdback_[p].end()) {
        holdback_[p][g] = m;
        Drain(p);
      }
    }
    return true;
  }
  if (MatchCall(label, "TDeliver", &arg)) {
    std::vector<std::string> parts = SplitArgs(arg);
    size_t p = static_cast<size_t>(std::stoi(parts[0]));
    if (ready_[p].empty() || ready_[p].front() != parts[1]) {
      return false;
    }
    ready_[p].pop_front();
    return true;
  }
  return false;
}

std::unique_ptr<Ioa> TokenTotalModel::Clone() const {
  return std::make_unique<TokenTotalModel>(*this);
}

std::string TokenTotalModel::StateString() const {
  std::ostringstream os;
  os << "tt{g=" << gseq_next_;
  for (size_t p = 0; p < expected_.size(); p++) {
    os << " e" << p << "=" << expected_[p] << "/r" << ready_[p].size();
  }
  os << " net=" << net_.size() << "}";
  return os.str();
}

}  // namespace ensemble
