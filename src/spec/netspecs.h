// Abstract network specifications — the paper's Figure 2.
//
//   FifoNetworkSpec      = Fig. 2(a): one global in-transit queue; Deliver
//                          only at the head.
//   PairwiseFifoNetwork  = the per-(src,dst) variant real protocols provide
//                          when several senders interleave.
//   LossyNetworkSpec     = Fig. 2(b): an in-transit multiset; Deliver any
//                          element (repeatedly — duplication), internal Drop
//                          loses elements.
//
// Labels (synchronization points for composition):
//   "Send(dst,msg)"  "Deliver(dst,msg)"          — Fifo/global specs
//   "Send(src,dst,msg)" "Deliver(src,dst,msg)"   — pairwise spec
//   "<prefix>Send(...)" etc. for LossyNetworkSpec so it can serve as the
//   transport under concrete protocol specs (usually with external=false).

#ifndef ENSEMBLE_SRC_SPEC_NETSPECS_H_
#define ENSEMBLE_SRC_SPEC_NETSPECS_H_

#include <deque>
#include <map>
#include <string>

#include "src/spec/ioa.h"

namespace ensemble {

class FifoNetworkSpec : public Ioa {
 public:
  FifoNetworkSpec() = default;

  std::string name() const override { return "FifoNetwork"; }
  std::vector<Action> Enabled() const override;
  bool Handles(const std::string& label) const override;
  bool Apply(const std::string& label) override;
  std::unique_ptr<Ioa> Clone() const override;
  std::string StateString() const override;

  // The Send alphabet is open: the spec accepts any Send label and queues
  // its argument.  To keep Enabled() finite, the spec is used as an acceptor
  // (Apply / SpecAcceptsTrace); Enabled() reports deliveries plus the sends
  // of a registered alphabet.
  void AllowSend(const std::string& dst_msg) { alphabet_.push_back(dst_msg); }

 private:
  std::deque<std::string> in_transit_;  // "dst,msg" in order.
  std::vector<std::string> alphabet_;
};

class PairwiseFifoNetworkSpec : public Ioa {
 public:
  PairwiseFifoNetworkSpec() = default;

  std::string name() const override { return "PairwiseFifoNetwork"; }
  std::vector<Action> Enabled() const override;
  bool Handles(const std::string& label) const override;
  bool Apply(const std::string& label) override;
  std::unique_ptr<Ioa> Clone() const override;
  std::string StateString() const override;

  void AllowSend(const std::string& src_dst_msg) { alphabet_.push_back(src_dst_msg); }

 private:
  // Key "src,dst" -> queued msgs.
  std::map<std::string, std::deque<std::string>> in_transit_;
  std::vector<std::string> alphabet_;
};

class LossyNetworkSpec : public Ioa {
 public:
  explicit LossyNetworkSpec(std::string prefix = "", bool external = true)
      : prefix_(std::move(prefix)), external_(external) {}

  std::string name() const override { return prefix_ + "LossyNetwork"; }
  std::vector<Action> Enabled() const override;
  bool Handles(const std::string& label) const override;
  bool Apply(const std::string& label) override;
  bool CanApply(const std::string& label) const override;
  std::unique_ptr<Ioa> Clone() const override;
  std::string StateString() const override;

  void AllowSend(const std::string& payload) { alphabet_.push_back(payload); }

 private:
  std::string prefix_;
  bool external_;
  std::map<std::string, int> in_transit_;  // payload -> multiplicity.
  std::vector<std::string> alphabet_;
};

}  // namespace ensemble

#endif  // ENSEMBLE_SRC_SPEC_NETSPECS_H_
