// top — the topmost boundary layer of the small stacks.
//
// Swallows stray control events so nothing unexpected escapes to the
// application, answers kBlock with kBlockOk, and passes messages through.

#ifndef ENSEMBLE_SRC_LAYERS_TOP_H_
#define ENSEMBLE_SRC_LAYERS_TOP_H_

#include "src/stack/layer.h"

namespace ensemble {

struct TopFast {
  uint8_t enabled = 0;
};

class TopLayer : public Layer {
 public:
  explicit TopLayer(const LayerParams& params) : Layer(LayerId::kTop) {}

  void Dn(Event ev, EventSink& sink) override;
  void Up(Event ev, EventSink& sink) override;
  void* FastState() override { return &fast_; }

 private:
  TopFast fast_;
};

}  // namespace ensemble

#endif  // ENSEMBLE_SRC_LAYERS_TOP_H_
