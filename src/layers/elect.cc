#include "src/layers/elect.h"

#include "src/util/hash.h"

namespace ensemble {

ENSEMBLE_REGISTER_LAYER(LayerId::kElect, ElectLayer);

void ElectLayer::Recompute(EventSink& sink) {
  Rank c = 0;
  while (c < static_cast<Rank>(nmembers_) && suspected_.count(c) > 0) {
    c++;
  }
  coord_ = c;
  if (coord_ == rank_ && !announced_) {
    announced_ = true;
    sink.PassUp(Event::OfType(EventType::kElect));
  }
}

void ElectLayer::Dn(Event ev, EventSink& sink) {
  if (ev.type == EventType::kView) {
    NoteView(ev);
    suspected_.clear();
    coord_ = 0;
    announced_ = false;
  }
  sink.PassDn(std::move(ev));
}

void ElectLayer::Up(Event ev, EventSink& sink) {
  switch (ev.type) {
    case EventType::kSuspect:
      suspected_.insert(ev.origin);
      sink.PassUp(std::move(ev));
      Recompute(sink);
      return;
    case EventType::kInit:
    case EventType::kView:
      NoteView(ev);
      suspected_.clear();
      coord_ = 0;
      announced_ = false;
      sink.PassUp(std::move(ev));
      Recompute(sink);
      return;
    default:
      sink.PassUp(std::move(ev));
      return;
  }
}

uint64_t ElectLayer::StateDigest() const {
  uint64_t h = kFnvOffset;
  h = FnvMixU64(h, static_cast<uint64_t>(coord_));
  h = FnvMixU64(h, suspected_.size());
  h = FnvMixU64(h, announced_);
  return h;
}

}  // namespace ensemble
