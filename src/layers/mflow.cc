#include "src/layers/mflow.h"

#include <algorithm>

#include "src/marshal/header_desc.h"
#include "src/util/hash.h"
#include "src/util/logging.h"

namespace ensemble {

ENSEMBLE_REGISTER_HEADER(MflowHeader, LayerId::kMflow, ENS_FIELD(MflowHeader, kU8, kind),
                         ENS_FIELD(MflowHeader, kU32, credits));
ENSEMBLE_REGISTER_LAYER(LayerId::kMflow, MflowLayer);

void MflowLayer::RecomputeMinGranted() {
  if (granted_to_me_.empty()) {
    // No peers: self-flow-control is meaningless; keep the window open.
    fast_.min_granted = fast_.sent + window_;
    return;
  }
  uint32_t m = UINT32_MAX;
  for (const auto& [rank, granted] : granted_to_me_) {
    m = std::min(m, granted);
  }
  fast_.min_granted = m;
}

bool MflowLayer::NoGrantDue(Rank origin) {
  const RecvSide& r = recv_[origin];
  // A grant falls due when consumed crosses the next half-window boundary.
  return (r.consumed + 1) % (window_ / 2) != 0;
}

bool MflowLayer::FastConsume(Rank origin) {
  RecvSide& r = recv_[origin];
  r.consumed++;
  return r.consumed % (window_ / 2) != 0;
}

void MflowLayer::SendGrant(Rank origin, EventSink& sink) {
  RecvSide& r = recv_[origin];
  r.granted = r.consumed + window_;
  Event grant = Event::Send(origin, Iovec());
  grant.hdrs.Push(LayerId::kMflow, MflowHeader{kMflowCredit, r.granted});
  sink.PassDn(std::move(grant));
}

void MflowLayer::Dn(Event ev, EventSink& sink) {
  switch (ev.type) {
    case EventType::kCast: {
      if (!fast_.HasCredit()) {
        pending_.push_back(std::move(ev));
        return;
      }
      fast_.sent++;
      ev.hdrs.Push(LayerId::kMflow, MflowHeader{kMflowData, 0});
      sink.PassDn(std::move(ev));
      return;
    }
    case EventType::kSend:
      ev.hdrs.Push(LayerId::kMflow, MflowHeader{kMflowPass, 0});
      sink.PassDn(std::move(ev));
      return;
    case EventType::kView:
      NoteView(ev);
      ResetForView();
      sink.PassDn(std::move(ev));
      return;
    default:
      sink.PassDn(std::move(ev));
      return;
  }
}

void MflowLayer::Up(Event ev, EventSink& sink) {
  switch (ev.type) {
    case EventType::kDeliverCast: {
      MflowHeader hdr = ev.hdrs.Pop<MflowHeader>(LayerId::kMflow);
      ENS_CHECK(hdr.kind == kMflowData);
      Rank origin = ev.origin;
      sink.PassUp(std::move(ev));
      if (!FastConsume(origin)) {
        SendGrant(origin, sink);
      }
      return;
    }
    case EventType::kDeliverSend: {
      MflowHeader hdr = ev.hdrs.Pop<MflowHeader>(LayerId::kMflow);
      if (hdr.kind == kMflowCredit) {
        uint32_t& granted = granted_to_me_[ev.origin];
        granted = std::max(granted, hdr.credits);
        RecomputeMinGranted();
        FlushPending(sink);
        return;
      }
      ENS_CHECK(hdr.kind == kMflowPass);
      sink.PassUp(std::move(ev));
      return;
    }
    case EventType::kInit:
      NoteView(ev);
      ResetForView();
      sink.PassUp(std::move(ev));
      return;
    default:
      sink.PassUp(std::move(ev));
      return;
  }
}

void MflowLayer::FlushPending(EventSink& sink) {
  while (!pending_.empty() && fast_.HasCredit()) {
    Event ev = std::move(pending_.front());
    pending_.pop_front();
    fast_.sent++;
    ev.hdrs.Push(LayerId::kMflow, MflowHeader{kMflowData, 0});
    sink.PassDn(std::move(ev));
  }
}

void MflowLayer::ResetForView() {
  fast_.sent = 0;
  fast_.solo = view_ && nmembers_ <= 1 ? 1 : 0;
  granted_to_me_.clear();
  recv_.clear();
  // Everyone starts each view with a full window from every peer.
  if (view_) {
    for (Rank r = 0; r < nmembers_; r++) {
      if (r != rank_) {
        granted_to_me_[r] = window_;
        recv_[r] = RecvSide{0, window_};
      }
    }
  }
  RecomputeMinGranted();
  // Note: pending_ casts survive a view change; they will be flushed as
  // fresh-view credit allows.
}

uint64_t MflowLayer::StateDigest() const {
  uint64_t h = kFnvOffset;
  h = FnvMixU64(h, fast_.sent);
  h = FnvMixU64(h, fast_.min_granted);
  for (const auto& [r, g] : granted_to_me_) {
    h = FnvMixU64(h, static_cast<uint64_t>(r));
    h = FnvMixU64(h, g);
  }
  for (const auto& [r, rs] : recv_) {
    h = FnvMixU64(h, rs.consumed);
    h = FnvMixU64(h, rs.granted);
  }
  h = FnvMixU64(h, pending_.size());
  return h;
}

}  // namespace ensemble
