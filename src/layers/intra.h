// intra — intra-group membership coordination (view changes).
//
// The coordinator (announced by elect) reacts to failure suspicions by
// flushing the view (through sync), waiting a settle period for in-flight
// reliable traffic to finish recovering, then broadcasting the new view —
// the old membership minus the suspects.  Every member that finds itself in
// the new view installs it: a kView event travels up (application) and down
// (re-initializing the transport-side layers).
//
// This is a deliberately compact membership protocol: it provides the view
// synchrony the tests assert under the failure patterns exercised there, not
// Ensemble's full partition-merge machinery (see DESIGN.md).

#ifndef ENSEMBLE_SRC_LAYERS_INTRA_H_
#define ENSEMBLE_SRC_LAYERS_INTRA_H_

#include <cstdint>
#include <set>

#include "src/stack/layer.h"

namespace ensemble {

struct IntraHeader {
  uint8_t kind;  // IntraKind.
};

enum IntraKind : uint8_t {
  kIntraPassCast = 0,
  kIntraPassSend = 1,
  kIntraView = 2,
};

class IntraLayer : public Layer {
 public:
  explicit IntraLayer(const LayerParams& params)
      : Layer(LayerId::kIntra), settle_(params.retrans_timeout * 4) {}

  void Dn(Event ev, EventSink& sink) override;
  void Up(Event ev, EventSink& sink) override;
  uint64_t StateDigest() const override;

  bool view_change_in_progress() const { return phase_ != Phase::kIdle; }

 private:
  enum class Phase : uint8_t { kIdle, kFlushing, kSettling };

  void StartViewChange(EventSink& sink);
  void MaybeFinishFlush(EventSink& sink);
  void InstallAndBroadcast(EventSink& sink);
  ViewRef BuildNewView() const;
  void InstallView(ViewRef v, EventSink& sink);

  VTime settle_;
  bool am_coord_ = false;
  Phase phase_ = Phase::kIdle;
  std::set<Rank> suspects_;
  std::set<Rank> block_oks_;
  VTime now_ = 0;
  VTime settle_until_ = 0;
};

}  // namespace ensemble

#endif  // ENSEMBLE_SRC_LAYERS_INTRA_H_
