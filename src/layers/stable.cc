#include "src/layers/stable.h"

#include <algorithm>

#include "src/util/hash.h"

namespace ensemble {

ENSEMBLE_REGISTER_LAYER(LayerId::kStable, StableLayer);

uint64_t StableLayer::GlobalMin() const {
  if (stable_.empty()) {
    return 0;
  }
  return *std::min_element(stable_.begin(), stable_.end());
}

void StableLayer::Dn(Event ev, EventSink& sink) {
  if (ev.type == EventType::kView) {
    NoteView(ev);
    stable_.clear();
  }
  sink.PassDn(std::move(ev));
}

void StableLayer::Up(Event ev, EventSink& sink) {
  switch (ev.type) {
    case EventType::kStable:
      if (ev.vec == stable_) {
        return;  // No news; consolidate away the repeat.
      }
      stable_ = ev.vec;
      sink.PassUp(std::move(ev));
      return;
    case EventType::kInit:
    case EventType::kView:
      NoteView(ev);
      stable_.clear();
      sink.PassUp(std::move(ev));
      return;
    default:
      sink.PassUp(std::move(ev));
      return;
  }
}

uint64_t StableLayer::StateDigest() const {
  uint64_t h = kFnvOffset;
  for (uint64_t s : stable_) {
    h = FnvMixU64(h, s);
  }
  return h;
}

}  // namespace ensemble
