// elect — coordinator election.
//
// The coordinator is the lowest-ranked member not suspected of failure.
// This layer watches kSuspect events from the failure detector, recomputes
// the coordinator, and announces kElect upward the moment this member takes
// over.  (Rank 0 is the coordinator of a fresh view, announced at Init.)

#ifndef ENSEMBLE_SRC_LAYERS_ELECT_H_
#define ENSEMBLE_SRC_LAYERS_ELECT_H_

#include <set>

#include "src/stack/layer.h"

namespace ensemble {

class ElectLayer : public Layer {
 public:
  explicit ElectLayer(const LayerParams& params) : Layer(LayerId::kElect) {}

  void Dn(Event ev, EventSink& sink) override;
  void Up(Event ev, EventSink& sink) override;
  uint64_t StateDigest() const override;

  Rank coordinator() const { return coord_; }
  bool IsCoordinator() const { return coord_ == rank_; }

 private:
  void Recompute(EventSink& sink);

  std::set<Rank> suspected_;
  Rank coord_ = 0;
  bool announced_ = false;
};

}  // namespace ensemble

#endif  // ENSEMBLE_SRC_LAYERS_ELECT_H_
