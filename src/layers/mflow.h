// mflow — multicast flow control.
//
// Window/credit scheme: a sender may have at most `window` unacknowledged
// casts outstanding per receiver.  Each receiver returns a credit grant
// (point-to-point) after consuming half a window of casts from that sender.
// Casts that find no credit are queued and released when credits arrive
// (the non-common case the bypass CCP excludes).

#ifndef ENSEMBLE_SRC_LAYERS_MFLOW_H_
#define ENSEMBLE_SRC_LAYERS_MFLOW_H_

#include <cstdint>
#include <deque>
#include <map>
#include <vector>

#include "src/stack/layer.h"

namespace ensemble {

struct MflowHeader {
  uint8_t kind;      // MflowKind.
  uint32_t credits;  // Credit: new cumulative grant total.
};

enum MflowKind : uint8_t {
  kMflowData = 0,
  kMflowPass = 1,    // Upper-layer point-to-point message passing through.
  kMflowCredit = 2,  // Credit grant.
};

struct MflowFast {
  uint32_t sent = 0;         // Casts I have sent (cumulative).
  uint32_t min_granted = 0;  // min over peers of their cumulative grant to me.
  uint8_t solo = 0;          // Single-member view: flow control is moot.
  class MflowLayer* self = nullptr;

  bool HasCredit() const { return solo != 0 || sent < min_granted; }
};

class MflowLayer : public Layer {
 public:
  explicit MflowLayer(const LayerParams& params)
      : Layer(LayerId::kMflow), window_(params.mflow_window) {
    fast_.self = this;
  }

  void Dn(Event ev, EventSink& sink) override;
  void Up(Event ev, EventSink& sink) override;
  void* FastState() override { return &fast_; }
  uint64_t StateDigest() const override;

  MflowFast& fast() { return fast_; }
  // Receive-side bookkeeping for the bypass: counts a consumed cast from
  // `origin`; returns true when no credit grant fell due (the common case).
  bool FastConsume(Rank origin);
  // True when consuming one more cast from `origin` will NOT trigger a grant.
  bool NoGrantDue(Rank origin);
  size_t QueuedCasts() const { return pending_.size(); }

 private:
  struct RecvSide {
    uint32_t consumed = 0;  // Casts consumed from this sender.
    uint32_t granted = 0;   // Cumulative credit total I granted them.
  };

  void RecomputeMinGranted();
  void FlushPending(EventSink& sink);
  void SendGrant(Rank origin, EventSink& sink);
  void ResetForView();

  MflowFast fast_;
  uint32_t window_;
  std::map<Rank, uint32_t> granted_to_me_;  // Peer -> their cumulative grant.
  std::map<Rank, RecvSide> recv_;
  std::deque<Event> pending_;  // Casts waiting for credit.
};

}  // namespace ensemble

#endif  // ENSEMBLE_SRC_LAYERS_MFLOW_H_
