#include "src/layers/suspect.h"

#include "src/marshal/header_desc.h"
#include "src/util/hash.h"

namespace ensemble {

ENSEMBLE_REGISTER_HEADER(SuspectHeader, LayerId::kSuspect, ENS_FIELD(SuspectHeader, kU8, kind));
ENSEMBLE_REGISTER_LAYER(LayerId::kSuspect, SuspectLayer);

void SuspectLayer::Dn(Event ev, EventSink& sink) {
  switch (ev.type) {
    case EventType::kCast:
      ev.hdrs.Push(LayerId::kSuspect, SuspectHeader{kSuspectData});
      sink.PassDn(std::move(ev));
      return;
    case EventType::kTimer: {
      // Heartbeat every tick (the harness chooses the tick period).
      Event hb = Event::Cast(Iovec());
      hb.hdrs.Push(LayerId::kSuspect, SuspectHeader{kSuspectHeartbeat});
      sink.PassDn(std::move(hb));
      for (Rank r = 0; r < static_cast<Rank>(idle_.size()); r++) {
        if (r == rank_) {
          continue;
        }
        idle_[static_cast<size_t>(r)]++;
        if (idle_[static_cast<size_t>(r)] > max_idle_ && suspected_.insert(r).second) {
          Event sus = Event::OfType(EventType::kSuspect);
          sus.origin = r;
          sink.PassUp(std::move(sus));
        }
      }
      sink.PassDn(std::move(ev));
      return;
    }
    case EventType::kView:
      NoteView(ev);
      ResetForView();
      sink.PassDn(std::move(ev));
      return;
    default:
      sink.PassDn(std::move(ev));
      return;
  }
}

void SuspectLayer::Up(Event ev, EventSink& sink) {
  switch (ev.type) {
    case EventType::kDeliverCast: {
      SuspectHeader hdr = ev.hdrs.Pop<SuspectHeader>(LayerId::kSuspect);
      if (ev.origin >= 0 && static_cast<size_t>(ev.origin) < idle_.size()) {
        idle_[static_cast<size_t>(ev.origin)] = 0;
      }
      if (hdr.kind == kSuspectHeartbeat) {
        return;  // Consumed here.
      }
      sink.PassUp(std::move(ev));
      return;
    }
    case EventType::kDeliverSend:
      // No header of ours on sends, but hearing from the peer still counts.
      if (ev.origin >= 0 && static_cast<size_t>(ev.origin) < idle_.size()) {
        idle_[static_cast<size_t>(ev.origin)] = 0;
      }
      sink.PassUp(std::move(ev));
      return;
    case EventType::kInit:
      NoteView(ev);
      ResetForView();
      sink.PassUp(std::move(ev));
      return;
    default:
      sink.PassUp(std::move(ev));
      return;
  }
}

void SuspectLayer::ResetForView() {
  idle_.assign(view_ ? static_cast<size_t>(nmembers_) : 0, 0);
  suspected_.clear();
}

uint64_t SuspectLayer::StateDigest() const {
  uint64_t h = kFnvOffset;
  for (uint32_t i : idle_) {
    h = FnvMixU64(h, i);
  }
  h = FnvMixU64(h, suspected_.size());
  return h;
}

}  // namespace ensemble
