#include "src/layers/total_check.h"

#include "src/marshal/header_desc.h"
#include "src/util/hash.h"

namespace ensemble {

ENSEMBLE_REGISTER_HEADER(TotalCheckHeader, LayerId::kTotalCheck,
                         ENS_FIELD(TotalCheckHeader, kU32, delivered_at_send));
ENSEMBLE_REGISTER_LAYER(LayerId::kTotalCheck, TotalCheckLayer);

void TotalCheckLayer::Dn(Event ev, EventSink& sink) {
  if (ev.type == EventType::kCast) {
    ev.hdrs.Push(LayerId::kTotalCheck, TotalCheckHeader{delivered_});
  } else if (ev.type == EventType::kView) {
    NoteView(ev);
    delivered_ = 0;
  }
  sink.PassDn(std::move(ev));
}

void TotalCheckLayer::Up(Event ev, EventSink& sink) {
  switch (ev.type) {
    case EventType::kDeliverCast: {
      TotalCheckHeader hdr = ev.hdrs.Pop<TotalCheckHeader>(LayerId::kTotalCheck);
      // Total order implies causality here: everything the sender had
      // delivered before casting must already be delivered here.
      if (delivered_ < hdr.delivered_at_send) {
        violations_++;
      }
      delivered_++;
      sink.PassUp(std::move(ev));
      return;
    }
    case EventType::kInit:
    case EventType::kView:
      NoteView(ev);
      delivered_ = 0;
      sink.PassUp(std::move(ev));
      return;
    default:
      sink.PassUp(std::move(ev));
      return;
  }
}

uint64_t TotalCheckLayer::StateDigest() const {
  uint64_t h = kFnvOffset;
  h = FnvMixU64(h, delivered_);
  h = FnvMixU64(h, violations_);
  return h;
}

}  // namespace ensemble
