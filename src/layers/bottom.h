// bottom — the lowest micro-protocol layer.
//
// Stamps every outgoing message with the current view counter and drops
// stale-view traffic on the way up; gates all traffic on `enabled` (the layer
// is disabled until Init and during teardown).  The paper's example
// optimization theorem is about exactly this layer: "under the assumption
// that the layer is enabled, a down-going send-event does not change the
// state s_bottom and is passed down to the next layer, with its header hdr
// extended to Full_nohdr(hdr)".

#ifndef ENSEMBLE_SRC_LAYERS_BOTTOM_H_
#define ENSEMBLE_SRC_LAYERS_BOTTOM_H_

#include <cstdint>

#include "src/stack/layer.h"

namespace ensemble {

struct BottomHeader {
  uint8_t kind;      // 0 = data (the only kind; field kept for uniformity).
  uint32_t view_ctr; // View counter the message was sent in.
};

// Hot state shared with the compiled bypass.
struct BottomFast {
  uint8_t enabled = 0;
  uint32_t view_ctr = 0;
};

class BottomLayer : public Layer {
 public:
  explicit BottomLayer(const LayerParams& params) : Layer(LayerId::kBottom) {}

  void Dn(Event ev, EventSink& sink) override;
  void Up(Event ev, EventSink& sink) override;
  void* FastState() override { return &fast_; }
  uint64_t StateDigest() const override;

  const BottomFast& fast() const { return fast_; }

 private:
  BottomFast fast_;
};

}  // namespace ensemble

#endif  // ENSEMBLE_SRC_LAYERS_BOTTOM_H_
