// pt2ptw — point-to-point window flow control.
//
// The point-to-point counterpart of mflow: at most `window` unacknowledged
// sends outstanding per destination; the receiver grants more credit after
// consuming half a window.  Casts pass through untouched.

#ifndef ENSEMBLE_SRC_LAYERS_PT2PTW_H_
#define ENSEMBLE_SRC_LAYERS_PT2PTW_H_

#include <cstdint>
#include <deque>
#include <map>

#include "src/stack/layer.h"

namespace ensemble {

struct Pt2ptwHeader {
  uint8_t kind;      // Pt2ptwKind.
  uint32_t credits;  // Credit: new cumulative grant total.
};

enum Pt2ptwKind : uint8_t {
  kPt2ptwData = 0,
  kPt2ptwCredit = 1,
};

struct Pt2ptwFast {
  class Pt2ptwLayer* self = nullptr;
};

class Pt2ptwLayer : public Layer {
 public:
  explicit Pt2ptwLayer(const LayerParams& params)
      : Layer(LayerId::kPt2ptw), window_(params.pt2pt_window) {
    fast_.self = this;
  }

  void Dn(Event ev, EventSink& sink) override;
  void Up(Event ev, EventSink& sink) override;
  void* FastState() override { return &fast_; }
  uint64_t StateDigest() const override;

  bool HasCredit(Rank dest) {
    PeerState& p = peers_[dest];
    return p.sent < p.granted_to_me;
  }
  // Bypass hooks: consume one send credit / one receive slot.
  void FastSendConsume(Rank dest) { peers_[dest].sent++; }
  bool NoGrantDue(Rank origin) {
    PeerState& p = peers_[origin];
    return (p.consumed + 1) % (window_ / 2) != 0;
  }
  void FastConsume(Rank origin) { peers_[origin].consumed++; }
  size_t QueuedSends() const {
    size_t n = 0;
    for (const auto& [r, p] : peers_) {
      n += p.pending.size();
    }
    return n;
  }

 private:
  struct PeerState {
    uint32_t sent = 0;
    uint32_t granted_to_me = 0;
    uint32_t consumed = 0;
    uint32_t granted = 0;
    std::deque<Event> pending;
  };

  void FlushPending(Rank dest, EventSink& sink);
  void ResetForView();

  Pt2ptwFast fast_;
  uint32_t window_;
  std::map<Rank, PeerState> peers_;
};

}  // namespace ensemble

#endif  // ENSEMBLE_SRC_LAYERS_PT2PTW_H_
