#include "src/layers/total_buggy.h"

#include "src/layers/total.h"  // Shares TotalHeader and its kinds.
#include "src/marshal/header_desc.h"

namespace ensemble {

ENSEMBLE_REGISTER_LAYER(LayerId::kTotalBuggy, TotalBuggyLayer);

// Reuses TotalHeader's wire layout under its own layer id.
namespace {
const bool ens_hdr_reg_total_buggy = [] {
  RegisterHeaderDescriptor({LayerId::kTotalBuggy, sizeof(TotalHeader),
                            {ENS_FIELD(TotalHeader, kU8, kind),
                             ENS_FIELD(TotalHeader, kU32, gseq)}});
  return true;
}();
}  // namespace

void TotalBuggyLayer::Dn(Event ev, EventSink& sink) {
  switch (ev.type) {
    case EventType::kCast: {
      if (token_holder_ == rank_) {
        ev.hdrs.Push(LayerId::kTotalBuggy, TotalHeader{kTotalData, next_gseq_++});
        sink.PassDn(std::move(ev));
        return;
      }
      pending_.push_back(std::move(ev));
      if (!token_requested_) {
        token_requested_ = true;
        Event req = Event::Send(token_holder_, Iovec());
        req.hdrs.Push(LayerId::kTotalBuggy,
                      TotalHeader{kTotalTokenReq, static_cast<uint32_t>(rank_)});
        sink.PassDn(std::move(req));
      }
      return;
    }
    case EventType::kSend:
      ev.hdrs.Push(LayerId::kTotalBuggy, TotalHeader{kTotalPass, 0});
      sink.PassDn(std::move(ev));
      return;
    case EventType::kView:
      NoteView(ev);
      token_holder_ = 0;
      next_gseq_ = 0;
      expected_gseq_ = 0;
      pending_.clear();
      token_requested_ = false;
      sink.PassDn(std::move(ev));
      return;
    default:
      sink.PassDn(std::move(ev));
      return;
  }
}

void TotalBuggyLayer::Up(Event ev, EventSink& sink) {
  switch (ev.type) {
    case EventType::kDeliverCast: {
      TotalHeader hdr = ev.hdrs.Pop<TotalHeader>(LayerId::kTotalBuggy);
      // THE BUG: the correct condition is `hdr.gseq == expected_gseq_`, with
      // early arrivals held back.  Using `>=` delivers a later message
      // immediately when the network reorders, and the gap is skipped.
      if (hdr.gseq >= expected_gseq_) {
        expected_gseq_ = hdr.gseq + 1;
        sink.PassUp(std::move(ev));
      }
      return;
    }
    case EventType::kDeliverSend: {
      TotalHeader hdr = ev.hdrs.Pop<TotalHeader>(LayerId::kTotalBuggy);
      if (hdr.kind == kTotalTokenReq) {
        if (token_holder_ == rank_) {
          Rank next = static_cast<Rank>(hdr.gseq);
          token_holder_ = next;
          Event pass = Event::Send(next, Iovec());
          pass.hdrs.Push(LayerId::kTotalBuggy, TotalHeader{kTotalTokenPass, next_gseq_});
          sink.PassDn(std::move(pass));
        } else {
          Event fwd = Event::Send(token_holder_, Iovec());
          fwd.hdrs.Push(LayerId::kTotalBuggy, TotalHeader{kTotalTokenReq, hdr.gseq});
          sink.PassDn(std::move(fwd));
        }
        return;
      }
      if (hdr.kind == kTotalTokenPass) {
        token_holder_ = rank_;
        next_gseq_ = hdr.gseq;
        token_requested_ = false;
        while (!pending_.empty()) {
          Event cast = std::move(pending_.front());
          pending_.pop_front();
          cast.hdrs.Push(LayerId::kTotalBuggy, TotalHeader{kTotalData, next_gseq_++});
          sink.PassDn(std::move(cast));
        }
        return;
      }
      // kTotalPass: upper-layer point-to-point traffic.
      sink.PassUp(std::move(ev));
      return;
    }
    case EventType::kInit:
      NoteView(ev);
      sink.PassUp(std::move(ev));
      return;
    default:
      sink.PassUp(std::move(ev));
      return;
  }
}

}  // namespace ensemble
