#include "src/layers/partial_appl.h"

#include "src/util/hash.h"

namespace ensemble {

ENSEMBLE_REGISTER_LAYER(LayerId::kPartialAppl, PartialApplLayer);

void PartialApplLayer::Dn(Event ev, EventSink& sink) {
  switch (ev.type) {
    case EventType::kCast:
    case EventType::kSend:
      if (fast_.blocked) {
        queued_.push_back(std::move(ev));
        return;
      }
      sink.PassDn(std::move(ev));
      fast_.casts++;  // Deferred bookkeeping: after the critical pass-down.
      return;
    case EventType::kBlockOk:
      fast_.blocked = 1;
      sink.PassDn(std::move(ev));
      return;
    case EventType::kView:
      NoteView(ev);
      sink.PassDn(std::move(ev));
      return;
    default:
      sink.PassDn(std::move(ev));
      return;
  }
}

void PartialApplLayer::Up(Event ev, EventSink& sink) {
  switch (ev.type) {
    case EventType::kDeliverCast:
    case EventType::kDeliverSend:
      sink.PassUp(std::move(ev));
      fast_.delivered++;  // Deferred bookkeeping.
      return;
    case EventType::kBlock:
      // Tell the application, and (conservatively) agree on its behalf; a
      // real application can also send its own kBlockOk down.
      fast_.blocked = 1;
      sink.PassUp(std::move(ev));
      sink.PassDn(Event::OfType(EventType::kBlockOk));
      return;
    case EventType::kView: {
      NoteView(ev);
      fast_.blocked = 0;
      sink.PassUp(std::move(ev));
      // Release casts queued during the flush into the new view.
      while (!queued_.empty()) {
        Event q = std::move(queued_.front());
        queued_.pop_front();
        sink.PassDn(std::move(q));
      }
      return;
    }
    case EventType::kInit:
      NoteView(ev);
      sink.PassUp(std::move(ev));
      return;
    default:
      sink.PassUp(std::move(ev));
      return;
  }
}

uint64_t PartialApplLayer::StateDigest() const {
  uint64_t h = kFnvOffset;
  h = FnvMixU64(h, fast_.blocked);
  h = FnvMixU64(h, fast_.casts);
  h = FnvMixU64(h, fast_.delivered);
  h = FnvMixU64(h, queued_.size());
  return h;
}

}  // namespace ensemble
