#include "src/layers/total.h"

#include <algorithm>

#include "src/marshal/header_desc.h"
#include "src/util/hash.h"
#include "src/util/logging.h"

namespace ensemble {

ENSEMBLE_REGISTER_HEADER(TotalHeader, LayerId::kTotal, ENS_FIELD(TotalHeader, kU8, kind),
                         ENS_FIELD(TotalHeader, kU32, gseq));
ENSEMBLE_REGISTER_LAYER(LayerId::kTotal, TotalLayer);

void TotalLayer::Dn(Event ev, EventSink& sink) {
  switch (ev.type) {
    case EventType::kCast: {
      if (fast_.HoldsToken(rank_)) {
        ev.hdrs.Push(LayerId::kTotal, TotalHeader{kTotalData, fast_.next_gseq++});
        sink.PassDn(std::move(ev));
        return;
      }
      pending_.push_back(std::move(ev));
      if (!token_requested_) {
        token_requested_ = true;
        Event req = Event::Send(fast_.token_holder, Iovec());
        // The requester's rank rides in the gseq field so requests can be
        // forwarded along the chain of past holders.
        req.hdrs.Push(LayerId::kTotal,
                      TotalHeader{kTotalTokenReq, static_cast<uint32_t>(rank_)});
        sink.PassDn(std::move(req));
      }
      return;
    }
    case EventType::kSend:
      ev.hdrs.Push(LayerId::kTotal, TotalHeader{kTotalPass, 0});
      sink.PassDn(std::move(ev));
      return;
    case EventType::kView:
      NoteView(ev);
      ResetForView();
      sink.PassDn(std::move(ev));
      return;
    default:
      sink.PassDn(std::move(ev));
      return;
  }
}

void TotalLayer::Up(Event ev, EventSink& sink) {
  switch (ev.type) {
    case EventType::kDeliverCast: {
      TotalHeader hdr = ev.hdrs.Pop<TotalHeader>(LayerId::kTotal);
      ENS_CHECK(hdr.kind == kTotalData);
      if (hdr.gseq < fast_.expected_gseq) {
        return;  // Stale duplicate (should not happen above reliable layers).
      }
      holdback_.emplace(hdr.gseq, std::move(ev));
      DeliverInOrder(sink);
      return;
    }
    case EventType::kDeliverSend: {
      TotalHeader hdr = ev.hdrs.Pop<TotalHeader>(LayerId::kTotal);
      if (hdr.kind == kTotalTokenReq) {
        Rank requester = static_cast<Rank>(hdr.gseq);
        if (!fast_.HoldsToken(rank_)) {
          // We no longer hold the token: forward along our belief of who
          // does (each hop's belief was correct when it passed the token, so
          // the chain terminates at the current holder).
          Event fwd = Event::Send(fast_.token_holder, Iovec());
          fwd.hdrs.Push(LayerId::kTotal, TotalHeader{kTotalTokenReq, hdr.gseq});
          sink.PassDn(std::move(fwd));
          return;
        }
        if (std::find(token_requests_.begin(), token_requests_.end(), requester) ==
            token_requests_.end()) {
          token_requests_.push_back(requester);
        }
        MaybePassToken(sink);
        return;
      }
      if (hdr.kind == kTotalTokenPass) {
        // We now hold the token; our pending casts go out in order.
        fast_.token_holder = rank_;
        fast_.next_gseq = hdr.gseq;
        token_requested_ = false;
        while (!pending_.empty()) {
          Event cast = std::move(pending_.front());
          pending_.pop_front();
          cast.hdrs.Push(LayerId::kTotal, TotalHeader{kTotalData, fast_.next_gseq++});
          sink.PassDn(std::move(cast));
        }
        MaybePassToken(sink);
        return;
      }
      ENS_CHECK(hdr.kind == kTotalPass);
      sink.PassUp(std::move(ev));
      return;
    }
    case EventType::kInit:
      NoteView(ev);
      ResetForView();
      sink.PassUp(std::move(ev));
      return;
    default:
      sink.PassUp(std::move(ev));
      return;
  }
}

void TotalLayer::DeliverInOrder(EventSink& sink) {
  while (!holdback_.empty() && holdback_.begin()->first == fast_.expected_gseq) {
    Event ev = std::move(holdback_.begin()->second);
    holdback_.erase(holdback_.begin());
    fast_.expected_gseq++;
    sink.PassUp(std::move(ev));
  }
}

void TotalLayer::MaybePassToken(EventSink& sink) {
  if (!fast_.HoldsToken(rank_) || !pending_.empty() || token_requests_.empty()) {
    return;
  }
  Rank next = token_requests_.front();
  token_requests_.pop_front();
  if (next == rank_) {
    MaybePassToken(sink);  // Stale self-request.
    return;
  }
  fast_.token_holder = next;
  Event pass = Event::Send(next, Iovec());
  pass.hdrs.Push(LayerId::kTotal, TotalHeader{kTotalTokenPass, fast_.next_gseq});
  sink.PassDn(std::move(pass));
  // Any remaining queued requests belong to the new holder now.
  while (!token_requests_.empty()) {
    Rank waiting = token_requests_.front();
    token_requests_.pop_front();
    Event fwd = Event::Send(next, Iovec());
    fwd.hdrs.Push(LayerId::kTotal,
                  TotalHeader{kTotalTokenReq, static_cast<uint32_t>(waiting)});
    sink.PassDn(std::move(fwd));
  }
}

void TotalLayer::ResetForView() {
  fast_.my_rank = rank_;
  fast_.token_holder = 0;  // Rank 0 starts with the token each view.
  fast_.next_gseq = 0;
  fast_.expected_gseq = 0;
  pending_.clear();
  holdback_.clear();
  token_requests_.clear();
  token_requested_ = false;
}

uint64_t TotalLayer::StateDigest() const {
  uint64_t h = kFnvOffset;
  h = FnvMixU64(h, static_cast<uint64_t>(fast_.token_holder));
  h = FnvMixU64(h, fast_.next_gseq);
  h = FnvMixU64(h, fast_.expected_gseq);
  h = FnvMixU64(h, pending_.size());
  h = FnvMixU64(h, holdback_.size());
  return h;
}

}  // namespace ensemble
