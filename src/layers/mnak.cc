#include "src/layers/mnak.h"

#include "src/marshal/header_desc.h"
#include "src/util/hash.h"
#include "src/util/logging.h"

namespace ensemble {

ENSEMBLE_REGISTER_HEADER(MnakHeader, LayerId::kMnak, ENS_FIELD(MnakHeader, kU8, kind),
                         ENS_FIELD(MnakHeader, kU32, seqno), ENS_FIELD(MnakHeader, kU32, lo),
                         ENS_FIELD(MnakHeader, kU32, hi));
ENSEMBLE_REGISTER_LAYER(LayerId::kMnak, MnakLayer);

MnakLayer::PeerState& MnakLayer::Peer(Rank origin) { return peers_[origin]; }

Seqno MnakLayer::Expected(Rank origin) { return Peer(origin).window.low(); }

bool MnakLayer::NoBacklog(Rank origin) {
  PeerState& p = Peer(origin);
  return p.backlog.empty() && !p.window.HasHoles() && p.window.high() == p.window.low();
}

void MnakLayer::FastReceive(Rank origin, Seqno seqno) {
  PeerState& p = Peer(origin);
  ENS_CHECK(p.window.low() == seqno);
  p.window.Mark(seqno);
  p.window.SlideOne();
}

void MnakLayer::SaveSent(Seqno seqno, const Event& ev) {
  MnakSavedMsg saved;
  saved.payload = ev.payload;
  saved.upper_hdrs = ev.hdrs;  // Headers of the layers above us (ours not yet pushed).
  sent_.emplace(seqno, std::move(saved));
}

void MnakLayer::Dn(Event ev, EventSink& sink) {
  switch (ev.type) {
    case EventType::kCast: {
      uint32_t seqno = fast_.send_seqno++;
      SaveSent(seqno, ev);
      ev.hdrs.Push(LayerId::kMnak, MnakHeader{kMnakData, seqno, 0, 0});
      sink.PassDn(std::move(ev));
      return;
    }
    case EventType::kSend: {
      // Upper-layer point-to-point traffic passes through with a pass header.
      ev.hdrs.Push(LayerId::kMnak, MnakHeader{kMnakPass, 0, 0, 0});
      sink.PassDn(std::move(ev));
      return;
    }
    case EventType::kTimer:
      SendNaks(sink);
      AdvertiseWatermark(sink);
      sink.PassDn(std::move(ev));
      return;
    case EventType::kStable: {
      // Stability vector from the collect layer: my casts below vec[rank_]
      // are delivered everywhere; prune the retransmission buffer.
      if (rank_ != kNoRank && static_cast<size_t>(rank_) < ev.vec.size()) {
        Seqno stable = ev.vec[static_cast<size_t>(rank_)];
        sent_.erase(sent_.begin(), sent_.lower_bound(stable));
      }
      sink.PassDn(std::move(ev));
      return;
    }
    case EventType::kView:
      NoteView(ev);
      ResetForView();
      sink.PassDn(std::move(ev));
      return;
    default:
      sink.PassDn(std::move(ev));
      return;
  }
}

void MnakLayer::Up(Event ev, EventSink& sink) {
  switch (ev.type) {
    case EventType::kDeliverCast: {
      MnakHeader hdr = ev.hdrs.Pop<MnakHeader>(LayerId::kMnak);
      if (hdr.kind == kMnakHi) {
        Peer(ev.origin).window.ExtendTo(hdr.seqno);
        return;
      }
      ENS_CHECK(hdr.kind == kMnakData);
      Rank origin = ev.origin;
      PeerState& p = Peer(origin);
      if (!p.window.Mark(hdr.seqno)) {
        return;  // Duplicate.
      }
      ev.seq_hint = hdr.seqno;  // Stability accounting rides with the event.
      p.backlog.emplace(hdr.seqno, std::move(ev));
      DeliverInOrder(origin, sink);
      return;
    }
    case EventType::kDeliverSend: {
      MnakHeader hdr = ev.hdrs.Pop<MnakHeader>(LayerId::kMnak);
      switch (hdr.kind) {
        case kMnakPass:
          sink.PassUp(std::move(ev));
          return;
        case kMnakNak:
          HandleNak(ev.origin, hdr.lo, hdr.hi, sink);
          return;
        case kMnakRetrans: {
          // A retransmission of the sender's own cast: treat as cast data.
          Rank origin = ev.origin;
          PeerState& p = Peer(origin);
          if (!p.window.Mark(hdr.seqno)) {
            return;  // Already have it.
          }
          Event cast = std::move(ev);
          cast.type = EventType::kDeliverCast;
          cast.seq_hint = hdr.seqno;
          p.backlog.emplace(hdr.seqno, std::move(cast));
          DeliverInOrder(origin, sink);
          return;
        }
        default:
          ENS_CHECK_MSG(false, "mnak: bad kind " << int(hdr.kind));
          return;
      }
    }
    case EventType::kInit:
      NoteView(ev);
      ResetForView();
      sink.PassUp(std::move(ev));
      return;
    default:
      sink.PassUp(std::move(ev));
      return;
  }
}

void MnakLayer::DeliverInOrder(Rank origin, EventSink& sink) {
  PeerState& p = Peer(origin);
  while (!p.backlog.empty()) {
    auto it = p.backlog.begin();
    if (it->first != p.window.low()) {
      break;
    }
    Event ev = std::move(it->second);
    p.backlog.erase(it);
    p.window.SlideOne();
    sink.PassUp(std::move(ev));
  }
}

void MnakLayer::AdvertiseWatermark(EventSink& sink) {
  // Re-advertise while our watermark is news or while any of our casts might
  // still need retransmission (the buffer empties as stability advances).
  if (fast_.send_seqno == 0 || (advertised_ == fast_.send_seqno && sent_.empty())) {
    return;
  }
  advertised_ = fast_.send_seqno;
  Event hi = Event::Send(kNoRank, Iovec());
  hi.type = EventType::kCast;
  hi.hdrs.Push(LayerId::kMnak, MnakHeader{kMnakHi, fast_.send_seqno, 0, 0});
  sink.PassDn(std::move(hi));
}

void MnakLayer::SendNaks(EventSink& sink) {
  for (auto& [origin, p] : peers_) {
    std::vector<Seqno> holes = p.window.Holes();
    if (holes.empty()) {
      continue;
    }
    // Collapse into one range per contiguous run.
    size_t i = 0;
    while (i < holes.size()) {
      size_t j = i;
      while (j + 1 < holes.size() && holes[j + 1] == holes[j] + 1) {
        j++;
      }
      Event nak = Event::Send(origin, Iovec());
      nak.hdrs.Push(LayerId::kMnak,
                    MnakHeader{kMnakNak, 0, static_cast<uint32_t>(holes[i]),
                               static_cast<uint32_t>(holes[j] + 1)});
      sink.PassDn(std::move(nak));
      i = j + 1;
    }
  }
}

void MnakLayer::HandleNak(Rank from, uint32_t lo, uint32_t hi, EventSink& sink) {
  for (uint32_t s = lo; s < hi; s++) {
    auto it = sent_.find(s);
    if (it == sent_.end()) {
      continue;  // Pruned as stable (requester will learn via stability) or never sent.
    }
    Event re = Event::Send(from, it->second.payload);
    re.hdrs = it->second.upper_hdrs;
    re.hdrs.Push(LayerId::kMnak, MnakHeader{kMnakRetrans, s, 0, 0});
    sink.PassDn(std::move(re));
  }
}

void MnakLayer::ResetForView() {
  fast_.send_seqno = 0;
  advertised_ = 0;
  peers_.clear();
  sent_.clear();
}

uint64_t MnakLayer::StateDigest() const {
  uint64_t h = kFnvOffset;
  h = FnvMixU64(h, fast_.send_seqno);
  for (const auto& [r, p] : peers_) {
    h = FnvMixU64(h, static_cast<uint64_t>(r));
    h = FnvMixU64(h, p.window.low());
    h = FnvMixU64(h, p.backlog.size());
  }
  h = FnvMixU64(h, sent_.size());
  return h;
}

}  // namespace ensemble
