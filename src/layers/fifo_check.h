// fifo_check — a checking layer (paper §3: checking an implementation against
// its specification).
//
// Inserted anywhere above the reliability layers, it shadows the FIFO
// property with its own sequence numbers: a private seqno is pushed on every
// down-going cast and verified on every up-going delivery.  Violations are
// counted, not fatal, so tests can assert on them (and deliberately broken
// stacks can be observed).

#ifndef ENSEMBLE_SRC_LAYERS_FIFO_CHECK_H_
#define ENSEMBLE_SRC_LAYERS_FIFO_CHECK_H_

#include <cstdint>
#include <map>

#include "src/stack/layer.h"

namespace ensemble {

struct FifoCheckHeader {
  uint32_t seqno;
};

class FifoCheckLayer : public Layer {
 public:
  explicit FifoCheckLayer(const LayerParams& params) : Layer(LayerId::kFifoCheck) {}

  void Dn(Event ev, EventSink& sink) override;
  void Up(Event ev, EventSink& sink) override;
  uint64_t StateDigest() const override;

  uint64_t violations() const { return violations_; }

 private:
  uint32_t next_seqno_ = 0;
  std::map<Rank, uint32_t> expected_;
  uint64_t violations_ = 0;
};

}  // namespace ensemble

#endif  // ENSEMBLE_SRC_LAYERS_FIFO_CHECK_H_
