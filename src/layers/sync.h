// sync — view-change flush (the Block / BlockOk dance).
//
// The coordinator's membership layer (intra, above) sends kBlock down; sync
// broadcasts a Block message.  Every member's sync answers a received Block
// by announcing kBlock upward (the application and partial_appl stop
// sending) and, once the layers above reply with kBlockOk, reports BlockOk
// to the flush coordinator.  The coordinator's sync converts each BlockOk —
// including its own — into a kBlockOk event travelling up with the
// responder's rank, which intra counts.

#ifndef ENSEMBLE_SRC_LAYERS_SYNC_H_
#define ENSEMBLE_SRC_LAYERS_SYNC_H_

#include <cstdint>

#include "src/stack/layer.h"

namespace ensemble {

struct SyncHeader {
  uint8_t kind;  // SyncKind.
};

enum SyncKind : uint8_t {
  kSyncPassCast = 0,
  kSyncPassSend = 1,
  kSyncBlock = 2,
  kSyncBlockOk = 3,
};

class SyncLayer : public Layer {
 public:
  explicit SyncLayer(const LayerParams& params) : Layer(LayerId::kSync) {}

  void Dn(Event ev, EventSink& sink) override;
  void Up(Event ev, EventSink& sink) override;
  uint64_t StateDigest() const override;

  bool in_flush() const { return in_flush_; }

 private:
  bool in_flush_ = false;
  Rank flush_coord_ = kNoRank;
  bool replied_ = false;
};

}  // namespace ensemble

#endif  // ENSEMBLE_SRC_LAYERS_SYNC_H_
