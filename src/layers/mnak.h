// mnak — reliable FIFO multicast using negative acknowledgements.
//
// Each member numbers its casts; receivers deliver in per-sender sequence
// order, buffer out-of-order arrivals, and request retransmission of holes
// with NAK messages (sent point-to-point to the original sender, who keeps a
// retransmission buffer of its own casts until they are reported stable).
//
// The paper's running CCP example is this layer's up path: "a CCP may be true
// if the event is a Deliver event, and the low end of the receiver's sliding
// window is equal to the sequence number in the event ... that message may be
// delivered and the low end of the window moved up, without a need for
// buffering."

#ifndef ENSEMBLE_SRC_LAYERS_MNAK_H_
#define ENSEMBLE_SRC_LAYERS_MNAK_H_

#include <cstdint>
#include <map>
#include <vector>

#include "src/stack/layer.h"
#include "src/util/seqwin.h"

namespace ensemble {

struct MnakHeader {
  uint8_t kind;    // MnakKind below.
  uint32_t seqno;  // Data/Retrans: cast sequence number of the origin.
  uint32_t lo;     // Nak: first missing seqno.
  uint32_t hi;     // Nak: one past the last missing seqno.
};

enum MnakKind : uint8_t {
  kMnakData = 0,
  kMnakPass = 1,     // A point-to-point message of an upper layer passing by.
  kMnakNak = 2,      // NAK for [lo, hi) of the destination's casts.
  kMnakRetrans = 3,  // Retransmission of the sender's own cast `seqno`.
  kMnakHi = 4,       // Send-watermark advertisement: "I have cast [0, seqno)".
};

// A buffered message: payload plus the headers of the layers above mnak,
// exactly as they were when the message passed down (retransmissions must
// reproduce them).
struct MnakSavedMsg {
  Iovec payload;
  HeaderStack upper_hdrs;
};

// Hot state shared with the compiled bypass.  Per-sender receive windows live
// in the cold part; the bypass only needs the single-peer fast path data,
// which it reaches through the pointers below.
struct MnakFast {
  uint32_t send_seqno = 0;  // Next seqno for my own casts.
  // Owned by MnakLayer; the bypass updates receive windows through this.
  class MnakLayer* self = nullptr;
};

class MnakLayer : public Layer {
 public:
  explicit MnakLayer(const LayerParams& params) : Layer(LayerId::kMnak) {
    fast_.self = this;
  }

  void Dn(Event ev, EventSink& sink) override;
  void Up(Event ev, EventSink& sink) override;
  void* FastState() override { return &fast_; }
  uint64_t StateDigest() const override;

  // --- accessors used by the bypass rules and tests ---
  MnakFast& fast() { return fast_; }
  // Next expected seqno from `origin`; creates the window lazily.
  Seqno Expected(Rank origin);
  // True when nothing from `origin` is buffered out of order.
  bool NoBacklog(Rank origin);
  // Fast-path receive bookkeeping: advance the window past `seqno`
  // (which must equal Expected(origin)).
  void FastReceive(Rank origin, Seqno seqno);
  // Fast-path send bookkeeping: save a sent cast for retransmission.
  void SaveSent(Seqno seqno, const Event& ev);

  size_t retrans_buffer_size() const { return sent_.size(); }

 private:
  struct PeerState {
    SeqWindow window;
    std::map<Seqno, Event> backlog;  // Out-of-order arrivals awaiting holes.
  };

  PeerState& Peer(Rank origin);
  void DeliverInOrder(Rank origin, EventSink& sink);
  void SendNaks(EventSink& sink);
  void AdvertiseWatermark(EventSink& sink);
  void HandleNak(Rank from, uint32_t lo, uint32_t hi, EventSink& sink);
  void ResetForView();

  MnakFast fast_;
  std::map<Rank, PeerState> peers_;
  std::map<Seqno, MnakSavedMsg> sent_;  // My own casts, for retransmission.
  uint32_t advertised_ = 0;             // Watermark last announced via kMnakHi.
};

}  // namespace ensemble

#endif  // ENSEMBLE_SRC_LAYERS_MNAK_H_
