#include "src/layers/frag.h"

#include "src/marshal/header_desc.h"
#include "src/util/hash.h"
#include "src/util/logging.h"

namespace ensemble {

ENSEMBLE_REGISTER_HEADER(FragHeader, LayerId::kFrag, ENS_FIELD(FragHeader, kU8, kind),
                         ENS_FIELD(FragHeader, kU16, frag_index),
                         ENS_FIELD(FragHeader, kU16, frag_count),
                         ENS_FIELD(FragHeader, kU32, msg_id));
ENSEMBLE_REGISTER_LAYER(LayerId::kFrag, FragLayer);

void FragLayer::Fragment(Event ev, EventSink& sink) {
  size_t total = ev.payload.size();
  size_t max = fast_.frag_max;
  uint16_t count = static_cast<uint16_t>((total + max - 1) / max);
  uint32_t msg_id = fast_.next_msg_id++;
  for (uint16_t i = 0; i < count; i++) {
    Event piece;
    piece.type = ev.type;
    piece.dest = ev.dest;
    piece.hdrs = ev.hdrs;  // Upper-layer headers replicate onto each piece.
    size_t off = static_cast<size_t>(i) * max;
    size_t len = std::min(max, total - off);
    piece.payload = ev.payload.SubRange(off, len);
    piece.hdrs.Push(LayerId::kFrag, FragHeader{kFragPiece, i, count, msg_id});
    sink.PassDn(std::move(piece));
  }
}

void FragLayer::Dn(Event ev, EventSink& sink) {
  switch (ev.type) {
    case EventType::kCast:
    case EventType::kSend: {
      if (ev.payload.size() <= fast_.frag_max) {
        ev.hdrs.Push(LayerId::kFrag, FragHeader{kFragWhole, 0, 1, 0});
        sink.PassDn(std::move(ev));
      } else {
        Fragment(std::move(ev), sink);
      }
      return;
    }
    case EventType::kView:
      NoteView(ev);
      partial_.clear();
      fast_.next_msg_id = 0;
      sink.PassDn(std::move(ev));
      return;
    default:
      sink.PassDn(std::move(ev));
      return;
  }
}

void FragLayer::Reassemble(Event ev, const FragHeader& hdr, EventSink& sink) {
  Key key{ev.origin, hdr.msg_id};
  Partial& part = partial_[key];
  if (part.pieces.empty()) {
    part.pieces.resize(hdr.frag_count);
  }
  ENS_CHECK_MSG(hdr.frag_index < part.pieces.size(), "frag index out of range");
  if (!part.pieces[hdr.frag_index].empty()) {
    return;  // Duplicate piece (reliability below should prevent this).
  }
  part.pieces[hdr.frag_index] = std::move(ev.payload);
  part.received++;
  if (part.received < hdr.frag_count) {
    return;
  }
  // Complete: emit the reassembled message (zero-copy concatenation).
  Event whole = std::move(ev);
  whole.payload.Clear();
  for (Iovec& piece : part.pieces) {
    whole.payload.Append(piece);
  }
  partial_.erase(key);
  sink.PassUp(std::move(whole));
}

void FragLayer::Up(Event ev, EventSink& sink) {
  switch (ev.type) {
    case EventType::kDeliverCast:
    case EventType::kDeliverSend: {
      FragHeader hdr = ev.hdrs.Pop<FragHeader>(LayerId::kFrag);
      if (hdr.kind == kFragWhole) {
        sink.PassUp(std::move(ev));
      } else {
        Reassemble(std::move(ev), hdr, sink);
      }
      return;
    }
    case EventType::kInit:
      NoteView(ev);
      sink.PassUp(std::move(ev));
      return;
    default:
      sink.PassUp(std::move(ev));
      return;
  }
}

uint64_t FragLayer::StateDigest() const {
  uint64_t h = kFnvOffset;
  h = FnvMixU64(h, fast_.next_msg_id);
  h = FnvMixU64(h, partial_.size());
  return h;
}

}  // namespace ensemble
