#include "src/layers/collect.h"

#include <algorithm>

#include "src/marshal/header_desc.h"
#include "src/marshal/wire.h"
#include "src/util/hash.h"
#include "src/util/logging.h"

namespace ensemble {

ENSEMBLE_REGISTER_HEADER(CollectHeader, LayerId::kCollect, ENS_FIELD(CollectHeader, kU8, kind));
ENSEMBLE_REGISTER_LAYER(LayerId::kCollect, CollectLayer);

bool CollectLayer::CountDelivered(Rank origin, uint64_t seq_hint, bool is_data) {
  if (origin >= 0 && static_cast<size_t>(origin) < acks_.size()) {
    acks_[static_cast<size_t>(origin)] =
        std::max(acks_[static_cast<size_t>(origin)], seq_hint + 1);
  }
  if (!is_data) {
    return true;
  }
  data_since_gossip_ = true;
  fast_.since_gossip++;
  return fast_.since_gossip < fast_.interval;
}

void CollectLayer::Gossip(EventSink& sink) {
  fast_.since_gossip = 0;
  data_since_gossip_ = false;
  last_gossiped_ = acks_;
  WireWriter w;
  w.U16(static_cast<uint16_t>(acks_.size()));
  for (uint64_t a : acks_) {
    w.U64(a);
  }
  Event gossip = Event::Cast(Iovec(w.Take()));
  gossip.hdrs.Push(LayerId::kCollect, CollectHeader{kCollectGossip});
  sink.PassDn(std::move(gossip));
  // Our own vector participates in the aggregate directly.
  if (rank_ != kNoRank && static_cast<size_t>(rank_) < peer_acks_.size()) {
    peer_acks_[static_cast<size_t>(rank_)] = acks_;
  }
}

void CollectLayer::Aggregate(Rank from, const std::vector<uint64_t>& their_acks,
                             EventSink& sink) {
  if (static_cast<size_t>(from) >= peer_acks_.size() || their_acks.size() != acks_.size()) {
    return;
  }
  peer_acks_[static_cast<size_t>(from)] = their_acks;
  // For each sender's column: minimum over the OTHER members' rows — a
  // sender trivially possesses its own casts, so its row never constrains
  // its own column.  Unheard members hold the minimum at zero (safely
  // conservative).
  std::vector<uint64_t> mins(acks_.size(), 0);
  for (size_t col = 0; col < mins.size(); col++) {
    uint64_t m = UINT64_MAX;
    for (size_t row = 0; row < peer_acks_.size(); row++) {
      if (row == col) {
        continue;
      }
      uint64_t v = peer_acks_[row].size() == mins.size() ? peer_acks_[row][col] : 0;
      m = std::min(m, v);
    }
    mins[col] = m == UINT64_MAX ? 0 : m;
  }
  if (mins != last_stable_) {
    last_stable_ = mins;
    Event stable = Event::OfType(EventType::kStable);
    stable.vec = mins;
    sink.PassDn(std::move(stable));
    Event stable_up = Event::OfType(EventType::kStable);
    stable_up.vec = std::move(mins);
    sink.PassUp(std::move(stable_up));
  }
}

void CollectLayer::Dn(Event ev, EventSink& sink) {
  switch (ev.type) {
    case EventType::kCast:
      ev.hdrs.Push(LayerId::kCollect, CollectHeader{kCollectData});
      sink.PassDn(std::move(ev));
      return;
    case EventType::kTimer:
      // Quiescence gossip: when data traffic stops mid-interval, the
      // counters still reach the group so stability keeps advancing.  Gated
      // on data (not protocol) deliveries to damp gossip ping-pong.
      if (data_since_gossip_ && acks_ != last_gossiped_) {
        Gossip(sink);
      }
      sink.PassDn(std::move(ev));
      return;
    case EventType::kView:
      NoteView(ev);
      ResetForView();
      sink.PassDn(std::move(ev));
      return;
    default:
      sink.PassDn(std::move(ev));
      return;
  }
}

void CollectLayer::Up(Event ev, EventSink& sink) {
  switch (ev.type) {
    case EventType::kDeliverCast: {
      CollectHeader hdr = ev.hdrs.Pop<CollectHeader>(LayerId::kCollect);
      if (hdr.kind == kCollectGossip) {
        CountDelivered(ev.origin, ev.seq_hint, /*is_data=*/false);
        WireReader r(ev.payload.Flatten());
        uint16_t n = r.U16();
        std::vector<uint64_t> theirs(n);
        for (uint16_t i = 0; i < n; i++) {
          theirs[i] = r.U64();
        }
        if (r.ok()) {
          Aggregate(ev.origin, theirs, sink);
        }
        return;
      }
      Rank origin = ev.origin;
      uint64_t seq_hint = ev.seq_hint;
      sink.PassUp(std::move(ev));
      if (!CountDelivered(origin, seq_hint, /*is_data=*/true)) {
        Gossip(sink);
      }
      return;
    }
    case EventType::kInit:
      NoteView(ev);
      ResetForView();
      sink.PassUp(std::move(ev));
      return;
    default:
      sink.PassUp(std::move(ev));
      return;
  }
}

void CollectLayer::ResetForView() {
  size_t n = view_ ? static_cast<size_t>(nmembers_) : 0;
  fast_.since_gossip = 0;
  data_since_gossip_ = false;
  last_gossiped_.assign(n, 0);
  acks_.assign(n, 0);
  peer_acks_.assign(n, std::vector<uint64_t>(n, 0));
  last_stable_.assign(n, 0);
}

uint64_t CollectLayer::StateDigest() const {
  uint64_t h = kFnvOffset;
  h = FnvMixU64(h, fast_.since_gossip);
  for (uint64_t a : acks_) {
    h = FnvMixU64(h, a);
  }
  for (uint64_t s : last_stable_) {
    h = FnvMixU64(h, s);
  }
  return h;
}

}  // namespace ensemble
