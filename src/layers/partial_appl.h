// partial_appl — the application interface adaptor.
//
// Sits at the very top of the big stacks: queues application casts while the
// stack is blocked for a view change (so the application never has to stop
// calling Cast), releases them after the new view is installed, and answers
// kBlock with kBlockOk on the application's behalf when the application has
// no unfinished work.  This is also where Ensemble "delays non-critical
// message processing" (paper §4 optimization 3): delivery bookkeeping
// (delivery counters) is updated after the event has been passed on, keeping
// it off the critical path.

#ifndef ENSEMBLE_SRC_LAYERS_PARTIAL_APPL_H_
#define ENSEMBLE_SRC_LAYERS_PARTIAL_APPL_H_

#include <cstdint>
#include <deque>

#include "src/stack/layer.h"

namespace ensemble {

struct PartialApplFast {
  uint8_t blocked = 0;
  uint64_t casts = 0;      // Casts sent (bookkeeping, off critical path).
  uint64_t delivered = 0;  // Messages delivered.
};

class PartialApplLayer : public Layer {
 public:
  explicit PartialApplLayer(const LayerParams& params) : Layer(LayerId::kPartialAppl) {}

  void Dn(Event ev, EventSink& sink) override;
  void Up(Event ev, EventSink& sink) override;
  void* FastState() override { return &fast_; }
  uint64_t StateDigest() const override;

  const PartialApplFast& fast() const { return fast_; }
  size_t QueuedWhileBlocked() const { return queued_.size(); }

 private:
  PartialApplFast fast_;
  std::deque<Event> queued_;
};

}  // namespace ensemble

#endif  // ENSEMBLE_SRC_LAYERS_PARTIAL_APPL_H_
