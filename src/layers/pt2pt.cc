#include "src/layers/pt2pt.h"

#include "src/marshal/header_desc.h"
#include "src/util/hash.h"
#include "src/util/logging.h"

namespace ensemble {

ENSEMBLE_REGISTER_HEADER(Pt2ptHeader, LayerId::kPt2pt, ENS_FIELD(Pt2ptHeader, kU8, kind),
                         ENS_FIELD(Pt2ptHeader, kU32, seqno),
                         ENS_FIELD(Pt2ptHeader, kU32, ackno));
ENSEMBLE_REGISTER_LAYER(LayerId::kPt2pt, Pt2ptLayer);

void Pt2ptLayer::FastSend(Rank dest, const Event& ev) {
  SendSide& s = To(dest);
  Event saved = ev;  // Payload slices are refcounted; this is cheap.
  s.unacked.emplace(s.next_seqno, std::move(saved));
  s.next_seqno++;
}

void Pt2ptLayer::FastReceive(Rank origin, Seqno seqno) {
  RecvSide& r = From(origin);
  ENS_CHECK(r.window.low() == seqno);
  r.window.Mark(seqno);
  r.window.SlideOne();
  r.ack_due = true;
}

void Pt2ptLayer::Dn(Event ev, EventSink& sink) {
  switch (ev.type) {
    case EventType::kSend: {
      SendSide& s = To(ev.dest);
      uint32_t seqno = static_cast<uint32_t>(s.next_seqno);
      // Save payload + upper headers for retransmission before pushing ours.
      Event saved;
      saved.type = EventType::kSend;
      saved.dest = ev.dest;
      saved.payload = ev.payload;
      saved.hdrs = ev.hdrs;
      s.unacked.emplace(s.next_seqno, std::move(saved));
      s.next_seqno++;
      ev.hdrs.Push(LayerId::kPt2pt, Pt2ptHeader{kPt2ptData, seqno, 0});
      sink.PassDn(std::move(ev));
      return;
    }
    case EventType::kTimer:
      OnTimer(ev.time, sink);
      sink.PassDn(std::move(ev));
      return;
    case EventType::kView:
      NoteView(ev);
      ResetForView();
      sink.PassDn(std::move(ev));
      return;
    default:
      // Casts and control events pass through untouched.
      sink.PassDn(std::move(ev));
      return;
  }
}

void Pt2ptLayer::Up(Event ev, EventSink& sink) {
  switch (ev.type) {
    case EventType::kDeliverSend: {
      Pt2ptHeader hdr = ev.hdrs.Pop<Pt2ptHeader>(LayerId::kPt2pt);
      if (hdr.kind == kPt2ptAck) {
        SendSide& s = To(ev.origin);
        if (hdr.ackno > s.acked) {
          s.acked = hdr.ackno;
          s.unacked.erase(s.unacked.begin(), s.unacked.lower_bound(hdr.ackno));
        }
        return;
      }
      ENS_CHECK(hdr.kind == kPt2ptData);
      Rank origin = ev.origin;
      RecvSide& r = From(origin);
      if (!r.window.Mark(hdr.seqno)) {
        r.ack_due = true;  // Duplicate: re-ack so the sender stops resending.
        return;
      }
      r.backlog.emplace(hdr.seqno, std::move(ev));
      DeliverInOrder(origin, sink);
      return;
    }
    case EventType::kInit:
      NoteView(ev);
      ResetForView();
      sink.PassUp(std::move(ev));
      return;
    default:
      sink.PassUp(std::move(ev));
      return;
  }
}

void Pt2ptLayer::DeliverInOrder(Rank origin, EventSink& sink) {
  RecvSide& r = From(origin);
  while (!r.backlog.empty() && r.backlog.begin()->first == r.window.low()) {
    Event ev = std::move(r.backlog.begin()->second);
    r.backlog.erase(r.backlog.begin());
    r.window.SlideOne();
    r.ack_due = true;
    sink.PassUp(std::move(ev));
  }
}

void Pt2ptLayer::OnTimer(VTime now, EventSink& sink) {
  // Cumulative acks for peers with receive progress.
  for (auto& [origin, r] : recv_) {
    if (!r.ack_due) {
      continue;
    }
    r.ack_due = false;
    Event ack = Event::Send(origin, Iovec());
    ack.hdrs.Push(LayerId::kPt2pt,
                  Pt2ptHeader{kPt2ptAck, 0, static_cast<uint32_t>(r.window.low())});
    sink.PassDn(std::move(ack));
  }
  // Retransmit unacked messages that have waited at least one full timeout.
  for (auto& [dest, s] : send_) {
    if (s.unacked.empty()) {
      continue;
    }
    if (s.last_resend + retrans_timeout_ > now && s.last_resend != 0) {
      continue;
    }
    if (s.last_resend == 0) {
      // First tick with outstanding data: arm the timeout, don't resend yet.
      s.last_resend = now;
      continue;
    }
    s.last_resend = now;
    for (auto& [seqno, saved] : s.unacked) {
      Event re;
      re.type = EventType::kSend;
      re.dest = dest;
      re.payload = saved.payload;
      re.hdrs = saved.hdrs;
      re.hdrs.Push(LayerId::kPt2pt, Pt2ptHeader{kPt2ptData, static_cast<uint32_t>(seqno), 0});
      sink.PassDn(std::move(re));
    }
  }
}

void Pt2ptLayer::ResetForView() {
  send_.clear();
  recv_.clear();
}

uint64_t Pt2ptLayer::StateDigest() const {
  uint64_t h = kFnvOffset;
  for (const auto& [r, s] : send_) {
    h = FnvMixU64(h, static_cast<uint64_t>(r));
    h = FnvMixU64(h, s.next_seqno);
    h = FnvMixU64(h, s.acked);
    h = FnvMixU64(h, s.unacked.size());
  }
  for (const auto& [r, rs] : recv_) {
    h = FnvMixU64(h, static_cast<uint64_t>(r) | 0x100000000ull);
    h = FnvMixU64(h, rs.window.low());
    h = FnvMixU64(h, rs.backlog.size());
  }
  return h;
}

}  // namespace ensemble
