// fifo_buggy — a deliberately faulty FIFO-preserving layer.
//
// The scenario engine's oracle-of-the-oracles: a pass-through layer that
// holds back every Nth up-going cast per origin and releases it one delivery
// late, swapping two adjacent messages from the same sender.  Stacked under
// the application (behind LayerParams::fifo_bug_period), it violates exactly
// the per-sender FIFO property CheckReliableFifo / CheckFifoPrefixAmong
// assert — a scenario run that does NOT flag a stack containing this layer
// means the checking machinery, not the stack, is broken.
//
// Like total_buggy, it exists only so the checkers have a real bug to find;
// it is never part of a production stack.

#ifndef ENSEMBLE_SRC_LAYERS_FIFO_BUGGY_H_
#define ENSEMBLE_SRC_LAYERS_FIFO_BUGGY_H_

#include <cstdint>
#include <map>

#include "src/stack/layer.h"

namespace ensemble {

class FifoBuggyLayer : public Layer {
 public:
  explicit FifoBuggyLayer(const LayerParams& params)
      : Layer(LayerId::kFifoBuggy), period_(params.fifo_bug_period) {}

  void Dn(Event ev, EventSink& sink) override;
  void Up(Event ev, EventSink& sink) override;
  uint64_t StateDigest() const override;

  uint64_t swaps() const { return swaps_; }

 private:
  uint32_t period_;
  std::map<Rank, uint64_t> count_;   // Up-going casts seen per origin.
  std::map<Rank, Event> held_;       // At most one held cast per origin.
  uint64_t swaps_ = 0;
};

}  // namespace ensemble

#endif  // ENSEMBLE_SRC_LAYERS_FIFO_BUGGY_H_
