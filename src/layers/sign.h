// sign — payload integrity.
//
// Appends a keyed 64-bit FNV MAC over the payload; receivers verify and
// silently drop (and count) messages whose MAC does not match.  Toy-strength
// like encrypt — the layering pattern is the point.

#ifndef ENSEMBLE_SRC_LAYERS_SIGN_H_
#define ENSEMBLE_SRC_LAYERS_SIGN_H_

#include <cstdint>

#include "src/stack/layer.h"

namespace ensemble {

struct SignHeader {
  uint64_t mac;
};

class SignLayer : public Layer {
 public:
  explicit SignLayer(const LayerParams& params) : Layer(LayerId::kSign) {}

  void Dn(Event ev, EventSink& sink) override;
  void Up(Event ev, EventSink& sink) override;

  void SetKey(uint64_t key) { key_ = key; }
  uint64_t rejected() const { return rejected_; }

 private:
  uint64_t Mac(const Iovec& payload) const;

  uint64_t key_ = 0x51617EDull;
  uint64_t rejected_ = 0;
};

}  // namespace ensemble

#endif  // ENSEMBLE_SRC_LAYERS_SIGN_H_
