#include "src/layers/local.h"

namespace ensemble {

ENSEMBLE_REGISTER_LAYER(LayerId::kLocal, LocalLayer);

void LocalLayer::Dn(Event ev, EventSink& sink) {
  if (ev.type == EventType::kCast && fast_.loopback) {
    // Split: the cast continues down; a self-delivery goes back up.  The
    // copy carries the headers the layers above us already pushed, so they
    // can pop them on the way up exactly as a remote receiver would.
    Event self = Event::DeliverCast(rank_, ev.payload);
    self.hdrs = ev.hdrs;
    sink.PassDn(std::move(ev));
    sink.PassUp(std::move(self));
    return;
  }
  if (ev.type == EventType::kView) {
    NoteView(ev);
  }
  sink.PassDn(std::move(ev));
}

void LocalLayer::Up(Event ev, EventSink& sink) {
  if (ev.type == EventType::kInit) {
    NoteView(ev);
  }
  sink.PassUp(std::move(ev));
}

}  // namespace ensemble
