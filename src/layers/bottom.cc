#include "src/layers/bottom.h"

#include "src/marshal/header_desc.h"
#include "src/util/hash.h"

namespace ensemble {

ENSEMBLE_REGISTER_HEADER(BottomHeader, LayerId::kBottom,
                         ENS_FIELD(BottomHeader, kU8, kind),
                         ENS_FIELD(BottomHeader, kU32, view_ctr));
ENSEMBLE_REGISTER_LAYER(LayerId::kBottom, BottomLayer);

void BottomLayer::Dn(Event ev, EventSink& sink) {
  switch (ev.type) {
    case EventType::kCast:
    case EventType::kSend: {
      if (!fast_.enabled) {
        return;  // Disabled: messages are silently dropped (lossy network
                 // semantics make this safe; reliability layers recover).
      }
      BottomHeader hdr{0, fast_.view_ctr};
      ev.hdrs.Push(LayerId::kBottom, hdr);
      sink.PassDn(std::move(ev));
      return;
    }
    case EventType::kView:
      // A view installation travelling down re-initializes the lowest layer
      // and stops here (nothing below to tell).
      NoteView(ev);
      fast_.view_ctr = static_cast<uint32_t>(ev.view->vid.counter);
      return;
    case EventType::kTimer:
    case EventType::kBlockOk:
    case EventType::kLeave:
    case EventType::kSuspectDn:
      // Bottom of the stack: non-message down events are consumed.
      return;
    default:
      return;
  }
}

void BottomLayer::Up(Event ev, EventSink& sink) {
  switch (ev.type) {
    case EventType::kDeliverCast:
    case EventType::kDeliverSend: {
      BottomHeader hdr = ev.hdrs.Pop<BottomHeader>(LayerId::kBottom);
      if (!fast_.enabled || hdr.view_ctr != fast_.view_ctr) {
        return;  // Stale view or disabled: drop.
      }
      sink.PassUp(std::move(ev));
      return;
    }
    case EventType::kInit:
      NoteView(ev);
      fast_.enabled = 1;
      fast_.view_ctr = static_cast<uint32_t>(ev.view->vid.counter);
      sink.PassUp(std::move(ev));
      return;
    default:
      sink.PassUp(std::move(ev));
      return;
  }
}

uint64_t BottomLayer::StateDigest() const {
  uint64_t h = kFnvOffset;
  h = FnvMixU64(h, fast_.enabled);
  h = FnvMixU64(h, fast_.view_ctr);
  return h;
}

}  // namespace ensemble
