// local — self-delivery of the member's own multicasts.
//
// A down-going cast continues down the stack unchanged AND (when loopback is
// enabled) a copy is delivered back up at this point — the paper's "trace
// splitting" composition shape ("message events that cause several events to
// be emitted from a layer").  The layers above `local` (e.g. total ordering)
// therefore see the member's own casts exactly like everyone else's.

#ifndef ENSEMBLE_SRC_LAYERS_LOCAL_H_
#define ENSEMBLE_SRC_LAYERS_LOCAL_H_

#include "src/stack/layer.h"

namespace ensemble {

struct LocalFast {
  uint8_t loopback = 1;
};

class LocalLayer : public Layer {
 public:
  explicit LocalLayer(const LayerParams& params) : Layer(LayerId::kLocal) {
    fast_.loopback = params.local_loopback ? 1 : 0;
  }

  void Dn(Event ev, EventSink& sink) override;
  void Up(Event ev, EventSink& sink) override;
  void* FastState() override { return &fast_; }

 private:
  LocalFast fast_;
};

}  // namespace ensemble

#endif  // ENSEMBLE_SRC_LAYERS_LOCAL_H_
