#include "src/layers/fifo_buggy.h"

#include <utility>

#include "src/util/hash.h"

namespace ensemble {

ENSEMBLE_REGISTER_LAYER(LayerId::kFifoBuggy, FifoBuggyLayer);

void FifoBuggyLayer::Dn(Event ev, EventSink& sink) { sink.PassDn(std::move(ev)); }

void FifoBuggyLayer::Up(Event ev, EventSink& sink) {
  switch (ev.type) {
    case EventType::kDeliverCast: {
      auto held = held_.find(ev.origin);
      if (held != held_.end()) {
        // The previously held cast goes up AFTER this one: adjacent swap.
        Event delayed = std::move(held->second);
        held_.erase(held);
        swaps_++;
        sink.PassUp(std::move(ev));
        sink.PassUp(std::move(delayed));
        return;
      }
      uint64_t n = ++count_[ev.origin];
      if (period_ > 0 && n % period_ == 0) {
        held_.emplace(ev.origin, std::move(ev));
        return;
      }
      sink.PassUp(std::move(ev));
      return;
    }
    case EventType::kInit:
    case EventType::kView:
      // Flush anything still held before the membership boundary — the bug
      // is a reorder, not a loss.
      for (auto& [origin, e] : held_) {
        sink.PassUp(std::move(e));
      }
      held_.clear();
      count_.clear();
      sink.PassUp(std::move(ev));
      return;
    default:
      sink.PassUp(std::move(ev));
      return;
  }
}

uint64_t FifoBuggyLayer::StateDigest() const {
  uint64_t h = kFnvOffset;
  h = FnvMixU64(h, period_);
  h = FnvMixU64(h, swaps_);
  h = FnvMixU64(h, held_.size());
  return h;
}

}  // namespace ensemble
