#include "src/layers/top.h"

namespace ensemble {

ENSEMBLE_REGISTER_LAYER(LayerId::kTop, TopLayer);

void TopLayer::Dn(Event ev, EventSink& sink) {
  if (ev.type == EventType::kView) {
    NoteView(ev);
  }
  sink.PassDn(std::move(ev));
}

void TopLayer::Up(Event ev, EventSink& sink) {
  switch (ev.type) {
    case EventType::kInit:
    case EventType::kView:
      NoteView(ev);
      fast_.enabled = 1;
      sink.PassUp(std::move(ev));
      return;
    case EventType::kBlock:
      sink.PassUp(std::move(ev));
      sink.PassDn(Event::OfType(EventType::kBlockOk));
      return;
    case EventType::kStable:
      // Stability bookkeeping is internal; the application is not told.
      return;
    default:
      sink.PassUp(std::move(ev));
      return;
  }
}

}  // namespace ensemble
