#include "src/layers/intra.h"

#include "src/marshal/header_desc.h"
#include "src/marshal/wire.h"
#include "src/util/hash.h"
#include "src/util/logging.h"

namespace ensemble {

ENSEMBLE_REGISTER_HEADER(IntraHeader, LayerId::kIntra, ENS_FIELD(IntraHeader, kU8, kind));
ENSEMBLE_REGISTER_LAYER(LayerId::kIntra, IntraLayer);

void IntraLayer::StartViewChange(EventSink& sink) {
  if (phase_ != Phase::kIdle) {
    return;
  }
  phase_ = Phase::kFlushing;
  block_oks_.clear();
  sink.PassDn(Event::OfType(EventType::kBlock));
}

void IntraLayer::MaybeFinishFlush(EventSink& sink) {
  if (phase_ != Phase::kFlushing || !view_) {
    return;
  }
  for (Rank r = 0; r < static_cast<Rank>(nmembers_); r++) {
    if (suspects_.count(r) == 0 && block_oks_.count(r) == 0) {
      return;  // Someone alive has not replied yet.
    }
  }
  // All live members are blocked; let reliability finish recovering
  // in-flight messages before cutting the view.
  phase_ = Phase::kSettling;
  settle_until_ = now_ + settle_;
}

ViewRef IntraLayer::BuildNewView() const {
  auto v = std::make_shared<View>();
  v->vid.coord = self_.id;
  v->vid.counter = view_->vid.counter + 1;
  for (Rank r = 0; r < static_cast<Rank>(nmembers_); r++) {
    if (suspects_.count(r) == 0) {
      v->members.push_back(view_->members[static_cast<size_t>(r)]);
    }
  }
  return v;
}

void IntraLayer::InstallAndBroadcast(EventSink& sink) {
  ViewRef v = BuildNewView();
  // Broadcast the new membership (in the old view's wire format).
  WireWriter w;
  w.U64(v->vid.coord);
  w.U64(v->vid.counter);
  w.U16(static_cast<uint16_t>(v->members.size()));
  for (EndpointId m : v->members) {
    w.U64(m.id);
  }
  Event cast = Event::Cast(Iovec(w.Take()));
  cast.hdrs.Push(LayerId::kIntra, IntraHeader{kIntraView});
  sink.PassDn(std::move(cast));
  // The coordinator never hears its own cast; install locally now.
  InstallView(std::move(v), sink);
}

void IntraLayer::InstallView(ViewRef v, EventSink& sink) {
  phase_ = Phase::kIdle;
  suspects_.clear();
  block_oks_.clear();
  am_coord_ = v->RankOf(self_) == 0;

  Event up = Event::OfType(EventType::kView);
  up.view = v;
  Event dn = Event::OfType(EventType::kView);
  dn.view = v;
  // Down first: the lower layers must be reborn in the new view before any
  // upper-layer reaction (e.g. queued casts released by partial_appl) sends
  // through them.
  NoteView(dn);
  sink.PassDn(std::move(dn));
  sink.PassUp(std::move(up));
}

void IntraLayer::Dn(Event ev, EventSink& sink) {
  switch (ev.type) {
    case EventType::kCast:
      ev.hdrs.Push(LayerId::kIntra, IntraHeader{kIntraPassCast});
      sink.PassDn(std::move(ev));
      return;
    case EventType::kSend:
      ev.hdrs.Push(LayerId::kIntra, IntraHeader{kIntraPassSend});
      sink.PassDn(std::move(ev));
      return;
    case EventType::kTimer:
      now_ = ev.time;
      if (phase_ == Phase::kSettling && now_ >= settle_until_ && am_coord_) {
        InstallAndBroadcast(sink);
      }
      sink.PassDn(std::move(ev));
      return;
    default:
      sink.PassDn(std::move(ev));
      return;
  }
}

void IntraLayer::Up(Event ev, EventSink& sink) {
  switch (ev.type) {
    case EventType::kDeliverCast: {
      IntraHeader hdr = ev.hdrs.Pop<IntraHeader>(LayerId::kIntra);
      if (hdr.kind != kIntraView) {
        sink.PassUp(std::move(ev));
        return;
      }
      WireReader r(ev.payload.Flatten());
      auto v = std::make_shared<View>();
      v->vid.coord = r.U64();
      v->vid.counter = r.U64();
      uint16_t n = r.U16();
      for (uint16_t i = 0; i < n; i++) {
        v->members.push_back(EndpointId{r.U64()});
      }
      if (!r.ok() || !view_ || v->vid.counter <= view_->vid.counter) {
        return;  // Malformed or stale view announcement.
      }
      if (v->RankOf(self_) == kNoRank) {
        // We were excluded: tell the application and stop.
        sink.PassUp(Event::OfType(EventType::kExit));
        return;
      }
      InstallView(std::move(v), sink);
      return;
    }
    case EventType::kDeliverSend: {
      IntraHeader hdr = ev.hdrs.Pop<IntraHeader>(LayerId::kIntra);
      ENS_CHECK(hdr.kind == kIntraPassSend);
      sink.PassUp(std::move(ev));
      return;
    }
    case EventType::kElect:
      am_coord_ = true;
      sink.PassUp(std::move(ev));
      if (!suspects_.empty()) {
        StartViewChange(sink);
      }
      return;
    case EventType::kSuspect:
      suspects_.insert(ev.origin);
      block_oks_.erase(ev.origin);
      sink.PassUp(std::move(ev));
      if (am_coord_) {
        StartViewChange(sink);
        MaybeFinishFlush(sink);  // The suspect may have been the last holdout.
      }
      return;
    case EventType::kBlockOk:
      if (am_coord_ && phase_ == Phase::kFlushing) {
        block_oks_.insert(ev.origin);
        MaybeFinishFlush(sink);
      }
      return;
    case EventType::kInit:
      NoteView(ev);
      phase_ = Phase::kIdle;
      suspects_.clear();
      block_oks_.clear();
      am_coord_ = rank_ == 0;
      sink.PassUp(std::move(ev));
      return;
    default:
      sink.PassUp(std::move(ev));
      return;
  }
}

uint64_t IntraLayer::StateDigest() const {
  uint64_t h = kFnvOffset;
  h = FnvMixU64(h, static_cast<uint64_t>(phase_));
  h = FnvMixU64(h, am_coord_);
  h = FnvMixU64(h, suspects_.size());
  h = FnvMixU64(h, block_oks_.size());
  return h;
}

}  // namespace ensemble
