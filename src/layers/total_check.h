// total_check — a checking layer for total order (paper §3's checking
// discipline, the counterpart of fifo_check for the total-order property).
//
// Inserted directly above a total-order layer, it verifies that deliveries
// carry strictly consecutive global positions, using its own shadow
// numbering: the sender side stamps a check header with a local counter, the
// receiver verifies that the interleaving it sees forms one gap-free global
// sequence per group (via a vector-clock-free trick: each cast carries the
// count of casts this member had delivered when it sent — under total order,
// a receiver must have delivered at least that many before this one).

#ifndef ENSEMBLE_SRC_LAYERS_TOTAL_CHECK_H_
#define ENSEMBLE_SRC_LAYERS_TOTAL_CHECK_H_

#include <cstdint>

#include "src/stack/layer.h"

namespace ensemble {

struct TotalCheckHeader {
  uint32_t delivered_at_send;  // Sender's delivery count when it cast this.
};

class TotalCheckLayer : public Layer {
 public:
  explicit TotalCheckLayer(const LayerParams& params) : Layer(LayerId::kTotalCheck) {}

  void Dn(Event ev, EventSink& sink) override;
  void Up(Event ev, EventSink& sink) override;
  uint64_t StateDigest() const override;

  uint64_t violations() const { return violations_; }

 private:
  uint32_t delivered_ = 0;
  uint64_t violations_ = 0;
};

}  // namespace ensemble

#endif  // ENSEMBLE_SRC_LAYERS_TOTAL_CHECK_H_
