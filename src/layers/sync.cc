#include "src/layers/sync.h"

#include "src/marshal/header_desc.h"
#include "src/util/hash.h"

namespace ensemble {

ENSEMBLE_REGISTER_HEADER(SyncHeader, LayerId::kSync, ENS_FIELD(SyncHeader, kU8, kind));
ENSEMBLE_REGISTER_LAYER(LayerId::kSync, SyncLayer);

void SyncLayer::Dn(Event ev, EventSink& sink) {
  switch (ev.type) {
    case EventType::kCast:
      ev.hdrs.Push(LayerId::kSync, SyncHeader{kSyncPassCast});
      sink.PassDn(std::move(ev));
      return;
    case EventType::kSend:
      ev.hdrs.Push(LayerId::kSync, SyncHeader{kSyncPassSend});
      sink.PassDn(std::move(ev));
      return;
    case EventType::kBlock: {
      // The coordinator's intra layer starts the flush.
      in_flush_ = true;
      flush_coord_ = rank_;
      replied_ = false;
      Event block = Event::Cast(Iovec());
      block.hdrs.Push(LayerId::kSync, SyncHeader{kSyncBlock});
      sink.PassDn(std::move(block));
      // The coordinator's own stack must block and reply too.
      sink.PassUp(Event::OfType(EventType::kBlock));
      return;
    }
    case EventType::kBlockOk: {
      // The layers above agree to block.  Repeats (several upper layers may
      // answer) are consumed; agreement outside a flush is meaningless.
      if (!in_flush_ || replied_) {
        return;
      }
      replied_ = true;
      if (flush_coord_ == rank_) {
        // Coordinator's own reply short-circuits upward.
        Event ok = Event::OfType(EventType::kBlockOk);
        ok.origin = rank_;
        sink.PassUp(std::move(ok));
      } else {
        Event ok = Event::Send(flush_coord_, Iovec());
        ok.hdrs.Push(LayerId::kSync, SyncHeader{kSyncBlockOk});
        sink.PassDn(std::move(ok));
      }
      return;
    }
    case EventType::kView:
      NoteView(ev);
      in_flush_ = false;
      flush_coord_ = kNoRank;
      replied_ = false;
      sink.PassDn(std::move(ev));
      return;
    default:
      sink.PassDn(std::move(ev));
      return;
  }
}

void SyncLayer::Up(Event ev, EventSink& sink) {
  switch (ev.type) {
    case EventType::kDeliverCast: {
      SyncHeader hdr = ev.hdrs.Pop<SyncHeader>(LayerId::kSync);
      if (hdr.kind == kSyncBlock) {
        in_flush_ = true;
        flush_coord_ = ev.origin;
        replied_ = false;
        sink.PassUp(Event::OfType(EventType::kBlock));
        return;
      }
      sink.PassUp(std::move(ev));
      return;
    }
    case EventType::kDeliverSend: {
      SyncHeader hdr = ev.hdrs.Pop<SyncHeader>(LayerId::kSync);
      if (hdr.kind == kSyncBlockOk) {
        Event ok = Event::OfType(EventType::kBlockOk);
        ok.origin = ev.origin;
        sink.PassUp(std::move(ok));
        return;
      }
      sink.PassUp(std::move(ev));
      return;
    }
    case EventType::kInit:
      NoteView(ev);
      in_flush_ = false;
      flush_coord_ = kNoRank;
      replied_ = false;
      sink.PassUp(std::move(ev));
      return;
    default:
      sink.PassUp(std::move(ev));
      return;
  }
}

uint64_t SyncLayer::StateDigest() const {
  uint64_t h = kFnvOffset;
  h = FnvMixU64(h, in_flush_);
  h = FnvMixU64(h, static_cast<uint64_t>(flush_coord_));
  h = FnvMixU64(h, replied_);
  return h;
}

}  // namespace ensemble
