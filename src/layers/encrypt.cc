#include "src/layers/encrypt.h"

#include "src/marshal/header_desc.h"
#include "src/util/rng.h"

namespace ensemble {

ENSEMBLE_REGISTER_HEADER(EncryptHeader, LayerId::kEncrypt, ENS_FIELD(EncryptHeader, kU8, kind),
                         ENS_FIELD(EncryptHeader, kU32, nonce));
ENSEMBLE_REGISTER_LAYER(LayerId::kEncrypt, EncryptLayer);

Iovec EncryptLayer::Transform(const Iovec& payload, uint32_t nonce) const {
  uint64_t seed = key_ ^ (static_cast<uint64_t>(nonce) << 32);
  if (view_) {
    seed ^= view_->vid.coord * 31 + view_->vid.counter;
  }
  Rng stream(seed);
  Bytes out = Bytes::Allocate(payload.size());
  uint8_t* dst = out.MutableData();
  size_t pos = 0;
  for (size_t part = 0; part < payload.part_count(); part++) {
    const Bytes& b = payload.part(part);
    for (size_t i = 0; i < b.size(); i++) {
      dst[pos++] = b[i] ^ static_cast<uint8_t>(stream.Next());
    }
  }
  return Iovec(std::move(out));
}

void EncryptLayer::Dn(Event ev, EventSink& sink) {
  switch (ev.type) {
    case EventType::kCast:
    case EventType::kSend: {
      uint32_t nonce = next_nonce_++;
      ev.payload = Transform(ev.payload, nonce);
      ev.hdrs.Push(LayerId::kEncrypt, EncryptHeader{0, nonce});
      sink.PassDn(std::move(ev));
      return;
    }
    case EventType::kView:
      NoteView(ev);
      sink.PassDn(std::move(ev));
      return;
    default:
      sink.PassDn(std::move(ev));
      return;
  }
}

void EncryptLayer::Up(Event ev, EventSink& sink) {
  switch (ev.type) {
    case EventType::kDeliverCast:
    case EventType::kDeliverSend: {
      EncryptHeader hdr = ev.hdrs.Pop<EncryptHeader>(LayerId::kEncrypt);
      ev.payload = Transform(ev.payload, hdr.nonce);  // XOR stream: involution.
      sink.PassUp(std::move(ev));
      return;
    }
    case EventType::kInit:
      NoteView(ev);
      sink.PassUp(std::move(ev));
      return;
    default:
      sink.PassUp(std::move(ev));
      return;
  }
}

}  // namespace ensemble
