// frag — fragmentation and reassembly.
//
// Payloads larger than `frag_max` are split into numbered fragments (sliced
// zero-copy from the original scatter-gather payload) and reassembled at the
// receiver keyed by (origin, message id).  Small payloads pass through with a
// "whole" header — the common case the bypass CCP selects.

#ifndef ENSEMBLE_SRC_LAYERS_FRAG_H_
#define ENSEMBLE_SRC_LAYERS_FRAG_H_

#include <cstdint>
#include <map>
#include <vector>

#include "src/stack/layer.h"

namespace ensemble {

struct FragHeader {
  uint8_t kind;        // FragKind.
  uint16_t frag_index; // Fragment position.
  uint16_t frag_count; // Total fragments of the message.
  uint32_t msg_id;     // Per-sender fragmented-message counter.
};

enum FragKind : uint8_t {
  kFragWhole = 0,
  kFragPiece = 1,
};

struct FragFast {
  uint32_t frag_max = 0;  // Copy of the threshold for the bypass CCP.
  uint32_t next_msg_id = 0;
};

class FragLayer : public Layer {
 public:
  explicit FragLayer(const LayerParams& params) : Layer(LayerId::kFrag) {
    fast_.frag_max = static_cast<uint32_t>(params.frag_max);
  }

  void Dn(Event ev, EventSink& sink) override;
  void Up(Event ev, EventSink& sink) override;
  void* FastState() override { return &fast_; }
  uint64_t StateDigest() const override;

  size_t PartialCount() const { return partial_.size(); }

 private:
  struct Partial {
    std::vector<Iovec> pieces;
    uint16_t received = 0;
  };
  // Key: origin rank (or ~dest for sends we originated — unused on receive),
  // message id.
  using Key = std::pair<Rank, uint32_t>;

  void Fragment(Event ev, EventSink& sink);
  void Reassemble(Event ev, const FragHeader& hdr, EventSink& sink);

  FragFast fast_;
  std::map<Key, Partial> partial_;
};

}  // namespace ensemble

#endif  // ENSEMBLE_SRC_LAYERS_FRAG_H_
