// total — totally ordered multicast via a movable sequencer token.
//
// The member holding the token stamps its casts with consecutive global
// sequence numbers; all members deliver strictly in global order, holding
// back early arrivals.  A member that wants to cast without the token asks
// the holder for it (point-to-point); the holder passes the token (with the
// next unused global number) once its own queue drains.  The common case —
// the sender already holds the token and receivers see the next expected
// global number — is the bypass CCP.
//
// A hand proof of one of Ensemble's total ordering protocols (and the subtle
// bug it surfaced) is the §3 story; src/layers/total_buggy.* reproduces the
// bug shape, and the spec monitors catch it.

#ifndef ENSEMBLE_SRC_LAYERS_TOTAL_H_
#define ENSEMBLE_SRC_LAYERS_TOTAL_H_

#include <cstdint>
#include <deque>
#include <map>

#include "src/stack/layer.h"

namespace ensemble {

struct TotalHeader {
  uint8_t kind;   // TotalKind.
  uint32_t gseq;  // Data: global sequence number; TokenPass: next unused.
};

enum TotalKind : uint8_t {
  kTotalData = 0,
  kTotalTokenReq = 1,
  kTotalTokenPass = 2,
  kTotalPass = 3,  // Upper-layer point-to-point message passing through.
};

struct TotalFast {
  int32_t token_holder = 0;    // Rank currently holding the token.
  uint32_t next_gseq = 0;      // Valid when we hold the token.
  uint32_t expected_gseq = 0;  // Next global number to deliver.
  int32_t my_rank = -1;        // Copy of the layer's rank for the bypass CCPs.
  class TotalLayer* self = nullptr;

  bool HoldsToken(Rank me) const { return token_holder == me; }
};

class TotalLayer : public Layer {
 public:
  explicit TotalLayer(const LayerParams& params) : Layer(LayerId::kTotal) {
    fast_.self = this;
  }

  void Dn(Event ev, EventSink& sink) override;
  void Up(Event ev, EventSink& sink) override;
  void* FastState() override { return &fast_; }
  uint64_t StateDigest() const override;

  TotalFast& fast() { return fast_; }
  bool HoldbackEmpty() const { return holdback_.empty(); }
  size_t PendingCasts() const { return pending_.size(); }

 private:
  void DeliverInOrder(EventSink& sink);
  void MaybePassToken(EventSink& sink);
  void ResetForView();

  TotalFast fast_;
  std::deque<Event> pending_;          // Our casts waiting for the token.
  std::map<uint32_t, Event> holdback_; // Early arrivals keyed by gseq.
  std::deque<Rank> token_requests_;    // Members waiting for the token.
  bool token_requested_ = false;       // We already asked for the token.
};

}  // namespace ensemble

#endif  // ENSEMBLE_SRC_LAYERS_TOTAL_H_
