#include "src/layers/fifo_check.h"

#include "src/marshal/header_desc.h"
#include "src/util/hash.h"

namespace ensemble {

ENSEMBLE_REGISTER_HEADER(FifoCheckHeader, LayerId::kFifoCheck,
                         ENS_FIELD(FifoCheckHeader, kU32, seqno));
ENSEMBLE_REGISTER_LAYER(LayerId::kFifoCheck, FifoCheckLayer);

void FifoCheckLayer::Dn(Event ev, EventSink& sink) {
  if (ev.type == EventType::kCast) {
    ev.hdrs.Push(LayerId::kFifoCheck, FifoCheckHeader{next_seqno_++});
  } else if (ev.type == EventType::kView) {
    NoteView(ev);
    next_seqno_ = 0;
    expected_.clear();
  }
  sink.PassDn(std::move(ev));
}

void FifoCheckLayer::Up(Event ev, EventSink& sink) {
  switch (ev.type) {
    case EventType::kDeliverCast: {
      FifoCheckHeader hdr = ev.hdrs.Pop<FifoCheckHeader>(LayerId::kFifoCheck);
      uint32_t& want = expected_[ev.origin];
      if (hdr.seqno != want) {
        violations_++;
      }
      want = hdr.seqno + 1;
      sink.PassUp(std::move(ev));
      return;
    }
    case EventType::kInit:
    case EventType::kView:
      NoteView(ev);
      next_seqno_ = 0;
      expected_.clear();
      sink.PassUp(std::move(ev));
      return;
    default:
      sink.PassUp(std::move(ev));
      return;
  }
}

uint64_t FifoCheckLayer::StateDigest() const {
  uint64_t h = kFnvOffset;
  h = FnvMixU64(h, next_seqno_);
  h = FnvMixU64(h, violations_);
  return h;
}

}  // namespace ensemble
