// collect — stability collection.
//
// Tracks, per sender, how far this member has received that sender's casts —
// in mnak's sequence-number space, via the seq_hint mnak stamps on every
// delivery (data and protocol casts alike, so gossip traffic itself becomes
// stable).  The vector is gossiped to the group every `stable_interval` data
// deliveries (plus a quiescence round on the timer); each member aggregates
// everyone's vectors and announces, for each sender, the minimum over the
// *other* members' rows (a sender trivially has its own casts) as a kStable
// event travelling *down* so the reliability layers (mnak) can prune their
// retransmission buffers.

#ifndef ENSEMBLE_SRC_LAYERS_COLLECT_H_
#define ENSEMBLE_SRC_LAYERS_COLLECT_H_

#include <cstdint>
#include <vector>

#include "src/stack/layer.h"

namespace ensemble {

struct CollectHeader {
  uint8_t kind;  // CollectKind.
};

enum CollectKind : uint8_t {
  kCollectData = 0,
  kCollectGossip = 1,
};

struct CollectFast {
  uint32_t since_gossip = 0;  // Deliveries since the last gossip round.
  uint32_t interval = 16;
  class CollectLayer* self = nullptr;
};

class CollectLayer : public Layer {
 public:
  explicit CollectLayer(const LayerParams& params) : Layer(LayerId::kCollect) {
    fast_.interval = params.stable_interval;
    fast_.self = this;
  }

  void Dn(Event ev, EventSink& sink) override;
  void Up(Event ev, EventSink& sink) override;
  void* FastState() override { return &fast_; }
  uint64_t StateDigest() const override;

  // Bookkeeping for a delivered cast (shared by the normal path and the
  // bypass rule): advances the watermark for `origin` to seq_hint + 1 and,
  // for data casts, counts toward the gossip interval.  Returns true when no
  // gossip round fell due.
  bool CountDelivered(Rank origin, uint64_t seq_hint, bool is_data);
  const std::vector<uint64_t>& acks() const { return acks_; }
  const std::vector<uint64_t>& last_stable() const { return last_stable_; }

 private:
  void Gossip(EventSink& sink);
  void Aggregate(Rank from, const std::vector<uint64_t>& their_acks, EventSink& sink);
  void ResetForView();

  CollectFast fast_;
  bool data_since_gossip_ = false;                  // Damps gossip ping-pong.
  std::vector<uint64_t> last_gossiped_;             // acks_ as of the last gossip.
  std::vector<uint64_t> acks_;                      // acks_[r]: watermark of r's casts.
  std::vector<std::vector<uint64_t>> peer_acks_;    // Last vector heard from each member.
  std::vector<uint64_t> last_stable_;               // Last announced minimum.
};

}  // namespace ensemble

#endif  // ENSEMBLE_SRC_LAYERS_COLLECT_H_
