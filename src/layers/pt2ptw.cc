#include "src/layers/pt2ptw.h"

#include <algorithm>

#include "src/marshal/header_desc.h"
#include "src/util/hash.h"
#include "src/util/logging.h"

namespace ensemble {

ENSEMBLE_REGISTER_HEADER(Pt2ptwHeader, LayerId::kPt2ptw, ENS_FIELD(Pt2ptwHeader, kU8, kind),
                         ENS_FIELD(Pt2ptwHeader, kU32, credits));
ENSEMBLE_REGISTER_LAYER(LayerId::kPt2ptw, Pt2ptwLayer);

void Pt2ptwLayer::Dn(Event ev, EventSink& sink) {
  switch (ev.type) {
    case EventType::kSend: {
      PeerState& p = peers_[ev.dest];
      if (p.sent >= p.granted_to_me) {
        p.pending.push_back(std::move(ev));
        return;
      }
      p.sent++;
      ev.hdrs.Push(LayerId::kPt2ptw, Pt2ptwHeader{kPt2ptwData, 0});
      sink.PassDn(std::move(ev));
      return;
    }
    case EventType::kView:
      NoteView(ev);
      ResetForView();
      sink.PassDn(std::move(ev));
      return;
    default:
      sink.PassDn(std::move(ev));
      return;
  }
}

void Pt2ptwLayer::Up(Event ev, EventSink& sink) {
  switch (ev.type) {
    case EventType::kDeliverSend: {
      Pt2ptwHeader hdr = ev.hdrs.Pop<Pt2ptwHeader>(LayerId::kPt2ptw);
      if (hdr.kind == kPt2ptwCredit) {
        PeerState& p = peers_[ev.origin];
        p.granted_to_me = std::max(p.granted_to_me, hdr.credits);
        FlushPending(ev.origin, sink);
        return;
      }
      ENS_CHECK(hdr.kind == kPt2ptwData);
      Rank origin = ev.origin;
      PeerState& p = peers_[origin];
      p.consumed++;
      sink.PassUp(std::move(ev));
      if (p.consumed % (window_ / 2) == 0) {
        p.granted = p.consumed + window_;
        Event grant = Event::Send(origin, Iovec());
        grant.hdrs.Push(LayerId::kPt2ptw, Pt2ptwHeader{kPt2ptwCredit, p.granted});
        sink.PassDn(std::move(grant));
      }
      return;
    }
    case EventType::kInit:
      NoteView(ev);
      ResetForView();
      sink.PassUp(std::move(ev));
      return;
    default:
      sink.PassUp(std::move(ev));
      return;
  }
}

void Pt2ptwLayer::FlushPending(Rank dest, EventSink& sink) {
  PeerState& p = peers_[dest];
  while (!p.pending.empty() && p.sent < p.granted_to_me) {
    Event ev = std::move(p.pending.front());
    p.pending.pop_front();
    p.sent++;
    ev.hdrs.Push(LayerId::kPt2ptw, Pt2ptwHeader{kPt2ptwData, 0});
    sink.PassDn(std::move(ev));
  }
}

void Pt2ptwLayer::ResetForView() {
  std::map<Rank, PeerState> fresh;
  // Pending sends survive; counters restart with a full window.
  if (view_) {
    for (Rank r = 0; r < nmembers_; r++) {
      if (r == rank_) {
        continue;
      }
      PeerState p;
      p.granted_to_me = window_;
      p.granted = window_;
      auto it = peers_.find(r);
      if (it != peers_.end()) {
        p.pending = std::move(it->second.pending);
      }
      fresh.emplace(r, std::move(p));
    }
  }
  peers_ = std::move(fresh);
}

uint64_t Pt2ptwLayer::StateDigest() const {
  uint64_t h = kFnvOffset;
  for (const auto& [r, p] : peers_) {
    h = FnvMixU64(h, static_cast<uint64_t>(r));
    h = FnvMixU64(h, p.sent);
    h = FnvMixU64(h, p.granted_to_me);
    h = FnvMixU64(h, p.consumed);
    h = FnvMixU64(h, p.pending.size());
  }
  return h;
}

}  // namespace ensemble
