// total_buggy — a deliberately faulty total-order layer.
//
// Reproduces the shape of the "subtle bug" the paper reports was found while
// proving one of Ensemble's total ordering protocols (§1, §3.1, [11]): the
// delivery condition uses `>=` where the correct protocol requires `==`, so
// when the network delays a message the layer delivers a later global
// sequence number early and silently skips the gap.  Different members can
// therefore deliver in different orders — exactly the violation the spec
// monitors (and the refinement checker) catch.
//
// This layer exists so the checking machinery has a real bug to find; it is
// never part of a production stack.

#ifndef ENSEMBLE_SRC_LAYERS_TOTAL_BUGGY_H_
#define ENSEMBLE_SRC_LAYERS_TOTAL_BUGGY_H_

#include <cstdint>
#include <deque>

#include "src/stack/layer.h"

namespace ensemble {

class TotalBuggyLayer : public Layer {
 public:
  explicit TotalBuggyLayer(const LayerParams& params) : Layer(LayerId::kTotalBuggy) {}

  void Dn(Event ev, EventSink& sink) override;
  void Up(Event ev, EventSink& sink) override;

 private:
  int32_t token_holder_ = 0;
  uint32_t next_gseq_ = 0;
  uint32_t expected_gseq_ = 0;
  std::deque<Event> pending_;
  bool token_requested_ = false;
};

}  // namespace ensemble

#endif  // ENSEMBLE_SRC_LAYERS_TOTAL_BUGGY_H_
