// suspect — heartbeat failure detection.
//
// Casts a heartbeat every few timer ticks and counts ticks since each peer
// was last heard from (any traffic counts).  Peers idle longer than
// `suspect_max_idle` ticks are announced upward with kSuspect events, which
// the election and membership layers act on.

#ifndef ENSEMBLE_SRC_LAYERS_SUSPECT_H_
#define ENSEMBLE_SRC_LAYERS_SUSPECT_H_

#include <cstdint>
#include <set>
#include <vector>

#include "src/stack/layer.h"

namespace ensemble {

struct SuspectHeader {
  uint8_t kind;  // SuspectKind.
};

enum SuspectKind : uint8_t {
  kSuspectData = 0,
  kSuspectHeartbeat = 1,
};

class SuspectLayer : public Layer {
 public:
  explicit SuspectLayer(const LayerParams& params)
      : Layer(LayerId::kSuspect), max_idle_(params.suspect_max_idle) {}

  void Dn(Event ev, EventSink& sink) override;
  void Up(Event ev, EventSink& sink) override;
  uint64_t StateDigest() const override;

  const std::set<Rank>& suspected() const { return suspected_; }

 private:
  void ResetForView();

  uint32_t max_idle_;
  std::vector<uint32_t> idle_;  // Ticks since each rank was heard from.
  std::set<Rank> suspected_;
};

}  // namespace ensemble

#endif  // ENSEMBLE_SRC_LAYERS_SUSPECT_H_
