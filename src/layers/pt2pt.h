// pt2pt — reliable FIFO point-to-point messaging.
//
// Classic sliding-window protocol: per-destination send sequence numbers with
// a retransmission buffer, per-origin receive windows with out-of-order
// buffering, cumulative acknowledgements piggybacked on timer ticks, and
// timeout-driven retransmission.  Casts pass through untouched (the mnak
// layer below owns multicast reliability).

#ifndef ENSEMBLE_SRC_LAYERS_PT2PT_H_
#define ENSEMBLE_SRC_LAYERS_PT2PT_H_

#include <cstdint>
#include <map>

#include "src/stack/layer.h"
#include "src/util/seqwin.h"
#include "src/util/vtime.h"

namespace ensemble {

struct Pt2ptHeader {
  uint8_t kind;     // Pt2ptKind.
  uint32_t seqno;   // Data: per-(sender,dest) sequence number.
  uint32_t ackno;   // Ack: cumulative — all seqnos below it are acked.
};

enum Pt2ptKind : uint8_t {
  kPt2ptData = 0,
  kPt2ptAck = 1,
};

struct Pt2ptFast {
  class Pt2ptLayer* self = nullptr;
};

class Pt2ptLayer : public Layer {
 public:
  explicit Pt2ptLayer(const LayerParams& params)
      : Layer(LayerId::kPt2pt), retrans_timeout_(params.retrans_timeout) {
    fast_.self = this;
  }

  void Dn(Event ev, EventSink& sink) override;
  void Up(Event ev, EventSink& sink) override;
  void* FastState() override { return &fast_; }
  uint64_t StateDigest() const override;

  // --- bypass/test accessors ---
  Seqno NextSendSeqno(Rank dest) { return To(dest).next_seqno; }
  Seqno Expected(Rank origin) { return From(origin).window.low(); }
  bool NoBacklog(Rank origin) {
    auto& f = From(origin);
    return f.backlog.empty() && f.window.high() == f.window.low();
  }
  void FastSend(Rank dest, const Event& ev);
  void FastReceive(Rank origin, Seqno seqno);
  size_t UnackedCount(Rank dest) { return To(dest).unacked.size(); }

 private:
  struct SendSide {
    Seqno next_seqno = 0;
    Seqno acked = 0;                  // All below this are acknowledged.
    std::map<Seqno, Event> unacked;   // Saved for retransmission.
    VTime last_resend = 0;
  };
  struct RecvSide {
    SeqWindow window;
    std::map<Seqno, Event> backlog;
    bool ack_due = false;  // Progress since the last ack we sent.
  };

  SendSide& To(Rank dest) { return send_[dest]; }
  RecvSide& From(Rank origin) { return recv_[origin]; }
  void DeliverInOrder(Rank origin, EventSink& sink);
  void OnTimer(VTime now, EventSink& sink);
  void ResetForView();

  Pt2ptFast fast_;
  VTime retrans_timeout_;
  std::map<Rank, SendSide> send_;
  std::map<Rank, RecvSide> recv_;
};

}  // namespace ensemble

#endif  // ENSEMBLE_SRC_LAYERS_PT2PT_H_
