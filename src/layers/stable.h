// stable — stability consolidation.
//
// Sits above collect: remembers the latest stability vector, deduplicates
// repeats, and exposes the group-wide minimum to the application and upper
// layers as consolidated kStable events.

#ifndef ENSEMBLE_SRC_LAYERS_STABLE_H_
#define ENSEMBLE_SRC_LAYERS_STABLE_H_

#include <cstdint>
#include <vector>

#include "src/stack/layer.h"

namespace ensemble {

class StableLayer : public Layer {
 public:
  explicit StableLayer(const LayerParams& params) : Layer(LayerId::kStable) {}

  void Dn(Event ev, EventSink& sink) override;
  void Up(Event ev, EventSink& sink) override;
  uint64_t StateDigest() const override;

  const std::vector<uint64_t>& vector() const { return stable_; }
  // Smallest stable sequence number across all senders.
  uint64_t GlobalMin() const;

 private:
  std::vector<uint64_t> stable_;
};

}  // namespace ensemble

#endif  // ENSEMBLE_SRC_LAYERS_STABLE_H_
