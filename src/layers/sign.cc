#include "src/layers/sign.h"

#include "src/marshal/header_desc.h"
#include "src/util/hash.h"

namespace ensemble {

ENSEMBLE_REGISTER_HEADER(SignHeader, LayerId::kSign, ENS_FIELD(SignHeader, kU64, mac));
ENSEMBLE_REGISTER_LAYER(LayerId::kSign, SignLayer);

uint64_t SignLayer::Mac(const Iovec& payload) const {
  uint64_t h = FnvMixU64(kFnvOffset, key_);
  for (size_t i = 0; i < payload.part_count(); i++) {
    const Bytes& b = payload.part(i);
    h = FnvMix(h, b.data(), b.size());
  }
  return h;
}

void SignLayer::Dn(Event ev, EventSink& sink) {
  switch (ev.type) {
    case EventType::kCast:
    case EventType::kSend:
      ev.hdrs.Push(LayerId::kSign, SignHeader{Mac(ev.payload)});
      sink.PassDn(std::move(ev));
      return;
    case EventType::kView:
      NoteView(ev);
      sink.PassDn(std::move(ev));
      return;
    default:
      sink.PassDn(std::move(ev));
      return;
  }
}

void SignLayer::Up(Event ev, EventSink& sink) {
  switch (ev.type) {
    case EventType::kDeliverCast:
    case EventType::kDeliverSend: {
      SignHeader hdr = ev.hdrs.Pop<SignHeader>(LayerId::kSign);
      if (hdr.mac != Mac(ev.payload)) {
        rejected_++;
        return;
      }
      sink.PassUp(std::move(ev));
      return;
    }
    case EventType::kInit:
      NoteView(ev);
      sink.PassUp(std::move(ev));
      return;
    default:
      sink.PassUp(std::move(ev));
      return;
  }
}

}  // namespace ensemble
