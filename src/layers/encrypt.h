// encrypt — payload privacy.
//
// A keystream cipher over the message payload (xoshiro-derived stream keyed
// by a shared secret and the view id).  Demonstration-grade crypto standing
// in for Ensemble's encryption micro-protocols: the point is the layering
// (a payload-transforming component), not the cipher strength.

#ifndef ENSEMBLE_SRC_LAYERS_ENCRYPT_H_
#define ENSEMBLE_SRC_LAYERS_ENCRYPT_H_

#include <cstdint>

#include "src/stack/layer.h"

namespace ensemble {

struct EncryptHeader {
  uint8_t kind;    // 0 = encrypted payload.
  uint32_t nonce;  // Per-message stream nonce.
};

class EncryptLayer : public Layer {
 public:
  explicit EncryptLayer(const LayerParams& params) : Layer(LayerId::kEncrypt) {}

  void Dn(Event ev, EventSink& sink) override;
  void Up(Event ev, EventSink& sink) override;

  // Shared group secret; must match across members (configured out of band).
  void SetKey(uint64_t key) { key_ = key; }

 private:
  Iovec Transform(const Iovec& payload, uint32_t nonce) const;

  uint64_t key_ = 0x5EC12E7C0DEull;
  uint32_t next_nonce_ = 1;
};

}  // namespace ensemble

#endif  // ENSEMBLE_SRC_LAYERS_ENCRYPT_H_
