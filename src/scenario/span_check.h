// Span-shape assertions over trace-ring event streams.
//
// The scheduler and overload subsystems narrate their lifecycles into the
// per-shard trace rings (src/obs/trace.h): a migration is a
// handoff_start … [handoff_marker] … adopt span, an overload rung is an
// engage … disengage span.  Counting steals (what the runtime tests used to
// assert) says a migration *finished*; checking the span shapes says every
// migration finished EXACTLY ONCE, on the shard it was aimed at, with no
// member ever migrating twice concurrently — and that the overload ladder's
// rungs engage and release as a properly nested hysteresis, never leaving a
// high rung (pause_group) stuck behind a released low one.
//
// These checks are the scheduler-side oracle of the scenario engine
// (src/scenario/scenario.h): every adversarial schedule that moves groups
// between shards or drives the overload ladder must leave a well-shaped
// trace, exactly as every delivery schedule must satisfy the spec monitors.

#ifndef ENSEMBLE_SRC_SCENARIO_SPAN_CHECK_H_
#define ENSEMBLE_SRC_SCENARIO_SPAN_CHECK_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/obs/trace.h"

namespace ensemble {

struct SpanCheckOptions {
  // Flag migrations still open at the end of the stream.  Turn off for
  // best-effort live snapshots taken while handoffs are in flight.
  bool require_migrations_closed = true;
  // Flag overload rungs still engaged at the end of the stream.
  bool require_overload_closed = true;
  // Overload rung IDs form the ladder in escalation order; with monotone
  // thresholds the engaged set must always be a prefix of the ladder at
  // every evaluation boundary (rungs disengage in reverse order).  Turn off
  // when checking traces from a manager with non-monotone custom thresholds.
  bool check_ladder_prefix = true;
};

struct SpanCheckResult {
  bool ok = true;
  std::vector<std::string> violations;

  // Shape census (for assertions that used to count steals).
  size_t migrations_completed = 0;   // Balanced handoff_start→adopt pairs.
  size_t migrations_open = 0;        // Starts never adopted (violation when
                                     // require_migrations_closed).
  size_t overload_engages = 0;       // Balanced engage→disengage pairs count
  size_t overload_open = 0;          // toward engages; open ones here.
  size_t events_seen = 0;

  std::string ToString() const;
};

// Validates migration and overload span shapes over `events` (any order —
// the checker sorts by timestamp with causal tie-breaks).  Events of other
// kinds are ignored.  Typical sources: ShardRuntime::TraceEvents() after
// Stop(), or a test-owned TraceRing's Snapshot().
SpanCheckResult CheckSpanShapes(const std::vector<obs::TraceEvent>& events,
                                const SpanCheckOptions& options = {});

}  // namespace ensemble

#endif  // ENSEMBLE_SRC_SCENARIO_SPAN_CHECK_H_
