// Seeded adversarial scenario engine.
//
// The paper's reliability argument is compositional: each layer refines its
// I/O-automata spec, so the stack refines the composed spec.  The executable
// side of that argument is only as strong as the behaviors the monitors
// actually see (CAMP makes the same point statically), and well-behaved
// two-host runs barely exercise them.  This engine generates adversarial
// schedules from a 64-bit seed — member churn storms, network partitions and
// merges, message-loss and reorder bursts, placement-skew flips, and
// many-group soaks — executes them on the simulated discrete-event plane
// (GroupHarness over SimQueue/SimNetwork) and the sharded-runtime plane
// (ShardRuntime, channel backend), and judges every run with the spec
// monitors (src/spec/monitors.h) plus the span-shape checker
// (src/scenario/span_check.h) as oracles.
//
// Reproducibility contract: every decision the generator makes flows from
// ScenarioConfig::seed through explicit Rng streams; the same config reruns
// the same schedule, and every executed operation is journaled into
// ScenarioResult::schedule.  A failing run (with artifact_dir set) dumps the
// schedule and, for runtime-plane scenarios, the TRACE_*.json of a traced
// re-execution.

#ifndef ENSEMBLE_SRC_SCENARIO_SCENARIO_H_
#define ENSEMBLE_SRC_SCENARIO_SCENARIO_H_

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace ensemble {
namespace scenario {

enum class ScenarioClass {
  // Simulated plane, total-order stack, stable membership: loss / duplicate /
  // reorder bursts flipped on and off mid-run.  Oracles: reliable FIFO,
  // no-duplicates, total-order agreement.
  kLossBurst,
  // Simulated plane, total-order stack: the group is split into two halves,
  // both keep sending, the partition heals, retransmission must repair every
  // gap.  Oracles: reliable FIFO, no-duplicates, total-order agreement.
  kPartitionHeal,
  // Simulated plane, membership stack: crash / join / rejoin bursts driving
  // real view changes (suspect → elect → sync → intra).  Oracles: FIFO
  // prefix among full participants, payload-level no-duplicates, virtual
  // synchrony across matched view transitions.
  kChurnStorm,
  // Sharded-runtime plane (channel backend): pair groups built with a skewed
  // placement, migrated between shards mid-traffic on generator impulses.
  // Oracles: delivery completeness and migration/overload span shapes over
  // the merged trace rings.
  kShardSkew,
  // Everything at once: num_groups simulated groups with a generator-chosen
  // mix of the three simulated classes above, plus one sharded-runtime
  // component with skew flips.  The acceptance gate for "1000 concurrent
  // groups under churn + partition + loss with every oracle green".
  kSoak,
};

const char* ScenarioClassName(ScenarioClass c);

struct ScenarioConfig {
  ScenarioClass cls = ScenarioClass::kLossBurst;
  uint64_t seed = 1;

  int group_size = 4;       // Members per simulated group.
  int rounds = 12;          // Traffic/fault rounds per group.
  int casts_per_round = 3;  // Casts injected per round (generator-chosen senders).
  int num_groups = 8;       // kSoak: concurrent simulated groups.

  int shard_members = 32;   // kShardSkew/kSoak: runtime-plane endpoints (pair groups).
  int shard_workers = 4;    // Runtime-plane worker threads.
  int skew_flips = 6;       // Placement flips injected mid-run.

  // Fault injection (self-test of the oracles): stack a deliberately broken
  // layer and expect the monitors to flag it.  fifo: src/layers/fifo_buggy.h
  // swaps adjacent casts; total: src/layers/total_buggy.h delivers global
  // sequence numbers with >= instead of ==.
  bool inject_fifo_bug = false;
  bool inject_total_bug = false;

  // Non-empty: a failing run writes SCHEDULE_<class>_<seed>.txt (op journal
  // + violations) here, and runtime-plane failures also write
  // TRACE_scenario_<seed>.json from a traced re-execution.
  std::string artifact_dir;
};

struct ScenarioResult {
  bool ok = false;
  ScenarioClass cls = ScenarioClass::kLossBurst;
  uint64_t seed = 0;
  std::vector<std::string> violations;

  // Census of what the schedule actually did (sanity that a "green" run was
  // not vacuously quiet).
  int groups_run = 0;
  uint64_t casts_sent = 0;
  uint64_t deliveries = 0;
  uint64_t views_installed = 0;
  uint64_t crashes = 0;
  uint64_t joins = 0;
  uint64_t partitions = 0;
  uint64_t loss_bursts = 0;
  uint64_t migrations = 0;

  // The executed operation journal, one line per generator decision; with
  // the seed this IS the schedule (dumped to the SCHEDULE artifact).
  std::vector<std::string> schedule;

  std::string ToString() const;  // One summary line + violations.
};

// Runs one scenario.  Deterministic on the simulated plane; the runtime
// plane is real threads, so its interleavings vary but its oracles hold for
// every interleaving.
ScenarioResult RunScenario(const ScenarioConfig& config);

struct SweepResult {
  int runs = 0;
  int failures = 0;
  std::vector<uint64_t> failing_seeds;
  bool ok() const { return failures == 0; }
};

// Runs `count` scenarios with seeds base_seed, base_seed+1, … stopping early
// once `wall_clock_budget_ms` is spent (always runs at least one).  Each
// failure prints its reproducing seed to `log` (may be null).
SweepResult RunSeedSweep(ScenarioConfig config, uint64_t base_seed, int count,
                         int64_t wall_clock_budget_ms, std::ostream* log);

}  // namespace scenario
}  // namespace ensemble

#endif  // ENSEMBLE_SRC_SCENARIO_SCENARIO_H_
