#include "src/scenario/span_check.h"

#include <algorithm>
#include <array>
#include <map>
#include <sstream>

#include "src/overload/manager.h"

namespace ensemble {

namespace {

using obs::TraceEvent;
using obs::TraceKind;

bool IsMigrationKind(uint16_t k) {
  return k == static_cast<uint16_t>(TraceKind::kHandoffStart) ||
         k == static_cast<uint16_t>(TraceKind::kHandoffMarker) ||
         k == static_cast<uint16_t>(TraceKind::kAdopt);
}

bool IsOverloadKind(uint16_t k) {
  return k == static_cast<uint16_t>(TraceKind::kOverloadEngage) ||
         k == static_cast<uint16_t>(TraceKind::kOverloadDisengage);
}

std::string Describe(const TraceEvent& e) {
  std::ostringstream os;
  os << obs::TraceKindName(static_cast<TraceKind>(e.kind)) << "{ts=" << e.ts_ns
     << " shard=" << e.shard << " member=" << e.member << " a=" << e.a
     << " b=" << e.b << "}";
  return os.str();
}

struct OpenMigration {
  TraceEvent start;
  size_t markers = 0;
};

}  // namespace

std::string SpanCheckResult::ToString() const {
  std::ostringstream os;
  os << (ok ? "OK" : "VIOLATION") << " events=" << events_seen
     << " migrations=" << migrations_completed
     << " open_migrations=" << migrations_open
     << " overload_engages=" << overload_engages
     << " open_overload=" << overload_open;
  for (const auto& v : violations) {
    os << "\n  - " << v;
  }
  return os.str();
}

SpanCheckResult CheckSpanShapes(const std::vector<TraceEvent>& events,
                                const SpanCheckOptions& options) {
  SpanCheckResult r;
  auto fail = [&r](const std::string& msg) {
    r.ok = false;
    r.violations.push_back(msg);
  };

  // Order by timestamp (steady_clock is one domain across worker threads, so
  // cross-ring merge by ts is causal).  Equal timestamps for the same member
  // break ties by kind value — start < marker < adopt and engage < disengage
  // hold numerically in TraceKind.
  std::vector<TraceEvent> ev;
  ev.reserve(events.size());
  for (const auto& e : events) {
    if (IsMigrationKind(e.kind) || IsOverloadKind(e.kind)) {
      ev.push_back(e);
    }
  }
  std::stable_sort(ev.begin(), ev.end(),
                   [](const TraceEvent& x, const TraceEvent& y) {
                     if (x.ts_ns != y.ts_ns) return x.ts_ns < y.ts_ns;
                     if (x.member != y.member) return x.member < y.member;
                     return x.kind < y.kind;
                   });
  r.events_seen = ev.size();

  // ---- Migration spans: per-member handoff_start → [marker…] → adopt ------
  //
  // handoff_start is emitted on the victim's ring (event.shard = source,
  // a = destination); adopt on the thief's ring (event.shard = destination,
  // a = the adopting shard, i.e. also the destination).  A well-shaped trace
  // never has two spans open for one member, never adopts on a shard the
  // start didn't aim at, and never sees a marker or adopt outside an open
  // span.
  std::map<int32_t, OpenMigration> open;
  for (const auto& e : ev) {
    if (e.kind == static_cast<uint16_t>(TraceKind::kHandoffStart)) {
      auto it = open.find(e.member);
      if (it != open.end()) {
        fail("overlapping migrations for member " + std::to_string(e.member) +
             ": " + Describe(e) + " while open since ts=" +
             std::to_string(it->second.start.ts_ns));
      }
      open[e.member] = OpenMigration{e, 0};
    } else if (e.kind == static_cast<uint16_t>(TraceKind::kHandoffMarker)) {
      auto it = open.find(e.member);
      if (it == open.end()) {
        fail("orphan handoff_marker (no open migration): " + Describe(e));
      } else if (e.a != it->second.start.a) {
        fail("handoff_marker destination mismatch: " + Describe(e) +
             " vs start dest=" + std::to_string(it->second.start.a));
      } else {
        it->second.markers++;
      }
    } else if (e.kind == static_cast<uint16_t>(TraceKind::kAdopt)) {
      auto it = open.find(e.member);
      if (it == open.end()) {
        fail("orphan adopt (no matching handoff_start): " + Describe(e));
        continue;
      }
      const TraceEvent& s = it->second.start;
      if (e.shard != s.a) {
        fail("adopt on wrong shard: " + Describe(e) + " but start aimed at " +
             std::to_string(s.a));
      }
      if (e.a != e.shard) {
        fail("adopt shard self-mismatch (recorded adopter != emitting ring): " +
             Describe(e));
      }
      r.migrations_completed++;
      open.erase(it);
    }
  }
  r.migrations_open = open.size();
  if (options.require_migrations_closed) {
    for (const auto& [member, m] : open) {
      fail("handoff_start without adopt for member " + std::to_string(member) +
           ": " + Describe(m.start));
    }
  }

  // ---- Overload spans: engage/disengage as a nested hysteresis ladder -----
  //
  // Rung IDs (overload::Action) escalate with the pressure thresholds, so
  // with monotone thresholds the engaged set must be a contiguous prefix of
  // the ladder {0..k-1} at every evaluation boundary — that IS "rungs
  // disengage in reverse order" and "no stuck pause_group".  One Evaluate()
  // poll emits its transitions in ascending rung order sharing one pressure
  // value `b`, so a maximal run of equal-b events is a poll batch; the
  // prefix invariant is checked at batch boundaries, not per event (a poll
  // that engages rungs 0-2 from idle is legal even though rung 0 alone is
  // engaged mid-batch... the intermediate states are emission order, not
  // observable ladder states).
  constexpr int kRungs = overload::kActionCount;
  std::array<bool, kRungs> engaged{};
  auto check_prefix = [&](uint64_t ts) {
    if (!options.check_ladder_prefix) return;
    bool seen_gap = false;
    for (int i = 0; i < kRungs; i++) {
      if (engaged[i] && seen_gap) {
        fail("overload ladder not a prefix at ts=" + std::to_string(ts) +
             ": rung " + overload::ActionName(static_cast<overload::Action>(i)) +
             " engaged while a lower rung is not (stuck rung)");
        return;
      }
      if (!engaged[i]) seen_gap = true;
    }
  };

  bool in_batch = false;
  uint64_t batch_pressure = 0;
  uint64_t last_ts = 0;
  for (const auto& e : ev) {
    if (!IsOverloadKind(e.kind)) continue;
    if (in_batch && e.b != batch_pressure) {
      check_prefix(last_ts);
    }
    in_batch = true;
    batch_pressure = e.b;
    last_ts = e.ts_ns;
    if (e.a >= static_cast<uint64_t>(kRungs)) {
      fail("overload event with out-of-range rung: " + Describe(e));
      continue;
    }
    int rung = static_cast<int>(e.a);
    if (e.kind == static_cast<uint16_t>(TraceKind::kOverloadEngage)) {
      if (engaged[rung]) {
        fail("double engage of rung " +
             std::string(overload::ActionName(
                 static_cast<overload::Action>(rung))) +
             ": " + Describe(e));
      }
      engaged[rung] = true;
      r.overload_engages++;
    } else {
      if (!engaged[rung]) {
        fail("disengage of rung " +
             std::string(overload::ActionName(
                 static_cast<overload::Action>(rung))) +
             " that was never engaged: " + Describe(e));
      }
      engaged[rung] = false;
    }
  }
  if (in_batch) {
    check_prefix(last_ts);
  }
  for (int i = 0; i < kRungs; i++) {
    if (engaged[i]) {
      r.overload_open++;
      if (options.require_overload_closed) {
        fail("overload rung " +
             std::string(
                 overload::ActionName(static_cast<overload::Action>(i))) +
             " still engaged at end of trace");
      }
    }
  }

  return r;
}

}  // namespace ensemble
