#include "src/scenario/scenario.h"

#include <algorithm>
#include <chrono>
#include <fstream>
#include <ostream>
#include <set>
#include <sstream>
#include <thread>

#include "src/app/harness.h"
#include "src/runtime/runtime.h"
#include "src/scenario/span_check.h"
#include "src/spec/monitors.h"
#include "src/util/rng.h"

namespace ensemble {
namespace scenario {

namespace {

// ---- Generator building blocks ---------------------------------------------

std::vector<LayerId> MembershipStack() {
  return {LayerId::kPartialAppl, LayerId::kIntra, LayerId::kElect,  LayerId::kSync,
          LayerId::kSuspect,     LayerId::kPt2pt, LayerId::kMnak,   LayerId::kBottom};
}

// The total-order stack with optional injected bugs: fifo_buggy slides in
// under the application; total_buggy replaces the real total layer.
std::vector<LayerId> OrderedStack(const ScenarioConfig& cfg) {
  std::vector<LayerId> layers = TenLayerStack();
  if (cfg.inject_total_bug) {
    std::replace(layers.begin(), layers.end(), LayerId::kTotal, LayerId::kTotalBuggy);
  }
  if (cfg.inject_fifo_bug) {
    layers.insert(layers.begin() + 1, LayerId::kFifoBuggy);
  }
  return layers;
}

std::vector<LayerId> ChurnStack(const ScenarioConfig& cfg) {
  std::vector<LayerId> layers = MembershipStack();
  if (cfg.inject_fifo_bug) {
    layers.insert(layers.begin() + 1, LayerId::kFifoBuggy);
  }
  return layers;
}

LayerParams FastDetection() {
  LayerParams p;
  p.suspect_max_idle = 3;
  p.heartbeat_interval = Millis(2);
  return p;
}

std::string Payload(const std::string& gtag, int member, size_t seq) {
  std::ostringstream os;
  os << gtag << ".m" << member << ".c" << seq;
  return os.str();
}

uint64_t TotalDeliveries(const GroupHarness& g) {
  uint64_t n = 0;
  for (int m = 0; m < g.n(); m++) {
    n += g.deliveries(m).size();
  }
  return n;
}

uint64_t TotalViews(const GroupHarness& g) {
  uint64_t n = 0;
  for (int m = 0; m < g.n(); m++) {
    n += g.views(m).size();
  }
  return n;
}

// Runs the simulation in slices until two consecutive slices make no
// delivery or view progress (bounded by max_slices).  With retransmission
// timers rescheduling forever, "run until the queue empties" never
// terminates — quiescence of the observable trace is the stop signal.
void DrainGroup(GroupHarness& g, VTime slice, int max_slices) {
  uint64_t last = ~0ull;
  int quiet = 0;
  for (int i = 0; i < max_slices && quiet < 2; i++) {
    g.Run(slice);
    uint64_t now = TotalDeliveries(g) + TotalViews(g);
    quiet = (now == last) ? quiet + 1 : 0;
    last = now;
  }
}

struct OpLog {
  ScenarioResult* r;
  std::string gtag;
  void operator()(const std::string& op) const {
    r->schedule.push_back(gtag + ": " + op);
  }
};

void AddViolations(ScenarioResult& r, const std::string& gtag, uint64_t seed,
                   const char* oracle, const MonitorResult& m) {
  if (m.ok) {
    return;
  }
  r.ok = false;
  for (const auto& v : m.violations) {
    std::ostringstream os;
    os << "[" << gtag << " seed=0x" << std::hex << seed << std::dec << " " << oracle
       << "] " << v;
    r.violations.push_back(os.str());
  }
}

// ---- Virtual-synchrony oracle over the harness view journal ----------------
//
// Members that install the same view AND transition together to the same
// next view must have delivered the same multiset of casts while that view
// was installed.  Pairing by (vid, member list) on both the view and its
// successor keeps the check sound when a partition sends members into
// different successor views.
//
// Boundary soundness: per-view delivery attribution is only meaningful at
// COORDINATED boundaries, where the sync layer flushed before the install.
// Admin installs (StartAll / AddMember / SwitchAll: vid.coord == 0) happen
// out-of-band with casts still in flight, so a message can land before the
// switch on one member and after it on another; any view whose start or cut
// is such a boundary is skipped.  Protocol views (intra stamps vid.coord
// with the coordinator's endpoint id, always nonzero) and the pre-traffic
// initial view are checkable starts.
bool SameView(const ViewRef& a, const ViewRef& b) {
  return a->vid == b->vid && a->members == b->members;
}

bool CoordinatedInstall(const ViewRef& v) { return v->vid.coord != 0; }

bool CheckableViewStart(const ViewRef& v) {
  return CoordinatedInstall(v) || v->vid.counter <= 1;  // Initial view: no traffic yet.
}

MonitorResult CheckVsyncPairs(const GroupHarness& g, const std::vector<int>& members) {
  MonitorResult result;
  // The membership stack has no `local` layer, so a sender never sees a
  // delivery event for its own cast; when comparing members a and b, drop
  // payloads either of them originated (the origin index is baked into the
  // payload as ".m<i>.").
  auto third_party = [](const std::vector<std::string>& payloads, int a, int b) {
    std::string ta = ".m" + std::to_string(a) + ".";
    std::string tb = ".m" + std::to_string(b) + ".";
    std::vector<std::string> out;
    for (const std::string& p : payloads) {
      if (p.find(ta) == std::string::npos && p.find(tb) == std::string::npos) {
        out.push_back(p);
      }
    }
    return out;
  };
  for (size_t x = 0; x < members.size(); x++) {
    for (size_t y = x + 1; y < members.size(); y++) {
      int a = members[x];
      int b = members[y];
      const auto& va = g.views(a);
      const auto& vb = g.views(b);
      for (size_t ka = 0; ka + 1 < va.size(); ka++) {
        if (!CheckableViewStart(va[ka]) || !CoordinatedInstall(va[ka + 1])) {
          continue;
        }
        for (size_t kb = 0; kb + 1 < vb.size(); kb++) {
          if (!SameView(va[ka], vb[kb]) || !SameView(va[ka + 1], vb[kb + 1])) {
            continue;
          }
          MonitorResult one = CheckVirtualSynchrony(
              {third_party(g.CastPayloadsInView(a, ka), a, b),
               third_party(g.CastPayloadsInView(b, kb), a, b)});
          if (!one.ok) {
            std::ostringstream os;
            os << "members " << a << " and " << b << " disagree on view "
               << va[ka]->vid.counter << " (" << va[ka]->nmembers()
               << " members): " << one.violations.front();
            result.ok = false;
            result.violations.push_back(os.str());
          }
        }
      }
    }
  }
  return result;
}

// ---- Simulated-plane runners -----------------------------------------------

void RunLossBurstGroup(const ScenarioConfig& cfg, uint64_t seed,
                       const std::string& gtag, ScenarioResult& r) {
  Rng rng(seed);
  OpLog op{&r, gtag};
  HarnessConfig hc;
  hc.n = cfg.group_size;
  hc.ep.layers = OrderedStack(cfg);
  hc.ep.params.local_loopback = true;
  hc.net = NetworkConfig::Perfect();
  hc.net.jitter = Micros(20);
  hc.net.seed = rng.Next();
  GroupHarness g(hc);
  g.StartAll();

  std::vector<std::vector<std::string>> sent(static_cast<size_t>(hc.n));
  bool faulty = false;
  for (int round = 0; round < cfg.rounds; round++) {
    if (!faulty && rng.Chance(0.35)) {
      double drop = rng.Double() * 0.30;
      double dup = rng.Double() * 0.15;
      double reorder = rng.Double() * 0.30;
      g.network().SetFaults(drop, dup, reorder);
      faulty = true;
      r.loss_bursts++;
      std::ostringstream os;
      os << "round " << round << " faults on drop=" << drop << " dup=" << dup
         << " reorder=" << reorder;
      op(os.str());
    } else if (faulty && rng.Chance(0.30)) {
      g.network().SetFaults(0, 0, 0);
      faulty = false;
      op("round " + std::to_string(round) + " faults off");
    }
    for (int c = 0; c < cfg.casts_per_round; c++) {
      int s = static_cast<int>(rng.Below(static_cast<uint64_t>(hc.n)));
      auto& mine = sent[static_cast<size_t>(s)];
      mine.push_back(Payload(gtag, s, mine.size()));
      g.CastFrom(s, mine.back());
      r.casts_sent++;
    }
    g.Run(Millis(2));
  }
  // Repair phase: faults off, then one closing cast per member — delivering
  // it forces NAK-based recovery of any dropped predecessors, so the streams
  // have no unrecoverable lost tail.
  g.network().SetFaults(0, 0, 0);
  op("faults off; closing casts");
  for (int m = 0; m < hc.n; m++) {
    auto& mine = sent[static_cast<size_t>(m)];
    mine.push_back(Payload(gtag, m, mine.size()));
    g.CastFrom(m, mine.back());
    r.casts_sent++;
  }
  DrainGroup(g, Millis(100), 60);

  AddViolations(r, gtag, seed, "fifo", CheckReliableFifo(g, sent, /*include_self=*/true));
  AddViolations(r, gtag, seed, "nodup", CheckNoDuplicates(g));
  AddViolations(r, gtag, seed, "total", CheckTotalOrderAgreement(g));
  r.deliveries += TotalDeliveries(g);
  r.views_installed += TotalViews(g);
  r.groups_run++;
}

void RunPartitionHealGroup(const ScenarioConfig& cfg, uint64_t seed,
                           const std::string& gtag, ScenarioResult& r) {
  Rng rng(seed);
  OpLog op{&r, gtag};
  HarnessConfig hc;
  hc.n = std::max(cfg.group_size, 4);
  hc.ep.layers = OrderedStack(cfg);
  hc.ep.params.local_loopback = true;
  hc.net = NetworkConfig::Perfect();
  hc.net.jitter = Micros(20);
  hc.net.seed = rng.Next();
  GroupHarness g(hc);
  g.StartAll();

  // Random two-sided split.
  std::vector<int> order(static_cast<size_t>(hc.n));
  for (int i = 0; i < hc.n; i++) {
    order[static_cast<size_t>(i)] = i;
  }
  for (size_t i = order.size(); i > 1; i--) {
    std::swap(order[i - 1], order[rng.Below(i)]);
  }
  size_t cut_at = 1 + rng.Below(static_cast<uint64_t>(hc.n - 1));
  std::vector<int> side_a(order.begin(), order.begin() + static_cast<long>(cut_at));
  std::vector<int> side_b(order.begin() + static_cast<long>(cut_at), order.end());

  auto set_partition = [&](bool up) {
    for (int a : side_a) {
      for (int b : side_b) {
        g.network().SetLinkUp(g.member(a).id(), g.member(b).id(), up);
      }
    }
  };

  std::vector<std::vector<std::string>> sent(static_cast<size_t>(hc.n));
  auto cast_round = [&]() {
    for (int c = 0; c < cfg.casts_per_round; c++) {
      int s = static_cast<int>(rng.Below(static_cast<uint64_t>(hc.n)));
      auto& mine = sent[static_cast<size_t>(s)];
      mine.push_back(Payload(gtag, s, mine.size()));
      g.CastFrom(s, mine.back());
      r.casts_sent++;
    }
    g.Run(Millis(2));
  };

  int p1 = cfg.rounds / 3;
  int p2 = (2 * cfg.rounds) / 3;
  for (int round = 0; round < cfg.rounds; round++) {
    if (round == p1) {
      set_partition(false);
      r.partitions++;
      std::ostringstream os;
      os << "round " << round << " partition {" << side_a.size() << "|" << side_b.size()
         << "}";
      op(os.str());
    }
    if (round == p2) {
      set_partition(true);
      op("round " + std::to_string(round) + " heal");
    }
    cast_round();
  }
  // Closing casts after heal force gap repair on both sides.
  for (int m = 0; m < hc.n; m++) {
    auto& mine = sent[static_cast<size_t>(m)];
    mine.push_back(Payload(gtag, m, mine.size()));
    g.CastFrom(m, mine.back());
    r.casts_sent++;
  }
  DrainGroup(g, Millis(100), 80);

  AddViolations(r, gtag, seed, "fifo", CheckReliableFifo(g, sent, /*include_self=*/true));
  AddViolations(r, gtag, seed, "nodup", CheckNoDuplicates(g));
  AddViolations(r, gtag, seed, "total", CheckTotalOrderAgreement(g));
  r.deliveries += TotalDeliveries(g);
  r.views_installed += TotalViews(g);
  r.groups_run++;
}

void RunChurnStormGroup(const ScenarioConfig& cfg, uint64_t seed,
                        const std::string& gtag, ScenarioResult& r) {
  Rng rng(seed);
  OpLog op{&r, gtag};
  HarnessConfig hc;
  hc.n = std::max(cfg.group_size, 4);
  hc.ep.layers = ChurnStack(cfg);
  hc.ep.params = FastDetection();
  if (cfg.inject_fifo_bug) {
    hc.ep.params.fifo_bug_period = 3;
  }
  hc.ep.timer_interval = Millis(2);
  hc.net = NetworkConfig::Perfect();
  hc.net.seed = rng.Next();
  GroupHarness g(hc);
  g.StartAll();
  g.Run(Millis(20));  // First heartbeats before the storm.

  std::set<int> alive;
  std::set<int> ever_crashed;
  for (int i = 0; i < hc.n; i++) {
    alive.insert(i);
  }
  std::vector<std::vector<std::string>> sent;
  sent.resize(static_cast<size_t>(hc.n));
  int max_members = hc.n + std::max(2, cfg.rounds / 4);

  for (int round = 0; round < cfg.rounds; round++) {
    // Traffic first: casts race whatever membership protocol activity is
    // still in flight from the previous round's churn, then get a few
    // simulated milliseconds to land (the perfect-network flight time is
    // microseconds, so nothing straddles the next cut — the stack's sync
    // layer blocks senders before a view install but does not flush
    // laggards' deliveries, so a cast in flight AT the cut instant would
    // make per-view attribution genuinely diverge).
    for (int c = 0; c < cfg.casts_per_round; c++) {
      size_t pick = rng.Below(alive.size());
      auto it = alive.begin();
      std::advance(it, static_cast<long>(pick));
      int s = *it;
      auto& mine = sent[static_cast<size_t>(s)];
      mine.push_back(Payload(gtag, s, mine.size()));
      g.CastFrom(s, mine.back());
      r.casts_sent++;
    }
    g.Run(Millis(5));
    // Churn impulses: a crash, a join, or both (the storm), with quorum
    // floor so the group never dwindles below 3 live members.
    if (alive.size() > 3 && rng.Chance(0.30)) {
      size_t pick = rng.Below(alive.size());
      auto it = alive.begin();
      std::advance(it, static_cast<long>(pick));
      int victim = *it;
      alive.erase(it);
      ever_crashed.insert(victim);
      g.Crash(victim);
      r.crashes++;
      op("round " + std::to_string(round) + " crash m" + std::to_string(victim));
    }
    if (g.n() < max_members && rng.Chance(0.25)) {
      int idx = g.AddMember();
      alive.insert(idx);
      sent.emplace_back();
      r.joins++;
      op("round " + std::to_string(round) + " join m" + std::to_string(idx));
    }
    g.Run(Millis(40));  // Detection (3 × 2ms heartbeats) + view agreement.
  }
  DrainGroup(g, Millis(100), 60);

  // Oracles judge every member that never crashed (including joiners): the
  // subsequence-mode FIFO check tolerates a joiner missing early casts, and
  // vsync pairing skips uncoordinated admin boundaries on its own.
  std::vector<int> full_participants;
  for (int i = 0; i < g.n(); i++) {
    if (ever_crashed.count(i) == 0) {
      full_participants.push_back(i);
    }
  }
  std::vector<int> live_now(alive.begin(), alive.end());

  AddViolations(r, gtag, seed, "fifo-prefix",
                CheckFifoPrefixAmong(g, full_participants, sent,
                                     /*complete_origins=*/{},
                                     /*include_self=*/false,
                                     /*require_gap_free=*/false));
  AddViolations(r, gtag, seed, "nodup-payload", CheckNoDuplicatePayloads(g, live_now));
  AddViolations(r, gtag, seed, "vsync", CheckVsyncPairs(g, full_participants));
  r.deliveries += TotalDeliveries(g);
  r.views_installed += TotalViews(g);
  r.groups_run++;
}

// ---- Runtime-plane runner (shard skew flips under the span oracle) ---------

void RunShardSkewComponent(const ScenarioConfig& cfg, uint64_t seed,
                           const std::string& gtag, ScenarioResult& r) {
  Rng rng(seed);
  OpLog op{&r, gtag};
  ShardRuntimeConfig rc;
  rc.backend = ShardBackend::kChannel;
  rc.num_workers = std::max(cfg.shard_workers, 2);
  rc.ep.layers = FourLayerStack();
  rc.ep.mode = StackMode::kMachine;
  rc.ep.params.local_loopback = false;
  rc.ep.params.stable_interval = 1u << 30;
  rc.ep.timer_interval = Millis(1);
  rc.trace_enabled = true;
  // Hot-path events (layer hops, timer fires) share the rings with the span
  // events; the post-run handoff quiesce adds ~200ms of timer traffic, so
  // size for the whole run — the span oracle needs a complete trace.
  rc.trace_capacity = 1u << 19;

  int n = std::max(cfg.shard_members, 4) & ~1;  // Even: pair groups.
  // Skewed start: every pair on one generator-chosen shard.
  int hot = static_cast<int>(rng.Below(static_cast<uint64_t>(rc.num_workers)));
  rc.initial_shard.assign(static_cast<size_t>(n), hot);
  op("skewed placement: all " + std::to_string(n) + " members on shard " +
     std::to_string(hot));

  ShardRuntime rt(rc);
  if (!rt.Build(n, /*group_size=*/2)) {
    r.ok = false;
    r.violations.push_back("[" + gtag + "] runtime Build failed");
    return;
  }
  rt.Start();

  std::vector<uint64_t> want(static_cast<size_t>(n), 0);
  int flips_left = cfg.skew_flips;
  for (int round = 0; round < cfg.rounds; round++) {
    for (int c = 0; c < cfg.casts_per_round * 4; c++) {
      int m = static_cast<int>(rng.Below(static_cast<uint64_t>(n)));
      rt.PostToMember(m, [](GroupEndpoint& ep) {
        ep.Cast(Iovec(Bytes::CopyString("skew-cast")));
      });
      want[static_cast<size_t>(m ^ 1)]++;  // Pair peer delivers it.
      r.casts_sent++;
    }
    if (flips_left > 0 && rng.Chance(0.7)) {
      // Skew flip: move a batch of members to a new generator-chosen shard
      // while their traffic is in flight.
      int to = static_cast<int>(rng.Below(static_cast<uint64_t>(rc.num_workers)));
      int batch = 1 + static_cast<int>(rng.Below(3));
      for (int k = 0; k < batch; k++) {
        int m = static_cast<int>(rng.Below(static_cast<uint64_t>(n)));
        rt.MigrateMember(m, to);
        op("round " + std::to_string(round) + " migrate m" + std::to_string(m) +
           " -> shard " + std::to_string(to));
      }
      flips_left--;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }

  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(20);
  bool complete = false;
  while (!complete && std::chrono::steady_clock::now() < deadline) {
    complete = true;
    for (int m = 0; m < n; m++) {
      if (rt.delivered(m) < want[static_cast<size_t>(m)]) {
        complete = false;
        break;
      }
    }
    if (!complete) {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  }
  // Let in-flight handoffs land: a migration scheduled in the last round can
  // still be between handoff_start and adopt, and Stop() would run the adopt
  // after tracing is disabled — an open span that is shutdown ordering, not
  // a scheduler bug.  Steal count stable for 200ms == quiesced; a genuinely
  // stuck handoff rides to the deadline and the span checker flags it.
  uint64_t last_steals = rt.SchedStats().steals;
  auto stable_since = std::chrono::steady_clock::now();
  while (std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    uint64_t s = rt.SchedStats().steals;
    auto now = std::chrono::steady_clock::now();
    if (s != last_steals) {
      last_steals = s;
      stable_since = now;
    } else if (now - stable_since > std::chrono::milliseconds(200)) {
      break;
    }
  }
  rt.Stop();
  r.migrations += rt.SchedStats().steals;
  r.deliveries += rt.total_delivered();

  if (!complete) {
    r.ok = false;
    for (int m = 0; m < n; m++) {
      if (rt.delivered(m) < want[static_cast<size_t>(m)]) {
        std::ostringstream os;
        os << "[" << gtag << " seed=0x" << std::hex << seed << std::dec
           << " completeness] member " << m << " delivered " << rt.delivered(m)
           << " of " << want[static_cast<size_t>(m)];
        r.violations.push_back(os.str());
      }
    }
  }
  if (!rt.TraceComplete()) {
    r.ok = false;
    r.violations.push_back("[" + gtag + " span] trace ring overwrote events; raise trace_capacity");
  }
  SpanCheckResult span = CheckSpanShapes(rt.TraceEvents());
  if (!span.ok) {
    r.ok = false;
    for (const auto& v : span.violations) {
      std::ostringstream os;
      os << "[" << gtag << " seed=0x" << std::hex << seed << std::dec << " span] " << v;
      r.violations.push_back(os.str());
    }
  }
  {
    std::ostringstream os;
    os << "span census: " << span.migrations_completed << " migrations, "
       << span.overload_engages << " overload engages";
    op(os.str());
  }
  // The run is always traced; a failing run leaves the evidence on disk.
  if (!r.ok && !cfg.artifact_dir.empty()) {
    std::ostringstream path;
    path << cfg.artifact_dir << "/TRACE_scenario_" << std::hex << cfg.seed << ".json";
    rt.WriteTrace(path.str());
    op("trace artifact: " + path.str());
  }
}

void WriteScheduleArtifact(const ScenarioConfig& cfg, const ScenarioResult& r) {
  std::ostringstream path;
  path << cfg.artifact_dir << "/SCHEDULE_" << ScenarioClassName(cfg.cls) << "_"
       << std::hex << cfg.seed << ".txt";
  std::ofstream out(path.str());
  if (!out) {
    return;
  }
  out << r.ToString() << "\n\n# schedule\n";
  for (const auto& line : r.schedule) {
    out << line << "\n";
  }
}

}  // namespace

const char* ScenarioClassName(ScenarioClass c) {
  switch (c) {
    case ScenarioClass::kLossBurst:
      return "loss_burst";
    case ScenarioClass::kPartitionHeal:
      return "partition_heal";
    case ScenarioClass::kChurnStorm:
      return "churn_storm";
    case ScenarioClass::kShardSkew:
      return "shard_skew";
    case ScenarioClass::kSoak:
      return "soak";
  }
  return "unknown";
}

std::string ScenarioResult::ToString() const {
  std::ostringstream os;
  os << ScenarioClassName(cls) << " seed=0x" << std::hex << seed << std::dec << " "
     << (ok ? "OK" : "FAILED") << ": " << groups_run << " groups, " << casts_sent
     << " casts, " << deliveries << " deliveries, " << views_installed << " views, "
     << crashes << " crashes, " << joins << " joins, " << partitions << " partitions, "
     << loss_bursts << " loss bursts, " << migrations << " migrations";
  for (const auto& v : violations) {
    os << "\n  " << v;
  }
  return os.str();
}

ScenarioResult RunScenario(const ScenarioConfig& config) {
  ScenarioResult r;
  r.ok = true;
  r.cls = config.cls;
  r.seed = config.seed;

  switch (config.cls) {
    case ScenarioClass::kLossBurst:
      RunLossBurstGroup(config, config.seed, "loss", r);
      break;
    case ScenarioClass::kPartitionHeal:
      RunPartitionHealGroup(config, config.seed, "part", r);
      break;
    case ScenarioClass::kChurnStorm:
      RunChurnStormGroup(config, config.seed, "churn", r);
      break;
    case ScenarioClass::kShardSkew:
      RunShardSkewComponent(config, config.seed, "skew", r);
      break;
    case ScenarioClass::kSoak: {
      // Independent child seeds drawn up front: group k's schedule depends
      // only on (seed, k), so one group's behavior never perturbs another's.
      Rng master(config.seed);
      std::vector<uint64_t> child(static_cast<size_t>(config.num_groups));
      for (auto& s : child) {
        s = master.Next();
      }
      uint64_t shard_seed = master.Next();
      for (int i = 0; i < config.num_groups; i++) {
        uint64_t cs = child[static_cast<size_t>(i)];
        std::string gtag = "g" + std::to_string(i);
        switch (cs % 4) {
          case 0:
          case 1:
            RunLossBurstGroup(config, cs, gtag + ".loss", r);
            break;
          case 2:
            RunPartitionHealGroup(config, cs, gtag + ".part", r);
            break;
          case 3:
            RunChurnStormGroup(config, cs, gtag + ".churn", r);
            break;
        }
      }
      RunShardSkewComponent(config, shard_seed, "skew", r);
      break;
    }
  }

  if (!r.ok && !config.artifact_dir.empty()) {
    WriteScheduleArtifact(config, r);
  }
  return r;
}

SweepResult RunSeedSweep(ScenarioConfig config, uint64_t base_seed, int count,
                         int64_t wall_clock_budget_ms, std::ostream* log) {
  SweepResult sweep;
  auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < count; i++) {
    config.seed = base_seed + static_cast<uint64_t>(i);
    ScenarioResult r = RunScenario(config);
    sweep.runs++;
    if (!r.ok) {
      sweep.failures++;
      sweep.failing_seeds.push_back(config.seed);
      if (log != nullptr) {
        *log << "scenario FAILED, reproduce with seed=0x" << std::hex << config.seed
             << std::dec << "\n"
             << r.ToString() << "\n";
      }
    }
    auto spent = std::chrono::duration_cast<std::chrono::milliseconds>(
                     std::chrono::steady_clock::now() - start)
                     .count();
    if (spent >= wall_clock_budget_ms) {
      if (log != nullptr && i + 1 < count) {
        *log << "seed sweep stopped after " << sweep.runs << "/" << count
             << " seeds (wall-clock budget " << wall_clock_budget_ms << "ms)\n";
      }
      break;
    }
  }
  return sweep;
}

}  // namespace scenario
}  // namespace ensemble
