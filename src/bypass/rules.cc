// A-priori (static-level) bypass rules for the production layers —
// the paper's per-layer optimization theorems (§4.1.2), one per fundamental
// case.  Each rule pins down: the CCP, the state update under the CCP, and
// the header field classification (const fields fold into the connection id;
// var fields ride the wire).
//
// Example, mnak's receive path — the paper's own running example:
//   CCP:    "event is a Deliver and the low end of the receiver's sliding
//            window equals the sequence number in the event"
//   Update: "the message may be delivered and the low end of the window
//            moved up, without a need for buffering"

#include "src/bypass/rule.h"
#include "src/layers/bottom.h"
#include "src/layers/collect.h"
#include "src/layers/frag.h"
#include "src/layers/local.h"
#include "src/layers/mflow.h"
#include "src/layers/mnak.h"
#include "src/layers/partial_appl.h"
#include "src/layers/pt2pt.h"
#include "src/layers/pt2ptw.h"
#include "src/layers/top.h"
#include "src/layers/total.h"

namespace ensemble {
namespace {

BypassRule Transparent() {
  BypassRule r;
  r.transparent = true;
  return r;
}

template <typename T>
const T* St(const BypassCtx& ctx) {
  return static_cast<const T*>(ctx.state);
}
template <typename T>
T* MutSt(BypassCtx& ctx) {
  return static_cast<T*>(ctx.state);
}

// ---------------------------------------------------------------------------
// bottom
// ---------------------------------------------------------------------------

uint64_t BottomViewCtr(const void* state) {
  return static_cast<const BottomFast*>(state)->view_ctr;
}

BypassRule BottomRule() {
  BypassRule r;
  r.ccp_desc = "s_bottom.enabled";
  r.ccp = +[](const BypassCtx& ctx) { return St<BottomFast>(ctx)->enabled != 0; };
  r.fields = {FieldPlan::Const(0), FieldPlan::FromState(&BottomViewCtr)};
  return r;
}

// ---------------------------------------------------------------------------
// mnak
// ---------------------------------------------------------------------------

BypassRule MnakDnCast() {
  BypassRule r;
  r.ccp_desc = "true (sender side always eligible)";
  r.needs_upper_headers = true;  // SaveSent keeps the upper headers.
  // SaveSent copies the whole event into the retransmit buffer — heavier
  // than the structural estimate (header materialization + map insert).
  r.cost_units = 14;
  r.update = +[](BypassCtx& ctx) {
    auto* f = MutSt<MnakFast>(ctx);
    ctx.vars_out[0] = f->send_seqno;
    f->self->SaveSent(f->send_seqno, *ctx.ev);
    f->send_seqno++;
  };
  r.predict = +[](const BypassCtx& ctx, int) -> uint64_t {
    return St<MnakFast>(ctx)->send_seqno;
  };
  r.fields = {FieldPlan::Const(kMnakData), FieldPlan::Var(), FieldPlan::Const(0),
              FieldPlan::Const(0)};
  return r;
}

BypassRule MnakUpCast() {
  BypassRule r;
  r.ccp_desc = "seqno == recv_window.low && no backlog";
  r.ccp = +[](const BypassCtx& ctx) {
    auto* f = St<MnakFast>(ctx);
    return ctx.vars_in[0] == f->self->Expected(ctx.ev->origin) &&
           f->self->NoBacklog(ctx.ev->origin);
  };
  r.update = +[](BypassCtx& ctx) {
    auto* f = MutSt<MnakFast>(ctx);
    f->self->FastReceive(ctx.ev->origin, ctx.vars_in[0]);
    ctx.ev->seq_hint = ctx.vars_in[0];  // For the stability layer above.
  };
  r.fields = {FieldPlan::Const(kMnakData), FieldPlan::Var(), FieldPlan::Const(0),
              FieldPlan::Const(0)};
  return r;
}

BypassRule MnakPassSend() {
  BypassRule r;
  r.ccp_desc = "true (pass-through header only)";
  r.fields = {FieldPlan::Const(kMnakPass), FieldPlan::Const(0), FieldPlan::Const(0),
              FieldPlan::Const(0)};
  return r;
}

// ---------------------------------------------------------------------------
// pt2pt
// ---------------------------------------------------------------------------

BypassRule Pt2ptDnSend() {
  BypassRule r;
  r.ccp_desc = "true (sender side always eligible)";
  r.needs_upper_headers = true;  // The unacked buffer keeps the upper headers.
  r.cost_units = 14;  // FastSend buffers the event, like mnak's SaveSent.
  r.update = +[](BypassCtx& ctx) {
    auto* f = MutSt<Pt2ptFast>(ctx);
    ctx.vars_out[0] = f->self->NextSendSeqno(ctx.ev->dest);
    f->self->FastSend(ctx.ev->dest, *ctx.ev);
  };
  r.predict = +[](const BypassCtx& ctx, int) -> uint64_t {
    return St<Pt2ptFast>(ctx)->self->NextSendSeqno(ctx.ev->dest);
  };
  r.fields = {FieldPlan::Const(kPt2ptData), FieldPlan::Var(), FieldPlan::Const(0)};
  return r;
}

BypassRule Pt2ptUpSend() {
  BypassRule r;
  r.ccp_desc = "seqno == recv_window.low && no backlog";
  r.ccp = +[](const BypassCtx& ctx) {
    auto* f = St<Pt2ptFast>(ctx);
    return ctx.vars_in[0] == f->self->Expected(ctx.ev->origin) &&
           f->self->NoBacklog(ctx.ev->origin);
  };
  r.update = +[](BypassCtx& ctx) {
    auto* f = MutSt<Pt2ptFast>(ctx);
    f->self->FastReceive(ctx.ev->origin, ctx.vars_in[0]);
  };
  r.fields = {FieldPlan::Const(kPt2ptData), FieldPlan::Var(), FieldPlan::Const(0)};
  return r;
}

// ---------------------------------------------------------------------------
// mflow
// ---------------------------------------------------------------------------

BypassRule MflowDnCast() {
  BypassRule r;
  r.ccp_desc = "send credit available";
  r.ccp = +[](const BypassCtx& ctx) { return St<MflowFast>(ctx)->HasCredit(); };
  r.update = +[](BypassCtx& ctx) { MutSt<MflowFast>(ctx)->sent++; };
  r.fields = {FieldPlan::Const(kMflowData), FieldPlan::Const(0)};
  return r;
}

BypassRule MflowUpCast() {
  BypassRule r;
  r.ccp_desc = "no credit grant due";
  r.ccp = +[](const BypassCtx& ctx) {
    return St<MflowFast>(ctx)->self->NoGrantDue(ctx.ev->origin);
  };
  r.update = +[](BypassCtx& ctx) {
    MutSt<MflowFast>(ctx)->self->FastConsume(ctx.ev->origin);
  };
  r.fields = {FieldPlan::Const(kMflowData), FieldPlan::Const(0)};
  return r;
}

BypassRule MflowPassSend() {
  BypassRule r;
  r.ccp_desc = "true (pass-through header only)";
  r.fields = {FieldPlan::Const(kMflowPass), FieldPlan::Const(0)};
  return r;
}

// ---------------------------------------------------------------------------
// pt2ptw
// ---------------------------------------------------------------------------

BypassRule Pt2ptwDnSend() {
  BypassRule r;
  r.ccp_desc = "send credit available";
  r.ccp = +[](const BypassCtx& ctx) {
    return St<Pt2ptwFast>(ctx)->self->HasCredit(ctx.ev->dest);
  };
  r.update = +[](BypassCtx& ctx) {
    MutSt<Pt2ptwFast>(ctx)->self->FastSendConsume(ctx.ev->dest);
  };
  r.fields = {FieldPlan::Const(kPt2ptwData), FieldPlan::Const(0)};
  return r;
}

BypassRule Pt2ptwUpSend() {
  BypassRule r;
  r.ccp_desc = "no credit grant due";
  r.ccp = +[](const BypassCtx& ctx) {
    return St<Pt2ptwFast>(ctx)->self->NoGrantDue(ctx.ev->origin);
  };
  r.update = +[](BypassCtx& ctx) {
    MutSt<Pt2ptwFast>(ctx)->self->FastConsume(ctx.ev->origin);
  };
  r.fields = {FieldPlan::Const(kPt2ptwData), FieldPlan::Const(0)};
  return r;
}

// ---------------------------------------------------------------------------
// frag
// ---------------------------------------------------------------------------

BypassRule FragDn() {
  BypassRule r;
  r.ccp_desc = "payload fits in one fragment";
  r.ccp = +[](const BypassCtx& ctx) {
    return ctx.ev->payload.size() <= St<FragFast>(ctx)->frag_max;
  };
  r.fields = {FieldPlan::Const(kFragWhole), FieldPlan::Const(0), FieldPlan::Const(1),
              FieldPlan::Const(0)};
  return r;
}

BypassRule FragUp() {
  BypassRule r;
  r.ccp_desc = "unfragmented message";
  r.fields = {FieldPlan::Const(kFragWhole), FieldPlan::Const(0), FieldPlan::Const(1),
              FieldPlan::Const(0)};
  return r;
}

// ---------------------------------------------------------------------------
// collect
// ---------------------------------------------------------------------------

BypassRule CollectDnCast() {
  BypassRule r;
  r.ccp_desc = "true (data header only)";
  r.fields = {FieldPlan::Const(kCollectData)};
  return r;
}

BypassRule CollectUpCast() {
  BypassRule r;
  r.ccp_desc = "no stability gossip round due";
  r.ccp = +[](const BypassCtx& ctx) {
    auto* f = St<CollectFast>(ctx);
    return f->since_gossip + 1 < f->interval;
  };
  r.update = +[](BypassCtx& ctx) {
    MutSt<CollectFast>(ctx)->self->CountDelivered(ctx.ev->origin, ctx.ev->seq_hint,
                                                  /*is_data=*/true);
  };
  r.fields = {FieldPlan::Const(kCollectData)};
  return r;
}

// ---------------------------------------------------------------------------
// local
// ---------------------------------------------------------------------------

BypassRule LocalDnCast() {
  BypassRule r;
  r.ccp_desc = "true (split when loopback enabled)";
  r.split_deliver = true;
  r.split_if = +[](const void* state) {
    return static_cast<const LocalFast*>(state)->loopback != 0;
  };
  return r;
}

// ---------------------------------------------------------------------------
// total
// ---------------------------------------------------------------------------

BypassRule TotalDnCast() {
  BypassRule r;
  r.ccp_desc = "this member holds the ordering token";
  r.ccp = +[](const BypassCtx& ctx) {
    auto* f = St<TotalFast>(ctx);
    return f->HoldsToken(f->my_rank);
  };
  r.update = +[](BypassCtx& ctx) {
    auto* f = MutSt<TotalFast>(ctx);
    ctx.vars_out[0] = f->next_gseq++;
  };
  r.predict = +[](const BypassCtx& ctx, int) -> uint64_t {
    return St<TotalFast>(ctx)->next_gseq;
  };
  r.fields = {FieldPlan::Const(kTotalData), FieldPlan::Var()};
  return r;
}

BypassRule TotalUpCast() {
  BypassRule r;
  r.ccp_desc = "gseq == next expected && holdback empty";
  r.ccp = +[](const BypassCtx& ctx) {
    auto* f = St<TotalFast>(ctx);
    return ctx.vars_in[0] == f->expected_gseq && f->self->HoldbackEmpty();
  };
  r.update = +[](BypassCtx& ctx) { MutSt<TotalFast>(ctx)->expected_gseq++; };
  r.fields = {FieldPlan::Const(kTotalData), FieldPlan::Var()};
  return r;
}

BypassRule TotalPassSend() {
  BypassRule r;
  r.ccp_desc = "true (pass-through header only)";
  r.fields = {FieldPlan::Const(kTotalPass), FieldPlan::Const(0)};
  return r;
}

// ---------------------------------------------------------------------------
// partial_appl
// ---------------------------------------------------------------------------

BypassRule PartialApplDn() {
  BypassRule r;
  r.ccp_desc = "stack not blocked for a view change";
  r.ccp = +[](const BypassCtx& ctx) { return St<PartialApplFast>(ctx)->blocked == 0; };
  r.update = +[](BypassCtx& ctx) { MutSt<PartialApplFast>(ctx)->casts++; };
  return r;
}

BypassRule PartialApplUp() {
  BypassRule r;
  r.ccp_desc = "true";
  r.update = +[](BypassCtx& ctx) { MutSt<PartialApplFast>(ctx)->delivered++; };
  return r;
}

// ---------------------------------------------------------------------------
// Registration
// ---------------------------------------------------------------------------

const bool registered = [] {
  // bottom: same shape in all four cases.
  for (FCase c : {FCase::kDnCast, FCase::kDnSend, FCase::kUpCast, FCase::kUpSend}) {
    RegisterBypassRule(LayerId::kBottom, c, BottomRule());
  }

  RegisterBypassRule(LayerId::kMnak, FCase::kDnCast, MnakDnCast());
  RegisterBypassRule(LayerId::kMnak, FCase::kUpCast, MnakUpCast());
  RegisterBypassRule(LayerId::kMnak, FCase::kDnSend, MnakPassSend());
  RegisterBypassRule(LayerId::kMnak, FCase::kUpSend, MnakPassSend());

  RegisterBypassRule(LayerId::kPt2pt, FCase::kDnCast, Transparent());
  RegisterBypassRule(LayerId::kPt2pt, FCase::kUpCast, Transparent());
  RegisterBypassRule(LayerId::kPt2pt, FCase::kDnSend, Pt2ptDnSend());
  RegisterBypassRule(LayerId::kPt2pt, FCase::kUpSend, Pt2ptUpSend());

  RegisterBypassRule(LayerId::kMflow, FCase::kDnCast, MflowDnCast());
  RegisterBypassRule(LayerId::kMflow, FCase::kUpCast, MflowUpCast());
  RegisterBypassRule(LayerId::kMflow, FCase::kDnSend, MflowPassSend());
  RegisterBypassRule(LayerId::kMflow, FCase::kUpSend, MflowPassSend());

  RegisterBypassRule(LayerId::kPt2ptw, FCase::kDnCast, Transparent());
  RegisterBypassRule(LayerId::kPt2ptw, FCase::kUpCast, Transparent());
  RegisterBypassRule(LayerId::kPt2ptw, FCase::kDnSend, Pt2ptwDnSend());
  RegisterBypassRule(LayerId::kPt2ptw, FCase::kUpSend, Pt2ptwUpSend());

  RegisterBypassRule(LayerId::kFrag, FCase::kDnCast, FragDn());
  RegisterBypassRule(LayerId::kFrag, FCase::kDnSend, FragDn());
  RegisterBypassRule(LayerId::kFrag, FCase::kUpCast, FragUp());
  RegisterBypassRule(LayerId::kFrag, FCase::kUpSend, FragUp());

  RegisterBypassRule(LayerId::kCollect, FCase::kDnCast, CollectDnCast());
  RegisterBypassRule(LayerId::kCollect, FCase::kUpCast, CollectUpCast());
  RegisterBypassRule(LayerId::kCollect, FCase::kDnSend, Transparent());
  RegisterBypassRule(LayerId::kCollect, FCase::kUpSend, Transparent());

  RegisterBypassRule(LayerId::kLocal, FCase::kDnCast, LocalDnCast());
  RegisterBypassRule(LayerId::kLocal, FCase::kUpCast, Transparent());
  RegisterBypassRule(LayerId::kLocal, FCase::kDnSend, Transparent());
  RegisterBypassRule(LayerId::kLocal, FCase::kUpSend, Transparent());

  RegisterBypassRule(LayerId::kTotal, FCase::kDnCast, TotalDnCast());
  RegisterBypassRule(LayerId::kTotal, FCase::kUpCast, TotalUpCast());
  RegisterBypassRule(LayerId::kTotal, FCase::kDnSend, TotalPassSend());
  RegisterBypassRule(LayerId::kTotal, FCase::kUpSend, TotalPassSend());

  RegisterBypassRule(LayerId::kPartialAppl, FCase::kDnCast, PartialApplDn());
  RegisterBypassRule(LayerId::kPartialAppl, FCase::kDnSend, PartialApplDn());
  RegisterBypassRule(LayerId::kPartialAppl, FCase::kUpCast, PartialApplUp());
  RegisterBypassRule(LayerId::kPartialAppl, FCase::kUpSend, PartialApplUp());

  for (FCase c : {FCase::kDnCast, FCase::kDnSend, FCase::kUpCast, FCase::kUpSend}) {
    RegisterBypassRule(LayerId::kTop, c, Transparent());
  }
  return true;
}();

}  // namespace
}  // namespace ensemble
