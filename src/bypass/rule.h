// Bypass rules: the C++ analog of the paper's per-layer optimization
// theorems (§4.1.2).
//
// For each layer and each of the four fundamental cases — down/up ×
// point-to-point/broadcast ("Optimizations for each layer are initiated for
// four fundamental cases") — a rule states:
//
//   * the Common Case Predicate (CCP) under which the optimized path is
//     semantically equal to the layer's code,
//   * the state update the layer performs in that case,
//   * the layer's header under the CCP, with every field classified constant
//     (foldable into the connection identifier) or variable (transmitted),
//   * the trace shape (linear pass-through, or a split that also delivers
//     the event locally — the `local` layer).
//
// The stack compiler (compiler.h) composes these rules exactly as the
// paper's composition theorems compose layer optimization theorems, and the
// equivalence checker (equivalence.h) plays the role of the proof: it
// asserts the composed bypass is semantically equal to the original stack
// whenever the composed CCP holds.

#ifndef ENSEMBLE_SRC_BYPASS_RULE_H_
#define ENSEMBLE_SRC_BYPASS_RULE_H_

#include <cstdint>
#include <vector>

#include "src/event/event.h"

namespace ensemble {

// The four fundamental cases.
enum class FCase : uint8_t { kDnCast = 0, kDnSend = 1, kUpCast = 2, kUpSend = 3 };
constexpr size_t kFCaseCount = 4;
const char* FCaseName(FCase c);

// Context handed to the rule callbacks.
//   * state     — the layer's FastState (shared with the normal path).
//   * ev        — the event being processed (payload / dest / origin).
//   * vars      — this rule's variable-field slots.  On a down route the
//                 update fills them (they become the wire bytes); on an up
//                 route they arrive decoded from the wire before the CCP
//                 runs.
struct BypassCtx {
  void* state = nullptr;
  Event* ev = nullptr;
  const uint64_t* vars_in = nullptr;
  uint64_t* vars_out = nullptr;
};

using CcpFn = bool (*)(const BypassCtx&);
using UpdateFn = void (*)(BypassCtx&);
// Predicts the value `update` will assign to variable slot `i`, without
// mutating anything.  Needed by split routes: every CCP in the composed path
// (including the self-delivery arm) must be checked before any update runs.
using PredictFn = uint64_t (*)(const BypassCtx&, int i);

// Classification of one header field under the CCP.
struct FieldPlan {
  enum class Kind : uint8_t {
    kConst,           // Fixed value, folded into the connection identifier.
    kVar,             // Transmitted on the wire (assigned a var slot).
    kConstFromState,  // Constant under the CCP but whose value is only known
                      // when the route is compiled (e.g. bottom's view
                      // counter) — read from layer state at compile time.
  };
  Kind kind = Kind::kConst;
  uint64_t const_value = 0;                      // kConst.
  uint64_t (*state_value)(const void*) = nullptr;  // kConstFromState.

  static FieldPlan Const(uint64_t v) { return {Kind::kConst, v, nullptr}; }
  static FieldPlan Var() { return {Kind::kVar, 0, nullptr}; }
  static FieldPlan FromState(uint64_t (*fn)(const void*)) {
    return {Kind::kConstFromState, 0, fn};
  }
  bool is_var() const { return kind == Kind::kVar; }
};

struct BypassRule {
  // Identity: the layer passes this event class through unchanged, pushes no
  // header and touches no state.  (E.g. pt2pt for casts.)
  bool transparent = false;

  const char* ccp_desc = "true";
  CcpFn ccp = nullptr;        // nullptr = always true.
  UpdateFn update = nullptr;  // nullptr = no state change.
  PredictFn predict = nullptr;

  // Header plan, parallel to the layer's HeaderDescriptor fields.  Empty
  // means the layer pushes no header for this case.
  std::vector<FieldPlan> fields;

  // Down cases only: the event is also delivered locally from this layer
  // (trace splitting — `local`'s loopback).
  bool split_deliver = false;
  // When set, the split only applies if this predicate holds on the layer's
  // state at *compile* time (e.g. local's loopback switch).
  bool (*split_if)(const void* state) = nullptr;

  // Down cases only: this layer's update saves the message for possible
  // retransmission, so it needs ev.hdrs to hold the headers the layers above
  // would have pushed on the normal path (mnak for casts, pt2pt for sends).
  // The compiled route materializes them from the upper layers' header plans
  // just before this update runs.
  bool needs_upper_headers = false;

  // Cost annotation for the compositional performance model (cost_model.h):
  // relative units of fused work this rule contributes to a compiled trace
  // (CCP check + state update + wire-slot handling).  0 means "derive from
  // structure" via CostUnits(); a rule whose update does work its plan shape
  // doesn't show (e.g. copying a message into a retransmit buffer) sets an
  // explicit value.  The calibration pass turns units into nanoseconds by
  // dividing a measured fused-trace time by the route's composed unit count.
  uint16_t cost_units = 0;

  size_t VarCount() const {
    size_t n = 0;
    for (const FieldPlan& f : fields) {
      n += f.is_var() ? 1 : 0;
    }
    return n;
  }

  uint16_t CostUnits() const {
    if (cost_units != 0) {
      return cost_units;
    }
    if (transparent) {
      return 1;
    }
    uint16_t u = 2;  // CCP evaluation + fused dispatch.
    u = static_cast<uint16_t>(u + VarCount() * 2);  // Fill + wire slot each.
    u = static_cast<uint16_t>(u + (update != nullptr ? 2 : 0));
    u = static_cast<uint16_t>(u + (split_deliver ? 3 : 0));
    u = static_cast<uint16_t>(u + (needs_upper_headers ? 4 : 0));
    return u;
  }
};

// Registry.  Layers (or a central rules file) register their rules once at
// static-init time; the compiler consults the registry by (layer, case).
// A missing entry means "this layer cannot be bypassed for this case" and
// blocks compilation of the whole route — exactly the paper's situation
// where a layer has not been statically optimized yet.
void RegisterBypassRule(LayerId layer, FCase fcase, BypassRule rule);
const BypassRule* FindBypassRule(LayerId layer, FCase fcase);

// Human-readable rendering of a rule as an optimization theorem, e.g.
//   OPTIMIZING LAYER mnak FOR EVENT Dn/Cast ASSUMING true
//   YIELDS header {kind=0 const, seqno var, lo=0 const, hi=0 const}
std::string RenderOptimizationTheorem(LayerId layer, FCase fcase);

}  // namespace ensemble

#endif  // ENSEMBLE_SRC_BYPASS_RULE_H_
