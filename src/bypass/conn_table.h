// Connection table: maps the compressed-header connection identifier to the
// compiled route that understands it.
//
// Paper §4.1.3: "most of the header fields are fixed (constant) now, [so] we
// only have to transmit the header fields that may vary" — the constants are
// folded into a short identifier.  Both sides derive identical identifiers
// deterministically from the stack composition (same layers, same field
// plans, same view), so no negotiation is needed.
//
// Find() sits on the receive fast path (one lookup per bypass delivery), so
// the table is an open-addressing flat hash rather than a std::map: one
// Fibonacci multiply picks the bucket, a linear probe over a contiguous
// array resolves it — typically zero probes past the home slot at our load
// factors, no pointer chasing, no allocation after the table settles.
// Deletion uses backward-shift (no tombstones), so probe chains never grow
// stale; the table grows at ~70% occupancy.

#ifndef ENSEMBLE_SRC_BYPASS_CONN_TABLE_H_
#define ENSEMBLE_SRC_BYPASS_CONN_TABLE_H_

#include <cstdint>
#include <vector>

#include "src/bypass/compiler.h"

namespace ensemble {

class ConnTable {
 public:
  ConnTable() { Rehash(kInitialCap); }

  // Registers a compiled route under its connection id.  Returns false on an
  // id collision with a different route (callers treat that as fatal — the
  // id space is 32 bits and stacks per process are few).
  bool Register(RoutePair* route) { return RegisterId(route->conn_id(), route); }

  // Same, under an explicit id: tests and the lookup microbench synthesize
  // many ids without compiling a stack per entry.  The table never
  // dereferences `route`.
  bool RegisterId(uint32_t key, RoutePair* route) {
    if ((size_ + 1) * 10 >= slots_.size() * 7) {
      Rehash(slots_.size() * 2);
    }
    size_t i = Home(key);
    for (;;) {
      Slot& s = slots_[i];
      if (!s.used) {
        s.used = true;
        s.key = key;
        s.route = route;
        size_++;
        return true;
      }
      if (s.key == key) {
        return s.route == route;  // Re-register is ok; a different route isn't.
      }
      i = Next(i);
    }
  }

  void Unregister(uint32_t conn_id) {
    size_t i = Home(conn_id);
    for (;;) {
      Slot& s = slots_[i];
      if (!s.used) {
        return;  // Not present.
      }
      if (s.key == conn_id) {
        break;
      }
      i = Next(i);
    }
    // Backward-shift deletion: pull every displaced follower one slot up so
    // probe chains stay gap-free without tombstones.
    size_t hole = i;
    for (size_t j = Next(hole);; j = Next(j)) {
      Slot& s = slots_[j];
      if (!s.used) {
        break;
      }
      // A follower may move into the hole only if its home slot is not inside
      // (hole, j] — i.e. the hole does not cut its probe chain.
      size_t home = Home(s.key);
      bool movable = hole <= j ? (home <= hole || home > j) : (home <= hole && home > j);
      if (movable) {
        slots_[hole] = s;
        s.used = false;
        hole = j;
      }
    }
    slots_[hole].used = false;
    slots_[hole].route = nullptr;
    size_--;
  }

  void Clear() {
    for (Slot& s : slots_) {
      s.used = false;
      s.route = nullptr;
    }
    size_ = 0;
  }

  RoutePair* Find(uint32_t conn_id) const {
    size_t i = Home(conn_id);
    for (;;) {
      const Slot& s = slots_[i];
      if (!s.used) {
        return nullptr;
      }
      if (s.key == conn_id) {
        return s.route;
      }
      i = Next(i);
    }
  }

  size_t size() const { return size_; }
  size_t capacity() const { return slots_.size(); }

 private:
  static constexpr size_t kInitialCap = 16;  // Power of two, always.

  struct Slot {
    uint32_t key = 0;
    bool used = false;
    RoutePair* route = nullptr;
  };

  // Fibonacci hashing: the multiply spreads consecutive/structured conn ids
  // across the high bits; shifting down by (32 - log2(cap)) picks the bucket.
  size_t Home(uint32_t key) const {
    return static_cast<size_t>((key * UINT32_C(2654435769)) >> shift_) & (slots_.size() - 1);
  }
  size_t Next(size_t i) const { return (i + 1) & (slots_.size() - 1); }

  void Rehash(size_t cap) {
    std::vector<Slot> old = std::move(slots_);
    slots_.assign(cap, Slot{});
    int log2 = 0;
    while ((size_t{1} << log2) < cap) {
      log2++;
    }
    shift_ = static_cast<uint32_t>(32 - log2);
    size_ = 0;
    for (const Slot& s : old) {
      if (s.used) {
        size_t i = Home(s.key);
        while (slots_[i].used) {
          i = Next(i);
        }
        slots_[i] = s;
        size_++;
      }
    }
  }

  std::vector<Slot> slots_;
  size_t size_ = 0;
  uint32_t shift_ = 28;  // 32 - log2(kInitialCap).
};

}  // namespace ensemble

#endif  // ENSEMBLE_SRC_BYPASS_CONN_TABLE_H_
