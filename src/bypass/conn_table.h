// Connection table: maps the compressed-header connection identifier to the
// compiled route that understands it.
//
// Paper §4.1.3: "most of the header fields are fixed (constant) now, [so] we
// only have to transmit the header fields that may vary" — the constants are
// folded into a short identifier.  Both sides derive identical identifiers
// deterministically from the stack composition (same layers, same field
// plans, same view), so no negotiation is needed.

#ifndef ENSEMBLE_SRC_BYPASS_CONN_TABLE_H_
#define ENSEMBLE_SRC_BYPASS_CONN_TABLE_H_

#include <map>

#include "src/bypass/compiler.h"

namespace ensemble {

class ConnTable {
 public:
  // Registers a compiled route under its connection id.  Returns false on an
  // id collision with a different route (callers treat that as fatal — the
  // id space is 32 bits and stacks per process are few).
  bool Register(RoutePair* route) {
    auto [it, inserted] = table_.emplace(route->conn_id(), route);
    return inserted || it->second == route;
  }

  void Unregister(uint32_t conn_id) { table_.erase(conn_id); }
  void Clear() { table_.clear(); }

  RoutePair* Find(uint32_t conn_id) const {
    auto it = table_.find(conn_id);
    return it == table_.end() ? nullptr : it->second;
  }

  size_t size() const { return table_.size(); }

 private:
  std::map<uint32_t, RoutePair*> table_;
};

}  // namespace ensemble

#endif  // ENSEMBLE_SRC_BYPASS_CONN_TABLE_H_
