// Hand-optimized bypass for the 4-layer stack (top, pt2pt, mnak, bottom) —
// the paper's HAND configuration.
//
// "For particular common protocol stacks, Ensemble provides carefully
// optimized bypass code for common paths through the protocol stack.  These
// paths were created manually."  Everything is fused by hand, including the
// transport marshaling, and it implements the send-after-deliver trick: "if
// the first message is delivered through the bypass code, it assumes that
// the next message can be sent through the bypass as well, without checking
// the CCPs."
//
// Wire compatibility: HAND emits exactly the same compressed datagrams as
// the machine-compiled routes (same connection ids), so HAND and MACH
// endpoints interoperate; the compiled RoutePairs are kept for the conn ids
// and for CCP-miss fallback reconstruction.

#ifndef ENSEMBLE_SRC_BYPASS_HAND_H_
#define ENSEMBLE_SRC_BYPASS_HAND_H_

#include <memory>

#include "src/bypass/compiler.h"
#include "src/layers/bottom.h"
#include "src/layers/mnak.h"
#include "src/layers/pt2pt.h"

namespace ensemble {

class Hand4Bypass {
 public:
  // `stack` must be the 4-layer stack, already initialized with a view.
  // Returns nullptr (with *error) if the stack shape is wrong.
  static std::unique_ptr<Hand4Bypass> Create(ProtocolStack* stack, std::string* error);

  // Fast paths.  Same contracts as RoutePair::TryDown / TryUp.
  bool TryDownCast(Event& ev, Iovec* wire);
  bool TryDownSend(Event& ev, Iovec* wire);
  RoutePair::UpResult TryUpCast(const Bytes& datagram, size_t offset, Rank origin, Event* out);
  RoutePair::UpResult TryUpSend(const Bytes& datagram, size_t offset, Rank origin, Event* out);

  // Phase-split pieces (latency attribution; TryDownCast/TryUpCast compose
  // them).  DownCastUpdates runs the CCP + state updates and returns the
  // assigned seqno (UINT32_MAX on CCP miss); BuildCastWire is the integrated
  // transport; UpCastCommit is the receive-side CCP + updates given the
  // already-decoded seqno.
  uint32_t DownCastUpdates(const Event& ev);
  void BuildCastWire(uint32_t seqno, const Iovec& payload, Iovec* wire) const;
  RoutePair::UpResult UpCastCommit(uint32_t seqno, const Bytes& datagram, size_t payload_off,
                                   Rank origin, Event* out);

  uint32_t cast_conn_id() const { return cast_route_->conn_id(); }
  uint32_t send_conn_id() const { return send_route_->conn_id(); }
  RoutePair* cast_route() { return cast_route_.get(); }
  RoutePair* send_route() { return send_route_.get(); }

 private:
  Hand4Bypass() = default;

  BottomFast* bottom_ = nullptr;
  MnakFast* mnak_ = nullptr;
  Pt2ptFast* pt2pt_ = nullptr;
  Rank my_rank_ = kNoRank;
  // Send-after-deliver: the next down cast skips the CCP re-check.
  bool skip_next_ccp_ = false;

  std::unique_ptr<RoutePair> cast_route_;
  std::unique_ptr<RoutePair> send_route_;
};

}  // namespace ensemble

#endif  // ENSEMBLE_SRC_BYPASS_HAND_H_
