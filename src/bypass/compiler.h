// The stack bypass compiler: dynamic-level optimization (paper §4.1.3).
//
// "Given the names of the layers in the protocol stack, the system consults
// the a priori optimizations of these layers and composes them into a
// bypass.  The individual CCPs and state updates are instantiated and
// composed by conjunction ... Header compression is integrated as well."
//
// CompileRoutePair walks a live stack's layers, looks up each layer's bypass
// rules for a message kind, assigns wire slots to the variable header fields
// (everything else folds into the connection identifier), and produces a
// RoutePair whose TryDown/TryUp are the fused fast paths.  Composition
// honours the paper's trace shapes: linear chains fuse into one pass; a
// split (local delivery) additionally routes the event through the up-rules
// of the layers above the split point, with all CCPs — including the
// self-delivery arm's — checked *before* any state update runs.

#ifndef ENSEMBLE_SRC_BYPASS_COMPILER_H_
#define ENSEMBLE_SRC_BYPASS_COMPILER_H_

#include <memory>
#include <string>
#include <vector>

#include "src/bypass/rule.h"
#include "src/marshal/header_desc.h"
#include "src/stack/engine.h"
#include "src/util/counters.h"

namespace ensemble {

// One variable header field as it appears on the wire.
struct WireField {
  LayerId layer;
  FieldType type;
  uint16_t struct_offset;  // Offset in the header struct (reconstruction).
  uint16_t var_slot;
};

// Per-layer compiled plan.
struct LayerPlan {
  LayerId id = LayerId::kNone;
  Layer* instance = nullptr;
  void* state = nullptr;
  const BypassRule* dn = nullptr;
  const BypassRule* up = nullptr;
  uint16_t var_base = 0;
  uint8_t var_count = 0;
  bool has_header = false;
  // Concrete constant values for every field (vars hold 0 here); used for
  // wire-layout hashing and header-stack reconstruction.
  std::vector<uint64_t> const_values;
};

// A compiled down+up route for one message kind on one stack instance.
class RoutePair {
 public:
  // What TryUp did with a received compressed message.
  enum class UpResult {
    kDelivered,  // CCP held; state updated; `out` is the app delivery.
    kFallback,   // CCP failed; `out` is the reconstructed full event for the
                 // normal stack's Up path.
    kBad,        // Malformed datagram.
  };

  static constexpr size_t kMaxWireVars = 32;

  // Down fast path.  On success: state updated, `wire` is the compressed
  // datagram (header block + payload, scatter-gather) and `self_deliveries`
  // receives local deliveries from split rules.  On failure (CCP miss)
  // nothing was mutated and the caller must use the normal stack.
  bool TryDown(Event& ev, Iovec* wire, std::vector<Event>* self_deliveries);

  // Phase-split variants of TryDown/TryUp, used by the latency harness to
  // attribute stack vs. transport time separately (Table 1's four rows).
  // DownUpdates = CCP check + fused state updates (stack);
  // BuildWire    = compressed-header construction (transport);
  // DecodeVars   = wire parsing (transport);
  // UpFromVars   = CCP check + fused updates + delivery event (stack).
  bool DownUpdates(Event& ev, uint64_t* vars, std::vector<Event>* self_deliveries);
  void BuildWire(const uint64_t* vars, const Event& ev, Iovec* wire) const {
    BuildWireHeader(vars, wire, ev);
  }
  bool DecodeVars(const Bytes& datagram, size_t offset, uint64_t* vars,
                  size_t* payload_off) const;
  UpResult UpFromVars(const Bytes& datagram, size_t payload_off, const uint64_t* vars,
                      Rank origin, Event* out);

  // CCP evaluation alone (no mutation) — the run-time switch of Fig. 4 and
  // the quantity behind the paper's "checking the CCPs takes only about
  // 3 µs".
  bool CheckDownCcp(const Event& ev) const;

  // Like CheckDownCcp, but names the culprit: index into plans() of the
  // first plan whose CCP rejects `ev`, or -1 when every CCP holds.  This is
  // the punt *reason* — per-layer punt counters and trace events come from
  // it, so an operator can see which layer's common case the workload missed.
  int FailingDownPlan(const Event& ev) const;

  const std::vector<LayerPlan>& plans() const { return plans_; }

  // Composed cost units of one message through this route, for the
  // compositional cost model (src/perf/cost_model.h): the same trace
  // enumeration TryDown/TryUp execute — every plan's down rule top→bottom,
  // the self-delivery arm's up rules when the trace splits, and every plan's
  // up rule bottom→top on the receiver — summed over BypassRule::CostUnits().
  // Units are relative; calibration maps them to nanoseconds.
  double CostUnits() const;

  // Up fast path for a compressed datagram body (the bytes after the
  // conn-id preamble).
  UpResult TryUp(const Bytes& datagram, size_t offset, Rank origin, Event* out);

  uint32_t conn_id() const { return conn_id_; }
  bool is_cast() const { return cast_; }
  size_t var_count() const { return nvars_; }
  size_t wire_header_bytes() const;  // Compressed header size (without payload).

  // Run-time CCP statistics (paper §4.1: "CCPs ... are typically determined
  // from run-time statistics").  A high miss rate tells the operator the
  // declared common case is not this workload's common case.
  // RelaxedCounter so live metrics snapshots can read while a shard runs.
  struct CcpStats {
    RelaxedCounter down_hits = 0;
    RelaxedCounter down_misses = 0;
    RelaxedCounter up_hits = 0;
    RelaxedCounter up_fallbacks = 0;
    double DownHitRate() const {
      uint64_t total = down_hits + down_misses;
      return total == 0 ? 1.0 : static_cast<double>(down_hits) / static_cast<double>(total);
    }
    double UpHitRate() const {
      uint64_t total = up_hits + up_fallbacks;
      return total == 0 ? 1.0 : static_cast<double>(up_hits) / static_cast<double>(total);
    }
  };
  const CcpStats& ccp_stats() const { return ccp_stats_; }

  // The composed optimization theorem, for humans and for tests.
  std::string Describe() const;

 private:
  friend std::unique_ptr<RoutePair> CompileRoutePair(ProtocolStack* stack, bool cast,
                                                     std::string* error);

  void BuildWireHeader(const uint64_t* vars, Iovec* wire, const Event& ev) const;
  void ReconstructEvent(const uint64_t* vars, const Bytes& datagram, size_t payload_off,
                        Rank origin, Event* out) const;
  // Pushes the headers of plans_[0, end) onto `hdrs` from their plans (const
  // values + wire vars), in push order.
  void MaterializeHeaders(const uint64_t* vars, size_t end, HeaderStack* hdrs) const;

  bool cast_ = true;
  std::vector<LayerPlan> plans_;  // Top -> bottom.
  std::vector<WireField> wire_;
  size_t nvars_ = 0;
  size_t split_plan_ = SIZE_MAX;  // Index into plans_ of the split layer.
  uint32_t conn_id_ = 0;
  Rank my_rank_ = kNoRank;
  CcpStats ccp_stats_;
};

// Compiles the route pair for casts (true) or point-to-point sends (false).
// Returns nullptr with *error set when some layer lacks a rule — the stack
// cannot be bypassed for that kind (the paper: only statically-optimized
// layers compose).
std::unique_ptr<RoutePair> CompileRoutePair(ProtocolStack* stack, bool cast,
                                            std::string* error);

// Process-global punt accounting keyed by the layer whose CCP failed.
// Global rather than per-RoutePair because routes are recompiled on every
// view change — per-route counters reset with them, while these survive and
// give the whole run's "which layer punts" answer.  Indexed by LayerId.
struct BypassPuntStats {
  RelaxedCounter down_hits;
  RelaxedCounter up_hits;
  RelaxedCounter down_by_layer[kLayerIdCount];
  RelaxedCounter up_by_layer[kLayerIdCount];
};
BypassPuntStats& GlobalBypassPuntStats();

}  // namespace ensemble

#endif  // ENSEMBLE_SRC_BYPASS_COMPILER_H_
