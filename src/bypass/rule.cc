#include "src/bypass/rule.h"

#include <array>
#include <map>
#include <sstream>

#include "src/marshal/header_desc.h"
#include "src/util/logging.h"

namespace ensemble {

const char* FCaseName(FCase c) {
  switch (c) {
    case FCase::kDnCast:
      return "Dn/Cast";
    case FCase::kDnSend:
      return "Dn/Send";
    case FCase::kUpCast:
      return "Up/Cast";
    case FCase::kUpSend:
      return "Up/Send";
  }
  return "?";
}

namespace {
using RuleKey = std::pair<LayerId, FCase>;
std::map<RuleKey, BypassRule>& Registry() {
  static std::map<RuleKey, BypassRule> table;
  return table;
}
}  // namespace

void RegisterBypassRule(LayerId layer, FCase fcase, BypassRule rule) {
  Registry()[{layer, fcase}] = std::move(rule);
}

const BypassRule* FindBypassRule(LayerId layer, FCase fcase) {
  auto it = Registry().find({layer, fcase});
  return it == Registry().end() ? nullptr : &it->second;
}

std::string RenderOptimizationTheorem(LayerId layer, FCase fcase) {
  std::ostringstream os;
  const BypassRule* rule = FindBypassRule(layer, fcase);
  os << "OPTIMIZING LAYER " << LayerIdName(layer) << " FOR EVENT " << FCaseName(fcase);
  if (rule == nullptr) {
    os << " : no a-priori optimization";
    return os.str();
  }
  if (rule->transparent) {
    os << " : transparent (identity, no header, no state change)";
    return os.str();
  }
  os << " ASSUMING " << rule->ccp_desc;
  if (rule->fields.empty()) {
    os << " YIELDS no header";
  } else {
    const HeaderDescriptor& desc = HeaderDescriptorFor(layer);
    os << " YIELDS header {";
    for (size_t i = 0; i < rule->fields.size(); i++) {
      os << (i > 0 ? ", " : "") << desc.fields[i].name;
      switch (rule->fields[i].kind) {
        case FieldPlan::Kind::kConst:
          os << "=" << rule->fields[i].const_value << " const";
          break;
        case FieldPlan::Kind::kVar:
          os << " var";
          break;
        case FieldPlan::Kind::kConstFromState:
          os << " const(state)";
          break;
      }
    }
    os << "}";
  }
  if (rule->split_deliver) {
    os << " AND DELIVERS LOCALLY (split)";
  }
  return os.str();
}

}  // namespace ensemble
