#include "src/bypass/hand.h"

#include <cstring>

#include "src/marshal/generic_codec.h"

namespace ensemble {

std::unique_ptr<Hand4Bypass> Hand4Bypass::Create(ProtocolStack* stack, std::string* error) {
  if (stack->depth() != 4 || stack->layer(0)->id() != LayerId::kTop ||
      stack->layer(1)->id() != LayerId::kPt2pt || stack->layer(2)->id() != LayerId::kMnak ||
      stack->layer(3)->id() != LayerId::kBottom) {
    if (error != nullptr) {
      *error = "hand bypass is written for the exact 4-layer stack top/pt2pt/mnak/bottom";
    }
    return nullptr;
  }
  auto hand = std::unique_ptr<Hand4Bypass>(new Hand4Bypass());
  hand->cast_route_ = CompileRoutePair(stack, /*cast=*/true, error);
  hand->send_route_ = CompileRoutePair(stack, /*cast=*/false, error);
  if (!hand->cast_route_ || !hand->send_route_) {
    return nullptr;
  }
  hand->pt2pt_ = static_cast<Pt2ptFast*>(stack->layer(1)->FastState());
  hand->mnak_ = static_cast<MnakFast*>(stack->layer(2)->FastState());
  hand->bottom_ = static_cast<BottomFast*>(stack->layer(3)->FastState());
  hand->my_rank_ = stack->layer(0)->rank();
  return hand;
}

uint32_t Hand4Bypass::DownCastUpdates(const Event& ev) {
  // Send-after-deliver: skip the (already known true) CCP.
  if (!skip_next_ccp_) {
    if (!bottom_->enabled) {
      return UINT32_MAX;
    }
  }
  skip_next_ccp_ = false;
  uint32_t seqno = mnak_->send_seqno;
  mnak_->self->SaveSent(seqno, ev);
  mnak_->send_seqno = seqno + 1;
  return seqno;
}

void Hand4Bypass::BuildCastWire(uint32_t seqno, const Iovec& payload, Iovec* wire) const {
  uint8_t buf[10];
  buf[0] = kWireCompressed;
  uint32_t conn = cast_route_->conn_id();
  std::memcpy(buf + 1, &conn, 4);
  buf[5] = static_cast<uint8_t>(my_rank_);
  std::memcpy(buf + 6, &seqno, 4);
  wire->Clear();
  wire->Append(Bytes::Copy(buf, sizeof(buf)));
  wire->Append(payload);
}

bool Hand4Bypass::TryDownCast(Event& ev, Iovec* wire) {
  uint32_t seqno = DownCastUpdates(ev);
  if (seqno == UINT32_MAX) {
    return false;
  }
  BuildCastWire(seqno, ev.payload, wire);
  return true;
}

bool Hand4Bypass::TryDownSend(Event& ev, Iovec* wire) {
  if (!skip_next_ccp_) {
    if (!bottom_->enabled) {
      return false;
    }
  }
  skip_next_ccp_ = false;
  uint32_t seqno = static_cast<uint32_t>(pt2pt_->self->NextSendSeqno(ev.dest));
  pt2pt_->self->FastSend(ev.dest, ev);

  uint8_t buf[10];
  buf[0] = kWireCompressed;
  uint32_t conn = send_route_->conn_id();
  std::memcpy(buf + 1, &conn, 4);
  buf[5] = static_cast<uint8_t>(my_rank_);
  std::memcpy(buf + 6, &seqno, 4);
  wire->Clear();
  wire->Append(Bytes::Copy(buf, sizeof(buf)));
  wire->Append(ev.payload);
  return true;
}

RoutePair::UpResult Hand4Bypass::UpCastCommit(uint32_t seqno, const Bytes& datagram,
                                              size_t payload_off, Rank origin, Event* out) {
  if (!bottom_->enabled || seqno != mnak_->self->Expected(origin) ||
      !mnak_->self->NoBacklog(origin)) {
    // Punt to the compiled route's reconstruction path.
    return cast_route_->TryUp(datagram, payload_off - 4, origin, out);
  }
  mnak_->self->FastReceive(origin, seqno);
  Event deliver;
  deliver.type = EventType::kDeliverCast;
  deliver.origin = origin;
  if (payload_off < datagram.size()) {
    deliver.payload.Append(datagram.Slice(payload_off, datagram.size() - payload_off));
  }
  *out = std::move(deliver);
  skip_next_ccp_ = true;  // The famous send-after-deliver assumption.
  return RoutePair::UpResult::kDelivered;
}

RoutePair::UpResult Hand4Bypass::TryUpCast(const Bytes& datagram, size_t offset, Rank origin,
                                           Event* out) {
  if (datagram.size() < offset + 4) {
    return RoutePair::UpResult::kBad;
  }
  uint32_t seqno;
  std::memcpy(&seqno, datagram.data() + offset, 4);
  return UpCastCommit(seqno, datagram, offset + 4, origin, out);
}

RoutePair::UpResult Hand4Bypass::TryUpSend(const Bytes& datagram, size_t offset, Rank origin,
                                           Event* out) {
  if (datagram.size() < offset + 4) {
    return RoutePair::UpResult::kBad;
  }
  uint32_t seqno;
  std::memcpy(&seqno, datagram.data() + offset, 4);
  if (!bottom_->enabled || seqno != pt2pt_->self->Expected(origin) ||
      !pt2pt_->self->NoBacklog(origin)) {
    return send_route_->TryUp(datagram, offset, origin, out);
  }
  pt2pt_->self->FastReceive(origin, seqno);
  Event deliver;
  deliver.type = EventType::kDeliverSend;
  deliver.origin = origin;
  size_t payload_off = offset + 4;
  if (payload_off < datagram.size()) {
    deliver.payload.Append(datagram.Slice(payload_off, datagram.size() - payload_off));
  }
  *out = std::move(deliver);
  skip_next_ccp_ = true;
  return RoutePair::UpResult::kDelivered;
}

}  // namespace ensemble
