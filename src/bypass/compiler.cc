#include "src/bypass/compiler.h"

#include <cstring>
#include <sstream>

#include "src/marshal/generic_codec.h"
#include "src/obs/trace.h"
#include "src/util/hash.h"
#include "src/util/logging.h"

namespace ensemble {

BypassPuntStats& GlobalBypassPuntStats() {
  static BypassPuntStats stats;
  return stats;
}

namespace {

constexpr size_t kMaxHeaderStructSize = 64;
constexpr size_t kMaxVars = 32;

size_t WriteVar(uint8_t* dst, FieldType type, uint64_t v) {
  switch (type) {
    case FieldType::kU8: {
      uint8_t x = static_cast<uint8_t>(v);
      std::memcpy(dst, &x, 1);
      return 1;
    }
    case FieldType::kU16: {
      uint16_t x = static_cast<uint16_t>(v);
      std::memcpy(dst, &x, 2);
      return 2;
    }
    case FieldType::kU32: {
      uint32_t x = static_cast<uint32_t>(v);
      std::memcpy(dst, &x, 4);
      return 4;
    }
    case FieldType::kU64: {
      std::memcpy(dst, &v, 8);
      return 8;
    }
  }
  return 0;
}

bool ReadVar(const uint8_t* src, size_t avail, FieldType type, uint64_t* v, size_t* used) {
  size_t n = FieldTypeSize(type);
  if (avail < n) {
    return false;
  }
  uint64_t x = 0;
  std::memcpy(&x, src, n);
  *v = x;
  *used = n;
  return true;
}

}  // namespace

std::unique_ptr<RoutePair> CompileRoutePair(ProtocolStack* stack, bool cast,
                                            std::string* error) {
  auto route = std::unique_ptr<RoutePair>(new RoutePair());
  route->cast_ = cast;
  FCase dn_case = cast ? FCase::kDnCast : FCase::kDnSend;
  FCase up_case = cast ? FCase::kUpCast : FCase::kUpSend;

  uint16_t var_slot = 0;
  uint64_t hash = kFnvOffset;
  hash = FnvMixU64(hash, cast ? 1 : 2);

  for (size_t i = 0; i < stack->depth(); i++) {
    Layer* layer = stack->layer(i);
    const BypassRule* dn = FindBypassRule(layer->id(), dn_case);
    const BypassRule* up = FindBypassRule(layer->id(), up_case);
    if (dn == nullptr || up == nullptr) {
      if (error != nullptr) {
        std::ostringstream os;
        os << "layer " << LayerIdName(layer->id()) << " has no a-priori optimization for "
           << FCaseName(dn == nullptr ? dn_case : up_case);
        *error = os.str();
      }
      return nullptr;
    }
    hash = FnvMixU64(hash, static_cast<uint64_t>(layer->id()));
    if (dn->transparent && up->transparent) {
      continue;  // Fully invisible to this message kind: fused away.
    }
    // The wire layout is defined by the down rule's field plans; the up rule
    // must agree (same classification) or the two sides would disagree about
    // the bytes.
    ENS_CHECK_MSG(dn->fields.size() == up->fields.size(),
                  "bypass field plans disagree for " << LayerIdName(layer->id()));
    for (size_t f = 0; f < dn->fields.size(); f++) {
      ENS_CHECK_MSG(dn->fields[f].is_var() == up->fields[f].is_var(),
                    "var/const classification disagrees for " << LayerIdName(layer->id()));
    }

    LayerPlan plan;
    plan.id = layer->id();
    plan.instance = layer;
    plan.state = layer->FastState();
    plan.dn = dn;
    plan.up = up;
    plan.var_base = var_slot;
    plan.has_header = !dn->fields.empty();

    if (plan.has_header) {
      const HeaderDescriptor& desc = HeaderDescriptorFor(layer->id());
      ENS_CHECK_MSG(desc.fields.size() == dn->fields.size(),
                    "field plan count mismatch for " << LayerIdName(layer->id()));
      plan.const_values.resize(desc.fields.size(), 0);
      for (size_t f = 0; f < dn->fields.size(); f++) {
        const FieldPlan& fp = dn->fields[f];
        switch (fp.kind) {
          case FieldPlan::Kind::kVar: {
            WireField wf;
            wf.layer = layer->id();
            wf.type = desc.fields[f].type;
            wf.struct_offset = desc.fields[f].offset;
            wf.var_slot = var_slot++;
            route->wire_.push_back(wf);
            hash = FnvMixU64(hash, 0xAB);  // Var marker.
            break;
          }
          case FieldPlan::Kind::kConst:
            plan.const_values[f] = fp.const_value;
            hash = FnvMixU64(hash, fp.const_value + 1);
            break;
          case FieldPlan::Kind::kConstFromState:
            ENS_CHECK(fp.state_value != nullptr && plan.state != nullptr);
            plan.const_values[f] = fp.state_value(plan.state);
            hash = FnvMixU64(hash, plan.const_values[f] + 1);
            break;
        }
      }
    }
    plan.var_count = static_cast<uint8_t>(var_slot - plan.var_base);

    if (dn->split_deliver && (dn->split_if == nullptr || dn->split_if(plan.state))) {
      route->split_plan_ = route->plans_.size();
      hash = FnvMixU64(hash, 0x5B);  // Split marker (wire-compatible either
                                     // way, but keep route identities apart).
    }
    route->plans_.push_back(std::move(plan));
  }

  ENS_CHECK_MSG(var_slot <= kMaxVars, "too many variable header fields");
  route->nvars_ = var_slot;
  route->conn_id_ = static_cast<uint32_t>(hash ^ (hash >> 32));
  route->my_rank_ = stack->depth() > 0 ? stack->layer(0)->rank() : kNoRank;
  return route;
}

size_t RoutePair::wire_header_bytes() const {
  size_t n = 1 + 4 + 1;  // tag + conn id + origin rank.
  for (const WireField& wf : wire_) {
    n += FieldTypeSize(wf.type);
  }
  return n;
}

bool RoutePair::CheckDownCcp(const Event& ev) const {
  return FailingDownPlan(ev) < 0;
}

int RoutePair::FailingDownPlan(const Event& ev) const {
  BypassCtx ctx;
  ctx.ev = const_cast<Event*>(&ev);
  for (size_t i = 0; i < plans_.size(); i++) {
    const LayerPlan& plan = plans_[i];
    if (plan.dn->transparent || plan.dn->ccp == nullptr) {
      continue;
    }
    ctx.state = plan.state;
    if (!plan.dn->ccp(ctx)) {
      return static_cast<int>(i);
    }
  }
  if (split_plan_ == SIZE_MAX) {
    return -1;
  }
  // Split: the self-delivery arm's CCPs must hold too, evaluated against the
  // values the down updates are *going to* assign (predicted, no mutation).
  uint64_t predicted[kMaxVars] = {0};
  for (const LayerPlan& plan : plans_) {
    if (plan.dn->predict == nullptr) {
      continue;
    }
    BypassCtx pctx;
    pctx.state = plan.state;
    pctx.ev = ctx.ev;
    for (int v = 0; v < plan.var_count; v++) {
      predicted[plan.var_base + v] = plan.dn->predict(pctx, v);
    }
  }
  for (size_t i = split_plan_; i-- > 0;) {
    const LayerPlan& plan = plans_[i];
    if (plan.up->transparent || plan.up->ccp == nullptr) {
      continue;
    }
    BypassCtx uctx;
    uctx.state = plan.state;
    uctx.ev = ctx.ev;
    uctx.vars_in = predicted + plan.var_base;
    if (!plan.up->ccp(uctx)) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

bool RoutePair::DownUpdates(Event& ev, uint64_t* vars, std::vector<Event>* self_deliveries) {
  int failing = FailingDownPlan(ev);
  if (failing >= 0) {
    ccp_stats_.down_misses++;
    LayerId culprit = plans_[failing].id;
    GlobalBypassPuntStats().down_by_layer[static_cast<size_t>(culprit)]++;
    ENS_TRACE(kBypassDownPunt, static_cast<int32_t>(my_rank_),
              static_cast<uint64_t>(culprit), 0);
    return false;
  }
  ccp_stats_.down_hits++;
  GlobalBypassPuntStats().down_hits++;
  ENS_TRACE(kBypassDownHit, static_cast<int32_t>(my_rank_), plans_.size(), 0);
  GlobalDispatchStats().bypass_rule_steps += plans_.size();
  // Commit: run the fused state updates, collecting wire vars.
  BypassCtx ctx;
  ctx.ev = &ev;
  for (size_t i = 0; i < plans_.size(); i++) {
    const LayerPlan& plan = plans_[i];
    if (plan.dn->update == nullptr) {
      continue;
    }
    if (plan.dn->needs_upper_headers) {
      // Give retransmission-buffering layers the header stack the normal
      // path would have built above them.  The upper layers' updates have
      // already run, so their wire vars are final.
      ev.hdrs.Clear();
      MaterializeHeaders(vars, i, &ev.hdrs);
    }
    ctx.state = plan.state;
    ctx.vars_out = vars + plan.var_base;
    plan.dn->update(ctx);
  }

  // Self-delivery arm (split shape).
  if (split_plan_ != SIZE_MAX && self_deliveries != nullptr) {
    Event self = Event::DeliverCast(my_rank_, ev.payload);
    BypassCtx uctx;
    uctx.ev = &self;
    for (size_t i = split_plan_; i-- > 0;) {
      const LayerPlan& plan = plans_[i];
      if (plan.up->update == nullptr) {
        continue;
      }
      uctx.state = plan.state;
      uctx.vars_in = vars + plan.var_base;
      plan.up->update(uctx);
    }
    self_deliveries->push_back(std::move(self));
  }
  return true;
}

bool RoutePair::TryDown(Event& ev, Iovec* wire, std::vector<Event>* self_deliveries) {
  uint64_t vars[kMaxVars] = {0};
  if (!DownUpdates(ev, vars, self_deliveries)) {
    return false;
  }
  BuildWireHeader(vars, wire, ev);
  return true;
}

double RoutePair::CostUnits() const {
  double units = 0;
  // Sender arm: every plan's down rule, exactly the DownUpdates walk.
  for (const LayerPlan& plan : plans_) {
    units += plan.dn->CostUnits();
  }
  // Self-delivery arm: the up rules above the split run again locally.
  if (split_plan_ != SIZE_MAX) {
    for (size_t i = split_plan_; i-- > 0;) {
      units += plans_[i].up->CostUnits();
    }
  }
  // Receiver arm: every plan's up rule, exactly the UpFromVars walk.
  for (size_t i = plans_.size(); i-- > 0;) {
    units += plans_[i].up->CostUnits();
  }
  return units;
}

void RoutePair::BuildWireHeader(const uint64_t* vars, Iovec* wire, const Event& ev) const {
  // [tag u8][conn u32][origin u8][vars...]
  uint8_t buf[1 + 4 + 1 + kMaxVars * 8];
  size_t pos = 0;
  buf[pos++] = kWireCompressed;
  std::memcpy(buf + pos, &conn_id_, 4);
  pos += 4;
  buf[pos++] = static_cast<uint8_t>(my_rank_);
  for (const WireField& wf : wire_) {
    pos += WriteVar(buf + pos, wf.type, vars[wf.var_slot]);
  }
  wire->Clear();
  wire->Append(Bytes::Copy(buf, pos));
  wire->Append(ev.payload);
}

bool RoutePair::DecodeVars(const Bytes& datagram, size_t offset, uint64_t* vars,
                           size_t* payload_off) const {
  size_t pos = offset;
  for (const WireField& wf : wire_) {
    size_t used = 0;
    if (!ReadVar(datagram.data() + pos, datagram.size() - pos, wf.type, &vars[wf.var_slot],
                 &used)) {
      return false;
    }
    pos += used;
  }
  *payload_off = pos;
  return true;
}

RoutePair::UpResult RoutePair::TryUp(const Bytes& datagram, size_t offset, Rank origin,
                                     Event* out) {
  uint64_t vars[kMaxVars] = {0};
  size_t payload_off = 0;
  if (!DecodeVars(datagram, offset, vars, &payload_off)) {
    return UpResult::kBad;
  }
  return UpFromVars(datagram, payload_off, vars, origin, out);
}

RoutePair::UpResult RoutePair::UpFromVars(const Bytes& datagram, size_t payload_off,
                                          const uint64_t* vars, Rank origin, Event* out) {
  GlobalDispatchStats().bypass_rule_steps += plans_.size();
  Event deliver;
  deliver.type = cast_ ? EventType::kDeliverCast : EventType::kDeliverSend;
  deliver.origin = origin;
  if (payload_off < datagram.size()) {
    deliver.payload.Append(datagram.Slice(payload_off, datagram.size() - payload_off));
  }

  // CCP phase, bottom -> top, no mutation.
  for (size_t i = plans_.size(); i-- > 0;) {
    const LayerPlan& plan = plans_[i];
    if (plan.up->transparent || plan.up->ccp == nullptr) {
      continue;
    }
    BypassCtx ctx;
    ctx.state = plan.state;
    ctx.ev = &deliver;
    ctx.vars_in = vars + plan.var_base;
    if (!plan.up->ccp(ctx)) {
      ccp_stats_.up_fallbacks++;
      GlobalBypassPuntStats().up_by_layer[static_cast<size_t>(plan.id)]++;
      ENS_TRACE(kBypassUpFallback, static_cast<int32_t>(my_rank_),
                static_cast<uint64_t>(plan.id), 0);
      ReconstructEvent(vars, datagram, payload_off, origin, out);
      return UpResult::kFallback;
    }
  }
  ccp_stats_.up_hits++;
  GlobalBypassPuntStats().up_hits++;
  ENS_TRACE(kBypassUpHit, static_cast<int32_t>(my_rank_), plans_.size(), 0);
  // Update phase, bottom -> top.
  for (size_t i = plans_.size(); i-- > 0;) {
    const LayerPlan& plan = plans_[i];
    if (plan.up->update == nullptr) {
      continue;
    }
    BypassCtx ctx;
    ctx.state = plan.state;
    ctx.ev = &deliver;
    ctx.vars_in = vars + plan.var_base;
    plan.up->update(ctx);
  }
  *out = std::move(deliver);
  return UpResult::kDelivered;
}

void RoutePair::ReconstructEvent(const uint64_t* vars, const Bytes& datagram,
                                 size_t payload_off, Rank origin, Event* out) const {
  Event ev;
  ev.type = cast_ ? EventType::kDeliverCast : EventType::kDeliverSend;
  ev.origin = origin;
  if (payload_off < datagram.size()) {
    ev.payload.Append(datagram.Slice(payload_off, datagram.size() - payload_off));
  }
  // Rebuild the full header stack in push order (top layer pushed first on
  // the sender, so we push in plans_ order).
  MaterializeHeaders(vars, plans_.size(), &ev.hdrs);
  *out = std::move(ev);
}

void RoutePair::MaterializeHeaders(const uint64_t* vars, size_t end, HeaderStack* hdrs) const {
  uint8_t scratch[kMaxHeaderStructSize];
  size_t next_wire = 0;
  for (size_t i = 0; i < end; i++) {
    const LayerPlan& plan = plans_[i];
    if (!plan.has_header) {
      continue;
    }
    const HeaderDescriptor& desc = HeaderDescriptorFor(plan.id);
    std::memset(scratch, 0, desc.size);
    for (size_t f = 0; f < desc.fields.size(); f++) {
      uint64_t value;
      if (plan.dn->fields[f].is_var()) {
        // Vars for this plan appear consecutively in wire_ starting at
        // next_wire (wire_ was built in the same traversal order).
        value = vars[wire_[next_wire].var_slot];
        next_wire++;
      } else {
        value = plan.const_values[f];
      }
      std::memcpy(scratch + desc.fields[f].offset, &value, FieldTypeSize(desc.fields[f].type));
    }
    hdrs->PushRaw(plan.id, scratch, desc.size);
  }
}

std::string RoutePair::Describe() const {
  std::ostringstream os;
  os << "STACK BYPASS for " << (cast_ ? "Cast" : "Send") << " conn=0x" << std::hex << conn_id_
     << std::dec << " vars=" << nvars_ << " hdr_bytes=" << wire_header_bytes();
  if (ccp_stats_.down_hits + ccp_stats_.down_misses + ccp_stats_.up_hits +
          ccp_stats_.up_fallbacks >
      0) {
    os << " ccp(down " << static_cast<int>(ccp_stats_.DownHitRate() * 100) << "% hit, up "
       << static_cast<int>(ccp_stats_.UpHitRate() * 100) << "% hit)";
  }
  os << "\n";
  for (const LayerPlan& plan : plans_) {
    os << "  " << RenderOptimizationTheorem(plan.id, cast_ ? FCase::kDnCast : FCase::kDnSend)
       << "\n";
    os << "  " << RenderOptimizationTheorem(plan.id, cast_ ? FCase::kUpCast : FCase::kUpSend)
       << "\n";
  }
  return os.str();
}

}  // namespace ensemble
