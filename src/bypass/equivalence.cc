#include "src/bypass/equivalence.h"

#include <sstream>

#include "src/util/rng.h"

namespace ensemble {

namespace {

// One scripted operation applied identically to both groups.
struct Op {
  bool is_send;
  int from;
  Rank dest;
  std::string payload;
};

std::vector<Op> Script(const EquivalenceOptions& options) {
  Rng rng(options.seed);
  std::vector<Op> ops;
  ops.reserve(static_cast<size_t>(options.operations));
  for (int i = 0; i < options.operations; i++) {
    Op op;
    op.is_send = rng.Chance(options.send_fraction);
    op.from = static_cast<int>(rng.Below(static_cast<uint64_t>(options.members)));
    op.dest = static_cast<Rank>(rng.Below(static_cast<uint64_t>(options.members)));
    if (op.dest == op.from) {
      op.dest = (op.dest + 1) % options.members;
    }
    op.payload = "op" + std::to_string(i);
    ops.push_back(std::move(op));
  }
  return ops;
}

bool CompareDeliveries(const GroupHarness& a, const GroupHarness& b, int members,
                       std::string* detail) {
  for (int m = 0; m < members; m++) {
    const auto& da = a.deliveries(m);
    const auto& db = b.deliveries(m);
    size_t n = std::min(da.size(), db.size());
    for (size_t i = 0; i < n; i++) {
      if (da[i].type != db[i].type || da[i].origin != db[i].origin ||
          da[i].payload != db[i].payload) {
        std::ostringstream os;
        os << "member " << m << " delivery " << i << " differs: optimized=("
           << EventTypeName(da[i].type) << "," << da[i].origin << "," << da[i].payload
           << ") reference=(" << EventTypeName(db[i].type) << "," << db[i].origin << ","
           << db[i].payload << ")";
        *detail = os.str();
        return false;
      }
    }
    if (da.size() != db.size()) {
      std::ostringstream os;
      os << "member " << m << " delivered " << da.size() << " events, reference delivered "
         << db.size();
      *detail = os.str();
      return false;
    }
  }
  return true;
}

bool CompareDigests(GroupHarness& a, GroupHarness& b, int members, size_t step,
                    std::string* detail) {
  for (int m = 0; m < members; m++) {
    ProtocolStack* sa = a.member(m).stack();
    ProtocolStack* sb = b.member(m).stack();
    for (size_t l = 0; l < sa->depth(); l++) {
      if (sa->layer(l)->StateDigest() != sb->layer(l)->StateDigest()) {
        std::ostringstream os;
        os << "step " << step << ": member " << m << " layer "
           << LayerIdName(sa->layer(l)->id()) << " state diverged";
        *detail = os.str();
        return false;
      }
    }
  }
  return true;
}

}  // namespace

EquivalenceReport CheckStackEquivalence(StackMode mode, const std::vector<LayerId>& layers,
                                        const LayerParams& params,
                                        const EquivalenceOptions& options) {
  EquivalenceReport report;

  HarnessConfig optimized;
  optimized.n = options.members;
  optimized.net = options.net;
  optimized.ep.mode = mode;
  optimized.ep.layers = layers;
  optimized.ep.params = params;

  HarnessConfig reference = optimized;
  reference.ep.mode = StackMode::kFunctional;

  GroupHarness ga(optimized);
  GroupHarness gb(reference);
  ga.StartAll();
  gb.StartAll();

  std::vector<Op> ops = Script(options);
  for (size_t i = 0; i < ops.size(); i++) {
    const Op& op = ops[i];
    if (op.is_send) {
      ga.SendFrom(op.from, op.dest, op.payload);
      gb.SendFrom(op.from, op.dest, op.payload);
    } else {
      ga.CastFrom(op.from, op.payload);
      gb.CastFrom(op.from, op.payload);
    }
    // Let both simulations fully quiesce so the comparison is step-aligned.
    ga.Run(Millis(10));
    gb.Run(Millis(10));
    report.steps++;
    if (options.compare_digests && !CompareDigests(ga, gb, options.members, i, &report.detail)) {
      report.equal = false;
      return report;
    }
  }
  ga.Run(Millis(100));
  gb.Run(Millis(100));
  if (!CompareDeliveries(ga, gb, options.members, &report.detail)) {
    report.equal = false;
    return report;
  }
  if (options.compare_digests &&
      !CompareDigests(ga, gb, options.members, ops.size(), &report.detail)) {
    report.equal = false;
  }
  return report;
}

}  // namespace ensemble
