// Slab buffer pool: the C++ analog of Ensemble's custom message allocator.
//
// Chunks of a fixed size class are recycled through a freelist instead of
// round-tripping through the general-purpose allocator for every message
// (paper §4, optimization 1: "The Ensemble distribution now has its own
// message allocator ... Ensemble is itself responsible for freeing
// messages").  Allocation counters feed the ablation bench.

#ifndef ENSEMBLE_SRC_UTIL_POOL_H_
#define ENSEMBLE_SRC_UTIL_POOL_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/util/bytes.h"
#include "src/util/counters.h"

namespace ensemble {

// RelaxedCounter fields: the pool itself is single-threaded, but live
// metrics snapshots read these from other threads.
struct PoolStats {
  RelaxedCounter allocations = 0;   // Chunks handed out.
  RelaxedCounter fresh_chunks = 0;  // Chunks that had to come from the heap.
  RelaxedCounter recycled = 0;      // Chunks served from the freelist.
  RelaxedCounter returned = 0;      // Chunks released back to the pool.
  RelaxedCounter prewarmed = 0;     // Chunks pre-faulted by Prewarm().
  // Bytes currently held by live (handed-out, not yet recycled) chunks, at
  // chunk granularity, and the high-water mark.  Freelist chunks are not
  // live; oversized requests fall to the heap and show up in HeapBufferStats
  // instead.  The overload manager's pool watermark reads `bytes.live()`.
  LiveCounter bytes;
};

// Fixed-size-class chunk pool.  Not thread-safe: Ensemble stacks are
// single-threaded by design (the paper: per-layer threads cost too much in
// context switches), so each stack owns its pool.  The sharded runtime keeps
// this true per shard — a pooled slice must drop its last reference on its
// owning shard's thread; payloads that cross shards are copied first.
class BufferPool {
 public:
  // `chunk_size` is the payload capacity of every chunk.
  explicit BufferPool(size_t chunk_size = kDefaultChunkSize);
  ~BufferPool();

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  // Allocates a writable Bytes of exactly `len` (<= chunk_size() for pooled
  // service; larger requests fall through to the heap).
  Bytes Allocate(size_t len);

  size_t chunk_size() const { return chunk_size_; }
  const PoolStats& stats() const { return stats_; }
  size_t free_count() const { return free_.size(); }

  // Internal: called by Bytes release when the last ref drops.
  void Recycle(BufferChunk* chunk);

  // Allocates and first-touches `chunks` freelist entries on the calling
  // thread.  Under first-touch NUMA policy (Linux default), calling this from
  // a core-pinned shard worker places the pool's memory on that worker's
  // node.  Also records the caller's NUMA node for numa_node().
  void Prewarm(size_t chunks);

  // NUMA node the pool was prewarmed on; -1 when never prewarmed or the
  // platform can't report it.
  int numa_node() const { return numa_node_; }

  static constexpr size_t kDefaultChunkSize = 4096;

 private:
  BufferChunk* NewChunk();

  size_t chunk_size_;
  std::vector<BufferChunk*> free_;
  PoolStats stats_;
  int numa_node_ = -1;
};

// Process-wide counters for plain heap chunk traffic, so benches can report
// "allocations avoided" for the pooled configuration.  Relaxed atomics: every
// shard worker allocates and frees heap chunks concurrently.
struct HeapBufferStats {
  RelaxedCounter heap_allocations = 0;
  RelaxedCounter heap_frees = 0;
  RelaxedCounter bytes_copied = 0;  // Payload bytes memcpy'd by Bytes::Copy/Flatten.
  // Live/peak bytes across all outstanding heap chunks, maintained at
  // HeapChunk/FreeChunk in bytes.cc (the only two sites that know capacity at
  // both ends).  Process-wide: this is the balloon the overload manager
  // bounds when a slow receiver backs up flattened channel payloads.
  LiveCounter bytes;
};
HeapBufferStats& GlobalHeapBufferStats();

}  // namespace ensemble

#endif  // ENSEMBLE_SRC_UTIL_POOL_H_
