// FNV-1a hashing helpers, used for state digests (equivalence checking),
// connection-id derivation, and the sign layer's toy MAC.

#ifndef ENSEMBLE_SRC_UTIL_HASH_H_
#define ENSEMBLE_SRC_UTIL_HASH_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace ensemble {

constexpr uint64_t kFnvOffset = 0xCBF29CE484222325ull;
constexpr uint64_t kFnvPrime = 0x100000001B3ull;

inline uint64_t FnvMix(uint64_t h, const void* data, size_t len) {
  const auto* p = static_cast<const uint8_t*>(data);
  for (size_t i = 0; i < len; i++) {
    h ^= p[i];
    h *= kFnvPrime;
  }
  return h;
}

inline uint64_t FnvMixU64(uint64_t h, uint64_t v) { return FnvMix(h, &v, sizeof(v)); }

inline uint64_t FnvHash(const void* data, size_t len) {
  return FnvMix(kFnvOffset, data, len);
}

inline uint64_t FnvHash(std::string_view s) { return FnvHash(s.data(), s.size()); }

}  // namespace ensemble

#endif  // ENSEMBLE_SRC_UTIL_HASH_H_
