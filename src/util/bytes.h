// Refcounted byte buffers and scatter-gather vectors.
//
// Ensemble avoided OCaml garbage-collection pressure by running all message
// payloads through a single pre-allocated string managed by its own allocator
// (paper §4, optimization 1) and by using scatter-gather I/O to avoid copying
// (optimization 2 and the flat Figure-6 curves).  The C++ analog is a slab
// pool (`BufferPool`) handing out refcounted slices (`Bytes`) that can be
// sliced and concatenated without copying (`Iovec`).

#ifndef ENSEMBLE_SRC_UTIL_BYTES_H_
#define ENSEMBLE_SRC_UTIL_BYTES_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

namespace ensemble {

class BufferPool;

// A contiguous, heap- or pool-backed, refcounted chunk of memory.
// Not part of the public surface; Bytes below is the user-facing slice.
struct BufferChunk {
  std::atomic<uint32_t> refs{1};
  BufferPool* pool = nullptr;  // Owning pool, or nullptr for plain heap chunks.
  uint32_t capacity = 0;
  // Payload bytes follow the struct in memory.
  uint8_t* data() { return reinterpret_cast<uint8_t*>(this + 1); }
  const uint8_t* data() const { return reinterpret_cast<const uint8_t*>(this + 1); }
};

// An immutable, refcounted slice of a BufferChunk.  Copying a Bytes bumps a
// refcount; no payload bytes are copied.  The empty Bytes owns nothing.
class Bytes {
 public:
  Bytes() = default;
  ~Bytes() { Release(); }

  Bytes(const Bytes& other) : chunk_(other.chunk_), off_(other.off_), len_(other.len_) {
    Acquire();
  }
  Bytes(Bytes&& other) noexcept : chunk_(other.chunk_), off_(other.off_), len_(other.len_) {
    other.chunk_ = nullptr;
    other.off_ = 0;
    other.len_ = 0;
  }
  Bytes& operator=(const Bytes& other) {
    if (this != &other) {
      Release();
      chunk_ = other.chunk_;
      off_ = other.off_;
      len_ = other.len_;
      Acquire();
    }
    return *this;
  }
  Bytes& operator=(Bytes&& other) noexcept {
    if (this != &other) {
      Release();
      chunk_ = other.chunk_;
      off_ = other.off_;
      len_ = other.len_;
      other.chunk_ = nullptr;
      other.off_ = 0;
      other.len_ = 0;
    }
    return *this;
  }

  // Copies `len` bytes from `data` into a freshly allocated chunk.
  static Bytes Copy(const void* data, size_t len);
  static Bytes CopyString(std::string_view s) { return Copy(s.data(), s.size()); }
  // Allocates an uninitialized writable chunk; caller fills via MutableData()
  // before sharing.  (The only window in which a Bytes is mutable.)
  static Bytes Allocate(size_t len);
  // Wraps a chunk handed out by a BufferPool.  Takes ownership of one ref.
  static Bytes FromChunk(BufferChunk* chunk, size_t off, size_t len);

  const uint8_t* data() const { return chunk_ ? chunk_->data() + off_ : nullptr; }
  uint8_t* MutableData() { return chunk_ ? chunk_->data() + off_ : nullptr; }
  size_t size() const { return len_; }
  bool empty() const { return len_ == 0; }
  uint8_t operator[](size_t i) const { return data()[i]; }

  // Sub-slice [pos, pos+n); clamps to the slice bounds.  O(1), no copy.
  Bytes Slice(size_t pos, size_t n = SIZE_MAX) const;

  std::string_view view() const {
    return {reinterpret_cast<const char*>(data()), len_};
  }
  std::string ToString() const { return std::string(view()); }

  bool operator==(const Bytes& other) const {
    return len_ == other.len_ && (len_ == 0 || std::memcmp(data(), other.data(), len_) == 0);
  }

 private:
  void Acquire() {
    if (chunk_ != nullptr) {
      chunk_->refs.fetch_add(1, std::memory_order_relaxed);
    }
  }
  void Release();

  BufferChunk* chunk_ = nullptr;
  uint32_t off_ = 0;
  uint32_t len_ = 0;
};

// A scatter-gather vector: an ordered list of Bytes slices that logically
// concatenate into one payload.  Mirrors the iovec arrays Ensemble hands to
// the UNIX scatter-gather socket interface.
class Iovec {
 public:
  Iovec() = default;
  explicit Iovec(Bytes one) { Append(std::move(one)); }

  void Append(Bytes b) {
    if (!b.empty()) {
      total_ += b.size();
      parts_.push_back(std::move(b));
    }
  }
  void Append(const Iovec& other) {
    for (const auto& p : other.parts_) {
      Append(p);
    }
  }
  void Prepend(Bytes b) {
    if (!b.empty()) {
      total_ += b.size();
      parts_.insert(parts_.begin(), std::move(b));
    }
  }
  // Pre-sizes the part list so a known Append sequence mallocs at most once.
  void Reserve(size_t parts) { parts_.reserve(parts); }

  size_t size() const { return total_; }
  bool empty() const { return total_ == 0; }
  size_t part_count() const { return parts_.size(); }
  const Bytes& part(size_t i) const { return parts_[i]; }

  // Flattens into one contiguous Bytes.  The slow path; the fast paths keep
  // the parts separate all the way to the wire.
  Bytes Flatten() const;

  // Logical sub-range as a new Iovec (no copy; slices parts).
  Iovec SubRange(size_t pos, size_t n) const;

  bool ContentEquals(const Iovec& other) const;

  void Clear() {
    parts_.clear();
    total_ = 0;
  }

 private:
  std::vector<Bytes> parts_;
  size_t total_ = 0;
};

}  // namespace ensemble

#endif  // ENSEMBLE_SRC_UTIL_BYTES_H_
