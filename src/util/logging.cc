#include "src/util/logging.h"

#include <cstring>
#include <mutex>
#include <set>

namespace ensemble {

LogLevel& GlobalLogLevel() {
  static LogLevel level = LogLevel::kWarn;
  return level;
}

namespace {
const char* Basename(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash != nullptr ? slash + 1 : path;
}

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace:
      return "T";
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarn:
      return "W";
    case LogLevel::kError:
      return "E";
  }
  return "?";
}
}  // namespace

void LogMessage(LogLevel level, const char* file, int line, const std::string& msg) {
  std::fprintf(stderr, "[%s %s:%d] %s\n", LevelName(level), Basename(file), line,
               msg.c_str());
}

void LogOncePerProcess(LogLevel level, const std::string& msg) {
  static std::mutex mu;
  static std::set<std::string> seen;
  {
    std::lock_guard<std::mutex> lock(mu);
    if (!seen.insert(msg).second) {
      return;
    }
  }
  LogMessage(level, "once", 0, msg);
}

void LogUnsupportedOnce(const char* what) {
  LogOncePerProcess(LogLevel::kError,
                    std::string(what) + " unavailable on this platform");
}

void FatalCheckFailure(const char* file, int line, const char* expr, const std::string& msg) {
  std::fprintf(stderr, "[FATAL %s:%d] check failed: %s %s\n", Basename(file), line, expr,
               msg.c_str());
  std::abort();
}

}  // namespace ensemble
