// Sequence-number window bookkeeping shared by the sliding-window layers
// (pt2pt, mnak).  Tracks which sequence numbers at or above a low-water mark
// have been seen, slides the mark over contiguous runs, and reports holes
// (the NAK set for mnak).

#ifndef ENSEMBLE_SRC_UTIL_SEQWIN_H_
#define ENSEMBLE_SRC_UTIL_SEQWIN_H_

#include <cstdint>
#include <deque>
#include <vector>

namespace ensemble {

using Seqno = uint64_t;

class SeqWindow {
 public:
  // `low` is the next expected in-order sequence number.
  explicit SeqWindow(Seqno low = 0) : low_(low) {}

  Seqno low() const { return low_; }

  // Highest seqno marked so far + 1, i.e. the exclusive upper bound of what
  // the peer has sent as far as we know.
  Seqno high() const { return low_ + seen_.size(); }

  bool Seen(Seqno s) const {
    if (s < low_) {
      return true;
    }
    size_t idx = static_cast<size_t>(s - low_);
    return idx < seen_.size() && seen_[idx];
  }

  // Marks `s` as received.  Returns false when `s` is a duplicate (already
  // seen or below the window).
  bool Mark(Seqno s) {
    if (s < low_) {
      return false;
    }
    size_t idx = static_cast<size_t>(s - low_);
    if (idx >= seen_.size()) {
      seen_.resize(idx + 1, false);
    }
    if (seen_[idx]) {
      return false;
    }
    seen_[idx] = true;
    return true;
  }

  // Advances the low-water mark over exactly one seen entry.  Returns false
  // when the entry at `low` has not been seen.
  bool SlideOne() {
    if (seen_.empty() || !seen_.front()) {
      return false;
    }
    seen_.pop_front();
    low_++;
    return true;
  }

  // Advances the low-water mark over any contiguous prefix of seen entries.
  // Returns how many entries were consumed.
  size_t Slide() {
    size_t n = 0;
    while (n < seen_.size() && seen_[n]) {
      n++;
    }
    if (n > 0) {
      seen_.erase(seen_.begin(), seen_.begin() + static_cast<long>(n));
      low_ += n;
    }
    return n;
  }

  // Widens the window so that high() >= bound without marking anything:
  // the new entries become holes.  Used when a sender advertises its send
  // watermark — unreceived suffixes turn into NAKable holes.
  void ExtendTo(Seqno bound) {
    if (bound > low_ + seen_.size()) {
      seen_.resize(static_cast<size_t>(bound - low_), false);
    }
  }

  // Sequence numbers in [low, high) that are missing — the NAK set.
  std::vector<Seqno> Holes() const {
    std::vector<Seqno> holes;
    for (size_t i = 0; i < seen_.size(); i++) {
      if (!seen_[i]) {
        holes.push_back(low_ + i);
      }
    }
    return holes;
  }

  bool HasHoles() const {
    for (bool b : seen_) {
      if (!b) {
        return true;
      }
    }
    return false;
  }

 private:
  Seqno low_;
  std::deque<bool> seen_;  // seen_[i] covers seqno low_ + i.
};

}  // namespace ensemble

#endif  // ENSEMBLE_SRC_UTIL_SEQWIN_H_
