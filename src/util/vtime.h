// Virtual time for the discrete-event simulator.  All protocol timers and
// network latencies are expressed in VTime ticks (nanoseconds of simulated
// time); nothing in the protocol code reads a wall clock, which keeps every
// run deterministic.

#ifndef ENSEMBLE_SRC_UTIL_VTIME_H_
#define ENSEMBLE_SRC_UTIL_VTIME_H_

#include <cstdint>

namespace ensemble {

// Simulated nanoseconds since simulation start.
using VTime = uint64_t;

constexpr VTime kVTimeNever = ~0ull;

constexpr VTime Micros(uint64_t us) { return us * 1000; }
constexpr VTime Millis(uint64_t ms) { return ms * 1000 * 1000; }
constexpr VTime Seconds(uint64_t s) { return s * 1000ull * 1000ull * 1000ull; }

}  // namespace ensemble

#endif  // ENSEMBLE_SRC_UTIL_VTIME_H_
