// Bounded lock-free multi-producer / single-consumer ring.
//
// The sharded runtime's cross-shard channel: any thread may TryPush (harness
// control, cross-shard packet delivery, stat requests); exactly one worker
// thread pops, at the top of its poll loop.  The implementation is Dmitry
// Vyukov's bounded MPMC queue (per-cell sequence numbers, one CAS per
// enqueue) restricted to a single consumer, which keeps it correct under any
// producer interleaving while staying allocation-free after construction.
//
// Guarantees:
//   - bounded: TryPush fails (returns false) when the ring is full — the
//     backpressure signal; nothing ever blocks inside the ring itself.
//   - FIFO per producer: two pushes by the same thread pop in push order.
//     (Cross-producer order is whatever the CAS race decided.)
//   - no ABA / no torn values: a cell's value is published by its sequence
//     store (release) and consumed after the matching load (acquire).

#ifndef ENSEMBLE_SRC_UTIL_MPSC_RING_H_
#define ENSEMBLE_SRC_UTIL_MPSC_RING_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <utility>

#include "src/util/counters.h"

namespace ensemble {

struct MpscRingStats {
  RelaxedCounter pushed;     // Successful TryPush calls.
  RelaxedCounter popped;     // Successful TryPop calls.
  RelaxedCounter full_fails; // TryPush attempts rejected by a full ring.
};

template <typename T>
class MpscRing {
 public:
  // Capacity is rounded up to a power of two (minimum 2).
  explicit MpscRing(size_t capacity) {
    size_t cap = 2;
    while (cap < capacity) {
      cap <<= 1;
    }
    mask_ = cap - 1;
    cells_ = std::make_unique<Cell[]>(cap);
    for (size_t i = 0; i < cap; i++) {
      cells_[i].seq.store(i, std::memory_order_relaxed);
    }
  }

  MpscRing(const MpscRing&) = delete;
  MpscRing& operator=(const MpscRing&) = delete;

  // Any thread.  False when the ring is full (backpressure; retry later).
  // On failure `value` is left untouched, so a caller can spin on the same
  // object without copies.
  bool TryPush(T&& value) {
    size_t pos = tail_.load(std::memory_order_relaxed);
    for (;;) {
      Cell& cell = cells_[pos & mask_];
      size_t seq = cell.seq.load(std::memory_order_acquire);
      intptr_t diff = static_cast<intptr_t>(seq) - static_cast<intptr_t>(pos);
      if (diff == 0) {
        if (tail_.compare_exchange_weak(pos, pos + 1, std::memory_order_relaxed)) {
          cell.value = std::move(value);
          cell.seq.store(pos + 1, std::memory_order_release);
          stats_.pushed++;
          return true;
        }
        // CAS lost: `pos` was reloaded; retry on the new slot.
      } else if (diff < 0) {
        stats_.full_fails++;
        return false;  // Full: the consumer hasn't freed this cell yet.
      } else {
        pos = tail_.load(std::memory_order_relaxed);  // Raced; reload.
      }
    }
  }
  bool TryPush(const T& value) {
    T copy(value);
    return TryPush(std::move(copy));
  }

  // Consumer thread only.  False when the ring is empty.
  bool TryPop(T* out) {
    size_t pos = head_.load(std::memory_order_relaxed);
    Cell& cell = cells_[pos & mask_];
    size_t seq = cell.seq.load(std::memory_order_acquire);
    if (static_cast<intptr_t>(seq) - static_cast<intptr_t>(pos + 1) < 0) {
      return false;  // Producer hasn't published this cell yet.
    }
    *out = std::move(cell.value);
    cell.value = T();  // Drop payload refs promptly (Bytes, closures).
    cell.seq.store(pos + mask_ + 1, std::memory_order_release);
    head_.store(pos + 1, std::memory_order_relaxed);
    stats_.popped++;
    return true;
  }

  // Consumer-side emptiness probe (racy for producers, exact for consumer).
  bool Empty() const {
    size_t pos = head_.load(std::memory_order_relaxed);
    size_t seq = cells_[pos & mask_].seq.load(std::memory_order_acquire);
    return static_cast<intptr_t>(seq) - static_cast<intptr_t>(pos + 1) < 0;
  }

  // Racy occupancy estimate (any thread): the scheduler's run-queue-depth
  // signal.  Exact only when producers and the consumer are quiescent; under
  // traffic it may transiently over- or under-count by in-flight pushes.
  size_t SizeApprox() const {
    size_t tail = tail_.load(std::memory_order_relaxed);
    size_t head = head_.load(std::memory_order_relaxed);
    return tail >= head ? tail - head : 0;
  }

  size_t capacity() const { return mask_ + 1; }
  const MpscRingStats& stats() const { return stats_; }

 private:
  // Sequence and value sit in separate cache-line-ish units naturally; the
  // ring is contended only at the tail CAS, which is the design's point.
  struct Cell {
    std::atomic<size_t> seq;
    T value;
  };

  std::unique_ptr<Cell[]> cells_;
  size_t mask_ = 0;
  alignas(64) std::atomic<size_t> tail_{0};  // Producers.
  alignas(64) std::atomic<size_t> head_{0};  // Consumer.
  MpscRingStats stats_;
};

}  // namespace ensemble

#endif  // ENSEMBLE_SRC_UTIL_MPSC_RING_H_
