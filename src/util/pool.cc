#include "src/util/pool.h"

#include <cstring>
#include <new>

#if defined(__linux__)
#include <sys/syscall.h>
#include <unistd.h>
#endif

namespace ensemble {

namespace {
// Node the calling thread currently runs on; -1 when unavailable.  getcpu(2)
// via raw syscall so we don't need libnuma or a glibc new enough for the
// wrapper.
int CurrentNumaNode() {
#if defined(__linux__) && defined(SYS_getcpu)
  unsigned cpu = 0;
  unsigned node = 0;
  if (syscall(SYS_getcpu, &cpu, &node, nullptr) == 0) {
    return static_cast<int>(node);
  }
#endif
  return -1;
}
}  // namespace

HeapBufferStats& GlobalHeapBufferStats() {
  static HeapBufferStats stats;
  return stats;
}

BufferPool::BufferPool(size_t chunk_size) : chunk_size_(chunk_size) {}

BufferPool::~BufferPool() {
  for (BufferChunk* chunk : free_) {
    chunk->~BufferChunk();
    ::operator delete(chunk);
  }
}

BufferChunk* BufferPool::NewChunk() {
  void* mem = ::operator new(sizeof(BufferChunk) + chunk_size_);
  auto* chunk = new (mem) BufferChunk();
  chunk->capacity = static_cast<uint32_t>(chunk_size_);
  chunk->pool = this;
  stats_.fresh_chunks++;
  return chunk;
}

Bytes BufferPool::Allocate(size_t len) {
  if (len == 0) {
    return {};
  }
  if (len > chunk_size_) {
    // Oversized request: plain heap chunk (uncommon; e.g. pre-fragmentation
    // application payloads).
    return Bytes::Allocate(len);
  }
  stats_.allocations++;
  BufferChunk* chunk;
  if (!free_.empty()) {
    chunk = free_.back();
    free_.pop_back();
    chunk->refs.store(1, std::memory_order_relaxed);
    stats_.recycled++;
  } else {
    chunk = NewChunk();
  }
  stats_.bytes.Add(chunk_size_);
  return Bytes::FromChunk(chunk, 0, len);
}

void BufferPool::Recycle(BufferChunk* chunk) {
  stats_.returned++;
  stats_.bytes.Sub(chunk_size_);
  free_.push_back(chunk);
}

void BufferPool::Prewarm(size_t chunks) {
  free_.reserve(free_.size() + chunks);
  for (size_t i = 0; i < chunks; i++) {
    BufferChunk* chunk = NewChunk();
    // First-touch: fault every page in from this thread so the kernel places
    // it on the caller's node, not wherever the setup thread ran.
    std::memset(chunk->data(), 0, chunk_size_);
    chunk->refs.store(0, std::memory_order_relaxed);
    free_.push_back(chunk);
    stats_.prewarmed++;
  }
  numa_node_ = CurrentNumaNode();
}

}  // namespace ensemble
