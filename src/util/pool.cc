#include "src/util/pool.h"

#include <new>

namespace ensemble {

HeapBufferStats& GlobalHeapBufferStats() {
  static HeapBufferStats stats;
  return stats;
}

BufferPool::BufferPool(size_t chunk_size) : chunk_size_(chunk_size) {}

BufferPool::~BufferPool() {
  for (BufferChunk* chunk : free_) {
    chunk->~BufferChunk();
    ::operator delete(chunk);
  }
}

BufferChunk* BufferPool::NewChunk() {
  void* mem = ::operator new(sizeof(BufferChunk) + chunk_size_);
  auto* chunk = new (mem) BufferChunk();
  chunk->capacity = static_cast<uint32_t>(chunk_size_);
  chunk->pool = this;
  stats_.fresh_chunks++;
  return chunk;
}

Bytes BufferPool::Allocate(size_t len) {
  if (len == 0) {
    return {};
  }
  if (len > chunk_size_) {
    // Oversized request: plain heap chunk (uncommon; e.g. pre-fragmentation
    // application payloads).
    return Bytes::Allocate(len);
  }
  stats_.allocations++;
  BufferChunk* chunk;
  if (!free_.empty()) {
    chunk = free_.back();
    free_.pop_back();
    chunk->refs.store(1, std::memory_order_relaxed);
    stats_.recycled++;
  } else {
    chunk = NewChunk();
  }
  return Bytes::FromChunk(chunk, 0, len);
}

void BufferPool::Recycle(BufferChunk* chunk) {
  stats_.returned++;
  free_.push_back(chunk);
}

}  // namespace ensemble
