// Cross-thread wakeup primitive: a pollable fd another thread can poke.
//
// An idle shard worker blocks in poll(2) on its sockets; when another thread
// posts into its cross-shard ring it must break that sleep immediately.  The
// Waker is an eventfd (Linux) or a non-blocking pipe (other POSIX) whose read
// end joins the worker's poll set; Notify() is a single write(2) and is the
// only operation that may be called from foreign threads.  On platforms with
// neither, Notify is a no-op and WaitFor degrades to a plain sleep — callers
// still make progress, just without prompt wakeups.

#ifndef ENSEMBLE_SRC_UTIL_WAKER_H_
#define ENSEMBLE_SRC_UTIL_WAKER_H_

#include <atomic>
#include <cstdint>

#include "src/util/counters.h"

namespace ensemble {

struct WakerStats {
  RelaxedCounter notifies;   // Real fd writes (Notify + first coalesced).
  RelaxedCounter coalesced;  // NotifyCoalesced calls that skipped the write.
};

class Waker {
 public:
  Waker();
  ~Waker();

  Waker(const Waker&) = delete;
  Waker& operator=(const Waker&) = delete;

  // Thread-safe: wakes the owner if it is (or is about to start) waiting.
  // Notifications are sticky until Drain(): a notify just before the owner
  // blocks makes the next wait return immediately — no lost wakeups.
  void Notify();

  // Thread-safe: like Notify(), but a burst of callers between two owner
  // Drain()s costs one fd write — the first caller arms the dirty flag and
  // pays the syscall; the rest see it armed and return.  Safe because
  // notifications are sticky: the armed flag is only true while an unconsumed
  // notification makes the fd readable, so skipping the write loses nothing.
  void NotifyCoalesced();

  // Owner thread: consumes pending notifications (and re-opens coalescing:
  // the next NotifyCoalesced after Drain() performs a real write).
  void Drain();

  // Owner thread: blocks until notified or `ns` nanoseconds pass (millisecond
  // granularity).  Returns true if a notification was consumed.
  bool WaitFor(uint64_t ns);

  // Pollable read end for embedding in a caller-owned poll(2) set, or -1 when
  // the platform has no fd to offer.
  int fd() const { return read_fd_; }

  bool ok() const { return read_fd_ >= 0; }

  const WakerStats& stats() const { return stats_; }

 private:
  int read_fd_ = -1;
  int write_fd_ = -1;  // Same as read_fd_ for eventfd.
  // True between the first NotifyCoalesced of a burst and the next Drain().
  std::atomic<bool> armed_{false};
  WakerStats stats_;
};

}  // namespace ensemble

#endif  // ENSEMBLE_SRC_UTIL_WAKER_H_
