// Relaxed atomic counters for cross-thread statistics.
//
// The sharded runtime gives every worker thread its own network backend, so
// the hot paths stay single-threaded — but stats are aggregated (and benches
// read them) from other threads.  RelaxedCounter is a drop-in replacement for
// a plain uint64_t stats field: same ++/+=/= syntax, implicit read as
// uint64_t, but every access is a relaxed atomic, so concurrent aggregation
// is defined behavior.  Relaxed ordering is enough: counters carry no
// happens-before obligations, only tallies.

#ifndef ENSEMBLE_SRC_UTIL_COUNTERS_H_
#define ENSEMBLE_SRC_UTIL_COUNTERS_H_

#include <atomic>
#include <cstdint>

namespace ensemble {

class RelaxedCounter {
 public:
  RelaxedCounter(uint64_t v = 0) : v_(v) {}  // NOLINT: implicit by design.

  RelaxedCounter(const RelaxedCounter& o) : v_(o.value()) {}
  RelaxedCounter& operator=(const RelaxedCounter& o) {
    v_.store(o.value(), std::memory_order_relaxed);
    return *this;
  }
  RelaxedCounter& operator=(uint64_t v) {
    v_.store(v, std::memory_order_relaxed);
    return *this;
  }

  uint64_t value() const { return v_.load(std::memory_order_relaxed); }
  operator uint64_t() const { return value(); }  // NOLINT: implicit by design.

  RelaxedCounter& operator++() {
    v_.fetch_add(1, std::memory_order_relaxed);
    return *this;
  }
  uint64_t operator++(int) { return v_.fetch_add(1, std::memory_order_relaxed); }
  RelaxedCounter& operator+=(uint64_t d) {
    v_.fetch_add(d, std::memory_order_relaxed);
    return *this;
  }

 private:
  std::atomic<uint64_t> v_;
};

// Live/peak pair for byte-level occupancy accounting (the Envoy
// watermark-buffer idiom needs both: live bytes drive the watermark state
// machine, peak bytes prove boundedness after the fact).  Add/Sub are relaxed
// atomics like RelaxedCounter; peak is maintained with a CAS-max loop so
// concurrent adders can't lose an observed high-water mark.
class LiveCounter {
 public:
  void Add(uint64_t d) {
    uint64_t now = live_.fetch_add(d, std::memory_order_relaxed) + d;
    uint64_t seen = peak_.load(std::memory_order_relaxed);
    while (now > seen &&
           !peak_.compare_exchange_weak(seen, now, std::memory_order_relaxed)) {
    }
  }
  // Clamped at zero: releases can transiently outrun reserves (e.g. loopback
  // self-delivery releasing a window that never charged for it).
  void Sub(uint64_t d) {
    uint64_t prev = live_.load(std::memory_order_relaxed);
    uint64_t next;
    do {
      next = prev > d ? prev - d : 0;
    } while (!live_.compare_exchange_weak(prev, next, std::memory_order_relaxed));
  }
  uint64_t live() const { return live_.load(std::memory_order_relaxed); }
  uint64_t peak() const { return peak_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> live_{0};
  std::atomic<uint64_t> peak_{0};
};

}  // namespace ensemble

#endif  // ENSEMBLE_SRC_UTIL_COUNTERS_H_
