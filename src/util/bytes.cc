#include "src/util/bytes.h"

#include <cstdlib>
#include <new>

#include "src/util/pool.h"

namespace ensemble {

namespace {

BufferChunk* HeapChunk(size_t capacity) {
  void* mem = ::operator new(sizeof(BufferChunk) + capacity);
  auto* chunk = new (mem) BufferChunk();
  chunk->capacity = static_cast<uint32_t>(capacity);
  GlobalHeapBufferStats().heap_allocations++;
  GlobalHeapBufferStats().bytes.Add(capacity);
  return chunk;
}

void FreeChunk(BufferChunk* chunk) {
  if (chunk->pool != nullptr) {
    chunk->pool->Recycle(chunk);
    return;
  }
  GlobalHeapBufferStats().heap_frees++;
  GlobalHeapBufferStats().bytes.Sub(chunk->capacity);
  chunk->~BufferChunk();
  ::operator delete(chunk);
}

}  // namespace

void Bytes::Release() {
  if (chunk_ != nullptr && chunk_->refs.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    FreeChunk(chunk_);
  }
  chunk_ = nullptr;
}

Bytes Bytes::Copy(const void* data, size_t len) {
  Bytes b = Allocate(len);
  if (len > 0) {
    std::memcpy(b.MutableData(), data, len);
    GlobalHeapBufferStats().bytes_copied += len;
  }
  return b;
}

Bytes Bytes::Allocate(size_t len) {
  Bytes b;
  if (len == 0) {
    return b;
  }
  b.chunk_ = HeapChunk(len);
  b.off_ = 0;
  b.len_ = static_cast<uint32_t>(len);
  return b;
}

Bytes Bytes::FromChunk(BufferChunk* chunk, size_t off, size_t len) {
  Bytes b;
  b.chunk_ = chunk;
  b.off_ = static_cast<uint32_t>(off);
  b.len_ = static_cast<uint32_t>(len);
  return b;
}

Bytes Bytes::Slice(size_t pos, size_t n) const {
  Bytes b;
  if (chunk_ == nullptr || pos >= len_) {
    return b;
  }
  size_t avail = len_ - pos;
  size_t take = n < avail ? n : avail;
  b.chunk_ = chunk_;
  b.off_ = static_cast<uint32_t>(off_ + pos);
  b.len_ = static_cast<uint32_t>(take);
  b.Acquire();
  return b;
}

Bytes Iovec::Flatten() const {
  if (parts_.size() == 1) {
    return parts_[0];
  }
  Bytes out = Bytes::Allocate(total_);
  size_t pos = 0;
  for (const auto& p : parts_) {
    std::memcpy(out.MutableData() + pos, p.data(), p.size());
    pos += p.size();
  }
  GlobalHeapBufferStats().bytes_copied += total_;
  return out;
}

Iovec Iovec::SubRange(size_t pos, size_t n) const {
  Iovec out;
  size_t skip = pos;
  size_t want = n;
  for (const auto& p : parts_) {
    if (want == 0) {
      break;
    }
    if (skip >= p.size()) {
      skip -= p.size();
      continue;
    }
    size_t take = p.size() - skip;
    if (take > want) {
      take = want;
    }
    out.Append(p.Slice(skip, take));
    skip = 0;
    want -= take;
  }
  return out;
}

bool Iovec::ContentEquals(const Iovec& other) const {
  if (total_ != other.total_) {
    return false;
  }
  // Walk both part lists in lockstep.
  size_t ai = 0, aoff = 0, bi = 0, boff = 0;
  size_t left = total_;
  while (left > 0) {
    const Bytes& a = parts_[ai];
    const Bytes& b = other.parts_[bi];
    size_t chunk = std::min(a.size() - aoff, b.size() - boff);
    if (std::memcmp(a.data() + aoff, b.data() + boff, chunk) != 0) {
      return false;
    }
    aoff += chunk;
    boff += chunk;
    left -= chunk;
    if (aoff == a.size()) {
      ai++;
      aoff = 0;
    }
    if (boff == b.size()) {
      bi++;
      boff = 0;
    }
  }
  return true;
}

}  // namespace ensemble
