// Minimal leveled logging + fatal checks.  Logging is compiled in but off by
// default; protocol layers log through LAYER_LOG so traces can be enabled per
// run when debugging a protocol interleaving.

#ifndef ENSEMBLE_SRC_UTIL_LOGGING_H_
#define ENSEMBLE_SRC_UTIL_LOGGING_H_

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace ensemble {

enum class LogLevel : int { kTrace = 0, kDebug = 1, kInfo = 2, kWarn = 3, kError = 4 };

// Process-wide minimum level; messages below it are dropped.
LogLevel& GlobalLogLevel();

void LogMessage(LogLevel level, const char* file, int line, const std::string& msg);

// Stream-style log statement builder.
class LogLine {
 public:
  LogLine(LogLevel level, const char* file, int line)
      : level_(level), file_(file), line_(line) {}
  ~LogLine() { LogMessage(level_, file_, line_, out_.str()); }
  template <typename T>
  LogLine& operator<<(const T& v) {
    out_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream out_;
};

[[noreturn]] void FatalCheckFailure(const char* file, int line, const char* expr,
                                    const std::string& msg);

// One log line per distinct `msg` for the process lifetime, at `level`.
// For decisions made once but queried often — resolved kAuto backends,
// platform fallbacks — where per-call logging would spam and silent
// resolution hides what actually ran.
void LogOncePerProcess(LogLevel level, const std::string& msg);

// One kError line per distinct `what` for the process lifetime.  Every
// stubbed platform path (non-POSIX UDP, waker, core pinning) reports through
// this so "feature unavailable on this platform" surfaces exactly once
// instead of silently or per-call.
void LogUnsupportedOnce(const char* what);

}  // namespace ensemble

#define ENS_LOG(level)                                                  \
  if (::ensemble::LogLevel::level < ::ensemble::GlobalLogLevel()) {    \
  } else                                                                \
    ::ensemble::LogLine(::ensemble::LogLevel::level, __FILE__, __LINE__)

// Invariant check: always on (these guard protocol invariants, not debug
// assumptions; violating one means a protocol bug, and the process stops).
#define ENS_CHECK(expr)                                                     \
  do {                                                                      \
    if (!(expr)) {                                                          \
      ::ensemble::FatalCheckFailure(__FILE__, __LINE__, #expr, "");         \
    }                                                                       \
  } while (0)

#define ENS_CHECK_MSG(expr, msg)                                            \
  do {                                                                      \
    if (!(expr)) {                                                          \
      std::ostringstream ens_check_os;                                      \
      ens_check_os << msg;                                                  \
      ::ensemble::FatalCheckFailure(__FILE__, __LINE__, #expr,              \
                                    ens_check_os.str());                    \
    }                                                                       \
  } while (0)

#endif  // ENSEMBLE_SRC_UTIL_LOGGING_H_
