#include "src/util/waker.h"

#if defined(__linux__) || defined(__APPLE__)

#include <fcntl.h>
#include <poll.h>
#include <unistd.h>

#if defined(__linux__)
#include <sys/eventfd.h>
#define ENSEMBLE_HAVE_EVENTFD 1
#endif

namespace ensemble {

Waker::Waker() {
#if defined(ENSEMBLE_HAVE_EVENTFD)
  read_fd_ = write_fd_ = eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
#else
  int fds[2];
  if (pipe(fds) == 0) {
    read_fd_ = fds[0];
    write_fd_ = fds[1];
    fcntl(read_fd_, F_SETFL, fcntl(read_fd_, F_GETFL, 0) | O_NONBLOCK);
    fcntl(write_fd_, F_SETFL, fcntl(write_fd_, F_GETFL, 0) | O_NONBLOCK);
  }
#endif
}

Waker::~Waker() {
  if (read_fd_ >= 0) {
    close(read_fd_);
  }
  if (write_fd_ >= 0 && write_fd_ != read_fd_) {
    close(write_fd_);
  }
}

void Waker::Notify() {
  if (write_fd_ < 0) {
    return;
  }
  uint64_t one = 1;
  // A full pipe / saturated eventfd counter still means "pending": the owner
  // has unconsumed notifications, so a short or failed write loses nothing.
  stats_.notifies++;
  [[maybe_unused]] ssize_t n = write(write_fd_, &one, sizeof(one));
}

void Waker::NotifyCoalesced() {
  // acq_rel: the winning exchange orders this thread's prior writes (the ring
  // push) before the owner's Drain-side load, matching Notify's semantics.
  if (armed_.exchange(true, std::memory_order_acq_rel)) {
    stats_.coalesced++;
    return;  // A write since the owner's last Drain() is still pending.
  }
  Notify();
}

void Waker::Drain() {
  if (read_fd_ < 0) {
    return;
  }
  // Disarm before consuming: a NotifyCoalesced that lands mid-drain re-arms
  // and performs a real write, which either this read loop or the owner's
  // next poll(2) observes — never lost.
  armed_.store(false, std::memory_order_release);
  uint64_t buf[8];
  while (read(read_fd_, buf, sizeof(buf)) > 0) {
  }
}

bool Waker::WaitFor(uint64_t ns) {
  if (read_fd_ < 0) {
    return false;
  }
  pollfd pfd{read_fd_, POLLIN, 0};
  int timeout_ms = static_cast<int>((ns + 999'999) / 1'000'000);
  int r = ::poll(&pfd, 1, timeout_ms);
  if (r > 0) {
    Drain();
    return true;
  }
  return false;
}

}  // namespace ensemble

#else  // Non-POSIX: no fd; waits degrade to plain sleeps.

#include <chrono>
#include <thread>

#include "src/util/logging.h"

namespace ensemble {

Waker::Waker() { LogUnsupportedOnce("Waker (fd-based wakeup)"); }
Waker::~Waker() = default;
void Waker::Notify() {}
void Waker::NotifyCoalesced() {}
void Waker::Drain() { armed_.store(false, std::memory_order_release); }
bool Waker::WaitFor(uint64_t ns) {
  std::this_thread::sleep_for(std::chrono::nanoseconds(ns));
  return false;
}

}  // namespace ensemble

#endif
