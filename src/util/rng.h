// Deterministic PRNG (xoshiro256**) used by every randomized component:
// lossy networks, spec explorers, property tests.  All randomness in the
// system flows from explicit seeds so every failure reproduces.

#ifndef ENSEMBLE_SRC_UTIL_RNG_H_
#define ENSEMBLE_SRC_UTIL_RNG_H_

#include <cstdint>

namespace ensemble {

class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ull) { Seed(seed); }

  void Seed(uint64_t seed) {
    // SplitMix64 expansion of the seed into the xoshiro state.
    uint64_t x = seed;
    for (auto& s : state_) {
      x += 0x9E3779B97F4A7C15ull;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
      s = z ^ (z >> 31);
    }
  }

  uint64_t Next() {
    uint64_t* s = state_;
    uint64_t result = Rotl(s[1] * 5, 7) * 9;
    uint64_t t = s[1] << 17;
    s[2] ^= s[0];
    s[3] ^= s[1];
    s[1] ^= s[2];
    s[0] ^= s[3];
    s[2] ^= t;
    s[3] = Rotl(s[3], 45);
    return result;
  }

  // Uniform in [0, bound). bound == 0 yields 0.
  uint64_t Below(uint64_t bound) { return bound == 0 ? 0 : Next() % bound; }

  // Uniform in [lo, hi] inclusive.
  int64_t Range(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(Below(static_cast<uint64_t>(hi - lo + 1)));
  }

  // Uniform in [0,1).
  double Double() { return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0); }

  // True with probability p.
  bool Chance(double p) { return Double() < p; }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  uint64_t state_[4];
};

}  // namespace ensemble

#endif  // ENSEMBLE_SRC_UTIL_RNG_H_
