// Hysteretic high/low watermark tracker (Envoy's watermark-buffer idiom,
// source/common/buffer/buffer_impl.h): engage when occupancy reaches the high
// mark, disengage only after it falls below the low mark, so an occupancy
// that oscillates inside the [low, high) band cannot flap the state.
//
// Pure logic, no atomics: the overload manager serializes Update() calls, and
// the unit tests drive it single-threaded from BufferPool live-byte readings.

#ifndef ENSEMBLE_SRC_OVERLOAD_WATERMARK_H_
#define ENSEMBLE_SRC_OVERLOAD_WATERMARK_H_

#include <cstdint>

namespace ensemble {
namespace overload {

class Watermark {
 public:
  Watermark() = default;
  // `high` == 0 disables the mark (never engages).  `low` should be strictly
  // below `high`; equal values degenerate to a single non-hysteretic
  // threshold, which still works but flaps.
  Watermark(uint64_t high, uint64_t low) : high_(high), low_(low) {}

  // Feeds the current occupancy.  Returns true when the engaged state
  // flipped on this call.
  bool Update(uint64_t value) {
    if (!engaged_ && high_ > 0 && value >= high_) {
      engaged_ = true;
      engages_++;
      return true;
    }
    if (engaged_ && value < low_) {
      engaged_ = false;
      disengages_++;
      return true;
    }
    return false;
  }

  bool engaged() const { return engaged_; }
  uint64_t engages() const { return engages_; }
  uint64_t disengages() const { return disengages_; }
  uint64_t high() const { return high_; }
  uint64_t low() const { return low_; }

 private:
  uint64_t high_ = 0;
  uint64_t low_ = 0;
  bool engaged_ = false;
  uint64_t engages_ = 0;
  uint64_t disengages_ = 0;
};

}  // namespace overload
}  // namespace ensemble

#endif  // ENSEMBLE_SRC_OVERLOAD_WATERMARK_H_
