// Per-group send window: bounds application payload bytes in flight toward
// one destination group, so a slow receiver group sheds its own new traffic
// at the source instead of ballooning pooled buffers and dispatch queues the
// whole process shares.
//
// Accounting is in payload bytes at the GroupEndpoint boundary: Cast/Send
// reserve size × fan-out on entry, and the runtime's delivery tap releases
// size per delivery.  Internal protocol traffic never consults the window.
// All fields are atomics: reservations happen on whichever worker currently
// owns the sender, releases on the receivers' workers, and the overload
// manager resizes limits from a third.

#ifndef ENSEMBLE_SRC_OVERLOAD_SEND_WINDOW_H_
#define ENSEMBLE_SRC_OVERLOAD_SEND_WINDOW_H_

#include <atomic>
#include <cstdint>

#include "src/util/counters.h"

namespace ensemble {
namespace overload {

class SendWindow {
 public:
  SendWindow(uint64_t limit_bytes, uint64_t min_limit_bytes)
      : initial_limit_(limit_bytes),
        min_limit_(min_limit_bytes),
        limit_(limit_bytes) {}

  // Admission check at Cast/Send entry.  False means shed this message now.
  // A lone oversized message is admitted into an empty window so the limit
  // can never wedge traffic whose unit size exceeds it.  The check-then-add
  // is intentionally non-transactional: concurrent reservers can overshoot
  // by at most one message each, which is bounded and cheap.
  bool TryReserve(uint64_t bytes) {
    if (paused_.load(std::memory_order_relaxed)) {
      sheds_++;
      shed_bytes_ += bytes;
      return false;
    }
    uint64_t flight = in_flight_.live();
    if (flight > 0 && flight + bytes > limit_.load(std::memory_order_relaxed)) {
      sheds_++;
      shed_bytes_ += bytes;
      return false;
    }
    in_flight_.Add(bytes);
    reserves_++;
    return true;
  }

  // Credited back per delivery.  Clamped at zero inside LiveCounter: loopback
  // self-deliveries and post-decay releases can outrun the charge.
  void Release(uint64_t bytes) { in_flight_.Sub(bytes); }

  // Manager controls -------------------------------------------------------

  void Shrink() {  // Halve toward the floor.
    uint64_t cur = limit_.load(std::memory_order_relaxed);
    uint64_t next = cur / 2 < min_limit_ ? min_limit_ : cur / 2;
    limit_.store(next, std::memory_order_relaxed);
  }
  void Widen() {  // Recover: double toward the configured limit.
    uint64_t cur = limit_.load(std::memory_order_relaxed);
    uint64_t next = cur * 2 > initial_limit_ ? initial_limit_ : cur * 2;
    if (next < min_limit_) {
      next = min_limit_;
    }
    limit_.store(next, std::memory_order_relaxed);
  }
  void Pause() { paused_.store(true, std::memory_order_relaxed); }
  void Resume() { paused_.store(false, std::memory_order_relaxed); }

  // Stall escape: releases ride delivery, and deliveries can be lost (lossy
  // sim nets, dropped non-reliable traffic at the kill mark).  The manager
  // halves a window that shows in-flight bytes but no delivery progress so a
  // leak degrades throughput instead of wedging the group forever.
  void Decay() { in_flight_.Sub(in_flight_.live() / 2 + 1); }

  uint64_t limit() const { return limit_.load(std::memory_order_relaxed); }
  bool paused() const { return paused_.load(std::memory_order_relaxed); }
  uint64_t in_flight() const { return in_flight_.live(); }
  uint64_t peak_in_flight() const { return in_flight_.peak(); }
  uint64_t sheds() const { return sheds_; }
  uint64_t shed_bytes() const { return shed_bytes_; }
  uint64_t reserves() const { return reserves_; }

 private:
  const uint64_t initial_limit_;
  const uint64_t min_limit_;
  std::atomic<uint64_t> limit_;
  std::atomic<bool> paused_{false};
  LiveCounter in_flight_;
  RelaxedCounter sheds_;
  RelaxedCounter shed_bytes_;
  RelaxedCounter reserves_;
};

}  // namespace overload
}  // namespace ensemble

#endif  // ENSEMBLE_SRC_OVERLOAD_SEND_WINDOW_H_
