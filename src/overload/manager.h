// Graduated overload manager: polls occupancy signals (pool/heap live bytes,
// ring occupancy, dispatch and timer backlog), folds them into one pressure
// figure (per-mille of the configured high watermark), and walks an action
// ladder with per-action hysteresis:
//
//   pressure ‰   action            effect
//   ----------   ---------------   ------------------------------------------
//     ~500       tighten_flush     backends flush per message (level 1)
//     ~600       shrink_window     halve per-group send windows each poll
//     ~750       pause_group       pause low-priority groups' windows
//     ~850       shed_join         stop admitting new group joins
//     ~950       kill_shed         drop-oldest on non-reliable dispatch
//                                  queues (level 2) + decay stuck windows
//
// Every engage/disengage transition is counted (`overload.action.<name>`)
// and trace-ringed as an async span (kOverloadEngage/kOverloadDisengage), so
// a TRACE_*.json shows exactly when each rung was active.  The manager never
// owns a thread: every shard loop calls MaybePoll(), an atomic next-deadline
// CAS elects one caller per interval, and a busy flag keeps evaluations from
// overlapping — so Watermark state stays effectively single-threaded.

#ifndef ENSEMBLE_SRC_OVERLOAD_MANAGER_H_
#define ENSEMBLE_SRC_OVERLOAD_MANAGER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "src/overload/send_window.h"
#include "src/overload/watermark.h"
#include "src/util/counters.h"
#include "src/util/vtime.h"

namespace ensemble {
namespace obs {
class MetricsRegistry;
}  // namespace obs

namespace overload {

enum class Action : uint8_t {
  kTightenFlush = 0,
  kShrinkWindow,
  kPauseGroup,
  kShedJoin,
  kKillShed,
  kCount
};
inline constexpr int kActionCount = static_cast<int>(Action::kCount);

const char* ActionName(Action a);

// Signal providers, installed by the runtime.  All must be callable from any
// worker thread; missing ones read as zero pressure.
struct OverloadSignals {
  std::function<uint64_t()> live_bytes;         // pooled + heap live bytes
  std::function<uint64_t()> ring_occupancy_pm;  // max shard inbox occupancy, ‰
  std::function<uint64_t()> dispatch_backlog;   // max dispatch queue depth
  std::function<uint64_t()> timer_backlog;      // max timer heap depth
  std::function<uint64_t()> delivered_total;    // progress signal for decay
};

// Effectors.  set_pressure fans a backpressure level to every backend
// (0 = normal, 1 = flush-per-message, 2 = additionally drop-oldest on
// non-reliable dispatch queues); both must be thread-safe.
struct OverloadActions {
  std::function<void(int level)> set_pressure;
  std::function<void()> flush_all;  // optional one-shot flush kick on engage
};

struct OverloadConfig {
  bool enabled = false;
  VTime poll_interval = Millis(2);

  // Resource high/low watermarks.  pressure‰ = value * 1000 / high, per
  // resource, combined by max; `low` shapes only the per-action hysteresis
  // below (the ladder disengage points are fractions of high).  A zero high
  // disables that resource.
  uint64_t bytes_high = 64u << 20;     // pool + heap live bytes
  uint64_t dispatch_high = 8192;       // channel dispatch queue depth
  uint64_t timer_high = 1u << 16;      // timer heap depth

  // Per-group send windows (payload bytes in flight).
  uint64_t window_bytes = 1u << 20;
  uint64_t window_min_bytes = 16u << 10;
  std::vector<int> low_priority_groups;  // paused first under pressure

  // Drop-oldest cap applied to dispatch queues while kill_shed is engaged.
  uint64_t kill_dispatch_keep = 4096;

  // Polls with in-flight bytes but zero delivery progress before windows are
  // decayed (the lost-release escape hatch).
  int stall_polls = 8;

  // Action ladder thresholds, ‰ of the high watermark, ordered as Action.
  struct Step {
    uint32_t engage_pm;
    uint32_t disengage_pm;
  };
  Step ladder[kActionCount] = {
      {500, 350},  // tighten_flush
      {600, 400},  // shrink_window
      {750, 500},  // pause_group
      {850, 600},  // shed_join
      {950, 700},  // kill_shed
  };
};

class OverloadManager {
 public:
  OverloadManager(const OverloadConfig& cfg, int num_groups);

  void InstallSignals(OverloadSignals s) { signals_ = std::move(s); }
  void InstallActions(OverloadActions a) { actions_ = std::move(a); }

  // Per-group window; nullptr for out-of-range groups.
  SendWindow* window(int group) {
    return group >= 0 && group < static_cast<int>(windows_.size())
               ? windows_[group].get()
               : nullptr;
  }
  int num_windows() const { return static_cast<int>(windows_.size()); }

  // Called from every shard-loop iteration; cheap when the interval hasn't
  // elapsed.  One caller per interval runs Evaluate().
  void MaybePoll(uint64_t now_ns);
  // Unconditional evaluation (tests drive the ladder deterministically).
  void ForcePoll(uint64_t now_ns);

  // Join admission: false (and counted) while shed_join is engaged.
  bool AcceptingJoins();

  uint32_t pressure_pm() const {
    return pressure_pm_.load(std::memory_order_relaxed);
  }
  bool engaged(Action a) const {
    return engaged_[static_cast<int>(a)].load(std::memory_order_relaxed);
  }

  struct Stats {
    RelaxedCounter actions[kActionCount];  // engage transitions per rung
    RelaxedCounter polls;
    RelaxedCounter joins_shed;
    RelaxedCounter window_decays;
  };
  const Stats& stats() const { return stats_; }
  uint64_t TotalWindowSheds() const;
  uint64_t TotalWindowShedBytes() const;

  // Registers overload.* counters and the pressure gauge.
  void RegisterMetrics(obs::MetricsRegistry& reg);

  const OverloadConfig& config() const { return cfg_; }

 private:
  void Evaluate(uint64_t now_ns);
  void ApplyTransition(Action a, bool now_engaged, uint32_t pressure);
  void PushPressureLevel();

  OverloadConfig cfg_;
  OverloadSignals signals_;
  OverloadActions actions_;
  std::vector<std::unique_ptr<SendWindow>> windows_;

  Watermark marks_[kActionCount];           // serialized by busy_
  std::atomic<bool> engaged_[kActionCount];  // cross-thread mirror
  std::atomic<uint32_t> pressure_pm_{0};
  std::atomic<uint64_t> next_poll_ns_{0};
  std::atomic<bool> busy_{false};
  int pressure_level_ = 0;            // last level pushed to backends
  uint64_t last_delivered_ = 0;       // stall-decay bookkeeping
  int stalled_polls_ = 0;
  Stats stats_;
};

}  // namespace overload
}  // namespace ensemble

#endif  // ENSEMBLE_SRC_OVERLOAD_MANAGER_H_
