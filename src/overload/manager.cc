#include "src/overload/manager.h"

#include <algorithm>
#include <string>

#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace ensemble {
namespace overload {

const char* ActionName(Action a) {
  switch (a) {
    case Action::kTightenFlush:
      return "tighten_flush";
    case Action::kShrinkWindow:
      return "shrink_window";
    case Action::kPauseGroup:
      return "pause_group";
    case Action::kShedJoin:
      return "shed_join";
    case Action::kKillShed:
      return "kill_shed";
    case Action::kCount:
      break;
  }
  return "unknown";
}

OverloadManager::OverloadManager(const OverloadConfig& cfg, int num_groups)
    : cfg_(cfg) {
  windows_.reserve(num_groups > 0 ? num_groups : 0);
  for (int g = 0; g < num_groups; g++) {
    windows_.push_back(std::make_unique<SendWindow>(cfg_.window_bytes,
                                                    cfg_.window_min_bytes));
  }
  for (int i = 0; i < kActionCount; i++) {
    marks_[i] = Watermark(cfg_.ladder[i].engage_pm, cfg_.ladder[i].disengage_pm);
    engaged_[i].store(false, std::memory_order_relaxed);
  }
}

void OverloadManager::MaybePoll(uint64_t now_ns) {
  uint64_t next = next_poll_ns_.load(std::memory_order_relaxed);
  if (now_ns < next) {
    return;
  }
  if (!next_poll_ns_.compare_exchange_strong(next, now_ns + cfg_.poll_interval,
                                             std::memory_order_acq_rel)) {
    return;  // Another worker won this interval.
  }
  // The CAS elects one poller per interval; the busy flag additionally keeps
  // a slow evaluation from overlapping the next interval's winner.
  if (busy_.exchange(true, std::memory_order_acquire)) {
    return;
  }
  Evaluate(now_ns);
  busy_.store(false, std::memory_order_release);
}

void OverloadManager::ForcePoll(uint64_t now_ns) {
  if (busy_.exchange(true, std::memory_order_acquire)) {
    return;
  }
  Evaluate(now_ns);
  busy_.store(false, std::memory_order_release);
}

bool OverloadManager::AcceptingJoins() {
  if (engaged_[static_cast<int>(Action::kShedJoin)].load(
          std::memory_order_relaxed)) {
    stats_.joins_shed++;
    return false;
  }
  return true;
}

uint64_t OverloadManager::TotalWindowSheds() const {
  uint64_t n = 0;
  for (const auto& w : windows_) {
    n += w->sheds();
  }
  return n;
}

uint64_t OverloadManager::TotalWindowShedBytes() const {
  uint64_t n = 0;
  for (const auto& w : windows_) {
    n += w->shed_bytes();
  }
  return n;
}

void OverloadManager::PushPressureLevel() {
  int level = 0;
  if (marks_[static_cast<int>(Action::kKillShed)].engaged()) {
    level = 2;
  } else if (marks_[static_cast<int>(Action::kTightenFlush)].engaged()) {
    level = 1;
  }
  if (level != pressure_level_) {
    pressure_level_ = level;
    if (actions_.set_pressure) {
      actions_.set_pressure(level);
    }
  }
}

void OverloadManager::ApplyTransition(Action a, bool now_engaged,
                                      uint32_t pressure) {
  int i = static_cast<int>(a);
  engaged_[i].store(now_engaged, std::memory_order_relaxed);
  if (now_engaged) {
    stats_.actions[i]++;
    ENS_TRACE(kOverloadEngage, -1, static_cast<uint64_t>(i), pressure);
  } else {
    ENS_TRACE(kOverloadDisengage, -1, static_cast<uint64_t>(i), pressure);
  }

  switch (a) {
    case Action::kTightenFlush:
      PushPressureLevel();
      if (now_engaged && actions_.flush_all) {
        actions_.flush_all();
      }
      break;
    case Action::kShrinkWindow:
      break;  // Per-poll behavior below.
    case Action::kPauseGroup:
      for (int g : cfg_.low_priority_groups) {
        if (SendWindow* w = window(g)) {
          if (now_engaged) {
            w->Pause();
          } else {
            w->Resume();
          }
        }
      }
      break;
    case Action::kShedJoin:
      break;  // AcceptingJoins() reads the mirror flag.
    case Action::kKillShed:
      PushPressureLevel();
      if (now_engaged) {
        for (auto& w : windows_) {
          w->Decay();
        }
      }
      break;
    case Action::kCount:
      break;
  }
}

void OverloadManager::Evaluate(uint64_t now_ns) {
  (void)now_ns;
  stats_.polls++;

  uint64_t p = 0;
  if (cfg_.bytes_high > 0 && signals_.live_bytes) {
    p = std::max(p, signals_.live_bytes() * 1000 / cfg_.bytes_high);
  }
  if (signals_.ring_occupancy_pm) {
    p = std::max(p, signals_.ring_occupancy_pm());
  }
  if (cfg_.dispatch_high > 0 && signals_.dispatch_backlog) {
    p = std::max(p, signals_.dispatch_backlog() * 1000 / cfg_.dispatch_high);
  }
  if (cfg_.timer_high > 0 && signals_.timer_backlog) {
    p = std::max(p, signals_.timer_backlog() * 1000 / cfg_.timer_high);
  }
  uint32_t pressure = static_cast<uint32_t>(std::min<uint64_t>(p, 10000));
  pressure_pm_.store(pressure, std::memory_order_relaxed);

  for (int i = 0; i < kActionCount; i++) {
    if (marks_[i].Update(pressure)) {
      ApplyTransition(static_cast<Action>(i), marks_[i].engaged(), pressure);
    }
  }

  // Continuous rungs: shrink while engaged, recover while not.
  bool shrinking = marks_[static_cast<int>(Action::kShrinkWindow)].engaged();
  for (auto& w : windows_) {
    if (shrinking) {
      w->Shrink();
    } else {
      w->Widen();
    }
  }

  // Stall decay: in-flight bytes with no delivery progress means releases
  // were lost (dropped traffic, lossy nets).  Halve rather than reset so a
  // merely-slow group keeps some admission.
  uint64_t delivered =
      signals_.delivered_total ? signals_.delivered_total() : 0;
  uint64_t in_flight = 0;
  for (const auto& w : windows_) {
    in_flight += w->in_flight();
  }
  if (in_flight > 0 && delivered == last_delivered_) {
    if (++stalled_polls_ >= cfg_.stall_polls) {
      for (auto& w : windows_) {
        if (w->in_flight() > 0) {
          w->Decay();
          stats_.window_decays++;
        }
      }
      stalled_polls_ = 0;
    }
  } else {
    stalled_polls_ = 0;
  }
  last_delivered_ = delivered;
}

void OverloadManager::RegisterMetrics(obs::MetricsRegistry& reg) {
  for (int i = 0; i < kActionCount; i++) {
    reg.Counter(std::string("overload.action.") +
                    ActionName(static_cast<Action>(i)),
                &stats_.actions[i]);
  }
  reg.Counter("overload.polls", &stats_.polls);
  reg.Counter("overload.joins_shed", &stats_.joins_shed);
  reg.Counter("overload.window_decays", &stats_.window_decays);
  reg.CounterFn("overload.window_shed", [this]() { return TotalWindowSheds(); });
  reg.CounterFn("overload.window_shed_bytes",
                [this]() { return TotalWindowShedBytes(); });
  reg.Gauge("overload.pressure_x1000", [this]() {
    return static_cast<int64_t>(pressure_pm());
  });
  reg.Gauge("overload.windows_paused", [this]() {
    int64_t n = 0;
    for (const auto& w : windows_) {
      n += w->paused() ? 1 : 0;
    }
    return n;
  });
}

}  // namespace overload
}  // namespace ensemble
