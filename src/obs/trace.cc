#include "src/obs/trace.h"

#include <algorithm>
#include <cstdio>

#include "src/event/types.h"
#include "src/obs/json.h"
#include "src/perf/timer.h"
#include "src/util/logging.h"

namespace ensemble {
namespace obs {

std::atomic<bool> g_trace_enabled{false};

namespace {
thread_local TraceRing* tls_ring = nullptr;
}  // namespace

void SetTraceEnabled(bool on) {
  g_trace_enabled.store(on, std::memory_order_relaxed);
}

void InstallThreadTraceRing(TraceRing* ring) { tls_ring = ring; }

TraceRing* ThreadTraceRing() { return tls_ring; }

void TraceToThreadRing(TraceKind kind, int32_t member, uint64_t a, uint64_t b) {
  TraceRing* r = tls_ring;
  if (r != nullptr) {
    r->Emit(kind, member, a, b);
  }
}

const char* TraceKindName(TraceKind k) {
  switch (k) {
    case TraceKind::kLayerDown:
      return "layer_down";
    case TraceKind::kLayerUp:
      return "layer_up";
    case TraceKind::kBypassDownHit:
      return "bypass_down_hit";
    case TraceKind::kBypassDownPunt:
      return "bypass_down_punt";
    case TraceKind::kBypassUpHit:
      return "bypass_up_hit";
    case TraceKind::kBypassUpFallback:
      return "bypass_up_fallback";
    case TraceKind::kRingPush:
      return "ring_push";
    case TraceKind::kRingDrain:
      return "ring_drain";
    case TraceKind::kCreditPark:
      return "credit_park";
    case TraceKind::kStealRequest:
      return "steal_request";
    case TraceKind::kStealDecline:
      return "steal_decline";
    case TraceKind::kHandoffStart:
      return "handoff_start";
    case TraceKind::kHandoffMarker:
      return "handoff_marker";
    case TraceKind::kAdopt:
      return "adopt";
    case TraceKind::kTimerFire:
      return "timer_fire";
    case TraceKind::kWakeup:
      return "wakeup";
    case TraceKind::kSnapshot:
      return "snapshot";
    case TraceKind::kOverloadEngage:
      return "overload_engage";
    case TraceKind::kOverloadDisengage:
      return "overload_disengage";
    case TraceKind::kOverloadShed:
      return "overload_shed";
    case TraceKind::kMaxTraceKind:
      break;
  }
  return "unknown";
}

// ---- TraceRing -------------------------------------------------------------

namespace {
size_t RoundUpPow2(size_t n) {
  size_t p = 1;
  while (p < n) {
    p <<= 1;
  }
  return p;
}
}  // namespace

TraceRing::TraceRing(size_t capacity, uint16_t shard)
    : buf_(new TraceEvent[RoundUpPow2(std::max<size_t>(capacity, 2))]),
      mask_(RoundUpPow2(std::max<size_t>(capacity, 2)) - 1),
      shard_(shard) {}

void TraceRing::Emit(TraceKind kind, int32_t member, uint64_t a, uint64_t b) {
  uint64_t h = head_.load(std::memory_order_relaxed);
  TraceEvent& e = buf_[h & mask_];
  e.ts_ns = NowNanos();
  e.a = a;
  e.b = b;
  e.kind = static_cast<uint16_t>(kind);
  e.shard = shard_;
  e.member = member;
  head_.store(h + 1, std::memory_order_release);
}

std::vector<TraceEvent> TraceRing::Snapshot() const {
  uint64_t h = head_.load(std::memory_order_acquire);
  size_t cap = mask_ + 1;
  uint64_t n = std::min<uint64_t>(h, cap);
  std::vector<TraceEvent> out;
  out.reserve(n);
  for (uint64_t i = h - n; i < h; i++) {
    out.push_back(buf_[i & mask_]);
  }
  return out;
}

// ---- Chrome trace export ---------------------------------------------------

namespace {

// One Perfetto instant/async event.  Migration lifecycle maps to an async
// span keyed by member id: kHandoffStart opens it on the source shard,
// kAdopt closes it on the destination — the span visually bridges tracks.
void AppendEvent(JsonWriter& w, const TraceEvent& e, uint64_t base_ns) {
  TraceKind k = static_cast<TraceKind>(e.kind);
  double ts_us = static_cast<double>(e.ts_ns - base_ns) / 1000.0;
  w.BeginObject();
  w.KV("name", TraceKindName(k));
  w.KV("ts", ts_us);
  w.KV("pid", 1);
  w.KV("tid", static_cast<int>(e.shard));
  if (k == TraceKind::kHandoffStart || k == TraceKind::kAdopt) {
    w.KV("ph", k == TraceKind::kHandoffStart ? "b" : "e");
    w.KV("cat", "migration");
    char idbuf[16];
    std::snprintf(idbuf, sizeof(idbuf), "0x%x",
                  static_cast<unsigned>(e.member < 0 ? 0 : e.member));
    w.KV("id", idbuf);
  } else if (k == TraceKind::kOverloadEngage || k == TraceKind::kOverloadDisengage) {
    // Each overload action engage..disengage renders as an async span keyed
    // by the action id (offset past member ids used by migration spans).
    w.KV("ph", k == TraceKind::kOverloadEngage ? "b" : "e");
    w.KV("cat", "overload");
    char idbuf[16];
    std::snprintf(idbuf, sizeof(idbuf), "0x%x",
                  static_cast<unsigned>(0x10000 + e.a));
    w.KV("id", idbuf);
  } else {
    w.KV("ph", "i");
    w.KV("s", "t");  // Thread-scoped instant.
    w.KV("cat", "obs");
  }
  w.Key("args").BeginObject();
  if (e.member >= 0) {
    w.KV("member", static_cast<int>(e.member));
  }
  switch (k) {
    case TraceKind::kLayerDown:
    case TraceKind::kLayerUp:
    case TraceKind::kBypassDownPunt:
    case TraceKind::kBypassUpFallback:
      w.KV("layer", LayerIdName(static_cast<LayerId>(e.a)));
      break;
    default:
      w.KV("a", e.a);
      if (e.b != 0) {
        w.KV("b", e.b);
      }
  }
  w.EndObject();
  w.EndObject();
}

}  // namespace

std::vector<TraceEvent> MergeTraceEvents(
    const std::vector<const TraceRing*>& rings) {
  std::vector<TraceEvent> merged;
  for (const TraceRing* ring : rings) {
    if (ring == nullptr) continue;
    std::vector<TraceEvent> snap = ring->Snapshot();
    merged.insert(merged.end(), snap.begin(), snap.end());
  }
  std::stable_sort(merged.begin(), merged.end(),
                   [](const TraceEvent& x, const TraceEvent& y) {
                     if (x.ts_ns != y.ts_ns) return x.ts_ns < y.ts_ns;
                     if (x.member != y.member) return x.member < y.member;
                     return x.kind < y.kind;
                   });
  return merged;
}

std::string ChromeTraceJson(const std::vector<const TraceRing*>& rings) {
  // Gather per-ring snapshots and the global time base first.
  std::vector<std::vector<TraceEvent>> events;
  uint64_t base_ns = UINT64_MAX;
  for (const TraceRing* r : rings) {
    if (r == nullptr) {
      continue;
    }
    events.push_back(r->Snapshot());
    if (!events.back().empty()) {
      base_ns = std::min(base_ns, events.back().front().ts_ns);
    }
  }
  if (base_ns == UINT64_MAX) {
    base_ns = 0;
  }

  JsonWriter w;
  w.BeginObject();
  w.KV("displayTimeUnit", "ns");
  w.Key("traceEvents").BeginArray();
  // Thread-name metadata gives each shard a labeled track.
  for (const std::vector<TraceEvent>& evs : events) {
    if (evs.empty()) {
      continue;
    }
    char name[32];
    std::snprintf(name, sizeof(name), "shard %u", evs.front().shard);
    w.BeginObject();
    w.KV("name", "thread_name").KV("ph", "M").KV("pid", 1);
    w.KV("tid", static_cast<int>(evs.front().shard));
    w.Key("args").BeginObject().KV("name", name).EndObject();
    w.EndObject();
  }
  for (const std::vector<TraceEvent>& evs : events) {
    for (const TraceEvent& e : evs) {
      AppendEvent(w, e, base_ns);
    }
  }
  w.EndArray();
  w.EndObject();
  return w.Take();
}

bool WriteChromeTrace(const std::string& path,
                      const std::vector<const TraceRing*>& rings) {
  std::string json = ChromeTraceJson(rings);
  FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    ENS_LOG(kError) << "cannot open trace file " << path;
    return false;
  }
  size_t written = std::fwrite(json.data(), 1, json.size(), f);
  int rc = std::fclose(f);
  return written == json.size() && rc == 0;
}

}  // namespace obs
}  // namespace ensemble
