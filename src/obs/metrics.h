// Metrics registry: one named place for every counter in the system.
//
// The paper's whole method is cost accounting — Tables 1–2 and Fig. 6 exist
// because every layer's time and every allocation was attributable.  The
// runtime had grown one ad-hoc struct per subsystem (NetworkStats,
// DispatchStats, ShardSchedStats, WakerStats, pool stats), each hand-printed
// by individual benches.  This registry keeps those structs as the hot-path
// representation (plain RelaxedCounter fields, no indirection where the work
// happens) and makes them *reportable*: each shard registers its instances
// under stable names, Snapshot() merges per-shard sources (sum, or max for
// high-water fields), and the text/JSON exporters are the single rendering
// path for benches, the periodic snapshotter, and tests.
//
// Three metric kinds:
//   counter   — monotonic uint64, read from a RelaxedCounter* or a callback.
//   gauge     — instantaneous int64 from a callback (resident counts, NUMA
//               node, EWMA); never merged across sources — register gauges
//               under per-shard names.
//   histogram — log2-bucketed distribution (latencies, batch sizes) backed by
//               RelaxedCounter buckets; merged bucket-wise across shards.
//
// Thread-safety: registration is mutex-guarded and happens at setup time;
// Snapshot() may run concurrently with writers (relaxed reads — a live
// snapshot is approximate, an after-join snapshot is exact).  Registered
// pointers/callbacks must outlive the registry reads; the ShardRuntime owns
// both its registry and every source it registers.

#ifndef ENSEMBLE_SRC_OBS_METRICS_H_
#define ENSEMBLE_SRC_OBS_METRICS_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "src/util/counters.h"

namespace ensemble {
namespace obs {

class JsonWriter;

enum class MetricKind : uint8_t { kCounter, kGauge, kHistogram };

// How multiple sources registered under one name combine at snapshot time.
enum class Agg : uint8_t { kSum, kMax };

// Log2 histogram: value v lands in bucket floor(log2(v)) (v=0 in bucket 0).
// 64 buckets cover the whole uint64 range, so nanosecond latencies and byte
// counts share the type.  Observe() is two relaxed increments + one add.
class LatencyHistogram {
 public:
  static constexpr size_t kBuckets = 64;

  void Observe(uint64_t v) {
    buckets_[BucketOf(v)]++;
    count_++;
    sum_ += v;
  }

  static size_t BucketOf(uint64_t v) {
    return v == 0 ? 0 : static_cast<size_t>(63 - __builtin_clzll(v));
  }
  // Inclusive upper bound of bucket i (its values are < 2^(i+1)).
  static uint64_t BucketCeil(size_t i) {
    return i >= 63 ? UINT64_MAX : (uint64_t{2} << i) - 1;
  }

  uint64_t count() const { return count_.value(); }
  uint64_t sum() const { return sum_.value(); }
  uint64_t bucket(size_t i) const { return buckets_[i].value(); }

 private:
  RelaxedCounter buckets_[kBuckets];
  RelaxedCounter count_;
  RelaxedCounter sum_;
};

// One merged metric in a snapshot.
struct Sample {
  std::string name;
  MetricKind kind = MetricKind::kCounter;
  Agg agg = Agg::kSum;
  int sources = 0;     // Instances merged into this sample.
  uint64_t value = 0;  // Counter total / gauge reading (two's-complement).
  // Histogram payload (kind == kHistogram).
  uint64_t count = 0;
  uint64_t sum = 0;
  std::vector<uint64_t> buckets;

  double Mean() const { return count == 0 ? 0 : static_cast<double>(sum) / static_cast<double>(count); }
  // Percentile estimate (bucket upper bound), q in [0,1].
  uint64_t Percentile(double q) const;
};

class MetricsSnapshot {
 public:
  // Sorted by name.
  std::vector<Sample> samples;

  const Sample* Find(std::string_view name) const;
  uint64_t Value(std::string_view name) const;  // 0 when absent.

  // Counters and histograms become differences vs `prev` (missing in prev =
  // unchanged since zero); gauges keep their current reading.
  MetricsSnapshot DeltaSince(const MetricsSnapshot& prev) const;

  // Human-readable table.  skip_zero drops all-zero counters/histograms so
  // periodic deltas stay short; gauges always print.
  std::string Text(bool skip_zero = true) const;
  // One JSON object {"name": value, ...}; histograms become sub-objects with
  // count/sum/mean/p50/p99 plus non-empty buckets.  Always complete (no
  // zero-skipping): this is the machine-readable export.
  std::string Json() const;
  // Appends the same object into an in-progress writer (benches embed it).
  void AppendJson(JsonWriter& w) const;
};

class MetricsRegistry {
 public:
  using ReadFn = std::function<uint64_t()>;

  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // Registers a counter source.  The same name may be registered many times
  // (one per shard); Snapshot() merges with `agg`.
  void Counter(std::string name, const RelaxedCounter* c, Agg agg = Agg::kSum);
  // Counter read through a callback (plain uint64_t fields, computed values).
  void CounterFn(std::string name, ReadFn fn, Agg agg = Agg::kSum);
  // Instantaneous value; not merged — use distinct (per-shard) names.
  void Gauge(std::string name, std::function<int64_t()> fn);
  // Registry-owned histogram; returns the instance to observe into.  Same
  // name from several shards merges bucket-wise.
  LatencyHistogram* Histogram(std::string name);
  // External histogram (caller-owned storage).
  void HistogramSource(std::string name, const LatencyHistogram* h);

  MetricsSnapshot Snapshot() const;
  size_t NumEntries() const;

 private:
  struct Entry {
    std::string name;
    MetricKind kind;
    Agg agg = Agg::kSum;
    const RelaxedCounter* counter = nullptr;
    ReadFn read;
    std::function<int64_t()> gauge;
    const LatencyHistogram* hist = nullptr;
  };

  mutable std::mutex mu_;
  std::vector<Entry> entries_;
  std::deque<std::unique_ptr<LatencyHistogram>> owned_;
};

}  // namespace obs
}  // namespace ensemble

#endif  // ENSEMBLE_SRC_OBS_METRICS_H_
