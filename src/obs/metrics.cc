#include "src/obs/metrics.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <map>

#include "src/obs/json.h"
#include "src/util/logging.h"

namespace ensemble {
namespace obs {

// ---- Sample ----------------------------------------------------------------

uint64_t Sample::Percentile(double q) const {
  if (count == 0 || buckets.empty()) {
    return 0;
  }
  if (q < 0) q = 0;
  if (q > 1) q = 1;
  uint64_t target = static_cast<uint64_t>(q * static_cast<double>(count - 1)) + 1;
  uint64_t seen = 0;
  for (size_t i = 0; i < buckets.size(); i++) {
    seen += buckets[i];
    if (seen >= target) {
      return LatencyHistogram::BucketCeil(i);
    }
  }
  return LatencyHistogram::BucketCeil(buckets.size() - 1);
}

// ---- MetricsSnapshot -------------------------------------------------------

const Sample* MetricsSnapshot::Find(std::string_view name) const {
  auto it = std::lower_bound(
      samples.begin(), samples.end(), name,
      [](const Sample& s, std::string_view n) { return s.name < n; });
  if (it != samples.end() && it->name == name) {
    return &*it;
  }
  return nullptr;
}

uint64_t MetricsSnapshot::Value(std::string_view name) const {
  const Sample* s = Find(name);
  return s == nullptr ? 0 : s->value;
}

MetricsSnapshot MetricsSnapshot::DeltaSince(const MetricsSnapshot& prev) const {
  MetricsSnapshot out;
  out.samples.reserve(samples.size());
  for (const Sample& cur : samples) {
    Sample d = cur;
    if (cur.kind == MetricKind::kGauge) {
      out.samples.push_back(std::move(d));
      continue;
    }
    const Sample* old = prev.Find(cur.name);
    if (old != nullptr) {
      // Counters are monotonic; a kMax counter's delta is still reported as
      // the plain difference of the merged high-water marks.
      d.value = cur.value >= old->value ? cur.value - old->value : 0;
      if (cur.kind == MetricKind::kHistogram) {
        d.count = cur.count >= old->count ? cur.count - old->count : 0;
        d.sum = cur.sum >= old->sum ? cur.sum - old->sum : 0;
        for (size_t i = 0; i < d.buckets.size() && i < old->buckets.size(); i++) {
          d.buckets[i] = cur.buckets[i] >= old->buckets[i]
                             ? cur.buckets[i] - old->buckets[i]
                             : 0;
        }
      }
    }
    out.samples.push_back(std::move(d));
  }
  return out;
}

std::string MetricsSnapshot::Text(bool skip_zero) const {
  std::string out;
  char line[256];
  for (const Sample& s : samples) {
    switch (s.kind) {
      case MetricKind::kCounter:
        if (skip_zero && s.value == 0) {
          continue;
        }
        std::snprintf(line, sizeof(line), "%-40s %12" PRIu64 "%s\n",
                      s.name.c_str(), s.value,
                      s.agg == Agg::kMax ? "  (max)" : "");
        out += line;
        break;
      case MetricKind::kGauge:
        std::snprintf(line, sizeof(line), "%-40s %12" PRId64 "  (gauge)\n",
                      s.name.c_str(), static_cast<int64_t>(s.value));
        out += line;
        break;
      case MetricKind::kHistogram:
        if (skip_zero && s.count == 0) {
          continue;
        }
        std::snprintf(line, sizeof(line),
                      "%-40s count=%" PRIu64 " mean=%.1f p50=%" PRIu64
                      " p99=%" PRIu64 "\n",
                      s.name.c_str(), s.count, s.Mean(), s.Percentile(0.5),
                      s.Percentile(0.99));
        out += line;
        break;
    }
  }
  return out;
}

void MetricsSnapshot::AppendJson(JsonWriter& w) const {
  w.BeginObject();
  for (const Sample& s : samples) {
    switch (s.kind) {
      case MetricKind::kCounter:
        w.KV(s.name, s.value);
        break;
      case MetricKind::kGauge:
        w.KV(s.name, static_cast<int64_t>(s.value));
        break;
      case MetricKind::kHistogram: {
        w.Key(s.name).BeginObject();
        w.KV("count", s.count).KV("sum", s.sum).KV("mean", s.Mean());
        w.KV("p50", s.Percentile(0.5)).KV("p99", s.Percentile(0.99));
        w.Key("buckets").BeginObject();
        for (size_t i = 0; i < s.buckets.size(); i++) {
          if (s.buckets[i] != 0) {
            char key[24];
            std::snprintf(key, sizeof(key), "le_%" PRIu64,
                          LatencyHistogram::BucketCeil(i));
            w.KV(key, s.buckets[i]);
          }
        }
        w.EndObject();
        w.EndObject();
        break;
      }
    }
  }
  w.EndObject();
}

std::string MetricsSnapshot::Json() const {
  JsonWriter w;
  AppendJson(w);
  return w.Take();
}

// ---- MetricsRegistry -------------------------------------------------------

void MetricsRegistry::Counter(std::string name, const RelaxedCounter* c, Agg agg) {
  ENS_CHECK(c != nullptr);
  std::lock_guard<std::mutex> lock(mu_);
  Entry e;
  e.name = std::move(name);
  e.kind = MetricKind::kCounter;
  e.agg = agg;
  e.counter = c;
  entries_.push_back(std::move(e));
}

void MetricsRegistry::CounterFn(std::string name, ReadFn fn, Agg agg) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry e;
  e.name = std::move(name);
  e.kind = MetricKind::kCounter;
  e.agg = agg;
  e.read = std::move(fn);
  entries_.push_back(std::move(e));
}

void MetricsRegistry::Gauge(std::string name, std::function<int64_t()> fn) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry e;
  e.name = std::move(name);
  e.kind = MetricKind::kGauge;
  e.gauge = std::move(fn);
  entries_.push_back(std::move(e));
}

LatencyHistogram* MetricsRegistry::Histogram(std::string name) {
  std::lock_guard<std::mutex> lock(mu_);
  owned_.push_back(std::make_unique<LatencyHistogram>());
  LatencyHistogram* h = owned_.back().get();
  Entry e;
  e.name = std::move(name);
  e.kind = MetricKind::kHistogram;
  e.hist = h;
  entries_.push_back(std::move(e));
  return h;
}

void MetricsRegistry::HistogramSource(std::string name, const LatencyHistogram* h) {
  ENS_CHECK(h != nullptr);
  std::lock_guard<std::mutex> lock(mu_);
  Entry e;
  e.name = std::move(name);
  e.kind = MetricKind::kHistogram;
  e.hist = h;
  entries_.push_back(std::move(e));
}

size_t MetricsRegistry::NumEntries() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  // Merge by name.  std::map keeps the output sorted, which Find() relies on.
  std::map<std::string, Sample> merged;
  for (const Entry& e : entries_) {
    auto [it, fresh] = merged.try_emplace(e.name);
    Sample& s = it->second;
    if (fresh) {
      s.name = e.name;
      s.kind = e.kind;
      s.agg = e.agg;
      if (e.kind == MetricKind::kHistogram) {
        s.buckets.assign(LatencyHistogram::kBuckets, 0);
      }
    } else if (s.kind != e.kind) {
      ENS_LOG(kError) << "metric '" << e.name << "' registered with mixed kinds";
      continue;
    }
    s.sources++;
    switch (e.kind) {
      case MetricKind::kCounter: {
        uint64_t v = e.counter != nullptr ? e.counter->value() : e.read();
        if (s.agg == Agg::kMax) {
          s.value = std::max(s.value, v);
        } else {
          s.value += v;
        }
        break;
      }
      case MetricKind::kGauge:
        // Gauges do not merge; last registration wins (callers use distinct
        // per-shard names, so in practice sources == 1).
        s.value = static_cast<uint64_t>(e.gauge());
        break;
      case MetricKind::kHistogram:
        s.count += e.hist->count();
        s.sum += e.hist->sum();
        for (size_t i = 0; i < LatencyHistogram::kBuckets; i++) {
          s.buckets[i] += e.hist->bucket(i);
        }
        break;
    }
  }
  MetricsSnapshot out;
  out.samples.reserve(merged.size());
  for (auto& [name, sample] : merged) {
    out.samples.push_back(std::move(sample));
  }
  return out;
}

}  // namespace obs
}  // namespace ensemble
