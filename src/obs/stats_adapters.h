// Bridges from the existing per-subsystem stats structs into the metrics
// registry.  Each Register* call adds the struct's fields under stable dotted
// names; registering the same struct type once per shard merges naturally
// (Snapshot sums, except explicitly max-aggregated high-water marks).
//
// The structs stay the hot-path representation — layers and backends keep
// bumping their own RelaxedCounter fields with zero extra indirection; the
// registry only holds pointers for snapshot-time reads.  Registered structs
// must outlive the registry (in practice both are owned by the same runtime
// or bench frame).

#ifndef ENSEMBLE_SRC_OBS_STATS_ADAPTERS_H_
#define ENSEMBLE_SRC_OBS_STATS_ADAPTERS_H_

#include "src/app/endpoint.h"
#include "src/bypass/compiler.h"
#include "src/net/network.h"
#include "src/obs/metrics.h"
#include "src/util/mpsc_ring.h"
#include "src/util/pool.h"
#include "src/util/waker.h"

namespace ensemble {
namespace obs {

// net.* — one call per backend instance (per shard).
void RegisterNetworkStats(MetricsRegistry& reg, const NetworkStats* s);
// ring.* — one call per cross-shard inbox.
void RegisterRingStats(MetricsRegistry& reg, const MpscRingStats* s);
// waker.* — one call per waker.
void RegisterWakerStats(MetricsRegistry& reg, const WakerStats* s);
// pool.* counters plus a `pool.<tag>.numa_node` gauge when `tag` is
// non-empty (per-shard node placement is meaningless summed).
void RegisterPoolStats(MetricsRegistry& reg, const BufferPool* pool,
                       const std::string& tag = "");
// ep.* — one call per group member endpoint.
void RegisterEndpointStats(MetricsRegistry& reg, const GroupEndpoint::Stats* s);
// dispatch.* / heap.* / bypass.* read the process-global singletons, so one
// call per registry is enough.
void RegisterDispatchStats(MetricsRegistry& reg);
void RegisterHeapStats(MetricsRegistry& reg);
// bypass.down_hits / bypass.up_hits plus per-culprit-layer punt counters
// (bypass.punt_down.<layer>, bypass.punt_up.<layer>).
void RegisterBypassPuntStats(MetricsRegistry& reg);

// Everything process-global in one call.
void RegisterGlobalStats(MetricsRegistry& reg);

}  // namespace obs
}  // namespace ensemble

#endif  // ENSEMBLE_SRC_OBS_STATS_ADAPTERS_H_
