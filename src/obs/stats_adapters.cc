#include "src/obs/stats_adapters.h"

#include <string>

#include "src/event/types.h"
#include "src/stack/layer.h"

namespace ensemble {
namespace obs {

void RegisterNetworkStats(MetricsRegistry& reg, const NetworkStats* s) {
  reg.Counter("net.sent", &s->sent);
  reg.Counter("net.delivered", &s->delivered);
  reg.Counter("net.dropped", &s->dropped);
  reg.Counter("net.duplicated", &s->duplicated);
  reg.Counter("net.delayed_extra", &s->delayed_extra);
  reg.Counter("net.bytes_sent", &s->bytes_sent);
  reg.Counter("net.send_syscalls", &s->send_syscalls);
  reg.Counter("net.recv_syscalls", &s->recv_syscalls);
  reg.Counter("net.send_batches", &s->send_batches);
  reg.Counter("net.batched_datagrams", &s->batched_datagrams);
  reg.Counter("net.max_send_batch", &s->max_send_batch, Agg::kMax);
  reg.Counter("net.packed_datagrams", &s->packed_datagrams);
  reg.Counter("net.packed_submsgs", &s->packed_submsgs);
  reg.Counter("net.uring_enters", &s->uring_enters);
  reg.Counter("net.uring_sqes", &s->uring_sqes);
  reg.Counter("net.uring_sqe_batches", &s->uring_sqe_batches);
  reg.Counter("net.uring_cqes", &s->uring_cqes);
  reg.Counter("net.uring_cqe_batches", &s->uring_cqe_batches);
  reg.Counter("net.gso_sends", &s->gso_sends);
  reg.Counter("net.gso_segments", &s->gso_segments);
  reg.Counter("net.gro_recvs", &s->gro_recvs);
  reg.Counter("net.gro_segments", &s->gro_segments);
  reg.Counter("net.bufring_refills", &s->bufring_refills);
  reg.Counter("net.demux_miss", &s->demux_miss);
  reg.Counter("net.demux_bad", &s->demux_bad);
  // Mode gauges: what the datapath resolved to after probing and fallback,
  // so BENCH/TRACE artifacts record the configuration that actually ran.
  reg.Gauge("net.ingress_mode",
            [s]() { return static_cast<int64_t>(s->ingress_mode.value()); });
  reg.Gauge("net.backend_active",
            [s]() { return static_cast<int64_t>(s->backend_active.value()); });
}

void RegisterRingStats(MetricsRegistry& reg, const MpscRingStats* s) {
  reg.Counter("ring.pushed", &s->pushed);
  reg.Counter("ring.popped", &s->popped);
  reg.Counter("ring.full_fails", &s->full_fails);
}

void RegisterWakerStats(MetricsRegistry& reg, const WakerStats* s) {
  reg.Counter("waker.notifies", &s->notifies);
  reg.Counter("waker.coalesced", &s->coalesced);
}

void RegisterPoolStats(MetricsRegistry& reg, const BufferPool* pool,
                       const std::string& tag) {
  const PoolStats* s = &pool->stats();
  reg.Counter("pool.allocations", &s->allocations);
  reg.Counter("pool.fresh_chunks", &s->fresh_chunks);
  reg.Counter("pool.recycled", &s->recycled);
  reg.Counter("pool.returned", &s->returned);
  reg.Counter("pool.prewarmed", &s->prewarmed);
  // Watermark visibility: live bytes sum across pools (DeltaSince clamps the
  // non-monotonic dips to 0); peak bytes are monotonic per pool, so kMax
  // merges to the process-wide high-water mark.
  reg.CounterFn("pool.live_bytes", [s]() { return s->bytes.live(); });
  reg.CounterFn("pool.peak_bytes", [s]() { return s->bytes.peak(); }, Agg::kMax);
  if (!tag.empty()) {
    reg.Gauge("pool." + tag + ".numa_node",
              [pool]() { return static_cast<int64_t>(pool->numa_node()); });
  }
}

void RegisterEndpointStats(MetricsRegistry& reg, const GroupEndpoint::Stats* s) {
  reg.Counter("ep.casts", &s->casts);
  reg.Counter("ep.sends", &s->sends);
  reg.Counter("ep.delivered", &s->delivered);
  reg.Counter("ep.bypass_down", &s->bypass_down);
  reg.Counter("ep.bypass_down_miss", &s->bypass_down_miss);
  reg.Counter("ep.bypass_up", &s->bypass_up);
  reg.Counter("ep.bypass_up_fallback", &s->bypass_up_fallback);
  reg.Counter("ep.packets_in", &s->packets_in);
  reg.Counter("ep.packed_in", &s->packed_in);
  reg.Counter("ep.window_shed", &s->window_shed);
}

void RegisterDispatchStats(MetricsRegistry& reg) {
  const DispatchStats* s = &GlobalDispatchStats();
  reg.Counter("dispatch.layer_invocations", &s->layer_invocations);
  reg.Counter("dispatch.bypass_rule_steps", &s->bypass_rule_steps);
}

void RegisterHeapStats(MetricsRegistry& reg) {
  const HeapBufferStats* s = &GlobalHeapBufferStats();
  reg.Counter("heap.allocations", &s->heap_allocations);
  reg.Counter("heap.frees", &s->heap_frees);
  reg.Counter("heap.bytes_copied", &s->bytes_copied);
  reg.CounterFn("heap.live_bytes", [s]() { return s->bytes.live(); });
  reg.CounterFn("heap.peak_bytes", [s]() { return s->bytes.peak(); }, Agg::kMax);
}

void RegisterBypassPuntStats(MetricsRegistry& reg) {
  const BypassPuntStats* s = &GlobalBypassPuntStats();
  reg.Counter("bypass.down_hits", &s->down_hits);
  reg.Counter("bypass.up_hits", &s->up_hits);
  for (size_t i = 0; i < kLayerIdCount; i++) {
    const char* layer = LayerIdName(static_cast<LayerId>(i));
    reg.Counter(std::string("bypass.punt_down.") + layer, &s->down_by_layer[i]);
    reg.Counter(std::string("bypass.punt_up.") + layer, &s->up_by_layer[i]);
  }
}

void RegisterGlobalStats(MetricsRegistry& reg) {
  RegisterDispatchStats(reg);
  RegisterHeapStats(reg);
  RegisterBypassPuntStats(reg);
}

}  // namespace obs
}  // namespace ensemble
