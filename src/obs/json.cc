#include "src/obs/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstring>

#include "src/util/logging.h"

namespace ensemble {
namespace obs {

// ---- JsonWriter ------------------------------------------------------------

void JsonWriter::Comma() {
  if (need_comma_) {
    out_ += ',';
  }
  need_comma_ = false;
}

void JsonWriter::AppendEscaped(std::string_view s) {
  out_ += '"';
  for (char c : s) {
    switch (c) {
      case '"':
        out_ += "\\\"";
        break;
      case '\\':
        out_ += "\\\\";
        break;
      case '\n':
        out_ += "\\n";
        break;
      case '\t':
        out_ += "\\t";
        break;
      case '\r':
        out_ += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out_ += buf;
        } else {
          out_ += c;
        }
    }
  }
  out_ += '"';
}

JsonWriter& JsonWriter::BeginObject() {
  Comma();
  out_ += '{';
  stack_.push_back(Frame::kObject);
  have_key_ = false;
  return *this;
}

JsonWriter& JsonWriter::EndObject() {
  ENS_CHECK(!stack_.empty() && stack_.back() == Frame::kObject && !have_key_);
  stack_.pop_back();
  out_ += '}';
  need_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::BeginArray() {
  Comma();
  out_ += '[';
  stack_.push_back(Frame::kArray);
  have_key_ = false;  // This array is the pending key's value.
  return *this;
}

JsonWriter& JsonWriter::EndArray() {
  ENS_CHECK(!stack_.empty() && stack_.back() == Frame::kArray);
  stack_.pop_back();
  out_ += ']';
  need_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::Key(std::string_view k) {
  ENS_CHECK(!stack_.empty() && stack_.back() == Frame::kObject && !have_key_);
  Comma();
  AppendEscaped(k);
  out_ += ':';
  have_key_ = true;
  need_comma_ = false;
  return *this;
}

JsonWriter& JsonWriter::Value(std::string_view v) {
  Comma();
  AppendEscaped(v);
  need_comma_ = true;
  have_key_ = false;
  return *this;
}

JsonWriter& JsonWriter::Value(double v) {
  Comma();
  if (!std::isfinite(v)) {
    out_ += "null";  // JSON has no Inf/NaN.
  } else {
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    out_ += buf;
  }
  need_comma_ = true;
  have_key_ = false;
  return *this;
}

JsonWriter& JsonWriter::Value(uint64_t v) {
  Comma();
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(v));
  out_ += buf;
  need_comma_ = true;
  have_key_ = false;
  return *this;
}

JsonWriter& JsonWriter::Value(int64_t v) {
  Comma();
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  out_ += buf;
  need_comma_ = true;
  have_key_ = false;
  return *this;
}

JsonWriter& JsonWriter::Value(bool v) {
  Comma();
  out_ += v ? "true" : "false";
  need_comma_ = true;
  have_key_ = false;
  return *this;
}

std::string JsonWriter::Take() {
  ENS_CHECK_MSG(stack_.empty(), "JsonWriter::Take with open containers");
  std::string out = std::move(out_);
  out_.clear();
  need_comma_ = false;
  have_key_ = false;
  return out;
}

// ---- Validator -------------------------------------------------------------

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  bool Parse(std::string* error) {
    SkipWs();
    if (!ParseValue()) {
      Fail("invalid value");
    }
    SkipWs();
    if (ok_ && pos_ != text_.size()) {
      Fail("trailing characters");
    }
    if (!ok_ && error != nullptr) {
      *error = error_;
    }
    return ok_;
  }

 private:
  void Fail(const char* what) {
    if (ok_) {
      ok_ = false;
      error_ = std::string(what) + " at offset " + std::to_string(pos_);
    }
  }
  void SkipWs() {
    while (pos_ < text_.size() && (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                                   text_[pos_] == '\n' || text_[pos_] == '\r')) {
      pos_++;
    }
  }
  bool Eat(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      pos_++;
      return true;
    }
    return false;
  }
  bool Literal(const char* lit) {
    size_t n = std::strlen(lit);
    if (text_.substr(pos_, n) == lit) {
      pos_ += n;
      return true;
    }
    return false;
  }

  bool ParseString() {
    if (!Eat('"')) {
      return false;
    }
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') {
        return true;
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        return false;  // Raw control character.
      }
      if (c == '\\') {
        if (pos_ >= text_.size()) {
          return false;
        }
        char e = text_[pos_++];
        if (e == 'u') {
          for (int i = 0; i < 4; i++) {
            if (pos_ >= text_.size() || !std::isxdigit(static_cast<unsigned char>(text_[pos_]))) {
              return false;
            }
            pos_++;
          }
        } else if (std::strchr("\"\\/bfnrt", e) == nullptr) {
          return false;
        }
      }
    }
    return false;  // Unterminated.
  }

  bool ParseNumber() {
    size_t start = pos_;
    Eat('-');
    if (!std::isdigit(static_cast<unsigned char>(pos_ < text_.size() ? text_[pos_] : '\0'))) {
      pos_ = start;
      return false;
    }
    // RFC 8259: no leading zeros ("01" is two tokens, i.e. invalid here).
    if (text_[pos_] == '0' && pos_ + 1 < text_.size() &&
        std::isdigit(static_cast<unsigned char>(text_[pos_ + 1]))) {
      return false;
    }
    while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      pos_++;
    }
    if (Eat('.')) {
      if (!std::isdigit(static_cast<unsigned char>(pos_ < text_.size() ? text_[pos_] : '\0'))) {
        return false;
      }
      while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        pos_++;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      pos_++;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        pos_++;
      }
      if (!std::isdigit(static_cast<unsigned char>(pos_ < text_.size() ? text_[pos_] : '\0'))) {
        return false;
      }
      while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        pos_++;
      }
    }
    return true;
  }

  bool ParseValue() {
    if (!ok_ || ++depth_ > kMaxDepth) {
      Fail("nesting too deep");
      return false;
    }
    SkipWs();
    bool result;
    if (pos_ >= text_.size()) {
      result = false;
    } else if (text_[pos_] == '{') {
      result = ParseObject();
    } else if (text_[pos_] == '[') {
      result = ParseArray();
    } else if (text_[pos_] == '"') {
      result = ParseString();
    } else if (Literal("true") || Literal("false") || Literal("null")) {
      result = true;
    } else {
      result = ParseNumber();
    }
    depth_--;
    return result;
  }

  bool ParseObject() {
    Eat('{');
    SkipWs();
    if (Eat('}')) {
      return true;
    }
    for (;;) {
      SkipWs();
      if (!ParseString()) {
        return false;
      }
      SkipWs();
      if (!Eat(':')) {
        return false;
      }
      if (!ParseValue()) {
        return false;
      }
      SkipWs();
      if (Eat('}')) {
        return true;
      }
      if (!Eat(',')) {
        return false;
      }
    }
  }

  bool ParseArray() {
    Eat('[');
    SkipWs();
    if (Eat(']')) {
      return true;
    }
    for (;;) {
      if (!ParseValue()) {
        return false;
      }
      SkipWs();
      if (Eat(']')) {
        return true;
      }
      if (!Eat(',')) {
        return false;
      }
    }
  }

  static constexpr int kMaxDepth = 64;
  std::string_view text_;
  size_t pos_ = 0;
  int depth_ = 0;
  bool ok_ = true;
  std::string error_;
};

}  // namespace

bool ValidateJson(std::string_view text, std::string* error) {
  return Parser(text).Parse(error);
}

bool ValidateJsonFile(const std::string& path, std::string* error) {
  FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    if (error != nullptr) {
      *error = "cannot open " + path;
    }
    return false;
  }
  std::string text;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    text.append(buf, n);
  }
  std::fclose(f);
  return ValidateJson(text, error);
}

}  // namespace obs
}  // namespace ensemble
