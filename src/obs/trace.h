// Lock-free per-shard trace ring with Chrome trace-event export.
//
// Each worker thread owns one TraceRing (single writer); events are 32-byte
// PODs written with a monotonically increasing head counter into a
// power-of-two buffer, overwriting the oldest when full — tracing never
// blocks and never allocates on the hot path.  Readers (after join, or
// best-effort on a live run) reconstruct oldest-first order from the head.
//
// Cost model, because the bypass fast path is the whole point of this repo:
//   ENSEMBLE_TRACE=OFF build  — ENS_TRACE expands to nothing; zero bytes.
//   runtime disabled (default) — one relaxed atomic load + predicted branch.
//   runtime enabled            — the load, a TLS lookup, and a ring store.
//
// The exporter emits Chrome trace-event JSON ({"traceEvents": [...]}) that
// loads in Perfetto / chrome://tracing: one track per shard, instant events
// for handoffs/punts/ring ops, and async begin/end pairs for the
// steal-migration lifecycle so a group's move between shards shows as a span.

#ifndef ENSEMBLE_SRC_OBS_TRACE_H_
#define ENSEMBLE_SRC_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace ensemble {
namespace obs {

enum class TraceKind : uint16_t {
  kLayerDown = 0,       // a = LayerId
  kLayerUp,             // a = LayerId
  kBypassDownHit,       // a = route depth
  kBypassDownPunt,      // a = LayerId of first failing CCP plan
  kBypassUpHit,         // a = route depth
  kBypassUpFallback,    // a = LayerId of first failing CCP plan
  kRingPush,            // a = destination shard, b = queue depth after push
  kRingDrain,           // a = messages drained
  kCreditPark,          // a = destination shard
  kStealRequest,        // a = victim shard
  kStealDecline,        // a = requesting shard
  kHandoffStart,        // async begin; member in event, a = destination shard
  kHandoffMarker,       // a = destination shard
  kAdopt,               // async end; a = source shard
  kTimerFire,           // a = number of timers fired
  kWakeup,              // a = 1 if coalesced
  kSnapshot,            // periodic snapshotter tick; a = sequence number
  kOverloadEngage,      // async begin; a = overload::Action, b = pressure ‰
  kOverloadDisengage,   // async end; a = overload::Action, b = pressure ‰
  kOverloadShed,        // a = shed site (0 send window, 1 dispatch queue), b = bytes
  kMaxTraceKind
};

const char* TraceKindName(TraceKind k);

struct TraceEvent {
  uint64_t ts_ns = 0;
  uint64_t a = 0;
  uint64_t b = 0;
  uint16_t kind = 0;
  uint16_t shard = 0;
  int32_t member = -1;
};
static_assert(sizeof(TraceEvent) == 32, "TraceEvent should stay one half-line");

// Single-writer ring.  Emit() may only be called from the owning thread;
// Snapshot() from any thread (exact once the writer has quiesced, else
// best-effort — a torn in-flight slot can surface, which is acceptable for a
// diagnostic stream).
class TraceRing {
 public:
  // Capacity is rounded up to a power of two; shard tags every event.
  TraceRing(size_t capacity, uint16_t shard);

  void Emit(TraceKind kind, int32_t member, uint64_t a, uint64_t b);

  // Events oldest-first.  At most capacity() entries; earlier ones were
  // overwritten (count visible via dropped()).
  std::vector<TraceEvent> Snapshot() const;

  size_t capacity() const { return mask_ + 1; }
  uint16_t shard() const { return shard_; }
  uint64_t total() const { return head_.load(std::memory_order_relaxed); }
  uint64_t dropped() const {
    uint64_t h = total();
    return h > capacity() ? h - capacity() : 0;
  }

 private:
  std::unique_ptr<TraceEvent[]> buf_;
  size_t mask_;
  uint16_t shard_;
  std::atomic<uint64_t> head_{0};
};

// ---- Global enable switch + thread-local sink ------------------------------

extern std::atomic<bool> g_trace_enabled;

inline bool TraceOn() { return g_trace_enabled.load(std::memory_order_relaxed); }
void SetTraceEnabled(bool on);

// Installs `ring` as this thread's trace sink (nullptr to detach).  The
// worker loop installs its shard's ring right after pinning.
void InstallThreadTraceRing(TraceRing* ring);
TraceRing* ThreadTraceRing();

// Out-of-line slow path: looks up the thread-local ring and emits.  Kept
// non-inline so the ENS_TRACE call sites only inline the enabled check.
void TraceToThreadRing(TraceKind kind, int32_t member, uint64_t a, uint64_t b);

#if defined(ENSEMBLE_TRACE_OFF)
inline constexpr bool kTraceCompiledIn = false;
#define ENS_TRACE(kind, member, a, b) \
  do {                                \
  } while (0)
#else
inline constexpr bool kTraceCompiledIn = true;
#define ENS_TRACE(kind, member, a, b)                                       \
  do {                                                                      \
    if (::ensemble::obs::TraceOn()) {                                       \
      ::ensemble::obs::TraceToThreadRing(::ensemble::obs::TraceKind::kind,  \
                                         (member), (a), (b));               \
    }                                                                       \
  } while (0)
#endif

// ---- Export ----------------------------------------------------------------

// Snapshots every ring and merges the events into one time-ordered stream
// (ties broken by member then kind, so a member's handoff_start sorts before
// its adopt even at equal timestamps).  steady_clock is one domain across
// threads, so the merge is causal.  Null rings are skipped.
std::vector<TraceEvent> MergeTraceEvents(
    const std::vector<const TraceRing*>& rings);

// Chrome trace-event JSON for a set of rings (one track per shard).
// Timestamps are rebased to the earliest event across all rings.
std::string ChromeTraceJson(const std::vector<const TraceRing*>& rings);

// Writes ChromeTraceJson to `path`; false on I/O failure.
bool WriteChromeTrace(const std::string& path,
                      const std::vector<const TraceRing*>& rings);

}  // namespace obs
}  // namespace ensemble

#endif  // ENSEMBLE_SRC_OBS_TRACE_H_
