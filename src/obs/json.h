// Minimal JSON writer + validator shared by the observability exporters, the
// benches' result files, and the trace golden-file checks.
//
// The writer is a streaming builder with correct string escaping — it
// replaces the hand-maintained fprintf format strings that used to be
// copy-pasted across bench/*.cc.  The validator is a strict recursive-descent
// parser (structure only, values discarded) used by tests and by the CI
// smoke check that the Chrome trace export stays loadable.

#ifndef ENSEMBLE_SRC_OBS_JSON_H_
#define ENSEMBLE_SRC_OBS_JSON_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace ensemble {
namespace obs {

// Streaming JSON builder.  Containers are opened/closed explicitly; commas
// and key quoting/escaping are handled here.  Misuse (a key outside an
// object, unbalanced End calls) is a programming error and asserts.
class JsonWriter {
 public:
  JsonWriter& BeginObject();
  JsonWriter& EndObject();
  JsonWriter& BeginArray();
  JsonWriter& EndArray();

  // Key for the next value; only valid directly inside an object.
  JsonWriter& Key(std::string_view k);

  JsonWriter& Value(std::string_view v);
  JsonWriter& Value(const char* v) { return Value(std::string_view(v)); }
  JsonWriter& Value(double v);
  JsonWriter& Value(uint64_t v);
  JsonWriter& Value(int64_t v);
  JsonWriter& Value(int v) { return Value(static_cast<int64_t>(v)); }
  JsonWriter& Value(unsigned v) { return Value(static_cast<uint64_t>(v)); }
  JsonWriter& Value(bool v);

  // Key/value in one call — the common case.
  template <typename T>
  JsonWriter& KV(std::string_view k, T v) {
    Key(k);
    return Value(v);
  }

  // Finishes and returns the document (writer is reset afterwards).
  std::string Take();
  const std::string& str() const { return out_; }

 private:
  enum class Frame : uint8_t { kObject, kArray };
  void Comma();
  void AppendEscaped(std::string_view s);

  std::string out_;
  std::vector<Frame> stack_;
  bool need_comma_ = false;
  bool have_key_ = false;
};

// Strict structural validation of a complete JSON document.  Returns false
// and fills *error (when non-null) with a position-stamped message.
bool ValidateJson(std::string_view text, std::string* error = nullptr);

// Reads and validates a file; false when unreadable or invalid.
bool ValidateJsonFile(const std::string& path, std::string* error = nullptr);

}  // namespace obs
}  // namespace ensemble

#endif  // ENSEMBLE_SRC_OBS_JSON_H_
