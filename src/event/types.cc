#include "src/event/types.h"

#include <sstream>

namespace ensemble {

std::string View::ToString() const {
  std::ostringstream os;
  os << "view{" << vid.coord << "." << vid.counter << " [";
  for (size_t i = 0; i < members.size(); i++) {
    os << (i > 0 ? "," : "") << members[i].id;
  }
  os << "]}";
  return os.str();
}

const char* LayerIdName(LayerId id) {
  switch (id) {
    case LayerId::kNone:
      return "none";
    case LayerId::kBottom:
      return "bottom";
    case LayerId::kMnak:
      return "mnak";
    case LayerId::kPt2pt:
      return "pt2pt";
    case LayerId::kMflow:
      return "mflow";
    case LayerId::kPt2ptw:
      return "pt2ptw";
    case LayerId::kFrag:
      return "frag";
    case LayerId::kCollect:
      return "collect";
    case LayerId::kLocal:
      return "local";
    case LayerId::kTotal:
      return "total";
    case LayerId::kTotalBuggy:
      return "total_buggy";
    case LayerId::kFifoBuggy:
      return "fifo_buggy";
    case LayerId::kPartialAppl:
      return "partial_appl";
    case LayerId::kTop:
      return "top";
    case LayerId::kFifoCheck:
      return "fifo_check";
    case LayerId::kTotalCheck:
      return "total_check";
    case LayerId::kSuspect:
      return "suspect";
    case LayerId::kElect:
      return "elect";
    case LayerId::kSync:
      return "sync";
    case LayerId::kIntra:
      return "intra";
    case LayerId::kStable:
      return "stable";
    case LayerId::kEncrypt:
      return "encrypt";
    case LayerId::kSign:
      return "sign";
    case LayerId::kTestLinear:
      return "test_linear";
    case LayerId::kTestBounce:
      return "test_bounce";
    case LayerId::kTestSplit:
      return "test_split";
    case LayerId::kMaxLayerId:
      return "max";
  }
  return "?";
}

const char* EventTypeName(EventType t) {
  switch (t) {
    case EventType::kNone:
      return "None";
    case EventType::kCast:
      return "Cast";
    case EventType::kSend:
      return "Send";
    case EventType::kTimer:
      return "Timer";
    case EventType::kBlockOk:
      return "BlockOk";
    case EventType::kLeave:
      return "Leave";
    case EventType::kSuspectDn:
      return "SuspectDn";
    case EventType::kDeliverCast:
      return "DeliverCast";
    case EventType::kDeliverSend:
      return "DeliverSend";
    case EventType::kInit:
      return "Init";
    case EventType::kView:
      return "View";
    case EventType::kBlock:
      return "Block";
    case EventType::kSuspect:
      return "Suspect";
    case EventType::kElect:
      return "Elect";
    case EventType::kStable:
      return "Stable";
    case EventType::kLostMessage:
      return "LostMessage";
    case EventType::kExit:
      return "Exit";
  }
  return "?";
}

}  // namespace ensemble
