// Core identifier types shared across the system: endpoints, views, layer
// identities, event types.
//
// Terminology follows the paper and Ensemble: a *view* is the current group
// membership; a member's *rank* is its index in the view; micro-protocol
// layers exchange *events* that travel up or down the stack.

#ifndef ENSEMBLE_SRC_EVENT_TYPES_H_
#define ENSEMBLE_SRC_EVENT_TYPES_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace ensemble {

// Globally unique process identity (survives across views).
struct EndpointId {
  uint64_t id = 0;
  bool operator==(const EndpointId&) const = default;
  auto operator<=>(const EndpointId&) const = default;
};

// Index of a member within a view.
using Rank = int32_t;
constexpr Rank kNoRank = -1;

// View identifier: (coordinator endpoint, logical counter).  Lexicographic
// order gives a total order on views.
struct ViewId {
  uint64_t coord = 0;
  uint64_t counter = 0;
  bool operator==(const ViewId&) const = default;
  auto operator<=>(const ViewId&) const = default;
};

// Group membership snapshot.  Shared immutably between layers and events.
struct View {
  ViewId vid;
  std::vector<EndpointId> members;

  int nmembers() const { return static_cast<int>(members.size()); }
  Rank RankOf(EndpointId e) const {
    for (size_t i = 0; i < members.size(); i++) {
      if (members[i] == e) {
        return static_cast<Rank>(i);
      }
    }
    return kNoRank;
  }
  std::string ToString() const;
};

using ViewRef = std::shared_ptr<const View>;

// Identities of the micro-protocol layers in the library.  Header entries and
// bypass rules are keyed by LayerId.
enum class LayerId : uint8_t {
  kNone = 0,
  kBottom,
  kMnak,
  kPt2pt,
  kMflow,
  kPt2ptw,
  kFrag,
  kCollect,
  kLocal,
  kTotal,
  kTotalBuggy,
  kFifoBuggy,
  kPartialAppl,
  kTop,
  kFifoCheck,
  kTotalCheck,
  kSuspect,
  kElect,
  kSync,
  kIntra,
  kStable,
  kEncrypt,
  kSign,
  // Synthetic layers used by composition-rule tests.
  kTestLinear,
  kTestBounce,
  kTestSplit,
  kMaxLayerId,  // Sentinel; keep last.
};

const char* LayerIdName(LayerId id);
constexpr size_t kLayerIdCount = static_cast<size_t>(LayerId::kMaxLayerId);

// Event types.  Which direction a type travels is conventional (paper §2:
// "Certain types of events travel down (e.g., send events), while others
// (such as message delivery events) travel up the stack").
enum class EventType : uint8_t {
  kNone = 0,
  // Down-going.
  kCast,       // Application multicast to the group.
  kSend,       // Application point-to-point message to `dest`.
  kTimer,      // Periodic alarm sweeping down through every layer.
  kBlockOk,    // Application/upper layers agree to block (view change flush).
  kLeave,      // This member leaves the group.
  kSuspectDn,  // Failure suspicion announced downward (to be gossiped).
  // Up-going.
  kDeliverCast,  // Multicast delivery, origin = sender rank.
  kDeliverSend,  // Point-to-point delivery, origin = sender rank.
  kInit,         // Stack start: carries the initial view.
  kView,         // New view installed.
  kBlock,        // Request from below to stop sending (flush in progress).
  kSuspect,      // Failure detector suspects `origin`.
  kElect,        // This member became coordinator.
  kStable,       // Stability vector update (messages safe to garbage-collect).
  kLostMessage,  // Reliability gave up on a message (network partition).
  kExit,         // Stack shut down.
};

const char* EventTypeName(EventType t);

// Direction of travel.
enum class Dir : uint8_t { kUp, kDown };

}  // namespace ensemble

#endif  // ENSEMBLE_SRC_EVENT_TYPES_H_
