// The event object passed between layers.
//
// Paper §3.1: "The programming model we use is that of a state machine with
// event-condition-action rules ... all interactions between components are
// through events."  An Event is a value type carrying the payload
// (scatter-gather), the layered headers, and the small set of scalar fields
// the micro-protocols need.  Events are moved, not shared.

#ifndef ENSEMBLE_SRC_EVENT_EVENT_H_
#define ENSEMBLE_SRC_EVENT_EVENT_H_

#include <cstdint>
#include <string>

#include "src/event/header_stack.h"
#include "src/event/types.h"
#include "src/util/bytes.h"
#include "src/util/vtime.h"

namespace ensemble {

struct Event {
  EventType type = EventType::kNone;
  // Sender rank for deliveries / suspicion subject for kSuspect.
  Rank origin = kNoRank;
  // Destination rank for point-to-point sends.
  Rank dest = kNoRank;
  // Application payload (scatter-gather; untouched by most layers).
  Iovec payload;
  // Per-layer protocol headers.
  HeaderStack hdrs;
  // Current time for kTimer events.
  VTime time = 0;
  // New membership for kInit / kView events.
  ViewRef view;
  // Compressed-header fast path: when a compiled bypass produced this event,
  // the wire header bytes live here instead of in `hdrs` (see src/bypass/).
  Bytes compressed_hdr;
  // Small numeric vector payload for control events: per-rank stable seqnos
  // for kStable, member endpoint ids for view-change coordination.
  std::vector<uint64_t> vec;
  // Reliability sequence number of a delivered cast, stamped by mnak so the
  // stability layer above can account in mnak's own seqno space.
  uint64_t seq_hint = 0;

  Event() = default;

  static Event Cast(Iovec payload) {
    Event ev;
    ev.type = EventType::kCast;
    ev.payload = std::move(payload);
    return ev;
  }
  static Event Send(Rank dest, Iovec payload) {
    Event ev;
    ev.type = EventType::kSend;
    ev.dest = dest;
    ev.payload = std::move(payload);
    return ev;
  }
  static Event Timer(VTime now) {
    Event ev;
    ev.type = EventType::kTimer;
    ev.time = now;
    return ev;
  }
  static Event Init(ViewRef v) {
    Event ev;
    ev.type = EventType::kInit;
    ev.view = std::move(v);
    return ev;
  }
  static Event DeliverCast(Rank from, Iovec payload) {
    Event ev;
    ev.type = EventType::kDeliverCast;
    ev.origin = from;
    ev.payload = std::move(payload);
    return ev;
  }
  static Event DeliverSend(Rank from, Iovec payload) {
    Event ev;
    ev.type = EventType::kDeliverSend;
    ev.origin = from;
    ev.payload = std::move(payload);
    return ev;
  }
  static Event OfType(EventType t) {
    Event ev;
    ev.type = t;
    return ev;
  }

  bool IsMessage() const {
    return type == EventType::kCast || type == EventType::kSend ||
           type == EventType::kDeliverCast || type == EventType::kDeliverSend;
  }

  std::string ToString() const;
};

}  // namespace ensemble

#endif  // ENSEMBLE_SRC_EVENT_EVENT_H_
