// Per-message layered headers.
//
// On the down path each layer pushes its header; on the up path each layer
// pops its own.  Headers are trivially-copyable structs stored back-to-back
// in one arena, so push/pop are bump-pointer operations and the whole stack
// can be walked by the generic marshaler (paper §4: "each layer encapsulates
// the value into another one consisting of the header of that layer and the
// headers of the layers above it").

#ifndef ENSEMBLE_SRC_EVENT_HEADER_STACK_H_
#define ENSEMBLE_SRC_EVENT_HEADER_STACK_H_

#include <cstdint>
#include <cstring>
#include <type_traits>
#include <vector>

#include "src/event/types.h"
#include "src/marshal/header_desc.h"
#include "src/util/logging.h"

namespace ensemble {

class HeaderStack {
 public:
  struct Entry {
    LayerId layer;
    uint16_t offset;
    uint16_t size;
  };

  HeaderStack() = default;

  bool empty() const { return entries_.empty(); }
  size_t depth() const { return entries_.size(); }

  template <typename T>
  void Push(LayerId layer, const T& hdr) {
    static_assert(std::is_trivially_copyable_v<T>, "headers must be PODs");
    size_t off = arena_.size();
    arena_.resize(off + sizeof(T));
    std::memcpy(arena_.data() + off, &hdr, sizeof(T));
    // Compiler padding is indeterminate after aggregate init; normalize so
    // header stacks compare and hash bytewise.
    ZeroHeaderPadding(layer, arena_.data() + off, sizeof(T));
    entries_.push_back({layer, static_cast<uint16_t>(off), static_cast<uint16_t>(sizeof(T))});
  }

  // Pops the top header, which must belong to `layer` and have type T.
  template <typename T>
  T Pop(LayerId layer) {
    static_assert(std::is_trivially_copyable_v<T>, "headers must be PODs");
    ENS_CHECK_MSG(!entries_.empty(), "header stack underflow at " << LayerIdName(layer));
    const Entry& e = entries_.back();
    ENS_CHECK_MSG(e.layer == layer && e.size == sizeof(T),
                  "header mismatch: top=" << LayerIdName(e.layer) << " size=" << e.size
                                          << " want=" << LayerIdName(layer));
    T hdr;
    std::memcpy(&hdr, arena_.data() + e.offset, sizeof(T));
    arena_.resize(e.offset);
    entries_.pop_back();
    return hdr;
  }

  // Peeks the top header without popping; nullptr-like semantics via bool.
  template <typename T>
  bool PeekTop(LayerId layer, T* out) const {
    if (entries_.empty()) {
      return false;
    }
    const Entry& e = entries_.back();
    if (e.layer != layer || e.size != sizeof(T)) {
      return false;
    }
    std::memcpy(out, arena_.data() + e.offset, sizeof(T));
    return true;
  }

  LayerId TopLayer() const { return entries_.empty() ? LayerId::kNone : entries_.back().layer; }

  // Raw push used by the generic unmarshaler (header type resolved via the
  // descriptor registry, not via C++ types).
  void PushRaw(LayerId layer, const void* data, size_t size) {
    size_t off = arena_.size();
    arena_.resize(off + size);
    std::memcpy(arena_.data() + off, data, size);
    entries_.push_back({layer, static_cast<uint16_t>(off), static_cast<uint16_t>(size)});
  }

  // Iteration bottom-of-stack-first (the order headers were pushed).
  size_t entry_count() const { return entries_.size(); }
  const Entry& entry(size_t i) const { return entries_[i]; }
  const uint8_t* entry_data(size_t i) const { return arena_.data() + entries_[i].offset; }

  size_t arena_bytes() const { return arena_.size(); }

  void Clear() {
    entries_.clear();
    arena_.clear();
  }

  bool operator==(const HeaderStack& other) const {
    if (entries_.size() != other.entries_.size()) {
      return false;
    }
    for (size_t i = 0; i < entries_.size(); i++) {
      const Entry& a = entries_[i];
      const Entry& b = other.entries_[i];
      if (a.layer != b.layer || a.size != b.size) {
        return false;
      }
      if (std::memcmp(arena_.data() + a.offset, other.arena_.data() + b.offset, a.size) != 0) {
        return false;
      }
    }
    return true;
  }

 private:
  std::vector<uint8_t> arena_;
  std::vector<Entry> entries_;
};

}  // namespace ensemble

#endif  // ENSEMBLE_SRC_EVENT_HEADER_STACK_H_
