#include "src/event/event.h"

#include <sstream>

namespace ensemble {

std::string Event::ToString() const {
  std::ostringstream os;
  os << EventTypeName(type);
  if (origin != kNoRank) {
    os << " org=" << origin;
  }
  if (dest != kNoRank) {
    os << " dst=" << dest;
  }
  if (!payload.empty()) {
    os << " len=" << payload.size();
  }
  if (!hdrs.empty()) {
    os << " hdrs=" << hdrs.depth();
  }
  if (view) {
    os << " " << view->ToString();
  }
  return os.str();
}

}  // namespace ensemble
