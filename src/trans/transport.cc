#include "src/trans/transport.h"

#include <cstring>

namespace ensemble {

namespace {
// Packed framing constants: [tag u8][count u8] header, [len u32] per entry.
constexpr size_t kPackHeader = 2;
constexpr size_t kPackLenPrefix = 4;
constexpr size_t kPackMaxCount = 255;  // Count is a u8.
}  // namespace

Transport::UpResult Transport::DispatchUp(const Bytes& datagram) const {
  UpResult result;
  if (datagram.empty()) {
    return result;
  }
  uint8_t tag = datagram[0];
  if (tag == kWireGeneric) {
    Event ev;
    if (!GenericUnmarshal(datagram, &ev)) {
      return result;
    }
    result.kind = UpKind::kStackEvent;
    result.ev = std::move(ev);
    return result;
  }
  if (tag == kWireCompressed) {
    result.via_bypass = true;
    // [tag u8][conn u32][origin u8][vars...][payload]
    if (conns_ == nullptr || datagram.size() < 6) {
      return result;
    }
    uint32_t conn_id;
    std::memcpy(&conn_id, datagram.data() + 1, 4);
    Rank origin = static_cast<Rank>(datagram[5]);
    RoutePair* route = conns_->Find(conn_id);
    if (route == nullptr) {
      return result;  // Unknown connection (stale view): drop.
    }
    Event out;
    switch (route->TryUp(datagram, 6, origin, &out)) {
      case RoutePair::UpResult::kDelivered:
        result.kind = UpKind::kDelivered;
        result.ev = std::move(out);
        return result;
      case RoutePair::UpResult::kFallback:
        result.kind = UpKind::kStackEvent;
        result.ev = std::move(out);
        return result;
      case RoutePair::UpResult::kBad:
        return result;
    }
  }
  return result;
}

void Transport::EnablePacking(EmitFn emit, size_t max_msgs, size_t max_bytes) {
  emit_ = std::move(emit);
  max_msgs_ = std::min(std::max<size_t>(max_msgs, 1), kPackMaxCount);
  max_bytes_ = max_bytes;
}

void Transport::PackCast(const Iovec& wire) {
  StageOn(&cast_q_, PackDest{/*broadcast=*/true, EndpointId{}}, wire);
}

void Transport::PackSend(EndpointId dst, const Iovec& wire) {
  StageOn(&send_q_[dst], PackDest{/*broadcast=*/false, dst}, wire);
}

void Transport::StageOn(Staging* q, const PackDest& dest, const Iovec& wire) {
  if (!emit_) {
    return;  // Packing off: nothing sane to do (callers check packing()).
  }
  // Would this message blow the byte budget?  Close out the current pack
  // first so a packed datagram never exceeds max_bytes_ (lone oversized
  // messages still go out, unwrapped, as one datagram).
  if (!q->wires.empty() && q->bytes + wire.size() + kPackLenPrefix > max_bytes_) {
    FlushQueue(q, dest);
  }
  pack_stats_.staged++;
  q->bytes += wire.size() + kPackLenPrefix;
  q->wires.push_back(wire);
  if (q->wires.size() >= max_msgs_ || q->bytes >= max_bytes_) {
    FlushQueue(q, dest);
  }
}

void Transport::FlushQueue(Staging* q, const PackDest& dest) {
  if (q->wires.empty()) {
    return;
  }
  pack_stats_.flushes++;
  if (q->wires.size() == 1) {
    // A lone message needs no pack framing: emit the original datagram so the
    // receive path (and CCP dispatch) sees exactly what an unpacked sender
    // produces.
    pack_stats_.single_flushes++;
    emit_(dest, q->wires[0]);
  } else {
    Iovec packed;
    Bytes header = Bytes::Allocate(kPackHeader);
    header.MutableData()[0] = kWirePacked;
    header.MutableData()[1] = static_cast<uint8_t>(q->wires.size());
    packed.Append(std::move(header));
    for (const Iovec& wire : q->wires) {
      Bytes len = Bytes::Allocate(kPackLenPrefix);
      uint32_t n = static_cast<uint32_t>(wire.size());
      std::memcpy(len.MutableData(), &n, kPackLenPrefix);
      packed.Append(std::move(len));
      packed.Append(wire);  // Refcounted aliases: no payload copy.
    }
    pack_stats_.packed_datagrams++;
    emit_(dest, packed);
  }
  q->wires.clear();
  q->bytes = 0;
}

void Transport::FlushPacked() {
  FlushQueue(&cast_q_, PackDest{/*broadcast=*/true, EndpointId{}});
  for (auto& [dst, q] : send_q_) {
    FlushQueue(&q, PackDest{/*broadcast=*/false, dst});
  }
}

bool Transport::IsPacked(const Bytes& datagram) {
  return datagram.size() >= kPackHeader && datagram[0] == kWirePacked;
}

bool Transport::Unpack(const Bytes& datagram, std::vector<Bytes>* out) {
  if (!IsPacked(datagram)) {
    return false;
  }
  size_t count = datagram[1];
  size_t pos = kPackHeader;
  std::vector<Bytes> subs;
  subs.reserve(count);
  for (size_t i = 0; i < count; i++) {
    if (pos + kPackLenPrefix > datagram.size()) {
      return false;
    }
    uint32_t len;
    std::memcpy(&len, datagram.data() + pos, kPackLenPrefix);
    pos += kPackLenPrefix;
    if (pos + len > datagram.size()) {
      return false;
    }
    subs.push_back(datagram.Slice(pos, len));  // Zero-copy view.
    pos += len;
  }
  if (pos != datagram.size()) {
    return false;  // Trailing garbage: treat the whole datagram as malformed.
  }
  pack_stats_.unpacked_submsgs += subs.size();
  for (Bytes& b : subs) {
    out->push_back(std::move(b));
  }
  return true;
}

}  // namespace ensemble
