#include "src/trans/transport.h"

#include <cstring>

namespace ensemble {

Transport::UpResult Transport::DispatchUp(const Bytes& datagram) const {
  UpResult result;
  if (datagram.empty()) {
    return result;
  }
  uint8_t tag = datagram[0];
  if (tag == kWireGeneric) {
    Event ev;
    if (!GenericUnmarshal(datagram, &ev)) {
      return result;
    }
    result.kind = UpKind::kStackEvent;
    result.ev = std::move(ev);
    return result;
  }
  if (tag == kWireCompressed) {
    result.via_bypass = true;
    // [tag u8][conn u32][origin u8][vars...][payload]
    if (conns_ == nullptr || datagram.size() < 6) {
      return result;
    }
    uint32_t conn_id;
    std::memcpy(&conn_id, datagram.data() + 1, 4);
    Rank origin = static_cast<Rank>(datagram[5]);
    RoutePair* route = conns_->Find(conn_id);
    if (route == nullptr) {
      return result;  // Unknown connection (stale view): drop.
    }
    Event out;
    switch (route->TryUp(datagram, 6, origin, &out)) {
      case RoutePair::UpResult::kDelivered:
        result.kind = UpKind::kDelivered;
        result.ev = std::move(out);
        return result;
      case RoutePair::UpResult::kFallback:
        result.kind = UpKind::kStackEvent;
        result.ev = std::move(out);
        return result;
      case RoutePair::UpResult::kBad:
        return result;
    }
  }
  return result;
}

}  // namespace ensemble
