// Transport — the marshaling boundary below the protocol stack (paper Fig. 4:
// "The Transport module below the protocol stack provides marshaling of
// messages").
//
// Down: an event emitted by the bottom layer (full header stack) is marshaled
// with the generic codec.  Up: a received datagram is dispatched on its first
// byte — generic datagrams are unmarshaled into full events for the normal
// stack, compressed datagrams are routed through the connection table to a
// compiled bypass (which either delivers directly or reconstructs a full
// event when its CCP fails).
//
// Message packing (Ensemble's transport batching, the down-path dual of the
// paper's copy-avoidance work): when enabled, complete wire datagrams headed
// for the same destination are staged per destination and coalesced into one
// packed datagram — [kWirePacked u8][count u8] then count × ([u32 len] body)
// — built by scatter-gather (length prefixes are tiny fresh Bytes; the
// sub-message parts are refcounted aliases, so packing copies no payload
// bytes).  Sub-messages keep their own first-byte tag, so a packed datagram
// may mix generic and compressed (bypass/CCP) traffic; the receive side
// splits it with zero-copy slices and feeds each sub-message through the
// normal first-byte dispatch.

#ifndef ENSEMBLE_SRC_TRANS_TRANSPORT_H_
#define ENSEMBLE_SRC_TRANS_TRANSPORT_H_

#include <functional>
#include <map>
#include <vector>

#include "src/bypass/conn_table.h"
#include "src/event/event.h"
#include "src/marshal/generic_codec.h"

namespace ensemble {

struct PackStats {
  uint64_t staged = 0;            // Sub-messages accepted for packing.
  uint64_t packed_datagrams = 0;  // Emitted datagrams carrying >1 sub-message.
  uint64_t single_flushes = 0;    // Lone staged messages emitted unwrapped.
  uint64_t flushes = 0;           // Flush boundaries (explicit or automatic).
  uint64_t unpacked_submsgs = 0;  // Sub-messages split out of received packs.
};

class Transport {
 public:
  explicit Transport(ConnTable* conns = nullptr) : conns_(conns) {}

  // Down path: wire form of a bottom-emitted event.  The first Iovec part is
  // the marshaled header block; the rest alias the payload (scatter-gather).
  Iovec MarshalDown(const Event& ev, Rank sender_rank) const {
    return GenericMarshal(ev, sender_rank);
  }

  // Up-path dispatch result.
  enum class UpKind {
    kStackEvent,  // `ev` must be fed to the normal stack's Up path.
    kDelivered,   // A bypass delivered `ev` directly to the application.
    kDrop,        // Malformed / unknown connection: drop.
  };
  struct UpResult {
    UpKind kind = UpKind::kDrop;
    Event ev;
    bool via_bypass = false;  // Diagnostics: compressed-path datagram.
  };

  UpResult DispatchUp(const Bytes& datagram) const;

  // ---- message packing -----------------------------------------------------

  // Destination of a staged wire datagram.
  struct PackDest {
    bool broadcast = false;
    EndpointId dst;  // Meaningful when !broadcast.
  };
  using EmitFn = std::function<void(const PackDest&, const Iovec& wire)>;

  // Turns packing on: PackCast/PackSend stage instead of emitting, and a
  // destination auto-flushes once it holds `max_msgs` sub-messages or
  // `max_bytes` payload bytes.  `emit` receives every outgoing datagram
  // (packed or lone) — typically a closure over Network::Broadcast/Send.
  void EnablePacking(EmitFn emit, size_t max_msgs = 16, size_t max_bytes = 60000);
  bool packing() const { return static_cast<bool>(emit_); }

  // Stages a complete wire datagram (generic or compressed — not packed).
  // With packing disabled these forward straight to nothing — callers must
  // only use them when packing() is true.
  void PackCast(const Iovec& wire);
  void PackSend(EndpointId dst, const Iovec& wire);
  // Emits everything staged (broadcast queue first, then per-peer queues).
  void FlushPacked();

  // True iff `datagram` carries the packed tag.
  static bool IsPacked(const Bytes& datagram);
  // Splits a packed datagram into zero-copy sub-slices, appended to `out`.
  // Returns false (leaving `out` as-is) on malformed framing.
  bool Unpack(const Bytes& datagram, std::vector<Bytes>* out);

  const PackStats& pack_stats() const { return pack_stats_; }

  void set_conn_table(ConnTable* conns) { conns_ = conns; }

 private:
  // One destination's staging queue: the original wire datagrams, coalesced
  // lazily at flush time (so a lone message goes out unwrapped).
  struct Staging {
    std::vector<Iovec> wires;
    size_t bytes = 0;
  };

  void StageOn(Staging* q, const PackDest& dest, const Iovec& wire);
  void FlushQueue(Staging* q, const PackDest& dest);

  ConnTable* conns_;
  EmitFn emit_;
  size_t max_msgs_ = 16;
  size_t max_bytes_ = 60000;
  Staging cast_q_;
  std::map<EndpointId, Staging> send_q_;
  PackStats pack_stats_;
};

}  // namespace ensemble

#endif  // ENSEMBLE_SRC_TRANS_TRANSPORT_H_
