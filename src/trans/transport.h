// Transport — the marshaling boundary below the protocol stack (paper Fig. 4:
// "The Transport module below the protocol stack provides marshaling of
// messages").
//
// Down: an event emitted by the bottom layer (full header stack) is marshaled
// with the generic codec.  Up: a received datagram is dispatched on its first
// byte — generic datagrams are unmarshaled into full events for the normal
// stack, compressed datagrams are routed through the connection table to a
// compiled bypass (which either delivers directly or reconstructs a full
// event when its CCP fails).

#ifndef ENSEMBLE_SRC_TRANS_TRANSPORT_H_
#define ENSEMBLE_SRC_TRANS_TRANSPORT_H_

#include "src/bypass/conn_table.h"
#include "src/event/event.h"
#include "src/marshal/generic_codec.h"

namespace ensemble {

class Transport {
 public:
  explicit Transport(ConnTable* conns = nullptr) : conns_(conns) {}

  // Down path: wire form of a bottom-emitted event.  The first Iovec part is
  // the marshaled header block; the rest alias the payload (scatter-gather).
  Iovec MarshalDown(const Event& ev, Rank sender_rank) const {
    return GenericMarshal(ev, sender_rank);
  }

  // Up-path dispatch result.
  enum class UpKind {
    kStackEvent,  // `ev` must be fed to the normal stack's Up path.
    kDelivered,   // A bypass delivered `ev` directly to the application.
    kDrop,        // Malformed / unknown connection: drop.
  };
  struct UpResult {
    UpKind kind = UpKind::kDrop;
    Event ev;
    bool via_bypass = false;  // Diagnostics: compressed-path datagram.
  };

  UpResult DispatchUp(const Bytes& datagram) const;

  void set_conn_table(ConnTable* conns) { conns_ = conns; }

 private:
  ConnTable* conns_;
};

}  // namespace ensemble

#endif  // ENSEMBLE_SRC_TRANS_TRANSPORT_H_
