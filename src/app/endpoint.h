// GroupEndpoint — the public API of the library.
//
// One endpoint is one group member: a protocol stack (built from micro-
// protocol components), a transport, and — depending on the execution mode —
// compiled bypass routes, wired to a (simulated) network.  The four modes
// are the paper's four measured configurations:
//
//   kImperative (IMP)   central event scheduler
//   kFunctional (FUNC)  recursive functional composition
//   kMachine    (MACH)  compiled common-case bypass + header compression,
//                       normal FUNC stack for everything else (Fig. 4)
//   kHand       (HAND)  hand-fused 4-layer bypass, transport integrated
//
// Typical use:
//   GroupEndpoint ep(EndpointId{1}, &net, config);
//   ep.OnDeliver([](const Event& ev) { ... });
//   ep.Start(initial_view);
//   ep.Cast(Iovec(Bytes::CopyString("hello")));

#ifndef ENSEMBLE_SRC_APP_ENDPOINT_H_
#define ENSEMBLE_SRC_APP_ENDPOINT_H_

#include <atomic>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/bypass/conn_table.h"
#include "src/bypass/hand.h"
#include "src/net/network.h"
#include "src/overload/send_window.h"
#include "src/stack/engine.h"
#include "src/trans/transport.h"

namespace ensemble {

enum class StackMode { kImperative, kFunctional, kMachine, kHand };
const char* StackModeName(StackMode m);

struct EndpointConfig {
  StackMode mode = StackMode::kFunctional;
  std::vector<LayerId> layers = TenLayerStack();
  LayerParams params;
  // Periodic kTimer injection (retransmission, heartbeats, acks).  0 = off.
  VTime timer_interval = Millis(1);
  // Transport-level message packing: outgoing wire datagrams for the same
  // destination coalesce into one packed datagram, flushed when pack_window
  // messages or pack_budget bytes are staged, on every periodic timer tick,
  // and on explicit Flush().  Both the normal marshal path and the compiled
  // bypass send path emit into the pack.
  bool pack_messages = false;
  size_t pack_window = 16;
  size_t pack_budget = 60000;
};

class GroupEndpoint {
 public:
  // RelaxedCounter: written only by the owning shard's thread, but metrics
  // snapshots read them live from other threads.
  struct Stats {
    RelaxedCounter casts = 0;
    RelaxedCounter sends = 0;
    RelaxedCounter delivered = 0;
    RelaxedCounter bypass_down = 0;       // Fast-path sends.
    RelaxedCounter bypass_down_miss = 0;  // CCP said no: normal path used.
    RelaxedCounter bypass_up = 0;         // Fast-path deliveries.
    RelaxedCounter bypass_up_fallback = 0;
    RelaxedCounter packets_in = 0;
    RelaxedCounter packed_in = 0;  // Sub-messages split out of packed datagrams.
    RelaxedCounter window_shed = 0;  // Casts/Sends refused by the send window.
  };

  using DeliverFn = std::function<void(const Event&)>;
  using ViewFn = std::function<void(const ViewRef&)>;

  GroupEndpoint(EndpointId self, Network* net, EndpointConfig config);
  ~GroupEndpoint();

  GroupEndpoint(const GroupEndpoint&) = delete;
  GroupEndpoint& operator=(const GroupEndpoint&) = delete;

  // Installs the initial view, compiles bypass routes (MACH/HAND), and arms
  // the periodic timer.
  void Start(ViewRef initial_view);

  // Switches to a different protocol stack on the fly (paper §4.1.3 / [25]:
  // "Ensemble's support for dynamically loading layers and switching
  // protocol stacks").  The switch happens at a view boundary: `new_view`
  // must carry a higher view counter and the same composition must be
  // installed by every member (the harness's SwitchAll coordinates this);
  // traffic still in flight from the old view is discarded by the new
  // bottom layer's view stamp.
  void SwitchStack(std::vector<LayerId> layers, ViewRef new_view);

  // Multicast to the whole group / point-to-point to a rank.
  void Cast(Iovec payload);
  void Send(Rank dest, Iovec payload);

  // Overload gate (optional; default none).  When set, Cast/Send reserve
  // payload bytes × fan-out against the group's send window at entry and
  // shed the message (counted in stats().window_shed, trace-ringed) when the
  // window is exhausted.  Only NEW application traffic is gated — protocol
  // traffic emitted by the layers never consults the window.  The runtime's
  // delivery tap credits the window back per delivery.
  void SetSendWindow(overload::SendWindow* w) { send_window_ = w; }
  overload::SendWindow* send_window() const { return send_window_; }

  // Batching boundary: emits every staged packed datagram and pushes the
  // network's own staging rings to the wire.  Cheap no-op when nothing is
  // staged; the periodic timer also flushes, so unflushed traffic is only
  // delayed, never stuck.
  void Flush();

  // Migration support (the sharded runtime's work stealing): an endpoint can
  // be rebound to a different Network — another shard's backend — without its
  // stack, transport, or bypass routes ever seeing a second thread.  The
  // caller (ShardRuntime) sequences the two halves through its cross-shard
  // rings: BeginRebind runs on the CURRENT owning thread (flushes staged
  // traffic and invalidates timers still queued on the old network's heap —
  // they fire there, observe a stale epoch, and return without touching the
  // stack); FinishRebind runs on the NEW owning thread after the backend
  // state moved, repointing the endpoint and re-arming its periodic timer.
  void BeginRebind();
  void FinishRebind(Network* net);

  // Leaves the group: the endpoint goes silent and detaches from the
  // network.  Remaining members' failure detectors observe the silence and
  // vote the leaver out (membership stacks), exactly like a crash — Ensemble
  // distinguishes graceful leaves only as an optimization.
  void Leave();

  void OnDeliver(DeliverFn fn) { on_deliver_ = std::move(fn); }
  void OnView(ViewFn fn) { on_view_ = std::move(fn); }
  void OnExit(std::function<void()> fn) { on_exit_ = std::move(fn); }

  EndpointId id() const { return self_; }
  Rank rank() const { return view_ ? view_->RankOf(self_) : kNoRank; }
  const ViewRef& view() const { return view_; }
  ProtocolStack* stack() { return stack_.get(); }
  const Stats& stats() const { return stats_; }
  const EndpointConfig& config() const { return config_; }

  // The composed optimization theorems of the compiled routes (MACH/HAND).
  std::string DescribeBypass() const;

  // Exposed for the latency benches, which drive the phases by hand.
  RoutePair* cast_route() { return cast_route_.get(); }
  Transport& transport() { return transport_; }
  void InjectDatagram(const Bytes& datagram);  // As if received from the net.

 private:
  void HandleStackDnOut(Event ev);
  void HandleStackUpOut(Event ev);
  void HandlePacket(const Packet& packet);
  void EmitCastWire(const Iovec& wire);
  void EmitSendWire(Rank dest, const Iovec& wire);
  void InstallView(ViewRef v);
  void CompileBypass();
  void ArmTimer();

  EndpointId self_;
  Network* net_;
  EndpointConfig config_;
  std::unique_ptr<ProtocolStack> stack_;
  ConnTable conns_;
  Transport transport_;
  std::unique_ptr<RoutePair> cast_route_;
  std::unique_ptr<RoutePair> send_route_;
  std::unique_ptr<Hand4Bypass> hand_;
  ViewRef view_;
  DeliverFn on_deliver_;
  ViewFn on_view_;
  std::function<void()> on_exit_;
  overload::SendWindow* send_window_ = nullptr;
  Stats stats_;
  bool started_ = false;
  bool alive_ = true;  // Cleared on kExit (excluded from a view).
  std::shared_ptr<bool> alive_token_;  // Guards timer callbacks after dtor.
  // Bumped by BeginRebind: a timer armed before a migration carries the old
  // value and bails out (the ONLY field it may read — everything else still
  // belongs to the new owning thread).
  std::atomic<uint64_t> net_epoch_{0};
};

}  // namespace ensemble

#endif  // ENSEMBLE_SRC_APP_ENDPOINT_H_
