#include "src/app/endpoint.h"

#include <cstring>

#include "src/obs/trace.h"
#include "src/util/logging.h"

namespace ensemble {

const char* StackModeName(StackMode m) {
  switch (m) {
    case StackMode::kImperative:
      return "IMP";
    case StackMode::kFunctional:
      return "FUNC";
    case StackMode::kMachine:
      return "MACH";
    case StackMode::kHand:
      return "HAND";
  }
  return "?";
}

GroupEndpoint::GroupEndpoint(EndpointId self, Network* net, EndpointConfig config)
    : self_(self), net_(net), config_(std::move(config)), transport_(&conns_) {
  EngineKind engine = config_.mode == StackMode::kImperative ? EngineKind::kImperative
                                                             : EngineKind::kFunctional;
  stack_ = BuildStack(engine, config_.layers, config_.params, self_);
  stack_->set_dn_out([this](Event ev) { HandleStackDnOut(std::move(ev)); });
  stack_->set_up_out([this](Event ev) { HandleStackUpOut(std::move(ev)); });
  if (net_ != nullptr) {
    net_->Attach(self_, [this](const Packet& p) { HandlePacket(p); });
  }
  if (config_.pack_messages && net_ != nullptr) {
    transport_.EnablePacking(
        [this](const Transport::PackDest& dest, const Iovec& wire) {
          if (dest.broadcast) {
            net_->Broadcast(self_, wire);
          } else {
            net_->Send(self_, dest.dst, wire);
          }
        },
        config_.pack_window, config_.pack_budget);
    // Packs staged by our deliver path (acks, NAK retransmissions, responses
    // cast from callbacks) flush when the network's receive drain ends — not
    // only on the next periodic timer, which may never come (timers off).
    net_->SetDrainHook(self_, [this] { transport_.FlushPacked(); });
  }
  alive_token_ = std::make_shared<bool>(true);
}

GroupEndpoint::~GroupEndpoint() {
  *alive_token_ = false;
  if (net_ != nullptr) {
    net_->Detach(self_);
  }
}

void GroupEndpoint::Start(ViewRef initial_view) {
  ENS_CHECK(!started_);
  started_ = true;
  view_ = initial_view;
  stack_->Init(std::move(initial_view));
  CompileBypass();
  ArmTimer();
}

void GroupEndpoint::SwitchStack(std::vector<LayerId> layers, ViewRef new_view) {
  ENS_CHECK(started_);
  ENS_CHECK_MSG(!view_ || new_view->vid.counter > view_->vid.counter,
                "stack switches must move to a later view");
  config_.layers = std::move(layers);
  EngineKind engine = config_.mode == StackMode::kImperative ? EngineKind::kImperative
                                                             : EngineKind::kFunctional;
  stack_ = BuildStack(engine, config_.layers, config_.params, self_);
  stack_->set_dn_out([this](Event ev) { HandleStackDnOut(std::move(ev)); });
  stack_->set_up_out([this](Event ev) { HandleStackUpOut(std::move(ev)); });
  view_ = new_view;
  stack_->Init(std::move(new_view));
  CompileBypass();
  if (on_view_) {
    on_view_(view_);
  }
}

void GroupEndpoint::CompileBypass() {
  conns_.Clear();
  cast_route_.reset();
  send_route_.reset();
  hand_.reset();
  if (config_.mode == StackMode::kMachine) {
    std::string error;
    cast_route_ = CompileRoutePair(stack_.get(), /*cast=*/true, &error);
    ENS_CHECK_MSG(cast_route_ != nullptr, "bypass compile failed: " << error);
    send_route_ = CompileRoutePair(stack_.get(), /*cast=*/false, &error);
    ENS_CHECK_MSG(send_route_ != nullptr, "bypass compile failed: " << error);
    ENS_CHECK(conns_.Register(cast_route_.get()));
    ENS_CHECK(conns_.Register(send_route_.get()));
  } else if (config_.mode == StackMode::kHand) {
    std::string error;
    hand_ = Hand4Bypass::Create(stack_.get(), &error);
    ENS_CHECK_MSG(hand_ != nullptr, "hand bypass unavailable: " << error);
    ENS_CHECK(conns_.Register(hand_->cast_route()));
    ENS_CHECK(conns_.Register(hand_->send_route()));
  }
}

void GroupEndpoint::ArmTimer() {
  if (net_ == nullptr || config_.timer_interval == 0) {
    return;
  }
  std::weak_ptr<bool> alive = alive_token_;
  uint64_t epoch = net_epoch_.load(std::memory_order_relaxed);
  net_->ScheduleTimer(config_.timer_interval, [this, alive, epoch]() {
    auto token = alive.lock();
    if (!token) {
      return;
    }
    // A migration leaves this callback queued on the OLD shard's timer heap;
    // it fires on the old thread after ownership moved.  The epoch check is
    // the only read it may perform then — stale means bail, touching nothing.
    if (net_epoch_.load(std::memory_order_acquire) != epoch) {
      return;
    }
    if (!*token || !alive_) {
      return;
    }
    stack_->Down(Event::Timer(net_->Now()));
    // Timer ticks double as flush boundaries: staged packs (and the
    // network's staging rings) never outlive one timer interval.
    Flush();
    ArmTimer();
  });
}

void GroupEndpoint::BeginRebind() {
  Flush();  // Staged packs and network rings drain on the old backend.
  net_epoch_.fetch_add(1, std::memory_order_acq_rel);
}

void GroupEndpoint::FinishRebind(Network* net) {
  net_ = net;
  if (started_) {
    ArmTimer();  // Reads the post-bump epoch: the new timer chain is valid.
  }
}

void GroupEndpoint::Flush() {
  transport_.FlushPacked();
  if (net_ != nullptr) {
    net_->Flush();
  }
}

void GroupEndpoint::EmitCastWire(const Iovec& wire) {
  if (transport_.packing()) {
    transport_.PackCast(wire);
  } else if (net_ != nullptr) {
    net_->Broadcast(self_, wire);
  }
}

void GroupEndpoint::EmitSendWire(Rank dest, const Iovec& wire) {
  if (net_ == nullptr || !view_ || dest < 0 || dest >= view_->nmembers()) {
    return;
  }
  EndpointId dst = view_->members[static_cast<size_t>(dest)];
  if (transport_.packing()) {
    transport_.PackSend(dst, wire);
  } else {
    net_->Send(self_, dst, wire);
  }
}

void GroupEndpoint::Cast(Iovec payload) {
  if (send_window_ != nullptr) {
    // Charge payload bytes × receiver fan-out: that is what the cast will
    // occupy in pooled buffers and dispatch queues until delivered.
    size_t fan = view_ != nullptr && view_->nmembers() > 1
                     ? static_cast<size_t>(view_->nmembers() - 1)
                     : 1;
    if (!send_window_->TryReserve(payload.size() * fan)) {
      stats_.window_shed++;
      ENS_TRACE(kOverloadShed, -1, 0, payload.size() * fan);
      return;
    }
  }
  stats_.casts++;
  Event ev = Event::Cast(std::move(payload));
  if (config_.mode == StackMode::kMachine && cast_route_ != nullptr) {
    Iovec wire;
    std::vector<Event> self_deliveries;
    if (cast_route_->TryDown(ev, &wire, &self_deliveries)) {
      stats_.bypass_down++;
      EmitCastWire(wire);
      for (Event& self : self_deliveries) {
        HandleStackUpOut(std::move(self));
      }
      return;
    }
    stats_.bypass_down_miss++;
  } else if (config_.mode == StackMode::kHand && hand_ != nullptr) {
    Iovec wire;
    if (hand_->TryDownCast(ev, &wire)) {
      stats_.bypass_down++;
      EmitCastWire(wire);
      return;
    }
    stats_.bypass_down_miss++;
  }
  stack_->Down(std::move(ev));
}

void GroupEndpoint::Send(Rank dest, Iovec payload) {
  if (send_window_ != nullptr && !send_window_->TryReserve(payload.size())) {
    stats_.window_shed++;
    ENS_TRACE(kOverloadShed, -1, 0, payload.size());
    return;
  }
  stats_.sends++;
  Event ev = Event::Send(dest, std::move(payload));
  if (config_.mode == StackMode::kMachine && send_route_ != nullptr) {
    Iovec wire;
    if (send_route_->TryDown(ev, &wire, nullptr)) {
      stats_.bypass_down++;
      EmitSendWire(dest, wire);
      return;
    }
    stats_.bypass_down_miss++;
  } else if (config_.mode == StackMode::kHand && hand_ != nullptr) {
    Iovec wire;
    if (hand_->TryDownSend(ev, &wire)) {
      stats_.bypass_down++;
      EmitSendWire(dest, wire);
      return;
    }
    stats_.bypass_down_miss++;
  }
  stack_->Down(std::move(ev));
}

void GroupEndpoint::Leave() {
  stack_->Down(Event::OfType(EventType::kLeave));
  Flush();  // Staged goodbyes go out before we detach.
  alive_ = false;
  if (net_ != nullptr) {
    net_->Detach(self_);
  }
}

void GroupEndpoint::HandleStackDnOut(Event ev) {
  // The bottom layer emitted a message: marshal and put it on the network.
  if (net_ == nullptr || !view_) {
    return;
  }
  Rank my_rank = view_->RankOf(self_);
  Iovec wire = transport_.MarshalDown(ev, my_rank);
  if (ev.type == EventType::kCast) {
    EmitCastWire(wire);
  } else if (ev.type == EventType::kSend) {
    EmitSendWire(ev.dest, wire);
  }
}

void GroupEndpoint::HandleStackUpOut(Event ev) {
  switch (ev.type) {
    case EventType::kDeliverCast:
    case EventType::kDeliverSend:
      stats_.delivered++;
      if (on_deliver_) {
        on_deliver_(ev);
      }
      return;
    case EventType::kView:
      InstallView(ev.view);
      return;
    case EventType::kInit:
      return;  // Our own Start.
    case EventType::kExit:
      alive_ = false;
      if (net_ != nullptr) {
        net_->Detach(self_);
      }
      if (on_exit_) {
        on_exit_();
      }
      return;
    default:
      return;  // Block / Suspect / Stable / Elect: internal bookkeeping.
  }
}

void GroupEndpoint::InstallView(ViewRef v) {
  view_ = v;
  // A new view invalidates the compiled routes (the constants changed).
  if (config_.mode == StackMode::kMachine || config_.mode == StackMode::kHand) {
    CompileBypass();
  }
  if (on_view_) {
    on_view_(view_);
  }
}

void GroupEndpoint::HandlePacket(const Packet& packet) {
  if (!alive_) {
    return;
  }
  stats_.packets_in++;
  InjectDatagram(packet.datagram);
}

void GroupEndpoint::InjectDatagram(const Bytes& datagram) {
  // A packed datagram splits into complete sub-datagrams (zero-copy slices),
  // each re-dispatched as if it had arrived alone — so packed compressed
  // traffic still hits the bypass/CCP path below.  Sub-messages are never
  // themselves packed, so this recursion is one level deep.
  if (Transport::IsPacked(datagram)) {
    std::vector<Bytes> subs;
    if (transport_.Unpack(datagram, &subs)) {
      stats_.packed_in += subs.size();
      for (const Bytes& sub : subs) {
        InjectDatagram(sub);
      }
    }
    return;
  }

  // HAND mode intercepts its own connections before the generic dispatch.
  if (config_.mode == StackMode::kHand && hand_ != nullptr && datagram.size() >= 6 &&
      datagram[0] == kWireCompressed) {
    uint32_t conn_id;
    std::memcpy(&conn_id, datagram.data() + 1, 4);
    Rank origin = static_cast<Rank>(datagram[5]);
    Event out;
    RoutePair::UpResult r;
    if (conn_id == hand_->cast_conn_id()) {
      r = hand_->TryUpCast(datagram, 6, origin, &out);
    } else if (conn_id == hand_->send_conn_id()) {
      r = hand_->TryUpSend(datagram, 6, origin, &out);
    } else {
      return;  // Unknown connection.
    }
    switch (r) {
      case RoutePair::UpResult::kDelivered:
        stats_.bypass_up++;
        HandleStackUpOut(std::move(out));
        return;
      case RoutePair::UpResult::kFallback:
        stats_.bypass_up_fallback++;
        stack_->Up(std::move(out));
        return;
      case RoutePair::UpResult::kBad:
        return;
    }
  }

  Transport::UpResult up = transport_.DispatchUp(datagram);
  switch (up.kind) {
    case Transport::UpKind::kDelivered:
      stats_.bypass_up++;
      HandleStackUpOut(std::move(up.ev));
      return;
    case Transport::UpKind::kStackEvent:
      if (up.via_bypass) {
        stats_.bypass_up_fallback++;
      }
      stack_->Up(std::move(up.ev));
      return;
    case Transport::UpKind::kDrop:
      return;
  }
}

std::string GroupEndpoint::DescribeBypass() const {
  std::string out;
  if (cast_route_ != nullptr) {
    out += cast_route_->Describe();
  }
  if (send_route_ != nullptr) {
    out += send_route_->Describe();
  }
  if (hand_ != nullptr) {
    out += "HAND bypass wrapping:\n";
  }
  return out;
}

}  // namespace ensemble
