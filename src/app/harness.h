// GroupHarness — a whole simulated group in one object.
//
// Builds N endpoints on one simulated network, installs the initial view,
// records every delivery and view per member, and drives the discrete-event
// queue.  Tests, examples, and benches all sit on top of this.

#ifndef ENSEMBLE_SRC_APP_HARNESS_H_
#define ENSEMBLE_SRC_APP_HARNESS_H_

#include <memory>
#include <string>
#include <vector>

#include "src/app/endpoint.h"
#include "src/runtime/runtime.h"
#include "src/util/mpsc_ring.h"

namespace ensemble {

struct HarnessConfig {
  int n = 2;
  NetworkConfig net;
  EndpointConfig ep;
  // Optional per-member execution-mode override (size n).  A group may mix
  // MACH and FUNC members: compressed traffic from optimized senders is
  // dropped by plain receivers and recovered through NAK retransmission on
  // the (generic) normal path.
  std::vector<StackMode> member_modes;
};

class GroupHarness {
 public:
  struct Delivery {
    EventType type;    // kDeliverCast or kDeliverSend.
    Rank origin;
    std::string payload;
    // How many views this member had installed when the delivery happened:
    // 0 = before any view, k = while views(member)[k-1] was current.  The
    // virtual-synchrony oracle groups deliveries per view with this.
    size_t views_installed = 0;
  };

  explicit GroupHarness(HarnessConfig config);

  // Starts every member with the all-members initial view.
  void StartAll();

  GroupEndpoint& member(int i) { return *members_[static_cast<size_t>(i)]; }
  int n() const { return static_cast<int>(members_.size()); }

  // Convenience senders.
  void CastFrom(int member, std::string_view payload);
  void SendFrom(int member, Rank dest, std::string_view payload);

  // Batching boundary for every member: emits staged packed datagrams (see
  // EndpointConfig::pack_messages).  Tests that burst traffic call this
  // before Run(); otherwise the members' periodic timers flush.
  void FlushAll();

  // Advances simulated time.
  void Run(VTime duration) { queue_.RunUntil(queue_.now() + duration); }
  size_t RunAll() { return queue_.RunAll(); }

  SimQueue& queue() { return queue_; }
  SimNetwork& network() { return net_; }

  const std::vector<Delivery>& deliveries(int member) const {
    return deliveries_[static_cast<size_t>(member)];
  }
  const std::vector<ViewRef>& views(int member) const {
    return views_[static_cast<size_t>(member)];
  }
  // Sequence of cast payloads member i delivered (order-sensitive).
  std::vector<std::string> CastPayloads(int member) const;
  // Cast payloads member i delivered from a particular origin, in order.
  std::vector<std::string> CastPayloadsFrom(int member, Rank origin) const;
  // Cast payloads member i delivered while its view number `view_index`
  // (an index into views(i)) was the installed view — the per-view multiset
  // the virtual-synchrony oracle compares across surviving members.
  std::vector<std::string> CastPayloadsInView(int member, size_t view_index) const;

  // Crashes a member: its node drops off the network (packets blackholed).
  void Crash(int member);

  // Coordinated on-the-fly protocol switch: every member installs `layers`
  // in a fresh view (counter bumped past every member's current view).
  void SwitchAll(const std::vector<LayerId>& layers);

  // Administrative join: creates a new endpoint with the harness's endpoint
  // config and installs a fresh view containing it on every member (the
  // simulator-side analog of an out-of-band join service).  Returns the new
  // member's index.
  int AddMember();

  // Result of a RunSharded() round (see below).
  struct ShardedRunResult {
    bool ok = false;              // Every member delivered the full workload.
    uint64_t total_delivered = 0; // Sum of per-member delivery counts.
    NetworkStats net;             // Aggregated across all shards.
    MpscRingStats rings;          // Cross-shard ring traffic.
    ShardSchedStats sched;        // Steals, credit parks, wakeup coalescing.
    // Full registry snapshot of the run (delta vs. before the workload),
    // rendered once through the obs exporters: network, dispatch, scheduler,
    // waker, pool, and bypass hit/punt metrics in one place.
    std::string metrics_text;
    std::string metrics_json;
  };

  // Runtime knobs RunSharded passes through to the ShardRuntime it builds.
  struct ShardedRunOptions {
    NetBackendConfig net;           // Datapath backend (default: eager).
    StealConfig steal;              // Work stealing (default: off).
    bool pin_cores = false;         // Worker → core affinity.
    std::vector<int> initial_shard; // Explicit member placement (skew setups).
    // Periodic metrics-delta emission (0 = off) and its sink (default:
    // stderr) — forwarded to ShardRuntimeConfig.
    VTime stats_interval = 0;
    std::function<void(const std::string&)> stats_sink;
    // Turn the trace rings on for the run and (when non-empty) export
    // Chrome trace-event JSON to this path after Stop().
    bool trace = false;
    std::string trace_path;
  };

  // Sharded-runtime mode: builds a *separate* ShardRuntime (UDP backend) with
  // the harness's n/ep/member_modes config spread over `num_workers` worker
  // threads, runs one all-to-all round (every member casts
  // `casts_per_member` messages), and waits until every member has delivered
  // (n-1)*casts_per_member casts or `max_wait` elapses.  The harness's own
  // simulated members are untouched; this is the bridge from harness-style
  // configs to the multi-core runtime.  ok=false when sockets are unavailable
  // or the workload did not complete in time.
  ShardedRunResult RunSharded(int num_workers, int casts_per_member = 1,
                              VTime max_wait = Seconds(10));
  ShardedRunResult RunSharded(int num_workers, int casts_per_member, VTime max_wait,
                              const ShardedRunOptions& options);

 private:
  HarnessConfig config_;
  SimQueue queue_;
  SimNetwork net_;
  std::vector<std::unique_ptr<GroupEndpoint>> members_;
  std::vector<std::vector<Delivery>> deliveries_;
  std::vector<std::vector<ViewRef>> views_;
};

}  // namespace ensemble

#endif  // ENSEMBLE_SRC_APP_HARNESS_H_
