#include <algorithm>
#include <chrono>
#include <thread>

#include "src/app/harness.h"
#include "src/runtime/runtime.h"

namespace ensemble {

GroupHarness::GroupHarness(HarnessConfig config)
    : config_(std::move(config)), net_(&queue_, config_.net) {
  deliveries_.resize(static_cast<size_t>(config_.n));
  views_.resize(static_cast<size_t>(config_.n));
  for (int i = 0; i < config_.n; i++) {
    EndpointConfig ep_config = config_.ep;
    if (static_cast<size_t>(i) < config_.member_modes.size()) {
      ep_config.mode = config_.member_modes[static_cast<size_t>(i)];
    }
    auto ep = std::make_unique<GroupEndpoint>(EndpointId{static_cast<uint64_t>(i + 1)}, &net_,
                                              ep_config);
    ep->OnDeliver([this, i](const Event& ev) {
      deliveries_[static_cast<size_t>(i)].push_back(
          Delivery{ev.type, ev.origin, ev.payload.Flatten().ToString(),
                   views_[static_cast<size_t>(i)].size()});
    });
    ep->OnView([this, i](const ViewRef& v) { views_[static_cast<size_t>(i)].push_back(v); });
    members_.push_back(std::move(ep));
  }
}

void GroupHarness::StartAll() {
  auto v = std::make_shared<View>();
  v->vid = ViewId{0, 1};
  for (int i = 0; i < config_.n; i++) {
    v->members.push_back(members_[static_cast<size_t>(i)]->id());
  }
  for (auto& m : members_) {
    m->Start(v);
  }
}

void GroupHarness::CastFrom(int member, std::string_view payload) {
  members_[static_cast<size_t>(member)]->Cast(Iovec(Bytes::CopyString(payload)));
}

void GroupHarness::SendFrom(int member, Rank dest, std::string_view payload) {
  members_[static_cast<size_t>(member)]->Send(dest, Iovec(Bytes::CopyString(payload)));
}

std::vector<std::string> GroupHarness::CastPayloads(int member) const {
  std::vector<std::string> out;
  for (const Delivery& d : deliveries_[static_cast<size_t>(member)]) {
    if (d.type == EventType::kDeliverCast) {
      out.push_back(d.payload);
    }
  }
  return out;
}

std::vector<std::string> GroupHarness::CastPayloadsFrom(int member, Rank origin) const {
  std::vector<std::string> out;
  for (const Delivery& d : deliveries_[static_cast<size_t>(member)]) {
    if (d.type == EventType::kDeliverCast && d.origin == origin) {
      out.push_back(d.payload);
    }
  }
  return out;
}

std::vector<std::string> GroupHarness::CastPayloadsInView(int member,
                                                          size_t view_index) const {
  std::vector<std::string> out;
  for (const Delivery& d : deliveries_[static_cast<size_t>(member)]) {
    if (d.type == EventType::kDeliverCast && d.views_installed == view_index + 1) {
      out.push_back(d.payload);
    }
  }
  return out;
}

void GroupHarness::FlushAll() {
  for (auto& m : members_) {
    m->Flush();
  }
  // The last member's FlushPacked may stage fresh datagrams into the
  // network's rings after every per-member net flush already ran — close the
  // batching boundary once more so nothing staged survives FlushAll.
  net_.Flush();
}

void GroupHarness::SwitchAll(const std::vector<LayerId>& layers) {
  uint64_t max_counter = 0;
  for (auto& m : members_) {
    if (m->view()) {
      max_counter = std::max(max_counter, m->view()->vid.counter);
    }
  }
  auto v = std::make_shared<View>();
  v->vid = ViewId{0, max_counter + 1};
  for (auto& m : members_) {
    v->members.push_back(m->id());
  }
  for (auto& m : members_) {
    m->SwitchStack(layers, v);
  }
}

int GroupHarness::AddMember() {
  int index = static_cast<int>(members_.size());
  auto ep = std::make_unique<GroupEndpoint>(
      EndpointId{static_cast<uint64_t>(index + 1)}, &net_, config_.ep);
  ep->OnDeliver([this, index](const Event& ev) {
    deliveries_[static_cast<size_t>(index)].push_back(
        Delivery{ev.type, ev.origin, ev.payload.Flatten().ToString(),
                 views_[static_cast<size_t>(index)].size()});
  });
  ep->OnView([this, index](const ViewRef& v) {
    views_[static_cast<size_t>(index)].push_back(v);
  });
  deliveries_.emplace_back();
  views_.emplace_back();
  members_.push_back(std::move(ep));

  // New view: everyone (including the newcomer), counter bumped.
  uint64_t max_counter = 0;
  for (auto& m : members_) {
    if (m->view()) {
      max_counter = std::max(max_counter, m->view()->vid.counter);
    }
  }
  auto v = std::make_shared<View>();
  v->vid = ViewId{0, max_counter + 1};
  for (auto& m : members_) {
    v->members.push_back(m->id());
  }
  for (size_t i = 0; i + 1 < members_.size(); i++) {
    members_[i]->SwitchStack(config_.ep.layers, v);
  }
  members_.back()->Start(v);
  return index;
}

GroupHarness::ShardedRunResult GroupHarness::RunSharded(int num_workers,
                                                        int casts_per_member,
                                                        VTime max_wait) {
  return RunSharded(num_workers, casts_per_member, max_wait, ShardedRunOptions{});
}

GroupHarness::ShardedRunResult GroupHarness::RunSharded(int num_workers,
                                                        int casts_per_member,
                                                        VTime max_wait,
                                                        const ShardedRunOptions& options) {
  ShardedRunResult result;
  ShardRuntimeConfig rt_config;
  rt_config.backend = ShardBackend::kUdp;
  rt_config.num_workers = num_workers;
  rt_config.ep = config_.ep;
  rt_config.member_modes = config_.member_modes;
  rt_config.net = options.net;
  rt_config.steal = options.steal;
  rt_config.pin_cores = options.pin_cores;
  rt_config.initial_shard = options.initial_shard;
  rt_config.stats_interval = options.stats_interval;
  rt_config.stats_sink = options.stats_sink;
  rt_config.trace_enabled = options.trace;

  ShardRuntime rt(rt_config);
  if (!rt.Build(config_.n)) {
    return result;  // No sockets in this environment.
  }
  // Delta base: global metrics (dispatch, heap, bypass) outlive runtimes, so
  // the result reports only what THIS run contributed.
  obs::MetricsSnapshot before = rt.SnapshotMetrics();
  rt.Start();
  for (int i = 0; i < config_.n; i++) {
    for (int c = 0; c < casts_per_member; c++) {
      rt.PostToMember(i, [](GroupEndpoint& ep) {
        ep.Cast(Iovec(Bytes::CopyString("sharded-round")));
      });
    }
  }
  const uint64_t want =
      static_cast<uint64_t>(config_.n - 1) * static_cast<uint64_t>(casts_per_member);
  auto deadline = std::chrono::steady_clock::now() + std::chrono::nanoseconds(max_wait);
  bool done = false;
  while (!done && std::chrono::steady_clock::now() < deadline) {
    done = true;
    for (int i = 0; i < config_.n; i++) {
      if (rt.delivered(i) < want) {
        done = false;
        break;
      }
    }
    if (!done) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  rt.Stop();
  result.ok = done;
  result.total_delivered = rt.total_delivered();
  result.net = rt.AggregateNetStats();
  result.rings = rt.AggregateRingStats();
  result.sched = rt.SchedStats();
  obs::MetricsSnapshot delta = rt.SnapshotMetrics().DeltaSince(before);
  result.metrics_text = delta.Text();
  result.metrics_json = delta.Json();
  if (options.trace && !options.trace_path.empty()) {
    rt.WriteTrace(options.trace_path);
  }
  return result;
}

void GroupHarness::Crash(int member) {
  net_.SetNodeUp(members_[static_cast<size_t>(member)]->id(), false);
}

}  // namespace ensemble
