// Online autotuner: the closed loop from measurement to configuration.
//
// The ShardRuntime grew six interacting hand-tuned knobs (datapath backend,
// batch depth, message packing, flush deadline, steal threshold, ingress
// mode).  The autotuner enumerates the small discrete knob lattice against
// the compositional cost model (src/perf/cost_model.h), applies the
// predicted-best configuration at ShardRuntime start — replacing the kAuto
// probe with model-driven selection — and re-evaluates on a slow timer from
// live metric deltas.
//
// What the autotuner may change at runtime (on the owning worker threads,
// through the rings): the datapath backend and batch depth — UdpNetwork
// documents set_backend_config as safe at any time.  What it may NOT change
// after Start(): packing and the flush deadline (baked into each endpoint's
// transport at construction) and the steal threshold (read concurrently by
// the workers).  Those are chosen once from the model at startup.
//
// Observability: three gauges on the runtime's registry —
//   tune.predicted_msgs_per_sec  the model's prediction for the active knobs
//   tune.model_error_pct         |predicted - observed|/observed, EWMA
//   tune.active_config           KnobVector::Encode (see cost_model.cc for
//                                the bit layout; bits 0-1 must agree with
//                                net.backend_active, bit 2 with
//                                net.ingress_mode — a test asserts it).

#ifndef ENSEMBLE_SRC_RUNTIME_AUTOTUNE_H_
#define ENSEMBLE_SRC_RUNTIME_AUTOTUNE_H_

#include <atomic>
#include <string>
#include <vector>

#include "src/perf/cost_model.h"

namespace ensemble {

// How a ShardRuntime resolves its cost model and runs the loop.  Model
// resolution order: explicit `model` (have_model) > `costmodel_path` on disk
// > Calibrate() when `calibrate` > CostModel::Defaults().
struct AutotuneConfig {
  bool enabled = false;
  bool have_model = false;
  perf::CostModel model;
  std::string costmodel_path;  // "" = never touch disk.
  bool calibrate = false;      // Run the micro-run calibration pass (~1s).
  bool save_costmodel = false;  // Persist the resolved model to the path.
  // Workload hints for the predictor; the runtime computes stack_ns itself
  // from its endpoint config.
  size_t msg_bytes = 64;
  double cross_shard_fraction = 0.0;
  size_t burst = 256;
  bool steal_eligible = false;
  // Live re-evaluation cadence (0 = decide once at start).  Each tick reads
  // the delivered-message delta, updates the error EWMA, refines the
  // scheduler terms from the live histograms, and re-chooses; backend/batch
  // changes apply on the next tick's worker drains.
  VTime retune_interval = 0;
};

struct TuneDecision {
  perf::KnobVector knobs;
  perf::Prediction predicted;
  bool valid = false;
  std::string Describe() const;
};

class Autotuner {
 public:
  explicit Autotuner(perf::CostModel model) : model_(std::move(model)) {}

  const perf::CostModel& model() const { return model_; }
  perf::CostModel* mutable_model() { return &model_; }

  // The discrete knob lattice: available backends x batch depths x pack
  // windows x flush deadlines x steal thresholds (thresholds collapse to the
  // default when the workload is not steal-eligible).  Ordered conservative
  // to aggressive so prediction ties resolve to the simpler configuration.
  static std::vector<perf::KnobVector> Lattice(const perf::CostModel& m,
                                               bool steal_eligible);

  // Predicted-best configuration for `w` over the lattice.
  TuneDecision Choose(const perf::WorkloadDesc& w) const;

  // Feeds one live observation; maintains the error EWMA read by the
  // tune.model_error_pct gauge.  Thread-safe (atomics).
  void Observe(double observed_msgs_per_sec, double predicted_msgs_per_sec);
  double model_error_pct() const;

 private:
  perf::CostModel model_;
  std::atomic<uint64_t> error_pct_bits_{0};  // double bit-pattern.
};

// Full calibration for runtimes: the perf-layer micro-runs plus a brief
// two-shard channel-runtime probe that fills ring_hop_ns / steal_ns from the
// sched.* histograms (cost_model.cc cannot depend on the runtime).
perf::CostModel CalibrateWithRuntime(const perf::CalibrationConfig& config = {});

}  // namespace ensemble

#endif  // ENSEMBLE_SRC_RUNTIME_AUTOTUNE_H_
