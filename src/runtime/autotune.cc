#include "src/runtime/autotune.h"

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <thread>

#include "src/runtime/runtime.h"
#include "src/stack/engine.h"

namespace ensemble {

namespace {

// Atomic double via bit pattern (the error EWMA is written by the retune
// thread and read by a gauge callback during live snapshots).
double LoadDouble(const std::atomic<uint64_t>& bits) {
  uint64_t b = bits.load(std::memory_order_relaxed);
  double d;
  static_assert(sizeof d == sizeof b);
  std::memcpy(&d, &b, sizeof d);
  return d;
}

void StoreDouble(std::atomic<uint64_t>& bits, double d) {
  uint64_t b;
  std::memcpy(&b, &d, sizeof b);
  bits.store(b, std::memory_order_relaxed);
}

}  // namespace

std::string TuneDecision::Describe() const {
  char buf[192];
  std::snprintf(buf, sizeof buf,
                "autotune: %s -> predicted %.0f msgs/s, p50 %.1fus, p99 %.1fus",
                knobs.Label().c_str(), predicted.msgs_per_sec,
                predicted.p50_ns / 1e3, predicted.p99_ns / 1e3);
  return buf;
}

std::vector<perf::KnobVector> Autotuner::Lattice(const perf::CostModel& m,
                                                 bool steal_eligible) {
  std::vector<perf::KnobVector> out;
  const size_t batches[] = {1, 4, 8, 16, 32};
  const size_t packs[] = {1, 8, 16, 32};
  const VTime flushes[] = {Micros(500), Millis(1), Millis(2)};
  const std::vector<double> thresholds =
      steal_eligible ? std::vector<double>{2.0, 3.0, 4.0} : std::vector<double>{4.0};
  // Ring provisioning: defaults FIRST so a workload the ring terms cannot
  // distinguish (no cross-shard traffic) resolves to the stock configuration
  // via Choose's first-wins tie rule.
  const size_t ring_caps[] = {4096, 1024, 16384};
  const size_t credit_floors[] = {32, 128};

  for (int b = 0; b < perf::kNumBackendTerms; b++) {
    if (!m.backend[b].available) {
      continue;
    }
    NetBackend backend = static_cast<NetBackend>(b);
    for (size_t batch : batches) {
      if (backend == NetBackend::kEager && batch != 1) {
        continue;  // Eager has no staging ring; the batch knob is inert.
      }
      for (size_t pack : packs) {
        for (VTime flush : flushes) {
          for (double thr : thresholds) {
            for (size_t cap : ring_caps) {
              for (size_t floor : credit_floors) {
                perf::KnobVector k;
                k.backend = backend;
                k.batch = batch;
                k.pack_window = pack;
                k.flush_deadline = flush;
                k.steal_min_imbalance = thr;
                k.ring_capacity = cap;
                k.credit_floor = floor;
                out.push_back(k);
              }
            }
          }
        }
      }
    }
  }
  return out;
}

TuneDecision Autotuner::Choose(const perf::WorkloadDesc& w) const {
  TuneDecision best;
  for (const perf::KnobVector& k : Lattice(model_, w.steal_eligible)) {
    perf::Prediction p = perf::PredictThroughput(model_, w, k);
    if (!best.valid || p.msgs_per_sec > best.predicted.msgs_per_sec) {
      best.knobs = k;
      best.predicted = p;
      best.valid = true;
    }
  }
  return best;
}

void Autotuner::Observe(double observed_msgs_per_sec, double predicted_msgs_per_sec) {
  if (observed_msgs_per_sec <= 0 || predicted_msgs_per_sec <= 0) {
    return;
  }
  double err = std::fabs(predicted_msgs_per_sec - observed_msgs_per_sec) /
               observed_msgs_per_sec * 100.0;
  double prev = LoadDouble(error_pct_bits_);
  // EWMA, half-weight on the newest tick; first observation seeds directly.
  double next = prev == 0 ? err : 0.5 * prev + 0.5 * err;
  StoreDouble(error_pct_bits_, next);
}

double Autotuner::model_error_pct() const { return LoadDouble(error_pct_bits_); }

perf::CostModel CalibrateWithRuntime(const perf::CalibrationConfig& config) {
  perf::CostModel m = perf::Calibrate(config);
  if (!config.probe_runtime) {
    return m;
  }

  // Brief two-shard channel runtime: cross-shard posts fill the
  // sched.delivery_latency_ns histogram (the ring-hop term) and a few
  // migration ping-pongs fill sched.steal_duration_ns.
  ShardRuntimeConfig rc;
  rc.backend = ShardBackend::kChannel;
  rc.num_workers = 2;
  rc.ep.layers = FourLayerStack();
  rc.ep.timer_interval = 0;
  if (!rc.autotune.enabled) {  // Belt and braces: the probe must not recurse.
    ShardRuntime rt(rc);
    if (rt.Build(2, /*group_size=*/1)) {
      rt.Start();
      for (int round = 0; round < 40; round++) {
        for (int i = 0; i < 10; i++) {
          rt.PostToMember(i % 2, [](GroupEndpoint&) {});
        }
        std::this_thread::sleep_for(std::chrono::microseconds(200));
      }
      for (int flip = 0; flip < 6; flip++) {
        rt.MigrateMember(0, 1 - rt.ShardOf(0));
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
      }
      rt.Stop();
      perf::RefineFromMetrics(rt.SnapshotMetrics(), &m);
      m.calibrated = true;
    }
  }
  return m;
}

}  // namespace ensemble
