#include "src/runtime/runtime.h"

#include <algorithm>

#include "src/util/logging.h"

namespace ensemble {

// ---- ChannelNetwork --------------------------------------------------------

void ChannelNetwork::Attach(EndpointId ep, DeliverFn deliver) {
  local_[ep] = std::move(deliver);
}

void ChannelNetwork::Detach(EndpointId ep) {
  local_.erase(ep);
  drain_hooks_.erase(ep);
}

void ChannelNetwork::SetDrainHook(EndpointId ep, std::function<void()> hook) {
  if (hook) {
    drain_hooks_[ep] = std::move(hook);
  } else {
    drain_hooks_.erase(ep);
  }
}

void ChannelNetwork::RouteOne(EndpointId src, EndpointId dst, const Bytes& flat) {
  if (local_.count(dst) > 0) {
    // Same shard: never delivered re-entrantly from inside Send — the local
    // FIFO is drained by Poll(), mirroring the simulator's event scheduling.
    local_q_.push_back(Packet{src, dst, false, flat});
    return;
  }
  if (!rt_->RoutePacket(dst, Packet{src, dst, false, flat})) {
    stats_.dropped++;
  }
}

void ChannelNetwork::Send(EndpointId src, EndpointId dst, const Iovec& gather) {
  CountIfPacked(&stats_, gather);
  stats_.sent++;
  stats_.bytes_sent += gather.size();
  // Flatten models the NIC gather; a fresh heap chunk also makes the payload
  // safe to release on the receiving shard (pool chunks are shard-local).
  RouteOne(src, dst, gather.Flatten());
}

void ChannelNetwork::Broadcast(EndpointId src, const Iovec& gather) {
  CountIfPacked(&stats_, gather);
  Bytes flat = gather.Flatten();
  for (EndpointId id : rt_->AllIds()) {
    if (id == src) {
      continue;
    }
    stats_.sent++;
    stats_.bytes_sent += flat.size();
    RouteOne(src, id, flat);
  }
}

void ChannelNetwork::ScheduleTimer(VTime delay, TimerFn fn) {
  timers_.push(Timer{NowNanos() + delay, timer_seq_++, std::move(fn)});
}

VTime ChannelNetwork::NanosUntilNextTimer() const {
  if (timers_.empty()) {
    return kVTimeNever;
  }
  VTime now = NowNanos();
  return timers_.top().due > now ? timers_.top().due - now : 0;
}

void ChannelNetwork::DeliverLocal(const Packet& packet) {
  auto it = local_.find(packet.dst);
  if (it == local_.end()) {
    stats_.dropped++;  // Left the group since the packet was routed.
    return;
  }
  stats_.delivered++;
  it->second(packet);
}

void ChannelNetwork::DeliverFromRing(const Packet& packet) { DeliverLocal(packet); }

size_t ChannelNetwork::DrainQueues() {
  // Drain only what is queued *now*: deliveries may enqueue responses, and a
  // local ping-pong pair must not trap the worker in one Poll() forever.
  size_t n = local_q_.size();
  for (size_t i = 0; i < n; i++) {
    Packet packet = std::move(local_q_.front());
    local_q_.pop_front();
    DeliverLocal(packet);
  }
  if (n > 0) {
    for (auto& [ep, hook] : drain_hooks_) {
      hook();
    }
  }
  return n;
}

size_t ChannelNetwork::Poll() {
  size_t n = DrainQueues();
  // Due timers, collected first (firing may schedule new ones).
  VTime now = NowNanos();
  std::vector<TimerFn> due;
  while (!timers_.empty() && timers_.top().due <= now) {
    due.push_back(std::move(const_cast<Timer&>(timers_.top()).fn));
    timers_.pop();
  }
  for (TimerFn& fn : due) {
    fn();
  }
  return n + due.size();
}

// ---- ShardRuntime ----------------------------------------------------------

ShardRuntime::ShardRuntime(ShardRuntimeConfig config) : config_(std::move(config)) {
  int w = std::max(1, config_.num_workers);
  for (int s = 0; s < w; s++) {
    auto worker = std::make_unique<Worker>();
    worker->inbox = std::make_unique<MpscRing<ShardMsg>>(config_.ring_capacity);
    if (config_.backend == ShardBackend::kUdp) {
      worker->udp = std::make_unique<UdpNetwork>();
      worker->udp->set_batch_config(config_.batch);
      worker->net = worker->udp.get();
    } else {
      worker->chan = std::make_unique<ChannelNetwork>(this, s);
      worker->net = worker->chan.get();
    }
    workers_.push_back(std::move(worker));
  }
}

ShardRuntime::~ShardRuntime() { Stop(); }

bool ShardRuntime::Build(int n, int group_size) {
  ENS_CHECK(!started_);
  if (group_size <= 0 || group_size > n) {
    group_size = n;
  }
  int w = num_workers();
  int num_groups = (n + group_size - 1) / group_size;
  // Groups land whole on a shard (their traffic stays shard-local) unless
  // there are fewer groups than workers — then members spread round-robin so
  // a single big group still exercises every core.
  bool spread_members = num_groups < w;

  for (int i = 0; i < n; i++) {
    int group = i / group_size;
    int shard = spread_members ? i % w : group % w;
    EndpointConfig ep_config = config_.ep;
    if (static_cast<size_t>(i) < config_.member_modes.size()) {
      ep_config.mode = config_.member_modes[static_cast<size_t>(i)];
    }
    EndpointId id{static_cast<uint64_t>(i + 1)};
    auto ep = std::make_unique<GroupEndpoint>(id, workers_[static_cast<size_t>(shard)]->net,
                                              ep_config);
    delivered_.push_back(std::make_unique<std::atomic<uint64_t>>(0));
    std::atomic<uint64_t>* counter = delivered_.back().get();
    int member = i;
    ep->OnDeliver([this, counter, member](const Event& ev) {
      counter->fetch_add(1, std::memory_order_relaxed);
      if (config_.on_deliver) {
        config_.on_deliver(member, ev);
      }
    });
    members_.push_back(std::move(ep));
    shard_of_.push_back(shard);
    all_ids_.push_back(id);
    shard_of_id_.push_back(shard);
    if (static_cast<size_t>(group) >= groups_.size()) {
      groups_.emplace_back();
    }
    groups_[static_cast<size_t>(group)].push_back(i);
  }

  if (config_.backend == ShardBackend::kUdp) {
    for (auto& worker : workers_) {
      if (!worker->udp->ok()) {
        return false;
      }
    }
    // Publish every endpoint's port on every *other* shard's network: the
    // kernel becomes the cross-shard data plane.
    for (int i = 0; i < n; i++) {
      int home = shard_of_[static_cast<size_t>(i)];
      uint16_t port = workers_[static_cast<size_t>(home)]->udp->PortOf(all_ids_[static_cast<size_t>(i)]);
      for (int s = 0; s < w; s++) {
        if (s != home) {
          workers_[static_cast<size_t>(s)]->udp->AddPeer(all_ids_[static_cast<size_t>(i)], port);
        }
      }
    }
  }
  return true;
}

void ShardRuntime::Start() {
  ENS_CHECK(!started_);
  ENS_CHECK_MSG(!members_.empty(), "Build() before Start()");
  started_ = true;
  // Views install (and bypass routes compile) on this thread, before any
  // worker exists; thread creation publishes everything to the workers.
  for (const std::vector<int>& group : groups_) {
    auto view = std::make_shared<View>();
    view->vid = ViewId{0, 1};
    for (int member : group) {
      view->members.push_back(all_ids_[static_cast<size_t>(member)]);
    }
    for (int member : group) {
      members_[static_cast<size_t>(member)]->Start(view);
    }
  }
  for (int s = 0; s < num_workers(); s++) {
    workers_[static_cast<size_t>(s)]->thread = std::thread([this, s] { WorkerLoop(s); });
  }
}

void ShardRuntime::Stop() {
  if (!started_ || joined_) {
    return;
  }
  stop_.store(true, std::memory_order_release);
  for (int s = 0; s < num_workers(); s++) {
    WakeWorker(s);
  }
  for (auto& worker : workers_) {
    if (worker->thread.joinable()) {
      worker->thread.join();
    }
  }
  joined_ = true;
  // Post-join sweep: worker A's final drain may have pushed into worker B's
  // ring after B already exited.  Single-threaded now, so drain every shard
  // until quiescent (bounded — deliveries can re-enqueue a few times).
  for (int sweep = 0; sweep < 1000; sweep++) {
    size_t activity = 0;
    for (int s = 0; s < num_workers(); s++) {
      Worker& w = *workers_[static_cast<size_t>(s)];
      activity += DrainInbox(s);
      if (w.chan != nullptr) {
        activity += w.chan->DrainQueues();  // No timers: must converge.
      }
    }
    if (activity == 0) {
      break;
    }
  }
}

void ShardRuntime::WakeWorker(int shard) {
  Worker& w = *workers_[static_cast<size_t>(shard)];
  if (w.udp != nullptr) {
    w.udp->Wakeup();
  } else {
    w.waker.Notify();
  }
}

void ShardRuntime::PostMsg(int shard, ShardMsg msg) {
  Worker& w = *workers_[static_cast<size_t>(shard)];
  while (!w.inbox->TryPush(std::move(msg))) {
    // Bounded-ring backpressure: wake the consumer and yield until it drains.
    // (Rings are sized above any in-flight window; see ROADMAP for credit-
    // based flow control.)  During shutdown the message is dropped — the
    // worker may already be gone.
    WakeWorker(shard);
    if (stop_.load(std::memory_order_acquire)) {
      return;
    }
    std::this_thread::yield();
  }
  WakeWorker(shard);
}

void ShardRuntime::Post(int shard, std::function<void()> task) {
  ShardMsg msg;
  msg.task = std::move(task);
  PostMsg(shard, std::move(msg));
}

void ShardRuntime::PostToMember(int member, std::function<void(GroupEndpoint&)> fn) {
  GroupEndpoint* ep = members_[static_cast<size_t>(member)].get();
  Post(ShardOf(member), [ep, fn = std::move(fn)] { fn(*ep); });
}

int ShardRuntime::ShardOfId(EndpointId id) const {
  size_t index = static_cast<size_t>(id.id) - 1;
  return index < shard_of_id_.size() ? shard_of_id_[index] : -1;
}

bool ShardRuntime::RoutePacket(EndpointId dst, Packet packet) {
  int shard = ShardOfId(dst);
  if (shard < 0) {
    return false;
  }
  ShardMsg msg;
  msg.packet = std::move(packet);
  msg.is_packet = true;
  PostMsg(shard, std::move(msg));
  return true;
}

size_t ShardRuntime::DrainInbox(int shard) {
  Worker& w = *workers_[static_cast<size_t>(shard)];
  size_t n = 0;
  ShardMsg msg;
  while (w.inbox->TryPop(&msg)) {
    if (msg.is_packet) {
      if (w.chan != nullptr) {  // UDP rings carry tasks only.
        w.chan->DeliverFromRing(msg.packet);
      }
      msg.packet = Packet{};
    } else if (msg.task) {
      msg.task();
      msg.task = nullptr;
    }
    n++;
  }
  return n;
}

void ShardRuntime::WorkerLoop(int shard) {
  Worker& w = *workers_[static_cast<size_t>(shard)];
  while (!stop_.load(std::memory_order_acquire)) {
    DrainInbox(shard);
    if (w.udp != nullptr) {
      // Blocks in poll(2) on the shard's sockets + wakeup eventfd.
      w.udp->PollWait(config_.poll_slice);
    } else {
      size_t events = w.chan->Poll();
      if (events == 0 && w.inbox->Empty()) {
        w.waker.WaitFor(std::min<VTime>(config_.poll_slice, w.chan->NanosUntilNextTimer()));
      }
    }
  }
  // Drain-out: pending ring messages and staged traffic are processed so
  // Stop() leaves deterministic, fully-flushed state behind.
  DrainInbox(shard);
  if (w.udp != nullptr) {
    w.udp->Poll();
  } else {
    w.chan->Poll();
  }
}

uint64_t ShardRuntime::total_delivered() const {
  uint64_t total = 0;
  for (const auto& c : delivered_) {
    total += c->load(std::memory_order_relaxed);
  }
  return total;
}

NetworkStats ShardRuntime::AggregateNetStats() const {
  NetworkStats total;
  for (const auto& worker : workers_) {
    total.Add(worker->udp != nullptr ? worker->udp->stats() : worker->chan->stats());
  }
  return total;
}

MpscRingStats ShardRuntime::AggregateRingStats() const {
  MpscRingStats total;
  for (const auto& worker : workers_) {
    const MpscRingStats& s = worker->inbox->stats();
    total.pushed += s.pushed;
    total.popped += s.popped;
    total.full_fails += s.full_fails;
  }
  return total;
}

}  // namespace ensemble
