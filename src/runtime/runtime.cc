#include "src/runtime/runtime.h"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "src/net/udp_uring.h"
#include "src/obs/stats_adapters.h"
#include "src/util/logging.h"

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

namespace ensemble {

namespace {
// Which runtime/shard the calling thread belongs to (set by WorkerLoop); any
// other thread — the harness main thread, a bench driver — is "external" and
// uses the extra credit link.
thread_local const ShardRuntime* tls_rt = nullptr;
thread_local int tls_shard = -1;
}  // namespace

// ---- ChannelNetwork --------------------------------------------------------

void ChannelNetwork::Attach(EndpointId ep, DeliverFn deliver) {
  local_[ep] = std::move(deliver);
}

void ChannelNetwork::Detach(EndpointId ep) {
  local_.erase(ep);
  drain_hooks_.erase(ep);
}

void ChannelNetwork::SetDrainHook(EndpointId ep, std::function<void()> hook) {
  if (hook) {
    drain_hooks_[ep] = std::move(hook);
  } else {
    drain_hooks_.erase(ep);
  }
}

ChannelNetwork::ReleasedEndpoint ChannelNetwork::Release(EndpointId ep) {
  ReleasedEndpoint out;
  auto it = local_.find(ep);
  if (it == local_.end()) {
    return out;
  }
  out.deliver = std::move(it->second);
  local_.erase(it);
  auto hit = drain_hooks_.find(ep);
  if (hit != drain_hooks_.end()) {
    out.drain_hook = std::move(hit->second);
    drain_hooks_.erase(hit);
  }
  out.valid = true;
  // Sweep packets to `ep` out of local_q_ so they travel with the handoff.
  // Left behind, they would drain on a shard that is neither home nor owner
  // once the pair departs, where the orphan chain has no forwarding state.
  for (size_t i = 0, n = local_q_.size(); i < n; i++) {
    Packet packet = std::move(local_q_.front());
    local_q_.pop_front();
    if (packet.dst == ep) {
      out.queued.push_back(std::move(packet));
    } else {
      local_q_.push_back(std::move(packet));
    }
  }
  dispatch_depth_ = local_q_.size();
  return out;
}

void ChannelNetwork::Adopt(EndpointId ep, ReleasedEndpoint state) {
  if (!state.valid) {
    return;
  }
  local_[ep] = std::move(state.deliver);
  if (state.drain_hook) {
    drain_hooks_[ep] = std::move(state.drain_hook);
  }
}

void ChannelNetwork::RouteOne(EndpointId src, EndpointId dst, const Bytes& flat) {
  if (local_.count(dst) > 0) {
    // Same shard: never delivered re-entrantly from inside Send — the local
    // FIFO is drained by Poll(), mirroring the simulator's event scheduling.
    EnqueueFromRing(Packet{src, dst, false, flat});
    return;
  }
  if (!rt_->RoutePacketFrom(shard_, Packet{src, dst, false, flat})) {
    stats_.dropped++;
  }
}

void ChannelNetwork::Send(EndpointId src, EndpointId dst, const Iovec& gather) {
  CountIfPacked(&stats_, gather);
  stats_.sent++;
  stats_.bytes_sent += gather.size();
  // Flatten models the NIC gather; a fresh heap chunk also makes the payload
  // safe to release on the receiving shard (pool chunks are shard-local).
  RouteOne(src, dst, gather.Flatten());
}

void ChannelNetwork::Broadcast(EndpointId src, const Iovec& gather) {
  CountIfPacked(&stats_, gather);
  Bytes flat = gather.Flatten();
  for (EndpointId id : rt_->AllIds()) {
    if (id == src) {
      continue;
    }
    stats_.sent++;
    stats_.bytes_sent += flat.size();
    RouteOne(src, id, flat);
  }
}

void ChannelNetwork::ScheduleTimer(VTime delay, TimerFn fn) {
  timers_.push(Timer{NowNanos() + delay, timer_seq_++, std::move(fn)});
  timer_depth_ = timers_.size();
}

VTime ChannelNetwork::NanosUntilNextTimer() const {
  if (timers_.empty()) {
    return kVTimeNever;
  }
  VTime now = NowNanos();
  return timers_.top().due > now ? timers_.top().due - now : 0;
}

void ChannelNetwork::DeliverLocal(const Packet& packet) {
  auto it = local_.find(packet.dst);
  if (it == local_.end()) {
    // Not attached here: mid-migration, not yet adopted, or routed with a
    // stale owner — the runtime knows which (and forwards or stashes it).
    if (!rt_->HandleOrphanPacket(shard_, packet)) {
      stats_.dropped++;  // Left the group since the packet was routed.
    }
    return;
  }
  stats_.delivered++;
  it->second(packet);
}

void ChannelNetwork::DeliverFromRing(const Packet& packet) { DeliverLocal(packet); }

void ChannelNetwork::EnqueueFromRing(Packet packet) {
  local_q_.push_back(std::move(packet));
  if (pressure_.load(std::memory_order_relaxed) >= 2 &&
      local_q_.size() > shed_keep_) {
    // Kill watermark: drop-oldest keeps the freshest traffic and bounds the
    // FIFO.  Datagram semantics — reliability layers recover as from loss.
    Packet victim = std::move(local_q_.front());
    local_q_.pop_front();
    stats_.dropped++;
    overload_sheds_++;
    ENS_TRACE(kOverloadShed, -1, 1, victim.datagram.size());
  }
  dispatch_depth_ = local_q_.size();
}

size_t ChannelNetwork::DrainQueues() {
  // Drain only what is queued *now*: deliveries may enqueue responses, and a
  // local ping-pong pair must not trap the worker in one Poll() forever.
  size_t n = local_q_.size();
  for (size_t i = 0; i < n; i++) {
    Packet packet = std::move(local_q_.front());
    local_q_.pop_front();
    DeliverLocal(packet);
  }
  if (n > 0) {
    for (auto& [ep, hook] : drain_hooks_) {
      hook();
    }
  }
  dispatch_depth_ = local_q_.size();
  return n;
}

size_t ChannelNetwork::Poll() {
  size_t n = DrainQueues();
  // Due timers, collected first (firing may schedule new ones).
  VTime now = NowNanos();
  std::vector<TimerFn> due;
  while (!timers_.empty() && timers_.top().due <= now) {
    due.push_back(std::move(const_cast<Timer&>(timers_.top()).fn));
    timers_.pop();
  }
  timer_depth_ = timers_.size();
  for (TimerFn& fn : due) {
    fn();
  }
  if (!due.empty()) {
    ENS_TRACE(kTimerFire, -1, due.size(), 0);
  }
  return n + due.size();
}

// ---- ShardRuntime ----------------------------------------------------------

ShardRuntime::ShardRuntime(ShardRuntimeConfig config) : config_(std::move(config)) {
  ApplyAutotune();  // Rewrites config_ knobs before any worker reads them.
  int w = std::max(1, config_.num_workers);
  links_ = static_cast<size_t>(w) + 1;  // Worker links + one external link.
  // Size the rings so every link's credit quota is useful; total credits never
  // exceed ring capacity, which is what lets PostMsg assert instead of spin.
  size_t cap = 2;
  while (cap < config_.ring_capacity) {
    cap <<= 1;
  }
  size_t credit_floor =
      static_cast<size_t>(std::max(1, config_.min_credits_per_link));
  while (cap / links_ < credit_floor) {
    cap <<= 1;
  }
  credits_per_link_ = static_cast<int>(cap / links_);
  credits_ = std::make_unique<std::atomic<int>[]>(static_cast<size_t>(w) * links_);
  parked_ = std::make_unique<std::atomic<bool>[]>(static_cast<size_t>(w) * links_);
  for (size_t i = 0; i < static_cast<size_t>(w) * links_; i++) {
    credits_[i].store(credits_per_link_, std::memory_order_relaxed);
    parked_[i].store(false, std::memory_order_relaxed);
  }
  for (int s = 0; s < w; s++) {
    auto worker = std::make_unique<Worker>();
    worker->inbox = std::make_unique<MpscRing<ShardMsg>>(cap);
    worker->trace = std::make_unique<obs::TraceRing>(config_.trace_capacity,
                                                     static_cast<uint16_t>(s));
    if (config_.backend == ShardBackend::kUdp) {
      worker->udp = std::make_unique<UdpNetwork>();
      worker->udp->set_backend_config(config_.net);
      worker->net = worker->udp.get();
    } else {
      worker->chan = std::make_unique<ChannelNetwork>(this, s);
      worker->net = worker->chan.get();
    }
    workers_.push_back(std::move(worker));
  }
  if (config_.backend == ShardBackend::kUdp &&
      ResolveIngressMode(config_.net.ingress) == IngressMode::kShared) {
    SetupSharedIngress();
  }
}

void ShardRuntime::SetupSharedIngress() {
  // All-or-nothing: the first worker binds port 0 and thereby picks the
  // group's port; the rest join it.  Any failure (no SO_REUSEPORT, bind
  // error) rolls every shard back to per-endpoint sockets so the runtime
  // never runs half shared, half not.
  uint16_t group_port = 0;
  bool ok = true;
  for (auto& worker : workers_) {
    if (!worker->udp->EnableSharedIngress(group_port)) {
      ok = false;
      break;
    }
    if (group_port == 0) {
      group_port = worker->udp->shared_port();
    }
  }
  if (!ok) {
    for (auto& worker : workers_) {
      worker->udp->DisableSharedIngress();
    }
    return;
  }
  for (int s = 0; s < num_workers(); s++) {
    Worker* w = workers_[static_cast<size_t>(s)].get();
    // Listener-drain miss: the kernel's flow hash landed a datagram on a
    // shard that does not (or no longer does) own its conn id.  The payload
    // is a pool-backed receive slice that must not be released off-shard, so
    // copy it to the heap before it rides the rings via the home shard.
    w->udp->SetSharedMissHandler([this, s](const Packet& p) {
      Packet copy = p;
      copy.datagram = Bytes::Copy(p.datagram.data(), p.datagram.size());
      return RoutePacketFrom(s, std::move(copy));
    });
  }
}

ShardRuntime::~ShardRuntime() { Stop(); }

void ShardRuntime::ApplyAutotune() {
  if (!config_.autotune.enabled) {
    return;
  }
  const AutotuneConfig& at = config_.autotune;
  perf::CostModel model;
  if (at.have_model) {
    model = at.model;
  } else if (!at.costmodel_path.empty() &&
             perf::CostModel::Load(at.costmodel_path, &model)) {
    // Loaded a previous calibration from disk.
  } else if (at.calibrate) {
    model = CalibrateWithRuntime();
  } else {
    model = perf::CostModel::Defaults();
  }
  // Ground truth beats the model file: a COSTMODEL.json calibrated on a host
  // with io_uring must not steer this host onto a backend it lacks.
  int uring = static_cast<int>(NetBackend::kUring);
  model.backend[uring].available =
      model.backend[uring].available && UringEngine::Available();
  if (at.save_costmodel && !at.costmodel_path.empty()) {
    model.Save(at.costmodel_path);
  }
  tuner_ = std::make_unique<Autotuner>(std::move(model));

  workload_.msg_bytes = at.msg_bytes;
  workload_.cross_shard_fraction = at.cross_shard_fraction;
  workload_.burst = at.burst;
  workload_.workers = std::max(1, config_.num_workers);
  workload_.steal_eligible = at.steal_eligible && config_.steal.enabled;
  workload_.stack_ns = perf::StackCostOf(tuner_->model(), config_.ep);
  decision_ = tuner_->Choose(workload_);
  if (!decision_.valid) {
    return;
  }
  config_.net.backend = decision_.knobs.backend;
  config_.net.send_batch = config_.net.recv_batch = decision_.knobs.batch;
  config_.ep.pack_messages = decision_.knobs.pack_window > 1;
  config_.ep.pack_window = decision_.knobs.pack_window;
  // Ring provisioning knobs land before the constructor sizes the rings
  // (ApplyAutotune runs first), so the credit lattice is startup-tunable.
  config_.ring_capacity = decision_.knobs.ring_capacity;
  config_.min_credits_per_link = static_cast<int>(decision_.knobs.credit_floor);
  if (config_.ep.timer_interval > 0) {
    // The endpoint's periodic timer is the flush deadline; a config that
    // turned timers off entirely (manual-flush benches) keeps them off.
    config_.ep.timer_interval = decision_.knobs.flush_deadline;
  }
  if (config_.steal.enabled) {
    config_.steal.min_imbalance = decision_.knobs.steal_min_imbalance;
  }
  tune_predicted_.store(static_cast<uint64_t>(decision_.predicted.msgs_per_sec),
                        std::memory_order_relaxed);
  LogOncePerProcess(LogLevel::kInfo, decision_.Describe());
}

bool ShardRuntime::Build(int n, int group_size) {
  ENS_CHECK(!started_);
  if (group_size <= 0 || group_size > n) {
    group_size = n;
  }
  int w = num_workers();
  int num_groups = (n + group_size - 1) / group_size;
  // Groups land whole on a shard (their traffic stays shard-local) unless
  // there are fewer groups than workers — then members spread round-robin so
  // a single big group still exercises every core.
  bool spread_members = num_groups < w;

  owner_of_ = std::make_unique<std::atomic<int>[]>(static_cast<size_t>(n));
  for (auto& worker : workers_) {
    worker->resident.assign(static_cast<size_t>(n), 0);
  }

  for (int i = 0; i < n; i++) {
    int group = i / group_size;
    int shard = spread_members ? i % w : group % w;
    if (static_cast<size_t>(i) < config_.initial_shard.size()) {
      shard = std::clamp(config_.initial_shard[static_cast<size_t>(i)], 0, w - 1);
    }
    EndpointConfig ep_config = config_.ep;
    if (static_cast<size_t>(i) < config_.member_modes.size()) {
      ep_config.mode = config_.member_modes[static_cast<size_t>(i)];
    }
    EndpointId id{static_cast<uint64_t>(i + 1)};
    auto ep = std::make_unique<GroupEndpoint>(id, workers_[static_cast<size_t>(shard)]->net,
                                              ep_config);
    delivered_.push_back(std::make_unique<std::atomic<uint64_t>>(0));
    std::atomic<uint64_t>* counter = delivered_.back().get();
    int member = i;
    ep->OnDeliver([this, counter, member](const Event& ev) {
      counter->fetch_add(1, std::memory_order_relaxed);
      // Delivery credits the sender's group window (application traffic is
      // intra-group, so the receiving member shares the sender's window).
      overload::SendWindow* win =
          members_[static_cast<size_t>(member)]->send_window();
      if (win != nullptr) {
        win->Release(ev.payload.size());
      }
      if (config_.on_deliver) {
        config_.on_deliver(member, ev);
      }
    });
    members_.push_back(std::move(ep));
    home_of_.push_back(shard);
    owner_of_[static_cast<size_t>(i)].store(shard, std::memory_order_relaxed);
    Worker& home = *workers_[static_cast<size_t>(shard)];
    home.resident[static_cast<size_t>(i)] = 1;
    home.resident_count.fetch_add(1, std::memory_order_relaxed);
    all_ids_.push_back(id);
    if (static_cast<size_t>(group) >= groups_.size()) {
      groups_.emplace_back();
    }
    groups_[static_cast<size_t>(group)].push_back(i);
  }

  if (config_.backend == ShardBackend::kUdp) {
    for (auto& worker : workers_) {
      if (!worker->udp->ok()) {
        return false;
      }
    }
    // Publish every endpoint's port on every *other* shard's network: the
    // kernel becomes the cross-shard data plane.
    for (int i = 0; i < n; i++) {
      int home = home_of_[static_cast<size_t>(i)];
      uint16_t port = workers_[static_cast<size_t>(home)]->udp->PortOf(all_ids_[static_cast<size_t>(i)]);
      for (int s = 0; s < w; s++) {
        if (s != home) {
          workers_[static_cast<size_t>(s)]->udp->AddPeer(all_ids_[static_cast<size_t>(i)], port);
        }
      }
    }
  }
  SetupOverload();
  RegisterMetrics();
  return true;
}

void ShardRuntime::SetupOverload() {
  if (!config_.overload.enabled) {
    return;
  }
  overload_mgr_ = std::make_unique<overload::OverloadManager>(
      config_.overload, static_cast<int>(groups_.size()));
  // Gate every member's Cast/Send on its group's shared send window.
  for (size_t g = 0; g < groups_.size(); g++) {
    overload::SendWindow* win = overload_mgr_->window(static_cast<int>(g));
    for (int member : groups_[g]) {
      members_[static_cast<size_t>(member)]->SetSendWindow(win);
    }
  }
  for (auto& worker : workers_) {
    if (worker->chan != nullptr) {
      worker->chan->set_shed_keep(config_.overload.kill_dispatch_keep);
    }
  }
  overload::OverloadSignals sig;
  sig.live_bytes = [this]() {
    // Buffered bytes process-wide: heap chunks (channel backend payloads,
    // oversized buffers) plus every shard's receive-pool chunks in flight.
    uint64_t bytes = GlobalHeapBufferStats().bytes.live();
    for (const auto& worker : workers_) {
      if (worker->udp != nullptr) {
        bytes += worker->udp->recv_pool().stats().bytes.live();
      }
    }
    return bytes;
  };
  sig.ring_occupancy_pm = [this]() {
    uint64_t pm = 0;
    for (const auto& worker : workers_) {
      size_t cap = worker->inbox->capacity();
      if (cap > 0) {
        pm = std::max(pm, worker->inbox->SizeApprox() * 1000 / cap);
      }
    }
    return pm;
  };
  sig.dispatch_backlog = [this]() {
    uint64_t depth = 0;
    for (const auto& worker : workers_) {
      if (worker->chan != nullptr) {
        depth = std::max(depth, worker->chan->dispatch_depth());
      }
    }
    return depth;
  };
  sig.timer_backlog = [this]() {
    uint64_t depth = 0;
    for (const auto& worker : workers_) {
      uint64_t d = worker->udp != nullptr ? worker->udp->timer_depth()
                                          : worker->chan->timer_depth();
      depth = std::max(depth, d);
    }
    return depth;
  };
  sig.delivered_total = [this]() { return total_delivered(); };
  overload_mgr_->InstallSignals(std::move(sig));

  overload::OverloadActions act;
  act.set_pressure = [this](int level) {
    // Atomic per-backend store; safe from whichever worker evaluates.
    for (const auto& worker : workers_) {
      worker->net->SetPressure(level);
    }
  };
  act.flush_all = [this]() {
    // Tighten-flush engage: kick every shard to emit staged traffic now
    // instead of waiting out its periodic flush deadline.
    for (int s = 0; s < num_workers(); s++) {
      Post(s, [this, s]() {
        Worker& w = *workers_[static_cast<size_t>(s)];
        for (int m = 0; m < n(); m++) {
          if (w.resident[static_cast<size_t>(m)] != 0) {
            members_[static_cast<size_t>(m)]->Flush();
          }
        }
      });
    }
  };
  overload_mgr_->InstallActions(std::move(act));
}

void ShardRuntime::RegisterMetrics() {
  using namespace obs;  // NOLINT: adapter call site.
  for (int s = 0; s < num_workers(); s++) {
    Worker& w = *workers_[static_cast<size_t>(s)];
    std::string shard_tag = "shard" + std::to_string(s);
    if (w.udp != nullptr) {
      RegisterNetworkStats(metrics_, &w.udp->stats());
      RegisterPoolStats(metrics_, &w.udp->recv_pool(), shard_tag);
      RegisterWakerStats(metrics_, &w.udp->waker().stats());
    } else {
      RegisterNetworkStats(metrics_, &w.chan->stats());
      RegisterWakerStats(metrics_, &w.waker.stats());
    }
    RegisterRingStats(metrics_, &w.inbox->stats());
    metrics_.Counter("sched.events", &w.stats.events);
    metrics_.Counter("sched.busy_ns", &w.stats.busy_ns);
    metrics_.Counter("sched.loops", &w.stats.loops);
    metrics_.Counter("sched.steals_in", &w.stats.steals_in);
    metrics_.Counter("sched.steals_out", &w.stats.steals_out);
    // Per-shard gauges: placement and load are meaningless summed.
    Worker* wp = &w;
    metrics_.Gauge("sched." + shard_tag + ".resident", [wp]() {
      return static_cast<int64_t>(wp->resident_count.load(std::memory_order_relaxed));
    });
    metrics_.Gauge("sched." + shard_tag + ".load_ewma_x256", [wp]() {
      return static_cast<int64_t>(wp->load_ewma.load(std::memory_order_relaxed));
    });
  }
  metrics_.Counter("sched.steals", &steals_completed_);
  metrics_.Counter("sched.steal_requests", &steal_requests_);
  metrics_.Counter("sched.credit_parks", &credit_parks_);
  metrics_.HistogramSource("sched.delivery_latency_ns", &delivery_latency_);
  metrics_.HistogramSource("sched.steal_duration_ns", &steal_duration_);
  if (config_.autotune.enabled && tuner_ != nullptr) {
    // tune.active_config records what actually runs: the backend bits come
    // from active_backend() (never a fallen-back request), so they agree
    // with net.backend_active by construction — a test asserts it.  The
    // channel backend reports eager (NetworkStats' backend_active default):
    // the backend knob is inert without kernel sockets.
    perf::KnobVector active = decision_.knobs;
    bool shared = false;
    Worker& w0 = *workers_.front();
    if (w0.udp != nullptr) {
      active.backend = w0.udp->active_backend();
      shared = w0.udp->shared_ingress();
    } else {
      active.backend = NetBackend::kEager;
    }
    tune_active_.store(active.Encode(shared), std::memory_order_relaxed);
    metrics_.Gauge("tune.predicted_msgs_per_sec", [this]() {
      return static_cast<int64_t>(tune_predicted_.load(std::memory_order_relaxed));
    });
    metrics_.Gauge("tune.model_error_pct", [this]() {
      return static_cast<int64_t>(std::llround(tuner_->model_error_pct()));
    });
    metrics_.Gauge("tune.active_config", [this]() {
      return static_cast<int64_t>(tune_active_.load(std::memory_order_relaxed));
    });
    metrics_.Counter("tune.retunes", &retunes_);
  }
  for (const auto& member : members_) {
    RegisterEndpointStats(metrics_, &member->stats());
  }
  if (overload_mgr_ != nullptr) {
    overload_mgr_->RegisterMetrics(metrics_);
    metrics_.CounterFn("overload.dispatch_shed", [this]() {
      uint64_t dropped = 0;
      for (const auto& worker : workers_) {
        if (worker->chan != nullptr) {
          dropped += worker->chan->overload_sheds();
        }
      }
      return dropped;
    });
  }
  RegisterGlobalStats(metrics_);
}

void ShardRuntime::Start() {
  ENS_CHECK(!started_);
  ENS_CHECK_MSG(!members_.empty(), "Build() before Start()");
  started_ = true;
  // Views install (and bypass routes compile) on this thread, before any
  // worker exists; thread creation publishes everything to the workers.
  for (const std::vector<int>& group : groups_) {
    auto view = std::make_shared<View>();
    view->vid = ViewId{0, 1};
    for (int member : group) {
      view->members.push_back(all_ids_[static_cast<size_t>(member)]);
    }
    for (int member : group) {
      members_[static_cast<size_t>(member)]->Start(view);
    }
  }
  if (config_.trace_enabled) {
    obs::SetTraceEnabled(true);
  }
  for (int s = 0; s < num_workers(); s++) {
    workers_[static_cast<size_t>(s)]->thread = std::thread([this, s] { WorkerLoop(s); });
  }
  if (config_.stats_interval > 0) {
    snap_thread_ = std::thread([this] { SnapshotterLoop(); });
  }
  if (config_.autotune.enabled && tuner_ != nullptr &&
      config_.autotune.retune_interval > 0) {
    tune_thread_ = std::thread([this] { RetuneLoop(); });
  }
}

void ShardRuntime::RetuneLoop() {
  uint64_t last_delivered = total_delivered();
  uint64_t last_ns = NowNanos();
  std::unique_lock<std::mutex> lock(tune_mu_);
  while (!tune_cv_.wait_for(lock,
                            std::chrono::nanoseconds(config_.autotune.retune_interval),
                            [this] { return tune_stop_; })) {
    lock.unlock();
    uint64_t now = NowNanos();
    uint64_t cur = total_delivered();
    double secs = static_cast<double>(now - last_ns) / 1e9;
    double observed =
        secs > 0 ? static_cast<double>(cur - last_delivered) / secs : 0;
    last_ns = now;
    last_delivered = cur;
    if (observed > 0) {
      tuner_->Observe(observed, decision_.predicted.msgs_per_sec);
      // Live re-evaluation: refresh the scheduler terms from the real
      // histograms, re-run the lattice, and apply what is changeable at
      // runtime — backend and batch depth, through each owner's ring
      // (set_backend_config is documented safe on the owning thread).
      perf::RefineFromMetrics(metrics_.Snapshot(), tuner_->mutable_model());
      TuneDecision next = tuner_->Choose(workload_);
      if (next.valid && (next.knobs.backend != decision_.knobs.backend ||
                         next.knobs.batch != decision_.knobs.batch)) {
        decision_.knobs.backend = next.knobs.backend;
        decision_.knobs.batch = next.knobs.batch;
        decision_.predicted = next.predicted;
        retunes_++;
        if (config_.backend == ShardBackend::kUdp) {
          NetBackendConfig cfg = config_.net;
          cfg.backend = next.knobs.backend;
          cfg.send_batch = cfg.recv_batch = next.knobs.batch;
          for (int s = 0; s < num_workers(); s++) {
            Post(s, [this, s, cfg] {
              workers_[static_cast<size_t>(s)]->udp->set_backend_config(cfg);
            });
          }
        }
        tune_predicted_.store(
            static_cast<uint64_t>(decision_.predicted.msgs_per_sec),
            std::memory_order_relaxed);
      }
    }
    lock.lock();
  }
}

void ShardRuntime::SnapshotterLoop() {
  obs::MetricsSnapshot prev = metrics_.Snapshot();
  uint64_t seq = 0;
  std::unique_lock<std::mutex> lock(snap_mu_);
  while (!snap_cv_.wait_for(lock, std::chrono::nanoseconds(config_.stats_interval),
                            [this] { return snap_stop_; })) {
    lock.unlock();
    obs::MetricsSnapshot cur = metrics_.Snapshot();
    std::string text = "== metrics delta #" + std::to_string(seq++) + " ==\n" +
                       cur.DeltaSince(prev).Text();
    prev = std::move(cur);
    if (config_.stats_sink) {
      config_.stats_sink(text);
    } else {
      std::fwrite(text.data(), 1, text.size(), stderr);
    }
    lock.lock();
  }
}

void ShardRuntime::Stop() {
  if (!started_ || joined_) {
    return;
  }
  if (snap_thread_.joinable()) {
    {
      std::lock_guard<std::mutex> lock(snap_mu_);
      snap_stop_ = true;
    }
    snap_cv_.notify_all();
    snap_thread_.join();
  }
  if (tune_thread_.joinable()) {
    {
      std::lock_guard<std::mutex> lock(tune_mu_);
      tune_stop_ = true;
    }
    tune_cv_.notify_all();
    tune_thread_.join();
  }
  stop_.store(true, std::memory_order_release);
  for (int s = 0; s < num_workers(); s++) {
    WakeWorker(s);
  }
  for (auto& worker : workers_) {
    if (worker->thread.joinable()) {
      worker->thread.join();
    }
  }
  if (config_.trace_enabled) {
    // This runtime flipped the global gate on; turn it off so back-to-back
    // runs in one process (benches sweep configs) don't trace unasked.
    obs::SetTraceEnabled(false);
  }
  joined_ = true;
  // Post-join sweep: worker A's final drain may have pushed into worker B's
  // ring after B already exited, and a handoff interrupted mid-protocol may
  // still have its adopt/marker tasks queued.  Single-threaded now, so drain
  // every shard until quiescent (bounded — deliveries can re-enqueue a few
  // times).
  for (int sweep = 0; sweep < 1000; sweep++) {
    size_t activity = 0;
    for (int s = 0; s < num_workers(); s++) {
      Worker& w = *workers_[static_cast<size_t>(s)];
      activity += DrainInbox(s);
      activity += DrainDeferred(s);
      if (w.chan != nullptr) {
        activity += w.chan->DrainQueues();  // No timers: must converge.
      }
    }
    if (activity == 0) {
      break;
    }
  }
}

// ---- Credits and posting ---------------------------------------------------

int ShardRuntime::CurrentLinkIndex() const {
  return (tls_rt == this && tls_shard >= 0) ? tls_shard : num_workers();
}

Waker& ShardRuntime::WakerOf(int shard) {
  Worker& w = *workers_[static_cast<size_t>(shard)];
  return w.udp != nullptr ? w.udp->waker() : w.waker;
}

void ShardRuntime::WakeWorker(int shard) { WakerOf(shard).NotifyCoalesced(); }

void ShardRuntime::GrantCredit(int dst, int src, uint32_t count) {
  if (count == 0) {
    return;
  }
  CreditCell(dst, src).fetch_add(static_cast<int>(count), std::memory_order_release);
  size_t link = static_cast<size_t>(dst) * links_ + static_cast<size_t>(src);
  // Unpark a worker producer blocked on this link (external producers
  // sleep-poll instead of parking — they have no waker).
  if (src < num_workers() && parked_[link].load(std::memory_order_relaxed) &&
      parked_[link].exchange(false, std::memory_order_acq_rel)) {
    WakerOf(src).Notify();
  }
}

void ShardRuntime::HoldOwnInbox(int shard) {
  // Called by a worker parked on a FOREIGN ring: keep popping our OWN ring —
  // popping executes nothing, so protocol stacks are never re-entered — and
  // grant credits to our producers.  This is what lets two workers that are
  // pushing into each other drain each other instead of deadlocking.
  Worker& w = *workers_[static_cast<size_t>(shard)];
  size_t cap = w.inbox->capacity() * 4;  // Backstop, not a real limit.
  ShardMsg msg;
  while (w.inbox->TryPop(&msg)) {
    GrantCredit(shard, msg.src, 1);
    if (msg.is_packet && w.chan != nullptr) {
      // Channel packets defer straight into the dispatch FIFO (a plain
      // append — no stack entry, so safe while parked mid-send).  Crucially
      // this keeps credits flowing under SUSTAINED overload: if packets
      // counted against the `held` backstop, two flooding workers would each
      // fill their held deque, stop popping, stop granting, and wedge.  The
      // FIFO is the queue the overload manager watermarks and kill-sheds, so
      // the overflow is observable and bounded instead of hidden and fatal.
      if (msg.post_ns != 0) {
        delivery_latency_.Observe(NowNanos() - msg.post_ns);
      }
      w.chan->EnqueueFromRing(std::move(msg.packet));
      continue;
    }
    w.held.push_back(std::move(msg));
    if (w.held.size() >= cap) {
      break;  // Backstop for tasks and shared-ingress UDP packets only.
    }
  }
}

bool ShardRuntime::AcquireCredit(int dst, int src) {
  std::atomic<int>& cell = CreditCell(dst, src);
  if (cell.fetch_sub(1, std::memory_order_acquire) > 0) {
    return true;
  }
  cell.fetch_add(1, std::memory_order_relaxed);
  credit_parks_++;
  ENS_TRACE(kCreditPark, -1, static_cast<uint64_t>(dst), 0);
  size_t link = static_cast<size_t>(dst) * links_ + static_cast<size_t>(src);
  bool is_worker = src < num_workers();
  while (!stop_.load(std::memory_order_acquire)) {
    WakeWorker(dst);  // The consumer grants as it drains.
    if (is_worker) {
      HoldOwnInbox(src);
      parked_[link].store(true, std::memory_order_release);
      if (cell.fetch_sub(1, std::memory_order_acquire) > 0) {
        parked_[link].store(false, std::memory_order_relaxed);
        return true;
      }
      cell.fetch_add(1, std::memory_order_relaxed);
      WakerOf(src).WaitFor(200'000);  // Granter notifies; timeout is a backstop.
    } else {
      if (cell.fetch_sub(1, std::memory_order_acquire) > 0) {
        return true;
      }
      cell.fetch_add(1, std::memory_order_relaxed);
      std::this_thread::sleep_for(std::chrono::microseconds(20));
    }
  }
  return false;  // Shutdown: the message is dropped — the worker may be gone.
}

void ShardRuntime::PostMsg(int shard, ShardMsg msg) {
  Worker& w = *workers_[static_cast<size_t>(shard)];
  msg.src = CurrentLinkIndex();
  msg.post_ns = NowNanos();
  if (joined_) {
    // Post-join sweep, single-threaded: bypass credits (shutdown drops may
    // have skewed them) and drain the destination inline if its ring is full.
    while (!w.inbox->TryPush(std::move(msg))) {
      DrainInbox(shard);
    }
    return;
  }
  if (!AcquireCredit(shard, msg.src)) {
    return;
  }
  int member = msg.member;
  bool pushed = w.inbox->TryPush(std::move(msg));
  // Total outstanding credits never exceed ring capacity, so a push holding a
  // credit cannot find the ring full.
  ENS_CHECK_MSG(pushed, "ring full despite credit (shard " << shard << ")");
  ENS_TRACE(kRingPush, member, static_cast<uint64_t>(shard), w.inbox->SizeApprox());
  WakeWorker(shard);
}

void ShardRuntime::Post(int shard, std::function<void()> task) {
  ShardMsg msg;
  msg.task = std::move(task);
  PostMsg(shard, std::move(msg));
}

void ShardRuntime::PostToMember(int member, std::function<void(GroupEndpoint&)> fn) {
  ShardMsg msg;
  msg.member = member;
  msg.member_task = std::move(fn);
  PostMsg(ShardOf(member), std::move(msg));
}

// ---- Packet routing (channel backend) --------------------------------------

int ShardRuntime::MemberOfId(EndpointId id) const {
  size_t index = static_cast<size_t>(id.id) - 1;
  return index < home_of_.size() ? static_cast<int>(index) : -1;
}

bool ShardRuntime::RoutePacketFrom(int src_shard, Packet packet) {
  int member = MemberOfId(packet.dst);
  if (member < 0) {
    return false;
  }
  // Always via the HOME shard: producers need no (racy) owner lookup, and the
  // home worker serializes forwarding across a migration — per-sender FIFO
  // holds even while ownership moves.
  int home = home_of_[static_cast<size_t>(member)];
  if (home == src_shard) {
    return HandleOrphanPacket(src_shard, packet);
  }
  ShardMsg msg;
  msg.packet = std::move(packet);
  msg.is_packet = true;
  PostMsg(home, std::move(msg));
  return true;
}

bool ShardRuntime::HandleOrphanPacket(int shard, const Packet& packet) {
  int member = MemberOfId(packet.dst);
  if (member < 0) {
    return false;
  }
  Worker& w = *workers_[static_cast<size_t>(shard)];
  // (1) We are the victim mid-handoff: the packet joins the backlog that
  // travels with the adoption.
  auto mit = w.migrations.find(member);
  if (mit != w.migrations.end()) {
    mit->second.backlog.push_back(packet);
    return true;
  }
  // (2) We are the thief and this arrived ahead of the adoption.
  auto pit = w.pending.find(member);
  if (pit != w.pending.end()) {
    pit->second.push_back(packet);
    return true;
  }
  int owner = ShardOf(member);
  if (owner == shard) {
    if (!w.resident[static_cast<size_t>(member)]) {
      // (3) Owner on paper but the adoption is still in our ring: queue until
      // FinishAdopt attaches the endpoint (it drains this queue).
      w.pending[static_cast<size_t>(member)].push_back(packet);
      return true;
    }
    return false;  // Resident but detached: the member left — drop.
  }
  if (home_of_[static_cast<size_t>(member)] == shard) {
    // (4) Home forwarding to the current owner.
    ShardMsg msg;
    msg.packet = packet;
    msg.is_packet = true;
    PostMsg(owner, std::move(msg));
    return true;
  }
  return false;  // Stale routing (migration raced with shutdown): drop.
}

void ShardRuntime::DeliverUdpShared(int shard, const Packet& packet) {
  Worker& w = *workers_[static_cast<size_t>(shard)];
  if (w.udp->DeliverToLocal(packet)) {
    return;
  }
  // Not in our demux table: mid-migration, ahead of the adoption, or stale.
  // NOT re-routed via RoutePacketFrom — a ring packet already passed through
  // the home shard, and bouncing it again would let it overtake forwards
  // posted after the owner table flipped, breaking per-sender FIFO.
  if (!HandleOrphanPacket(shard, packet)) {
    w.udp->CountIngressDrop();  // The member left the group: counted drop.
  }
}

// ---- Worker loop -----------------------------------------------------------

void ShardRuntime::ProcessMsg(int shard, ShardMsg msg) {
  Worker& w = *workers_[static_cast<size_t>(shard)];
  if (msg.post_ns != 0) {
    delivery_latency_.Observe(NowNanos() - msg.post_ns);
    msg.post_ns = 0;  // A re-route (below) restamps rather than double-counts.
  }
  if (msg.is_packet) {
    if (w.chan != nullptr) {
      // Deferred, not delivered in place: ALL ring packets funnel through the
      // dispatch FIFO in pop order, so packets enqueued by a parked
      // HoldOwnInbox and packets popped here keep per-sender FIFO.
      w.chan->EnqueueFromRing(std::move(msg.packet));
    } else if (w.udp != nullptr && w.udp->shared_ingress()) {
      // Shared-ingress re-route: a listener miss elsewhere sent this packet
      // through the home shard to us (the owner).
      DeliverUdpShared(shard, msg.packet);
    }  // Per-endpoint UDP rings carry tasks only.
    return;
  }
  if (msg.member >= 0) {
    int owner = ShardOf(msg.member);
    if (owner != shard) {
      PostMsg(owner, std::move(msg));  // Migrated between post and drain.
      return;
    }
    if (!w.resident[static_cast<size_t>(msg.member)]) {
      w.deferred.push_back(std::move(msg));  // Adoption still in flight.
      return;
    }
    msg.member_task(*members_[static_cast<size_t>(msg.member)]);
    return;
  }
  if (msg.task) {
    msg.task();
  }
}

size_t ShardRuntime::DrainInbox(int shard) {
  Worker& w = *workers_[static_cast<size_t>(shard)];
  size_t n = 0;
  ShardMsg msg;
  for (;;) {
    // Held messages (popped while parked, credits already granted) are OLDER
    // than anything still in the ring and must run first — and a park during
    // ProcessMsg may append more, so re-check every iteration.
    if (!w.held.empty()) {
      msg = std::move(w.held.front());
      w.held.pop_front();
    } else if (w.inbox->TryPop(&msg)) {
      GrantCredit(shard, msg.src, 1);
    } else {
      break;
    }
    ProcessMsg(shard, std::move(msg));
    n++;
  }
  if (n > 0) {
    ENS_TRACE(kRingDrain, -1, n, 0);
  }
  return n;
}

size_t ShardRuntime::DrainDeferred(int shard) {
  Worker& w = *workers_[static_cast<size_t>(shard)];
  if (w.deferred.empty()) {
    return 0;
  }
  size_t rounds = w.deferred.size();
  size_t done = 0;
  for (size_t i = 0; i < rounds; i++) {
    ShardMsg msg = std::move(w.deferred.front());
    w.deferred.pop_front();
    int owner = ShardOf(msg.member);
    if (owner == shard && !w.resident[static_cast<size_t>(msg.member)] && !joined_) {
      w.deferred.push_back(std::move(msg));  // Adoption still in flight.
      continue;
    }
    if (owner != shard) {
      PostMsg(owner, std::move(msg));
    } else {
      msg.member_task(*members_[static_cast<size_t>(msg.member)]);
    }
    done++;
  }
  return done;
}

void ShardRuntime::PublishLoad(int shard, size_t events, uint64_t busy_ns) {
  Worker& w = *workers_[static_cast<size_t>(shard)];
  uint64_t prev = w.load_ewma.load(std::memory_order_relaxed);
  int64_t delta = static_cast<int64_t>(events * kEwmaScale) - static_cast<int64_t>(prev);
  w.load_ewma.store(static_cast<uint64_t>(static_cast<int64_t>(prev) + delta / 8),
                    std::memory_order_relaxed);
  w.stats.loops++;
  if (events > 0) {
    w.stats.events += events;
    w.stats.busy_ns += busy_ns;
  }
}

void ShardRuntime::IdleBlock(int shard) {
  Worker& w = *workers_[static_cast<size_t>(shard)];
  if (!w.inbox->Empty() || !w.held.empty()) {
    return;
  }
  if (w.udp != nullptr) {
    w.udp->IdleWait(config_.poll_slice);
    return;
  }
  w.waker.WaitFor(std::min<VTime>(config_.poll_slice, w.chan->NanosUntilNextTimer()));
}

void ShardRuntime::PinToCore(int shard) {
#if defined(__linux__)
  unsigned cores = std::thread::hardware_concurrency();
  if (cores == 0) {
    return;
  }
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(static_cast<unsigned>(shard) % cores, &set);
  if (pthread_setaffinity_np(pthread_self(), sizeof(set), &set) != 0) {
    ENS_LOG(kWarn) << "pin_cores: setaffinity failed for shard " << shard;
  }
#else
  (void)shard;
  LogUnsupportedOnce("pin_cores (thread affinity)");
#endif
}

void ShardRuntime::WorkerLoop(int shard) {
  tls_rt = this;
  tls_shard = shard;
  Worker& w = *workers_[static_cast<size_t>(shard)];
  obs::InstallThreadTraceRing(w.trace.get());
  if (config_.pin_cores) {
    PinToCore(shard);
    if (w.udp != nullptr) {
      // First-touch the receive pool from the pinned thread so its chunks are
      // NUMA-local to this shard (ROADMAP: NUMA-local buffer pools).
      w.udp->PrewarmRecvBuffers(kRecvPrewarmChunks);
    }
  }
  int idle_streak = 0;
  uint64_t last_steal_ns = 0;
  while (!stop_.load(std::memory_order_acquire)) {
    uint64_t t0 = NowNanos();
    size_t events = DrainDeferred(shard);
    events += DrainInbox(shard);
    events += w.udp != nullptr ? w.udp->Poll() : w.chan->Poll();
    if (overload_mgr_ != nullptr) {
      // Deadline-elected: exactly one worker wins the CAS per poll interval,
      // so manager overhead does not scale with shard count.
      overload_mgr_->MaybePoll(NowNanos());
    }
    if (events > 0) {
      PublishLoad(shard, events, NowNanos() - t0);
      idle_streak = 0;
      MaybeSteal(shard, idle_streak, &last_steal_ns);  // Imbalance trigger.
      continue;
    }
    PublishLoad(shard, 0, 0);
    idle_streak++;
    MaybeSteal(shard, idle_streak, &last_steal_ns);
    IdleBlock(shard);
  }
  // Drain-out: pending ring messages and staged traffic are processed so
  // Stop() leaves deterministic, fully-flushed state behind.
  DrainDeferred(shard);
  DrainInbox(shard);
  if (w.udp != nullptr) {
    w.udp->Poll();
  } else {
    w.chan->Poll();
  }
  obs::InstallThreadTraceRing(nullptr);
  tls_rt = nullptr;
  tls_shard = -1;
}

// ---- Work stealing ---------------------------------------------------------

void ShardRuntime::MaybeSteal(int shard, int idle_streak, uint64_t* last_attempt_ns) {
  const StealConfig& sc = config_.steal;
  if (!sc.enabled || num_workers() < 2) {
    return;
  }
  uint64_t now = NowNanos();
  if (now - *last_attempt_ns < sc.cooldown) {
    return;
  }
  if (steal_inflight_.load(std::memory_order_acquire)) {
    return;
  }
  Worker& me = *workers_[static_cast<size_t>(shard)];
  uint64_t own = me.load_ewma.load(std::memory_order_relaxed);
  // Two triggers: a worker that has been fully idle for idle_loops cycles
  // takes anything above the load floor; a busy worker only moves on a
  // sustained min_imbalance : 1 skew against it (8 hot groups next door while
  // it runs one quiet one).
  bool idle_trigger = idle_streak >= sc.idle_loops;
  uint64_t threshold = sc.min_victim_load * kEwmaScale;
  double ratio_floor = sc.min_imbalance * static_cast<double>(std::max<uint64_t>(own, 1));
  int victim = -1;
  uint64_t best = 0;
  for (int s = 0; s < num_workers(); s++) {
    if (s == shard) {
      continue;
    }
    Worker& v = *workers_[static_cast<size_t>(s)];
    if (v.resident_count.load(std::memory_order_relaxed) < 2) {
      continue;  // Moving a lone endpoint just relocates the hotspot.
    }
    uint64_t score = v.load_ewma.load(std::memory_order_relaxed) +
                     v.inbox->SizeApprox() * kEwmaScale;
    if (score < threshold || score <= best) {
      continue;
    }
    if (!idle_trigger && static_cast<double>(score) < ratio_floor) {
      continue;
    }
    best = score;
    victim = s;
  }
  if (victim < 0) {
    return;
  }
  *last_attempt_ns = now;
  if (steal_inflight_.exchange(true, std::memory_order_acq_rel)) {
    return;  // Lost the race to another thief.
  }
  steal_requests_++;
  ENS_TRACE(kStealRequest, -1, static_cast<uint64_t>(victim), best);
  int thief = shard;
  Post(victim, [this, victim, thief] { HandleStealRequest(victim, thief); });
}

void ShardRuntime::HandleStealRequest(int victim, int thief) {
  // Victim thread: pick the hottest GROUP fully resident here (cumulative
  // deliveries are the cheapest heat signal we already maintain) and hand off
  // every one of its endpoints.  Moving whole groups keeps their internal
  // traffic shard-local after the steal — splitting a group would convert its
  // hottest links into cross-shard ones, the opposite of load shedding.
  Worker& w = *workers_[static_cast<size_t>(victim)];
  int pick = -1;
  uint64_t best = 0;
  size_t resident_groups = 0;
  for (size_t g = 0; g < groups_.size(); g++) {
    bool all_here = true;
    uint64_t heat = 1;
    for (int m : groups_[g]) {
      if (!w.resident[static_cast<size_t>(m)]) {
        all_here = false;
        break;
      }
      heat += delivered(m);
    }
    if (!all_here) {
      continue;
    }
    resident_groups++;
    if (heat > best) {
      best = heat;
      pick = static_cast<int>(g);
    }
  }
  if (resident_groups < 2 || pick < 0) {
    // Decline: the load signal was stale, or shedding our only whole group
    // would just relocate the hotspot.
    ENS_TRACE(kStealDecline, -1, static_cast<uint64_t>(thief), 0);
    steal_inflight_.store(false, std::memory_order_release);
    return;
  }
  const std::vector<int>& members = groups_[static_cast<size_t>(pick)];
  for (size_t i = 0; i < members.size(); i++) {
    // steal_inflight_ clears when the LAST member's adoption completes.
    StartHandoff(victim, members[i], thief, /*from_steal=*/i + 1 == members.size());
  }
}

void ShardRuntime::MigrateMember(int member, int to) {
  ENS_CHECK_MSG(started_, "MigrateMember before Start()");
  if (to < 0 || to >= num_workers() || member < 0 || member >= n()) {
    return;
  }
  int owner = ShardOf(member);
  Post(owner, [this, owner, member, to] { StartHandoff(owner, member, to, false); });
}

void ShardRuntime::StartHandoff(int shard, int member, int thief, bool from_steal) {
  int owner = ShardOf(member);
  if (owner != shard) {
    // The member moved between post and drain: chase it.
    Post(owner, [this, owner, member, thief, from_steal] {
      StartHandoff(owner, member, thief, from_steal);
    });
    return;
  }
  Worker& w = *workers_[static_cast<size_t>(shard)];
  if (thief == shard || !w.resident[static_cast<size_t>(member)]) {
    if (from_steal) {
      steal_inflight_.store(false, std::memory_order_release);
    }
    return;  // Already there, or a handoff for it is already in flight.
  }
  ENS_TRACE(kHandoffStart, member, static_cast<uint64_t>(thief), 0);
  uint64_t start_ns = NowNanos();  // → sched.steal_duration_ns at FinishAdopt.
  GroupEndpoint& ep = *members_[static_cast<size_t>(member)];
  ep.BeginRebind();  // Flush staged traffic; invalidate timers on our heap.
  w.resident[static_cast<size_t>(member)] = 0;
  w.resident_count.fetch_sub(1, std::memory_order_relaxed);
  w.stats.steals_out++;
  EndpointId id = all_ids_[static_cast<size_t>(member)];

  if (w.udp != nullptr && !w.udp->shared_ingress()) {
    // Per-endpoint mode: the socket (with its kernel receive queue) travels
    // with the endpoint — in-flight datagrams are neither lost nor reordered,
    // and Release keeps the port as a peer here so our endpoints still reach
    // it.
    UdpNetwork::ReleasedEndpoint state = w.udp->Release(id);
    owner_of_[static_cast<size_t>(member)].store(thief, std::memory_order_release);
    Post(thief, [this, thief, member, state, from_steal, start_ns] {
      FinishAdopt(thief, member, {}, state, {}, from_steal, start_ns);
    });
    return;
  }

  if (w.udp != nullptr) {
    // Shared ingress: no kernel object moves — Release just unhooks the demux
    // entry and hands back the deliver callback.  Routing discipline matches
    // the channel backend (listener misses travel via the home shard's ring),
    // so the handoff uses the same home-shard marker fence to keep per-sender
    // FIFO across the migration.
    UdpNetwork::ReleasedEndpoint state = w.udp->Release(id);
    int home = home_of_[static_cast<size_t>(member)];
    if (home == shard) {
      owner_of_[static_cast<size_t>(member)].store(thief, std::memory_order_release);
      Post(thief, [this, thief, member, state, from_steal, start_ns] {
        FinishAdopt(thief, member, {}, state, {}, from_steal, start_ns);
      });
      return;
    }
    Migration mig;
    mig.thief = thief;
    mig.from_steal = from_steal;
    mig.start_ns = start_ns;
    mig.udp = std::move(state);
    w.migrations[member] = std::move(mig);
    int victim = shard;
    Post(home, [this, victim, member, thief] {
      owner_of_[static_cast<size_t>(member)].store(thief, std::memory_order_release);
      Post(victim, [this, victim, member] { CompleteMarker(victim, member); });
    });
    return;
  }

  ChannelNetwork::ReleasedEndpoint state = w.chan->Release(id);
  int home = home_of_[static_cast<size_t>(member)];
  if (home == shard) {
    // Leaving home: owner update then adopt, both sequenced through the
    // rings.  Every later home-forward is posted by THIS thread after the
    // adopt — per-producer ring FIFO delivers it to the thief afterwards.
    owner_of_[static_cast<size_t>(member)].store(thief, std::memory_order_release);
    Post(thief, [this, thief, member, state, from_steal, start_ns] {
      FinishAdopt(thief, member, state, {}, {}, from_steal, start_ns);
    });
    return;
  }
  // Foreign-owner handoff: fence through the home shard.  Home redirects the
  // owner table and bounces a marker back here; forwards home posted before
  // the redirect reach us before the marker (FIFO per producer) and join the
  // backlog, which travels with the adoption — so the thief sees backlog,
  // then its own pre-adopt queue, then direct forwards: per-sender order.
  Migration mig;
  mig.thief = thief;
  mig.from_steal = from_steal;
  mig.start_ns = start_ns;
  mig.chan = std::move(state);
  w.migrations[member] = std::move(mig);
  int victim = shard;
  Post(home, [this, victim, member, thief] {
    owner_of_[static_cast<size_t>(member)].store(thief, std::memory_order_release);
    Post(victim, [this, victim, member] { CompleteMarker(victim, member); });
  });
}

void ShardRuntime::CompleteMarker(int shard, int member) {
  Worker& w = *workers_[static_cast<size_t>(shard)];
  auto it = w.migrations.find(member);
  ENS_CHECK_MSG(it != w.migrations.end(), "marker without migration");
  Migration mig = std::move(it->second);
  w.migrations.erase(it);
  int thief = mig.thief;
  ENS_TRACE(kHandoffMarker, member, static_cast<uint64_t>(thief), mig.backlog.size());
  Post(thief, [this, thief, member, chan = std::move(mig.chan),
               udp = std::move(mig.udp), backlog = std::move(mig.backlog),
               from_steal = mig.from_steal, start_ns = mig.start_ns] {
    FinishAdopt(thief, member, chan, udp, backlog, from_steal, start_ns);
  });
}

void ShardRuntime::FinishAdopt(int shard, int member, ChannelNetwork::ReleasedEndpoint chan,
                               UdpNetwork::ReleasedEndpoint udp, std::deque<Packet> backlog,
                               bool from_steal, uint64_t start_ns) {
  Worker& w = *workers_[static_cast<size_t>(shard)];
  EndpointId id = all_ids_[static_cast<size_t>(member)];
  std::deque<Packet> swept = std::move(chan.queued);
  if (w.udp != nullptr) {
    w.udp->Adopt(id, std::move(udp));
  } else {
    w.chan->Adopt(id, std::move(chan));
  }
  // Rebind BEFORE replaying queued packets: a delivery may re-enter Send (the
  // application echoes), and that send must go out through OUR backend — via
  // the old pointer it would race the victim's thread and strand packets on a
  // shard that no longer owns either pair member.
  members_[static_cast<size_t>(member)]->FinishRebind(w.net);
  if (w.chan != nullptr) {
    // Oldest first: same-shard sends swept from the victim's local FIFO
    // predate anything that reached the home shard during the migration,
    // which in turn predates what raced ahead of the adoption.
    for (const Packet& p : swept) {
      w.chan->DeliverFromRing(p);
    }
    for (const Packet& p : backlog) {
      w.chan->DeliverFromRing(p);
    }
    auto pit = w.pending.find(member);
    if (pit != w.pending.end()) {
      std::deque<Packet> q = std::move(pit->second);
      w.pending.erase(pit);
      for (const Packet& p : q) {
        w.chan->DeliverFromRing(p);
      }
    }
  } else if (w.udp->shared_ingress()) {
    // Same ordering discipline as the channel backend: the backlog that
    // accumulated on the victim mid-migration predates anything that raced
    // ahead of the adoption into our pre-adopt queue.
    for (const Packet& p : backlog) {
      DeliverUdpShared(shard, p);
    }
    auto pit = w.pending.find(member);
    if (pit != w.pending.end()) {
      std::deque<Packet> q = std::move(pit->second);
      w.pending.erase(pit);
      for (const Packet& p : q) {
        DeliverUdpShared(shard, p);
      }
    }
  }
  w.resident[static_cast<size_t>(member)] = 1;
  w.resident_count.fetch_add(1, std::memory_order_relaxed);
  w.stats.steals_in++;
  steals_completed_++;
  if (start_ns != 0) {
    steal_duration_.Observe(NowNanos() - start_ns);
  }
  ENS_TRACE(kAdopt, member, static_cast<uint64_t>(shard), backlog.size());
  if (from_steal) {
    steal_inflight_.store(false, std::memory_order_release);
  }
  // Deferred member tasks for this member run at the next loop top.
}

// ---- Stats -----------------------------------------------------------------

uint64_t ShardRuntime::total_delivered() const {
  uint64_t total = 0;
  for (const auto& c : delivered_) {
    total += c->load(std::memory_order_relaxed);
  }
  return total;
}

bool ShardRuntime::WriteTrace(const std::string& path) const {
  std::vector<const obs::TraceRing*> rings;
  rings.reserve(workers_.size());
  for (const auto& worker : workers_) {
    rings.push_back(worker->trace.get());
  }
  return obs::WriteChromeTrace(path, rings);
}

std::vector<obs::TraceEvent> ShardRuntime::TraceEvents() const {
  std::vector<const obs::TraceRing*> rings;
  rings.reserve(workers_.size());
  for (const auto& worker : workers_) {
    rings.push_back(worker->trace.get());
  }
  return obs::MergeTraceEvents(rings);
}

bool ShardRuntime::TraceComplete() const {
  for (const auto& worker : workers_) {
    if (worker->trace->dropped() > 0) {
      return false;
    }
  }
  return true;
}

NetworkStats ShardRuntime::AggregateNetStats() const {
  NetworkStats total;
  for (const auto& worker : workers_) {
    total.Add(worker->udp != nullptr ? worker->udp->stats() : worker->chan->stats());
  }
  return total;
}

MpscRingStats ShardRuntime::AggregateRingStats() const {
  MpscRingStats total;
  for (const auto& worker : workers_) {
    const MpscRingStats& s = worker->inbox->stats();
    total.pushed += s.pushed;
    total.popped += s.popped;
    total.full_fails += s.full_fails;
  }
  return total;
}

ShardSchedStats ShardRuntime::SchedStats() const {
  ShardSchedStats out;
  out.steals = steals_completed_.value();
  out.steal_requests = steal_requests_.value();
  out.credit_parks = credit_parks_.value();
  for (const auto& worker : workers_) {
    const WakerStats& ws =
        worker->udp != nullptr ? worker->udp->waker().stats() : worker->waker.stats();
    out.wakeup_writes += ws.notifies.value();
    out.wakeups_coalesced += ws.coalesced.value();
  }
  return out;
}

ShardLoad ShardRuntime::LoadOf(int shard) const {
  const Worker& w = *workers_[static_cast<size_t>(shard)];
  ShardLoad out;
  out.events = w.stats.events.value();
  out.busy_ns = w.stats.busy_ns.value();
  out.loops = w.stats.loops.value();
  out.resident = w.resident_count.load(std::memory_order_relaxed);
  out.ewma = static_cast<double>(w.load_ewma.load(std::memory_order_relaxed)) /
             static_cast<double>(kEwmaScale);
  return out;
}

}  // namespace ensemble
