// ShardRuntime — multi-core execution of many single-threaded endpoints.
//
// The paper's Ensemble stacks ran one event loop per process; this runtime
// scales the same machinery across cores without giving up the paper's
// single-threaded-stack discipline: N worker threads, each owning a disjoint
// set of GroupEndpoints plus its *own* network backend and timer heap, so
// every protocol stack, bypass route, transport packer, and buffer pool is
// touched by exactly one thread and the hot paths keep running lock-free.
//
// Cross-shard traffic is confined to two channels:
//
//   - bounded lock-free MPSC rings (src/util/mpsc_ring.h), one per worker,
//     drained at the top of each worker's poll loop.  They carry harness
//     control (start/stop/injected sends), stat requests, and — for the
//     in-process channel backend — cross-shard packet delivery.  A full ring
//     is backpressure: the poster spins (yielding) until the consumer drains.
//   - the kernel, for the UDP backend: every endpoint owns a real socket, and
//     AddPeer() teaches each shard's UdpNetwork the ports of endpoints living
//     on other shards, so cross-shard datagrams are ordinary loopback sends.
//
// Idle workers block in poll(2) (UDP: sockets + eventfd wakeup; channel:
// eventfd only) instead of spinning; posting into a ring wakes the owner.
//
// Lifecycle: construct → Build(n) → Start() → Post*/run → Stop().  Build and
// Start run on the caller's thread before any worker exists; after Start(),
// endpoints may only be touched from their owning worker (use PostToMember).
// After Stop() joins the workers, the caller may read everything again.

#ifndef ENSEMBLE_SRC_RUNTIME_RUNTIME_H_
#define ENSEMBLE_SRC_RUNTIME_RUNTIME_H_

#include <atomic>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <queue>
#include <thread>
#include <vector>

#include "src/app/endpoint.h"
#include "src/net/udp.h"
#include "src/util/mpsc_ring.h"
#include "src/util/waker.h"

namespace ensemble {

class ShardRuntime;

enum class ShardBackend {
  kUdp,      // Real kernel loopback sockets (the measured hot path).
  kChannel,  // In-process rings only: the sharded analog of the simulator,
             // used by stress tests and environments without sockets.
};

struct ShardRuntimeConfig {
  ShardBackend backend = ShardBackend::kUdp;
  int num_workers = 1;
  EndpointConfig ep;
  // Optional per-member mode override (same convention as HarnessConfig).
  std::vector<StackMode> member_modes;
  UdpBatchConfig batch;          // UDP backend batching knobs.
  size_t ring_capacity = 4096;   // Per-worker cross-shard inbox slots.
  VTime poll_slice = Millis(5);  // Max idle block per worker loop iteration.
  // Optional application tap, called on the OWNING WORKER THREAD for every
  // delivery (after the built-in per-member counter).  Must not touch other
  // shards' state; payload slices must not outlive the callback unless
  // copied (receive buffers are pool-backed and shard-local).
  std::function<void(int member, const Event&)> on_deliver;
};

// One message in a cross-shard ring: a control task, or (channel backend) a
// packet being delivered to an endpoint owned by the receiving shard.
struct ShardMsg {
  std::function<void()> task;
  Packet packet;
  bool is_packet = false;
};

// In-process sharded backend: same-shard sends go through a local FIFO
// drained by Poll() (never delivered re-entrantly from inside Send), and
// cross-shard sends travel the owning shard's MPSC ring.  Timers are a
// wall-clock min-heap, as in UdpNetwork.  Lossless and FIFO per link.
class ChannelNetwork : public Network {
 public:
  ChannelNetwork(ShardRuntime* rt, int shard) : rt_(rt), shard_(shard) {}

  void Attach(EndpointId ep, DeliverFn deliver) override;
  void Detach(EndpointId ep) override;
  void Send(EndpointId src, EndpointId dst, const Iovec& gather) override;
  void Broadcast(EndpointId src, const Iovec& gather) override;
  void ScheduleTimer(VTime delay, TimerFn fn) override;
  VTime Now() const override { return NowNanos(); }
  void SetDrainHook(EndpointId ep, std::function<void()> hook) override;

  // Owning-thread entry points used by the runtime's worker loop.
  void DeliverFromRing(const Packet& packet);  // Ring drain: deliver now.
  size_t Poll();  // Drain the local FIFO + run due timers + drain hooks.
  // The FIFO/hook half of Poll() without firing timers: the post-Stop sweep
  // uses it so periodic timers can't regenerate traffic forever.
  size_t DrainQueues();
  VTime NanosUntilNextTimer() const;

  const NetworkStats& stats() const { return stats_; }

 private:
  struct Timer {
    VTime due;
    uint64_t seq;
    TimerFn fn;
    bool operator>(const Timer& o) const {
      return due != o.due ? due > o.due : seq > o.seq;
    }
  };

  void RouteOne(EndpointId src, EndpointId dst, const Bytes& flat);
  void DeliverLocal(const Packet& packet);

  ShardRuntime* rt_;
  int shard_;
  std::map<EndpointId, DeliverFn> local_;
  std::map<EndpointId, std::function<void()>> drain_hooks_;
  std::deque<Packet> local_q_;
  std::priority_queue<Timer, std::vector<Timer>, std::greater<>> timers_;
  uint64_t timer_seq_ = 0;
  NetworkStats stats_;
};

class ShardRuntime {
 public:
  explicit ShardRuntime(ShardRuntimeConfig config);
  ~ShardRuntime();

  ShardRuntime(const ShardRuntime&) = delete;
  ShardRuntime& operator=(const ShardRuntime&) = delete;

  // Creates `n` endpoints partitioned into groups of `group_size` consecutive
  // members (0 = one group of everyone); each group is a separate view with
  // its own protocol session.  Groups are distributed round-robin across
  // shards so a group's traffic stays shard-local; when there are fewer
  // groups than workers (e.g. the single all-members group), members are
  // spread round-robin instead so every worker has work.  Returns false if a
  // backend resource failed (no sockets).  Main thread, before Start().
  bool Build(int n, int group_size = 0);

  // Installs every group's initial view (compiling bypass routes), then
  // launches the worker threads.
  void Start();

  // Signals stop, wakes every worker, joins them, and runs a final drain so
  // staged traffic and pending ring tasks are accounted for.  Idempotent.
  void Stop();

  int n() const { return static_cast<int>(members_.size()); }
  int num_workers() const { return static_cast<int>(workers_.size()); }
  int ShardOf(int member) const { return shard_of_[static_cast<size_t>(member)]; }
  bool started() const { return started_; }

  // Enqueues a task on shard `s`'s ring (spinning on backpressure) and wakes
  // the worker.  The task runs on the worker thread at its next loop top.
  void Post(int shard, std::function<void()> task);
  // Convenience: run `fn` on `member`'s owning worker with the endpoint.
  void PostToMember(int member, std::function<void(GroupEndpoint&)> fn);

  // Relaxed counters, safe to read from any thread while workers run.
  uint64_t delivered(int member) const {
    return delivered_[static_cast<size_t>(member)]->load(std::memory_order_relaxed);
  }
  uint64_t total_delivered() const;

  // Per-shard NetworkStats summed with NetworkStats::Add.  Exact after
  // Stop(); a live snapshot (relaxed reads) while running.
  NetworkStats AggregateNetStats() const;
  // Cross-shard ring totals (pushed / popped / full-ring backpressure hits).
  MpscRingStats AggregateRingStats() const;

  // Main thread, only before Start() or after Stop().
  GroupEndpoint& member(int i) { return *members_[static_cast<size_t>(i)]; }

  // Internal (ChannelNetwork): routes a flattened packet to the shard owning
  // `dst`, or drops it if no such endpoint exists.  Returns false on drop.
  bool RoutePacket(EndpointId dst, Packet packet);
  // Internal (ChannelNetwork): every endpoint id in the runtime, in member
  // order.  Immutable after Build().
  const std::vector<EndpointId>& AllIds() const { return all_ids_; }

 private:
  struct Worker {
    std::unique_ptr<UdpNetwork> udp;
    std::unique_ptr<ChannelNetwork> chan;
    Network* net = nullptr;
    std::unique_ptr<MpscRing<ShardMsg>> inbox;
    Waker waker;  // Channel-backend sleep; UDP uses the network's own.
    std::thread thread;
  };

  void WorkerLoop(int shard);
  size_t DrainInbox(int shard);
  void WakeWorker(int shard);
  void PostMsg(int shard, ShardMsg msg);
  int ShardOfId(EndpointId id) const;

  ShardRuntimeConfig config_;
  // Workers before members: member destructors detach from worker-owned nets.
  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<std::unique_ptr<GroupEndpoint>> members_;
  std::vector<int> shard_of_;           // member index → shard.
  std::vector<EndpointId> all_ids_;     // member index → id.
  std::vector<int> shard_of_id_;        // id.id - 1 → shard (dense ids).
  std::vector<std::vector<int>> groups_;  // group → member indices.
  std::vector<std::unique_ptr<std::atomic<uint64_t>>> delivered_;
  std::atomic<bool> stop_{false};
  bool started_ = false;
  bool joined_ = false;
};

}  // namespace ensemble

#endif  // ENSEMBLE_SRC_RUNTIME_RUNTIME_H_
