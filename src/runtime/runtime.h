// ShardRuntime — multi-core execution of many single-threaded endpoints.
//
// The paper's Ensemble stacks ran one event loop per process; this runtime
// scales the same machinery across cores without giving up the paper's
// single-threaded-stack discipline: N worker threads, each owning a disjoint
// set of GroupEndpoints plus its *own* network backend and timer heap, so
// every protocol stack, bypass route, transport packer, and buffer pool is
// touched by exactly one thread and the hot paths keep running lock-free.
//
// Cross-shard traffic is confined to two channels:
//
//   - bounded lock-free MPSC rings (src/util/mpsc_ring.h), one per worker,
//     drained at the top of each worker's poll loop.  They carry harness
//     control (start/stop/injected sends), stat requests, and — for the
//     in-process channel backend — cross-shard packet delivery.  Ring space
//     is governed by per-link CREDITS (below); a sender never spins on a
//     full ring.
//   - the kernel, for the UDP backend: every endpoint owns a real socket, and
//     AddPeer() teaches each shard's UdpNetwork the ports of endpoints living
//     on other shards, so cross-shard datagrams are ordinary loopback sends.
//     With `ingress = shared` every shard instead binds ONE listener in a
//     common SO_REUSEPORT group: kernel sockets per shard drop to O(1) in
//     endpoint count, the whole shard drains in a single recvmmsg/uring loop,
//     and a demux preheader (kWireIngress) routes each datagram to its
//     endpoint.  A listener-drain datagram whose conn id is not local routes
//     through the owner via RoutePacketFrom, exactly like a channel packet.
//
// Idle workers block in poll(2) (UDP: sockets + eventfd wakeup; channel:
// eventfd only) instead of spinning; posting into a ring wakes the owner
// through a COALESCED waker: a burst of posts between two of the owner's
// drain cycles costs one eventfd write.
//
// Credit-based ring flow control: each link (producer shard or the external
// world → consumer shard) holds capacity/(workers+1) credits.  A post
// consumes one credit; the consumer grants credits back as it pops.  Because
// total credits never exceed ring capacity, a push holding a credit CANNOT
// find the ring full (checked).  A sender out of credits parks on its own
// waker instead of burning cycles; while parked, a WORKER sender keeps
// popping its own ring into a held-message queue (popping executes nothing,
// so protocol stacks are never re-entered) and granting credits to its own
// producers — which is what makes two mutually-pushing workers drain each
// other instead of deadlocking.
//
// Adaptive scheduling (work stealing): every worker publishes a relaxed
// events-per-cycle EWMA plus ring-depth and busy-time accounting from its
// poll loop.  An idle worker that observes a sustained imbalance posts a
// steal request to the hottest shard; the victim quiesces one whole
// GroupEndpoint (flush staged traffic, invalidate its timers via a rebind
// epoch) and hands ownership to the thief over the ordinary rings — the
// stack itself never sees a second thread.  For the per-endpoint UDP backend
// the endpoint's socket moves with it (datagrams queued in the kernel travel
// along, so nothing in flight is lost or reordered); with shared ingress the
// handoff is a pure in-memory transfer (demux entry + deliver callback — no
// kernel object), fenced through the home shard like a channel handoff so
// per-sender FIFO holds across the migration.  For the channel
// backend, packets always route to the endpoint's HOME shard, which
// forwards to the current owner; a handoff away from a foreign owner is
// fenced with a marker bounced off the home shard, and packets that arrive
// at the new owner early wait in a pre-adoption queue — preserving
// per-sender FIFO across the migration.
//
// Lifecycle: construct → Build(n) → Start() → Post*/run → Stop().  Build and
// Start run on the caller's thread before any worker exists; after Start(),
// endpoints may only be touched from their owning worker (use PostToMember).
// After Stop() joins the workers, the caller may read everything again.

#ifndef ENSEMBLE_SRC_RUNTIME_RUNTIME_H_
#define ENSEMBLE_SRC_RUNTIME_RUNTIME_H_

#include <atomic>
#include <condition_variable>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

#include "src/app/endpoint.h"
#include "src/net/udp.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/overload/manager.h"
#include "src/runtime/autotune.h"
#include "src/util/mpsc_ring.h"
#include "src/util/waker.h"

namespace ensemble {

class ShardRuntime;

enum class ShardBackend {
  kUdp,      // Real kernel loopback sockets (the measured hot path).
  kChannel,  // In-process rings only: the sharded analog of the simulator,
             // used by stress tests and environments without sockets.
};

// Work-stealing policy knobs.  Default OFF so static placement (and every
// existing test's traffic accounting) is unchanged; benches and adaptive
// deployments opt in.
struct StealConfig {
  bool enabled = false;
  // Consecutive zero-event poll cycles before a FULLY IDLE worker looks for a
  // victim (the fast path: an empty shard adopts work quickly).
  int idle_loops = 2;
  // Victim's load signal (events-per-cycle EWMA + ring depth) must be at
  // least this many events per cycle.
  uint64_t min_victim_load = 8;
  // A busy-but-underloaded worker also steals when some shard's load signal
  // is at least this multiple of its own (the skewed-placement case: a worker
  // running one quiet group next to a shard running eight hot ones).
  double min_imbalance = 4.0;
  // Minimum pause between two steal attempts by the same thief.
  VTime cooldown = Millis(2);
};

struct ShardRuntimeConfig {
  ShardBackend backend = ShardBackend::kUdp;
  int num_workers = 1;
  EndpointConfig ep;
  // Optional per-member mode override (same convention as HarnessConfig).
  std::vector<StackMode> member_modes;
  NetBackendConfig net;          // UDP datapath backend + batching knobs.
  size_t ring_capacity = 4096;   // Per-worker cross-shard inbox slots.
  // Per-link credit floor: ring capacity grows (power-of-two) until every
  // link's quota (capacity / (workers+1)) reaches this.  A knob because the
  // autotuner folds ring capacity and credit budgets into its lattice.
  int min_credits_per_link = 32;
  VTime poll_slice = Millis(5);  // Max idle block per worker loop iteration.
  StealConfig steal;             // Adaptive rebalancing (default off).
  // End-to-end overload control (src/overload/): per-group send windows on
  // every member, a manager polled from the shard loops, and graduated
  // backpressure into the backends.  Default off: no gate, no polling.
  overload::OverloadConfig overload;
  // Model-driven knob selection (autotune.h).  When enabled, the constructor
  // resolves a cost model, enumerates the knob lattice, and OVERRIDES
  // net.backend/batch, ep.pack_*, ep.timer_interval (only when nonzero) and
  // steal.min_imbalance (only when stealing is on) with the predicted-best
  // configuration; tune.* gauges report the decision.  Default off: every
  // knob above keeps meaning exactly what it says.
  AutotuneConfig autotune;
  // Pin worker i to core i % hardware_concurrency (pthread_setaffinity_np).
  // No-op with a log line on platforms without thread affinity.
  bool pin_cores = false;
  // Optional explicit member → shard assignment (overrides the round-robin
  // group placement; entries clamped to [0, num_workers)).  The skew bench
  // uses it to build deliberately imbalanced placements.
  std::vector<int> initial_shard;
  // Optional application tap, called on the OWNING WORKER THREAD for every
  // delivery (after the built-in per-member counter).  Must not touch other
  // shards' state; payload slices must not outlive the callback unless
  // copied (receive buffers are pool-backed and shard-local).
  std::function<void(int member, const Event&)> on_deliver;
  // Periodic observability: every `stats_interval` ns a snapshotter thread
  // renders the metrics delta since the previous tick and hands the text to
  // `stats_sink` (default: stderr).  0 disables the thread entirely.
  VTime stats_interval = 0;
  std::function<void(const std::string&)> stats_sink;
  // Per-shard trace ring size in events (rounded up to a power of two).
  size_t trace_capacity = 8192;
  // Flip the global trace switch on at Start().  Off keeps the hot-path cost
  // at one predicted branch; the compile-out build removes even that.
  bool trace_enabled = false;
};
// The issue-tracker name for the sharding knobs; same type.
using ShardConfig = ShardRuntimeConfig;

// One message in a cross-shard ring: a control task, a member-targeted task
// (re-routed if the member migrated between post and drain), or (channel
// backend) a packet being delivered to an endpoint owned by the receiver.
struct ShardMsg {
  std::function<void()> task;
  std::function<void(GroupEndpoint&)> member_task;
  Packet packet;
  int member = -1;    // >= 0: member_task target.
  int src = -1;       // Producing link index (worker id, or W = external).
  bool is_packet = false;
  uint64_t post_ns = 0;  // PostMsg stamp → sched.delivery_latency_ns.
};

// Scheduler-level observability (aggregated over shards).
struct ShardSchedStats {
  uint64_t steals = 0;            // Completed ownership handoffs.
  uint64_t steal_requests = 0;    // Requests posted (incl. declined).
  uint64_t credit_parks = 0;      // Senders that ran out of credits.
  uint64_t wakeup_writes = 0;     // Real eventfd/pipe writes.
  uint64_t wakeups_coalesced = 0; // Wakeups absorbed by the dirty flag.
};

// Per-shard load snapshot (relaxed reads; exact after Stop()).
struct ShardLoad {
  uint64_t events = 0;   // Cumulative events processed.
  uint64_t busy_ns = 0;  // Cumulative non-idle loop time.
  uint64_t loops = 0;    // Poll-loop iterations.
  int resident = 0;      // Endpoints currently owned.
  double ewma = 0;       // Events-per-cycle EWMA (the steal signal).
};

// In-process sharded backend: same-shard sends go through a local FIFO
// drained by Poll() (never delivered re-entrantly from inside Send), and
// cross-shard sends travel the destination's HOME shard ring (which forwards
// to the current owner after a steal).  Timers are a wall-clock min-heap, as
// in UdpNetwork.  Lossless and FIFO per link, including across migrations.
class ChannelNetwork : public Network {
 public:
  ChannelNetwork(ShardRuntime* rt, int shard) : rt_(rt), shard_(shard) {}

  void Attach(EndpointId ep, DeliverFn deliver) override;
  void Detach(EndpointId ep) override;
  void Send(EndpointId src, EndpointId dst, const Iovec& gather) override;
  void Broadcast(EndpointId src, const Iovec& gather) override;
  void ScheduleTimer(VTime delay, TimerFn fn) override;
  VTime Now() const override { return NowNanos(); }
  void SetDrainHook(EndpointId ep, std::function<void()> hook) override;
  // Overload backpressure: at level >= 2 (kill watermark) the dispatch FIFO
  // drops its OLDEST entry once depth exceeds the shed keep — channel traffic
  // is datagram-semantics, so layers recover exactly as from a lossy wire.
  void SetPressure(int level) override {
    pressure_.store(level, std::memory_order_relaxed);
  }
  void set_shed_keep(size_t keep) { shed_keep_ = keep; }

  // Ownership handoff (owning threads only; sequencing via the rings).
  struct ReleasedEndpoint {
    DeliverFn deliver;
    std::function<void()> drain_hook;
    // Same-shard sends to `ep` still parked in local_q_ at Release() time.
    // They predate anything routed via the home shard during the migration,
    // so the adopter replays them first to keep per-sender FIFO.
    std::deque<Packet> queued;
    bool valid = false;
  };
  ReleasedEndpoint Release(EndpointId ep);
  void Adopt(EndpointId ep, ReleasedEndpoint state);
  bool Attached(EndpointId ep) const { return local_.count(ep) > 0; }

  // Owning-thread entry points used by the runtime's worker loop.
  void DeliverFromRing(const Packet& packet);  // Migration replay: deliver now.
  // Normal ring drain: defer into the dispatch FIFO instead of delivering in
  // place.  A worker parked mid-send can keep popping its own ring (a FIFO
  // append enters no protocol stack) and granting credits, so sustained
  // overload lands in the one queue the overload manager watermarks and
  // kill-sheds rather than wedging the credit loop.
  void EnqueueFromRing(Packet packet);
  size_t Poll();  // Drain the local FIFO + run due timers + drain hooks.
  // The FIFO/hook half of Poll() without firing timers: the post-Stop sweep
  // uses it so periodic timers can't regenerate traffic forever.
  size_t DrainQueues();
  VTime NanosUntilNextTimer() const;

  const NetworkStats& stats() const { return stats_; }
  // Overload signals (read cross-thread by the manager's evaluating worker):
  // mirrors of the dispatch FIFO depth and timer-heap depth, updated by the
  // owning thread at every push/pop boundary.
  uint64_t dispatch_depth() const { return dispatch_depth_.value(); }
  uint64_t timer_depth() const { return timer_depth_.value(); }
  uint64_t overload_sheds() const { return overload_sheds_.value(); }

 private:
  struct Timer {
    VTime due;
    uint64_t seq;
    TimerFn fn;
    bool operator>(const Timer& o) const {
      return due != o.due ? due > o.due : seq > o.seq;
    }
  };

  void RouteOne(EndpointId src, EndpointId dst, const Bytes& flat);
  void DeliverLocal(const Packet& packet);

  ShardRuntime* rt_;
  int shard_;
  std::map<EndpointId, DeliverFn> local_;
  std::map<EndpointId, std::function<void()>> drain_hooks_;
  std::deque<Packet> local_q_;
  std::priority_queue<Timer, std::vector<Timer>, std::greater<>> timers_;
  uint64_t timer_seq_ = 0;
  NetworkStats stats_;
  std::atomic<int> pressure_{0};
  size_t shed_keep_ = 4096;
  RelaxedCounter dispatch_depth_;
  RelaxedCounter timer_depth_;
  RelaxedCounter overload_sheds_;
};

class ShardRuntime {
 public:
  explicit ShardRuntime(ShardRuntimeConfig config);
  ~ShardRuntime();

  ShardRuntime(const ShardRuntime&) = delete;
  ShardRuntime& operator=(const ShardRuntime&) = delete;

  // Creates `n` endpoints partitioned into groups of `group_size` consecutive
  // members (0 = one group of everyone); each group is a separate view with
  // its own protocol session.  Groups are distributed round-robin across
  // shards so a group's traffic stays shard-local; when there are fewer
  // groups than workers (e.g. the single all-members group), members are
  // spread round-robin instead so every worker has work.
  // `config.initial_shard` overrides both.  Returns false if a backend
  // resource failed (no sockets).  Main thread, before Start().
  bool Build(int n, int group_size = 0);

  // Installs every group's initial view (compiling bypass routes), then
  // launches the worker threads.
  void Start();

  // Signals stop, wakes every worker, joins them, and runs a final drain so
  // staged traffic and pending ring tasks are accounted for.  Idempotent.
  void Stop();

  int n() const { return static_cast<int>(members_.size()); }
  int num_workers() const { return static_cast<int>(workers_.size()); }
  // CURRENT owner shard of a member (follows migrations; relaxed-exact).
  int ShardOf(int member) const {
    return owner_of_[static_cast<size_t>(member)].load(std::memory_order_acquire);
  }
  // The member's home shard: where its cross-shard packets are routed first
  // (immutable after Build; equals ShardOf until a steal moves the member).
  int HomeOf(int member) const { return home_of_[static_cast<size_t>(member)]; }
  bool started() const { return started_; }

  // Enqueues a task on shard `s`'s ring (parking on credit exhaustion) and
  // wakes the worker.  The task runs on the worker thread at its loop top.
  void Post(int shard, std::function<void()> task);
  // Convenience: run `fn` on `member`'s owning worker with the endpoint.
  // Follows migrations: if the member moves between post and drain, the
  // message is re-routed to the new owner.
  void PostToMember(int member, std::function<void(GroupEndpoint&)> fn);

  // Requests migrating `member` to shard `to` (asynchronous; executes on the
  // owning worker; no-op if already there or a handoff is in flight).  The
  // same protocol the stealer uses — exposed for tests and benches.
  void MigrateMember(int member, int to);

  // Relaxed counters, safe to read from any thread while workers run.
  uint64_t delivered(int member) const {
    return delivered_[static_cast<size_t>(member)]->load(std::memory_order_relaxed);
  }
  uint64_t total_delivered() const;
  uint64_t steals() const { return steals_completed_.value(); }

  // Per-shard NetworkStats summed with NetworkStats::Add.  Exact after
  // Stop(); a live snapshot (relaxed reads) while running.
  NetworkStats AggregateNetStats() const;
  // Cross-shard ring totals (pushed / popped / full-ring backpressure hits).
  MpscRingStats AggregateRingStats() const;
  // Scheduler counters (steals, credit parks, wakeup coalescing).
  ShardSchedStats SchedStats() const;
  // Per-shard load snapshot (the stealing signal, exposed for benches).
  ShardLoad LoadOf(int shard) const;

  // The autotuner's startup decision (valid only when config.autotune.enabled
  // chose a configuration); knobs/predictions may be updated by the retune
  // thread, so read after Stop() or before Start() for exact values.
  const TuneDecision& tune_decision() const { return decision_; }

  // The overload manager (nullptr unless config.overload.enabled).  Exposes
  // pressure, per-group send windows, and action counters; tests/benches may
  // also ForcePoll through it.
  overload::OverloadManager* overload_manager() { return overload_mgr_.get(); }
  // Join admission under overload: the harness consults this before adding a
  // member to a group.  Always true when the manager is off or idle.
  bool AcceptingJoins() {
    return overload_mgr_ == nullptr || overload_mgr_->AcceptingJoins();
  }

  // The unified metrics registry: every backend, ring, waker, pool, endpoint
  // and scheduler counter is registered here during Build().  Callers may add
  // their own entries before Start().
  obs::MetricsRegistry& metrics() { return metrics_; }
  // Merged snapshot across shards (live = approximate, post-Stop = exact).
  obs::MetricsSnapshot SnapshotMetrics() const { return metrics_.Snapshot(); }
  // Chrome trace-event JSON of every shard's trace ring.  Meaningful content
  // requires trace_enabled (or obs::SetTraceEnabled) during the run; exact
  // after Stop().  False on I/O failure.
  bool WriteTrace(const std::string& path) const;
  // Every shard's trace events merged and time-ordered (exact after Stop(),
  // best-effort live).  Feed to CheckSpanShapes for migration/overload span
  // oracles.
  std::vector<obs::TraceEvent> TraceEvents() const;
  // True when no shard's ring overwrote events, i.e. TraceEvents() is the
  // complete emission history.  Span-shape checks are only sound when true;
  // raise ShardRuntimeConfig::trace_capacity if this comes back false.
  bool TraceComplete() const;

  // Main thread, only before Start() or after Stop().
  GroupEndpoint& member(int i) { return *members_[static_cast<size_t>(i)]; }

  // Internal (ChannelNetwork): routes a flattened packet toward the shard
  // owning `dst` via its home shard; `src_shard` is the calling worker.
  // Returns false on drop (no such endpoint).
  bool RoutePacketFrom(int src_shard, Packet packet);
  // Internal (ChannelNetwork): a ring/local packet for an endpoint the shard
  // no longer (or does not yet) own: stash it in a migration backlog or
  // pre-adoption queue, or forward it toward the current owner.  Returns
  // false only when the endpoint is unknown (caller counts the drop).
  bool HandleOrphanPacket(int shard, const Packet& packet);
  // Internal (ChannelNetwork): every endpoint id in the runtime, in member
  // order.  Immutable after Build().
  const std::vector<EndpointId>& AllIds() const { return all_ids_; }
  // Kernel sockets owned by shard `s`'s network backend (0 for the channel
  // backend).  With shared ingress this is 2 (listener + tx) regardless of
  // endpoint count — the O(1) property the runtime tests assert.
  size_t KernelSocketsOf(int shard) const {
    const Worker& w = *workers_[static_cast<size_t>(shard)];
    return w.udp != nullptr ? w.udp->OwnedSocketCount() : 0;
  }

 private:
  static constexpr uint64_t kEwmaScale = 256;  // Fixed-point EWMA unit.
  // Receive-pool chunks first-touched per pinned worker (chunks are 64 KiB,
  // so this faults in ~1 MiB of node-local receive buffers per shard).
  static constexpr size_t kRecvPrewarmChunks = 16;

  struct ShardLoadStats {
    RelaxedCounter events;
    RelaxedCounter busy_ns;
    RelaxedCounter loops;
    RelaxedCounter steals_in;
    RelaxedCounter steals_out;
  };

  // Victim-side record of a handoff awaiting its home-shard marker: the
  // released backend state plus every packet that arrived mid-migration.
  struct Migration {
    int thief = -1;
    bool from_steal = false;  // Clears steal_inflight_ when adopted.
    uint64_t start_ns = 0;    // StartHandoff stamp → sched.steal_duration_ns.
    ChannelNetwork::ReleasedEndpoint chan;
    UdpNetwork::ReleasedEndpoint udp;  // Shared-ingress UDP handoffs only.
    std::deque<Packet> backlog;
  };

  struct Worker {
    std::unique_ptr<UdpNetwork> udp;
    std::unique_ptr<ChannelNetwork> chan;
    Network* net = nullptr;
    std::unique_ptr<MpscRing<ShardMsg>> inbox;
    Waker waker;  // Channel-backend sleep; UDP uses the network's own.
    std::unique_ptr<obs::TraceRing> trace;  // This worker's event ring.
    std::thread thread;

    // Worker-local (owning thread only after Start).
    std::deque<ShardMsg> held;      // Popped while parked; runs next drain.
    std::deque<ShardMsg> deferred;  // Member tasks awaiting an adoption.
    std::map<int, Migration> migrations;           // member → in-flight handoff.
    std::map<int, std::deque<Packet>> pending;     // member → pre-adopt packets.
    std::vector<uint8_t> resident;                 // member → owned here?

    // Published for other threads (the steal signal).
    std::atomic<uint64_t> load_ewma{0};  // events/cycle × kEwmaScale.
    std::atomic<int> resident_count{0};
    ShardLoadStats stats;
  };

  void WorkerLoop(int shard);
  void PinToCore(int shard);
  void RegisterMetrics();
  void SnapshotterLoop();
  // Build() helper: constructs the overload manager, gates every member on
  // its group's send window, and wires signals/actions into the shards.
  void SetupOverload();
  // Constructor helper: resolves the cost model, picks the predicted-best
  // knob vector, and rewrites config_ before any worker is created.
  void ApplyAutotune();
  void RetuneLoop();
  size_t DrainInbox(int shard);
  size_t DrainDeferred(int shard);
  void ProcessMsg(int shard, ShardMsg msg);
  // Shared-ingress UDP: delivers a ring-routed packet into the local demux
  // table, or stashes/forwards it via the orphan chain (mid-migration).
  void DeliverUdpShared(int shard, const Packet& packet);
  // Enables the SO_REUSEPORT listener group across all workers (constructor
  // helper); rolls back to per-endpoint sockets if any shard fails.
  void SetupSharedIngress();
  void PublishLoad(int shard, size_t events, uint64_t busy_ns);
  void IdleBlock(int shard);
  void MaybeSteal(int shard, int idle_streak, uint64_t* last_attempt_ns);
  void HandleStealRequest(int victim, int thief);
  // Handoff steps; the first argument names the worker each runs on (passed
  // explicitly — the post-Stop sweep replays tasks on the main thread).
  void StartHandoff(int shard, int member, int thief, bool from_steal);
  void FinishAdopt(int shard, int member, ChannelNetwork::ReleasedEndpoint chan,
                   UdpNetwork::ReleasedEndpoint udp, std::deque<Packet> backlog,
                   bool from_steal, uint64_t start_ns);
  void CompleteMarker(int shard, int member);

  void WakeWorker(int shard);
  Waker& WakerOf(int shard);
  void PostMsg(int shard, ShardMsg msg);
  bool AcquireCredit(int dst, int src);
  void GrantCredit(int dst, int src, uint32_t count);
  void HoldOwnInbox(int shard);
  int CurrentLinkIndex() const;  // Calling worker's shard, or W = external.
  int MemberOfId(EndpointId id) const;
  std::atomic<int>& CreditCell(int dst, int src) const {
    return credits_[static_cast<size_t>(dst) * links_ + static_cast<size_t>(src)];
  }

  ShardRuntimeConfig config_;
  // Workers before members: member destructors detach from worker-owned nets.
  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<std::unique_ptr<GroupEndpoint>> members_;
  std::vector<int> home_of_;            // member index → home shard (immutable).
  std::unique_ptr<std::atomic<int>[]> owner_of_;  // member index → owner shard.
  std::vector<EndpointId> all_ids_;     // member index → id.
  std::vector<std::vector<int>> groups_;  // group → member indices.
  std::vector<std::unique_ptr<std::atomic<uint64_t>>> delivered_;
  std::unique_ptr<overload::OverloadManager> overload_mgr_;

  // Credit state: links_ = num_workers + 1 (index W = external producers).
  size_t links_ = 0;
  int credits_per_link_ = 0;
  std::unique_ptr<std::atomic<int>[]> credits_;   // [dst * links_ + src].
  std::unique_ptr<std::atomic<bool>[]> parked_;   // Same indexing.

  std::atomic<bool> steal_inflight_{false};  // One migration at a time.
  RelaxedCounter steals_completed_;
  RelaxedCounter steal_requests_;
  RelaxedCounter credit_parks_;
  // Hot-path distributions (Observe is three relaxed increments; the one
  // NowNanos stamp per cross-shard message is noise next to the ring+wakeup
  // cost, so these stay inside the tracing-off budget).
  obs::LatencyHistogram delivery_latency_;  // Ring post → ProcessMsg, ns.
  obs::LatencyHistogram steal_duration_;    // StartHandoff → FinishAdopt, ns.

  std::atomic<bool> stop_{false};
  bool started_ = false;
  bool joined_ = false;

  // Observability.  The registry holds pointers into workers_/members_, both
  // destroyed after it — declaration order here is irrelevant because the
  // registry itself never dereferences outside Snapshot(), which callers may
  // not invoke during destruction.
  obs::MetricsRegistry metrics_;
  std::thread snap_thread_;
  std::mutex snap_mu_;
  std::condition_variable snap_cv_;
  bool snap_stop_ = false;

  // Autotuning (config_.autotune.enabled).  decision_/workload_ belong to the
  // main thread until Start(), then to the retune thread; the gauges read the
  // atomics only.
  std::unique_ptr<Autotuner> tuner_;
  TuneDecision decision_;
  perf::WorkloadDesc workload_;
  std::atomic<uint64_t> tune_predicted_{0};  // msgs/sec, rounded.
  std::atomic<uint32_t> tune_active_{0};     // KnobVector::Encode.
  RelaxedCounter retunes_;
  std::thread tune_thread_;
  std::mutex tune_mu_;
  std::condition_variable tune_cv_;
  bool tune_stop_ = false;
};

}  // namespace ensemble

#endif  // ENSEMBLE_SRC_RUNTIME_RUNTIME_H_
