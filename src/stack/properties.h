// Properties, layer traits, the stack-calculation algorithm, and the
// adjacency checker.
//
// Paper §3.2: "the Ensemble system contains an algorithm for calculating
// stacks given the set of properties that an application requires.  This
// algorithm encodes knowledge of the protocol designers" — here that
// knowledge is the LayerTraits table: what each micro-protocol provides,
// what it requires from the layers below it, and its canonical position.
//
// The same table drives the adjacency check, the tractable per-pair
// discipline of §3.2: "for each pair p and q of adjacent protocol layers
// (p below q), every execution of p.Above is also an execution of q.Below" —
// approximated at the property level: everything a layer requires of its
// environment must be provided by some layer below it.

#ifndef ENSEMBLE_SRC_STACK_PROPERTIES_H_
#define ENSEMBLE_SRC_STACK_PROPERTIES_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/event/types.h"

namespace ensemble {

// Guarantee bits an application can request and layers can provide.
enum Property : uint32_t {
  kPropNet = 1u << 0,           // Raw datagram access (bottom).
  kPropReliableMcast = 1u << 1,
  kPropFifoMcast = 1u << 2,
  kPropReliableP2P = 1u << 3,
  kPropFifoP2P = 1u << 4,
  kPropTotalOrder = 1u << 5,
  kPropFlowMcast = 1u << 6,
  kPropFlowP2P = 1u << 7,
  kPropFragmentation = 1u << 8,
  kPropStability = 1u << 9,
  kPropSelfDelivery = 1u << 10,
  kPropFailureDetect = 1u << 11,
  kPropElection = 1u << 12,
  kPropFlush = 1u << 13,
  kPropMembership = 1u << 14,
  kPropPrivacy = 1u << 15,
  kPropAuth = 1u << 16,
  kPropAppInterface = 1u << 17,
};
using PropertySet = uint32_t;

std::string PropertySetToString(PropertySet props);

struct LayerTraits {
  LayerId id = LayerId::kNone;
  PropertySet provides = 0;
  PropertySet requires_below = 0;
  // Canonical depth: smaller = nearer the application.  The builder emits
  // layers sorted by this; the adjacency checker flags order inversions.
  int position = 0;
};

const LayerTraits& TraitsFor(LayerId id);

// Result of checking or building a stack.
struct StackCheck {
  bool ok = true;
  std::vector<std::string> errors;
  std::string ToString() const;
};

// Verifies the per-pair discipline over a stack given top-first: every
// layer's requirements are provided strictly below it, the stack is ordered
// consistently with canonical positions, bottom is last, and exactly one
// application-interface layer is on top.
StackCheck CheckAdjacency(const std::vector<LayerId>& layers_top_first);

// The stack-calculation algorithm: returns a layer list (top first)
// providing all requested properties, or an empty list with errors when the
// request cannot be satisfied from the library.
std::vector<LayerId> BuildStackForProperties(PropertySet requested, StackCheck* check);

}  // namespace ensemble

#endif  // ENSEMBLE_SRC_STACK_PROPERTIES_H_
