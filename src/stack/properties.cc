#include "src/stack/properties.h"

#include <algorithm>
#include <map>
#include <sstream>

#include "src/util/logging.h"

namespace ensemble {

namespace {

// The protocol designers' knowledge, in one table.
const std::vector<LayerTraits>& TraitsTable() {
  static const std::vector<LayerTraits> table = {
      {LayerId::kTop, kPropAppInterface, 0, 0},
      {LayerId::kPartialAppl, kPropAppInterface, 0, 5},
      {LayerId::kIntra, kPropMembership, kPropElection | kPropFlush | kPropReliableMcast, 10},
      {LayerId::kElect, kPropElection, kPropFailureDetect, 12},
      {LayerId::kSync, kPropFlush, kPropReliableMcast | kPropReliableP2P, 14},
      {LayerId::kTotal, kPropTotalOrder,
       kPropReliableMcast | kPropFifoMcast | kPropReliableP2P, 20},
      {LayerId::kLocal, kPropSelfDelivery, 0, 25},
      {LayerId::kStable, kPropStability, kPropStability, 28},
      {LayerId::kCollect, kPropStability, kPropReliableMcast, 30},
      {LayerId::kFrag, kPropFragmentation, kPropReliableMcast | kPropFifoMcast, 35},
      {LayerId::kPt2ptw, kPropFlowP2P, kPropReliableP2P, 40},
      {LayerId::kMflow, kPropFlowMcast, kPropReliableMcast | kPropReliableP2P, 45},
      {LayerId::kEncrypt, kPropPrivacy, kPropNet, 50},
      {LayerId::kSign, kPropAuth, kPropNet, 52},
      {LayerId::kSuspect, kPropFailureDetect, kPropReliableMcast, 55},
      {LayerId::kFifoCheck, 0, kPropFifoMcast, 57},
      {LayerId::kTotalCheck, 0, kPropTotalOrder, 18},
      {LayerId::kPt2pt, kPropReliableP2P | kPropFifoP2P, kPropNet, 60},
      {LayerId::kMnak, kPropReliableMcast | kPropFifoMcast, kPropNet, 70},
      {LayerId::kTotalBuggy, kPropTotalOrder,
       kPropReliableMcast | kPropFifoMcast | kPropReliableP2P, 20},
      {LayerId::kBottom, kPropNet, 0, 100},
  };
  return table;
}

const char* PropName(Property p) {
  switch (p) {
    case kPropNet:
      return "Net";
    case kPropReliableMcast:
      return "ReliableMcast";
    case kPropFifoMcast:
      return "FifoMcast";
    case kPropReliableP2P:
      return "ReliableP2P";
    case kPropFifoP2P:
      return "FifoP2P";
    case kPropTotalOrder:
      return "TotalOrder";
    case kPropFlowMcast:
      return "FlowMcast";
    case kPropFlowP2P:
      return "FlowP2P";
    case kPropFragmentation:
      return "Fragmentation";
    case kPropStability:
      return "Stability";
    case kPropSelfDelivery:
      return "SelfDelivery";
    case kPropFailureDetect:
      return "FailureDetect";
    case kPropElection:
      return "Election";
    case kPropFlush:
      return "Flush";
    case kPropMembership:
      return "Membership";
    case kPropPrivacy:
      return "Privacy";
    case kPropAuth:
      return "Auth";
    case kPropAppInterface:
      return "AppInterface";
  }
  return "?";
}

}  // namespace

std::string PropertySetToString(PropertySet props) {
  std::ostringstream os;
  bool first = true;
  for (uint32_t bit = 1; bit != 0 && bit <= kPropAppInterface; bit <<= 1) {
    if ((props & bit) != 0) {
      os << (first ? "" : "+") << PropName(static_cast<Property>(bit));
      first = false;
    }
  }
  return first ? "none" : os.str();
}

const LayerTraits& TraitsFor(LayerId id) {
  for (const LayerTraits& t : TraitsTable()) {
    if (t.id == id) {
      return t;
    }
  }
  static const LayerTraits kUnknown;
  ENS_CHECK_MSG(false, "no traits for layer " << LayerIdName(id));
  return kUnknown;
}

std::string StackCheck::ToString() const {
  if (ok) {
    return "ok";
  }
  std::ostringstream os;
  for (const auto& e : errors) {
    os << e << "\n";
  }
  return os.str();
}

StackCheck CheckAdjacency(const std::vector<LayerId>& layers_top_first) {
  StackCheck check;
  auto fail = [&check](const std::string& msg) {
    check.ok = false;
    check.errors.push_back(msg);
  };

  if (layers_top_first.empty()) {
    fail("empty stack");
    return check;
  }
  if (layers_top_first.back() != LayerId::kBottom) {
    fail("the lowest layer must be bottom (network access)");
  }
  {
    const LayerTraits& top = TraitsFor(layers_top_first.front());
    if ((top.provides & kPropAppInterface) == 0) {
      fail(std::string("the top layer must provide the application interface, got ") +
           LayerIdName(layers_top_first.front()));
    }
  }

  // Walk bottom -> top: everything a layer requires must already be provided
  // strictly below it.
  PropertySet below = 0;
  int prev_position = 1000;
  for (size_t i = layers_top_first.size(); i-- > 0;) {
    const LayerTraits& t = TraitsFor(layers_top_first[i]);
    PropertySet missing = t.requires_below & ~below;
    if (missing != 0) {
      std::ostringstream os;
      os << LayerIdName(t.id) << " requires " << PropertySetToString(missing)
         << " from below, but the layers beneath it provide only "
         << PropertySetToString(below);
      fail(os.str());
    }
    if (t.position > prev_position) {
      std::ostringstream os;
      os << LayerIdName(t.id) << " is above a layer that canonically belongs above it";
      fail(os.str());
    }
    prev_position = t.position;
    below |= t.provides;
  }

  // Duplicate layers are configuration mistakes (except checking layers).
  std::map<LayerId, int> counts;
  for (LayerId id : layers_top_first) {
    if (++counts[id] == 2 && id != LayerId::kFifoCheck && id != LayerId::kTotalCheck) {
      fail(std::string("layer ") + LayerIdName(id) + " appears more than once");
    }
  }
  return check;
}

std::vector<LayerId> BuildStackForProperties(PropertySet requested, StackCheck* check) {
  StackCheck local;
  StackCheck& out = check != nullptr ? *check : local;

  // Closure: pull in providers bottom-up until every needed property is
  // covered.  Iterating the table sorted by descending position means a
  // provider's own requirements are resolved by layers even lower that we
  // have already had a chance to include.
  std::vector<LayerTraits> sorted = TraitsTable();
  std::erase_if(sorted, [](const LayerTraits& t) { return t.id == LayerId::kTotalBuggy; });
  std::sort(sorted.begin(), sorted.end(),
            [](const LayerTraits& a, const LayerTraits& b) { return a.position > b.position; });

  PropertySet needed = requested | kPropNet | kPropAppInterface;
  PropertySet covered = 0;
  std::vector<LayerId> chosen;

  // Fixed-point: keep sweeping while new requirements appear.
  for (int round = 0; round < 8; round++) {
    bool progress = false;
    for (const LayerTraits& t : sorted) {
      if ((t.provides & needed & ~covered) == 0) {
        continue;  // Contributes nothing new.
      }
      if (std::find(chosen.begin(), chosen.end(), t.id) != chosen.end()) {
        continue;
      }
      // Prefer partial_appl over top as interface when membership or total
      // order is requested (blocked-send queueing matters there).
      if (t.id == LayerId::kTop &&
          (needed & (kPropMembership | kPropTotalOrder)) != 0) {
        continue;
      }
      if (t.id == LayerId::kPartialAppl &&
          (needed & (kPropMembership | kPropTotalOrder)) == 0) {
        continue;
      }
      chosen.push_back(t.id);
      covered |= t.provides;
      needed |= t.requires_below;
      progress = true;
    }
    if (!progress) {
      break;
    }
  }

  if ((needed & ~covered) != 0) {
    out.ok = false;
    out.errors.push_back("no layers in the library provide " +
                         PropertySetToString(needed & ~covered));
    return {};
  }

  std::sort(chosen.begin(), chosen.end(), [](LayerId a, LayerId b) {
    return TraitsFor(a).position < TraitsFor(b).position;
  });
  out = CheckAdjacency(chosen);
  if (!out.ok) {
    return {};
  }
  return chosen;
}

}  // namespace ensemble
