#include "src/stack/engine.h"

#include "src/obs/trace.h"
#include "src/util/logging.h"

namespace ensemble {

// ---------------------------------------------------------------------------
// ImperativeStack
// ---------------------------------------------------------------------------

// Sink handed to a layer while it runs under the scheduler: emissions are
// enqueued as (adjacent layer, direction) entries.
class ImperativeStack::SchedulerSink : public EventSink {
 public:
  SchedulerSink(ImperativeStack* stack, int layer_index)
      : stack_(stack), layer_index_(layer_index) {}

  void PassUp(Event ev) override { stack_->Enqueue(layer_index_ - 1, Dir::kUp, std::move(ev)); }
  void PassDn(Event ev) override { stack_->Enqueue(layer_index_ + 1, Dir::kDown, std::move(ev)); }

 private:
  ImperativeStack* stack_;
  int layer_index_;
};

ImperativeStack::ImperativeStack(std::vector<std::unique_ptr<Layer>> layers, EndpointId self)
    : ProtocolStack(std::move(layers), self) {
  ring_.resize(64);
}

void ImperativeStack::Enqueue(int layer, Dir dir, Event ev) {
  if (count_ == ring_.size()) {
    // Grow by re-linearizing (rare; the ring starts large enough for the
    // benched stacks).
    std::vector<Pending> bigger(ring_.size() * 2);
    for (size_t i = 0; i < count_; i++) {
      bigger[i] = std::move(ring_[(head_ + i) % ring_.size()]);
    }
    head_ = 0;
    tail_ = count_;
    ring_ = std::move(bigger);
  }
  ring_[tail_] = Pending{layer, dir, std::move(ev)};
  tail_ = (tail_ + 1) % ring_.size();
  count_++;
}

void ImperativeStack::RunScheduler() {
  if (running_) {
    return;  // Re-entrant call: the outer loop will drain.
  }
  running_ = true;
  while (count_ > 0) {
    Pending p = std::move(ring_[head_]);
    head_ = (head_ + 1) % ring_.size();
    count_--;
    int n = static_cast<int>(layers_.size());
    if (p.layer < 0) {
      EmitUp(std::move(p.ev));
      continue;
    }
    if (p.layer >= n) {
      EmitDn(std::move(p.ev));
      continue;
    }
    SchedulerSink sink(this, p.layer);
    GlobalDispatchStats().layer_invocations++;
    Layer* layer = layers_[static_cast<size_t>(p.layer)].get();
    if (p.dir == Dir::kDown) {
      ENS_TRACE(kLayerDown, -1, static_cast<uint64_t>(layer->id()), 0);
      layer->Dn(std::move(p.ev), sink);
    } else {
      ENS_TRACE(kLayerUp, -1, static_cast<uint64_t>(layer->id()), 0);
      layer->Up(std::move(p.ev), sink);
    }
  }
  running_ = false;
}

void ImperativeStack::Down(Event ev) {
  Enqueue(0, Dir::kDown, std::move(ev));
  RunScheduler();
}

void ImperativeStack::Up(Event ev) {
  Enqueue(static_cast<int>(layers_.size()) - 1, Dir::kUp, std::move(ev));
  RunScheduler();
}

// ---------------------------------------------------------------------------
// FunctionalStack
// ---------------------------------------------------------------------------

namespace {
// Collects one layer invocation's emissions into fresh lists — the
// characteristic allocation cost of the functional composition.
class CollectorSink : public EventSink {
 public:
  void PassUp(Event ev) override { up.push_back(std::move(ev)); }
  void PassDn(Event ev) override { dn.push_back(std::move(ev)); }
  std::vector<Event> up;
  std::vector<Event> dn;
};
}  // namespace

FunctionalStack::FunctionalStack(std::vector<std::unique_ptr<Layer>> layers, EndpointId self)
    : ProtocolStack(std::move(layers), self) {}

namespace {
// The characteristic cost of the functional composition: every composition
// level materializes its own result lists and merges its children's ("The up
// events that come out of p and the down events that come out of q are
// merged together to form the output events").
void Merge(std::vector<Event>& into, std::vector<Event>&& from) {
  for (Event& ev : from) {
    into.push_back(std::move(ev));
  }
}
}  // namespace

void FunctionalStack::DnAt(size_t i, Event ev, EventLists& result) {
  EventLists out;
  if (i >= layers_.size()) {
    out.dn.push_back(std::move(ev));
    Merge(result.up, std::move(out.up));
    Merge(result.dn, std::move(out.dn));
    return;
  }
  CollectorSink sink;
  GlobalDispatchStats().layer_invocations++;
  ENS_TRACE(kLayerDown, -1, static_cast<uint64_t>(layers_[i]->id()), 0);
  layers_[i]->Dn(std::move(ev), sink);
  for (Event& up : sink.up) {
    if (i == 0) {
      out.up.push_back(std::move(up));
    } else {
      EventLists sub;
      UpAt(i - 1, std::move(up), sub);
      Merge(out.up, std::move(sub.up));
      Merge(out.dn, std::move(sub.dn));
    }
  }
  for (Event& dn : sink.dn) {
    EventLists sub;
    DnAt(i + 1, std::move(dn), sub);
    Merge(out.up, std::move(sub.up));
    Merge(out.dn, std::move(sub.dn));
  }
  Merge(result.up, std::move(out.up));
  Merge(result.dn, std::move(out.dn));
}

void FunctionalStack::UpAt(size_t i, Event ev, EventLists& result) {
  EventLists out;
  CollectorSink sink;
  GlobalDispatchStats().layer_invocations++;
  ENS_TRACE(kLayerUp, -1, static_cast<uint64_t>(layers_[i]->id()), 0);
  layers_[i]->Up(std::move(ev), sink);
  for (Event& dn : sink.dn) {
    EventLists sub;
    DnAt(i + 1, std::move(dn), sub);
    Merge(out.up, std::move(sub.up));
    Merge(out.dn, std::move(sub.dn));
  }
  for (Event& up : sink.up) {
    if (i == 0) {
      out.up.push_back(std::move(up));
    } else {
      EventLists sub;
      UpAt(i - 1, std::move(up), sub);
      Merge(out.up, std::move(sub.up));
      Merge(out.dn, std::move(sub.dn));
    }
  }
  Merge(result.up, std::move(out.up));
  Merge(result.dn, std::move(out.dn));
}

void FunctionalStack::Flush(EventLists& out) {
  for (Event& ev : out.dn) {
    EmitDn(std::move(ev));
  }
  for (Event& ev : out.up) {
    EmitUp(std::move(ev));
  }
}

void FunctionalStack::Down(Event ev) {
  EventLists out;
  DnAt(0, std::move(ev), out);
  Flush(out);
}

void FunctionalStack::Up(Event ev) {
  ENS_CHECK(!layers_.empty());
  EventLists out;
  UpAt(layers_.size() - 1, std::move(ev), out);
  Flush(out);
}

// ---------------------------------------------------------------------------
// Assembly
// ---------------------------------------------------------------------------

std::vector<std::unique_ptr<Layer>> BuildLayers(const std::vector<LayerId>& ids,
                                                const LayerParams& params) {
  std::vector<std::unique_ptr<Layer>> layers;
  layers.reserve(ids.size());
  for (LayerId id : ids) {
    layers.push_back(CreateLayer(id, params));
  }
  return layers;
}

std::unique_ptr<ProtocolStack> BuildStack(EngineKind kind, const std::vector<LayerId>& ids,
                                          const LayerParams& params, EndpointId self) {
  auto layers = BuildLayers(ids, params);
  if (kind == EngineKind::kImperative) {
    return std::make_unique<ImperativeStack>(std::move(layers), self);
  }
  return std::make_unique<FunctionalStack>(std::move(layers), self);
}

std::vector<LayerId> TenLayerStack() {
  return {LayerId::kPartialAppl, LayerId::kTotal,  LayerId::kLocal, LayerId::kCollect,
          LayerId::kFrag,        LayerId::kPt2ptw, LayerId::kMflow, LayerId::kPt2pt,
          LayerId::kMnak,        LayerId::kBottom};
}

std::vector<LayerId> FourLayerStack() {
  return {LayerId::kTop, LayerId::kPt2pt, LayerId::kMnak, LayerId::kBottom};
}

}  // namespace ensemble
