#include "src/stack/layer.h"

#include <array>

#include "src/util/logging.h"

namespace ensemble {

namespace {
std::array<LayerFactory, kLayerIdCount>& FactoryTable() {
  static std::array<LayerFactory, kLayerIdCount> table{};
  return table;
}
}  // namespace

DispatchStats& GlobalDispatchStats() {
  static DispatchStats stats;
  return stats;
}

void RegisterLayerFactory(LayerId id, LayerFactory factory) {
  FactoryTable()[static_cast<size_t>(id)] = factory;
}

std::unique_ptr<Layer> CreateLayer(LayerId id, const LayerParams& params) {
  LayerFactory f = FactoryTable()[static_cast<size_t>(id)];
  ENS_CHECK_MSG(f != nullptr, "no factory for layer " << LayerIdName(id));
  return f(params);
}

bool LayerIsRegistered(LayerId id) {
  return FactoryTable()[static_cast<size_t>(id)] != nullptr;
}

}  // namespace ensemble
