// The micro-protocol layer interface.
//
// Paper §2: "Each module adheres to a common Ensemble micro-protocol
// interface ... The interface is event-driven: modules pass event objects to
// the adjacent modules."  A layer receives events from above (Dn) and below
// (Up) and emits any number of events in either direction through the sink.
// Layers are single-threaded and own their state; all inter-layer
// interaction is events.

#ifndef ENSEMBLE_SRC_STACK_LAYER_H_
#define ENSEMBLE_SRC_STACK_LAYER_H_

#include <memory>
#include <vector>

#include "src/event/event.h"
#include "src/util/counters.h"
#include "src/util/vtime.h"

namespace ensemble {

// Where a layer's emitted events go.  Engines (imperative scheduler,
// functional composition, bypass) provide different implementations.
class EventSink {
 public:
  virtual ~EventSink() = default;
  virtual void PassUp(Event ev) = 0;
  virtual void PassDn(Event ev) = 0;
};

// Per-stack tuning knobs, shared by all layers of one stack instance.
struct LayerParams {
  size_t frag_max = 1024;            // Fragmentation threshold (bytes).
  uint32_t mflow_window = 256;       // Multicast send credits.
  uint32_t pt2pt_window = 256;       // Point-to-point send credits per peer.
  VTime retrans_timeout = Millis(5);  // Retransmission check interval.
  uint32_t suspect_max_idle = 5;     // Missed heartbeats before suspicion.
  VTime heartbeat_interval = Millis(2);
  bool local_loopback = true;        // local layer delivers own casts.
  uint32_t stable_interval = 16;     // Casts between stability gossip rounds.
  // fifo_buggy fault-injection layer: hold back every Nth up-going cast per
  // origin and release it one delivery late (adjacent swap).  0 disables the
  // bug even when the layer is stacked.
  uint32_t fifo_bug_period = 3;
};

class Layer {
 public:
  explicit Layer(LayerId id) : id_(id) {}
  virtual ~Layer() = default;

  Layer(const Layer&) = delete;
  Layer& operator=(const Layer&) = delete;

  LayerId id() const { return id_; }

  // Event arriving from the layer above (or the application at the top).
  virtual void Dn(Event ev, EventSink& sink) = 0;
  // Event arriving from the layer below (or the transport at the bottom).
  virtual void Up(Event ev, EventSink& sink) = 0;

  // Pointer to the layer's bypass-visible hot state (see src/bypass/).  The
  // compiled bypass and the normal path share this state, which is what lets
  // the per-event CCP switch between them (paper Fig. 4).  Layers without
  // bypass rules return nullptr.
  virtual void* FastState() { return nullptr; }

  // A hash of the layer's protocol-relevant state, used by the bypass
  // equivalence checker to assert that the optimized and the original paths
  // leave the stack in identical states.  Layers with no protocol state may
  // keep the default.
  virtual uint64_t StateDigest() const { return 0; }

  Rank rank() const { return rank_; }
  int nmembers() const { return nmembers_; }
  const ViewRef& view() const { return view_; }

  EndpointId self() const { return self_; }
  // The stack assembler tells every layer its own endpoint identity before
  // the kInit event arrives.
  void SetSelf(EndpointId self) { self_ = self; }

 protected:
  // Helper for the common reaction to kInit / kView: record membership and
  // recompute the local rank.
  void NoteView(const Event& ev) {
    if (ev.view) {
      view_ = ev.view;
      nmembers_ = view_->nmembers();
      rank_ = view_->RankOf(self_);
    }
  }

  LayerId id_;
  EndpointId self_;
  Rank rank_ = kNoRank;
  int nmembers_ = 0;
  ViewRef view_;
};

// Process-wide execution counters, for the Table-2a software proxies when
// hardware counters are unavailable: how many layer handler invocations the
// normal path performed vs. how many fused rule applications the bypass did.
// Relaxed atomics: under the sharded runtime every worker thread bumps these.
struct DispatchStats {
  RelaxedCounter layer_invocations;  // Layer::Dn / Layer::Up calls by engines.
  RelaxedCounter bypass_rule_steps;  // CCP + update applications in routes.
};
DispatchStats& GlobalDispatchStats();

// Factory registry: each layer's .cc registers a creator so stacks can be
// assembled from LayerId lists (the paper's "names of the protocol layers").
using LayerFactory = std::unique_ptr<Layer> (*)(const LayerParams&);
void RegisterLayerFactory(LayerId id, LayerFactory factory);
std::unique_ptr<Layer> CreateLayer(LayerId id, const LayerParams& params);
bool LayerIsRegistered(LayerId id);

#define ENSEMBLE_REGISTER_LAYER(id, ClassName)                               \
  namespace {                                                                \
  const bool ens_layer_reg_##ClassName = [] {                                \
    ::ensemble::RegisterLayerFactory(                                        \
        id, +[](const ::ensemble::LayerParams& p)                            \
                -> std::unique_ptr<::ensemble::Layer> {                      \
          return std::make_unique<ClassName>(p);                             \
        });                                                                  \
    return true;                                                             \
  }();                                                                       \
  }

}  // namespace ensemble

#endif  // ENSEMBLE_SRC_STACK_LAYER_H_
