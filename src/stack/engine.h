// Stack execution engines: the paper's IMP and FUNC configurations (§4.2).
//
//   * ImperativeStack (IMP): "Ensemble has a central event scheduler.  It
//     instantiates each protocol layer individually, and hands events to the
//     layers as they come out of the scheduler."  Implemented with a
//     preallocated ring of pending (layer, direction, event) entries.
//   * FunctionalStack (FUNC): "no centralized event scheduler is used ...
//     The up events that come out of p and the down events that come out of q
//     are merged together to form the output events" — recursive composition
//     with per-call event-list merging, which is exactly why FUNC measures
//     slower than IMP in Table 1.
//
// Both engines present the same boundary: Down(ev) feeds the top layer; Up(ev)
// feeds the bottom layer; events escaping the bottom go to the down_out
// callback (the Transport), events escaping the top go to up_out (the
// application).

#ifndef ENSEMBLE_SRC_STACK_ENGINE_H_
#define ENSEMBLE_SRC_STACK_ENGINE_H_

#include <functional>
#include <memory>
#include <vector>

#include "src/stack/layer.h"

namespace ensemble {

class ProtocolStack {
 public:
  using OutFn = std::function<void(Event)>;

  virtual ~ProtocolStack() = default;

  // Event from the application entering the top layer.
  virtual void Down(Event ev) = 0;
  // Event from the transport entering the bottom layer.
  virtual void Up(Event ev) = 0;

  void set_up_out(OutFn fn) { up_out_ = std::move(fn); }
  void set_dn_out(OutFn fn) { dn_out_ = std::move(fn); }

  size_t depth() const { return layers_.size(); }
  Layer* layer(size_t i) { return layers_[i].get(); }
  const Layer* layer(size_t i) const { return layers_[i].get(); }
  Layer* FindLayer(LayerId id) {
    for (auto& l : layers_) {
      if (l->id() == id) {
        return l.get();
      }
    }
    return nullptr;
  }

  // Injects the initial view at the bottom (normally the first thing an
  // endpoint does after wiring the stack up).
  void Init(ViewRef view) { Up(Event::Init(std::move(view))); }

 protected:
  ProtocolStack(std::vector<std::unique_ptr<Layer>> layers, EndpointId self)
      : layers_(std::move(layers)) {
    for (auto& l : layers_) {
      l->SetSelf(self);
    }
  }

  void EmitUp(Event ev) {
    if (up_out_) {
      up_out_(std::move(ev));
    }
  }
  void EmitDn(Event ev) {
    if (dn_out_) {
      dn_out_(std::move(ev));
    }
  }

  std::vector<std::unique_ptr<Layer>> layers_;  // layers_[0] is the top.
  OutFn up_out_;
  OutFn dn_out_;
};

// IMP: central scheduler with a growable ring of queued events.
class ImperativeStack : public ProtocolStack {
 public:
  ImperativeStack(std::vector<std::unique_ptr<Layer>> layers, EndpointId self);

  void Down(Event ev) override;
  void Up(Event ev) override;

 private:
  struct Pending {
    int layer;  // Index of the layer the event is entering.
    Dir dir;
    Event ev;
  };

  class SchedulerSink;

  void Enqueue(int layer, Dir dir, Event ev);
  void RunScheduler();

  // Ring buffer of pending events; head_ == tail_ means empty.
  std::vector<Pending> ring_;
  size_t head_ = 0;
  size_t tail_ = 0;
  size_t count_ = 0;
  bool running_ = false;
};

// FUNC: recursive functional composition with event-list merging.
class FunctionalStack : public ProtocolStack {
 public:
  FunctionalStack(std::vector<std::unique_ptr<Layer>> layers, EndpointId self);

  void Down(Event ev) override;
  void Up(Event ev) override;

 private:
  struct EventLists {
    std::vector<Event> up;
    std::vector<Event> dn;
  };

  // Applies ev to layer i travelling down; escaped events accumulate in out.
  void DnAt(size_t i, Event ev, EventLists& out);
  // Applies ev to layer i travelling up (arriving from below).
  void UpAt(size_t i, Event ev, EventLists& out);
  void Flush(EventLists& out);
};

// Assembles layer instances from a LayerId list (top first).
std::vector<std::unique_ptr<Layer>> BuildLayers(const std::vector<LayerId>& ids,
                                                const LayerParams& params);

// Engine selector used by harnesses and benches.
enum class EngineKind { kImperative, kFunctional };
std::unique_ptr<ProtocolStack> BuildStack(EngineKind kind, const std::vector<LayerId>& ids,
                                          const LayerParams& params, EndpointId self);

// The two stack configurations measured in the paper.
// 10-layer (Table 1a / Fig. 6 / Table 2): virtually synchronous, totally
// ordered reliable multicast with flow control and fragmentation.
std::vector<LayerId> TenLayerStack();
// 4-layer (Table 1b): reliable vsync multicast, used for the HAND comparison.
std::vector<LayerId> FourLayerStack();

}  // namespace ensemble

#endif  // ENSEMBLE_SRC_STACK_ENGINE_H_
