// chat — totally ordered group chat over a hostile network.
//
// Four members chat concurrently over a network that loses, duplicates, and
// reorders packets.  The 10-layer stack's total-order layer guarantees every
// member sees the conversation in exactly the same order; the example prints
// each member's transcript and verifies they are identical.

#include <cstdio>

#include "src/app/harness.h"
#include "src/spec/monitors.h"

int main() {
  using namespace ensemble;

  HarnessConfig config;
  config.n = 4;
  config.net = NetworkConfig::Lossy(/*drop=*/0.10, /*dup=*/0.05, /*reorder=*/0.15,
                                    /*seed=*/2024);
  config.ep.mode = StackMode::kFunctional;
  config.ep.layers = TenLayerStack();
  config.ep.params.local_loopback = true;  // Chatters see their own lines.
  GroupHarness group(config);
  group.StartAll();

  const char* script[][2] = {
      {"0", "alice: anyone up for lunch?"},
      {"1", "bob: yes! the usual place?"},
      {"2", "carol: count me in"},
      {"0", "alice: 12:30 then"},
      {"3", "dave: wait for me"},
      {"1", "bob: hurry up dave"},
      {"2", "carol: ordering already"},
      {"3", "dave: there in 5"},
  };
  for (const auto& line : script) {
    group.CastFrom(line[0][0] - '0', line[1]);
    group.Run(Millis(3));
  }
  group.Run(Millis(500));

  std::printf("member 0's transcript:\n");
  for (const auto& msg : group.CastPayloads(0)) {
    std::printf("  %s\n", msg.c_str());
  }

  bool all_equal = true;
  for (int m = 1; m < group.n(); m++) {
    if (group.CastPayloads(m) != group.CastPayloads(0)) {
      all_equal = false;
    }
  }
  MonitorResult agreement = CheckTotalOrderAgreement(group);
  std::printf("\nall %d transcripts identical: %s\n", group.n(), all_equal ? "yes" : "NO");
  std::printf("total-order monitor: %s\n", agreement.ok ? "ok" : agreement.ToString().c_str());
  std::printf("network: %llu sent, %llu dropped, %llu duplicated\n",
              static_cast<unsigned long long>(group.network().stats().sent),
              static_cast<unsigned long long>(group.network().stats().dropped),
              static_cast<unsigned long long>(group.network().stats().duplicated));
  return all_equal && agreement.ok ? 0 : 1;
}
