// membership — failure detection, election, flush, and view change.
//
// Four members run the membership stack (suspect / elect / sync / intra over
// reliable transport).  Member 3 crashes mid-conversation; heartbeat timeout
// raises suspicion, the coordinator flushes the view and installs a new
// 3-member view, after which traffic continues among the survivors.

#include <cstdio>

#include "src/app/harness.h"

int main() {
  using namespace ensemble;

  HarnessConfig config;
  config.n = 4;
  config.net = NetworkConfig::Perfect();
  config.ep.mode = StackMode::kFunctional;
  config.ep.layers = {LayerId::kPartialAppl, LayerId::kIntra, LayerId::kElect,
                      LayerId::kSync,        LayerId::kSuspect, LayerId::kPt2pt,
                      LayerId::kMnak,        LayerId::kBottom};
  config.ep.params.heartbeat_interval = Millis(2);
  config.ep.params.suspect_max_idle = 4;
  config.ep.timer_interval = Millis(2);
  GroupHarness group(config);
  group.StartAll();

  group.CastFrom(0, "view-1 message");
  group.Run(Millis(10));

  std::printf("crashing member 3...\n");
  group.Crash(3);
  group.Run(Millis(200));  // Detection + flush + settle + new view.

  for (int m = 0; m < 3; m++) {
    const auto& views = group.views(m);
    std::printf("member %d saw %zu view change(s)", m, views.size());
    if (!views.empty()) {
      std::printf("; current view has %d members: %s", views.back()->nmembers(),
                  views.back()->ToString().c_str());
    }
    std::printf("\n");
  }

  // Life goes on in the new view.
  group.CastFrom(1, "view-2 message");
  group.Run(Millis(50));

  bool ok = true;
  for (int m = 0; m < 3; m++) {
    bool got = false;
    for (const auto& d : group.deliveries(m)) {
      if (d.payload == "view-2 message") {
        got = true;
      }
    }
    bool has_view = !group.views(m).empty() && group.views(m).back()->nmembers() == 3;
    std::printf("member %d: new view installed=%s, post-change traffic=%s\n", m,
                has_view ? "yes" : "NO", got || m == 1 ? "ok" : "MISSING");
    ok = ok && has_view && (got || m == 1);
  }
  return ok ? 0 : 1;
}
