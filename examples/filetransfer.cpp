// filetransfer — bulk data over a lossy network: fragmentation, flow
// control, and NAK-based recovery working together.
//
// Rank 0 multicasts a 256 KiB "file" as 4 KiB application records; the frag
// layer splits each record into MTU-sized pieces, mflow paces the sender,
// and mnak repairs the 8% packet loss.  The receivers reassemble and verify
// a checksum of the whole file.

#include <cstdio>
#include <cstring>

#include "src/app/harness.h"
#include "src/util/hash.h"

int main() {
  using namespace ensemble;

  constexpr size_t kFileSize = 256 * 1024;
  constexpr size_t kRecord = 4096;

  HarnessConfig config;
  config.n = 3;
  config.net = NetworkConfig::Lossy(/*drop=*/0.08, /*dup=*/0.02, /*reorder=*/0.10,
                                    /*seed=*/77);
  config.ep.mode = StackMode::kMachine;  // Unfragmented control traffic still
                                         // rides the bypass; big records fall
                                         // back to the normal path (CCP).
  config.ep.layers = TenLayerStack();
  config.ep.params.local_loopback = false;
  config.ep.params.frag_max = 1024;  // Simulated MTU.
  config.ep.params.mflow_window = 64;
  GroupHarness group(config);
  group.StartAll();

  // Build the "file" deterministically and send it in records.
  std::vector<uint8_t> file(kFileSize);
  for (size_t i = 0; i < kFileSize; i++) {
    file[i] = static_cast<uint8_t>((i * 131) ^ (i >> 8));
  }
  uint64_t file_hash = FnvHash(file.data(), file.size());

  for (size_t off = 0; off < kFileSize; off += kRecord) {
    Bytes record = Bytes::Copy(file.data() + off, kRecord);
    group.member(0).Cast(Iovec(std::move(record)));
    group.Run(Micros(800));
  }
  group.Run(Millis(1500));

  bool ok = true;
  for (int m = 1; m < group.n(); m++) {
    std::vector<uint8_t> rebuilt;
    rebuilt.reserve(kFileSize);
    for (const auto& d : group.deliveries(m)) {
      if (d.type == EventType::kDeliverCast) {
        rebuilt.insert(rebuilt.end(), d.payload.begin(), d.payload.end());
      }
    }
    uint64_t h = FnvHash(rebuilt.data(), rebuilt.size());
    bool match = rebuilt.size() == kFileSize && h == file_hash;
    std::printf("member %d: %zu bytes received, checksum %s\n", m, rebuilt.size(),
                match ? "OK" : "MISMATCH");
    ok = ok && match;
  }
  const auto& net = group.network().stats();
  std::printf("network: %llu packets, %llu dropped, %llu duplicated, %llu bytes\n",
              static_cast<unsigned long long>(net.sent),
              static_cast<unsigned long long>(net.dropped),
              static_cast<unsigned long long>(net.duplicated),
              static_cast<unsigned long long>(net.bytes_sent));
  std::printf("sender fast path: %llu bypass / %llu normal (fragmented records punt to the "
              "normal stack by CCP)\n",
              static_cast<unsigned long long>(group.member(0).stats().bypass_down),
              static_cast<unsigned long long>(group.member(0).stats().bypass_down_miss));
  return ok ? 0 : 1;
}
