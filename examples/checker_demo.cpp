// checker_demo — the §3 story end to end: specify, compose, check, and find
// the total-ordering bug.
//
//   1. Compose FifoProtocol participants over the lossy-network spec
//      (Figure 3) and check trace inclusion against the FIFO network spec
//      (Figure 2a) — it holds.
//   2. Check the correct token-total-order model against the abstract
//      total-order spec — it holds.
//   3. Check the *buggy* model (the `>=` delivery condition) — the checker
//      produces a concrete counterexample trace, reproducing "this exercise
//      located a subtle bug in the original implementation".
//   4. Run the real total_buggy C++ layer in a reordering network and show
//      the runtime monitor catching the same violation.

#include <cstdio>

#include "src/app/harness.h"
#include "src/spec/monitors.h"
#include "src/spec/netspecs.h"
#include "src/spec/protospecs.h"
#include "src/spec/refinement.h"

namespace ensemble {
namespace {

void CheckFifoComposition() {
  std::printf("1. FifoProtocol x2 over LossyNetwork vs (pairwise) FifoNetwork spec\n");
  std::vector<std::vector<std::pair<int, std::string>>> scripts = {
      {{1, "a1"}, {1, "a2"}, {1, "a3"}},
      {{0, "b1"}, {0, "b2"}},
  };
  auto impl = ComposeFifoSystem(scripts);
  PairwiseFifoNetworkSpec spec;

  RefinementOptions options;
  options.executions = 100;
  options.max_steps = 120;
  options.relabel = [](const std::string& label) -> std::string {
    // ASend(p,dst,m) -> Send(p,dst,m);  ADeliver(p,src,m) -> Deliver(src,p,m)
    if (label.rfind("ASend(", 0) == 0) {
      return "Send(" + label.substr(6);
    }
    if (label.rfind("ADeliver(", 0) == 0) {
      std::string arg = label.substr(9, label.size() - 10);
      size_t c1 = arg.find(',');
      size_t c2 = arg.find(',', c1 + 1);
      return "Deliver(" + arg.substr(c1 + 1, c2 - c1 - 1) + "," + arg.substr(0, c1) + "," +
             arg.substr(c2 + 1) + ")";
    }
    return label;
  };
  RefinementResult r = CheckTraceInclusion(*impl, spec, options);
  std::printf("   %zu executions, %zu external steps: %s\n\n", r.executions,
              r.total_trace_steps, r.holds ? "refinement HOLDS" : r.detail.c_str());
}

void CheckTotalOrderModels() {
  std::vector<std::vector<std::string>> scripts = {{"m1", "m2"}, {"m3", "m4"}, {"m5"}};

  std::printf("2. correct token-total-order model vs TotalOrder spec\n");
  {
    TokenTotalModel impl(scripts, /*buggy=*/false);
    TotalOrderSpec spec(3);
    RefinementOptions options;
    options.executions = 150;
    options.max_steps = 100;
    RefinementResult r = CheckTraceInclusion(impl, spec, options);
    std::printf("   %zu executions: %s\n\n", r.executions,
                r.holds ? "refinement HOLDS" : r.detail.c_str());
  }

  std::printf("3. BUGGY model (delivery condition '>=' instead of '==')\n");
  {
    TokenTotalModel impl(scripts, /*buggy=*/true);
    TotalOrderSpec spec(3);
    RefinementOptions options;
    options.executions = 300;
    options.max_steps = 100;
    RefinementResult r = CheckTraceInclusion(impl, spec, options);
    if (r.holds) {
      std::printf("   (no violation found — increase executions)\n\n");
      return;
    }
    std::printf("   BUG FOUND: %s\n   counterexample trace:\n", r.detail.c_str());
    for (size_t i = 0; i < r.counterexample.size(); i++) {
      std::printf("     %s%s\n", r.counterexample[i].c_str(),
                  i == r.failed_at ? "   <-- spec cannot follow" : "");
    }
    std::printf("\n");
  }
}

void CheckRealBuggyLayer() {
  std::printf("4. the real total_buggy C++ layer under a reordering network\n");
  HarnessConfig config;
  config.n = 3;
  config.net = NetworkConfig::Perfect();
  config.net.jitter = Micros(300);  // Reordering across senders.
  config.net.seed = 13;
  config.ep.mode = StackMode::kFunctional;
  config.ep.layers = {LayerId::kPartialAppl, LayerId::kTotalBuggy, LayerId::kLocal,
                      LayerId::kCollect,     LayerId::kFrag,       LayerId::kPt2ptw,
                      LayerId::kMflow,       LayerId::kPt2pt,      LayerId::kMnak,
                      LayerId::kBottom};
  config.ep.params.local_loopback = true;
  GroupHarness group(config);
  group.StartAll();
  std::vector<std::vector<std::string>> sent_by(3);
  for (int i = 0; i < 30; i++) {
    sent_by[0].push_back("x" + std::to_string(i));
    sent_by[1].push_back("y" + std::to_string(i));
    group.CastFrom(0, sent_by[0].back());
    group.CastFrom(1, sent_by[1].back());
    group.Run(Micros(150));
  }
  group.Run(Millis(300));
  // The '>=' skip makes delivered gseqs strictly increasing, so the bug
  // manifests as *silently lost* messages (atomicity violation), not as
  // pairwise order flips — the completeness monitor is the one that bites.
  MonitorResult complete = CheckReliableFifo(group, sent_by, /*include_self=*/true);
  MonitorResult agreement = CheckTotalOrderAgreement(group);
  if (complete.ok && agreement.ok) {
    std::printf("   (no violation in this run)\n");
  } else {
    std::printf("   MONITOR CAUGHT IT:\n   %s", complete.ToString().c_str());
    if (!agreement.ok) {
      std::printf("   %s", agreement.ToString().c_str());
    }
  }
}

}  // namespace
}  // namespace ensemble

int main() {
  ensemble::CheckFifoComposition();
  ensemble::CheckTotalOrderModels();
  ensemble::CheckRealBuggyLayer();
  return 0;
}
