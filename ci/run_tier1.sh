#!/usr/bin/env sh
# Tier-1 gate: configure, build, and run the full test suite.
# This is the exact sequence CI runs; run it locally before pushing.
#
#   --tsan     build a separate tree with -DENSEMBLE_TSAN=ON and run the
#              concurrency suite (MPSC ring + sharded runtime + observability
#              snapshot/trace, including the multi-worker stress test) under
#              ThreadSanitizer.
#   --notrace  build a separate tree with -DENSEMBLE_TRACE=OFF (ENS_TRACE
#              compiled out entirely) and run the full suite against it.
#   --nouring  build a separate tree with -DENSEMBLE_URING=OFF (the io_uring
#              backend compiled out to stubs) and run the full suite: proves
#              the mmsg fallback carries every uring-tagged configuration.
#   --shared   run the full suite with ENSEMBLE_INGRESS=shared, forcing every
#              kAuto network onto the SO_REUSEPORT shard-listener ingress:
#              proves the demux datapath carries the whole test matrix.
set -eu

cd "$(dirname "$0")/.."

if [ "${1:-}" = "--tsan" ]; then
  cmake -B build-tsan -S . -DENSEMBLE_TSAN=ON
  cmake --build build-tsan -j "$(nproc 2>/dev/null || echo 4)" --target ensemble_tests
  cd build-tsan
  # TSAN_OPTIONS makes any reported race fail the run even if tests pass.
  TSAN_OPTIONS="halt_on_error=0 exitcode=66" \
    ctest --output-on-failure -R 'MpscRing|ShardRuntime|GroupHarnessSharded|Obs'
  exit 0
fi

if [ "${1:-}" = "--nouring" ]; then
  cmake -B build-nouring -S . -DENSEMBLE_URING=OFF
  cmake --build build-nouring -j "$(nproc 2>/dev/null || echo 4)"
  cd build-nouring
  ctest --output-on-failure -j "$(nproc 2>/dev/null || echo 4)"
  exit 0
fi

if [ "${1:-}" = "--notrace" ]; then
  cmake -B build-notrace -S . -DENSEMBLE_TRACE=OFF
  cmake --build build-notrace -j "$(nproc 2>/dev/null || echo 4)"
  cd build-notrace
  ctest --output-on-failure -j "$(nproc 2>/dev/null || echo 4)"
  exit 0
fi

if [ "${1:-}" = "--shared" ]; then
  cmake -B build -S .
  cmake --build build -j "$(nproc 2>/dev/null || echo 4)"
  cd build
  ENSEMBLE_INGRESS=shared ctest --output-on-failure -j "$(nproc 2>/dev/null || echo 4)"
  exit 0
fi

cmake -B build -S .
cmake --build build -j "$(nproc 2>/dev/null || echo 4)"
cd build
ctest --output-on-failure -j "$(nproc 2>/dev/null || echo 4)"
# Scheduler smoke: a shrunk skew run that fails if work stealing stops
# moving endpoints (skips itself cleanly when the env has no UDP sockets).
# With sockets available it must also emit a parseable Chrome trace export.
rm -f TRACE_skew.json
./bench/bench_skew --smoke > skew_smoke.out 2>&1 || { cat skew_smoke.out; exit 1; }
cat skew_smoke.out
if ! grep -q "unavailable" skew_smoke.out; then
  test -s TRACE_skew.json
  python3 -c "import json; json.load(open('TRACE_skew.json'))" \
    && echo "TRACE_skew.json: valid JSON"
fi
# Same smoke over the shared-ingress datapath: stealing must still move
# endpoints when migrations are in-memory transfers, and both exports must
# stay parseable.
rm -f BENCH_skew.json TRACE_skew.json
./bench/bench_skew --smoke --ingress=shared > skew_shared.out 2>&1 \
  || { cat skew_shared.out; exit 1; }
cat skew_shared.out
if ! grep -q "unavailable" skew_shared.out; then
  test -s BENCH_skew.json
  python3 -c "import json; json.load(open('BENCH_skew.json'))" \
    && echo "BENCH_skew.json: valid JSON"
  test -s TRACE_skew.json
  python3 -c "import json; json.load(open('TRACE_skew.json'))" \
    && echo "TRACE_skew.json: valid JSON"
fi
