#!/usr/bin/env sh
# Tier-1 gate: configure, build, and run the full test suite.
# This is the exact sequence CI runs; run it locally before pushing.
#
#   --tsan   build a separate tree with -DENSEMBLE_TSAN=ON and run the
#            concurrency suite (MPSC ring + sharded runtime, including the
#            multi-worker stress test) under ThreadSanitizer.
set -eu

cd "$(dirname "$0")/.."

if [ "${1:-}" = "--tsan" ]; then
  cmake -B build-tsan -S . -DENSEMBLE_TSAN=ON
  cmake --build build-tsan -j "$(nproc 2>/dev/null || echo 4)" --target ensemble_tests
  cd build-tsan
  # TSAN_OPTIONS makes any reported race fail the run even if tests pass.
  TSAN_OPTIONS="halt_on_error=0 exitcode=66" \
    ctest --output-on-failure -R 'MpscRing|ShardRuntime|GroupHarnessSharded'
  exit 0
fi

cmake -B build -S .
cmake --build build -j "$(nproc 2>/dev/null || echo 4)"
cd build
ctest --output-on-failure -j "$(nproc 2>/dev/null || echo 4)"
# Scheduler smoke: a shrunk skew run that fails if work stealing stops
# moving endpoints (skips itself cleanly when the env has no UDP sockets).
./bench/bench_skew --smoke
