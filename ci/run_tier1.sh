#!/usr/bin/env sh
# Tier-1 gate: configure, build, and run the test suite.  This is the exact
# sequence CI runs; run it locally before pushing.
#
# One script, one leg matrix.  Every leg flows through the same
# configure/build/ctest/smoke pipeline below; the case statement only sets
# the per-leg knobs (build dir, cmake flags, environment, test selection,
# post-suite smoke benches), so adding a leg is one case arm.
#
#   (none)      full suite + skew scheduler smokes (per-endpoint and shared)
#   --tsan      separate tree, -DENSEMBLE_TSAN=ON: concurrency suite (MPSC
#               ring + sharded runtime + observability) under ThreadSanitizer
#   --notrace   separate tree, -DENSEMBLE_TRACE=OFF (ENS_TRACE compiled out)
#   --nouring   separate tree, -DENSEMBLE_URING=OFF (io_uring stubbed): the
#               mmsg fallback must carry every uring-tagged configuration
#   --shared    full suite with ENSEMBLE_INGRESS=shared: every kAuto network
#               on the SO_REUSEPORT shard-listener ingress
#   --autotune  cost-model/autotuner tests + bench_autotune --smoke: the
#               predict-before-measure gate plus strict validation of
#               BENCH_autotune.json and COSTMODEL.json
#   --overload  overload-control tests + bench_overload --smoke: the 10x
#               sustained-load gate (bounded memory, graceful p99, every
#               ladder rung firing) plus strict validation of
#               BENCH_overload.json and TRACE_overload.json
#   --scenario  scenario-engine tests + bench_scenario --smoke: bounded seed
#               sweep over every adversarial class, the thousand-group soak,
#               and the injected-bug oracle self-test; a failing seed prints
#               on stdout and leaves SCHEDULE_*/TRACE_* artifacts in build/
set -eu

cd "$(dirname "$0")/.."

JOBS="$(nproc 2>/dev/null || echo 4)"
LEG="${1:-default}"
LEG="${LEG#--}"

BUILD_DIR=build
CMAKE_FLAGS=""
BUILD_TARGET=""
CTEST_ARGS="-j $JOBS"
SMOKES=""

case "$LEG" in
  default)  SMOKES="skew skew_shared" ;;
  tsan)     BUILD_DIR=build-tsan; CMAKE_FLAGS="-DENSEMBLE_TSAN=ON"
            BUILD_TARGET="--target ensemble_tests"
            # Any reported race fails the run even if the tests pass.
            export TSAN_OPTIONS="halt_on_error=0 exitcode=66"
            CTEST_ARGS="-R MpscRing|ShardRuntime|GroupHarnessSharded|Obs" ;;
  notrace)  BUILD_DIR=build-notrace; CMAKE_FLAGS="-DENSEMBLE_TRACE=OFF" ;;
  nouring)  BUILD_DIR=build-nouring; CMAKE_FLAGS="-DENSEMBLE_URING=OFF" ;;
  shared)   export ENSEMBLE_INGRESS=shared ;;
  autotune) CTEST_ARGS="-R CostModel|Autotuner"; SMOKES="autotune" ;;
  overload) CTEST_ARGS="-R Overload|Watermark|SendWindow|LiveCounter|BufferPool"
            SMOKES="overload" ;;
  scenario) CTEST_ARGS="-R Scenario|SpanCheck|SimQueueReplay|OverloadLadder"
            SMOKES="scenario" ;;
  *) echo "unknown leg: $LEG" >&2; exit 2 ;;
esac

# Strict artifact check: non-empty and parseable.
json_check() {
  test -s "$1"
  python3 -c "import json,sys; json.load(open(sys.argv[1]))" "$1" \
    && echo "$1: valid JSON"
}

# Post-suite smoke benches.  Each one skips itself cleanly when the
# environment has no UDP sockets (the benches print "unavailable"); with
# sockets it must also emit parseable artifacts.
run_smoke() {
  case "$1" in
    skew)
      # Shrunk skew run: fails if work stealing stops moving endpoints, and
      # the Chrome trace export must stay loadable.
      rm -f TRACE_skew.json
      ./bench/bench_skew --smoke > skew_smoke.out 2>&1 || { cat skew_smoke.out; exit 1; }
      cat skew_smoke.out
      grep -q "unavailable" skew_smoke.out || json_check TRACE_skew.json
      ;;
    skew_shared)
      # Same smoke over the shared-ingress datapath: stealing must still move
      # endpoints when migrations are in-memory transfers.
      rm -f BENCH_skew.json TRACE_skew.json
      ./bench/bench_skew --smoke --ingress=shared > skew_shared.out 2>&1 \
        || { cat skew_shared.out; exit 1; }
      cat skew_shared.out
      if ! grep -q "unavailable" skew_shared.out; then
        json_check BENCH_skew.json
        json_check TRACE_skew.json
      fi
      ;;
    autotune)
      # Calibrate, predict every row before measuring it, and fail when the
      # single-core geomean prediction error exceeds the generous bound
      # (bench_autotune exits nonzero itself).
      rm -f BENCH_autotune.json COSTMODEL.json
      ./bench/bench_autotune --smoke > autotune_smoke.out 2>&1 \
        || { cat autotune_smoke.out; exit 1; }
      cat autotune_smoke.out
      if ! grep -q "unavailable" autotune_smoke.out; then
        json_check BENCH_autotune.json
        json_check COSTMODEL.json
      fi
      ;;
    overload)
      # 10x sustained offered load: bench_overload exits nonzero unless the
      # manager bounds memory under the byte watermark, keeps delivered p99
      # within 5x of the 1x baseline, and fires every ladder rung (channel
      # backend — no sockets needed, so this never skips).
      rm -f BENCH_overload.json TRACE_overload.json
      ./bench/bench_overload --smoke > overload_smoke.out 2>&1 \
        || { cat overload_smoke.out; exit 1; }
      cat overload_smoke.out
      json_check BENCH_overload.json
      json_check TRACE_overload.json
      ;;
    scenario)
      # Seeded adversarial gate: bounded sweep over every scenario class, the
      # thousand-group soak, and the injected-bug self-test (bench_scenario
      # exits nonzero on any red run or if the planted bugs go uncaught).  A
      # failure prints the reproducing seed and leaves SCHEDULE_* / TRACE_*
      # artifacts here for upload (channel + sim planes — no sockets needed).
      rm -f BENCH_scenario.json SCHEDULE_*.txt TRACE_scenario_*.json
      ./bench/bench_scenario --smoke > scenario_smoke.out 2>&1 \
        || { cat scenario_smoke.out; exit 1; }
      cat scenario_smoke.out
      json_check BENCH_scenario.json
      ;;
  esac
}

cmake -B "$BUILD_DIR" -S . $CMAKE_FLAGS
cmake --build "$BUILD_DIR" -j "$JOBS" $BUILD_TARGET
cd "$BUILD_DIR"
ctest --output-on-failure $CTEST_ARGS
for smoke in $SMOKES; do
  run_smoke "$smoke"
done
