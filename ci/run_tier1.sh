#!/usr/bin/env sh
# Tier-1 gate: configure, build, and run the full test suite.
# This is the exact sequence CI runs; run it locally before pushing.
set -eu

cd "$(dirname "$0")/.."

cmake -B build -S .
cmake --build build -j "$(nproc 2>/dev/null || echo 4)"
cd build
ctest --output-on-failure -j "$(nproc 2>/dev/null || echo 4)"
