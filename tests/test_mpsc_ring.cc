// MpscRing properties: FIFO per producer, bounded backpressure, no lost or
// duplicated values under real multi-thread contention.  All randomness is
// seeded (src/util/rng.h) so any failure reproduces.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "src/util/mpsc_ring.h"
#include "src/util/rng.h"

namespace ensemble {
namespace {

TEST(MpscRingTest, SingleProducerFifo) {
  MpscRing<int> ring(8);
  for (int i = 0; i < 8; i++) {
    EXPECT_TRUE(ring.TryPush(int(i)));
  }
  int out = -1;
  for (int i = 0; i < 8; i++) {
    ASSERT_TRUE(ring.TryPop(&out));
    EXPECT_EQ(out, i);
  }
  EXPECT_FALSE(ring.TryPop(&out));
  EXPECT_TRUE(ring.Empty());
}

TEST(MpscRingTest, SizeApproxTracksOccupancy) {
  MpscRing<int> ring(8);
  EXPECT_EQ(ring.SizeApprox(), 0u);
  for (int i = 0; i < 5; i++) {
    ASSERT_TRUE(ring.TryPush(int(i)));
    EXPECT_EQ(ring.SizeApprox(), static_cast<size_t>(i + 1));
  }
  int out = -1;
  for (int i = 0; i < 3; i++) {
    ASSERT_TRUE(ring.TryPop(&out));
  }
  EXPECT_EQ(ring.SizeApprox(), 2u);
  // Stays exact across wrap-around (head/tail keep counting past capacity).
  for (int round = 0; round < 4; round++) {
    for (int i = 0; i < 6; i++) {
      ASSERT_TRUE(ring.TryPush(int(i)));
    }
    for (int i = 0; i < 6; i++) {
      ASSERT_TRUE(ring.TryPop(&out));
    }
    EXPECT_EQ(ring.SizeApprox(), 2u);
  }
}

TEST(MpscRingTest, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(MpscRing<int>(1).capacity(), 2u);
  EXPECT_EQ(MpscRing<int>(5).capacity(), 8u);
  EXPECT_EQ(MpscRing<int>(64).capacity(), 64u);
}

TEST(MpscRingTest, FullRingRejectsPushAndLeavesValueIntact) {
  MpscRing<std::string> ring(4);
  for (int i = 0; i < 4; i++) {
    ASSERT_TRUE(ring.TryPush(std::string("v") + std::to_string(i)));
  }
  std::string pending = "backpressured";
  EXPECT_FALSE(ring.TryPush(std::move(pending)));
  EXPECT_EQ(pending, "backpressured");  // Failed push must not consume.
  EXPECT_GE(ring.stats().full_fails.value(), 1u);

  // Popping one slot makes the same object pushable.
  std::string out;
  ASSERT_TRUE(ring.TryPop(&out));
  EXPECT_EQ(out, "v0");
  EXPECT_TRUE(ring.TryPush(std::move(pending)));
}

TEST(MpscRingTest, WrapAroundKeepsFifo) {
  MpscRing<uint64_t> ring(4);
  uint64_t next_push = 0, next_pop = 0;
  Rng rng(0xFEEDull);
  for (int step = 0; step < 10000; step++) {
    if (rng.Chance(0.55)) {
      if (ring.TryPush(uint64_t(next_push))) {
        next_push++;
      }
    } else {
      uint64_t out;
      if (ring.TryPop(&out)) {
        ASSERT_EQ(out, next_pop);
        next_pop++;
      }
    }
  }
  EXPECT_GT(next_pop, 1000u);  // The mix actually cycled the ring many times.
}

// Multi-producer property: P producer threads each push a tagged ascending
// sequence through a deliberately tiny ring while one consumer drains.
// Checks: per-producer FIFO, nothing lost, nothing duplicated.
TEST(MpscRingTest, MultiProducerFifoPerProducerNoLossNoDup) {
  constexpr int kProducers = 4;
  constexpr uint64_t kPerProducer = 20000;
  MpscRing<uint64_t> ring(64);  // Small on purpose: force wrap + contention.

  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; p++) {
    producers.emplace_back([&ring, p] {
      Rng rng(0xABCD + static_cast<uint64_t>(p));
      for (uint64_t i = 0; i < kPerProducer; i++) {
        uint64_t tagged = (static_cast<uint64_t>(p) << 32) | i;
        while (!ring.TryPush(uint64_t(tagged))) {
          std::this_thread::yield();
        }
        if (rng.Chance(0.01)) {
          std::this_thread::yield();  // Jitter the interleaving.
        }
      }
    });
  }

  uint64_t next_expected[kProducers] = {0, 0, 0, 0};
  uint64_t total = 0;
  while (total < kProducers * kPerProducer) {
    uint64_t v;
    if (!ring.TryPop(&v)) {
      std::this_thread::yield();
      continue;
    }
    int p = static_cast<int>(v >> 32);
    uint64_t seq = v & 0xFFFFFFFFull;
    ASSERT_LT(p, kProducers);
    ASSERT_EQ(seq, next_expected[p]) << "producer " << p << " order broken";
    next_expected[p]++;
    total++;
  }
  for (auto& t : producers) {
    t.join();
  }
  uint64_t dummy;
  EXPECT_FALSE(ring.TryPop(&dummy));
  for (int p = 0; p < kProducers; p++) {
    EXPECT_EQ(next_expected[p], kPerProducer);
  }
  EXPECT_EQ(ring.stats().pushed.value(), kProducers * kPerProducer);
  EXPECT_EQ(ring.stats().popped.value(), kProducers * kPerProducer);
}

// Sum-conservation stress on a 2-slot ring: the tightest possible ring still
// transfers every value exactly once.
TEST(MpscRingTest, TinyRingConservesSum) {
  MpscRing<uint64_t> ring(2);
  constexpr int kProducers = 3;
  constexpr uint64_t kPerProducer = 5000;
  std::atomic<uint64_t> pushed_sum{0};

  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; p++) {
    producers.emplace_back([&, p] {
      Rng rng(0x5EED + static_cast<uint64_t>(p));
      uint64_t local = 0;
      for (uint64_t i = 0; i < kPerProducer; i++) {
        uint64_t v = rng.Below(1u << 20) + 1;
        local += v;
        while (!ring.TryPush(uint64_t(v))) {
          std::this_thread::yield();
        }
      }
      pushed_sum.fetch_add(local, std::memory_order_relaxed);
    });
  }

  uint64_t popped_sum = 0, popped = 0;
  while (popped < kProducers * kPerProducer) {
    uint64_t v;
    if (ring.TryPop(&v)) {
      popped_sum += v;
      popped++;
    } else {
      std::this_thread::yield();
    }
  }
  for (auto& t : producers) {
    t.join();
  }
  EXPECT_EQ(popped_sum, pushed_sum.load());
}

}  // namespace
}  // namespace ensemble
