// Unit tests: the IMP and FUNC execution engines, exercised with synthetic
// layers so the engine semantics (dispatch order, re-entrancy, bounce and
// split trace shapes) are pinned down independent of real protocols.

#include <gtest/gtest.h>

#include <algorithm>

#include "src/stack/engine.h"

namespace ensemble {
namespace {

// Tags passing events with its name so tests can observe traversal order.
class TraceLayer : public Layer {
 public:
  TraceLayer(LayerId id, std::string tag, std::vector<std::string>* log)
      : Layer(id), tag_(std::move(tag)), log_(log) {}

  void Dn(Event ev, EventSink& sink) override {
    log_->push_back(tag_ + ".dn");
    sink.PassDn(std::move(ev));
  }
  void Up(Event ev, EventSink& sink) override {
    log_->push_back(tag_ + ".up");
    sink.PassUp(std::move(ev));
  }

 private:
  std::string tag_;
  std::vector<std::string>* log_;
};

// Bounces every down-going cast back up as a delivery (in addition to
// passing it on) — the paper's "bouncing events" shape.
class BounceLayer : public Layer {
 public:
  explicit BounceLayer(LayerId id) : Layer(id) {}
  void Dn(Event ev, EventSink& sink) override {
    if (ev.type == EventType::kCast) {
      sink.PassUp(Event::DeliverCast(0, ev.payload));
    }
    sink.PassDn(std::move(ev));
  }
  void Up(Event ev, EventSink& sink) override { sink.PassUp(std::move(ev)); }
};

// Splits every down-going cast into `n` copies — "trace splitting".
class SplitLayer : public Layer {
 public:
  SplitLayer(LayerId id, int n) : Layer(id), n_(n) {}
  void Dn(Event ev, EventSink& sink) override {
    if (ev.type == EventType::kCast) {
      for (int i = 0; i < n_; i++) {
        Event copy;
        copy.type = ev.type;
        copy.payload = ev.payload;
        sink.PassDn(std::move(copy));
      }
      return;
    }
    sink.PassDn(std::move(ev));
  }
  void Up(Event ev, EventSink& sink) override { sink.PassUp(std::move(ev)); }

 private:
  int n_;
};

template <typename StackT>
struct EngineFixture {
  std::vector<std::string> log;
  std::vector<Event> dn_out;
  std::vector<Event> up_out;
  std::unique_ptr<StackT> stack;

  explicit EngineFixture(std::vector<std::unique_ptr<Layer>> layers) {
    stack = std::make_unique<StackT>(std::move(layers), EndpointId{1});
    stack->set_dn_out([this](Event ev) { dn_out.push_back(std::move(ev)); });
    stack->set_up_out([this](Event ev) { up_out.push_back(std::move(ev)); });
  }
};

template <typename StackT>
void TestLinearTraversalOrder() {
  std::vector<std::string> log;
  std::vector<std::unique_ptr<Layer>> layers;
  layers.push_back(std::make_unique<TraceLayer>(LayerId::kTestLinear, "a", &log));
  layers.push_back(std::make_unique<TraceLayer>(LayerId::kTestBounce, "b", &log));
  layers.push_back(std::make_unique<TraceLayer>(LayerId::kTestSplit, "c", &log));
  EngineFixture<StackT> f(std::move(layers));
  f.log = {};

  f.stack->Down(Event::Cast(Iovec()));
  // Top -> bottom.
  std::vector<std::string> down_order(log.begin(), log.end());
  EXPECT_EQ(down_order, (std::vector<std::string>{"a.dn", "b.dn", "c.dn"}));
  EXPECT_EQ(f.dn_out.size(), 1u);

  log.clear();
  f.stack->Up(Event::DeliverCast(0, Iovec()));
  EXPECT_EQ(log, (std::vector<std::string>{"c.up", "b.up", "a.up"}));
  EXPECT_EQ(f.up_out.size(), 1u);
}

TEST(ImperativeEngineTest, LinearTraversalOrder) {
  TestLinearTraversalOrder<ImperativeStack>();
}
TEST(FunctionalEngineTest, LinearTraversalOrder) {
  TestLinearTraversalOrder<FunctionalStack>();
}

template <typename StackT>
void TestBounceReachesAppAndWire() {
  std::vector<std::string> log;
  std::vector<std::unique_ptr<Layer>> layers;
  layers.push_back(std::make_unique<TraceLayer>(LayerId::kTestLinear, "top", &log));
  layers.push_back(std::make_unique<BounceLayer>(LayerId::kTestBounce));
  layers.push_back(std::make_unique<TraceLayer>(LayerId::kTestSplit, "bot", &log));
  EngineFixture<StackT> f(std::move(layers));

  f.stack->Down(Event::Cast(Iovec(Bytes::CopyString("m"))));
  // The cast reaches the wire AND a bounced delivery reaches the app, having
  // traversed the layer above the bouncer.
  ASSERT_EQ(f.dn_out.size(), 1u);
  ASSERT_EQ(f.up_out.size(), 1u);
  EXPECT_EQ(f.up_out[0].type, EventType::kDeliverCast);
  EXPECT_NE(std::find(log.begin(), log.end(), "top.up"), log.end());
}

TEST(ImperativeEngineTest, BounceShape) { TestBounceReachesAppAndWire<ImperativeStack>(); }
TEST(FunctionalEngineTest, BounceShape) { TestBounceReachesAppAndWire<FunctionalStack>(); }

template <typename StackT>
void TestSplitShape() {
  std::vector<std::string> log;
  std::vector<std::unique_ptr<Layer>> layers;
  layers.push_back(std::make_unique<SplitLayer>(LayerId::kTestSplit, 3));
  layers.push_back(std::make_unique<TraceLayer>(LayerId::kTestLinear, "below", &log));
  EngineFixture<StackT> f(std::move(layers));

  f.stack->Down(Event::Cast(Iovec()));
  EXPECT_EQ(f.dn_out.size(), 3u);
  EXPECT_EQ(log.size(), 3u);  // Each copy traversed the lower layer.
}

TEST(ImperativeEngineTest, SplitShape) { TestSplitShape<ImperativeStack>(); }
TEST(FunctionalEngineTest, SplitShape) { TestSplitShape<FunctionalStack>(); }

TEST(ImperativeEngineTest, RingGrowsUnderEventStorm) {
  // A splitter with a huge fanout overflows the initial ring; the ring must
  // grow without losing or reordering events.
  std::vector<std::string> log;
  std::vector<std::unique_ptr<Layer>> layers;
  layers.push_back(std::make_unique<SplitLayer>(LayerId::kTestSplit, 500));
  EngineFixture<ImperativeStack> f(std::move(layers));
  f.stack->Down(Event::Cast(Iovec()));
  EXPECT_EQ(f.dn_out.size(), 500u);
}

template <typename StackT>
void TestReentrantDownFromUpHandler() {
  // A layer that, on delivery, immediately sends a response downward — the
  // send-after-deliver pattern; engines must handle re-entrant emission.
  class ResponderLayer : public Layer {
   public:
    explicit ResponderLayer(LayerId id) : Layer(id) {}
    void Dn(Event ev, EventSink& sink) override { sink.PassDn(std::move(ev)); }
    void Up(Event ev, EventSink& sink) override {
      sink.PassDn(Event::Cast(Iovec(Bytes::CopyString("response"))));
      sink.PassUp(std::move(ev));
    }
  };
  std::vector<std::unique_ptr<Layer>> layers;
  layers.push_back(std::make_unique<ResponderLayer>(LayerId::kTestBounce));
  EngineFixture<StackT> f(std::move(layers));

  f.stack->Up(Event::DeliverCast(0, Iovec()));
  ASSERT_EQ(f.up_out.size(), 1u);
  ASSERT_EQ(f.dn_out.size(), 1u);
  EXPECT_EQ(f.dn_out[0].payload.Flatten().view(), "response");
}

TEST(ImperativeEngineTest, ReentrantEmission) {
  TestReentrantDownFromUpHandler<ImperativeStack>();
}
TEST(FunctionalEngineTest, ReentrantEmission) {
  TestReentrantDownFromUpHandler<FunctionalStack>();
}

TEST(EngineParityTest, BothEnginesProduceSameBoundaryEvents) {
  // The two engines must be observationally equivalent on the real 10-layer
  // stack (scheduling differs; boundary traffic must not).
  for (int msgs = 1; msgs <= 8; msgs++) {
    LayerParams params;
    params.local_loopback = true;
    auto imp = BuildStack(EngineKind::kImperative, TenLayerStack(), params, EndpointId{1});
    auto fun = BuildStack(EngineKind::kFunctional, TenLayerStack(), params, EndpointId{1});
    auto view = std::make_shared<View>();
    view->vid = ViewId{0, 1};
    view->members = {EndpointId{1}, EndpointId{2}};

    // Relative order within each direction must agree (the engines may
    // interleave the two directions differently: FIFO scheduler vs DFS).
    std::vector<std::string> imp_dn, imp_up, fun_dn, fun_up;
    imp->set_dn_out([&](Event ev) { imp_dn.push_back(ev.ToString()); });
    imp->set_up_out([&](Event ev) { imp_up.push_back(ev.ToString()); });
    fun->set_dn_out([&](Event ev) { fun_dn.push_back(ev.ToString()); });
    fun->set_up_out([&](Event ev) { fun_up.push_back(ev.ToString()); });
    imp->Init(view);
    fun->Init(view);
    for (int i = 0; i < msgs; i++) {
      Iovec payload(Bytes::CopyString("m" + std::to_string(i)));
      imp->Down(Event::Cast(payload));
      fun->Down(Event::Cast(payload));
    }
    EXPECT_EQ(imp_dn, fun_dn) << "dn diverged at msgs=" << msgs;
    EXPECT_EQ(imp_up, fun_up) << "up diverged at msgs=" << msgs;
  }
}

TEST(StackShapesTest, CanonicalStacksAreWellFormed) {
  EXPECT_EQ(TenLayerStack().size(), 10u);
  EXPECT_EQ(FourLayerStack().size(), 4u);
  EXPECT_EQ(TenLayerStack().back(), LayerId::kBottom);
  EXPECT_EQ(FourLayerStack().back(), LayerId::kBottom);
  for (LayerId id : TenLayerStack()) {
    EXPECT_TRUE(LayerIsRegistered(id)) << LayerIdName(id);
  }
}

TEST(StackTest, FindLayerLocatesById) {
  LayerParams params;
  auto stack = BuildStack(EngineKind::kFunctional, TenLayerStack(), params, EndpointId{1});
  EXPECT_NE(stack->FindLayer(LayerId::kMnak), nullptr);
  EXPECT_EQ(stack->FindLayer(LayerId::kSuspect), nullptr);
  EXPECT_EQ(stack->depth(), 10u);
  EXPECT_EQ(stack->layer(9)->id(), LayerId::kBottom);
}

}  // namespace
}  // namespace ensemble
