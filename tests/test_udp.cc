// Integration tests: real-socket UDP loopback behind the Network interface.

#include <gtest/gtest.h>

#include "src/app/endpoint.h"
#include "src/net/udp.h"

namespace ensemble {
namespace {

bool UdpAvailable() {
  UdpNetwork probe;
  probe.Attach(EndpointId{1}, [](const Packet&) {});
  return probe.ok();
}

TEST(UdpNetworkTest, RawSendReceive) {
  if (!UdpAvailable()) {
    GTEST_SKIP() << "no UDP sockets in this environment";
  }
  UdpNetwork net;
  std::vector<std::pair<uint64_t, std::string>> received;
  net.Attach(EndpointId{1}, [&](const Packet& p) {
    received.push_back({p.src.id, p.datagram.ToString()});
  });
  net.Attach(EndpointId{2}, [&](const Packet& p) {
    received.push_back({p.src.id, p.datagram.ToString()});
  });
  ASSERT_TRUE(net.ok());
  EXPECT_NE(net.PortOf(EndpointId{1}), 0);
  EXPECT_NE(net.PortOf(EndpointId{1}), net.PortOf(EndpointId{2}));

  net.Send(EndpointId{1}, EndpointId{2}, Iovec(Bytes::CopyString("over-the-kernel")));
  net.PollFor(Millis(50));
  ASSERT_EQ(received.size(), 1u);
  EXPECT_EQ(received[0].first, 1u);  // Source attributed via port map.
  EXPECT_EQ(received[0].second, "over-the-kernel");
}

TEST(UdpNetworkTest, ScatterGatherSendIsReassembledByKernel) {
  if (!UdpAvailable()) {
    GTEST_SKIP() << "no UDP sockets in this environment";
  }
  UdpNetwork net;
  std::string got;
  net.Attach(EndpointId{1}, [](const Packet&) {});
  net.Attach(EndpointId{2}, [&](const Packet& p) { got = p.datagram.ToString(); });
  Iovec gather;
  gather.Append(Bytes::CopyString("part1-"));
  gather.Append(Bytes::CopyString("part2-"));
  gather.Append(Bytes::CopyString("part3"));
  net.Send(EndpointId{1}, EndpointId{2}, gather);
  net.PollFor(Millis(50));
  EXPECT_EQ(got, "part1-part2-part3");  // One datagram, gathered by sendmsg.
}

TEST(UdpNetworkTest, TimersFireFromPoll) {
  if (!UdpAvailable()) {
    GTEST_SKIP() << "no UDP sockets in this environment";
  }
  UdpNetwork net;
  net.Attach(EndpointId{1}, [](const Packet&) {});
  int fired = 0;
  net.ScheduleTimer(Millis(1), [&] { fired++; });
  net.ScheduleTimer(Seconds(60), [&] { fired += 100; });  // Not yet.
  net.PollFor(Millis(30));
  EXPECT_EQ(fired, 1);
}

TEST(UdpGroupTest, MachGroupOverRealSockets) {
  if (!UdpAvailable()) {
    GTEST_SKIP() << "no UDP sockets in this environment";
  }
  // The same GroupEndpoint that runs on the simulator runs over the kernel.
  UdpNetwork net;
  EndpointConfig config;
  config.mode = StackMode::kMachine;
  config.layers = TenLayerStack();
  config.params.local_loopback = false;
  config.timer_interval = Millis(2);

  GroupEndpoint a(EndpointId{1}, &net, config);
  GroupEndpoint b(EndpointId{2}, &net, config);
  std::vector<std::string> delivered;
  b.OnDeliver([&](const Event& ev) { delivered.push_back(ev.payload.Flatten().ToString()); });

  auto view = std::make_shared<View>();
  view->vid = ViewId{0, 1};
  view->members = {EndpointId{1}, EndpointId{2}};
  a.Start(view);
  b.Start(view);

  for (int i = 0; i < 10; i++) {
    a.Cast(Iovec(Bytes::CopyString("udp-" + std::to_string(i))));
    net.PollFor(Millis(2));
  }
  net.PollFor(Millis(100));

  ASSERT_EQ(delivered.size(), 10u);
  EXPECT_EQ(delivered[0], "udp-0");
  EXPECT_EQ(delivered[9], "udp-9");
  EXPECT_GT(a.stats().bypass_down, 0u);
  EXPECT_GT(b.stats().bypass_up, 0u);
}

TEST(UdpGroupTest, Pt2ptSendsOverRealSockets) {
  if (!UdpAvailable()) {
    GTEST_SKIP() << "no UDP sockets in this environment";
  }
  UdpNetwork net;
  EndpointConfig config;
  config.mode = StackMode::kFunctional;
  config.layers = FourLayerStack();
  config.timer_interval = Millis(2);
  GroupEndpoint a(EndpointId{1}, &net, config);
  GroupEndpoint b(EndpointId{2}, &net, config);
  std::string got;
  b.OnDeliver([&](const Event& ev) { got = ev.payload.Flatten().ToString(); });
  auto view = std::make_shared<View>();
  view->vid = ViewId{0, 1};
  view->members = {EndpointId{1}, EndpointId{2}};
  a.Start(view);
  b.Start(view);
  a.Send(1, Iovec(Bytes::CopyString("direct")));
  net.PollFor(Millis(50));
  EXPECT_EQ(got, "direct");
}

}  // namespace
}  // namespace ensemble
