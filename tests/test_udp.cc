// Integration tests: real-socket UDP loopback behind the Network interface.

#include <gtest/gtest.h>

#include "src/app/endpoint.h"
#include "src/app/harness.h"
#include "src/marshal/wire_tags.h"
#include "src/net/udp.h"
#include "src/net/udp_uring.h"
#include "src/trans/transport.h"

namespace ensemble {
namespace {

bool UdpAvailable() {
  UdpNetwork probe;
  probe.Attach(EndpointId{1}, [](const Packet&) {});
  return probe.ok();
}

// True when the io_uring backend can actually run here (kernel support and
// not compiled out).  Tests that need the real rings skip otherwise; the
// fallback test runs everywhere.
bool UringAvailable() { return UdpAvailable() && UringEngine::Available(); }

TEST(UdpNetworkTest, RawSendReceive) {
  if (!UdpAvailable()) {
    GTEST_SKIP() << "no UDP sockets in this environment";
  }
  UdpNetwork net;
  // This test asserts per-socket semantics (distinct ports per endpoint), so
  // pin the ingress mode against the ENSEMBLE_INGRESS=shared CI leg.
  NetBackendConfig cfg;
  cfg.ingress = IngressMode::kPerEndpoint;
  net.set_backend_config(cfg);
  std::vector<std::pair<uint64_t, std::string>> received;
  net.Attach(EndpointId{1}, [&](const Packet& p) {
    received.push_back({p.src.id, p.datagram.ToString()});
  });
  net.Attach(EndpointId{2}, [&](const Packet& p) {
    received.push_back({p.src.id, p.datagram.ToString()});
  });
  ASSERT_TRUE(net.ok());
  EXPECT_NE(net.PortOf(EndpointId{1}), 0);
  EXPECT_NE(net.PortOf(EndpointId{1}), net.PortOf(EndpointId{2}));

  net.Send(EndpointId{1}, EndpointId{2}, Iovec(Bytes::CopyString("over-the-kernel")));
  net.PollFor(Millis(50));
  ASSERT_EQ(received.size(), 1u);
  EXPECT_EQ(received[0].first, 1u);  // Source attributed via port map.
  EXPECT_EQ(received[0].second, "over-the-kernel");
}

TEST(UdpNetworkTest, ScatterGatherSendIsReassembledByKernel) {
  if (!UdpAvailable()) {
    GTEST_SKIP() << "no UDP sockets in this environment";
  }
  UdpNetwork net;
  std::string got;
  net.Attach(EndpointId{1}, [](const Packet&) {});
  net.Attach(EndpointId{2}, [&](const Packet& p) { got = p.datagram.ToString(); });
  Iovec gather;
  gather.Append(Bytes::CopyString("part1-"));
  gather.Append(Bytes::CopyString("part2-"));
  gather.Append(Bytes::CopyString("part3"));
  net.Send(EndpointId{1}, EndpointId{2}, gather);
  net.PollFor(Millis(50));
  EXPECT_EQ(got, "part1-part2-part3");  // One datagram, gathered by sendmsg.
}

TEST(UdpNetworkTest, TimersFireFromPoll) {
  if (!UdpAvailable()) {
    GTEST_SKIP() << "no UDP sockets in this environment";
  }
  UdpNetwork net;
  net.Attach(EndpointId{1}, [](const Packet&) {});
  int fired = 0;
  net.ScheduleTimer(Millis(1), [&] { fired++; });
  net.ScheduleTimer(Seconds(60), [&] { fired += 100; });  // Not yet.
  net.PollFor(Millis(30));
  EXPECT_EQ(fired, 1);
}

TEST(UdpNetworkTest, TimerHeapFiresInDueOrder) {
  if (!UdpAvailable()) {
    GTEST_SKIP() << "no UDP sockets in this environment";
  }
  UdpNetwork net;
  net.Attach(EndpointId{1}, [](const Packet&) {});
  std::vector<int> order;
  // Scheduled out of order; the min-heap must fire them by due time, with
  // FIFO tiebreak for equal deadlines.
  net.ScheduleTimer(Millis(9), [&] { order.push_back(9); });
  net.ScheduleTimer(Millis(1), [&] { order.push_back(1); });
  net.ScheduleTimer(Millis(5), [&] { order.push_back(5); });
  net.ScheduleTimer(Millis(5), [&] { order.push_back(6); });  // Same due: after 5.
  net.ScheduleTimer(Millis(3), [&] { order.push_back(3); });
  net.PollFor(Millis(40));
  EXPECT_EQ(order, (std::vector<int>{1, 3, 5, 6, 9}));
}

TEST(UdpNetworkTest, BatchedSendsStageUntilFlush) {
  if (!UdpAvailable()) {
    GTEST_SKIP() << "no UDP sockets in this environment";
  }
  UdpNetwork net;
  net.set_backend_config(NetBackendConfig::Batched(64));
  std::vector<std::string> received;
  net.Attach(EndpointId{1}, [](const Packet&) {});
  net.Attach(EndpointId{2}, [&](const Packet& p) {
    received.push_back(p.datagram.ToString());
  });
  for (int i = 0; i < 5; i++) {
    net.Send(EndpointId{1}, EndpointId{2}, Iovec(Bytes::CopyString("b-" + std::to_string(i))));
  }
  // Below the 64-datagram threshold: nothing on the wire yet.
  EXPECT_EQ(net.stats().sent, 0u);
  net.Flush();
  EXPECT_EQ(net.stats().sent, 5u);
  net.PollFor(Millis(50));
  ASSERT_EQ(received.size(), 5u);
  for (int i = 0; i < 5; i++) {
    EXPECT_EQ(received[static_cast<size_t>(i)], "b-" + std::to_string(i));
  }
#if defined(__linux__)
  EXPECT_EQ(net.stats().send_syscalls, 1u);  // One sendmmsg for all five.
#endif
  EXPECT_EQ(net.stats().batched_datagrams, 5u);
  EXPECT_EQ(net.stats().max_send_batch, 5u);
}

TEST(UdpNetworkTest, BatchedRingAutoFlushesAtThreshold) {
  if (!UdpAvailable()) {
    GTEST_SKIP() << "no UDP sockets in this environment";
  }
  UdpNetwork net;
  net.set_backend_config(NetBackendConfig::Batched(4));
  size_t got = 0;
  net.Attach(EndpointId{1}, [](const Packet&) {});
  net.Attach(EndpointId{2}, [&](const Packet&) { got++; });
  for (int i = 0; i < 4; i++) {
    net.Send(EndpointId{1}, EndpointId{2}, Iovec(Bytes::CopyString("x")));
  }
  EXPECT_EQ(net.stats().sent, 4u);  // Ring hit the threshold: already flushed.
  net.PollFor(Millis(50));
  EXPECT_EQ(got, 4u);
}

TEST(UdpNetworkTest, PooledReceiveReusesChunksAndPreservesPayload) {
  if (!UdpAvailable()) {
    GTEST_SKIP() << "no UDP sockets in this environment";
  }
  UdpNetwork net;
  net.set_backend_config(NetBackendConfig::Batched(8));
  std::vector<std::string> received;
  net.Attach(EndpointId{1}, [](const Packet&) {});
  net.Attach(EndpointId{2}, [&](const Packet& p) {
    received.push_back(p.datagram.ToString());  // Drops the ref → recycles.
  });
  for (int round = 0; round < 3; round++) {
    for (int i = 0; i < 8; i++) {
      net.Send(EndpointId{1}, EndpointId{2},
               Iovec(Bytes::CopyString("r" + std::to_string(round) + "-" + std::to_string(i))));
    }
    size_t want = static_cast<size_t>(round + 1) * 8;
    for (int spins = 0; spins < 100000 && received.size() < want; spins++) {
      net.Poll();
    }
  }
  ASSERT_EQ(received.size(), 24u);
  EXPECT_EQ(received.front(), "r0-0");
  EXPECT_EQ(received.back(), "r2-7");
#if defined(__linux__)
  // Batched receive: strictly fewer recv syscalls than messages.
  EXPECT_LT(net.stats().recv_syscalls, 24u);
#endif
  // Chunks released by the deliver callback came back through the pool.
  EXPECT_GT(net.recv_pool_stats().recycled, 0u);
}

TEST(UdpGroupTest, MachGroupOverRealSockets) {
  if (!UdpAvailable()) {
    GTEST_SKIP() << "no UDP sockets in this environment";
  }
  // The same GroupEndpoint that runs on the simulator runs over the kernel.
  UdpNetwork net;
  EndpointConfig config;
  config.mode = StackMode::kMachine;
  config.layers = TenLayerStack();
  config.params.local_loopback = false;
  config.timer_interval = Millis(2);

  GroupEndpoint a(EndpointId{1}, &net, config);
  GroupEndpoint b(EndpointId{2}, &net, config);
  std::vector<std::string> delivered;
  b.OnDeliver([&](const Event& ev) { delivered.push_back(ev.payload.Flatten().ToString()); });

  auto view = std::make_shared<View>();
  view->vid = ViewId{0, 1};
  view->members = {EndpointId{1}, EndpointId{2}};
  a.Start(view);
  b.Start(view);

  for (int i = 0; i < 10; i++) {
    a.Cast(Iovec(Bytes::CopyString("udp-" + std::to_string(i))));
    net.PollFor(Millis(2));
  }
  net.PollFor(Millis(100));

  ASSERT_EQ(delivered.size(), 10u);
  EXPECT_EQ(delivered[0], "udp-0");
  EXPECT_EQ(delivered[9], "udp-9");
  EXPECT_GT(a.stats().bypass_down, 0u);
  EXPECT_GT(b.stats().bypass_up, 0u);
}

TEST(UdpGroupTest, PackedBatchedMachGroupOverRealSockets) {
  if (!UdpAvailable()) {
    GTEST_SKIP() << "no UDP sockets in this environment";
  }
  // The full batched hot path at once: bypass-compiled casts emit compressed
  // wire into the transport packer, packed datagrams land in the sendmmsg
  // staging ring, and the receiver unpacks out of pooled recvmmsg buffers
  // back through the compressed fast path.
  UdpNetwork net;
  net.set_backend_config(NetBackendConfig::Batched(16));
  EndpointConfig config;
  config.mode = StackMode::kMachine;
  config.layers = TenLayerStack();
  config.params.local_loopback = false;
  config.timer_interval = Millis(2);
  config.pack_messages = true;
  config.pack_window = 8;

  GroupEndpoint a(EndpointId{1}, &net, config);
  GroupEndpoint b(EndpointId{2}, &net, config);
  std::vector<std::string> delivered;
  b.OnDeliver([&](const Event& ev) { delivered.push_back(ev.payload.Flatten().ToString()); });

  auto view = std::make_shared<View>();
  view->vid = ViewId{0, 1};
  view->members = {EndpointId{1}, EndpointId{2}};
  a.Start(view);
  b.Start(view);

  for (int i = 0; i < 24; i++) {
    a.Cast(Iovec(Bytes::CopyString("pb-" + std::to_string(i))));
  }
  a.Flush();
  net.PollFor(Millis(100));

  ASSERT_EQ(delivered.size(), 24u);
  EXPECT_EQ(delivered[0], "pb-0");
  EXPECT_EQ(delivered[23], "pb-23");
  EXPECT_GT(a.stats().bypass_down, 0u);
  EXPECT_GT(b.stats().bypass_up, 0u);
  EXPECT_GT(b.stats().packed_in, 0u);
  EXPECT_GT(net.stats().packed_datagrams, 0u);
  EXPECT_GT(net.stats().send_batches, 0u);
}

// Regression (drain-hook flush): with packing on and periodic timers OFF, a
// message staged by a deliver callback *during a socket drain* must still go
// out when Poll() finishes — previously it sat in the pack buffer until the
// next timer tick, which never came.
TEST(UdpGroupTest, PackedReplyFromDeliverFlushesWithoutTimers) {
  if (!UdpAvailable()) {
    GTEST_SKIP() << "no UDP sockets in this environment";
  }
  UdpNetwork net;
  EndpointConfig config;
  config.mode = StackMode::kMachine;
  config.layers = FourLayerStack();
  config.params.local_loopback = false;
  config.timer_interval = 0;  // No periodic flush: drain hooks must carry it.
  config.pack_messages = true;
  config.pack_window = 64;  // Never reached by one reply: only hooks flush.

  GroupEndpoint a(EndpointId{1}, &net, config);
  GroupEndpoint b(EndpointId{2}, &net, config);
  std::vector<std::string> a_got;
  a.OnDeliver([&](const Event& ev) { a_got.push_back(ev.payload.Flatten().ToString()); });
  b.OnDeliver([&](const Event& ev) {
    // Staged into b's pack buffer mid-drain; no timer will ever flush it.
    b.Cast(Iovec(Bytes::CopyString("reply")));
  });

  auto view = std::make_shared<View>();
  view->vid = ViewId{0, 1};
  view->members = {EndpointId{1}, EndpointId{2}};
  a.Start(view);
  b.Start(view);

  a.Cast(Iovec(Bytes::CopyString("ping")));
  a.Flush();
  net.PollFor(Millis(100));

  ASSERT_EQ(a_got.size(), 1u);
  EXPECT_EQ(a_got[0], "reply");
}

// Regression (FlushAll trailing flush): in the simulator, the last member's
// FlushPacked stages datagrams after every per-member net flush already ran;
// FlushAll must close the batching boundary once more so a burst staged with
// no subsequent timer tick is still delivered by the drain loop.
TEST(UdpGroupTest, HarnessFlushAllFlushesLastMembersPack) {
  HarnessConfig config;
  config.n = 2;
  config.ep.mode = StackMode::kMachine;
  config.ep.layers = FourLayerStack();
  config.ep.params.local_loopback = false;
  config.ep.timer_interval = 0;  // Only FlushAll may flush.
  config.ep.pack_messages = true;
  config.ep.pack_window = 64;

  GroupHarness harness(config);
  harness.StartAll();
  harness.CastFrom(1, "staged-by-last-member");  // Last member: the old gap.
  harness.FlushAll();
  harness.RunAll();
  ASSERT_EQ(harness.CastPayloads(0).size(), 1u);
  EXPECT_EQ(harness.CastPayloads(0)[0], "staged-by-last-member");
}

TEST(UdpGroupTest, Pt2ptSendsOverRealSockets) {
  if (!UdpAvailable()) {
    GTEST_SKIP() << "no UDP sockets in this environment";
  }
  UdpNetwork net;
  EndpointConfig config;
  config.mode = StackMode::kFunctional;
  config.layers = FourLayerStack();
  config.timer_interval = Millis(2);
  GroupEndpoint a(EndpointId{1}, &net, config);
  GroupEndpoint b(EndpointId{2}, &net, config);
  std::string got;
  b.OnDeliver([&](const Event& ev) { got = ev.payload.Flatten().ToString(); });
  auto view = std::make_shared<View>();
  view->vid = ViewId{0, 1};
  view->members = {EndpointId{1}, EndpointId{2}};
  a.Start(view);
  b.Start(view);
  a.Send(1, Iovec(Bytes::CopyString("direct")));
  net.PollFor(Millis(50));
  EXPECT_EQ(got, "direct");
}

// ---- io_uring backend ------------------------------------------------------

TEST(UdpUringTest, RoundTripWithScatterGather) {
  if (!UringAvailable()) {
    GTEST_SKIP() << "io_uring unavailable (kernel/seccomp or compiled out)";
  }
  UdpNetwork net;
  net.set_backend_config(NetBackendConfig::Uring(16));
  ASSERT_EQ(net.active_backend(), NetBackend::kUring);
  std::vector<std::pair<uint64_t, std::string>> received;
  net.Attach(EndpointId{1}, [&](const Packet& p) {
    received.push_back({p.src.id, p.datagram.ToString()});
  });
  net.Attach(EndpointId{2}, [&](const Packet& p) {
    received.push_back({p.src.id, p.datagram.ToString()});
  });
  ASSERT_TRUE(net.ok());
  Iovec gather;
  gather.Append(Bytes::CopyString("ring-"));
  gather.Append(Bytes::CopyString("gathered"));
  net.Send(EndpointId{1}, EndpointId{2}, gather);
  net.Flush();
  EXPECT_EQ(net.stats().sent, 1u);  // Flush waited for the send CQE.
  net.PollFor(Millis(50));
  ASSERT_EQ(received.size(), 1u);
  EXPECT_EQ(received[0].first, 1u);  // Source attributed via port map.
  EXPECT_EQ(received[0].second, "ring-gathered");
  EXPECT_GT(net.stats().uring_enters, 0u);
  EXPECT_GT(net.stats().uring_sqes, 0u);
  EXPECT_GT(net.stats().uring_cqes, 0u);
  // No classic datapath syscalls at all: the rings carried everything.
  EXPECT_EQ(net.stats().send_syscalls, 0u);
  EXPECT_EQ(net.stats().recv_syscalls, 0u);
}

TEST(UdpUringTest, StagesUntilFlushLikeMmsg) {
  if (!UringAvailable()) {
    GTEST_SKIP() << "io_uring unavailable (kernel/seccomp or compiled out)";
  }
  UdpNetwork net;
  net.set_backend_config(NetBackendConfig::Uring(64));
  std::vector<std::string> received;
  net.Attach(EndpointId{1}, [](const Packet&) {});
  net.Attach(EndpointId{2}, [&](const Packet& p) {
    received.push_back(p.datagram.ToString());
  });
  for (int i = 0; i < 5; i++) {
    net.Send(EndpointId{1}, EndpointId{2},
             Iovec(Bytes::CopyString("u-" + std::to_string(i))));
  }
  // Below the 64-datagram threshold: nothing submitted yet.
  EXPECT_EQ(net.stats().sent, 0u);
  net.Flush();
  EXPECT_EQ(net.stats().sent, 5u);
  net.PollFor(Millis(50));
  ASSERT_EQ(received.size(), 5u);
  for (int i = 0; i < 5; i++) {
    EXPECT_EQ(received[static_cast<size_t>(i)], "u-" + std::to_string(i));
  }
  EXPECT_EQ(net.stats().batched_datagrams, 5u);
}

TEST(UdpUringTest, GsoCoalescesEqualSizeRuns) {
  if (!UringAvailable()) {
    GTEST_SKIP() << "io_uring unavailable (kernel/seccomp or compiled out)";
  }
  UdpNetwork net;
  net.set_backend_config(NetBackendConfig::Uring(64));
  ASSERT_EQ(net.active_backend(), NetBackend::kUring);
  std::vector<std::string> received;
  net.Attach(EndpointId{1}, [](const Packet&) {});
  net.Attach(EndpointId{2}, [&](const Packet& p) {
    received.push_back(p.datagram.ToString());
  });
  // 16 equal-size datagrams to one destination: one GSO super-datagram.
  for (int i = 0; i < 16; i++) {
    char tag = static_cast<char>('a' + i);
    net.Send(EndpointId{1}, EndpointId{2},
             Iovec(Bytes::CopyString(std::string(64, tag))));
  }
  net.Flush();
  EXPECT_EQ(net.stats().sent, 16u);
  for (int spins = 0; spins < 100000 && received.size() < 16; spins++) {
    net.Poll();
  }
  ASSERT_EQ(received.size(), 16u);
  for (int i = 0; i < 16; i++) {
    EXPECT_EQ(received[static_cast<size_t>(i)],
              std::string(64, static_cast<char>('a' + i)));
  }
  EXPECT_GT(net.stats().gso_sends, 0u);
  EXPECT_EQ(net.stats().gso_segments, 16u);
  // Segment boundaries survive the trip even when GRO re-coalesces them.
  EXPECT_GT(net.stats().bufring_refills, 0u);
}

TEST(UdpUringTest, TimersAndIdleWaitStillFire) {
  if (!UringAvailable()) {
    GTEST_SKIP() << "io_uring unavailable (kernel/seccomp or compiled out)";
  }
  UdpNetwork net;
  net.set_backend_config(NetBackendConfig::Uring(16));
  net.Attach(EndpointId{1}, [](const Packet&) {});
  int fired = 0;
  net.ScheduleTimer(Millis(1), [&] { fired++; });
  net.ScheduleTimer(Seconds(60), [&] { fired += 100; });  // Not yet.
  net.PollFor(Millis(30));  // Sleeps in io_uring_enter, not poll(2).
  EXPECT_EQ(fired, 1);
}

TEST(UdpUringTest, PackedMachGroupOverUringRings) {
  if (!UringAvailable()) {
    GTEST_SKIP() << "io_uring unavailable (kernel/seccomp or compiled out)";
  }
  // The full composed hot path on the uring datapath: bypass-compiled casts →
  // transport packing (kWirePacked) → GSO-coalesced ring submission → GRO/
  // multishot receive into registered pool chunks → unpack → delivery.
  UdpNetwork net;
  net.set_backend_config(NetBackendConfig::Uring(16));
  EndpointConfig config;
  config.mode = StackMode::kMachine;
  config.layers = TenLayerStack();
  config.params.local_loopback = false;
  config.timer_interval = Millis(2);
  config.pack_messages = true;
  config.pack_window = 8;

  GroupEndpoint a(EndpointId{1}, &net, config);
  GroupEndpoint b(EndpointId{2}, &net, config);
  std::vector<std::string> delivered;
  b.OnDeliver([&](const Event& ev) {
    delivered.push_back(ev.payload.Flatten().ToString());
  });

  auto view = std::make_shared<View>();
  view->vid = ViewId{0, 1};
  view->members = {EndpointId{1}, EndpointId{2}};
  a.Start(view);
  b.Start(view);

  for (int i = 0; i < 24; i++) {
    a.Cast(Iovec(Bytes::CopyString("ur-" + std::to_string(i))));
  }
  a.Flush();
  net.PollFor(Millis(100));

  ASSERT_EQ(delivered.size(), 24u);
  EXPECT_EQ(delivered[0], "ur-0");
  EXPECT_EQ(delivered[23], "ur-23");
  EXPECT_GT(net.stats().packed_datagrams, 0u);
  EXPECT_GT(net.stats().uring_cqes, 0u);
  EXPECT_EQ(net.stats().send_syscalls, 0u);
}

TEST(UdpUringTest, ReleaseAdoptHandsRingsAcrossNetworks) {
  if (!UringAvailable()) {
    GTEST_SKIP() << "io_uring unavailable (kernel/seccomp or compiled out)";
  }
  // Socket travel between two uring-backed networks (the shard-handoff
  // pattern): the multishot recv is cancelled on the victim, in-flight
  // datagrams are delivered before the fd moves, and the thief re-arms it on
  // its own ring.
  UdpNetwork net_a;
  UdpNetwork net_b;
  // Socket-travel semantics require per-endpoint sockets: two standalone
  // networks have separate listener groups, so a shared-mode fd-less handoff
  // cannot reach across them.  Pin against the ENSEMBLE_INGRESS=shared leg.
  NetBackendConfig cfg = NetBackendConfig::Uring(8);
  cfg.ingress = IngressMode::kPerEndpoint;
  net_a.set_backend_config(cfg);
  net_b.set_backend_config(cfg);
  std::vector<std::string> got;
  net_a.Attach(EndpointId{1}, [](const Packet&) {});
  net_a.Attach(EndpointId{2},
               [&](const Packet& p) { got.push_back(p.datagram.ToString()); });

  net_a.Send(EndpointId{1}, EndpointId{2}, Iovec(Bytes::CopyString("before")));
  net_a.Flush();
  net_a.PollFor(Millis(50));
  ASSERT_EQ(got.size(), 1u);

  auto released = net_a.Release(EndpointId{2});
  ASSERT_TRUE(released.ok());
  net_b.Adopt(EndpointId{2}, std::move(released));
  net_b.SetDrainHook(EndpointId{2}, nullptr);

  // Sender still on net_a reaches the endpoint now owned by net_b's rings.
  net_a.Send(EndpointId{1}, EndpointId{2}, Iovec(Bytes::CopyString("after")));
  net_a.Flush();
  for (int spins = 0; spins < 100000 && got.size() < 2; spins++) {
    net_b.Poll();
  }
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[1], "after");
}

TEST(UdpUringTest, ReleaseAdoptChurnReusesRingSlots) {
  if (!UringAvailable()) {
    GTEST_SKIP() << "io_uring unavailable (kernel/seccomp or compiled out)";
  }
  // Steal-heavy churn: the endpoint bounces between two uring networks many
  // times.  Each RemoveSocket retires a ring slot and each re-Adopt must
  // reclaim one (free-list) — and every cycle the re-armed recv must still
  // deliver, proving no stale user_data or double-armed recv survives.
  UdpNetwork net_a;
  UdpNetwork net_b;
  // Same as above: fd travel is the point, so pin per-endpoint ingress.
  NetBackendConfig cfg = NetBackendConfig::Uring(8);
  cfg.ingress = IngressMode::kPerEndpoint;
  net_a.set_backend_config(cfg);
  net_b.set_backend_config(cfg);
  std::vector<std::string> got;
  net_a.Attach(EndpointId{1}, [](const Packet&) {});
  net_a.Attach(EndpointId{2},
               [&](const Packet& p) { got.push_back(p.datagram.ToString()); });
  UdpNetwork* owner = &net_a;
  for (int cycle = 0; cycle < 32; cycle++) {
    UdpNetwork* next = owner == &net_a ? &net_b : &net_a;
    auto released = owner->Release(EndpointId{2});
    ASSERT_TRUE(released.ok()) << "cycle " << cycle;
    next->Adopt(EndpointId{2}, std::move(released));
    owner = next;
    net_a.Send(EndpointId{1}, EndpointId{2},
               Iovec(Bytes::CopyString("c" + std::to_string(cycle))));
    net_a.Flush();
    size_t want = static_cast<size_t>(cycle) + 1;
    for (int spins = 0; spins < 100000 && got.size() < want; spins++) {
      owner->Poll();
    }
    ASSERT_EQ(got.size(), want) << "cycle " << cycle;
    EXPECT_EQ(got.back(), "c" + std::to_string(cycle));
  }
}

TEST(UdpUringTest, SwitchingBackendAwayDeliversInFlight) {
  if (!UringAvailable()) {
    GTEST_SKIP() << "io_uring unavailable (kernel/seccomp or compiled out)";
  }
  // Datagrams already sent when the config flips uring→mmsg must not be lost:
  // whatever the ring pulled into provided buffers is delivered during the
  // switch-away quiesce, and whatever still sits in the socket queue is
  // drained by the successor backend (with GRO stripped).
  UdpNetwork net;
  net.set_backend_config(NetBackendConfig::Uring(16));
  ASSERT_EQ(net.active_backend(), NetBackend::kUring);
  std::vector<std::string> got;
  net.Attach(EndpointId{1}, [](const Packet&) {});
  net.Attach(EndpointId{2},
             [&](const Packet& p) { got.push_back(p.datagram.ToString()); });
  constexpr int kMsgs = 8;
  for (int i = 0; i < kMsgs; i++) {
    net.Send(EndpointId{1}, EndpointId{2},
             Iovec(Bytes::CopyString("m" + std::to_string(i))));
  }
  net.Flush();  // On the wire; not yet polled.
  net.set_backend_config(NetBackendConfig::Batched(16));
  ASSERT_EQ(net.active_backend(), NetBackend::kMmsg);
  for (int spins = 0; spins < 100000 && got.size() < kMsgs; spins++) {
    net.Poll();
  }
  ASSERT_EQ(got.size(), static_cast<size_t>(kMsgs));
  for (int i = 0; i < kMsgs; i++) {
    EXPECT_EQ(got[i], "m" + std::to_string(i));
  }
}

TEST(UdpUringTest, FallsBackToMmsgWhenUnavailable) {
  if (!UdpAvailable()) {
    GTEST_SKIP() << "no UDP sockets in this environment";
  }
  // Force the probe to fail: a kUring request must silently become mmsg (one
  // LogUnsupportedOnce line) and the datapath must work unchanged.  In the
  // ENSEMBLE_URING=OFF build Available() is already false and the force is
  // redundant — the same assertions hold.
  UringEngine::ForceAvailabilityForTest(0);
  UdpNetwork net;
  net.set_backend_config(NetBackendConfig::Uring(16));
  EXPECT_EQ(net.active_backend(), NetBackend::kMmsg);
  std::string got;
  net.Attach(EndpointId{1}, [](const Packet&) {});
  net.Attach(EndpointId{2}, [&](const Packet& p) { got = p.datagram.ToString(); });
  net.Send(EndpointId{1}, EndpointId{2}, Iovec(Bytes::CopyString("fallback")));
  net.Flush();
  net.PollFor(Millis(50));
  EXPECT_EQ(got, "fallback");
  EXPECT_EQ(net.stats().uring_enters, 0u);
#if defined(__linux__)
  EXPECT_GT(net.stats().send_syscalls, 0u);  // Classic path carried it.
#endif
  UringEngine::ForceAvailabilityForTest(-1);

  // kAuto resolves without logging: uring when possible, mmsg otherwise.
  UdpNetwork auto_net;
  auto_net.set_backend_config(NetBackendConfig::Auto(16));
  EXPECT_NE(auto_net.active_backend(), NetBackend::kAuto);
  EXPECT_NE(auto_net.active_backend(), NetBackend::kEager);
}

// ---- shared ingress (SO_REUSEPORT listener + conn-id demux) ----------------

NetBackendConfig WithSharedIngress(NetBackendConfig base) {
  base.ingress = IngressMode::kShared;
  return base;
}

// True when this host can actually run the shared listener (SO_REUSEPORT +
// loopback binds); the fallback test covers the rest.
bool SharedIngressAvailable() {
  if (!UdpAvailable()) {
    return false;
  }
  UdpNetwork probe;
  probe.set_backend_config(WithSharedIngress(NetBackendConfig::Eager()));
  probe.Attach(EndpointId{1}, [](const Packet&) {});
  return probe.shared_ingress();
}

TEST(UdpSharedIngressTest, RoundTripAcrossBackendsWithTwoSockets) {
  if (!SharedIngressAvailable()) {
    GTEST_SKIP() << "shared ingress unavailable in this environment";
  }
  std::vector<NetBackendConfig> configs;
  configs.push_back(NetBackendConfig::Eager());
  configs.push_back(NetBackendConfig::Batched(8));
  if (UringAvailable()) {
    configs.push_back(NetBackendConfig::Uring(8));
  }
  for (const NetBackendConfig& base : configs) {
    UdpNetwork net;
    net.set_backend_config(WithSharedIngress(base));
    std::vector<std::pair<uint64_t, std::string>> got;
    auto tap = [&](const Packet& p) {
      got.push_back({p.src.id, p.datagram.ToString()});
    };
    net.Attach(EndpointId{1}, tap);
    net.Attach(EndpointId{2}, tap);
    net.Attach(EndpointId{3}, tap);
    ASSERT_TRUE(net.ok());
    EXPECT_TRUE(net.shared_ingress());
    // The O(1) claim at network level: 3 endpoints, still listener + tx only.
    EXPECT_EQ(net.OwnedSocketCount(), 2u);
    EXPECT_EQ(net.stats().ingress_mode, 1u);
    net.Send(EndpointId{1}, EndpointId{2}, Iovec(Bytes::CopyString("a")));
    net.Send(EndpointId{2}, EndpointId{3}, Iovec(Bytes::CopyString("b")));
    net.Send(EndpointId{3}, EndpointId{1}, Iovec(Bytes::CopyString("c")));
    net.Flush();
    for (int spins = 0; spins < 100000 && got.size() < 3; spins++) {
      net.Poll();
    }
    ASSERT_EQ(got.size(), 3u) << NetBackendName(net.active_backend());
    // One tx socket = one kernel flow: arrival order matches send order, and
    // src ids come from the demux preheader (there is no port map to consult).
    EXPECT_EQ(got[0], (std::pair<uint64_t, std::string>{1, "a"}));
    EXPECT_EQ(got[1], (std::pair<uint64_t, std::string>{2, "b"}));
    EXPECT_EQ(got[2], (std::pair<uint64_t, std::string>{3, "c"}));
  }
}

TEST(UdpSharedIngressTest, UnknownStaleOrMalformedIngressIsCountedDrop) {
  if (!SharedIngressAvailable()) {
    GTEST_SKIP() << "shared ingress unavailable in this environment";
  }
  UdpNetwork net;
  net.set_backend_config(WithSharedIngress(NetBackendConfig::Batched(8)));
  size_t delivered = 0;
  net.Attach(EndpointId{1}, [&](const Packet&) { delivered++; });
  net.Attach(EndpointId{2}, [&](const Packet&) { delivered++; });
  ASSERT_TRUE(net.shared_ingress());

  // Injector: a per-endpoint network aimed at the group port, so we can put
  // arbitrary bytes on the listener without going through SendSharedWire.
  UdpNetwork injector;
  NetBackendConfig pe;
  pe.ingress = IngressMode::kPerEndpoint;
  injector.set_backend_config(pe);
  injector.Attach(EndpointId{50}, [](const Packet&) {});
  injector.AddPeer(EndpointId{99}, net.shared_port());
  ASSERT_TRUE(injector.ok());

  // (a) Valid preheader, conn id that never existed: demux_miss, no crash.
  Bytes unknown = Bytes::Allocate(kWireIngressHeaderLen + 4);
  uint8_t* w = unknown.MutableData();
  std::memset(w, 0, unknown.size());
  w[0] = kWireIngress;
  w[1] = 7;   // src conn id 7 (le32).
  w[5] = 42;  // dst conn id 42 (le32): nobody home.
  injector.Send(EndpointId{50}, EndpointId{99}, Iovec(unknown));
  // (b) Malformed: no preheader at all — first byte fails the tag check.
  injector.Send(EndpointId{50}, EndpointId{99},
                Iovec(Bytes::CopyString("garbage-no-preheader")));
  // (c) Stale: endpoint 2 released (migrated away) — its id demux-misses.
  UdpNetwork::ReleasedEndpoint moved = net.Release(EndpointId{2});
  EXPECT_TRUE(moved.ok());
  net.Send(EndpointId{1}, EndpointId{2}, Iovec(Bytes::CopyString("late")));
  net.Flush();
  injector.Flush();
  for (int spins = 0;
       spins < 100000 && (net.stats().demux_miss < 2 || net.stats().demux_bad < 1);
       spins++) {
    net.Poll();
  }
  EXPECT_EQ(net.stats().demux_miss, 2u);  // (a) + (c).
  EXPECT_EQ(net.stats().demux_bad, 1u);   // (b).
  EXPECT_EQ(delivered, 0u);

  // The listener survived all three: normal traffic still flows.
  net.Adopt(EndpointId{2}, std::move(moved));
  net.Send(EndpointId{1}, EndpointId{2}, Iovec(Bytes::CopyString("ok")));
  net.Flush();
  for (int spins = 0; spins < 100000 && delivered < 1; spins++) {
    net.Poll();
  }
  EXPECT_EQ(delivered, 1u);
}

TEST(UdpSharedIngressTest, PackedDatagramDemuxesPerSubMessage) {
  if (!SharedIngressAvailable()) {
    GTEST_SKIP() << "shared ingress unavailable in this environment";
  }
  // A packed (kWirePacked) datagram rides the wire as ONE body behind ONE
  // preheader; the demux must hand the intact packed train to the endpoint,
  // whose transport unpacks every sub-message.
  UdpNetwork net;
  net.set_backend_config(WithSharedIngress(NetBackendConfig::Batched(8)));
  std::vector<std::string> subs_got;
  Transport unpacker;
  net.Attach(EndpointId{1}, [](const Packet&) {});
  net.Attach(EndpointId{2}, [&](const Packet& p) {
    ASSERT_TRUE(Transport::IsPacked(p.datagram));
    std::vector<Bytes> subs;
    ASSERT_TRUE(unpacker.Unpack(p.datagram, &subs));
    for (const Bytes& b : subs) {
      subs_got.push_back(b.ToString());
    }
  });
  ASSERT_TRUE(net.shared_ingress());

  Transport packer;
  packer.EnablePacking(
      [&](const Transport::PackDest&, const Iovec& wire) {
        net.Send(EndpointId{1}, EndpointId{2}, wire);
      },
      /*window=*/4, /*max_bytes=*/60000);
  for (int i = 0; i < 4; i++) {
    packer.PackSend(EndpointId{2}, Iovec(Bytes::CopyString("sub" + std::to_string(i))));
  }
  packer.FlushPacked();
  net.Flush();
  for (int spins = 0; spins < 100000 && subs_got.size() < 4; spins++) {
    net.Poll();
  }
  ASSERT_EQ(subs_got.size(), 4u);
  for (int i = 0; i < 4; i++) {
    EXPECT_EQ(subs_got[static_cast<size_t>(i)], "sub" + std::to_string(i));
  }
  // The packing classifier ran on the original datagram, before the ingress
  // preheader was prepended.
  EXPECT_EQ(net.stats().packed_datagrams, 1u);
  EXPECT_EQ(net.stats().packed_submsgs, 4u);
}

TEST(UdpSharedIngressTest, GsoGroSegmentsDemuxPerSubMessage) {
  if (!UringAvailable() || !SharedIngressAvailable()) {
    GTEST_SKIP() << "io_uring or shared ingress unavailable";
  }
  // Equal-size run through GSO: the 9-byte preheader is uniform, so segment
  // sizes stay equal and the coalescer still fires; on receive each GRO-split
  // segment carries its own preheader and demuxes independently.
  UdpNetwork net;
  net.set_backend_config(WithSharedIngress(NetBackendConfig::Uring(64)));
  std::vector<std::string> received;
  net.Attach(EndpointId{1}, [](const Packet&) {});
  net.Attach(EndpointId{2}, [&](const Packet& p) {
    received.push_back(p.datagram.ToString());
  });
  ASSERT_TRUE(net.shared_ingress());
  ASSERT_EQ(net.active_backend(), NetBackend::kUring);
  for (int i = 0; i < 16; i++) {
    char tag = static_cast<char>('a' + i);
    net.Send(EndpointId{1}, EndpointId{2},
             Iovec(Bytes::CopyString(std::string(64, tag))));
  }
  net.Flush();
  EXPECT_EQ(net.stats().sent, 16u);
  for (int spins = 0; spins < 100000 && received.size() < 16; spins++) {
    net.Poll();
  }
  ASSERT_EQ(received.size(), 16u);
  for (int i = 0; i < 16; i++) {
    EXPECT_EQ(received[static_cast<size_t>(i)],
              std::string(64, static_cast<char>('a' + i)));
  }
  EXPECT_GT(net.stats().gso_sends, 0u);
  EXPECT_EQ(net.stats().gso_segments, 16u);
}

TEST(UdpSharedIngressTest, ReleaseAdoptIsInMemoryTransfer) {
  if (!SharedIngressAvailable()) {
    GTEST_SKIP() << "shared ingress unavailable in this environment";
  }
  UdpNetwork net;
  net.set_backend_config(WithSharedIngress(NetBackendConfig::Batched(8)));
  std::vector<std::string> got;
  net.Attach(EndpointId{1}, [](const Packet&) {});
  net.Attach(EndpointId{2},
             [&](const Packet& p) { got.push_back(p.datagram.ToString()); });
  ASSERT_TRUE(net.shared_ingress());

  UdpNetwork::ReleasedEndpoint state = net.Release(EndpointId{2});
  ASSERT_TRUE(state.ok());
  EXPECT_TRUE(state.shared);
  EXPECT_EQ(state.fd, -1);  // No kernel object travels.
  EXPECT_EQ(net.OwnedSocketCount(), 2u);

  net.Adopt(EndpointId{2}, std::move(state));
  net.Send(EndpointId{1}, EndpointId{2}, Iovec(Bytes::CopyString("back")));
  net.Flush();
  for (int spins = 0; spins < 100000 && got.empty(); spins++) {
    net.Poll();
  }
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0], "back");
}

TEST(UdpSharedIngressTest, FallsBackToPerEndpointWhenUnavailable) {
  if (!UdpAvailable()) {
    GTEST_SKIP() << "no UDP sockets in this environment";
  }
  UdpNetwork::ForceSharedIngressUnavailableForTest(true);
  UdpNetwork net;
  net.set_backend_config(WithSharedIngress(NetBackendConfig::Batched(8)));
  std::vector<std::string> got;
  net.Attach(EndpointId{1}, [](const Packet&) {});
  net.Attach(EndpointId{2},
             [&](const Packet& p) { got.push_back(p.datagram.ToString()); });
  net.Attach(EndpointId{3}, [](const Packet&) {});
  UdpNetwork::ForceSharedIngressUnavailableForTest(false);
  ASSERT_TRUE(net.ok());
  EXPECT_FALSE(net.shared_ingress());
  EXPECT_EQ(net.OwnedSocketCount(), 3u);      // One socket per endpoint again.
  EXPECT_EQ(net.stats().ingress_mode, 0u);
  EXPECT_EQ(net.stats().demux_miss, 0u);

  net.Send(EndpointId{1}, EndpointId{2}, Iovec(Bytes::CopyString("fallback")));
  net.Flush();
  for (int spins = 0; spins < 100000 && got.empty(); spins++) {
    net.Poll();
  }
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0], "fallback");
}

}  // namespace
}  // namespace ensemble
