// Adversarial-input robustness: everything that parses bytes off the wire
// must reject garbage without crashing or corrupting state — fuzz-style
// sweeps with deterministic seeds.

#include <gtest/gtest.h>

#include "src/app/harness.h"
#include "src/bypass/compiler.h"
#include "src/bypass/conn_table.h"
#include "src/marshal/generic_codec.h"
#include "src/trans/transport.h"
#include <cstring>

#include "src/util/rng.h"

namespace ensemble {
namespace {

TEST(RobustnessTest, TransportDropsEmptyAndUnknownTags) {
  Transport transport;
  EXPECT_EQ(transport.DispatchUp(Bytes()).kind, Transport::UpKind::kDrop);
  for (int tag = 0; tag < 256; tag++) {
    if (tag == kWireGeneric || tag == kWireCompressed) {
      continue;
    }
    uint8_t buf[8] = {static_cast<uint8_t>(tag), 1, 2, 3, 4, 5, 6, 7};
    EXPECT_EQ(transport.DispatchUp(Bytes::Copy(buf, sizeof(buf))).kind,
              Transport::UpKind::kDrop)
        << "tag " << tag;
  }
}

TEST(RobustnessTest, TransportDropsShortCompressedPreambles) {
  Transport transport;
  ConnTable conns;
  transport.set_conn_table(&conns);
  for (size_t len = 1; len < 6; len++) {
    std::vector<uint8_t> buf(len, 0);
    buf[0] = kWireCompressed;
    EXPECT_EQ(transport.DispatchUp(Bytes::Copy(buf.data(), len)).kind,
              Transport::UpKind::kDrop)
        << "len " << len;
  }
}

TEST(RobustnessTest, TransportDropsUnknownConnIds) {
  Transport transport;
  ConnTable conns;
  transport.set_conn_table(&conns);
  uint8_t buf[10] = {kWireCompressed, 0xAA, 0xBB, 0xCC, 0xDD, 0, 1, 2, 3, 4};
  EXPECT_EQ(transport.DispatchUp(Bytes::Copy(buf, sizeof(buf))).kind,
            Transport::UpKind::kDrop);
}

class FuzzSeedTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FuzzSeedTest, RandomBytesNeverCrashGenericUnmarshal) {
  Rng rng(GetParam());
  for (int iter = 0; iter < 2000; iter++) {
    size_t len = rng.Below(200);
    std::vector<uint8_t> buf(len);
    for (auto& b : buf) {
      b = static_cast<uint8_t>(rng.Next());
    }
    if (!buf.empty() && rng.Chance(0.5)) {
      buf[0] = kWireGeneric;  // Force the parser past the tag check.
    }
    Event out;
    GenericUnmarshal(Bytes::Copy(buf.data(), buf.size()), &out);  // Must not crash.
  }
}

TEST_P(FuzzSeedTest, TruncatedRealDatagramsAreRejectedNotCrashed) {
  // Take a real marshaled message and feed every truncation of it.
  GroupHarness g{[] {
    HarnessConfig c;
    c.n = 2;
    c.ep.layers = TenLayerStack();
    return c;
  }()};
  g.StartAll();
  // Produce a real datagram by catching it at the stack boundary.
  std::vector<Event> out;
  auto stack = BuildStack(EngineKind::kFunctional, TenLayerStack(), LayerParams{},
                          EndpointId{9});
  stack->set_dn_out([&out](Event ev) { out.push_back(std::move(ev)); });
  stack->set_up_out([](Event) {});
  auto view = std::make_shared<View>();
  view->vid = ViewId{0, 1};
  view->members = {EndpointId{9}, EndpointId{10}};
  stack->Init(view);
  stack->Down(Event::Cast(Iovec(Bytes::CopyString("victim"))));
  ASSERT_FALSE(out.empty());
  Bytes datagram = GenericMarshal(out[0], 0).Flatten();

  Rng rng(GetParam());
  for (size_t cut = 0; cut < datagram.size(); cut++) {
    Bytes truncated = datagram.Slice(0, cut);
    Event ev;
    GenericUnmarshal(truncated, &ev);  // Must not crash.
    // And corrupted single bytes:
    Bytes corrupted = Bytes::Copy(datagram.data(), datagram.size());
    corrupted.MutableData()[rng.Below(datagram.size())] ^= 0xFF;
    GenericUnmarshal(corrupted, &ev);
  }
}

TEST_P(FuzzSeedTest, CompressedGarbageThroughRealRoutes) {
  // Random var bytes after a VALID conn preamble: the route must either
  // deliver, fall back, or report kBad — never crash or corrupt the stack.
  auto stack = BuildStack(EngineKind::kFunctional, TenLayerStack(), LayerParams{},
                          EndpointId{1});
  stack->set_dn_out([](Event) {});
  stack->set_up_out([](Event) {});
  auto view = std::make_shared<View>();
  view->vid = ViewId{0, 1};
  view->members = {EndpointId{1}, EndpointId{2}};
  stack->Init(view);
  std::string error;
  auto route = CompileRoutePair(stack.get(), true, &error);
  ASSERT_NE(route, nullptr) << error;

  Rng rng(GetParam());
  for (int iter = 0; iter < 1000; iter++) {
    size_t len = 6 + rng.Below(40);
    std::vector<uint8_t> buf(len);
    buf[0] = kWireCompressed;
    uint32_t conn = route->conn_id();
    std::memcpy(buf.data() + 1, &conn, 4);
    buf[5] = static_cast<uint8_t>(rng.Below(3));
    for (size_t i = 6; i < len; i++) {
      buf[i] = static_cast<uint8_t>(rng.Next());
    }
    Event ev;
    route->TryUp(Bytes::Copy(buf.data(), buf.size()), 6, static_cast<Rank>(buf[5]), &ev);
    // If the random seqno happened to be the expected one the event was
    // delivered and state advanced — that is correct behavior (the bytes
    // formed a valid message); everything else must fall back or be bad.
  }
  // The stack is still functional after the garbage storm.
  stack->Down(Event::Cast(Iovec(Bytes::CopyString("still alive"))));
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzSeedTest, ::testing::Values(101, 202, 303));

TEST(RobustnessTest, EndpointSurvivesDatagramInjection) {
  HarnessConfig config;
  config.n = 2;
  config.ep.mode = StackMode::kMachine;
  config.ep.layers = TenLayerStack();
  GroupHarness g(config);
  g.StartAll();
  Rng rng(7);
  for (int iter = 0; iter < 500; iter++) {
    size_t len = rng.Below(64);
    std::vector<uint8_t> buf(len);
    for (auto& b : buf) {
      b = static_cast<uint8_t>(rng.Next());
    }
    g.member(1).InjectDatagram(Bytes::Copy(buf.data(), buf.size()));
  }
  // Real traffic still flows afterwards.
  g.CastFrom(0, "after the storm");
  g.Run(Millis(50));
  auto delivered = g.CastPayloadsFrom(1, 0);
  ASSERT_FALSE(delivered.empty());
  EXPECT_EQ(delivered.back(), "after the storm");
}

TEST(RobustnessTest, HarnessWithZeroTimerStillDeliversOnPerfectNet) {
  HarnessConfig config;
  config.n = 2;
  config.ep.layers = FourLayerStack();
  config.ep.timer_interval = 0;  // No retransmission machinery at all.
  GroupHarness g(config);
  g.StartAll();
  g.CastFrom(0, "no-timers");
  g.Run(Millis(10));
  EXPECT_EQ(g.CastPayloads(1), (std::vector<std::string>{"no-timers"}));
}

}  // namespace
}  // namespace ensemble
