// Unit tests: encrypt and sign layers, plus a full stack including them.

#include <gtest/gtest.h>

#include "src/app/harness.h"
#include "src/layers/encrypt.h"
#include "src/layers/sign.h"
#include "tests/layer_tester.h"

namespace ensemble {
namespace {

TEST(EncryptTest, CiphertextDiffersFromPlaintext) {
  LayerTester t(LayerId::kEncrypt, 2, 0);
  auto& out = t.Dn(Event::Cast(LayerTester::Payload("secret message")));
  ASSERT_EQ(out.dn.size(), 1u);
  EXPECT_NE(out.dn[0].payload.Flatten().view(), "secret message");
  EXPECT_EQ(out.dn[0].payload.size(), 14u);  // Stream cipher: same length.
}

TEST(EncryptTest, RoundTripRestoresPlaintext) {
  LayerTester tx(LayerId::kEncrypt, 2, 0);
  LayerTester rx(LayerId::kEncrypt, 2, 1);
  auto& out = tx.Dn(Event::Cast(LayerTester::Payload("secret message")));
  Event up = Event::DeliverCast(0, out.dn[0].payload);
  up.hdrs = out.dn[0].hdrs;
  auto& got = rx.Up(std::move(up));
  ASSERT_EQ(got.up.size(), 1u);
  EXPECT_EQ(got.up[0].payload.Flatten().view(), "secret message");
}

TEST(EncryptTest, NoncesDifferPerMessage) {
  LayerTester t(LayerId::kEncrypt, 2, 0);
  auto c1 = t.Dn(Event::Cast(LayerTester::Payload("same"))).dn[0].payload.Flatten();
  auto c2 = t.Dn(Event::Cast(LayerTester::Payload("same"))).dn[0].payload.Flatten();
  EXPECT_FALSE(c1 == c2);  // Fresh keystream per message.
}

TEST(EncryptTest, WrongKeyGarbles) {
  LayerTester tx(LayerId::kEncrypt, 2, 0);
  LayerTester rx(LayerId::kEncrypt, 2, 1);
  rx.As<EncryptLayer>().SetKey(0xBAD);
  auto& out = tx.Dn(Event::Cast(LayerTester::Payload("secret message")));
  Event up = Event::DeliverCast(0, out.dn[0].payload);
  up.hdrs = out.dn[0].hdrs;
  auto& got = rx.Up(std::move(up));
  ASSERT_EQ(got.up.size(), 1u);
  EXPECT_NE(got.up[0].payload.Flatten().view(), "secret message");
}

TEST(SignTest, ValidMacPasses) {
  LayerTester tx(LayerId::kSign, 2, 0);
  LayerTester rx(LayerId::kSign, 2, 1);
  auto& out = tx.Dn(Event::Cast(LayerTester::Payload("attested")));
  Event up = Event::DeliverCast(0, out.dn[0].payload);
  up.hdrs = out.dn[0].hdrs;
  EXPECT_EQ(rx.Up(std::move(up)).up.size(), 1u);
  EXPECT_EQ(rx.As<SignLayer>().rejected(), 0u);
}

TEST(SignTest, TamperedPayloadRejected) {
  LayerTester tx(LayerId::kSign, 2, 0);
  LayerTester rx(LayerId::kSign, 2, 1);
  auto& out = tx.Dn(Event::Cast(LayerTester::Payload("attested")));
  Event up = Event::DeliverCast(0, LayerTester::Payload("attacked"));
  up.hdrs = out.dn[0].hdrs;
  EXPECT_TRUE(rx.Up(std::move(up)).up.empty());
  EXPECT_EQ(rx.As<SignLayer>().rejected(), 1u);
}

TEST(SignTest, WrongKeyRejected) {
  LayerTester tx(LayerId::kSign, 2, 0);
  LayerTester rx(LayerId::kSign, 2, 1);
  rx.As<SignLayer>().SetKey(0xBAD);
  auto& out = tx.Dn(Event::Cast(LayerTester::Payload("attested")));
  Event up = Event::DeliverCast(0, out.dn[0].payload);
  up.hdrs = out.dn[0].hdrs;
  EXPECT_TRUE(rx.Up(std::move(up)).up.empty());
}

TEST(SecurityIntegrationTest, SecureStackDeliversOverLossyNet) {
  // encrypt + sign above the reliable transport: the "signing and
  // encryption" functionality the paper lists among Ensemble's layers.
  HarnessConfig config;
  config.n = 2;
  config.net = NetworkConfig::Lossy(0.1, 0.05, 0.1, 321);
  config.ep.layers = {LayerId::kTop,  LayerId::kEncrypt, LayerId::kSign,
                      LayerId::kPt2pt, LayerId::kMnak,    LayerId::kBottom};
  GroupHarness g(config);
  g.StartAll();
  std::vector<std::string> sent;
  for (int i = 0; i < 25; i++) {
    sent.push_back("classified " + std::to_string(i));
    g.CastFrom(0, sent.back());
    g.Run(Micros(600));
  }
  g.Run(Millis(400));
  EXPECT_EQ(g.CastPayloadsFrom(1, 0), sent);
}

}  // namespace
}  // namespace ensemble
