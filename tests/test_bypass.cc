// Unit tests: bypass rules, the route compiler, connection table, header
// compression, fallback reconstruction, and the hand-written bypass.

#include <gtest/gtest.h>

#include "src/bypass/compiler.h"
#include "src/bypass/conn_table.h"
#include "src/bypass/hand.h"
#include "src/layers/mnak.h"
#include "src/layers/total.h"
#include "src/marshal/generic_codec.h"
#include "src/trans/transport.h"

namespace ensemble {
namespace {

struct BypassFixture {
  std::unique_ptr<ProtocolStack> tx;
  std::unique_ptr<ProtocolStack> rx;
  std::unique_ptr<RoutePair> tx_route;
  std::unique_ptr<RoutePair> rx_route;
  std::vector<Event> rx_dn_out;

  BypassFixture(const std::vector<LayerId>& layers, LayerParams params = Quiet()) {
    tx = BuildStack(EngineKind::kFunctional, layers, params, EndpointId{1});
    rx = BuildStack(EngineKind::kFunctional, layers, params, EndpointId{2});
    tx->set_dn_out([](Event) {});
    tx->set_up_out([](Event) {});
    rx->set_dn_out([this](Event ev) { rx_dn_out.push_back(std::move(ev)); });
    rx->set_up_out([this](Event ev) {
      if (ev.type == EventType::kDeliverCast || ev.type == EventType::kDeliverSend) {
        rx_deliveries.push_back(std::move(ev));
      }
    });
    auto view = std::make_shared<View>();
    view->vid = ViewId{0, 1};
    view->members = {EndpointId{1}, EndpointId{2}};
    tx->Init(view);
    rx->Init(view);
    std::string error;
    tx_route = CompileRoutePair(tx.get(), true, &error);
    EXPECT_NE(tx_route, nullptr) << error;
    rx_route = CompileRoutePair(rx.get(), true, &error);
    EXPECT_NE(rx_route, nullptr) << error;
  }

  static LayerParams Quiet() {
    LayerParams p;
    p.local_loopback = false;
    p.stable_interval = 1u << 30;
    p.mflow_window = 1u << 30;
    return p;
  }

  std::vector<Event> rx_deliveries;
};

TEST(CompilerTest, TenLayerCastRouteCompiles) {
  BypassFixture f(TenLayerStack());
  EXPECT_EQ(f.tx_route->var_count(), 2u);  // mnak seqno + total gseq.
  // Header compression: "typically just 16 bytes".
  EXPECT_LE(f.tx_route->wire_header_bytes(), 16u);
}

TEST(CompilerTest, ConnIdsAgreeAcrossEndpoints) {
  BypassFixture f(TenLayerStack());
  EXPECT_EQ(f.tx_route->conn_id(), f.rx_route->conn_id());
}

TEST(CompilerTest, ConnIdsDifferAcrossStacksAndKinds) {
  BypassFixture ten(TenLayerStack());
  BypassFixture four(FourLayerStack());
  EXPECT_NE(ten.tx_route->conn_id(), four.tx_route->conn_id());
  std::string error;
  auto send_route = CompileRoutePair(ten.tx.get(), false, &error);
  ASSERT_NE(send_route, nullptr) << error;
  EXPECT_NE(send_route->conn_id(), ten.tx_route->conn_id());
}

TEST(CompilerTest, ConnIdChangesWithView) {
  // The bottom layer's view counter is a compile-time constant of the route:
  // a different view produces a different id (stale traffic cannot alias).
  BypassFixture f(TenLayerStack());
  uint32_t before = f.tx_route->conn_id();
  Event nv = Event::OfType(EventType::kView);
  auto view = std::make_shared<View>();
  view->vid = ViewId{0, 2};
  view->members = {EndpointId{1}, EndpointId{2}};
  nv.view = view;
  f.tx->Down(std::move(nv));  // Reset lower layers into the new view.
  std::string error;
  auto recompiled = CompileRoutePair(f.tx.get(), true, &error);
  ASSERT_NE(recompiled, nullptr) << error;
  EXPECT_NE(recompiled->conn_id(), before);
}

TEST(CompilerTest, MissingRuleBlocksCompilation) {
  // The membership stack includes layers without a-priori optimizations.
  LayerParams params;
  auto stack = BuildStack(EngineKind::kFunctional,
                          {LayerId::kTop, LayerId::kSuspect, LayerId::kPt2pt, LayerId::kMnak,
                           LayerId::kBottom},
                          params, EndpointId{1});
  auto view = std::make_shared<View>();
  view->vid = ViewId{0, 1};
  view->members = {EndpointId{1}};
  stack->Init(view);
  std::string error;
  EXPECT_EQ(CompileRoutePair(stack.get(), true, &error), nullptr);
  EXPECT_NE(error.find("suspect"), std::string::npos);
}

TEST(CompilerTest, DescribeRendersComposedTheorem) {
  BypassFixture f(TenLayerStack());
  std::string text = f.tx_route->Describe();
  EXPECT_NE(text.find("OPTIMIZING LAYER mnak"), std::string::npos);
  EXPECT_NE(text.find("seqno var"), std::string::npos);
  EXPECT_NE(text.find("s_bottom.enabled"), std::string::npos);
}

TEST(RoundTripTest, BypassToBypassDelivers) {
  BypassFixture f(TenLayerStack());
  for (int i = 0; i < 5; i++) {
    Event ev = Event::Cast(Iovec(Bytes::CopyString("msg" + std::to_string(i))));
    Iovec wire;
    ASSERT_TRUE(f.tx_route->TryDown(ev, &wire, nullptr));
    Bytes datagram = wire.Flatten();
    Event out;
    ASSERT_EQ(f.rx_route->TryUp(datagram, 6, 0, &out), RoutePair::UpResult::kDelivered);
    EXPECT_EQ(out.type, EventType::kDeliverCast);
    EXPECT_EQ(out.origin, 0);
    EXPECT_EQ(out.payload.Flatten().view(), "msg" + std::to_string(i));
  }
}

TEST(RoundTripTest, CcpMissFallsBackWithReconstructedHeaders) {
  BypassFixture f(TenLayerStack());
  // Send seqno 0 and 1, but deliver 1 first: the receive CCP fails and the
  // reconstructed event must flow through the normal stack, which buffers it
  // and delivers both once 0 arrives — protocol state shared between paths.
  Event ev0 = Event::Cast(Iovec(Bytes::CopyString("first")));
  Event ev1 = Event::Cast(Iovec(Bytes::CopyString("second")));
  Iovec w0, w1;
  ASSERT_TRUE(f.tx_route->TryDown(ev0, &w0, nullptr));
  ASSERT_TRUE(f.tx_route->TryDown(ev1, &w1, nullptr));
  Bytes d0 = w0.Flatten();
  Bytes d1 = w1.Flatten();

  Event out;
  ASSERT_EQ(f.rx_route->TryUp(d1, 6, 0, &out), RoutePair::UpResult::kFallback);
  f.rx->Up(std::move(out));  // Normal path: buffers out-of-order arrival.
  EXPECT_TRUE(f.rx_deliveries.empty());

  ASSERT_EQ(f.rx_route->TryUp(d0, 6, 0, &out), RoutePair::UpResult::kFallback)
      << "mnak backlog non-empty: the fast path must refuse and let the "
         "normal path flush";
  f.rx->Up(std::move(out));
  ASSERT_EQ(f.rx_deliveries.size(), 2u);
  EXPECT_EQ(f.rx_deliveries[0].payload.Flatten().view(), "first");
  EXPECT_EQ(f.rx_deliveries[1].payload.Flatten().view(), "second");
}

TEST(RoundTripTest, MixedPathsShareState) {
  // Alternate bypass and normal path on the sender; the receiver must see a
  // gap-free sequence either way.
  BypassFixture f(TenLayerStack());
  Transport transport;
  ConnTable conns;
  conns.Register(f.rx_route.get());
  transport.set_conn_table(&conns);

  std::vector<Bytes> wire_msgs;
  std::vector<Event> tx_bottom;
  f.tx->set_dn_out([&](Event ev) { tx_bottom.push_back(std::move(ev)); });

  for (int i = 0; i < 6; i++) {
    if (i % 2 == 0) {
      Event ev = Event::Cast(Iovec(Bytes::CopyString("m" + std::to_string(i))));
      Iovec wire;
      ASSERT_TRUE(f.tx_route->TryDown(ev, &wire, nullptr));
      wire_msgs.push_back(wire.Flatten());
    } else {
      f.tx->Down(Event::Cast(Iovec(Bytes::CopyString("m" + std::to_string(i)))));
      ASSERT_FALSE(tx_bottom.empty());
      wire_msgs.push_back(GenericMarshal(tx_bottom.back(), 0).Flatten());
      tx_bottom.clear();
    }
  }
  for (const Bytes& datagram : wire_msgs) {
    Transport::UpResult up = transport.DispatchUp(datagram);
    if (up.kind == Transport::UpKind::kDelivered) {
      f.rx_deliveries.push_back(std::move(up.ev));
    } else if (up.kind == Transport::UpKind::kStackEvent) {
      f.rx->Up(std::move(up.ev));
    }
  }
  ASSERT_EQ(f.rx_deliveries.size(), 6u);
  for (int i = 0; i < 6; i++) {
    EXPECT_EQ(f.rx_deliveries[static_cast<size_t>(i)].payload.Flatten().view(),
              "m" + std::to_string(i));
  }
}

TEST(RoundTripTest, DownCcpMissLeavesStateUntouched) {
  BypassFixture f(TenLayerStack());
  // Make the total layer's CCP fail: move the token away.
  auto* total = static_cast<TotalLayer*>(f.tx->FindLayer(LayerId::kTotal));
  total->fast().token_holder = 1;
  uint64_t digest_before = total->StateDigest();
  auto* mnak = static_cast<MnakLayer*>(f.tx->FindLayer(LayerId::kMnak));
  uint64_t mnak_before = mnak->StateDigest();

  Event ev = Event::Cast(Iovec(Bytes::CopyString("refused")));
  Iovec wire;
  EXPECT_FALSE(f.tx_route->TryDown(ev, &wire, nullptr));
  EXPECT_EQ(total->StateDigest(), digest_before);
  EXPECT_EQ(mnak->StateDigest(), mnak_before);  // No half-applied updates.
}

TEST(RoundTripTest, BypassRetransmissionsCarryUpperHeaders) {
  // The needs_upper_headers machinery: a cast sent via bypass and then
  // NAK-retransmitted through the normal path must reach the receiver with
  // poppable headers for every layer above mnak.
  BypassFixture f(TenLayerStack());
  Event ev = Event::Cast(Iovec(Bytes::CopyString("keep-me")));
  Iovec wire;
  ASSERT_TRUE(f.tx_route->TryDown(ev, &wire, nullptr));
  // Receiver never got it; a NAK arrives at the sender's normal stack.
  std::vector<Event> tx_bottom;
  f.tx->set_dn_out([&](Event e) { tx_bottom.push_back(std::move(e)); });
  Event nak = Event::DeliverSend(1, Iovec());
  nak.hdrs.Push(LayerId::kMnak, MnakHeader{kMnakNak, 0, 0, 1});
  nak.hdrs.Push(LayerId::kBottom, BottomHeader{0, 1});
  f.tx->Up(std::move(nak));
  ASSERT_EQ(tx_bottom.size(), 1u);
  // Marshal the retransmission and deliver it at the receiver.
  Bytes datagram = GenericMarshal(tx_bottom[0], 0).Flatten();
  Event up;
  ASSERT_TRUE(GenericUnmarshal(datagram, &up));
  f.rx->Up(std::move(up));
  ASSERT_EQ(f.rx_deliveries.size(), 1u);
  EXPECT_EQ(f.rx_deliveries[0].payload.Flatten().view(), "keep-me");
}

TEST(SplitRouteTest, SelfDeliveryThroughUpperUpRules) {
  LayerParams params = BypassFixture::Quiet();
  params.local_loopback = true;
  BypassFixture f(TenLayerStack(), params);
  std::string error;
  auto route = CompileRoutePair(f.tx.get(), true, &error);
  ASSERT_NE(route, nullptr) << error;

  Event ev = Event::Cast(Iovec(Bytes::CopyString("to-self")));
  Iovec wire;
  std::vector<Event> selfs;
  ASSERT_TRUE(route->TryDown(ev, &wire, &selfs));
  ASSERT_EQ(selfs.size(), 1u);
  EXPECT_EQ(selfs[0].type, EventType::kDeliverCast);
  EXPECT_EQ(selfs[0].origin, 0);
  EXPECT_EQ(selfs[0].payload.Flatten().view(), "to-self");
  // total's expected_gseq advanced through the self-delivery arm.
  auto* total = static_cast<TotalLayer*>(f.tx->FindLayer(LayerId::kTotal));
  EXPECT_EQ(total->fast().expected_gseq, 1u);
}

TEST(ConnTableTest, RegisterFindUnregister) {
  BypassFixture f(TenLayerStack());
  ConnTable table;
  EXPECT_TRUE(table.Register(f.tx_route.get()));
  EXPECT_TRUE(table.Register(f.tx_route.get()));  // Idempotent.
  EXPECT_EQ(table.Find(f.tx_route->conn_id()), f.tx_route.get());
  EXPECT_EQ(table.Find(0xDEAD), nullptr);
  table.Unregister(f.tx_route->conn_id());
  EXPECT_EQ(table.Find(f.tx_route->conn_id()), nullptr);
}

TEST(ConnTableTest, GrowsPastInitialCapacityAndKeepsEveryEntry) {
  ConnTable table;
  size_t cap0 = table.capacity();
  // Synthetic ids via RegisterId (the table never dereferences the routes);
  // distinct fake pointers let Find() results be checked exactly.
  std::vector<char> arena(300);
  for (uint32_t i = 0; i < 300; i++) {
    ASSERT_TRUE(table.RegisterId(i * 7 + 1, reinterpret_cast<RoutePair*>(arena.data() + i)));
  }
  EXPECT_EQ(table.size(), 300u);
  EXPECT_GT(table.capacity(), cap0);  // Rehashed at least once.
  for (uint32_t i = 0; i < 300; i++) {
    EXPECT_EQ(table.Find(i * 7 + 1), reinterpret_cast<RoutePair*>(arena.data() + i));
  }
  EXPECT_EQ(table.Find(0), nullptr);
  EXPECT_EQ(table.RegisterId(8, reinterpret_cast<RoutePair*>(arena.data() + 299)),
            false);  // id 8 = 1*7+1, bound to a different route: collision is fatal.
}

TEST(ConnTableTest, BackwardShiftDeletionKeepsProbeChainsIntact) {
  ConnTable table;
  std::vector<char> arena(200);
  // Dense sequential ids cluster under any hash at this load factor, so the
  // deletions below exercise chains that actually wrap displaced entries.
  for (uint32_t i = 0; i < 200; i++) {
    ASSERT_TRUE(table.RegisterId(1000 + i, reinterpret_cast<RoutePair*>(arena.data() + i)));
  }
  for (uint32_t i = 0; i < 200; i += 2) {
    table.Unregister(1000 + i);
  }
  EXPECT_EQ(table.size(), 100u);
  for (uint32_t i = 0; i < 200; i++) {
    if (i % 2 == 0) {
      EXPECT_EQ(table.Find(1000 + i), nullptr) << "id " << 1000 + i;
    } else {
      // Survivors must stay reachable: a deletion that left a hole inside a
      // probe chain would make these lookups stop early at the gap.
      EXPECT_EQ(table.Find(1000 + i), reinterpret_cast<RoutePair*>(arena.data() + i))
          << "id " << 1000 + i;
    }
  }
  // Deleted slots are reusable and chains re-form.
  for (uint32_t i = 0; i < 200; i += 2) {
    ASSERT_TRUE(table.RegisterId(1000 + i, reinterpret_cast<RoutePair*>(arena.data() + i)));
  }
  for (uint32_t i = 0; i < 200; i++) {
    EXPECT_EQ(table.Find(1000 + i), reinterpret_cast<RoutePair*>(arena.data() + i));
  }
  table.Clear();
  EXPECT_EQ(table.size(), 0u);
  EXPECT_EQ(table.Find(1001), nullptr);
}

TEST(HandTest, RequiresExactStackShape) {
  LayerParams params;
  auto wrong = BuildStack(EngineKind::kFunctional, TenLayerStack(), params, EndpointId{1});
  std::string error;
  EXPECT_EQ(Hand4Bypass::Create(wrong.get(), &error), nullptr);
  EXPECT_FALSE(error.empty());
}

TEST(HandTest, WireCompatibleWithMachineRoutes) {
  // HAND sender, MACH-compiled receiver: the datagrams must be identical in
  // format and the receiver must deliver them.
  BypassFixture f(FourLayerStack());
  std::string error;
  auto hand = Hand4Bypass::Create(f.tx.get(), &error);
  ASSERT_NE(hand, nullptr) << error;
  EXPECT_EQ(hand->cast_conn_id(), f.rx_route->conn_id());

  Event ev = Event::Cast(Iovec(Bytes::CopyString("by-hand")));
  Iovec wire;
  ASSERT_TRUE(hand->TryDownCast(ev, &wire));
  Event out;
  ASSERT_EQ(f.rx_route->TryUp(wire.Flatten(), 6, 0, &out), RoutePair::UpResult::kDelivered);
  EXPECT_EQ(out.payload.Flatten().view(), "by-hand");
}

TEST(HandTest, SendAfterDeliverSkipsCcp) {
  BypassFixture f(FourLayerStack());
  std::string error;
  auto hand = Hand4Bypass::Create(f.rx.get(), &error);
  ASSERT_NE(hand, nullptr) << error;

  // Deliver one message through the hand bypass...
  Event ev = Event::Cast(Iovec(Bytes::CopyString("ping")));
  Iovec wire;
  ASSERT_TRUE(f.tx_route->TryDown(ev, &wire, nullptr));
  Event out;
  ASSERT_EQ(hand->TryUpCast(wire.Flatten(), 6, 0, &out), RoutePair::UpResult::kDelivered);

  // ...then disable the stack: the next down cast must still go through
  // (the send-after-deliver optimization skips the CCP, exactly the paper's
  // "it may not be a correct assumption" caveat).
  auto* bottom = static_cast<BottomFast*>(f.rx->FindLayer(LayerId::kBottom)->FastState());
  bottom->enabled = 0;
  Event pong = Event::Cast(Iovec(Bytes::CopyString("pong")));
  Iovec wire2;
  EXPECT_TRUE(hand->TryDownCast(pong, &wire2));
  // Without the skip flag the CCP refuses.
  Event pong2 = Event::Cast(Iovec(Bytes::CopyString("pong2")));
  EXPECT_FALSE(hand->TryDownCast(pong2, &wire2));
}

TEST(CcpStatsTest, HitAndMissRatesTracked) {
  BypassFixture f(TenLayerStack());
  // Two fast-path sends, then move the token away for two misses.
  for (int i = 0; i < 2; i++) {
    Event ev = Event::Cast(Iovec(Bytes::CopyString("ok")));
    Iovec wire;
    ASSERT_TRUE(f.tx_route->TryDown(ev, &wire, nullptr));
  }
  auto* total = static_cast<TotalLayer*>(f.tx->FindLayer(LayerId::kTotal));
  total->fast().token_holder = 1;
  for (int i = 0; i < 2; i++) {
    Event ev = Event::Cast(Iovec(Bytes::CopyString("no")));
    Iovec wire;
    EXPECT_FALSE(f.tx_route->TryDown(ev, &wire, nullptr));
  }
  const RoutePair::CcpStats& stats = f.tx_route->ccp_stats();
  EXPECT_EQ(stats.down_hits, 2u);
  EXPECT_EQ(stats.down_misses, 2u);
  EXPECT_DOUBLE_EQ(stats.DownHitRate(), 0.5);
  // The hit rate shows up in the rendered theorem.
  EXPECT_NE(f.tx_route->Describe().find("ccp(down 50% hit"), std::string::npos);
}

TEST(TheoremTest, RulesRegisteredForAllBenchedLayers) {
  for (LayerId id : TenLayerStack()) {
    for (FCase c : {FCase::kDnCast, FCase::kDnSend, FCase::kUpCast, FCase::kUpSend}) {
      EXPECT_NE(FindBypassRule(id, c), nullptr)
          << LayerIdName(id) << " " << FCaseName(c);
    }
  }
  EXPECT_EQ(FindBypassRule(LayerId::kSuspect, FCase::kDnCast), nullptr);
}

TEST(TheoremTest, FieldPlansMatchDescriptors) {
  // Every registered rule with a header plan must match its layer's
  // descriptor field-for-field (the compiler checks this lazily; the test
  // checks it exhaustively).
  for (size_t i = 1; i < kLayerIdCount; i++) {
    LayerId id = static_cast<LayerId>(i);
    for (FCase c : {FCase::kDnCast, FCase::kDnSend, FCase::kUpCast, FCase::kUpSend}) {
      const BypassRule* rule = FindBypassRule(id, c);
      if (rule == nullptr || rule->fields.empty()) {
        continue;
      }
      const HeaderDescriptor& desc = HeaderDescriptorFor(id);
      EXPECT_EQ(rule->fields.size(), desc.fields.size())
          << LayerIdName(id) << " " << FCaseName(c);
    }
  }
}

}  // namespace
}  // namespace ensemble
