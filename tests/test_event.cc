// Unit tests: events, header stacks, views.

#include <gtest/gtest.h>

#include "src/event/event.h"
#include "src/layers/mnak.h"
#include "src/layers/total.h"

namespace ensemble {
namespace {

TEST(ViewTest, RankOfFindsMembers) {
  View v;
  v.members = {EndpointId{10}, EndpointId{20}, EndpointId{30}};
  EXPECT_EQ(v.RankOf(EndpointId{10}), 0);
  EXPECT_EQ(v.RankOf(EndpointId{30}), 2);
  EXPECT_EQ(v.RankOf(EndpointId{99}), kNoRank);
  EXPECT_EQ(v.nmembers(), 3);
}

TEST(ViewTest, ViewIdOrdering) {
  ViewId a{1, 5};
  ViewId b{1, 6};
  ViewId c{2, 0};
  EXPECT_LT(a, b);
  EXPECT_LT(b, c);
  EXPECT_EQ(a, (ViewId{1, 5}));
}

TEST(EventTest, FactoriesSetFields) {
  Event cast = Event::Cast(Iovec(Bytes::CopyString("p")));
  EXPECT_EQ(cast.type, EventType::kCast);
  EXPECT_EQ(cast.payload.size(), 1u);

  Event send = Event::Send(3, Iovec());
  EXPECT_EQ(send.type, EventType::kSend);
  EXPECT_EQ(send.dest, 3);

  Event timer = Event::Timer(Millis(7));
  EXPECT_EQ(timer.type, EventType::kTimer);
  EXPECT_EQ(timer.time, Millis(7));

  Event dc = Event::DeliverCast(2, Iovec());
  EXPECT_EQ(dc.type, EventType::kDeliverCast);
  EXPECT_EQ(dc.origin, 2);
  EXPECT_TRUE(dc.IsMessage());
  EXPECT_FALSE(timer.IsMessage());
}

TEST(EventTest, ToStringMentionsKeyFields) {
  Event ev = Event::Send(4, Iovec(Bytes::CopyString("abc")));
  ev.origin = 1;
  std::string s = ev.ToString();
  EXPECT_NE(s.find("Send"), std::string::npos);
  EXPECT_NE(s.find("dst=4"), std::string::npos);
  EXPECT_NE(s.find("len=3"), std::string::npos);
}

TEST(HeaderStackTest, PushPopRoundTrip) {
  HeaderStack h;
  h.Push(LayerId::kMnak, MnakHeader{kMnakData, 7, 0, 0});
  h.Push(LayerId::kTotal, TotalHeader{kTotalData, 42});
  EXPECT_EQ(h.depth(), 2u);
  EXPECT_EQ(h.TopLayer(), LayerId::kTotal);

  TotalHeader t = h.Pop<TotalHeader>(LayerId::kTotal);
  EXPECT_EQ(t.gseq, 42u);
  MnakHeader m = h.Pop<MnakHeader>(LayerId::kMnak);
  EXPECT_EQ(m.seqno, 7u);
  EXPECT_TRUE(h.empty());
}

TEST(HeaderStackTest, PeekDoesNotPop) {
  HeaderStack h;
  h.Push(LayerId::kMnak, MnakHeader{kMnakData, 9, 0, 0});
  MnakHeader peeked;
  EXPECT_TRUE(h.PeekTop(LayerId::kMnak, &peeked));
  EXPECT_EQ(peeked.seqno, 9u);
  EXPECT_EQ(h.depth(), 1u);
  TotalHeader wrong;
  EXPECT_FALSE(h.PeekTop(LayerId::kTotal, &wrong));
}

TEST(HeaderStackTest, CopySemanticsIndependent) {
  HeaderStack a;
  a.Push(LayerId::kMnak, MnakHeader{kMnakData, 1, 0, 0});
  HeaderStack b = a;
  b.Push(LayerId::kTotal, TotalHeader{kTotalData, 2});
  EXPECT_EQ(a.depth(), 1u);
  EXPECT_EQ(b.depth(), 2u);
  EXPECT_FALSE(a == b);
  HeaderStack c = a;
  EXPECT_TRUE(a == c);
}

TEST(HeaderStackTest, EqualityComparesContent) {
  HeaderStack a, b;
  a.Push(LayerId::kMnak, MnakHeader{kMnakData, 5, 0, 0});
  b.Push(LayerId::kMnak, MnakHeader{kMnakData, 6, 0, 0});
  EXPECT_FALSE(a == b);
  HeaderStack c;
  c.Push(LayerId::kMnak, MnakHeader{kMnakData, 5, 0, 0});
  EXPECT_TRUE(a == c);
}

TEST(HeaderStackTest, EntryIterationBottomFirst) {
  HeaderStack h;
  h.Push(LayerId::kTotal, TotalHeader{kTotalData, 1});
  h.Push(LayerId::kMnak, MnakHeader{kMnakData, 2, 0, 0});
  ASSERT_EQ(h.entry_count(), 2u);
  EXPECT_EQ(h.entry(0).layer, LayerId::kTotal);  // Pushed first.
  EXPECT_EQ(h.entry(1).layer, LayerId::kMnak);
  EXPECT_GT(h.arena_bytes(), 0u);
}

TEST(HeaderStackTest, PushRawEquivalentToTypedPushAfterNormalization) {
  // PushRaw's contract: callers hand it padding-normalized bytes (the
  // unmarshalers build headers in zeroed scratch buffers).
  HeaderStack typed, raw;
  MnakHeader hdr{kMnakData, 33, 1, 2};
  typed.Push(LayerId::kMnak, hdr);
  uint8_t buf[sizeof(MnakHeader)];
  std::memcpy(buf, &hdr, sizeof(hdr));
  ZeroHeaderPadding(LayerId::kMnak, buf, sizeof(buf));
  raw.PushRaw(LayerId::kMnak, buf, sizeof(buf));
  EXPECT_TRUE(typed == raw);
  MnakHeader out = raw.Pop<MnakHeader>(LayerId::kMnak);
  EXPECT_EQ(out.seqno, 33u);
}

TEST(HeaderStackDeathTest, MismatchedPopAborts) {
  HeaderStack h;
  h.Push(LayerId::kMnak, MnakHeader{kMnakData, 1, 0, 0});
  EXPECT_DEATH(h.Pop<TotalHeader>(LayerId::kTotal), "header mismatch");
  HeaderStack empty;
  EXPECT_DEATH(empty.Pop<MnakHeader>(LayerId::kMnak), "underflow");
}

TEST(LayerIdTest, NamesAreDistinctAndStable) {
  EXPECT_STREQ(LayerIdName(LayerId::kMnak), "mnak");
  EXPECT_STREQ(LayerIdName(LayerId::kBottom), "bottom");
  EXPECT_STREQ(EventTypeName(EventType::kDeliverCast), "DeliverCast");
  // All enum values have a name that is not "?".
  for (size_t i = 1; i < kLayerIdCount; i++) {
    EXPECT_STRNE(LayerIdName(static_cast<LayerId>(i)), "?");
  }
}

}  // namespace
}  // namespace ensemble
