// Edge-case unit tests for the boundary layers (bottom, top, intra) and for
// miscellaneous event plumbing not covered by the protocol-focused suites.

#include <gtest/gtest.h>

#include "src/layers/bottom.h"
#include "src/layers/intra.h"
#include "src/layers/top.h"
#include "src/marshal/wire.h"
#include "tests/layer_tester.h"

namespace ensemble {
namespace {

// ---------------------------------------------------------------------------
// bottom
// ---------------------------------------------------------------------------

TEST(BottomTest, StampsViewCounterOnOutgoing) {
  LayerTester t(LayerId::kBottom, 2, 0);
  auto& out = t.Dn(Event::Cast(LayerTester::Payload("m")));
  ASSERT_EQ(out.dn.size(), 1u);
  BottomHeader hdr = out.dn[0].hdrs.Pop<BottomHeader>(LayerId::kBottom);
  EXPECT_EQ(hdr.view_ctr, 1u);  // The tester's initial view counter.
}

TEST(BottomTest, DropsStaleViewTraffic) {
  LayerTester t(LayerId::kBottom, 2, 0);
  Event stale = Event::DeliverCast(1, LayerTester::Payload("old"));
  stale.hdrs.Push(LayerId::kBottom, BottomHeader{0, 99});  // Wrong counter.
  EXPECT_TRUE(t.Up(std::move(stale)).up.empty());

  Event fresh = Event::DeliverCast(1, LayerTester::Payload("new"));
  fresh.hdrs.Push(LayerId::kBottom, BottomHeader{0, 1});
  EXPECT_EQ(t.Up(std::move(fresh)).up.size(), 1u);
}

TEST(BottomTest, DisabledUntilInitAndSwallowsControlEvents) {
  LayerParams params;
  auto layer = CreateLayer(LayerId::kBottom, params);
  CollectSink sink;
  // Before Init the layer is disabled: messages are dropped.
  layer->Dn(Event::Cast(Iovec(Bytes::CopyString("early"))), sink);
  EXPECT_TRUE(sink.dn.empty());
  // Non-message down events are consumed (bottom of the stack).
  layer->Dn(Event::Timer(Millis(1)), sink);
  layer->Dn(Event::OfType(EventType::kBlockOk), sink);
  layer->Dn(Event::OfType(EventType::kLeave), sink);
  EXPECT_TRUE(sink.dn.empty());
  EXPECT_TRUE(sink.up.empty());
}

TEST(BottomTest, ViewEventReinitializesCounter) {
  LayerTester t(LayerId::kBottom, 2, 0);
  auto v = std::make_shared<View>();
  v->vid = ViewId{0, 7};
  v->members = {EndpointId{1}, EndpointId{2}};
  Event nv = Event::OfType(EventType::kView);
  nv.view = v;
  t.Dn(std::move(nv));  // Consumed at the bottom after re-initializing.
  auto& out = t.Dn(Event::Cast(LayerTester::Payload("m")));
  BottomHeader hdr = out.dn[0].hdrs.Pop<BottomHeader>(LayerId::kBottom);
  EXPECT_EQ(hdr.view_ctr, 7u);
}

// ---------------------------------------------------------------------------
// top
// ---------------------------------------------------------------------------

TEST(TopTest, AutoAnswersBlockAndSwallowsStable) {
  LayerTester t(LayerId::kTop, 2, 0);
  auto& blocked = t.Up(Event::OfType(EventType::kBlock));
  EXPECT_EQ(blocked.up.size(), 1u);  // The app still hears about it.
  ASSERT_EQ(blocked.dn.size(), 1u);
  EXPECT_EQ(blocked.dn[0].type, EventType::kBlockOk);

  Event stable = Event::OfType(EventType::kStable);
  stable.vec = {1, 2};
  auto& out = t.Up(std::move(stable));
  EXPECT_TRUE(out.up.empty());  // Internal bookkeeping, not for the app.
}

TEST(TopTest, PassesMessagesBothWays) {
  LayerTester t(LayerId::kTop, 2, 0);
  EXPECT_EQ(t.Dn(Event::Cast(LayerTester::Payload("down"))).dn.size(), 1u);
  EXPECT_EQ(t.Up(Event::DeliverCast(1, LayerTester::Payload("up"))).up.size(), 1u);
}

// ---------------------------------------------------------------------------
// intra
// ---------------------------------------------------------------------------

Event ViewAnnouncement(Rank from, uint64_t coord, uint64_t counter,
                       const std::vector<uint64_t>& members) {
  WireWriter w;
  w.U64(coord);
  w.U64(counter);
  w.U16(static_cast<uint16_t>(members.size()));
  for (uint64_t m : members) {
    w.U64(m);
  }
  Event ev = Event::DeliverCast(from, Iovec(w.Take()));
  ev.hdrs.Push(LayerId::kIntra, IntraHeader{kIntraView});
  return ev;
}

TEST(IntraTest, InstallsNewerViewUpAndDown) {
  LayerTester t(LayerId::kIntra, 3, 1);  // We are endpoint 2 (rank 1).
  auto& out = t.Up(ViewAnnouncement(0, 1, 2, {1, 2}));
  bool up_view = false;
  bool dn_view = false;
  for (const Event& ev : out.up) {
    up_view |= ev.type == EventType::kView && ev.view->vid.counter == 2;
  }
  for (const Event& ev : out.dn) {
    dn_view |= ev.type == EventType::kView && ev.view->vid.counter == 2;
  }
  EXPECT_TRUE(up_view);
  EXPECT_TRUE(dn_view);
}

TEST(IntraTest, RejectsStaleViewAnnouncements) {
  LayerTester t(LayerId::kIntra, 3, 1);
  auto& out = t.Up(ViewAnnouncement(0, 1, 1, {1, 2}));  // Same counter: stale.
  EXPECT_TRUE(out.up.empty());
  EXPECT_TRUE(out.dn.empty());
}

TEST(IntraTest, ExcludedMemberExits) {
  LayerTester t(LayerId::kIntra, 3, 2);  // We are endpoint 3.
  auto& out = t.Up(ViewAnnouncement(0, 1, 2, {1, 2}));  // We are not in it.
  ASSERT_EQ(out.up.size(), 1u);
  EXPECT_EQ(out.up[0].type, EventType::kExit);
}

TEST(IntraTest, RejectsMalformedViewPayload) {
  LayerTester t(LayerId::kIntra, 3, 1);
  Event ev = Event::DeliverCast(0, LayerTester::Payload("junk"));
  ev.hdrs.Push(LayerId::kIntra, IntraHeader{kIntraView});
  auto& out = t.Up(std::move(ev));
  EXPECT_TRUE(out.up.empty());
  EXPECT_TRUE(out.dn.empty());
}

TEST(IntraTest, CoordinatorStartsFlushOnSuspicion) {
  LayerTester t(LayerId::kIntra, 3, 0);  // Rank 0: coordinator from Init.
  Event init_elect = Event::OfType(EventType::kElect);
  t.Up(std::move(init_elect));
  Event sus = Event::OfType(EventType::kSuspect);
  sus.origin = 2;
  auto& out = t.Up(std::move(sus));
  bool block_sent = false;
  for (const Event& ev : out.dn) {
    block_sent |= ev.type == EventType::kBlock;
  }
  EXPECT_TRUE(block_sent);
  EXPECT_TRUE(t.As<IntraLayer>().view_change_in_progress());
}

TEST(IntraTest, NonCoordinatorIgnoresSuspicion) {
  LayerTester t(LayerId::kIntra, 3, 1);
  Event sus = Event::OfType(EventType::kSuspect);
  sus.origin = 2;
  auto& out = t.Up(std::move(sus));
  for (const Event& ev : out.dn) {
    EXPECT_NE(ev.type, EventType::kBlock);
  }
  EXPECT_FALSE(t.As<IntraLayer>().view_change_in_progress());
}

}  // namespace
}  // namespace ensemble
