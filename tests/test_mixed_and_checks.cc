// Tests: mixed-mode groups (optimized and plain members interoperating) and
// the total_check checking layer.

#include <gtest/gtest.h>

#include "src/app/harness.h"
#include "src/layers/total_check.h"
#include "src/spec/monitors.h"
#include "tests/layer_tester.h"

namespace ensemble {
namespace {

TEST(MixedModeGroupTest, MachSenderFuncReceiverRecoveredByNaks) {
  // A MACH sender broadcasts compressed datagrams; the FUNC member cannot
  // decode them (no compiled routes) and drops them — but the sender's
  // watermark advertisements reveal the gap and the NAK retransmissions
  // travel the generic path, so reliability repairs the mode mismatch.
  HarnessConfig config;
  config.n = 3;
  config.ep.layers = TenLayerStack();
  config.ep.params.local_loopback = false;
  config.member_modes = {StackMode::kMachine, StackMode::kMachine, StackMode::kFunctional};
  GroupHarness g(config);
  g.StartAll();

  std::vector<std::string> sent;
  for (int i = 0; i < 12; i++) {
    sent.push_back("m" + std::to_string(i));
    g.CastFrom(0, sent.back());
    g.Run(Millis(1));
  }
  g.Run(Millis(400));

  // The MACH peer got everything on the fast path; the FUNC member got
  // everything via retransmission.
  EXPECT_EQ(g.CastPayloadsFrom(1, 0), sent);
  EXPECT_EQ(g.CastPayloadsFrom(2, 0), sent);
  EXPECT_GT(g.member(1).stats().bypass_up, 0u);
  EXPECT_EQ(g.member(2).stats().bypass_up, 0u);  // Never decoded compressed.
}

TEST(MixedModeGroupTest, AllThreeEnginesInOneGroup) {
  HarnessConfig config;
  config.n = 3;
  config.ep.layers = TenLayerStack();
  config.ep.params.local_loopback = true;
  config.member_modes = {StackMode::kMachine, StackMode::kImperative,
                         StackMode::kFunctional};
  GroupHarness g(config);
  g.StartAll();
  std::vector<std::vector<std::string>> sent(3);
  for (int i = 0; i < 15; i++) {
    int from = i % 3;
    sent[static_cast<size_t>(from)].push_back("x" + std::to_string(i));
    g.CastFrom(from, sent[static_cast<size_t>(from)].back());
    g.Run(Millis(2));
  }
  g.Run(Millis(600));
  MonitorResult fifo = CheckReliableFifo(g, sent, /*include_self=*/true);
  EXPECT_TRUE(fifo.ok) << fifo.ToString();
  MonitorResult agreement = CheckTotalOrderAgreement(g);
  EXPECT_TRUE(agreement.ok) << agreement.ToString();
}

// ---------------------------------------------------------------------------
// total_check
// ---------------------------------------------------------------------------

TEST(TotalCheckTest, CleanTotallyOrderedRunHasNoViolations) {
  // 11-layer stack with the checking layer above total.
  std::vector<LayerId> checked = {LayerId::kPartialAppl, LayerId::kTotalCheck,
                                  LayerId::kTotal,       LayerId::kLocal,
                                  LayerId::kCollect,     LayerId::kFrag,
                                  LayerId::kPt2ptw,      LayerId::kMflow,
                                  LayerId::kPt2pt,       LayerId::kMnak,
                                  LayerId::kBottom};
  HarnessConfig config;
  config.n = 3;
  config.net = NetworkConfig::Lossy(0.1, 0.05, 0.1, 71);
  config.ep.layers = checked;
  config.ep.params.local_loopback = true;
  GroupHarness g(config);
  g.StartAll();
  for (int i = 0; i < 20; i++) {
    g.CastFrom(i % 3, "c" + std::to_string(i));
    g.Run(Millis(1));
  }
  g.Run(Millis(600));
  for (int m = 0; m < 3; m++) {
    auto* check = static_cast<TotalCheckLayer*>(
        g.member(m).stack()->FindLayer(LayerId::kTotalCheck));
    ASSERT_NE(check, nullptr);
    EXPECT_EQ(check->violations(), 0u) << "member " << m;
  }
}

TEST(TotalCheckTest, CatchesBuggyTotalOrderInline) {
  // The same checked stack but with the buggy ordering layer: the checking
  // layer must light up on at least one member.
  std::vector<LayerId> checked = {LayerId::kPartialAppl, LayerId::kTotalCheck,
                                  LayerId::kTotalBuggy,  LayerId::kLocal,
                                  LayerId::kCollect,     LayerId::kFrag,
                                  LayerId::kPt2ptw,      LayerId::kMflow,
                                  LayerId::kPt2pt,       LayerId::kMnak,
                                  LayerId::kBottom};
  HarnessConfig config;
  config.n = 3;
  config.net = NetworkConfig::Perfect();
  config.net.jitter = Micros(300);
  config.net.seed = 13;
  config.ep.layers = checked;
  config.ep.params.local_loopback = true;
  GroupHarness g(config);
  g.StartAll();
  for (int i = 0; i < 30; i++) {
    g.CastFrom(0, "x" + std::to_string(i));
    g.CastFrom(1, "y" + std::to_string(i));
    g.Run(Micros(150));
  }
  g.Run(Millis(300));
  uint64_t total_violations = 0;
  for (int m = 0; m < 3; m++) {
    auto* check = static_cast<TotalCheckLayer*>(
        g.member(m).stack()->FindLayer(LayerId::kTotalCheck));
    total_violations += check->violations();
  }
  EXPECT_GT(total_violations, 0u);
}

TEST(TotalCheckTest, UnitLevelViolationDetection) {
  LayerTester t(LayerId::kTotalCheck, 2, 0);
  // A delivery claiming its sender had already delivered 3 messages, arriving
  // when we have delivered none: causality under total order is broken.
  Event ev = Event::DeliverCast(1, LayerTester::Payload("m"));
  ev.hdrs.Push(LayerId::kTotalCheck, TotalCheckHeader{3});
  t.Up(std::move(ev));
  EXPECT_EQ(t.As<TotalCheckLayer>().violations(), 1u);
  // A consistent one is fine.
  Event ok = Event::DeliverCast(1, LayerTester::Payload("m"));
  ok.hdrs.Push(LayerId::kTotalCheck, TotalCheckHeader{1});
  t.Up(std::move(ok));
  EXPECT_EQ(t.As<TotalCheckLayer>().violations(), 1u);
}

}  // namespace
}  // namespace ensemble
