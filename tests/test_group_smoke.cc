// End-to-end smoke tests: whole groups exchanging multicast and
// point-to-point traffic in every execution mode, over perfect and lossy
// networks.

#include <gtest/gtest.h>

#include "src/app/harness.h"

namespace ensemble {
namespace {

HarnessConfig BaseConfig(StackMode mode, std::vector<LayerId> layers) {
  HarnessConfig c;
  c.n = 2;
  c.net = NetworkConfig::Perfect();
  c.ep.mode = mode;
  c.ep.layers = std::move(layers);
  c.ep.params.local_loopback = false;
  return c;
}

class GroupSmokeTest : public ::testing::TestWithParam<StackMode> {};

TEST_P(GroupSmokeTest, TenLayerCastDelivers) {
  GroupHarness g(BaseConfig(GetParam(), TenLayerStack()));
  g.StartAll();
  g.CastFrom(0, "hello");
  g.CastFrom(0, "world");
  g.Run(Millis(50));
  EXPECT_EQ(g.CastPayloads(1), (std::vector<std::string>{"hello", "world"}));
  EXPECT_TRUE(g.CastPayloads(0).empty());  // Loopback off.
}

TEST_P(GroupSmokeTest, FourLayerCastDelivers) {
  GroupHarness g(BaseConfig(GetParam(), FourLayerStack()));
  g.StartAll();
  for (int i = 0; i < 10; i++) {
    g.CastFrom(0, "m" + std::to_string(i));
  }
  g.Run(Millis(50));
  ASSERT_EQ(g.CastPayloads(1).size(), 10u);
  EXPECT_EQ(g.CastPayloads(1)[0], "m0");
  EXPECT_EQ(g.CastPayloads(1)[9], "m9");
}

TEST_P(GroupSmokeTest, FourLayerSendDelivers) {
  GroupHarness g(BaseConfig(GetParam(), FourLayerStack()));
  g.StartAll();
  g.SendFrom(0, 1, "p2p-a");
  g.SendFrom(1, 0, "p2p-b");
  g.Run(Millis(50));
  ASSERT_EQ(g.deliveries(1).size(), 1u);
  EXPECT_EQ(g.deliveries(1)[0].payload, "p2p-a");
  EXPECT_EQ(g.deliveries(1)[0].type, EventType::kDeliverSend);
  ASSERT_EQ(g.deliveries(0).size(), 1u);
  EXPECT_EQ(g.deliveries(0)[0].payload, "p2p-b");
}

TEST_P(GroupSmokeTest, TenLayerSendDelivers) {
  GroupHarness g(BaseConfig(GetParam(), TenLayerStack()));
  g.StartAll();
  g.SendFrom(0, 1, "x");
  g.Run(Millis(50));
  ASSERT_EQ(g.deliveries(1).size(), 1u);
  EXPECT_EQ(g.deliveries(1)[0].payload, "x");
}

TEST_P(GroupSmokeTest, BidirectionalTraffic) {
  // Two senders share the total-order token, so members must deliver their
  // own casts (local loopback) for the global sequence to advance — the
  // 10-layer stack's `local` layer provides exactly that.
  HarnessConfig c = BaseConfig(GetParam(), TenLayerStack());
  c.ep.params.local_loopback = true;
  GroupHarness g(c);
  g.StartAll();
  for (int i = 0; i < 20; i++) {
    g.CastFrom(0, "a" + std::to_string(i));
    g.Run(Micros(300));
    g.CastFrom(1, "b" + std::to_string(i));
    g.Run(Micros(300));
  }
  g.Run(Millis(100));
  EXPECT_EQ(g.CastPayloadsFrom(1, 0).size(), 20u);
  EXPECT_EQ(g.CastPayloadsFrom(0, 1).size(), 20u);
}

INSTANTIATE_TEST_SUITE_P(AllModes, GroupSmokeTest,
                         ::testing::Values(StackMode::kImperative, StackMode::kFunctional,
                                           StackMode::kMachine),
                         [](const auto& info) { return StackModeName(info.param); });

TEST(HandModeTest, FourLayerCastAndSend) {
  GroupHarness g(BaseConfig(StackMode::kHand, FourLayerStack()));
  g.StartAll();
  for (int i = 0; i < 10; i++) {
    g.CastFrom(0, "m" + std::to_string(i));
  }
  g.SendFrom(1, 0, "reply");
  g.Run(Millis(50));
  EXPECT_EQ(g.CastPayloads(1).size(), 10u);
  ASSERT_EQ(g.deliveries(0).size(), 1u);
  EXPECT_EQ(g.deliveries(0)[0].payload, "reply");
  // The fast path actually ran.
  EXPECT_GT(g.member(0).stats().bypass_down, 0u);
  EXPECT_GT(g.member(1).stats().bypass_up, 0u);
}

TEST(MachSmokeTest, BypassHitsOnCommonCase) {
  GroupHarness g(BaseConfig(StackMode::kMachine, TenLayerStack()));
  g.StartAll();
  for (int i = 0; i < 8; i++) {
    g.CastFrom(0, "m");
    g.Run(Millis(1));
  }
  g.Run(Millis(20));
  const auto& tx = g.member(0).stats();
  const auto& rx = g.member(1).stats();
  EXPECT_EQ(tx.bypass_down, 8u);
  EXPECT_EQ(tx.bypass_down_miss, 0u);
  EXPECT_EQ(rx.bypass_up, 8u);
  EXPECT_EQ(rx.delivered, 8u);
}

TEST(MachSmokeTest, LoopbackSplitDeliversOwnCasts) {
  HarnessConfig c = BaseConfig(StackMode::kMachine, TenLayerStack());
  c.ep.params.local_loopback = true;
  GroupHarness g(c);
  g.StartAll();
  g.CastFrom(0, "self");
  g.Run(Millis(20));
  EXPECT_EQ(g.CastPayloads(0), (std::vector<std::string>{"self"}));
  EXPECT_EQ(g.CastPayloads(1), (std::vector<std::string>{"self"}));
}

TEST(MixedModeTest, MachTalksToFunc) {
  // Interop: compressed datagrams are understood by a FUNC receiver through
  // the conn-table reconstruction path only if it also compiled routes; a
  // FUNC endpoint has none, so the MACH sender's normal-path traffic must
  // still get through.  Here the MACH sender's CCP always holds, so we give
  // the receiver MACH mode too but drive deliveries through its fallback by
  // sending from FUNC.
  HarnessConfig c = BaseConfig(StackMode::kMachine, TenLayerStack());
  GroupHarness g(c);
  g.StartAll();
  // Make member 1 send generically by forcing its normal path: FUNC mode is
  // per-endpoint config, so emulate by casting through the stack directly.
  g.member(1).stack()->Down(Event::Cast(Iovec(Bytes::CopyString("generic"))));
  g.Run(Millis(20));
  EXPECT_EQ(g.CastPayloads(0), (std::vector<std::string>{"generic"}));
}

TEST(LossyNetworkTest, TenLayerRecoversFifoUnderLossDupReorder) {
  HarnessConfig c = BaseConfig(StackMode::kFunctional, TenLayerStack());
  c.net = NetworkConfig::Lossy(0.15, 0.10, 0.20, /*seed=*/42);
  GroupHarness g(c);
  g.StartAll();
  std::vector<std::string> sent;
  for (int i = 0; i < 50; i++) {
    std::string m = "m" + std::to_string(i);
    sent.push_back(m);
    g.CastFrom(0, m);
    g.Run(Micros(500));
  }
  g.Run(Millis(500));
  EXPECT_EQ(g.CastPayloadsFrom(1, 0), sent);
}

TEST(LossyNetworkTest, MachRecoversViaFallbackPath) {
  HarnessConfig c = BaseConfig(StackMode::kMachine, TenLayerStack());
  c.net = NetworkConfig::Lossy(0.15, 0.05, 0.15, /*seed=*/7);
  GroupHarness g(c);
  g.StartAll();
  std::vector<std::string> sent;
  for (int i = 0; i < 50; i++) {
    std::string m = "m" + std::to_string(i);
    sent.push_back(m);
    g.CastFrom(0, m);
    g.Run(Micros(500));
  }
  g.Run(Millis(500));
  EXPECT_EQ(g.CastPayloadsFrom(1, 0), sent);
  // Loss must have pushed some deliveries off the fast path.
  EXPECT_GT(g.member(1).stats().bypass_up_fallback, 0u);
}

}  // namespace
}  // namespace ensemble
