// Unit tests: flow control (mflow, pt2ptw) and fragmentation (frag).

#include <gtest/gtest.h>

#include "src/layers/frag.h"
#include "src/layers/mflow.h"
#include "src/layers/pt2ptw.h"
#include "src/util/rng.h"
#include "tests/layer_tester.h"

namespace ensemble {
namespace {

LayerParams SmallWindow() {
  LayerParams p;
  p.mflow_window = 8;
  p.pt2pt_window = 8;
  return p;
}

// --------------------------------------------------------------------------
// mflow
// --------------------------------------------------------------------------

TEST(MflowTest, PassesCastsWhileCreditLasts) {
  LayerTester t(LayerId::kMflow, 2, 0, SmallWindow());
  for (int i = 0; i < 8; i++) {
    EXPECT_EQ(t.Dn(Event::Cast(LayerTester::Payload("m"))).dn.size(), 1u) << i;
  }
  // Window exhausted: the ninth cast queues.
  EXPECT_TRUE(t.Dn(Event::Cast(LayerTester::Payload("m"))).dn.empty());
  EXPECT_EQ(t.As<MflowLayer>().QueuedCasts(), 1u);
}

TEST(MflowTest, CreditGrantReleasesQueuedCasts) {
  LayerTester t(LayerId::kMflow, 2, 0, SmallWindow());
  for (int i = 0; i < 10; i++) {
    t.Dn(Event::Cast(LayerTester::Payload("m" + std::to_string(i))));
  }
  EXPECT_EQ(t.As<MflowLayer>().QueuedCasts(), 2u);
  Event grant = Event::DeliverSend(1, Iovec());
  grant.hdrs.Push(LayerId::kMflow, MflowHeader{kMflowCredit, 12});
  auto& out = t.Up(std::move(grant));
  ASSERT_EQ(out.dn.size(), 2u);
  EXPECT_EQ(out.dn[0].payload.Flatten().view(), "m8");
  EXPECT_EQ(t.As<MflowLayer>().QueuedCasts(), 0u);
}

TEST(MflowTest, ReceiverGrantsAfterHalfWindow) {
  LayerTester t(LayerId::kMflow, 2, 1, SmallWindow());
  // Consume 4 casts (window/2) from rank 0: the 4th triggers a grant.
  for (uint32_t i = 0; i < 3; i++) {
    Event data = Event::DeliverCast(0, LayerTester::Payload("d"));
    data.hdrs.Push(LayerId::kMflow, MflowHeader{kMflowData, 0});
    EXPECT_TRUE(t.Up(std::move(data)).dn.empty());
  }
  Event data = Event::DeliverCast(0, LayerTester::Payload("d"));
  data.hdrs.Push(LayerId::kMflow, MflowHeader{kMflowData, 0});
  auto& out = t.Up(std::move(data));
  ASSERT_EQ(out.dn.size(), 1u);
  EXPECT_EQ(out.dn[0].dest, 0);
  MflowHeader hdr = out.dn[0].hdrs.Pop<MflowHeader>(LayerId::kMflow);
  EXPECT_EQ(hdr.kind, kMflowCredit);
  EXPECT_EQ(hdr.credits, 12u);  // consumed(4) + window(8).
}

TEST(MflowTest, MinOverPeersGoverns) {
  LayerTester t(LayerId::kMflow, 3, 0, SmallWindow());
  // Peer 1 grants more; peer 2 stays at the initial window: min rules.
  Event grant = Event::DeliverSend(1, Iovec());
  grant.hdrs.Push(LayerId::kMflow, MflowHeader{kMflowCredit, 100});
  t.Up(std::move(grant));
  int sent = 0;
  for (int i = 0; i < 20; i++) {
    sent += t.Dn(Event::Cast(LayerTester::Payload("m"))).dn.empty() ? 0 : 1;
  }
  EXPECT_EQ(sent, 8);  // Still limited by peer 2's initial window.
}

TEST(MflowTest, SingletonGroupIsUnthrottled) {
  LayerTester t(LayerId::kMflow, 1, 0, SmallWindow());
  for (int i = 0; i < 50; i++) {
    EXPECT_EQ(t.Dn(Event::Cast(LayerTester::Payload("m"))).dn.size(), 1u);
  }
}

// --------------------------------------------------------------------------
// pt2ptw
// --------------------------------------------------------------------------

TEST(Pt2ptwTest, WindowPerDestination) {
  LayerTester t(LayerId::kPt2ptw, 3, 0, SmallWindow());
  for (int i = 0; i < 8; i++) {
    EXPECT_EQ(t.Dn(Event::Send(1, LayerTester::Payload("m"))).dn.size(), 1u);
  }
  EXPECT_TRUE(t.Dn(Event::Send(1, LayerTester::Payload("m"))).dn.empty());
  // Destination 2 has its own window.
  EXPECT_EQ(t.Dn(Event::Send(2, LayerTester::Payload("m"))).dn.size(), 1u);
  EXPECT_EQ(t.As<Pt2ptwLayer>().QueuedSends(), 1u);
}

TEST(Pt2ptwTest, CreditReleasesQueuedSends) {
  LayerTester t(LayerId::kPt2ptw, 2, 0, SmallWindow());
  for (int i = 0; i < 9; i++) {
    t.Dn(Event::Send(1, LayerTester::Payload("m" + std::to_string(i))));
  }
  Event grant = Event::DeliverSend(1, Iovec());
  grant.hdrs.Push(LayerId::kPt2ptw, Pt2ptwHeader{kPt2ptwCredit, 16});
  auto& out = t.Up(std::move(grant));
  ASSERT_EQ(out.dn.size(), 1u);
  EXPECT_EQ(out.dn[0].payload.Flatten().view(), "m8");
}

TEST(Pt2ptwTest, ReceiverGrantsAfterHalfWindow) {
  LayerTester t(LayerId::kPt2ptw, 2, 1, SmallWindow());
  CollectSink* last = nullptr;
  for (uint32_t i = 0; i < 4; i++) {
    Event data = Event::DeliverSend(0, LayerTester::Payload("d"));
    data.hdrs.Push(LayerId::kPt2ptw, Pt2ptwHeader{kPt2ptwData, 0});
    last = &t.Up(std::move(data));
    EXPECT_EQ(last->up.size(), 1u);
  }
  ASSERT_EQ(last->dn.size(), 1u);
  Pt2ptwHeader hdr = last->dn[0].hdrs.Pop<Pt2ptwHeader>(LayerId::kPt2ptw);
  EXPECT_EQ(hdr.kind, kPt2ptwCredit);
  EXPECT_EQ(hdr.credits, 12u);
}

TEST(Pt2ptwTest, CastsUntouched) {
  LayerTester t(LayerId::kPt2ptw, 2, 0, SmallWindow());
  auto& out = t.Dn(Event::Cast(LayerTester::Payload("c")));
  ASSERT_EQ(out.dn.size(), 1u);
  EXPECT_TRUE(out.dn[0].hdrs.empty());
}

// --------------------------------------------------------------------------
// frag
// --------------------------------------------------------------------------

LayerParams SmallMtu() {
  LayerParams p;
  p.frag_max = 10;
  return p;
}

TEST(FragTest, SmallPayloadPassesWhole) {
  LayerTester t(LayerId::kFrag, 2, 0, SmallMtu());
  auto& out = t.Dn(Event::Cast(LayerTester::Payload("tiny")));
  ASSERT_EQ(out.dn.size(), 1u);
  FragHeader hdr = out.dn[0].hdrs.Pop<FragHeader>(LayerId::kFrag);
  EXPECT_EQ(hdr.kind, kFragWhole);
}

TEST(FragTest, LargePayloadSplitsAtMtu) {
  LayerTester t(LayerId::kFrag, 2, 0, SmallMtu());
  auto& out = t.Dn(Event::Cast(LayerTester::Payload("0123456789abcdefghijKLM")));
  ASSERT_EQ(out.dn.size(), 3u);  // 23 bytes at mtu 10 -> 10+10+3.
  for (uint16_t i = 0; i < 3; i++) {
    FragHeader hdr = out.dn[i].hdrs.Pop<FragHeader>(LayerId::kFrag);
    EXPECT_EQ(hdr.kind, kFragPiece);
    EXPECT_EQ(hdr.frag_index, i);
    EXPECT_EQ(hdr.frag_count, 3);
  }
  EXPECT_EQ(out.dn[0].payload.Flatten().view(), "0123456789");
  EXPECT_EQ(out.dn[2].payload.Flatten().view(), "KLM");
}

TEST(FragTest, ReassemblesInOrder) {
  LayerTester tx(LayerId::kFrag, 2, 0, SmallMtu());
  LayerTester rx(LayerId::kFrag, 2, 1, SmallMtu());
  auto& pieces = tx.Dn(Event::Cast(LayerTester::Payload("the quick brown fox jumps")));
  std::vector<Event> deliveries;
  for (const Event& piece : pieces.dn) {
    Event up;
    up.type = EventType::kDeliverCast;
    up.origin = 0;
    up.payload = piece.payload;
    up.hdrs = piece.hdrs;
    auto& out = rx.Up(std::move(up));
    for (Event& d : out.up) {
      deliveries.push_back(std::move(d));
    }
  }
  ASSERT_EQ(deliveries.size(), 1u);
  EXPECT_EQ(deliveries[0].payload.Flatten().view(), "the quick brown fox jumps");
}

TEST(FragTest, ReassemblesOutOfOrderPieces) {
  LayerTester tx(LayerId::kFrag, 2, 0, SmallMtu());
  LayerTester rx(LayerId::kFrag, 2, 1, SmallMtu());
  auto pieces = tx.Dn(Event::Cast(LayerTester::Payload("abcdefghijklmnopqrstuv"))).dn;
  std::swap(pieces[0], pieces[2]);
  std::vector<std::string> got;
  for (const Event& piece : pieces) {
    Event up;
    up.type = EventType::kDeliverCast;
    up.origin = 0;
    up.payload = piece.payload;
    up.hdrs = piece.hdrs;
    for (Event& d : rx.Up(std::move(up)).up) {
      got.push_back(d.payload.Flatten().ToString());
    }
  }
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0], "abcdefghijklmnopqrstuv");
}

TEST(FragTest, InterleavedMessagesFromDifferentSenders) {
  LayerTester tx0(LayerId::kFrag, 3, 0, SmallMtu());
  LayerTester tx1(LayerId::kFrag, 3, 1, SmallMtu());
  LayerTester rx(LayerId::kFrag, 3, 2, SmallMtu());
  auto p0 = tx0.Dn(Event::Cast(LayerTester::Payload("sender zero's text"))).dn;
  auto p1 = tx1.Dn(Event::Cast(LayerTester::Payload("sender one's message"))).dn;
  std::vector<std::pair<Rank, Event>> wire;
  for (auto& p : p0) {
    wire.push_back({0, std::move(p)});
  }
  for (auto& p : p1) {
    wire.push_back({1, std::move(p)});
  }
  std::swap(wire[0], wire[2]);  // Interleave.
  std::vector<std::string> got;
  for (auto& [origin, piece] : wire) {
    Event up;
    up.type = EventType::kDeliverCast;
    up.origin = origin;
    up.payload = piece.payload;
    up.hdrs = piece.hdrs;
    for (Event& d : rx.Up(std::move(up)).up) {
      got.push_back(d.payload.Flatten().ToString());
    }
  }
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(rx.As<FragLayer>().PartialCount(), 0u);
}

TEST(FragTest, FragmentsAreZeroCopySlices) {
  LayerTester t(LayerId::kFrag, 2, 0, SmallMtu());
  Iovec payload(Bytes::CopyString("0123456789abcdefghij"));
  const uint8_t* base = payload.part(0).data();
  auto& out = t.Dn(Event::Cast(payload));
  ASSERT_EQ(out.dn.size(), 2u);
  EXPECT_EQ(out.dn[0].payload.part(0).data(), base);
  EXPECT_EQ(out.dn[1].payload.part(0).data(), base + 10);
}

}  // namespace
}  // namespace ensemble
