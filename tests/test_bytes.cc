// Unit tests: refcounted buffers, scatter-gather vectors, and the slab pool.

#include <gtest/gtest.h>

#include "src/util/bytes.h"
#include "src/util/pool.h"
#include "src/util/rng.h"

namespace ensemble {
namespace {

TEST(BytesTest, EmptyByDefault) {
  Bytes b;
  EXPECT_TRUE(b.empty());
  EXPECT_EQ(b.size(), 0u);
  EXPECT_EQ(b.data(), nullptr);
}

TEST(BytesTest, CopyPreservesContent) {
  Bytes b = Bytes::CopyString("hello world");
  EXPECT_EQ(b.size(), 11u);
  EXPECT_EQ(b.view(), "hello world");
}

TEST(BytesTest, CopyIsIndependentOfSource) {
  std::string source = "mutate me";
  Bytes b = Bytes::CopyString(source);
  source[0] = 'X';
  EXPECT_EQ(b.view(), "mutate me");
}

TEST(BytesTest, SliceSharesWithoutCopy) {
  Bytes b = Bytes::CopyString("0123456789");
  Bytes mid = b.Slice(3, 4);
  EXPECT_EQ(mid.view(), "3456");
  // Same underlying memory.
  EXPECT_EQ(mid.data(), b.data() + 3);
}

TEST(BytesTest, SliceClampsToBounds) {
  Bytes b = Bytes::CopyString("abc");
  EXPECT_EQ(b.Slice(1).view(), "bc");
  EXPECT_EQ(b.Slice(2, 100).view(), "c");
  EXPECT_TRUE(b.Slice(3).empty());
  EXPECT_TRUE(b.Slice(99, 1).empty());
}

TEST(BytesTest, SliceKeepsChunkAliveAfterParentDies) {
  Bytes tail;
  {
    Bytes b = Bytes::CopyString("longish buffer contents");
    tail = b.Slice(8);
  }
  EXPECT_EQ(tail.view(), "buffer contents");
}

TEST(BytesTest, CopyAndMoveSemantics) {
  Bytes a = Bytes::CopyString("x");
  Bytes b = a;             // Copy: both valid.
  EXPECT_EQ(a.view(), "x");
  EXPECT_EQ(b.view(), "x");
  Bytes c = std::move(a);  // Move: a emptied.
  EXPECT_TRUE(a.empty());
  EXPECT_EQ(c.view(), "x");
  b = c;                   // Copy-assign.
  c = std::move(b);        // Move-assign.
  EXPECT_EQ(c.view(), "x");
}

TEST(BytesTest, EqualityIsContentBased) {
  Bytes a = Bytes::CopyString("same");
  Bytes b = Bytes::CopyString("same");
  Bytes c = Bytes::CopyString("diff");
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a == c);
  EXPECT_EQ(Bytes(), Bytes());
}

TEST(IovecTest, AppendAccumulatesSizeSkippingEmpties) {
  Iovec v;
  v.Append(Bytes::CopyString("ab"));
  v.Append(Bytes());  // Ignored.
  v.Append(Bytes::CopyString("cde"));
  EXPECT_EQ(v.size(), 5u);
  EXPECT_EQ(v.part_count(), 2u);
}

TEST(IovecTest, FlattenConcatenates) {
  Iovec v;
  v.Append(Bytes::CopyString("ab"));
  v.Append(Bytes::CopyString("cd"));
  v.Prepend(Bytes::CopyString("zz"));
  EXPECT_EQ(v.Flatten().view(), "zzabcd");
}

TEST(IovecTest, FlattenSinglePartIsZeroCopy) {
  Iovec v(Bytes::CopyString("solo"));
  Bytes flat = v.Flatten();
  EXPECT_EQ(flat.data(), v.part(0).data());
}

TEST(IovecTest, SubRangeCrossesPartBoundaries) {
  Iovec v;
  v.Append(Bytes::CopyString("abc"));
  v.Append(Bytes::CopyString("def"));
  v.Append(Bytes::CopyString("ghi"));
  EXPECT_EQ(v.SubRange(2, 5).Flatten().view(), "cdefg");
  EXPECT_EQ(v.SubRange(0, 9).Flatten().view(), "abcdefghi");
  EXPECT_EQ(v.SubRange(8, 10).Flatten().view(), "i");
  EXPECT_TRUE(v.SubRange(9, 1).empty());
}

TEST(IovecTest, ContentEqualsIgnoresPartition) {
  Iovec a;
  a.Append(Bytes::CopyString("abc"));
  a.Append(Bytes::CopyString("def"));
  Iovec b;
  b.Append(Bytes::CopyString("abcd"));
  b.Append(Bytes::CopyString("ef"));
  Iovec c(Bytes::CopyString("abcdXf"));
  EXPECT_TRUE(a.ContentEquals(b));
  EXPECT_FALSE(a.ContentEquals(c));
}

TEST(PoolTest, RecyclesChunks) {
  BufferPool pool(128);
  {
    Bytes a = pool.Allocate(100);
    EXPECT_EQ(pool.stats().fresh_chunks, 1u);
  }
  // Released back: the next allocation reuses it.
  Bytes b = pool.Allocate(64);
  EXPECT_EQ(pool.stats().fresh_chunks, 1u);
  EXPECT_EQ(pool.stats().recycled, 1u);
}

TEST(PoolTest, OversizedRequestsFallThroughToHeap) {
  BufferPool pool(64);
  Bytes big = pool.Allocate(1000);
  EXPECT_EQ(big.size(), 1000u);
  EXPECT_EQ(pool.stats().allocations, 0u);  // Not served by the pool.
}

TEST(PoolTest, SlicesKeepPooledChunkCheckedOut) {
  BufferPool pool(64);
  Bytes slice;
  {
    Bytes a = pool.Allocate(32);
    std::memcpy(a.MutableData(), "0123456789abcdefghijklmnopqrstuv", 32);
    slice = a.Slice(4, 8);
  }
  // Chunk is still referenced by the slice: must not be recycled yet.
  EXPECT_EQ(pool.free_count(), 0u);
  EXPECT_EQ(slice.view(), "456789ab");
  slice = Bytes();
  EXPECT_EQ(pool.free_count(), 1u);
}

TEST(PoolTest, ZeroSizeAllocationIsEmpty) {
  BufferPool pool;
  EXPECT_TRUE(pool.Allocate(0).empty());
}

// Property sweep: random slice/append/flatten sequences preserve content.
class IovecPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(IovecPropertyTest, RandomSlicingPreservesContent) {
  Rng rng(GetParam());
  std::string reference;
  Iovec v;
  for (int i = 0; i < 50; i++) {
    size_t len = rng.Below(40) + 1;
    std::string part;
    for (size_t j = 0; j < len; j++) {
      part.push_back(static_cast<char>('a' + rng.Below(26)));
    }
    reference += part;
    v.Append(Bytes::CopyString(part));
  }
  ASSERT_EQ(v.size(), reference.size());
  EXPECT_EQ(v.Flatten().view(), reference);
  for (int i = 0; i < 30; i++) {
    size_t pos = rng.Below(reference.size());
    size_t n = rng.Below(reference.size() - pos) + 1;
    EXPECT_EQ(v.SubRange(pos, n).Flatten().view(), reference.substr(pos, n));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IovecPropertyTest, ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace ensemble
