// Unit tests: layer traits, the adjacency checker, and the property-driven
// stack builder (the paper's stack-calculation algorithm, §3.2).

#include <gtest/gtest.h>

#include <algorithm>

#include "src/stack/properties.h"
#include "src/stack/engine.h"

namespace ensemble {
namespace {

TEST(TraitsTest, EveryProductionLayerHasTraits) {
  for (LayerId id : TenLayerStack()) {
    const LayerTraits& t = TraitsFor(id);
    EXPECT_EQ(t.id, id);
  }
  EXPECT_EQ(TraitsFor(LayerId::kBottom).provides, kPropNet);
  EXPECT_TRUE(TraitsFor(LayerId::kMnak).provides & kPropReliableMcast);
}

TEST(AdjacencyTest, CanonicalStacksPass) {
  EXPECT_TRUE(CheckAdjacency(TenLayerStack()).ok);
  EXPECT_TRUE(CheckAdjacency(FourLayerStack()).ok);
}

TEST(AdjacencyTest, MembershipStackPasses) {
  std::vector<LayerId> stack = {LayerId::kPartialAppl, LayerId::kIntra, LayerId::kElect,
                                LayerId::kSync,        LayerId::kSuspect, LayerId::kPt2pt,
                                LayerId::kMnak,        LayerId::kBottom};
  StackCheck check = CheckAdjacency(stack);
  EXPECT_TRUE(check.ok) << check.ToString();
}

TEST(AdjacencyTest, MissingBottomRejected) {
  StackCheck check = CheckAdjacency({LayerId::kTop, LayerId::kMnak});
  EXPECT_FALSE(check.ok);
}

TEST(AdjacencyTest, MissingRequirementRejected) {
  // total requires reliable FIFO multicast below it; bottom alone is not
  // enough.
  StackCheck check = CheckAdjacency({LayerId::kTop, LayerId::kTotal, LayerId::kBottom});
  EXPECT_FALSE(check.ok);
  ASSERT_FALSE(check.errors.empty());
  EXPECT_NE(check.errors[0].find("total"), std::string::npos);
}

TEST(AdjacencyTest, OrderInversionRejected) {
  // mnak above total is canonically inverted.
  StackCheck check = CheckAdjacency(
      {LayerId::kTop, LayerId::kMnak, LayerId::kTotal, LayerId::kPt2pt, LayerId::kBottom});
  EXPECT_FALSE(check.ok);
}

TEST(AdjacencyTest, MissingAppInterfaceRejected) {
  StackCheck check = CheckAdjacency({LayerId::kMnak, LayerId::kBottom});
  EXPECT_FALSE(check.ok);
}

TEST(AdjacencyTest, DuplicateLayerRejected) {
  StackCheck check = CheckAdjacency(
      {LayerId::kTop, LayerId::kMnak, LayerId::kMnak, LayerId::kBottom});
  EXPECT_FALSE(check.ok);
}

TEST(AdjacencyTest, EmptyStackRejected) {
  EXPECT_FALSE(CheckAdjacency({}).ok);
}

TEST(BuilderTest, MinimalReliableMulticast) {
  StackCheck check;
  std::vector<LayerId> stack = BuildStackForProperties(kPropReliableMcast, &check);
  EXPECT_TRUE(check.ok) << check.ToString();
  ASSERT_FALSE(stack.empty());
  EXPECT_EQ(stack.front(), LayerId::kTop);
  EXPECT_EQ(stack.back(), LayerId::kBottom);
  EXPECT_NE(std::find(stack.begin(), stack.end(), LayerId::kMnak), stack.end());
  // Nothing gratuitous: no total order, no frag.
  EXPECT_EQ(std::find(stack.begin(), stack.end(), LayerId::kTotal), stack.end());
  EXPECT_EQ(std::find(stack.begin(), stack.end(), LayerId::kFrag), stack.end());
}

TEST(BuilderTest, TotalOrderPullsInDependencies) {
  StackCheck check;
  std::vector<LayerId> stack = BuildStackForProperties(kPropTotalOrder, &check);
  EXPECT_TRUE(check.ok) << check.ToString();
  // total needs reliable fifo mcast (mnak) and reliable p2p (pt2pt, for the
  // token traffic); the interface becomes partial_appl.
  EXPECT_NE(std::find(stack.begin(), stack.end(), LayerId::kTotal), stack.end());
  EXPECT_NE(std::find(stack.begin(), stack.end(), LayerId::kMnak), stack.end());
  EXPECT_NE(std::find(stack.begin(), stack.end(), LayerId::kPt2pt), stack.end());
  EXPECT_EQ(stack.front(), LayerId::kPartialAppl);
}

TEST(BuilderTest, FullRequestReproducesTenLayerShape) {
  StackCheck check;
  std::vector<LayerId> stack = BuildStackForProperties(
      kPropReliableMcast | kPropTotalOrder | kPropFlowMcast | kPropFlowP2P |
          kPropFragmentation | kPropStability | kPropSelfDelivery,
      &check);
  EXPECT_TRUE(check.ok) << check.ToString();
  EXPECT_EQ(stack, TenLayerStack());
}

TEST(BuilderTest, MembershipRequest) {
  StackCheck check;
  std::vector<LayerId> stack = BuildStackForProperties(kPropMembership, &check);
  EXPECT_TRUE(check.ok) << check.ToString();
  for (LayerId need : {LayerId::kIntra, LayerId::kElect, LayerId::kSync, LayerId::kSuspect}) {
    EXPECT_NE(std::find(stack.begin(), stack.end(), need), stack.end()) << LayerIdName(need);
  }
}

TEST(BuilderTest, SecurityProperties) {
  StackCheck check;
  std::vector<LayerId> stack =
      BuildStackForProperties(kPropPrivacy | kPropAuth | kPropReliableMcast, &check);
  EXPECT_TRUE(check.ok) << check.ToString();
  EXPECT_NE(std::find(stack.begin(), stack.end(), LayerId::kEncrypt), stack.end());
  EXPECT_NE(std::find(stack.begin(), stack.end(), LayerId::kSign), stack.end());
}

TEST(BuilderTest, BuiltStacksAlwaysPassAdjacency) {
  // Property sweep: every single-property request yields a checkable stack.
  for (uint32_t bit = 1; bit <= kPropAppInterface; bit <<= 1) {
    StackCheck check;
    std::vector<LayerId> stack = BuildStackForProperties(bit, &check);
    EXPECT_TRUE(check.ok) << PropertySetToString(bit) << ": " << check.ToString();
    EXPECT_FALSE(stack.empty()) << PropertySetToString(bit);
  }
}

TEST(BuilderTest, BuiltStacksActuallyWork) {
  // The built total-order stack is not just well-formed; it runs.
  StackCheck check;
  std::vector<LayerId> stack = BuildStackForProperties(
      kPropTotalOrder | kPropSelfDelivery | kPropStability, &check);
  ASSERT_TRUE(check.ok) << check.ToString();
  LayerParams params;
  auto s = BuildStack(EngineKind::kFunctional, stack, params, EndpointId{1});
  EXPECT_EQ(s->depth(), stack.size());
}

TEST(PropertyPrintingTest, SetToStringListsNames) {
  EXPECT_EQ(PropertySetToString(0), "none");
  std::string s = PropertySetToString(kPropTotalOrder | kPropNet);
  EXPECT_NE(s.find("TotalOrder"), std::string::npos);
  EXPECT_NE(s.find("Net"), std::string::npos);
}

}  // namespace
}  // namespace ensemble
