// Back-pressure integration tests: bursts far larger than the flow-control
// windows must be paced by credits, never lost, and never deadlocked.

#include <gtest/gtest.h>

#include "src/app/harness.h"
#include "src/layers/mflow.h"
#include "src/spec/monitors.h"

namespace ensemble {
namespace {

TEST(PressureTest, BurstLargerThanWindowIsPacedNotLost) {
  HarnessConfig config;
  config.n = 2;
  config.ep.layers = TenLayerStack();
  config.ep.params.local_loopback = false;
  config.ep.params.mflow_window = 8;  // 100-message burst >> window.
  GroupHarness g(config);
  g.StartAll();

  std::vector<std::string> sent;
  for (int i = 0; i < 100; i++) {
    sent.push_back("b" + std::to_string(i));
    g.CastFrom(0, sent.back());  // No Run() between: a true burst.
  }
  // Mid-burst, the sender must be holding messages back.
  auto* mflow = static_cast<MflowLayer*>(g.member(0).stack()->FindLayer(LayerId::kMflow));
  EXPECT_GT(mflow->QueuedCasts(), 0u);

  g.Run(Millis(500));
  EXPECT_EQ(g.CastPayloadsFrom(1, 0), sent);
  EXPECT_EQ(mflow->QueuedCasts(), 0u);
}

TEST(PressureTest, BurstUnderLossStillCompletes) {
  HarnessConfig config;
  config.n = 2;
  config.net = NetworkConfig::Lossy(0.15, 0.05, 0.1, 9090);
  config.ep.layers = TenLayerStack();
  config.ep.params.local_loopback = false;
  config.ep.params.mflow_window = 8;
  GroupHarness g(config);
  g.StartAll();
  std::vector<std::vector<std::string>> sent(2);
  for (int i = 0; i < 60; i++) {
    sent[0].push_back("b" + std::to_string(i));
    g.CastFrom(0, sent[0].back());
    if (i % 4 == 0) {
      g.Run(Micros(300));
    }
  }
  g.Run(Millis(2000));
  MonitorResult fifo = CheckReliableFifo(g, sent, false);
  EXPECT_TRUE(fifo.ok) << fifo.ToString();
}

TEST(PressureTest, Pt2ptBurstPacedByWindow) {
  HarnessConfig config;
  config.n = 2;
  config.ep.layers = TenLayerStack();
  config.ep.params.pt2pt_window = 8;
  GroupHarness g(config);
  g.StartAll();
  for (int i = 0; i < 50; i++) {
    g.SendFrom(0, 1, "p" + std::to_string(i));
  }
  g.Run(Millis(500));
  size_t sends = 0;
  for (const auto& d : g.deliveries(1)) {
    if (d.type == EventType::kDeliverSend) {
      EXPECT_EQ(d.payload, "p" + std::to_string(sends));
      sends++;
    }
  }
  EXPECT_EQ(sends, 50u);
}

TEST(PressureTest, MachBurstFallsBackWhenCreditsExhaust) {
  HarnessConfig config;
  config.n = 2;
  config.ep.mode = StackMode::kMachine;
  config.ep.layers = TenLayerStack();
  config.ep.params.local_loopback = false;
  config.ep.params.mflow_window = 8;
  GroupHarness g(config);
  g.StartAll();
  std::vector<std::string> sent;
  for (int i = 0; i < 40; i++) {
    sent.push_back("b" + std::to_string(i));
    g.CastFrom(0, sent.back());
  }
  g.Run(Millis(500));
  EXPECT_EQ(g.CastPayloadsFrom(1, 0), sent);
  const auto& stats = g.member(0).stats();
  EXPECT_GT(stats.bypass_down, 0u);       // Until credits ran out...
  EXPECT_GT(stats.bypass_down_miss, 0u);  // ...then the CCP said no.
}

}  // namespace
}  // namespace ensemble
