// Unit tests for the GroupEndpoint public API surface.

#include <gtest/gtest.h>

#include "src/app/harness.h"

namespace ensemble {
namespace {

TEST(EndpointApiTest, AccessorsBeforeAndAfterStart) {
  SimQueue queue;
  SimNetwork net(&queue, NetworkConfig::Perfect());
  EndpointConfig config;
  config.layers = FourLayerStack();
  GroupEndpoint ep(EndpointId{42}, &net, config);
  EXPECT_EQ(ep.id().id, 42u);
  EXPECT_EQ(ep.rank(), kNoRank);
  EXPECT_FALSE(ep.view());

  auto view = std::make_shared<View>();
  view->vid = ViewId{0, 1};
  view->members = {EndpointId{7}, EndpointId{42}};
  ep.Start(view);
  EXPECT_EQ(ep.rank(), 1);
  EXPECT_EQ(ep.view()->nmembers(), 2);
  EXPECT_EQ(ep.config().layers, FourLayerStack());
}

TEST(EndpointApiTest, DescribeBypassPerMode) {
  for (StackMode mode : {StackMode::kMachine, StackMode::kHand}) {
    SimQueue queue;
    SimNetwork net(&queue, NetworkConfig::Perfect());
    EndpointConfig config;
    config.mode = mode;
    config.layers = FourLayerStack();
    GroupEndpoint ep(EndpointId{1}, &net, config);
    auto view = std::make_shared<View>();
    view->vid = ViewId{0, 1};
    view->members = {EndpointId{1}};
    ep.Start(view);
    std::string text = ep.DescribeBypass();
    EXPECT_FALSE(text.empty()) << StackModeName(mode);
    if (mode == StackMode::kMachine) {
      EXPECT_NE(text.find("OPTIMIZING LAYER"), std::string::npos);
    }
  }
  // Plain modes have nothing compiled.
  SimQueue queue;
  SimNetwork net(&queue, NetworkConfig::Perfect());
  EndpointConfig config;
  config.mode = StackMode::kFunctional;
  GroupEndpoint ep(EndpointId{1}, &net, config);
  EXPECT_TRUE(ep.DescribeBypass().empty());
}

TEST(EndpointApiTest, NetworklessEndpointStillProcessesLocally) {
  // nullptr network: useful for driving a stack directly (the latency
  // harness pattern); sends go nowhere but nothing crashes.
  EndpointConfig config;
  config.layers = TenLayerStack();
  config.params.local_loopback = true;
  GroupEndpoint ep(EndpointId{1}, nullptr, config);
  std::vector<std::string> delivered;
  ep.OnDeliver([&](const Event& ev) { delivered.push_back(ev.payload.Flatten().ToString()); });
  auto view = std::make_shared<View>();
  view->vid = ViewId{0, 1};
  view->members = {EndpointId{1}};
  ep.Start(view);
  ep.Cast(Iovec(Bytes::CopyString("solo")));
  // Self-delivery via the local layer, no network required.
  EXPECT_EQ(delivered, (std::vector<std::string>{"solo"}));
}

TEST(EndpointApiTest, StatsTrackHandBypassTraffic) {
  HarnessConfig config;
  config.n = 2;
  config.ep.mode = StackMode::kHand;
  config.ep.layers = FourLayerStack();
  GroupHarness g(config);
  g.StartAll();
  for (int i = 0; i < 7; i++) {
    g.CastFrom(0, "h");
    g.Run(Millis(1));
  }
  g.SendFrom(0, 1, "p");
  g.Run(Millis(20));
  const auto& tx = g.member(0).stats();
  EXPECT_EQ(tx.casts, 7u);
  EXPECT_EQ(tx.sends, 1u);
  EXPECT_EQ(tx.bypass_down, 8u);
  const auto& rx = g.member(1).stats();
  EXPECT_EQ(rx.delivered, 8u);
  EXPECT_EQ(rx.bypass_up, 8u);
}

TEST(EndpointApiTest, OutOfRangeSendIsDroppedSafely) {
  HarnessConfig config;
  config.n = 2;
  config.ep.layers = FourLayerStack();
  GroupHarness g(config);
  g.StartAll();
  g.SendFrom(0, 99, "to nobody");  // Invalid rank.
  g.SendFrom(0, -3, "also nobody");
  g.Run(Millis(20));
  EXPECT_TRUE(g.deliveries(1).empty());
  // The group still works.
  g.SendFrom(0, 1, "real");
  g.Run(Millis(20));
  ASSERT_EQ(g.deliveries(1).size(), 1u);
}

}  // namespace
}  // namespace ensemble
