// Observability subsystem: JSON writer/validator, metrics registry merge and
// delta semantics, trace-ring wraparound, and the Chrome trace export golden
// check.  The concurrent-writer tests also run in the TSan CI leg (the ctest
// regex matches "Obs").

#include <atomic>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/obs/json.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/util/counters.h"

namespace ensemble {
namespace obs {
namespace {

// ---- JSON writer + validator -----------------------------------------------

TEST(ObsJson, WriterBuildsNestedDocument) {
  JsonWriter w;
  w.BeginObject();
  w.KV("name", "a \"quoted\"\nvalue");
  w.KV("count", uint64_t{42});
  w.KV("ratio", 1.5);
  w.KV("neg", int64_t{-7});
  w.KV("flag", true);
  w.Key("list").BeginArray();
  w.Value(1).Value(2).Value(3);
  w.EndArray();
  w.Key("empty").BeginObject().EndObject();
  w.Key("empty_list").BeginArray().EndArray();
  w.EndObject();
  std::string doc = w.Take();

  std::string error;
  EXPECT_TRUE(ValidateJson(doc, &error)) << error << "\n" << doc;
  EXPECT_NE(doc.find("\\\"quoted\\\""), std::string::npos);
  EXPECT_NE(doc.find("\\n"), std::string::npos);
  EXPECT_NE(doc.find("\"list\":[1,2,3]"), std::string::npos);
}

TEST(ObsJson, ValidatorAcceptsAndRejects) {
  EXPECT_TRUE(ValidateJson("{}"));
  EXPECT_TRUE(ValidateJson("[]"));
  EXPECT_TRUE(ValidateJson("  {\"a\": [1, -2.5e3, true, false, null, \"s\"]} "));
  EXPECT_TRUE(ValidateJson("\"bare string\""));
  EXPECT_TRUE(ValidateJson("42"));

  std::string error;
  EXPECT_FALSE(ValidateJson("", &error));
  EXPECT_FALSE(ValidateJson("{", &error));
  EXPECT_FALSE(ValidateJson("{\"a\":}", &error));
  EXPECT_FALSE(ValidateJson("[1,]", &error));
  EXPECT_FALSE(ValidateJson("{\"a\":1} trailing", &error));
  EXPECT_FALSE(ValidateJson("{'single': 1}", &error));
  EXPECT_FALSE(ValidateJson("[1, 01]", &error));
  EXPECT_FALSE(error.empty());
}

TEST(ObsJson, ValidatorBoundsDepth) {
  std::string deep(100, '[');
  deep += std::string(100, ']');
  EXPECT_FALSE(ValidateJson(deep));
  std::string ok(32, '[');
  ok += std::string(32, ']');
  EXPECT_TRUE(ValidateJson(ok));
}

// ---- Metrics registry ------------------------------------------------------

TEST(ObsMetrics, MergesCountersAcrossSources) {
  RelaxedCounter a, b, hw1, hw2;
  a += 10;
  b += 32;
  hw1 = 5;
  hw2 = 9;
  MetricsRegistry reg;
  reg.Counter("x.total", &a);
  reg.Counter("x.total", &b);  // Second shard, same name: sums.
  reg.Counter("x.high_water", &hw1, Agg::kMax);
  reg.Counter("x.high_water", &hw2, Agg::kMax);
  reg.CounterFn("x.fn", [] { return uint64_t{7}; });
  reg.Gauge("x.shard0.g", [] { return int64_t{-3}; });

  MetricsSnapshot snap = reg.Snapshot();
  EXPECT_EQ(snap.Value("x.total"), 42u);
  EXPECT_EQ(snap.Find("x.total")->sources, 2);
  EXPECT_EQ(snap.Value("x.high_water"), 9u);
  EXPECT_EQ(snap.Value("x.fn"), 7u);
  EXPECT_EQ(static_cast<int64_t>(snap.Value("x.shard0.g")), -3);
  EXPECT_EQ(snap.Value("x.absent"), 0u);
  // Sorted by name.
  for (size_t i = 1; i < snap.samples.size(); i++) {
    EXPECT_LT(snap.samples[i - 1].name, snap.samples[i].name);
  }
}

TEST(ObsMetrics, HistogramMergesAcrossShards) {
  MetricsRegistry reg;
  LatencyHistogram* h0 = reg.Histogram("lat.ns");  // "Shard 0".
  LatencyHistogram* h1 = reg.Histogram("lat.ns");  // "Shard 1".
  for (int i = 0; i < 100; i++) {
    h0->Observe(100);  // Bucket 6.
  }
  for (int i = 0; i < 100; i++) {
    h1->Observe(5000);  // Bucket 12.
  }
  h1->Observe(0);

  MetricsSnapshot snap = reg.Snapshot();
  const Sample* s = snap.Find("lat.ns");
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->kind, MetricKind::kHistogram);
  EXPECT_EQ(s->sources, 2);
  EXPECT_EQ(s->count, 201u);
  EXPECT_EQ(s->sum, 100u * 100 + 100u * 5000);
  EXPECT_EQ(s->buckets[LatencyHistogram::BucketOf(100)], 100u);
  EXPECT_EQ(s->buckets[LatencyHistogram::BucketOf(5000)], 100u);
  EXPECT_EQ(s->buckets[0], 1u);
  // Percentiles come back as bucket ceilings: p25 in the low mode, p99 high.
  EXPECT_LE(s->Percentile(0.25), LatencyHistogram::BucketCeil(6));
  EXPECT_GE(s->Percentile(0.99), 4096u);
}

TEST(ObsMetrics, HistogramBucketBoundariesAtPowersOfTwo) {
  // An exact power of two 2^k is the *first* value of bucket k: BucketOf must
  // not round it down into bucket k-1, and the bucket's reported ceiling is
  // the last value before the next power of two.
  for (size_t k = 0; k < 63; k++) {
    uint64_t v = uint64_t{1} << k;
    EXPECT_EQ(LatencyHistogram::BucketOf(v), k) << "v=2^" << k;
    if (k > 0) {
      EXPECT_EQ(LatencyHistogram::BucketOf(v - 1), k - 1) << "v=2^" << k << "-1";
    }
    EXPECT_EQ(LatencyHistogram::BucketCeil(k),
              k >= 63 ? UINT64_MAX : (uint64_t{2} << k) - 1);
    EXPECT_EQ(LatencyHistogram::BucketOf(LatencyHistogram::BucketCeil(k)), k);
  }
  // Zero is special-cased into bucket 0 (no clz on 0).
  EXPECT_EQ(LatencyHistogram::BucketOf(0), 0u);
  EXPECT_EQ(LatencyHistogram::BucketOf(UINT64_MAX), 63u);
  EXPECT_EQ(LatencyHistogram::BucketCeil(63), UINT64_MAX);

  MetricsRegistry reg;
  LatencyHistogram* h = reg.Histogram("pow2.ns");
  h->Observe(1024);           // First value of bucket 10.
  h->Observe(2047);           // Last value of bucket 10.
  MetricsSnapshot snap = reg.Snapshot();
  const Sample* s = snap.Find("pow2.ns");
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->buckets[10], 2u);
  // Every quantile of a one-bucket population is that bucket's ceiling.
  EXPECT_EQ(s->Percentile(0.0), 2047u);
  EXPECT_EQ(s->Percentile(0.5), 2047u);
  EXPECT_EQ(s->Percentile(1.0), 2047u);
}

TEST(ObsMetrics, HistogramSingleSampleQuantiles) {
  MetricsRegistry reg;
  LatencyHistogram* h = reg.Histogram("one.ns");
  h->Observe(300);  // Bucket 8 (256..511).
  MetricsSnapshot snap = reg.Snapshot();
  const Sample* s = snap.Find("one.ns");
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->count, 1u);
  EXPECT_EQ(s->sum, 300u);
  // With one sample every quantile resolves to its bucket ceiling — never 0,
  // never a neighbouring bucket.
  for (double q : {0.0, 0.01, 0.5, 0.99, 1.0}) {
    EXPECT_EQ(s->Percentile(q), LatencyHistogram::BucketCeil(8)) << "q=" << q;
  }
}

TEST(ObsMetrics, HistogramMergeOfDisjointRanges) {
  // Shard 0 only ever sees sub-microsecond values, shard 1 only multi-ms
  // ones; the merged quantiles must switch modes exactly at the population
  // split, not blend the ranges.
  MetricsRegistry reg;
  LatencyHistogram* lo = reg.Histogram("disjoint.ns");
  LatencyHistogram* hi = reg.Histogram("disjoint.ns");
  for (int i = 0; i < 90; i++) {
    lo->Observe(500);  // Bucket 8.
  }
  for (int i = 0; i < 10; i++) {
    hi->Observe(4'000'000);  // Bucket 21.
  }
  MetricsSnapshot snap = reg.Snapshot();
  const Sample* s = snap.Find("disjoint.ns");
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->count, 100u);
  EXPECT_EQ(s->buckets[8], 90u);
  EXPECT_EQ(s->buckets[21], 10u);
  uint64_t lo_ceil = LatencyHistogram::BucketCeil(8);
  uint64_t hi_ceil = LatencyHistogram::BucketCeil(21);
  EXPECT_EQ(s->Percentile(0.50), lo_ceil);
  EXPECT_EQ(s->Percentile(0.90), lo_ceil);  // 90th sample is still low-mode.
  EXPECT_EQ(s->Percentile(0.95), hi_ceil);
  EXPECT_EQ(s->Percentile(0.99), hi_ceil);
}

TEST(ObsMetrics, DeltaSubtractsCountersKeepsGauges) {
  RelaxedCounter c;
  int64_t gauge_now = 5;
  MetricsRegistry reg;
  reg.Counter("d.count", &c);
  reg.Gauge("d.shard0.gauge", [&] { return gauge_now; });
  LatencyHistogram* h = reg.Histogram("d.hist");

  c += 10;
  h->Observe(8);
  MetricsSnapshot before = reg.Snapshot();

  c += 5;
  h->Observe(8);
  h->Observe(1 << 20);
  gauge_now = 11;
  MetricsSnapshot delta = reg.Snapshot().DeltaSince(before);

  EXPECT_EQ(delta.Value("d.count"), 5u);
  EXPECT_EQ(static_cast<int64_t>(delta.Value("d.shard0.gauge")), 11);
  const Sample* hs = delta.Find("d.hist");
  ASSERT_NE(hs, nullptr);
  EXPECT_EQ(hs->count, 2u);
  EXPECT_EQ(hs->buckets[LatencyHistogram::BucketOf(8)], 1u);
  EXPECT_EQ(hs->buckets[LatencyHistogram::BucketOf(1 << 20)], 1u);
}

TEST(ObsMetrics, TextAndJsonExporters) {
  RelaxedCounter c, z;
  c += 3;
  MetricsRegistry reg;
  reg.Counter("t.nonzero", &c);
  reg.Counter("t.zero", &z);
  reg.Histogram("t.hist")->Observe(1000);
  MetricsSnapshot snap = reg.Snapshot();

  std::string text = snap.Text();
  EXPECT_NE(text.find("t.nonzero"), std::string::npos);
  EXPECT_EQ(text.find("t.zero"), std::string::npos);  // skip_zero default.
  EXPECT_NE(snap.Text(false).find("t.zero"), std::string::npos);

  std::string json = snap.Json();
  std::string error;
  EXPECT_TRUE(ValidateJson(json, &error)) << error << "\n" << json;
  EXPECT_NE(json.find("\"t.zero\""), std::string::npos);  // JSON is complete.
  EXPECT_NE(json.find("\"t.hist\""), std::string::npos);
}

// Snapshot-delta correctness with writers running: live snapshots are
// approximate but must be monotonic, and the after-join snapshot exact.
// (This test is in the TSan leg: the RelaxedCounter reads must be data-race
// free against the writer threads.)
TEST(ObsMetrics, SnapshotUnderConcurrentWriters) {
  constexpr int kThreads = 4;
  constexpr uint64_t kPerThread = 200000;
  std::vector<std::unique_ptr<RelaxedCounter>> counters;
  MetricsRegistry reg;
  for (int t = 0; t < kThreads; t++) {
    counters.push_back(std::make_unique<RelaxedCounter>());
    reg.Counter("cc.total", counters.back().get());
  }
  LatencyHistogram* hist = reg.Histogram("cc.hist");

  std::atomic<bool> go{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; t++) {
    threads.emplace_back([&, t] {
      while (!go.load(std::memory_order_acquire)) {
      }
      for (uint64_t i = 0; i < kPerThread; i++) {
        (*counters[static_cast<size_t>(t)])++;
        if (i % 64 == 0) {
          hist->Observe(i + 1);
        }
      }
    });
  }
  go.store(true, std::memory_order_release);

  MetricsSnapshot prev = reg.Snapshot();
  for (int i = 0; i < 50; i++) {
    MetricsSnapshot cur = reg.Snapshot();
    // Counters are monotonic, so live deltas never go negative...
    EXPECT_GE(cur.Value("cc.total"), prev.Value("cc.total"));
    // ...and DeltaSince agrees with direct subtraction.
    MetricsSnapshot delta = cur.DeltaSince(prev);
    EXPECT_EQ(delta.Value("cc.total"), cur.Value("cc.total") - prev.Value("cc.total"));
    prev = std::move(cur);
  }
  for (auto& th : threads) {
    th.join();
  }
  MetricsSnapshot final_snap = reg.Snapshot();
  EXPECT_EQ(final_snap.Value("cc.total"), kThreads * kPerThread);
  const Sample* hs = final_snap.Find("cc.hist");
  ASSERT_NE(hs, nullptr);
  EXPECT_EQ(hs->count, kThreads * (kPerThread / 64));
}

// ---- Trace ring ------------------------------------------------------------

TEST(ObsTrace, RingWrapsOverwritingOldest) {
  TraceRing ring(6, /*shard=*/3);  // Rounds up to 8.
  EXPECT_EQ(ring.capacity(), 8u);
  for (uint64_t i = 0; i < 20; i++) {
    ring.Emit(TraceKind::kRingPush, static_cast<int32_t>(i), i, i * 2);
  }
  EXPECT_EQ(ring.total(), 20u);
  EXPECT_EQ(ring.dropped(), 12u);

  std::vector<TraceEvent> events = ring.Snapshot();
  ASSERT_EQ(events.size(), 8u);
  // Oldest-first: the surviving events are 12..19, in emit order.
  for (size_t i = 0; i < events.size(); i++) {
    EXPECT_EQ(events[i].a, 12 + i);
    EXPECT_EQ(events[i].b, 2 * (12 + i));
    EXPECT_EQ(events[i].shard, 3u);
  }
  for (size_t i = 1; i < events.size(); i++) {
    EXPECT_GE(events[i].ts_ns, events[i - 1].ts_ns);
  }
}

TEST(ObsTrace, PartialRingSnapshotsInOrder) {
  TraceRing ring(16, 0);
  ring.Emit(TraceKind::kTimerFire, -1, 1, 0);
  ring.Emit(TraceKind::kWakeup, -1, 2, 0);
  std::vector<TraceEvent> events = ring.Snapshot();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].kind, static_cast<uint16_t>(TraceKind::kTimerFire));
  EXPECT_EQ(events[1].kind, static_cast<uint16_t>(TraceKind::kWakeup));
  EXPECT_EQ(ring.dropped(), 0u);
}

TEST(ObsTrace, ThreadRingGateAndMacro) {
  TraceRing ring(16, 0);
  InstallThreadTraceRing(&ring);
  SetTraceEnabled(false);
  ENS_TRACE(kRingPush, 1, 2, 3);
  EXPECT_EQ(ring.total(), 0u);  // Gate off: single-branch no-op.

  SetTraceEnabled(true);
  ENS_TRACE(kRingPush, 1, 2, 3);
  SetTraceEnabled(false);
  InstallThreadTraceRing(nullptr);

  if (kTraceCompiledIn) {
    ASSERT_EQ(ring.total(), 1u);
    TraceEvent e = ring.Snapshot()[0];
    EXPECT_EQ(e.kind, static_cast<uint16_t>(TraceKind::kRingPush));
    EXPECT_EQ(e.member, 1);
    EXPECT_EQ(e.a, 2u);
    EXPECT_EQ(e.b, 3u);
  } else {
    EXPECT_EQ(ring.total(), 0u);  // Compiled out: zero bytes at call sites.
  }
  // Emitting with no thread ring installed must be safe.
  SetTraceEnabled(true);
  TraceToThreadRing(TraceKind::kWakeup, -1, 0, 0);
  SetTraceEnabled(false);
}

// Golden check: the Chrome trace export parses and carries the expected
// structure (thread tracks, instant events, async migration begin/end).
TEST(ObsTrace, ChromeTraceJsonParses) {
  TraceRing shard0(32, 0);
  TraceRing shard1(32, 1);
  shard0.Emit(TraceKind::kLayerDown, 2, 4, 0);
  shard0.Emit(TraceKind::kBypassDownPunt, 2, 6, 0);
  shard0.Emit(TraceKind::kStealRequest, -1, 0, 0);
  shard0.Emit(TraceKind::kHandoffStart, 7, 1, 0);   // Async begin on shard 0...
  shard1.Emit(TraceKind::kAdopt, 7, 0, 3);          // ...ends on shard 1.
  shard1.Emit(TraceKind::kRingDrain, -1, 5, 0);

  std::string json = ChromeTraceJson({&shard0, &shard1});
  std::string error;
  ASSERT_TRUE(ValidateJson(json, &error)) << error << "\n" << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("thread_name"), std::string::npos);
  EXPECT_NE(json.find("\"shard 0\""), std::string::npos);
  EXPECT_NE(json.find("\"shard 1\""), std::string::npos);
  // The migration lifecycle is an async begin/end pair with a shared id.
  EXPECT_NE(json.find("\"migration\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"b\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"e\""), std::string::npos);
  EXPECT_NE(json.find(TraceKindName(TraceKind::kBypassDownPunt)), std::string::npos);
}

TEST(ObsTrace, WriteChromeTraceRoundTripsThroughFile) {
  TraceRing ring(16, 0);
  ring.Emit(TraceKind::kTimerFire, -1, 2, 0);
  std::string path = ::testing::TempDir() + "obs_trace_golden.json";
  ASSERT_TRUE(WriteChromeTrace(path, {&ring}));
  std::string error;
  EXPECT_TRUE(ValidateJsonFile(path, &error)) << error;
  std::remove(path.c_str());
}

TEST(ObsTrace, EmptyRingSetStillValidJson) {
  TraceRing ring(8, 0);
  std::string json = ChromeTraceJson({&ring});
  std::string error;
  EXPECT_TRUE(ValidateJson(json, &error)) << error << "\n" << json;
  EXPECT_TRUE(ValidateJson(ChromeTraceJson({}), &error)) << error;
}

}  // namespace
}  // namespace obs
}  // namespace ensemble
