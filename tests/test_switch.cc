// Tests: on-the-fly protocol stack switching (paper §4.1.3 / [25]) and the
// stable consolidation layer in an 11-layer stack.

#include <gtest/gtest.h>

#include "src/app/harness.h"
#include "src/layers/stable.h"
#include "tests/layer_tester.h"

namespace ensemble {
namespace {

TEST(StackSwitchTest, FourToTenLayerMidRun) {
  HarnessConfig config;
  config.n = 2;
  config.ep.layers = FourLayerStack();
  // The post-switch 10-layer stack totally orders casts from both members,
  // which requires self-delivery (see BidirectionalTraffic).
  config.ep.params.local_loopback = true;
  GroupHarness g(config);
  g.StartAll();

  g.CastFrom(0, "before-switch");
  g.Run(Millis(20));
  EXPECT_EQ(g.CastPayloads(1), (std::vector<std::string>{"before-switch"}));

  g.SwitchAll(TenLayerStack());
  EXPECT_EQ(g.member(0).stack()->depth(), 10u);
  EXPECT_EQ(g.member(0).view()->vid.counter, 2u);

  g.CastFrom(0, "after-switch");
  g.CastFrom(1, "also-after");
  g.Run(Millis(50));
  EXPECT_EQ(g.CastPayloadsFrom(1, 0),
            (std::vector<std::string>{"before-switch", "after-switch"}));
  EXPECT_EQ(g.CastPayloadsFrom(0, 1), (std::vector<std::string>{"also-after"}));
}

TEST(StackSwitchTest, MachRoutesRecompiledForNewStack) {
  HarnessConfig config;
  config.n = 2;
  config.ep.mode = StackMode::kMachine;
  config.ep.layers = FourLayerStack();
  config.ep.params.local_loopback = false;
  GroupHarness g(config);
  g.StartAll();
  g.CastFrom(0, "a");
  g.Run(Millis(20));

  g.SwitchAll(TenLayerStack());
  g.CastFrom(0, "b");
  g.Run(Millis(20));
  EXPECT_EQ(g.CastPayloadsFrom(1, 0), (std::vector<std::string>{"a", "b"}));
  // The fast path kept working across the switch.
  EXPECT_EQ(g.member(0).stats().bypass_down, 2u);
}

TEST(StackSwitchTest, StaleOldViewTrafficDropped) {
  HarnessConfig config;
  config.n = 2;
  config.ep.layers = FourLayerStack();
  // Big link latency: the pre-switch cast is still in flight at switch time.
  config.net.latency = Millis(10);
  GroupHarness g(config);
  g.StartAll();
  g.CastFrom(0, "in-flight-at-switch");
  g.Run(Millis(1));          // Packet on the wire, not yet delivered.
  g.SwitchAll(TenLayerStack());
  g.Run(Millis(100));
  // The old-view datagram must not surface in the new view: its generic
  // header carries the old view counter (bottom drops it), and its conn id
  // no longer resolves on the compressed path.
  EXPECT_TRUE(g.CastPayloads(1).empty());
}

TEST(StackSwitchTest, RefusesSameViewCounter) {
  HarnessConfig config;
  config.n = 1;
  config.ep.layers = FourLayerStack();
  GroupHarness g(config);
  g.StartAll();
  auto same = std::make_shared<View>();
  same->vid = ViewId{0, 1};  // Not later than the current view.
  same->members = {g.member(0).id()};
  EXPECT_DEATH(g.member(0).SwitchStack(TenLayerStack(), same), "later view");
}

// ---------------------------------------------------------------------------
// stable layer
// ---------------------------------------------------------------------------

TEST(StableLayerTest, ConsolidatesRepeatedVectors) {
  LayerTester t(LayerId::kStable, 2, 0);
  Event s1 = Event::OfType(EventType::kStable);
  s1.vec = {3, 1};
  EXPECT_EQ(t.Up(std::move(s1)).up.size(), 1u);
  Event s2 = Event::OfType(EventType::kStable);
  s2.vec = {3, 1};
  EXPECT_TRUE(t.Up(std::move(s2)).up.empty());  // No news.
  Event s3 = Event::OfType(EventType::kStable);
  s3.vec = {5, 1};
  EXPECT_EQ(t.Up(std::move(s3)).up.size(), 1u);
  EXPECT_EQ(t.As<StableLayer>().vector(), (std::vector<uint64_t>{5, 1}));
  EXPECT_EQ(t.As<StableLayer>().GlobalMin(), 1u);
}

TEST(StableLayerTest, ElevenLayerStackWithStable) {
  std::vector<LayerId> eleven = {LayerId::kPartialAppl, LayerId::kTotal, LayerId::kLocal,
                                 LayerId::kStable,      LayerId::kCollect, LayerId::kFrag,
                                 LayerId::kPt2ptw,      LayerId::kMflow,  LayerId::kPt2pt,
                                 LayerId::kMnak,        LayerId::kBottom};
  HarnessConfig config;
  config.n = 2;
  config.ep.layers = eleven;
  config.ep.params.local_loopback = true;
  config.ep.params.stable_interval = 4;
  GroupHarness g(config);
  g.StartAll();
  for (int i = 0; i < 16; i++) {
    g.CastFrom(0, "m" + std::to_string(i));
    g.Run(Millis(1));
  }
  g.Run(Millis(200));
  EXPECT_EQ(g.CastPayloads(1).size(), 16u);
  auto* stable = static_cast<StableLayer*>(g.member(0).stack()->FindLayer(LayerId::kStable));
  ASSERT_NE(stable, nullptr);
  EXPECT_GT(stable->vector().size(), 0u);
  EXPECT_GT(stable->vector()[0], 0u);  // Rank 0's casts became stable.
}

}  // namespace
}  // namespace ensemble
