// Unit tests: ordering & application-side layers (total, collect, local,
// partial_appl, top, fifo_check).

#include <gtest/gtest.h>

#include "src/layers/collect.h"
#include "src/marshal/wire.h"
#include "src/layers/fifo_check.h"
#include "src/layers/local.h"
#include "src/layers/partial_appl.h"
#include "src/layers/total.h"
#include "tests/layer_tester.h"

namespace ensemble {
namespace {

Event TotalData(Rank origin, uint32_t gseq, std::string_view payload) {
  Event ev = Event::DeliverCast(origin, LayerTester::Payload(payload));
  ev.hdrs.Push(LayerId::kTotal, TotalHeader{kTotalData, gseq});
  return ev;
}

// --------------------------------------------------------------------------
// total
// --------------------------------------------------------------------------

TEST(TotalTest, HolderStampsGlobalSequence) {
  LayerTester t(LayerId::kTotal, 2, 0);  // Rank 0 starts with the token.
  for (uint32_t i = 0; i < 3; i++) {
    auto& out = t.Dn(Event::Cast(LayerTester::Payload("m")));
    ASSERT_EQ(out.dn.size(), 1u);
    TotalHeader hdr = out.dn[0].hdrs.Pop<TotalHeader>(LayerId::kTotal);
    EXPECT_EQ(hdr.kind, kTotalData);
    EXPECT_EQ(hdr.gseq, i);
  }
}

TEST(TotalTest, NonHolderQueuesAndRequestsToken) {
  LayerTester t(LayerId::kTotal, 2, 1);  // Rank 1: not the holder.
  auto& out = t.Dn(Event::Cast(LayerTester::Payload("m")));
  EXPECT_TRUE(out.dn.size() == 1u);  // The token request, not the cast.
  EXPECT_EQ(out.dn[0].type, EventType::kSend);
  EXPECT_EQ(out.dn[0].dest, 0);
  TotalHeader hdr = out.dn[0].hdrs.Pop<TotalHeader>(LayerId::kTotal);
  EXPECT_EQ(hdr.kind, kTotalTokenReq);
  EXPECT_EQ(hdr.gseq, 1u);  // Requester rank rides in gseq.
  EXPECT_EQ(t.As<TotalLayer>().PendingCasts(), 1u);
  // Second cast does not re-request.
  auto& out2 = t.Dn(Event::Cast(LayerTester::Payload("m2")));
  EXPECT_TRUE(out2.dn.empty());
}

TEST(TotalTest, HolderPassesTokenToRequester) {
  LayerTester t(LayerId::kTotal, 2, 0);
  t.Dn(Event::Cast(LayerTester::Payload("mine")));  // next_gseq -> 1.
  Event req = Event::DeliverSend(1, Iovec());
  req.hdrs.Push(LayerId::kTotal, TotalHeader{kTotalTokenReq, 1});
  auto& out = t.Up(std::move(req));
  ASSERT_EQ(out.dn.size(), 1u);
  EXPECT_EQ(out.dn[0].dest, 1);
  TotalHeader hdr = out.dn[0].hdrs.Pop<TotalHeader>(LayerId::kTotal);
  EXPECT_EQ(hdr.kind, kTotalTokenPass);
  EXPECT_EQ(hdr.gseq, 1u);  // Next unused global number travels with it.
  EXPECT_EQ(t.As<TotalLayer>().fast().token_holder, 1);
}

TEST(TotalTest, TokenArrivalFlushesPendingInOrder) {
  LayerTester t(LayerId::kTotal, 2, 1);
  t.Dn(Event::Cast(LayerTester::Payload("p0")));
  t.Dn(Event::Cast(LayerTester::Payload("p1")));
  Event pass = Event::DeliverSend(0, Iovec());
  pass.hdrs.Push(LayerId::kTotal, TotalHeader{kTotalTokenPass, 5});
  auto& out = t.Up(std::move(pass));
  ASSERT_EQ(out.dn.size(), 2u);
  TotalHeader h0 = out.dn[0].hdrs.Pop<TotalHeader>(LayerId::kTotal);
  TotalHeader h1 = out.dn[1].hdrs.Pop<TotalHeader>(LayerId::kTotal);
  EXPECT_EQ(h0.gseq, 5u);
  EXPECT_EQ(h1.gseq, 6u);
  EXPECT_EQ(out.dn[0].payload.Flatten().view(), "p0");
}

TEST(TotalTest, DeliversInGlobalOrderWithHoldback) {
  LayerTester t(LayerId::kTotal, 2, 1);
  EXPECT_TRUE(t.Up(TotalData(0, 1, "second")).up.empty());
  EXPECT_TRUE(t.Up(TotalData(0, 2, "third")).up.empty());
  auto& out = t.Up(TotalData(0, 0, "first"));
  ASSERT_EQ(out.up.size(), 3u);
  EXPECT_EQ(out.up[0].payload.Flatten().view(), "first");
  EXPECT_EQ(out.up[2].payload.Flatten().view(), "third");
  EXPECT_TRUE(t.As<TotalLayer>().HoldbackEmpty());
}

TEST(TotalTest, NonHolderForwardsForeignRequests) {
  LayerTester t(LayerId::kTotal, 3, 1);
  // Rank 1 believes rank 0 holds the token; a request from rank 2 arriving
  // here (stale routing) is forwarded to rank 0 with the requester intact.
  Event req = Event::DeliverSend(2, Iovec());
  req.hdrs.Push(LayerId::kTotal, TotalHeader{kTotalTokenReq, 2});
  auto& out = t.Up(std::move(req));
  ASSERT_EQ(out.dn.size(), 1u);
  EXPECT_EQ(out.dn[0].dest, 0);
  TotalHeader hdr = out.dn[0].hdrs.Pop<TotalHeader>(LayerId::kTotal);
  EXPECT_EQ(hdr.kind, kTotalTokenReq);
  EXPECT_EQ(hdr.gseq, 2u);
}

TEST(TotalTest, PassesUpperSendsWithPassHeader) {
  LayerTester t(LayerId::kTotal, 2, 0);
  auto& out = t.Dn(Event::Send(1, LayerTester::Payload("s")));
  ASSERT_EQ(out.dn.size(), 1u);
  TotalHeader hdr = out.dn[0].hdrs.Pop<TotalHeader>(LayerId::kTotal);
  EXPECT_EQ(hdr.kind, kTotalPass);
}

// --------------------------------------------------------------------------
// collect
// --------------------------------------------------------------------------

Event CollectData(Rank origin, uint64_t seq_hint = 0) {
  Event ev = Event::DeliverCast(origin, LayerTester::Payload("d"));
  ev.seq_hint = seq_hint;  // Normally stamped by mnak below.
  ev.hdrs.Push(LayerId::kCollect, CollectHeader{kCollectData});
  return ev;
}

TEST(CollectTest, TracksWatermarkPerSender) {
  LayerParams params;
  params.stable_interval = 100;
  LayerTester t(LayerId::kCollect, 3, 0, params);
  t.Up(CollectData(1, 0));
  t.Up(CollectData(1, 1));
  t.Up(CollectData(2, 0));
  EXPECT_EQ(t.As<CollectLayer>().acks(), (std::vector<uint64_t>{0, 2, 1}));
  // The watermark is monotone (duplicates / reordering below cannot regress it).
  t.Up(CollectData(1, 0));
  EXPECT_EQ(t.As<CollectLayer>().acks()[1], 2u);
}

TEST(CollectTest, GossipsAfterInterval) {
  LayerParams params;
  params.stable_interval = 3;
  LayerTester t(LayerId::kCollect, 2, 0, params);
  EXPECT_TRUE(t.Up(CollectData(1, 0)).dn.empty());
  EXPECT_TRUE(t.Up(CollectData(1, 1)).dn.empty());
  auto& out = t.Up(CollectData(1, 2));  // Third delivery: gossip round.
  ASSERT_EQ(out.dn.size(), 1u);
  EXPECT_EQ(out.dn[0].type, EventType::kCast);
  CollectHeader hdr = out.dn[0].hdrs.Pop<CollectHeader>(LayerId::kCollect);
  EXPECT_EQ(hdr.kind, kCollectGossip);
}

TEST(CollectTest, AggregatesMinimumAndEmitsStable) {
  LayerParams params;
  params.stable_interval = 100;
  LayerTester t(LayerId::kCollect, 2, 0, params);
  // Peer 1 claims it has received 5 of rank 0's casts and 2 of rank 1's.
  WireWriter w;
  w.U16(2);
  w.U64(5);
  w.U64(2);
  Event gossip = Event::DeliverCast(1, Iovec(w.Take()));
  gossip.hdrs.Push(LayerId::kCollect, CollectHeader{kCollectGossip});
  auto& out = t.Up(std::move(gossip));
  // A sender's own row never constrains its own column, so rank 0's casts
  // are stable up to 5 (the only other member has them); rank 1's column is
  // constrained by OUR row, which is still 0.
  const Event* stable = nullptr;
  for (const Event& ev : out.dn) {
    if (ev.type == EventType::kStable) {
      stable = &ev;
    }
  }
  ASSERT_NE(stable, nullptr);
  EXPECT_EQ(stable->vec, (std::vector<uint64_t>{5, 0}));
}

TEST(CollectTest, TimerGossipsPendingCounters) {
  LayerParams params;
  params.stable_interval = 100;
  LayerTester t(LayerId::kCollect, 2, 0, params);
  t.Up(CollectData(1));
  auto& out = t.Dn(Event::Timer(Millis(1)));
  bool gossiped = false;
  for (Event& ev : out.dn) {
    if (ev.type == EventType::kCast) {
      gossiped = true;
    }
  }
  EXPECT_TRUE(gossiped);
  // Quiescent now: no second gossip.
  auto& out2 = t.Dn(Event::Timer(Millis(2)));
  for (Event& ev : out2.dn) {
    EXPECT_NE(ev.type, EventType::kCast);
  }
}

// --------------------------------------------------------------------------
// local
// --------------------------------------------------------------------------

TEST(LocalTest, LoopbackSplitsCasts) {
  LayerParams params;
  params.local_loopback = true;
  LayerTester t(LayerId::kLocal, 2, 0, params);
  Event cast = Event::Cast(LayerTester::Payload("self"));
  cast.hdrs.Push(LayerId::kTotal, TotalHeader{kTotalData, 9});
  auto& out = t.Dn(std::move(cast));
  ASSERT_EQ(out.dn.size(), 1u);
  ASSERT_EQ(out.up.size(), 1u);
  EXPECT_EQ(out.up[0].type, EventType::kDeliverCast);
  EXPECT_EQ(out.up[0].origin, 0);
  // The self-delivery carries the upper headers (total can pop its gseq).
  TotalHeader hdr = out.up[0].hdrs.Pop<TotalHeader>(LayerId::kTotal);
  EXPECT_EQ(hdr.gseq, 9u);
}

TEST(LocalTest, LoopbackOffIsTransparent) {
  LayerParams params;
  params.local_loopback = false;
  LayerTester t(LayerId::kLocal, 2, 0, params);
  auto& out = t.Dn(Event::Cast(LayerTester::Payload("m")));
  EXPECT_EQ(out.dn.size(), 1u);
  EXPECT_TRUE(out.up.empty());
}

// --------------------------------------------------------------------------
// partial_appl
// --------------------------------------------------------------------------

TEST(PartialApplTest, QueuesWhileBlockedReleasesOnView) {
  LayerTester t(LayerId::kPartialAppl, 2, 0);
  auto& blocked = t.Up(Event::OfType(EventType::kBlock));
  // Block travels on up to the app AND is answered with BlockOk downward.
  EXPECT_EQ(blocked.up.size(), 1u);
  ASSERT_EQ(blocked.dn.size(), 1u);
  EXPECT_EQ(blocked.dn[0].type, EventType::kBlockOk);

  EXPECT_TRUE(t.Dn(Event::Cast(LayerTester::Payload("held"))).dn.empty());
  EXPECT_EQ(t.As<PartialApplLayer>().QueuedWhileBlocked(), 1u);

  auto view = std::make_shared<View>();
  view->vid = ViewId{0, 2};
  view->members = {EndpointId{1}, EndpointId{2}};
  Event nv = Event::OfType(EventType::kView);
  nv.view = view;
  auto& out = t.Up(std::move(nv));
  // The view goes to the app and the held cast is released below.
  EXPECT_EQ(out.up.size(), 1u);
  bool released = false;
  for (const Event& ev : out.dn) {
    released |= ev.type == EventType::kCast;
  }
  EXPECT_TRUE(released);
  EXPECT_EQ(t.As<PartialApplLayer>().QueuedWhileBlocked(), 0u);
}

TEST(PartialApplTest, CountsTrafficOffCriticalPath) {
  LayerTester t(LayerId::kPartialAppl, 2, 0);
  t.Dn(Event::Cast(LayerTester::Payload("a")));
  t.Up(Event::DeliverCast(1, LayerTester::Payload("b")));
  EXPECT_EQ(t.As<PartialApplLayer>().fast().casts, 1u);
  EXPECT_EQ(t.As<PartialApplLayer>().fast().delivered, 1u);
}

// --------------------------------------------------------------------------
// fifo_check
// --------------------------------------------------------------------------

TEST(FifoCheckTest, CleanStreamHasNoViolations) {
  LayerTester tx(LayerId::kFifoCheck, 2, 0);
  LayerTester rx(LayerId::kFifoCheck, 2, 1);
  for (int i = 0; i < 5; i++) {
    auto& out = tx.Dn(Event::Cast(LayerTester::Payload("m")));
    Event up = Event::DeliverCast(0, out.dn[0].payload);
    up.hdrs = out.dn[0].hdrs;
    rx.Up(std::move(up));
  }
  EXPECT_EQ(rx.As<FifoCheckLayer>().violations(), 0u);
}

TEST(FifoCheckTest, DetectsGapAndReordering) {
  LayerTester rx(LayerId::kFifoCheck, 2, 1);
  auto deliver = [&rx](uint32_t seqno) {
    Event up = Event::DeliverCast(0, LayerTester::Payload("m"));
    up.hdrs.Push(LayerId::kFifoCheck, FifoCheckHeader{seqno});
    rx.Up(std::move(up));
  };
  deliver(0);
  deliver(2);  // Gap.
  deliver(1);  // Reorder.
  EXPECT_EQ(rx.As<FifoCheckLayer>().violations(), 2u);
}

}  // namespace
}  // namespace ensemble
