// Overload control: watermark hysteresis, per-group send windows, and the
// graduated manager — unit-level via ForcePoll with synthetic signals, plus a
// channel-runtime integration flood that drives the real wiring.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "src/obs/metrics.h"
#include "src/overload/manager.h"
#include "src/overload/send_window.h"
#include "src/overload/watermark.h"
#include "src/runtime/runtime.h"

namespace ensemble {
namespace {

using overload::Action;
using overload::OverloadActions;
using overload::OverloadConfig;
using overload::OverloadManager;
using overload::OverloadSignals;
using overload::SendWindow;
using overload::Watermark;

// Waits until `pred` holds or `ms` elapses; returns whether it held.
template <typename Pred>
bool WaitUntil(Pred pred, int ms) {
  auto deadline = std::chrono::steady_clock::now() + std::chrono::milliseconds(ms);
  while (!pred()) {
    if (std::chrono::steady_clock::now() >= deadline) {
      return false;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return true;
}

TEST(WatermarkTest, EngagesAtHighDisengagesBelowLow) {
  Watermark m(100, 60);
  EXPECT_FALSE(m.engaged());
  EXPECT_FALSE(m.Update(99));   // Below high: stays off.
  EXPECT_TRUE(m.Update(100));   // Reaches high: flips on.
  EXPECT_TRUE(m.engaged());
  EXPECT_FALSE(m.Update(80));   // Inside the band: no flap.
  EXPECT_FALSE(m.Update(60));   // Low is exclusive: still engaged.
  EXPECT_TRUE(m.engaged());
  EXPECT_TRUE(m.Update(59));    // Below low: flips off.
  EXPECT_FALSE(m.engaged());
  EXPECT_EQ(m.engages(), 1u);
  EXPECT_EQ(m.disengages(), 1u);
}

TEST(WatermarkTest, OscillationInsideBandNeverFlaps) {
  Watermark m(100, 60);
  ASSERT_TRUE(m.Update(150));
  for (int i = 0; i < 50; i++) {
    EXPECT_FALSE(m.Update(i % 2 == 0 ? 61 : 99));
  }
  EXPECT_TRUE(m.engaged());
  EXPECT_EQ(m.engages(), 1u);
}

TEST(WatermarkTest, ZeroHighNeverEngages) {
  Watermark m(0, 0);
  EXPECT_FALSE(m.Update(~0ull));
  EXPECT_FALSE(m.engaged());
}

TEST(SendWindowTest, ReserveReleaseBoundsInFlight) {
  SendWindow w(1000, 100);
  EXPECT_TRUE(w.TryReserve(600));
  EXPECT_TRUE(w.TryReserve(400));   // Exactly at the limit.
  EXPECT_FALSE(w.TryReserve(1));    // Over: shed.
  EXPECT_EQ(w.sheds(), 1u);
  EXPECT_EQ(w.shed_bytes(), 1u);
  w.Release(400);
  EXPECT_TRUE(w.TryReserve(300));
  EXPECT_EQ(w.in_flight(), 900u);
  EXPECT_EQ(w.peak_in_flight(), 1000u);
  EXPECT_EQ(w.reserves(), 3u);
}

TEST(SendWindowTest, LoneOversizedMessageIsAdmitted) {
  SendWindow w(1000, 100);
  EXPECT_TRUE(w.TryReserve(5000));   // Empty window: never wedge big payloads.
  EXPECT_FALSE(w.TryReserve(1));     // But nothing rides alongside it.
  w.Release(5000);
  EXPECT_TRUE(w.TryReserve(1));
}

TEST(SendWindowTest, ShrinkWidenWalkTheLimitBetweenFloorAndInitial) {
  SendWindow w(1 << 20, 1 << 10);
  for (int i = 0; i < 40; i++) {
    w.Shrink();
  }
  EXPECT_EQ(w.limit(), 1u << 10);  // Clamped at the floor.
  for (int i = 0; i < 40; i++) {
    w.Widen();
  }
  EXPECT_EQ(w.limit(), 1u << 20);  // Recovers to the configured limit.
}

TEST(SendWindowTest, PauseShedsEverythingAndReleaseClampsAtZero) {
  SendWindow w(1000, 100);
  w.Pause();
  EXPECT_FALSE(w.TryReserve(1));
  w.Resume();
  EXPECT_TRUE(w.TryReserve(10));
  w.Release(10000);               // Over-release (loopback double-credit).
  EXPECT_EQ(w.in_flight(), 0u);   // Clamped, not wrapped.
  EXPECT_TRUE(w.TryReserve(999));
}

// Drives the full ladder up and down with a synthetic pressure source and
// checks rung order, hysteresis, and the backend pressure level pushes.
TEST(OverloadManagerTest, LadderEngagesInOrderAndDisengagesWithHysteresis) {
  OverloadConfig cfg;
  cfg.enabled = true;
  cfg.bytes_high = 1000;  // pressure‰ == live_bytes for easy arithmetic.
  cfg.low_priority_groups = {1};
  OverloadManager mgr(cfg, /*num_groups=*/2);

  std::atomic<uint64_t> bytes{0};
  OverloadSignals sig;
  sig.live_bytes = [&]() { return bytes.load(); };
  mgr.InstallSignals(std::move(sig));
  std::vector<int> levels;
  OverloadActions act;
  act.set_pressure = [&](int level) { levels.push_back(level); };
  mgr.InstallActions(std::move(act));

  bytes = 400;  // Below every rung.
  mgr.ForcePoll(1);
  EXPECT_FALSE(mgr.engaged(Action::kTightenFlush));
  EXPECT_EQ(mgr.pressure_pm(), 400u);

  bytes = 620;  // tighten (500) + shrink (600).
  mgr.ForcePoll(2);
  EXPECT_TRUE(mgr.engaged(Action::kTightenFlush));
  EXPECT_TRUE(mgr.engaged(Action::kShrinkWindow));
  EXPECT_FALSE(mgr.engaged(Action::kPauseGroup));
  ASSERT_EQ(levels.size(), 1u);
  EXPECT_EQ(levels[0], 1);

  bytes = 960;  // Every rung including kill (950).
  mgr.ForcePoll(3);
  EXPECT_TRUE(mgr.engaged(Action::kPauseGroup));
  EXPECT_TRUE(mgr.engaged(Action::kShedJoin));
  EXPECT_TRUE(mgr.engaged(Action::kKillShed));
  EXPECT_TRUE(mgr.window(1)->paused());   // Low-priority group paused.
  EXPECT_FALSE(mgr.window(0)->paused());
  ASSERT_EQ(levels.size(), 2u);
  EXPECT_EQ(levels[1], 2);
  EXPECT_FALSE(mgr.AcceptingJoins());
  EXPECT_EQ(mgr.stats().joins_shed.value(), 1u);

  bytes = 800;  // Inside every band: hysteresis holds all rungs engaged.
  mgr.ForcePoll(4);
  EXPECT_TRUE(mgr.engaged(Action::kKillShed));
  EXPECT_TRUE(mgr.engaged(Action::kShedJoin));

  bytes = 550;  // Below kill/join disengage (700/600), above tighten's (350).
  mgr.ForcePoll(5);
  EXPECT_FALSE(mgr.engaged(Action::kKillShed));
  EXPECT_FALSE(mgr.engaged(Action::kShedJoin));
  EXPECT_TRUE(mgr.engaged(Action::kTightenFlush));
  ASSERT_EQ(levels.size(), 3u);
  EXPECT_EQ(levels[2], 1);  // Kill off, tighten still on.

  bytes = 100;  // Everything clears.
  mgr.ForcePoll(6);
  EXPECT_FALSE(mgr.engaged(Action::kTightenFlush));
  EXPECT_FALSE(mgr.window(1)->paused());  // Resumed on disengage.
  ASSERT_EQ(levels.size(), 4u);
  EXPECT_EQ(levels[3], 0);
  EXPECT_TRUE(mgr.AcceptingJoins());

  // Each rung engaged exactly once end to end.
  for (int i = 0; i < overload::kActionCount; i++) {
    EXPECT_EQ(mgr.stats().actions[i].value(), 1u) << "rung " << i;
  }
}

TEST(OverloadManagerTest, ShrinkWhileEngagedWidenAfter) {
  OverloadConfig cfg;
  cfg.enabled = true;
  cfg.bytes_high = 1000;
  cfg.window_bytes = 1 << 20;
  cfg.window_min_bytes = 1 << 10;
  OverloadManager mgr(cfg, 1);
  std::atomic<uint64_t> bytes{650};
  OverloadSignals sig;
  sig.live_bytes = [&]() { return bytes.load(); };
  mgr.InstallSignals(std::move(sig));

  for (int i = 0; i < 5; i++) {
    mgr.ForcePoll(10 + i);
  }
  uint64_t shrunk = mgr.window(0)->limit();
  EXPECT_LT(shrunk, 1u << 20);  // Halved once per poll while engaged.
  bytes = 100;
  for (int i = 0; i < 20; i++) {
    mgr.ForcePoll(100 + i);
  }
  EXPECT_EQ(mgr.window(0)->limit(), 1u << 20);  // Recovered.
}

TEST(OverloadManagerTest, StallDecayFreesAWedgedWindow) {
  OverloadConfig cfg;
  cfg.enabled = true;
  cfg.stall_polls = 3;
  OverloadManager mgr(cfg, 1);
  OverloadSignals sig;
  sig.delivered_total = []() { return 0ull; };  // Never any progress.
  mgr.InstallSignals(std::move(sig));

  ASSERT_TRUE(mgr.window(0)->TryReserve(1000));
  for (int i = 0; i < 3; i++) {
    EXPECT_EQ(mgr.window(0)->in_flight(), 1000u);
    mgr.ForcePoll(20 + i);
  }
  EXPECT_LT(mgr.window(0)->in_flight(), 1000u);  // Decayed after stall_polls.
  EXPECT_GE(mgr.stats().window_decays.value(), 1u);
}

TEST(OverloadManagerTest, MaybePollElectsOneCallerPerInterval) {
  OverloadConfig cfg;
  cfg.enabled = true;
  cfg.poll_interval = Millis(10);
  OverloadManager mgr(cfg, 0);
  mgr.MaybePoll(Millis(100));
  mgr.MaybePoll(Millis(100));      // Same instant: interval not elapsed.
  mgr.MaybePoll(Millis(105));      // Mid-interval.
  EXPECT_EQ(mgr.stats().polls.value(), 1u);
  mgr.MaybePoll(Millis(111));      // Next interval.
  EXPECT_EQ(mgr.stats().polls.value(), 2u);
}

TEST(OverloadManagerTest, RegistersActionCountersAndPressureGauge) {
  OverloadConfig cfg;
  cfg.enabled = true;
  cfg.bytes_high = 1000;
  OverloadManager mgr(cfg, 2);
  std::atomic<uint64_t> bytes{990};
  OverloadSignals sig;
  sig.live_bytes = [&]() { return bytes.load(); };
  mgr.InstallSignals(std::move(sig));
  obs::MetricsRegistry reg;
  mgr.RegisterMetrics(reg);

  mgr.ForcePoll(1);
  obs::MetricsSnapshot snap = reg.Snapshot();
  EXPECT_EQ(snap.Value("overload.action.tighten_flush"), 1u);
  EXPECT_EQ(snap.Value("overload.action.kill_shed"), 1u);
  EXPECT_EQ(snap.Value("overload.polls"), 1u);
  EXPECT_EQ(snap.Value("overload.pressure_x1000"), 990u);
  ASSERT_NE(snap.Find("overload.window_shed"), nullptr);
}

// Integration: a 2-shard channel runtime with thresholds small enough that a
// cast flood trips the ladder — windows shed at the source, actions count,
// and the runtime keeps delivering (no deadlock, no ring full-fails).
TEST(OverloadRuntimeTest, FloodTripsLadderAndShedsAtSource) {
  ShardRuntimeConfig config;
  config.backend = ShardBackend::kChannel;
  config.num_workers = 2;
  config.ep.layers = FourLayerStack();
  config.ep.mode = StackMode::kMachine;
  config.ep.params.local_loopback = false;
  config.ep.params.stable_interval = 1u << 30;
  config.ep.timer_interval = Millis(1);
  config.overload.enabled = true;
  config.overload.poll_interval = Micros(200);
  // A tiny byte watermark: the flood's pooled payloads cross it immediately.
  config.overload.bytes_high = 64 << 10;
  config.overload.window_bytes = 32 << 10;
  config.overload.window_min_bytes = 4 << 10;

  ShardRuntime rt(config);
  ASSERT_TRUE(rt.Build(4));  // One 4-member group over 2 shards.
  ASSERT_NE(rt.overload_manager(), nullptr);
  EXPECT_EQ(rt.overload_manager()->num_windows(), 1);
  EXPECT_TRUE(rt.AcceptingJoins());
  rt.Start();

  // Flood: each member casts 1 KiB payloads far faster than the group can
  // absorb; the window admits ~32 KiB and sheds the rest at Cast() entry.
  for (int wave = 0; wave < 50; wave++) {
    for (int m = 0; m < 4; m++) {
      rt.PostToMember(m, [](GroupEndpoint& ep) {
        for (int i = 0; i < 40; i++) {
          ep.Cast(Iovec(Bytes::Allocate(1024)));
        }
      });
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  OverloadManager* mgr = rt.overload_manager();
  bool shed = WaitUntil([&] { return mgr->TotalWindowSheds() > 0; }, 5000);
  rt.Stop();
  EXPECT_TRUE(shed);

  obs::MetricsSnapshot snap = rt.SnapshotMetrics();
  EXPECT_GT(snap.Value("overload.polls"), 0u);
  EXPECT_GT(snap.Value("overload.window_shed"), 0u);
  EXPECT_GT(snap.Value("ep.window_shed"), 0u);  // Endpoint-side mirror.
  EXPECT_GT(rt.total_delivered(), 0u);          // Still made progress.
  EXPECT_EQ(rt.AggregateRingStats().full_fails.value(), 0u);
  // The byte watermark is tiny, so the ladder's first rung must have tripped.
  EXPECT_GT(snap.Value("overload.action.tighten_flush"), 0u);
}

// Send windows gate only application traffic: a runtime with overload ON but
// generous thresholds behaves exactly like one with it OFF.
TEST(OverloadRuntimeTest, GenerousThresholdsAreTransparent) {
  ShardRuntimeConfig config;
  config.backend = ShardBackend::kChannel;
  config.num_workers = 2;
  config.ep.layers = FourLayerStack();
  config.ep.mode = StackMode::kMachine;
  config.ep.params.local_loopback = false;
  config.ep.params.stable_interval = 1u << 30;
  config.ep.timer_interval = Millis(1);
  config.overload.enabled = true;  // Defaults: 64 MiB / 1 MiB windows.

  ShardRuntime rt(config);
  ASSERT_TRUE(rt.Build(4));
  rt.Start();
  for (int i = 0; i < 4; i++) {
    rt.PostToMember(i, [](GroupEndpoint& ep) {
      ep.Cast(Iovec(Bytes::CopyString("calm")));
    });
  }
  bool done = WaitUntil([&] { return rt.total_delivered() >= 4u * 3u; }, 5000);
  rt.Stop();
  EXPECT_TRUE(done);
  EXPECT_EQ(rt.overload_manager()->TotalWindowSheds(), 0u);
  for (int i = 0; i < rt.n(); i++) {
    EXPECT_EQ(rt.member(i).stats().window_shed.value(), 0u);
  }
}

}  // namespace
}  // namespace ensemble
